# Empty dependencies file for bench_fig7_dynamic.
# This may be replaced when dependencies are built.
