# Empty dependencies file for bench_table2_googlenet_profile.
# This may be replaced when dependencies are built.
