# Empty dependencies file for hax_bench_util.
# This may be replaced when dependencies are built.
