
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_util.cpp" "bench/CMakeFiles/hax_bench_util.dir/bench_util.cpp.o" "gcc" "bench/CMakeFiles/hax_bench_util.dir/bench_util.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hax_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/hax_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/hax_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/hax_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/contention/CMakeFiles/hax_contention.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hax_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/hax_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/grouping/CMakeFiles/hax_grouping.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/hax_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/soc/CMakeFiles/hax_soc.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hax_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
