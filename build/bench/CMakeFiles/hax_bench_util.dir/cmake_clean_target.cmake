file(REMOVE_RECURSE
  "libhax_bench_util.a"
)
