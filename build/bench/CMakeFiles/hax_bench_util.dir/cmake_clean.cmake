file(REMOVE_RECURSE
  "CMakeFiles/hax_bench_util.dir/bench_util.cpp.o"
  "CMakeFiles/hax_bench_util.dir/bench_util.cpp.o.d"
  "libhax_bench_util.a"
  "libhax_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hax_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
