file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_standalone.dir/bench_table5_standalone.cpp.o"
  "CMakeFiles/bench_table5_standalone.dir/bench_table5_standalone.cpp.o.d"
  "bench_table5_standalone"
  "bench_table5_standalone.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_standalone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
