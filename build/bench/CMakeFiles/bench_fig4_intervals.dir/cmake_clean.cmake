file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_intervals.dir/bench_fig4_intervals.cpp.o"
  "CMakeFiles/bench_fig4_intervals.dir/bench_fig4_intervals.cpp.o.d"
  "bench_fig4_intervals"
  "bench_fig4_intervals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_intervals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
