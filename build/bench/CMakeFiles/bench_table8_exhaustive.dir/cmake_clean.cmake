file(REMOVE_RECURSE
  "CMakeFiles/bench_table8_exhaustive.dir/bench_table8_exhaustive.cpp.o"
  "CMakeFiles/bench_table8_exhaustive.dir/bench_table8_exhaustive.cpp.o.d"
  "bench_table8_exhaustive"
  "bench_table8_exhaustive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_exhaustive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
