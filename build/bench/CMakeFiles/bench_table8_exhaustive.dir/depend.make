# Empty dependencies file for bench_table8_exhaustive.
# This may be replaced when dependencies are built.
