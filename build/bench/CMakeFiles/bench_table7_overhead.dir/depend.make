# Empty dependencies file for bench_table7_overhead.
# This may be replaced when dependencies are built.
