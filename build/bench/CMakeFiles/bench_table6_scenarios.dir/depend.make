# Empty dependencies file for bench_table6_scenarios.
# This may be replaced when dependencies are built.
