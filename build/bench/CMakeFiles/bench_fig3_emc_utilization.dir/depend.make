# Empty dependencies file for bench_fig3_emc_utilization.
# This may be replaced when dependencies are built.
