# Empty dependencies file for autonomous_pipeline.
# This may be replaced when dependencies are built.
