file(REMOVE_RECURSE
  "CMakeFiles/autonomous_pipeline.dir/autonomous_pipeline.cpp.o"
  "CMakeFiles/autonomous_pipeline.dir/autonomous_pipeline.cpp.o.d"
  "autonomous_pipeline"
  "autonomous_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autonomous_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
