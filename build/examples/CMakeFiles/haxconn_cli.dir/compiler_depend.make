# Empty compiler generated dependencies file for haxconn_cli.
# This may be replaced when dependencies are built.
