file(REMOVE_RECURSE
  "CMakeFiles/haxconn_cli.dir/haxconn_cli.cpp.o"
  "CMakeFiles/haxconn_cli.dir/haxconn_cli.cpp.o.d"
  "haxconn_cli"
  "haxconn_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/haxconn_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
