file(REMOVE_RECURSE
  "CMakeFiles/cfg_modes.dir/cfg_modes.cpp.o"
  "CMakeFiles/cfg_modes.dir/cfg_modes.cpp.o.d"
  "cfg_modes"
  "cfg_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfg_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
