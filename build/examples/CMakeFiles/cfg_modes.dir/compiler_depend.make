# Empty compiler generated dependencies file for cfg_modes.
# This may be replaced when dependencies are built.
