file(REMOVE_RECURSE
  "CMakeFiles/explore_pairs.dir/explore_pairs.cpp.o"
  "CMakeFiles/explore_pairs.dir/explore_pairs.cpp.o.d"
  "explore_pairs"
  "explore_pairs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explore_pairs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
