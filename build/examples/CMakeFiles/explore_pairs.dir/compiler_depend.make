# Empty compiler generated dependencies file for explore_pairs.
# This may be replaced when dependencies are built.
