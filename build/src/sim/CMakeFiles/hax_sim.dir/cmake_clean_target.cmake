file(REMOVE_RECURSE
  "libhax_sim.a"
)
