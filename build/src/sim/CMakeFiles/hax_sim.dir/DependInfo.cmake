
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/engine.cpp" "src/sim/CMakeFiles/hax_sim.dir/engine.cpp.o" "gcc" "src/sim/CMakeFiles/hax_sim.dir/engine.cpp.o.d"
  "/root/repo/src/sim/gantt.cpp" "src/sim/CMakeFiles/hax_sim.dir/gantt.cpp.o" "gcc" "src/sim/CMakeFiles/hax_sim.dir/gantt.cpp.o.d"
  "/root/repo/src/sim/intervals.cpp" "src/sim/CMakeFiles/hax_sim.dir/intervals.cpp.o" "gcc" "src/sim/CMakeFiles/hax_sim.dir/intervals.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/sim/CMakeFiles/hax_sim.dir/trace.cpp.o" "gcc" "src/sim/CMakeFiles/hax_sim.dir/trace.cpp.o.d"
  "/root/repo/src/sim/trace_export.cpp" "src/sim/CMakeFiles/hax_sim.dir/trace_export.cpp.o" "gcc" "src/sim/CMakeFiles/hax_sim.dir/trace_export.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/perf/CMakeFiles/hax_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/grouping/CMakeFiles/hax_grouping.dir/DependInfo.cmake"
  "/root/repo/build/src/soc/CMakeFiles/hax_soc.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hax_common.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/hax_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
