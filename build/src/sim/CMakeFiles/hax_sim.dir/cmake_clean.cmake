file(REMOVE_RECURSE
  "CMakeFiles/hax_sim.dir/engine.cpp.o"
  "CMakeFiles/hax_sim.dir/engine.cpp.o.d"
  "CMakeFiles/hax_sim.dir/gantt.cpp.o"
  "CMakeFiles/hax_sim.dir/gantt.cpp.o.d"
  "CMakeFiles/hax_sim.dir/intervals.cpp.o"
  "CMakeFiles/hax_sim.dir/intervals.cpp.o.d"
  "CMakeFiles/hax_sim.dir/trace.cpp.o"
  "CMakeFiles/hax_sim.dir/trace.cpp.o.d"
  "CMakeFiles/hax_sim.dir/trace_export.cpp.o"
  "CMakeFiles/hax_sim.dir/trace_export.cpp.o.d"
  "libhax_sim.a"
  "libhax_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hax_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
