# Empty compiler generated dependencies file for hax_sim.
# This may be replaced when dependencies are built.
