# Empty dependencies file for hax_nn.
# This may be replaced when dependencies are built.
