file(REMOVE_RECURSE
  "libhax_nn.a"
)
