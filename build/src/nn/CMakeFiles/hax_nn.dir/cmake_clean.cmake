file(REMOVE_RECURSE
  "CMakeFiles/hax_nn.dir/builder.cpp.o"
  "CMakeFiles/hax_nn.dir/builder.cpp.o.d"
  "CMakeFiles/hax_nn.dir/layer.cpp.o"
  "CMakeFiles/hax_nn.dir/layer.cpp.o.d"
  "CMakeFiles/hax_nn.dir/network.cpp.o"
  "CMakeFiles/hax_nn.dir/network.cpp.o.d"
  "CMakeFiles/hax_nn.dir/summary.cpp.o"
  "CMakeFiles/hax_nn.dir/summary.cpp.o.d"
  "CMakeFiles/hax_nn.dir/zoo.cpp.o"
  "CMakeFiles/hax_nn.dir/zoo.cpp.o.d"
  "CMakeFiles/hax_nn.dir/zoo_classic.cpp.o"
  "CMakeFiles/hax_nn.dir/zoo_classic.cpp.o.d"
  "CMakeFiles/hax_nn.dir/zoo_dense_mobile.cpp.o"
  "CMakeFiles/hax_nn.dir/zoo_dense_mobile.cpp.o.d"
  "CMakeFiles/hax_nn.dir/zoo_googlenet.cpp.o"
  "CMakeFiles/hax_nn.dir/zoo_googlenet.cpp.o.d"
  "CMakeFiles/hax_nn.dir/zoo_inception.cpp.o"
  "CMakeFiles/hax_nn.dir/zoo_inception.cpp.o.d"
  "CMakeFiles/hax_nn.dir/zoo_resnet.cpp.o"
  "CMakeFiles/hax_nn.dir/zoo_resnet.cpp.o.d"
  "libhax_nn.a"
  "libhax_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hax_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
