
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/builder.cpp" "src/nn/CMakeFiles/hax_nn.dir/builder.cpp.o" "gcc" "src/nn/CMakeFiles/hax_nn.dir/builder.cpp.o.d"
  "/root/repo/src/nn/layer.cpp" "src/nn/CMakeFiles/hax_nn.dir/layer.cpp.o" "gcc" "src/nn/CMakeFiles/hax_nn.dir/layer.cpp.o.d"
  "/root/repo/src/nn/network.cpp" "src/nn/CMakeFiles/hax_nn.dir/network.cpp.o" "gcc" "src/nn/CMakeFiles/hax_nn.dir/network.cpp.o.d"
  "/root/repo/src/nn/summary.cpp" "src/nn/CMakeFiles/hax_nn.dir/summary.cpp.o" "gcc" "src/nn/CMakeFiles/hax_nn.dir/summary.cpp.o.d"
  "/root/repo/src/nn/zoo.cpp" "src/nn/CMakeFiles/hax_nn.dir/zoo.cpp.o" "gcc" "src/nn/CMakeFiles/hax_nn.dir/zoo.cpp.o.d"
  "/root/repo/src/nn/zoo_classic.cpp" "src/nn/CMakeFiles/hax_nn.dir/zoo_classic.cpp.o" "gcc" "src/nn/CMakeFiles/hax_nn.dir/zoo_classic.cpp.o.d"
  "/root/repo/src/nn/zoo_dense_mobile.cpp" "src/nn/CMakeFiles/hax_nn.dir/zoo_dense_mobile.cpp.o" "gcc" "src/nn/CMakeFiles/hax_nn.dir/zoo_dense_mobile.cpp.o.d"
  "/root/repo/src/nn/zoo_googlenet.cpp" "src/nn/CMakeFiles/hax_nn.dir/zoo_googlenet.cpp.o" "gcc" "src/nn/CMakeFiles/hax_nn.dir/zoo_googlenet.cpp.o.d"
  "/root/repo/src/nn/zoo_inception.cpp" "src/nn/CMakeFiles/hax_nn.dir/zoo_inception.cpp.o" "gcc" "src/nn/CMakeFiles/hax_nn.dir/zoo_inception.cpp.o.d"
  "/root/repo/src/nn/zoo_resnet.cpp" "src/nn/CMakeFiles/hax_nn.dir/zoo_resnet.cpp.o" "gcc" "src/nn/CMakeFiles/hax_nn.dir/zoo_resnet.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hax_common.dir/DependInfo.cmake"
  "/root/repo/build/src/soc/CMakeFiles/hax_soc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
