# Empty dependencies file for hax_grouping.
# This may be replaced when dependencies are built.
