file(REMOVE_RECURSE
  "libhax_grouping.a"
)
