file(REMOVE_RECURSE
  "CMakeFiles/hax_grouping.dir/grouping.cpp.o"
  "CMakeFiles/hax_grouping.dir/grouping.cpp.o.d"
  "libhax_grouping.a"
  "libhax_grouping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hax_grouping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
