
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/perf/cost_model.cpp" "src/perf/CMakeFiles/hax_perf.dir/cost_model.cpp.o" "gcc" "src/perf/CMakeFiles/hax_perf.dir/cost_model.cpp.o.d"
  "/root/repo/src/perf/emc_estimator.cpp" "src/perf/CMakeFiles/hax_perf.dir/emc_estimator.cpp.o" "gcc" "src/perf/CMakeFiles/hax_perf.dir/emc_estimator.cpp.o.d"
  "/root/repo/src/perf/profiler.cpp" "src/perf/CMakeFiles/hax_perf.dir/profiler.cpp.o" "gcc" "src/perf/CMakeFiles/hax_perf.dir/profiler.cpp.o.d"
  "/root/repo/src/perf/transition.cpp" "src/perf/CMakeFiles/hax_perf.dir/transition.cpp.o" "gcc" "src/perf/CMakeFiles/hax_perf.dir/transition.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/hax_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/soc/CMakeFiles/hax_soc.dir/DependInfo.cmake"
  "/root/repo/build/src/grouping/CMakeFiles/hax_grouping.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hax_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
