# Empty compiler generated dependencies file for hax_perf.
# This may be replaced when dependencies are built.
