file(REMOVE_RECURSE
  "CMakeFiles/hax_perf.dir/cost_model.cpp.o"
  "CMakeFiles/hax_perf.dir/cost_model.cpp.o.d"
  "CMakeFiles/hax_perf.dir/emc_estimator.cpp.o"
  "CMakeFiles/hax_perf.dir/emc_estimator.cpp.o.d"
  "CMakeFiles/hax_perf.dir/profiler.cpp.o"
  "CMakeFiles/hax_perf.dir/profiler.cpp.o.d"
  "CMakeFiles/hax_perf.dir/transition.cpp.o"
  "CMakeFiles/hax_perf.dir/transition.cpp.o.d"
  "libhax_perf.a"
  "libhax_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hax_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
