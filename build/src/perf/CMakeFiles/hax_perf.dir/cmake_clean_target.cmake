file(REMOVE_RECURSE
  "libhax_perf.a"
)
