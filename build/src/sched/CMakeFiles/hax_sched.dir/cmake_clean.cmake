file(REMOVE_RECURSE
  "CMakeFiles/hax_sched.dir/explain.cpp.o"
  "CMakeFiles/hax_sched.dir/explain.cpp.o.d"
  "CMakeFiles/hax_sched.dir/formulation.cpp.o"
  "CMakeFiles/hax_sched.dir/formulation.cpp.o.d"
  "CMakeFiles/hax_sched.dir/problem.cpp.o"
  "CMakeFiles/hax_sched.dir/problem.cpp.o.d"
  "CMakeFiles/hax_sched.dir/schedule.cpp.o"
  "CMakeFiles/hax_sched.dir/schedule.cpp.o.d"
  "CMakeFiles/hax_sched.dir/search_space.cpp.o"
  "CMakeFiles/hax_sched.dir/search_space.cpp.o.d"
  "CMakeFiles/hax_sched.dir/serialize.cpp.o"
  "CMakeFiles/hax_sched.dir/serialize.cpp.o.d"
  "CMakeFiles/hax_sched.dir/solve.cpp.o"
  "CMakeFiles/hax_sched.dir/solve.cpp.o.d"
  "CMakeFiles/hax_sched.dir/validate.cpp.o"
  "CMakeFiles/hax_sched.dir/validate.cpp.o.d"
  "libhax_sched.a"
  "libhax_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hax_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
