
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/explain.cpp" "src/sched/CMakeFiles/hax_sched.dir/explain.cpp.o" "gcc" "src/sched/CMakeFiles/hax_sched.dir/explain.cpp.o.d"
  "/root/repo/src/sched/formulation.cpp" "src/sched/CMakeFiles/hax_sched.dir/formulation.cpp.o" "gcc" "src/sched/CMakeFiles/hax_sched.dir/formulation.cpp.o.d"
  "/root/repo/src/sched/problem.cpp" "src/sched/CMakeFiles/hax_sched.dir/problem.cpp.o" "gcc" "src/sched/CMakeFiles/hax_sched.dir/problem.cpp.o.d"
  "/root/repo/src/sched/schedule.cpp" "src/sched/CMakeFiles/hax_sched.dir/schedule.cpp.o" "gcc" "src/sched/CMakeFiles/hax_sched.dir/schedule.cpp.o.d"
  "/root/repo/src/sched/search_space.cpp" "src/sched/CMakeFiles/hax_sched.dir/search_space.cpp.o" "gcc" "src/sched/CMakeFiles/hax_sched.dir/search_space.cpp.o.d"
  "/root/repo/src/sched/serialize.cpp" "src/sched/CMakeFiles/hax_sched.dir/serialize.cpp.o" "gcc" "src/sched/CMakeFiles/hax_sched.dir/serialize.cpp.o.d"
  "/root/repo/src/sched/solve.cpp" "src/sched/CMakeFiles/hax_sched.dir/solve.cpp.o" "gcc" "src/sched/CMakeFiles/hax_sched.dir/solve.cpp.o.d"
  "/root/repo/src/sched/validate.cpp" "src/sched/CMakeFiles/hax_sched.dir/validate.cpp.o" "gcc" "src/sched/CMakeFiles/hax_sched.dir/validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/solver/CMakeFiles/hax_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/contention/CMakeFiles/hax_contention.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/hax_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/grouping/CMakeFiles/hax_grouping.dir/DependInfo.cmake"
  "/root/repo/build/src/soc/CMakeFiles/hax_soc.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hax_common.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/hax_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
