file(REMOVE_RECURSE
  "libhax_sched.a"
)
