# Empty compiler generated dependencies file for hax_sched.
# This may be replaced when dependencies are built.
