file(REMOVE_RECURSE
  "CMakeFiles/hax_baselines.dir/baselines.cpp.o"
  "CMakeFiles/hax_baselines.dir/baselines.cpp.o.d"
  "libhax_baselines.a"
  "libhax_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hax_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
