file(REMOVE_RECURSE
  "libhax_baselines.a"
)
