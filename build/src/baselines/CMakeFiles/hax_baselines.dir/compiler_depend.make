# Empty compiler generated dependencies file for hax_baselines.
# This may be replaced when dependencies are built.
