# Empty compiler generated dependencies file for hax_common.
# This may be replaced when dependencies are built.
