file(REMOVE_RECURSE
  "libhax_common.a"
)
