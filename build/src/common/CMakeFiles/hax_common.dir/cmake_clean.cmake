file(REMOVE_RECURSE
  "CMakeFiles/hax_common.dir/csv.cpp.o"
  "CMakeFiles/hax_common.dir/csv.cpp.o.d"
  "CMakeFiles/hax_common.dir/json.cpp.o"
  "CMakeFiles/hax_common.dir/json.cpp.o.d"
  "CMakeFiles/hax_common.dir/logging.cpp.o"
  "CMakeFiles/hax_common.dir/logging.cpp.o.d"
  "CMakeFiles/hax_common.dir/rng.cpp.o"
  "CMakeFiles/hax_common.dir/rng.cpp.o.d"
  "CMakeFiles/hax_common.dir/stats.cpp.o"
  "CMakeFiles/hax_common.dir/stats.cpp.o.d"
  "CMakeFiles/hax_common.dir/string_util.cpp.o"
  "CMakeFiles/hax_common.dir/string_util.cpp.o.d"
  "CMakeFiles/hax_common.dir/table.cpp.o"
  "CMakeFiles/hax_common.dir/table.cpp.o.d"
  "libhax_common.a"
  "libhax_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hax_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
