# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("soc")
subdirs("nn")
subdirs("grouping")
subdirs("perf")
subdirs("contention")
subdirs("sim")
subdirs("solver")
subdirs("sched")
subdirs("baselines")
subdirs("core")
subdirs("runtime")
