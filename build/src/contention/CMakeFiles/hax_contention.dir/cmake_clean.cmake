file(REMOVE_RECURSE
  "CMakeFiles/hax_contention.dir/pccs.cpp.o"
  "CMakeFiles/hax_contention.dir/pccs.cpp.o.d"
  "CMakeFiles/hax_contention.dir/piecewise.cpp.o"
  "CMakeFiles/hax_contention.dir/piecewise.cpp.o.d"
  "libhax_contention.a"
  "libhax_contention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hax_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
