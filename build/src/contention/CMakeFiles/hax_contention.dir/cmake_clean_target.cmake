file(REMOVE_RECURSE
  "libhax_contention.a"
)
