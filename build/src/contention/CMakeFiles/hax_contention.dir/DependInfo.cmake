
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/contention/pccs.cpp" "src/contention/CMakeFiles/hax_contention.dir/pccs.cpp.o" "gcc" "src/contention/CMakeFiles/hax_contention.dir/pccs.cpp.o.d"
  "/root/repo/src/contention/piecewise.cpp" "src/contention/CMakeFiles/hax_contention.dir/piecewise.cpp.o" "gcc" "src/contention/CMakeFiles/hax_contention.dir/piecewise.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/soc/CMakeFiles/hax_soc.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hax_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
