# Empty compiler generated dependencies file for hax_contention.
# This may be replaced when dependencies are built.
