file(REMOVE_RECURSE
  "CMakeFiles/hax_runtime.dir/executor.cpp.o"
  "CMakeFiles/hax_runtime.dir/executor.cpp.o.d"
  "libhax_runtime.a"
  "libhax_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hax_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
