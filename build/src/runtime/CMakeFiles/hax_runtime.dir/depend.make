# Empty dependencies file for hax_runtime.
# This may be replaced when dependencies are built.
