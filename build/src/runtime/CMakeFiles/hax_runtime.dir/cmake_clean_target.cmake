file(REMOVE_RECURSE
  "libhax_runtime.a"
)
