# Empty compiler generated dependencies file for hax_soc.
# This may be replaced when dependencies are built.
