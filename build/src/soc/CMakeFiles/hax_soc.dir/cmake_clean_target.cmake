file(REMOVE_RECURSE
  "libhax_soc.a"
)
