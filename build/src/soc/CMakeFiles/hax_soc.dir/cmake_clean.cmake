file(REMOVE_RECURSE
  "CMakeFiles/hax_soc.dir/memory_system.cpp.o"
  "CMakeFiles/hax_soc.dir/memory_system.cpp.o.d"
  "CMakeFiles/hax_soc.dir/platform.cpp.o"
  "CMakeFiles/hax_soc.dir/platform.cpp.o.d"
  "CMakeFiles/hax_soc.dir/processing_unit.cpp.o"
  "CMakeFiles/hax_soc.dir/processing_unit.cpp.o.d"
  "libhax_soc.a"
  "libhax_soc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hax_soc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
