# Empty dependencies file for hax_solver.
# This may be replaced when dependencies are built.
