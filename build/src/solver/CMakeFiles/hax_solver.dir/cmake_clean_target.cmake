file(REMOVE_RECURSE
  "libhax_solver.a"
)
