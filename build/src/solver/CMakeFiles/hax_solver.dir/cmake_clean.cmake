file(REMOVE_RECURSE
  "CMakeFiles/hax_solver.dir/bnb.cpp.o"
  "CMakeFiles/hax_solver.dir/bnb.cpp.o.d"
  "CMakeFiles/hax_solver.dir/genetic.cpp.o"
  "CMakeFiles/hax_solver.dir/genetic.cpp.o.d"
  "libhax_solver.a"
  "libhax_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hax_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
