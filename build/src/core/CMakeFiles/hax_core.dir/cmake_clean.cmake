file(REMOVE_RECURSE
  "CMakeFiles/hax_core.dir/cfg.cpp.o"
  "CMakeFiles/hax_core.dir/cfg.cpp.o.d"
  "CMakeFiles/hax_core.dir/dynamic.cpp.o"
  "CMakeFiles/hax_core.dir/dynamic.cpp.o.d"
  "CMakeFiles/hax_core.dir/energy.cpp.o"
  "CMakeFiles/hax_core.dir/energy.cpp.o.d"
  "CMakeFiles/hax_core.dir/evaluate.cpp.o"
  "CMakeFiles/hax_core.dir/evaluate.cpp.o.d"
  "CMakeFiles/hax_core.dir/haxconn.cpp.o"
  "CMakeFiles/hax_core.dir/haxconn.cpp.o.d"
  "CMakeFiles/hax_core.dir/scenarios.cpp.o"
  "CMakeFiles/hax_core.dir/scenarios.cpp.o.d"
  "libhax_core.a"
  "libhax_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hax_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
