file(REMOVE_RECURSE
  "libhax_core.a"
)
