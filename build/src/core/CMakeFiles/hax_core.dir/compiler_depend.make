# Empty compiler generated dependencies file for hax_core.
# This may be replaced when dependencies are built.
