
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_baselines.cpp" "tests/CMakeFiles/hax_tests.dir/test_baselines.cpp.o" "gcc" "tests/CMakeFiles/hax_tests.dir/test_baselines.cpp.o.d"
  "/root/repo/tests/test_common.cpp" "tests/CMakeFiles/hax_tests.dir/test_common.cpp.o" "gcc" "tests/CMakeFiles/hax_tests.dir/test_common.cpp.o.d"
  "/root/repo/tests/test_contention.cpp" "tests/CMakeFiles/hax_tests.dir/test_contention.cpp.o" "gcc" "tests/CMakeFiles/hax_tests.dir/test_contention.cpp.o.d"
  "/root/repo/tests/test_core.cpp" "tests/CMakeFiles/hax_tests.dir/test_core.cpp.o" "gcc" "tests/CMakeFiles/hax_tests.dir/test_core.cpp.o.d"
  "/root/repo/tests/test_extensions.cpp" "tests/CMakeFiles/hax_tests.dir/test_extensions.cpp.o" "gcc" "tests/CMakeFiles/hax_tests.dir/test_extensions.cpp.o.d"
  "/root/repo/tests/test_genetic.cpp" "tests/CMakeFiles/hax_tests.dir/test_genetic.cpp.o" "gcc" "tests/CMakeFiles/hax_tests.dir/test_genetic.cpp.o.d"
  "/root/repo/tests/test_grouping.cpp" "tests/CMakeFiles/hax_tests.dir/test_grouping.cpp.o" "gcc" "tests/CMakeFiles/hax_tests.dir/test_grouping.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/hax_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/hax_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_json.cpp" "tests/CMakeFiles/hax_tests.dir/test_json.cpp.o" "gcc" "tests/CMakeFiles/hax_tests.dir/test_json.cpp.o.d"
  "/root/repo/tests/test_nn.cpp" "tests/CMakeFiles/hax_tests.dir/test_nn.cpp.o" "gcc" "tests/CMakeFiles/hax_tests.dir/test_nn.cpp.o.d"
  "/root/repo/tests/test_perf.cpp" "tests/CMakeFiles/hax_tests.dir/test_perf.cpp.o" "gcc" "tests/CMakeFiles/hax_tests.dir/test_perf.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/hax_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/hax_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_reporting.cpp" "tests/CMakeFiles/hax_tests.dir/test_reporting.cpp.o" "gcc" "tests/CMakeFiles/hax_tests.dir/test_reporting.cpp.o.d"
  "/root/repo/tests/test_runtime.cpp" "tests/CMakeFiles/hax_tests.dir/test_runtime.cpp.o" "gcc" "tests/CMakeFiles/hax_tests.dir/test_runtime.cpp.o.d"
  "/root/repo/tests/test_scenarios.cpp" "tests/CMakeFiles/hax_tests.dir/test_scenarios.cpp.o" "gcc" "tests/CMakeFiles/hax_tests.dir/test_scenarios.cpp.o.d"
  "/root/repo/tests/test_sched.cpp" "tests/CMakeFiles/hax_tests.dir/test_sched.cpp.o" "gcc" "tests/CMakeFiles/hax_tests.dir/test_sched.cpp.o.d"
  "/root/repo/tests/test_sim.cpp" "tests/CMakeFiles/hax_tests.dir/test_sim.cpp.o" "gcc" "tests/CMakeFiles/hax_tests.dir/test_sim.cpp.o.d"
  "/root/repo/tests/test_soc.cpp" "tests/CMakeFiles/hax_tests.dir/test_soc.cpp.o" "gcc" "tests/CMakeFiles/hax_tests.dir/test_soc.cpp.o.d"
  "/root/repo/tests/test_solver.cpp" "tests/CMakeFiles/hax_tests.dir/test_solver.cpp.o" "gcc" "tests/CMakeFiles/hax_tests.dir/test_solver.cpp.o.d"
  "/root/repo/tests/test_tools.cpp" "tests/CMakeFiles/hax_tests.dir/test_tools.cpp.o" "gcc" "tests/CMakeFiles/hax_tests.dir/test_tools.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hax_core.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/hax_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/hax_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/hax_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/hax_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hax_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/contention/CMakeFiles/hax_contention.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/hax_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/grouping/CMakeFiles/hax_grouping.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/hax_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/soc/CMakeFiles/hax_soc.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hax_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
