# Empty dependencies file for hax_tests.
# This may be replaced when dependencies are built.
