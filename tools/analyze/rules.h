#pragma once

/// \file rules.h
/// hax_analyze's rule layer: turns the extracted Model into findings and
/// the canonical lock-rank assignment.
///
/// Rules:
///   lock-order-inversion   cycle in the acquisition graph (direct RAII
///                          nesting + interprocedural acquires-closure +
///                          declared edges). The headline check: any
///                          cycle is a potential ABBA deadlock. Not
///                          suppressible — break the cycle or declare a
///                          different order.
///   blocking-under-lock    sleep/join/submit/solve/wait while holding a
///                          lock. CondVar::wait(mu) is allowed when `mu`
///                          is the only lock held. Suppressible per line
///                          (`hax-analyze: allow(blocking-under-lock)`)
///                          for sites where blocking while held is the
///                          design (e.g. a PU mutex *is* the resource).
///   unguarded-shared-field mutable field of a Mutex-owning class with
///                          neither HAX_GUARDED_BY nor a comment naming
///                          its protocol (immutable / publication /
///                          thread-owned / …). Suppressible per line.
///   unranked-lock          Mutex declared without HAX_MUTEX_RANK(<id>)
///                          — the runtime validator cannot see it.
///                          Checked by rank_findings (CLI only, so rule
///                          fixtures don't need rank boilerplate).
///   stale-allow            a hax-lint / hax-analyze allow(...) that
///                          suppressed nothing this run.
///
/// The acquisition graph orients every edge "held → acquired"; emit_ranks
/// produces a total order consistent with it (Kahn topological sort,
/// alphabetical tie-break, ranks spaced by 10) which is checked in as
/// tools/analyze/lock_ranks.inc and consumed by src/common/lock_ranks.h —
/// the runtime rank validator and this static graph share one source of
/// truth.

#include <string>
#include <vector>

#include "analyze/model.h"
#include "lint/lint.h"

namespace hax::analyze {

struct Analysis {
  std::vector<Edge> edges;  ///< deduped acquisition graph (incl. declared)
  std::vector<lint::Finding> findings;
};

/// Runs lock-order-inversion, blocking-under-lock and
/// unguarded-shared-field. Non-const: consumes hax-analyze allowances
/// (usage feeds the stale-allow rule).
[[nodiscard]] Analysis analyze(Model& model);

/// unranked-lock findings: every Mutex in the model lacking the
/// HAX_MUTEX_RANK(<id>) handshake at its declaration site.
[[nodiscard]] std::vector<lint::Finding> rank_findings(Model& model);

/// stale-allow findings over both tools' suppression tables. Call after
/// every rule (and the lint scan) has consumed its allowances.
[[nodiscard]] std::vector<lint::Finding> stale_allow_findings(
    const Model& model, const std::vector<lint::Allowance>& lint_allowances);

/// The canonical lock_ranks.inc contents for this model's graph.
/// `edges` must come from analyze() on the same model. Returns the empty
/// string when the graph is cyclic (analyze() already reported it).
[[nodiscard]] std::string emit_ranks(const Model& model, const std::vector<Edge>& edges);

}  // namespace hax::analyze
