/// hax_analyze CLI: whole-program lock-order & capability analysis.
///
///   hax_analyze <repo-root>               run every rule + verify that
///                                         tools/analyze/lock_ranks.inc
///                                         matches the graph (exit 1 on
///                                         any finding or drift)
///   hax_analyze <repo-root> --emit-ranks  print the canonical rank file
///                                         to stdout (redirect over
///                                         tools/analyze/lock_ranks.inc
///                                         to regenerate)
///
/// Wired as a ctest (`ctest -R hax_analyze`) and as the check_lock_order
/// target, so the acquisition graph gates every test run.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analyze/model.h"
#include "analyze/rules.h"
#include "lint/lint.h"

namespace {

bool starts_with(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

std::string read_file(const std::filesystem::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

}  // namespace

int main(int argc, char** argv) {
  bool emit = false;
  std::string root_arg;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--emit-ranks") {
      emit = true;
    } else if (root_arg.empty()) {
      root_arg = arg;
    } else {
      root_arg.clear();
      break;
    }
  }
  if (root_arg.empty()) {
    std::fprintf(stderr, "usage: hax_analyze <repo-root> [--emit-ranks]\n");
    return 2;
  }
  const std::filesystem::path root(root_arg);
  if (!std::filesystem::exists(root)) {
    std::fprintf(stderr, "hax_analyze: no such directory: %s\n", root_arg.c_str());
    return 2;
  }

  // The model covers src/ minus the annotated primitives themselves.
  std::vector<hax::analyze::SourceFile> sources;
  std::vector<std::string> all_paths = hax::lint::tree_paths(root);
  for (const std::string& rel : all_paths) {
    if (!starts_with(rel, "src/")) continue;
    if (rel == "src/common/annotated.h" || rel == "src/common/lock_ranks.h") continue;
    sources.push_back({rel, read_file(root / rel)});
  }

  hax::analyze::Model model = hax::analyze::build_model(sources);
  hax::analyze::Analysis analysis = hax::analyze::analyze(model);

  if (emit) {
    const std::string ranks = hax::analyze::emit_ranks(model, analysis.edges);
    if (ranks.empty()) {
      std::fprintf(stderr, "hax_analyze: cannot emit ranks, the graph is cyclic:\n%s",
                   hax::lint::format(analysis.findings).c_str());
      return 1;
    }
    std::fputs(ranks.c_str(), stdout);
    return 0;
  }

  std::vector<hax::lint::Finding> findings = std::move(analysis.findings);
  for (hax::lint::Finding& f : hax::analyze::rank_findings(model)) {
    findings.push_back(std::move(f));
  }

  // stale-allow needs the lint scan's allowance-usage table for the whole
  // tree (both tools' escape grammars are policed together).
  std::vector<hax::lint::Allowance> lint_allowances;
  for (const std::string& rel : all_paths) {
    hax::lint::ScanResult result = hax::lint::scan_source_tracked(rel, read_file(root / rel));
    for (hax::lint::Allowance& a : result.allowances) {
      lint_allowances.push_back(std::move(a));
    }
  }
  for (hax::lint::Finding& f :
       hax::analyze::stale_allow_findings(model, lint_allowances)) {
    findings.push_back(std::move(f));
  }

  // Rank-file handshake: the checked-in lock_ranks.inc must match the
  // graph byte for byte.
  const std::filesystem::path inc = root / "tools" / "analyze" / "lock_ranks.inc";
  const std::string want = hax::analyze::emit_ranks(model, analysis.edges);
  if (!want.empty()) {
    const std::string have = read_file(inc);
    if (have != want) {
      findings.push_back({"tools/analyze/lock_ranks.inc", 1, "rank-drift",
                          "checked-in ranks do not match `hax_analyze --emit-ranks` — "
                          "regenerate: build/tools/hax_analyze . --emit-ranks > "
                          "tools/analyze/lock_ranks.inc"});
    }
  }

  if (!findings.empty()) {
    const std::string report = hax::lint::format(findings);
    std::fprintf(stderr, "%s", report.c_str());
    std::fprintf(stderr, "hax_analyze: %zu finding(s)\n", findings.size());
    return 1;
  }
  std::printf("hax_analyze: clean (%zu locks, %zu edges, %zu functions)\n",
              model.locks.size(), analysis.edges.size(), model.functions.size());
  return 0;
}
