#include "analyze/rules.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <sstream>
#include <tuple>

namespace hax::analyze {
namespace {

/// Function lookup tables for interprocedural propagation.
struct FuncIndex {
  std::map<std::string, const Function*> by_qual;
  std::map<std::string, std::vector<const Function*>> by_tail;

  explicit FuncIndex(const Model& model) {
    for (const Function& f : model.functions) {
      by_qual.emplace(f.qual_name, &f);
      const std::size_t cut = f.qual_name.rfind("::");
      const std::string tail =
          cut == std::string::npos ? f.qual_name : f.qual_name.substr(cut + 2);
      by_tail[tail].push_back(&f);
    }
  }

  /// Resolves a CallEvent callee ("Type::method" or bare "name") to a
  /// function, or nullptr. Deliberately under-approximates: ambiguous
  /// names resolve to nothing rather than to everything.
  [[nodiscard]] const Function* resolve(const std::string& callee,
                                        const std::string& caller_qual) const {
    const std::size_t cut = callee.rfind("::");
    if (cut != std::string::npos) {
      // Qualified: exact match, else suffix match on the full qual name.
      const auto exact = by_qual.find(callee);
      if (exact != by_qual.end()) return exact->second;
      const std::string tail = callee.substr(cut + 2);
      const auto tails = by_tail.find(tail);
      if (tails == by_tail.end()) return nullptr;
      const Function* found = nullptr;
      for (const Function* f : tails->second) {
        const std::string& q = f->qual_name;
        if (q.size() > callee.size() &&
            q.compare(q.size() - callee.size(), callee.size(), callee) == 0 &&
            q[q.size() - callee.size() - 1] == ':') {
          if (found != nullptr) return nullptr;
          found = f;
        }
      }
      return found;
    }
    // Bare name: prefer a method of the caller's own class, else a
    // program-wide unique function of that name.
    const std::size_t caller_cut = caller_qual.rfind("::");
    if (caller_cut != std::string::npos) {
      const std::string sibling = caller_qual.substr(0, caller_cut + 2) + callee;
      const auto m = by_qual.find(sibling);
      if (m != by_qual.end()) return m->second;
    }
    const auto tails = by_tail.find(callee);
    if (tails != by_tail.end() && tails->second.size() == 1) return tails->second[0];
    return nullptr;
  }
};

/// Strongly connected components via iterative Tarjan; returns components
/// of size > 1 plus self-loop nodes (both are inversions).
std::vector<std::vector<std::string>> cyclic_components(
    const std::map<std::string, std::set<std::string>>& adj) {
  std::vector<std::string> nodes;
  for (const auto& [n, _] : adj) nodes.push_back(n);
  std::map<std::string, int> index;
  std::map<std::string, int> low;
  std::map<std::string, bool> on_stack;
  std::vector<std::string> stack;
  std::vector<std::vector<std::string>> sccs;
  int counter = 0;

  struct Frame {
    std::string node;
    std::vector<std::string> succ;
    std::size_t next = 0;
  };
  for (const std::string& root : nodes) {
    if (index.count(root) != 0) continue;
    std::vector<Frame> call_stack;
    auto push_node = [&](const std::string& n) {
      index[n] = low[n] = counter++;
      stack.push_back(n);
      on_stack[n] = true;
      Frame fr;
      fr.node = n;
      const auto it = adj.find(n);
      if (it != adj.end()) fr.succ.assign(it->second.begin(), it->second.end());
      call_stack.push_back(std::move(fr));
    };
    push_node(root);
    while (!call_stack.empty()) {
      Frame& fr = call_stack.back();
      if (fr.next < fr.succ.size()) {
        const std::string& w = fr.succ[fr.next++];
        if (index.count(w) == 0) {
          push_node(w);
        } else if (on_stack[w]) {
          low[fr.node] = std::min(low[fr.node], index[w]);
        }
      } else {
        if (low[fr.node] == index[fr.node]) {
          std::vector<std::string> scc;
          while (true) {
            const std::string w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            scc.push_back(w);
            if (w == fr.node) break;
          }
          const bool self_loop =
              scc.size() == 1 && adj.count(scc[0]) != 0 && adj.at(scc[0]).count(scc[0]) != 0;
          if (scc.size() > 1 || self_loop) {
            std::sort(scc.begin(), scc.end());
            sccs.push_back(std::move(scc));
          }
        }
        const std::string done = fr.node;
        call_stack.pop_back();
        if (!call_stack.empty()) {
          low[call_stack.back().node] = std::min(low[call_stack.back().node], low[done]);
        }
      }
    }
  }
  std::sort(sccs.begin(), sccs.end());
  return sccs;
}

}  // namespace

Analysis analyze(Model& model) {
  Analysis out;
  out.findings = model.extraction_errors;

  const FuncIndex index(model);

  // Acquires-closure fixpoint: every lock a function may acquire,
  // directly (non-adopt) or through resolved callees.
  std::map<std::string, std::set<std::string>> closure;
  for (const Function& f : model.functions) {
    for (const AcquireEvent& a : f.acquires) {
      if (!a.adopt) closure[f.qual_name].insert(a.lock_id);
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Function& f : model.functions) {
      std::set<std::string>& mine = closure[f.qual_name];
      for (const CallEvent& c : f.calls) {
        const Function* callee = index.resolve(c.callee, f.qual_name);
        if (callee == nullptr) continue;
        for (const std::string& id : closure[callee->qual_name]) {
          if (mine.insert(id).second) changed = true;
        }
      }
    }
  }

  // Blocks-closure: can this function block (directly or transitively)?
  std::map<std::string, std::string> blocks;  // qual → witness description
  for (const Function& f : model.functions) {
    if (!f.blocks.empty()) {
      blocks[f.qual_name] = f.blocks.front().what + " at " + f.file + ":" +
                            std::to_string(f.blocks.front().line);
    }
  }
  changed = true;
  while (changed) {
    changed = false;
    for (const Function& f : model.functions) {
      if (blocks.count(f.qual_name) != 0) continue;
      for (const CallEvent& c : f.calls) {
        const Function* callee = index.resolve(c.callee, f.qual_name);
        if (callee == nullptr || blocks.count(callee->qual_name) == 0) continue;
        blocks[f.qual_name] = callee->qual_name + " (" + blocks[callee->qual_name] + ")";
        changed = true;
        break;
      }
    }
  }

  // ---- acquisition graph ---------------------------------------------
  std::map<std::pair<std::string, std::string>, Edge> edges;
  auto add_edge = [&](const std::string& from, const std::string& to, const std::string& file,
                      int line, const std::string& via) {
    if (from == to && !via.empty()) return;  // closure self-loops over-approximate
    const auto key = std::make_pair(from, to);
    if (edges.count(key) == 0) edges[key] = {from, to, file, line, via};
  };
  for (const Function& f : model.functions) {
    for (const AcquireEvent& a : f.acquires) {
      if (a.adopt) continue;
      for (const std::string& h : a.held) add_edge(h, a.lock_id, f.file, a.line, "");
    }
    for (const CallEvent& c : f.calls) {
      const Function* callee = index.resolve(c.callee, f.qual_name);
      if (callee == nullptr) continue;
      for (const std::string& acquired : closure[callee->qual_name]) {
        for (const std::string& h : c.held) {
          add_edge(h, acquired, f.file, c.line, callee->qual_name);
        }
      }
    }
  }
  for (const Edge& e : model.declared_edges) {
    if (model.find_lock(e.from) != nullptr && model.find_lock(e.to) != nullptr) {
      add_edge(e.from, e.to, e.file, e.line, "declared");
    }
  }
  for (const auto& [_, e] : edges) out.edges.push_back(e);
  std::sort(out.edges.begin(), out.edges.end(), [](const Edge& a, const Edge& b) {
    return std::tie(a.from, a.to) < std::tie(b.from, b.to);
  });

  // ---- rule: lock-order-inversion ------------------------------------
  std::map<std::string, std::set<std::string>> adj;
  for (const Edge& e : out.edges) adj[e.from].insert(e.to);
  for (const std::vector<std::string>& scc : cyclic_components(adj)) {
    std::ostringstream msg;
    msg << "lock-order cycle {";
    for (std::size_t i = 0; i < scc.size(); ++i) {
      if (i != 0) msg << ", ";
      msg << scc[i];
    }
    msg << "}; witness edges:";
    std::string file = "<graph>";
    int line = 0;
    const std::set<std::string> members(scc.begin(), scc.end());
    for (const Edge& e : out.edges) {
      if (members.count(e.from) != 0 && members.count(e.to) != 0) {
        msg << " " << e.from << "->" << e.to << " (" << e.file << ":" << e.line;
        if (!e.via.empty()) msg << " via " << e.via;
        msg << ")";
        if (line == 0) {
          file = e.file;
          line = e.line;
        }
      }
    }
    out.findings.push_back({file, line, "lock-order-inversion", msg.str()});
  }

  // ---- rule: blocking-under-lock -------------------------------------
  for (const Function& f : model.functions) {
    for (const BlockEvent& b : f.blocks) {
      if (b.held.empty()) continue;
      if (consume_allowance(model, f.file, b.line, "blocking-under-lock")) continue;
      std::ostringstream msg;
      msg << b.what << " while holding {";
      for (std::size_t i = 0; i < b.held.size(); ++i) {
        if (i != 0) msg << ", ";
        msg << b.held[i];
      }
      msg << "} in " << f.qual_name;
      out.findings.push_back({f.file, b.line, "blocking-under-lock", msg.str()});
    }
    for (const CallEvent& c : f.calls) {
      if (c.held.empty()) continue;
      const Function* callee = index.resolve(c.callee, f.qual_name);
      if (callee == nullptr || blocks.count(callee->qual_name) == 0) continue;
      // The callee reports its own direct sites when it HAX_REQUIRES one
      // of our held locks — don't duplicate along annotated chains.
      bool callee_requires_held = false;
      for (const std::string& r : callee->requires_locks) {
        if (std::find(c.held.begin(), c.held.end(), r) != c.held.end()) {
          callee_requires_held = true;
        }
      }
      if (callee_requires_held) continue;
      if (consume_allowance(model, f.file, c.line, "blocking-under-lock")) continue;
      std::ostringstream msg;
      msg << "call to blocking " << callee->qual_name << " (" << blocks[callee->qual_name]
          << ") while holding {";
      for (std::size_t i = 0; i < c.held.size(); ++i) {
        if (i != 0) msg << ", ";
        msg << c.held[i];
      }
      msg << "} in " << f.qual_name;
      out.findings.push_back({f.file, c.line, "blocking-under-lock", msg.str()});
    }
  }

  // ---- rule: unguarded-shared-field ----------------------------------
  for (const FieldDecl& fd : model.fields) {
    if (fd.guarded || fd.documented) continue;
    if (consume_allowance(model, fd.file, fd.line, "unguarded-shared-field")) continue;
    out.findings.push_back(
        {fd.file, fd.line, "unguarded-shared-field",
         "mutable field `" + fd.name + "` of Mutex-owning class " + fd.owner +
             " has neither HAX_GUARDED_BY nor a documented protocol comment"});
  }

  std::stable_sort(out.findings.begin(), out.findings.end(),
                   [](const lint::Finding& a, const lint::Finding& b) {
                     return std::tie(a.file, a.line) < std::tie(b.file, b.line);
                   });
  return out;
}

std::vector<lint::Finding> rank_findings(Model& model) {
  std::vector<lint::Finding> out;
  for (const LockDecl& d : model.locks) {
    if (d.has_rank) continue;
    if (consume_allowance(model, d.file, d.line, "unranked-lock")) continue;
    out.push_back({d.file, d.line, "unranked-lock",
                   "Mutex `" + d.id + "` is not declared with HAX_MUTEX_RANK(" + d.id +
                       ") — the runtime rank validator cannot check it"});
  }
  return out;
}

namespace {

// Fixture trees hold deliberately-unused allows, and tool/doc comments
// quote the grammar with placeholder "rules" (`<rule>`, `...`); neither
// is a stale escape. Real rule names are kebab-case idents.
bool stale_allow_in_scope(const std::string& file, const std::string& rule) {
  if (file.rfind("tests/", 0) == 0) return false;
  if (rule.empty()) return false;
  for (const char c : rule) {
    if (std::isalnum(static_cast<unsigned char>(c)) == 0 && c != '-') return false;
  }
  return true;
}

}  // namespace

std::vector<lint::Finding> stale_allow_findings(
    const Model& model, const std::vector<lint::Allowance>& lint_allowances) {
  std::vector<lint::Finding> out;
  for (const lint::Allowance& a : lint_allowances) {
    if (a.used || !stale_allow_in_scope(a.file, a.rule)) continue;
    out.push_back({a.file, a.line, "stale-allow",
                   "hax-lint: " + std::string(a.file_scope ? "allow-file" : "allow") + "(" +
                       a.rule + ") suppresses nothing — remove it"});
  }
  for (const Allowance& a : model.allowances) {
    if (a.used || !stale_allow_in_scope(a.file, a.rule)) continue;
    out.push_back({a.file, a.line, "stale-allow",
                   "hax-analyze: " + std::string(a.file_scope ? "allow-file" : "allow") + "(" +
                       a.rule + ") suppresses nothing — remove it"});
  }
  std::stable_sort(out.begin(), out.end(), [](const lint::Finding& a, const lint::Finding& b) {
    return std::tie(a.file, a.line) < std::tie(b.file, b.line);
  });
  return out;
}

std::string emit_ranks(const Model& model, const std::vector<Edge>& edges) {
  // Kahn topological sort over every declared lock; alphabetical
  // tie-break makes the output canonical, ranks spaced by 10 leave room
  // for hand-tuning between regenerations (though regeneration is the
  // supported path).
  std::set<std::string> nodes;
  for (const LockDecl& d : model.locks) nodes.insert(d.id);
  std::map<std::string, std::set<std::string>> fwd;
  std::map<std::string, int> indegree;
  for (const std::string& n : nodes) indegree[n] = 0;
  for (const Edge& e : edges) {
    if (nodes.count(e.from) == 0 || nodes.count(e.to) == 0 || e.from == e.to) continue;
    if (fwd[e.from].insert(e.to).second) ++indegree[e.to];
  }
  std::set<std::string> ready;
  for (const auto& [n, deg] : indegree) {
    if (deg == 0) ready.insert(n);
  }
  std::vector<std::string> order;
  while (!ready.empty()) {
    const std::string n = *ready.begin();
    ready.erase(ready.begin());
    order.push_back(n);
    for (const std::string& m : fwd[n]) {
      if (--indegree[m] == 0) ready.insert(m);
    }
  }
  if (order.size() != nodes.size()) return "";  // cyclic — already reported

  std::ostringstream out;
  out << "// Canonical lock-rank assignment. Generated by `hax_analyze --emit-ranks`;\n"
         "// regenerate (do not hand-edit) whenever a Mutex or a nesting edge is\n"
         "// added. Consumed twice: src/common/lock_ranks.h turns each line into a\n"
         "// constant for HAX_MUTEX_RANK, and the hax_analyze CTest gate fails if\n"
         "// this file drifts from the acquisition graph. Lower rank = acquired\n"
         "// first; the runtime validator aborts on any out-of-order acquisition.\n";
  int rank = 10;
  for (const std::string& n : order) {
    out << "HAX_LOCK_RANK_DEF(" << n << ", " << rank << ")\n";
    rank += 10;
  }
  return out.str();
}

}  // namespace hax::analyze
