#pragma once

/// \file model.h
/// hax_analyze's program model: what the whole-tree extraction pass
/// recovers from the `HAX_*` annotations and the annotated primitives in
/// src/common/annotated.h. The extractor is a token scanner sharing
/// tools/common/cpp_lexer.h with hax_lint — it tracks namespace / class /
/// function scopes by brace matching and recognizes the small set of
/// shapes the repo's discipline guarantees:
///
///   Mutex / CondVar member and local declarations   → LockDecl (with a
///     canonical id: class-scope chain + field name, `::` → `_`, e.g.
///     `ThreadPool_mutex_`, `ScheduleCache_Shard_mu`; function-locals use
///     the function's qualified name, e.g. `PortfolioSolver_solve_cb_mutex`)
///   LockGuard raii(expr[, kAdoptLock]) sites        → AcquireEvent with
///     the lexically-held lock set (RAII scoping, computed by brace depth)
///   HAX_REQUIRES(...) on declarations/definitions   → entry-held locks,
///     merged across header decl and out-of-line def by qualified name
///   HAX_GUARDED_BY fields / other mutable fields    → FieldDecl (feeds
///     the unguarded-shared-field rule)
///   blocking calls (sleep_for, join, submit, solve…)→ BlockEvent
///   every other `name(...)` call                    → CallEvent, with the
///     receiver resolved through member/local/param types where possible
///
/// Lambda bodies are modelled as separate anonymous functions: they can
/// *see* enclosing locals (for lock-expression resolution) but do not
/// inherit the enclosing held-lock set — a LockGuard inside a stored
/// callback is not held at the definition site.
///
/// Comment directives (parsed from raw lines, so they live in comments):
///   // hax-analyze: allow(<rule>[, <rule>...])      — this line only
///   // hax-analyze: allow-file(<rule>[, ...])       — the whole file
///   // hax-analyze: edge(<lock-id> -> <lock-id>)    — declares an
///     acquisition-graph edge the lexical analysis cannot see (callback
///     indirection, e.g. a solver incumbent funnel). Both endpoints must
///     resolve to known lock ids.

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint/lint.h"

namespace hax::analyze {

struct SourceFile {
  std::string rel_path;  ///< repo-relative, forward slashes
  std::string contents;
};

/// One Mutex object in the program (member, function-local, or
/// function-static). `id` is the canonical name used by ranks, declared
/// edges, and diagnostics; extraction fails if two declarations collide.
struct LockDecl {
  std::string id;
  std::string file;
  int line = 0;
  std::string owner;  ///< class scope chain, or function qual-name for locals
  std::string name;   ///< field / variable name
  bool is_member = false;
  bool has_rank = false;  ///< declared with HAX_MUTEX_RANK(<id>)
};

/// A non-exempt data field of a class that owns at least one Mutex.
struct FieldDecl {
  std::string owner;  ///< class scope chain
  std::string name;
  std::string file;
  int line = 0;
  bool guarded = false;     ///< carries HAX_GUARDED_BY(...)
  bool documented = false;  ///< decl comment names a publication/ownership protocol
};

/// LockGuard construction site. `held` is the lock set at the point of
/// acquisition (lexically enclosing guards plus HAX_REQUIRES entry locks).
struct AcquireEvent {
  std::string lock_id;
  int line = 0;
  bool adopt = false;  ///< kAdoptLock: caller already held it (try_lock)
  std::vector<std::string> held;
};

/// A call to a known-blocking operation (sleep_for, join, submit, …).
struct BlockEvent {
  std::string what;  ///< the blocking token, e.g. "sleep_for"
  int line = 0;
  std::vector<std::string> held;
};

/// Any other resolved or unresolved call. `callee` is "Type::method" when
/// the receiver's type was recovered, otherwise the bare name.
struct CallEvent {
  std::string callee;
  int line = 0;
  std::vector<std::string> held;
};

struct Function {
  std::string qual_name;  ///< scope chain + name, e.g. "SelfHealingRuntime::tick"
  std::string file;
  int line = 0;
  std::vector<std::string> requires_locks;  ///< resolved HAX_REQUIRES lock ids
  std::vector<AcquireEvent> acquires;
  std::vector<BlockEvent> blocks;
  std::vector<CallEvent> calls;
};

/// Acquisition-graph edge: `to` was acquired while `from` was held.
struct Edge {
  std::string from;
  std::string to;
  std::string file;  ///< witness site
  int line = 0;
  std::string via;  ///< "" for direct, callee chain for interprocedural,
                    ///< "declared" for hax-analyze: edge(...)
};

/// One hax-analyze suppression directive (usage tracked like lint's).
struct Allowance {
  std::string file;
  int line = 0;
  std::string rule;
  bool file_scope = false;
  bool used = false;
};

struct Model {
  std::vector<LockDecl> locks;
  std::vector<FieldDecl> fields;
  std::vector<Function> functions;
  std::vector<Edge> declared_edges;
  std::vector<Allowance> allowances;        ///< hax-analyze: allow(...) directives
  std::vector<lint::Finding> extraction_errors;  ///< id collisions, bad edge ids, …

  [[nodiscard]] const LockDecl* find_lock(const std::string& id) const;
};

/// Builds the model from already-loaded sources. Pure (no filesystem);
/// `files` should be the src/ tree minus src/common/annotated.h and
/// src/common/lock_ranks.h (the primitives themselves). Extraction
/// problems land in `extraction_errors`, they do not throw.
[[nodiscard]] Model build_model(const std::vector<SourceFile>& files);

/// Marks an allowance used and returns true if `rule` at `file`:`line`
/// is suppressed by a hax-analyze allow directive.
[[nodiscard]] bool consume_allowance(Model& model, const std::string& file, int line,
                                     const std::string& rule);

}  // namespace hax::analyze
