#include "analyze/model.h"

#include <algorithm>
#include <array>
#include <cctype>
#include <deque>

#include "common/cpp_lexer.h"

namespace hax::analyze {
namespace {

using lex::TokKind;
using lex::Token;

/// Idents that never name a user class when guessing a declaration's type.
const std::set<std::string>& type_blacklist() {
  static const std::set<std::string> kSet{
      "std",      "unique_ptr", "shared_ptr", "weak_ptr",  "vector",   "deque",
      "array",    "optional",   "function",   "atomic",    "pair",     "tuple",
      "map",      "unordered_map", "set",     "unordered_set", "string", "string_view",
      "size_t",   "ptrdiff_t",  "uint8_t",    "uint16_t",  "uint32_t", "uint64_t",
      "int8_t",   "int16_t",    "int32_t",    "int64_t",   "bool",     "char",
      "int",      "unsigned",   "signed",     "long",      "short",    "float",
      "double",   "void",       "auto",       "const",     "constexpr", "static",
      "mutable",  "volatile",   "inline",     "chrono",    "steady_clock",
      "system_clock", "time_point", "duration", "milliseconds", "nanoseconds",
      "microseconds", "seconds", "thread",    "explicit",  "virtual",  "friend",
      "hax",      "detail",     "alignas",    "noexcept",  "nodiscard", "maybe_unused",
  };
  return kSet;
}

const std::set<std::string>& keyword_set() {
  static const std::set<std::string> kSet{
      "if",     "while",    "for",         "switch",      "return",      "sizeof",
      "alignof", "alignas", "static_cast", "dynamic_cast", "const_cast",
      "reinterpret_cast", "catch",        "throw",        "new",         "delete",
      "case",   "default",  "do",          "else",         "goto",        "assert",
      "static_assert", "decltype", "noexcept", "typeid",
  };
  return kSet;
}

/// Call names treated as potentially blocking (the blocking-under-lock
/// rule). CondVar::wait / wait_until are allowlisted at the call site
/// when the only held lock is the one being waited on.
const std::set<std::string>& blocking_names() {
  static const std::set<std::string> kSet{
      "sleep_for", "sleep_until", "join",  "submit",        "wait_idle",
      "wait",      "wait_until",  "wait_for", "parallel_for", "solve",
      "solve_schedule",
  };
  return kSet;
}

/// Annotation macros that may decorate a member declaration.
bool is_member_macro(const std::string& s) {
  return s == "HAX_GUARDED_BY" || s == "HAX_PT_GUARDED_BY" || s == "HAX_MUTEX_RANK" ||
         s == "alignas";
}

/// Keywords in a field's declaration comment that document a deliberate
/// non-GUARDED_BY protocol (publication, immutability, thread ownership).
bool comment_documents_protocol(const std::string& raw) {
  static const std::array<const char*, 8> kMarkers{
      "immutable",   "publication", "internally synchronized", "thread-owned",
      "owned by",    "set before",  "const after",             "single-threaded",
  };
  std::string lower(raw.size(), ' ');
  std::transform(raw.begin(), raw.end(), lower.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  for (const char* m : kMarkers) {
    if (lower.find(m) != std::string::npos) return true;
  }
  return false;
}

std::string join_chain(const std::vector<std::string>& chain, const std::string& last) {
  std::string out;
  for (const std::string& c : chain) {
    if (!out.empty()) out += "::";
    out += c;
  }
  if (!last.empty()) {
    if (!out.empty()) out += "::";
    out += last;
  }
  return out;
}

std::string id_from(const std::string& owner, const std::string& name) {
  std::string id;
  id.reserve(owner.size() + name.size() + 1);
  for (std::size_t i = 0; i < owner.size(); ++i) {
    if (owner[i] == ':') {
      if (i + 1 < owner.size() && owner[i + 1] == ':') {
        id += '_';
        ++i;
      }
    } else if (owner[i] == '<' || owner[i] == '>' || owner[i] == '@') {
      id += '_';
    } else {
      id += owner[i];
    }
  }
  if (!id.empty()) id += '_';
  id += name;
  return id;
}

struct MemberInfo {
  std::string name;
  std::string type;  ///< guessed class-like type, "" when none
  int line = 0;
  bool guarded = false;
  bool exempt = false;  ///< const/static/atomic/Mutex/CondVar/function/…
  bool documented = false;
  bool is_mutex = false;
  bool is_condvar = false;
};

struct ClassInfo {
  std::string chain;  ///< "ScheduleCache::Shard"
  std::string file;
  int line = 0;
  std::vector<MemberInfo> members;
  bool owns_mutex = false;

  [[nodiscard]] const MemberInfo* member(const std::string& name) const {
    for (const MemberInfo& m : members) {
      if (m.name == name) return &m;
    }
    return nullptr;
  }
};

/// HAX_REQUIRES expressions attached to a declared method, kept as raw
/// token text for resolution once all locks are known.
struct RequiresDecl {
  std::vector<std::string> exprs;  ///< each expr joined with spaces
  std::string class_chain;
  std::string file;
  int line = 0;
};

struct Scope {
  enum Kind { kNamespace, kClass, kFunction, kLambda, kBlock } kind;
  std::string name;           ///< namespace or class component, "" otherwise
  ClassInfo* cls = nullptr;   ///< kClass
  Function* fn = nullptr;     ///< kFunction / kLambda
  std::vector<std::size_t> guards;  ///< indices into held stack opened here
  std::map<std::string, std::string> locals;  ///< var → type guess
  std::string name_chain;  ///< full class chain for kClass / kFunction
};

/// Whole-program tables built in pass 1 and consumed in pass 2.
struct Program {
  std::map<std::string, ClassInfo> classes;          ///< by full chain
  std::map<std::string, std::vector<std::string>> class_by_tail;  ///< tail → chains
  std::map<std::string, RequiresDecl> method_requires;  ///< by qual name
  std::map<std::string, std::vector<std::string>> func_by_tail;  ///< name → quals
  std::set<std::string> all_function_quals;
  std::deque<Function> functions;  ///< deque: scope frames hold stable pointers
  Model model;
};

struct HeldLock {
  std::string id;
  bool from_requires = false;
};

class FileWalker {
 public:
  FileWalker(Program& prog, const SourceFile& file, bool pass2)
      : prog_(prog), file_(file.rel_path), pass2_(pass2) {
    raw_ = lex::split_lines(file.contents);
    std::vector<std::string> code = lex::strip_comments_and_strings(raw_);
    // Blank preprocessor lines (and their backslash continuations): the
    // token walker models C++, not cpp directives.
    bool cont = false;
    for (std::size_t i = 0; i < code.size(); ++i) {
      const std::size_t first = code[i].find_first_not_of(" \t");
      const bool directive = first != std::string::npos && code[i][first] == '#';
      if (cont || directive) {
        cont = !raw_[i].empty() && raw_[i].back() == '\\';
        code[i].assign(code[i].size(), ' ');
      } else {
        cont = false;
      }
    }
    toks_ = lex::tokenize(code);
  }

  void run() {
    if (!pass2_) collect_directives();
    scopes_.push_back({Scope::kNamespace, "", nullptr, nullptr, {}, {}, {}});
    while (pos_ < toks_.size()) step();
  }

 private:
  // ---- token helpers -------------------------------------------------
  [[nodiscard]] const Token* peek(std::size_t k = 0) const {
    return pos_ + k < toks_.size() ? &toks_[pos_ + k] : nullptr;
  }
  [[nodiscard]] bool at_ident(const char* s, std::size_t k = 0) const {
    const Token* t = peek(k);
    return t != nullptr && t->kind == TokKind::Ident && t->text == s;
  }
  [[nodiscard]] bool at_punct(const char* s, std::size_t k = 0) const {
    const Token* t = peek(k);
    return t != nullptr && t->kind == TokKind::Punct && t->text == s;
  }

  /// With pos_ on an opening delimiter, advances past its match.
  void skip_balanced(const char* open, const char* close) {
    int depth = 0;
    while (pos_ < toks_.size()) {
      if (at_punct(open)) {
        ++depth;
      } else if (at_punct(close)) {
        if (--depth == 0) {
          ++pos_;
          return;
        }
      }
      ++pos_;
    }
  }

  /// Collects the token indices of a balanced group's interior; pos_ must
  /// be on the opener, ends past the closer.
  std::vector<std::size_t> balanced_interior(const char* open, const char* close) {
    std::vector<std::size_t> interior;
    int depth = 0;
    while (pos_ < toks_.size()) {
      if (at_punct(open)) {
        ++depth;
        if (depth == 1) {
          ++pos_;
          continue;
        }
      } else if (at_punct(close)) {
        if (--depth == 0) {
          ++pos_;
          return interior;
        }
      }
      interior.push_back(pos_);
      ++pos_;
    }
    return interior;
  }

  // ---- directives ----------------------------------------------------
  void collect_directives() {
    for (const lex::Directive& d : lex::parse_directives(raw_, "hax-analyze")) {
      if (d.verb == "allow" || d.verb == "allow-file") {
        for (const std::string& rule : lex::split_args(d.args)) {
          prog_.model.allowances.push_back({file_, d.line, rule, d.verb == "allow-file", false});
        }
      } else if (d.verb == "edge") {
        const std::size_t arrow = d.args.find("->");
        if (arrow == std::string::npos) {
          prog_.model.extraction_errors.push_back(
              {file_, d.line, "bad-directive", "edge(...) needs `A -> B`: " + d.args});
          continue;
        }
        auto trim = [](std::string s) {
          const std::size_t lo = s.find_first_not_of(" \t");
          const std::size_t hi = s.find_last_not_of(" \t");
          return lo == std::string::npos ? std::string() : s.substr(lo, hi - lo + 1);
        };
        prog_.model.declared_edges.push_back({trim(d.args.substr(0, arrow)),
                                              trim(d.args.substr(arrow + 2)), file_, d.line,
                                              "declared"});
      } else {
        prog_.model.extraction_errors.push_back(
            {file_, d.line, "bad-directive", "unknown hax-analyze verb: " + d.verb});
      }
    }
  }

  // ---- scope machinery -----------------------------------------------
  [[nodiscard]] Scope& top() { return scopes_.back(); }

  [[nodiscard]] std::vector<std::string> namespace_class_chain() const {
    std::vector<std::string> chain;
    for (const Scope& s : scopes_) {
      if (s.kind == Scope::kClass) chain.push_back(s.name);
    }
    return chain;
  }

  [[nodiscard]] Function* enclosing_function() {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (it->kind == Scope::kFunction || it->kind == Scope::kLambda) return it->fn;
    }
    return nullptr;
  }

  void pop_scope() {
    Scope& s = scopes_.back();
    for (auto it = s.guards.rbegin(); it != s.guards.rend(); ++it) {
      if (*it < held_.size()) held_.erase(held_.begin() + static_cast<std::ptrdiff_t>(*it));
    }
    if (s.kind == Scope::kFunction || s.kind == Scope::kLambda) {
      // Restore the held set saved at entry (REQUIRES of the outer frame).
      held_ = std::move(held_save_.back());
      held_save_.pop_back();
      fn_stack_.pop_back();
    }
    scopes_.pop_back();
    if (scopes_.empty()) scopes_.push_back({Scope::kNamespace, "", nullptr, nullptr, {}, {}, {}});
  }

  // ---- main dispatch -------------------------------------------------
  void step() {
    if (at_punct("}")) {
      ++pos_;
      if (scopes_.size() > 1) pop_scope();
      return;
    }
    if (at_punct(";") || at_punct(",")) {
      ++pos_;
      return;
    }
    const Scope::Kind kind = top().kind;
    if (kind == Scope::kNamespace || kind == Scope::kClass) {
      decl_statement();
    } else {
      body_token();
    }
  }

  // ---- declaration-scope parsing -------------------------------------
  void decl_statement() {
    const Token* t = peek();
    if (t == nullptr) {
      ++pos_;
      return;
    }
    if (t->kind != TokKind::Ident) {
      if (at_punct("[")) {  // [[attribute]]
        skip_balanced("[", "]");
        return;
      }
      if (at_punct("{")) {  // stray brace (extern "C" etc.) — plain scope
        ++pos_;
        scopes_.push_back({Scope::kNamespace, "", nullptr, nullptr, {}, {}, {}});
        return;
      }
      ++pos_;
      return;
    }
    const std::string& w = t->text;
    if (w == "public" || w == "private" || w == "protected") {
      pos_ += at_punct(":", 1) ? 2 : 1;
      return;
    }
    if (w == "template") {
      ++pos_;
      skip_angles();
      return;
    }
    if (w == "namespace") {
      ++pos_;
      std::string name;
      while (peek() != nullptr && !at_punct("{") && !at_punct(";")) {
        if (peek()->kind == TokKind::Ident) name = peek()->text;
        ++pos_;
      }
      if (at_punct("{")) {
        ++pos_;
        Scope s{Scope::kNamespace, name, nullptr, nullptr, {}, {}, {}};
        scopes_.push_back(std::move(s));
      } else {
        ++pos_;
      }
      return;
    }
    if ((w == "class" || w == "struct") && !prev_is("enum") && !prev_is("friend")) {
      parse_class_head();
      return;
    }
    if (w == "enum" || w == "using" || w == "typedef" || w == "friend" ||
        w == "static_assert" || w == "extern") {
      skip_statement();
      return;
    }
    parse_member_or_function();
  }

  [[nodiscard]] bool prev_is(const char* s) const {
    return pos_ > 0 && toks_[pos_ - 1].kind == TokKind::Ident && toks_[pos_ - 1].text == s;
  }

  void skip_angles() {
    if (!at_punct("<")) return;
    int depth = 0;
    while (pos_ < toks_.size()) {
      if (at_punct("<")) ++depth;
      if (at_punct(">")) {
        if (--depth == 0) {
          ++pos_;
          return;
        }
      }
      ++pos_;
    }
  }

  /// Skips to the end of the current statement: `;` at depth 0, or past a
  /// balanced `{...}` body (e.g. enum definitions).
  void skip_statement() {
    int paren = 0;
    while (pos_ < toks_.size()) {
      if (at_punct("(") || at_punct("[")) ++paren;
      if (at_punct(")") || at_punct("]")) --paren;
      if (paren == 0 && at_punct("{")) {
        skip_balanced("{", "}");
        if (at_punct(";")) ++pos_;
        return;
      }
      if (paren == 0 && at_punct(";")) {
        ++pos_;
        return;
      }
      ++pos_;
    }
  }

  void parse_class_head() {
    const int line = peek()->line;
    ++pos_;  // class/struct
    if (at_ident("alignas") && at_punct("(", 1)) {
      ++pos_;
      skip_balanced("(", ")");
    }
    // Attribute-macro idents with parens (e.g. HAX_CAPABILITY("mutex")).
    std::vector<std::string> name_parts;
    while (pos_ < toks_.size() && !at_punct("{") && !at_punct(";") && !at_punct(":")) {
      if (peek()->kind == TokKind::Ident) {
        if (at_punct("(", 1)) {
          ++pos_;
          skip_balanced("(", ")");
          continue;
        }
        if (peek()->text != "final") name_parts.push_back(peek()->text);
        ++pos_;
        continue;
      }
      if (at_punct("::")) {
        ++pos_;
        continue;
      }
      if (at_punct("[")) {
        skip_balanced("[", "]");
        continue;
      }
      ++pos_;
    }
    if (at_punct(":")) {  // base clause
      while (pos_ < toks_.size() && !at_punct("{") && !at_punct(";")) {
        if (at_punct("<")) {
          skip_angles();
          continue;
        }
        ++pos_;
      }
    }
    if (at_punct(";") || name_parts.empty()) {  // forward declaration
      if (at_punct(";")) ++pos_;
      return;
    }
    if (!at_punct("{")) return;
    ++pos_;
    // Qualified heads (`struct SchedulerService::State {`) contribute the
    // whole written chain; otherwise nest under the enclosing classes.
    std::vector<std::string> chain = namespace_class_chain();
    for (const std::string& p : name_parts) chain.push_back(p);
    std::string full = join_chain(chain, "");
    Scope s{Scope::kClass, name_parts.back(), nullptr, nullptr, {}, {}, {}};
    s.name_chain = full;
    if (!pass2_) {
      ClassInfo info;
      info.chain = full;
      info.file = file_;
      info.line = line;
      prog_.classes.emplace(full, std::move(info));
      prog_.class_by_tail[name_parts.back()].push_back(full);
    }
    s.cls = &prog_.classes[full];
    scopes_.push_back(std::move(s));
  }

  /// At class or namespace scope: a member variable, a method
  /// declaration/definition, or a free-function definition.
  void parse_member_or_function() {
    const std::size_t start = pos_;
    // Operator overloads parse like neither members nor plain functions
    // (the `==`/`()` tokens confuse both paths); they also never matter
    // to the model, so skip the whole definition.
    for (std::size_t probe = start; probe < toks_.size() && probe < start + 8; ++probe) {
      const Token& tk = toks_[probe];
      if (tk.kind == TokKind::Ident && tk.text == "operator") {
        skip_statement();
        return;
      }
      if (tk.kind == TokKind::Punct && (tk.text == ";" || tk.text == "{")) break;
    }
    // Scan the statement looking for the first `(` at angle depth 0 whose
    // preceding token is a plain ident that is not an annotation macro —
    // that ident is a function name. Otherwise this is a member/variable.
    std::size_t scan = pos_;
    int angle = 0;
    std::size_t fn_name_at = std::string::npos;
    while (scan < toks_.size()) {
      const Token& tk = toks_[scan];
      if (tk.kind == TokKind::Punct) {
        if (tk.text == "<") ++angle;
        if (tk.text == ">" && angle > 0) --angle;
        if (tk.text == ";" || tk.text == "{" || tk.text == "}") break;
        if (tk.text == "=" ) break;  // `Type x = init;` — member
        if (tk.text == "(" && angle == 0) {
          if (scan > start && toks_[scan - 1].kind == TokKind::Ident &&
              !is_member_macro(toks_[scan - 1].text)) {
            fn_name_at = scan - 1;
          } else if (scan > start && toks_[scan - 1].kind == TokKind::Punct &&
                     toks_[scan - 1].text == "~") {
            fn_name_at = scan;  // destructor — treat like a function
          }
          break;
        }
      }
      ++scan;
    }
    if (fn_name_at != std::string::npos) {
      parse_function(fn_name_at);
    } else {
      parse_member();
    }
  }

  /// Member/variable declaration ending in `;` (possibly with `= init` or
  /// `{init}`); pos_ is at its first token.
  void parse_member() {
    const int line = peek()->line;
    std::vector<std::string> idents;
    bool guarded = false;
    bool has_const = false;
    bool has_static = false;
    bool has_atomic = false;
    int angle = 0;
    std::size_t name_at = std::string::npos;
    while (pos_ < toks_.size()) {
      if (at_punct(";")) {
        ++pos_;
        break;
      }
      if (at_punct("{")) {  // default member initializer
        skip_balanced("{", "}");
        continue;
      }
      if (at_punct("=")) {  // skip initializer to `;`
        while (pos_ < toks_.size() && !at_punct(";")) {
          if (at_punct("{")) {
            skip_balanced("{", "}");
            continue;
          }
          if (at_punct("(")) {
            skip_balanced("(", ")");
            continue;
          }
          ++pos_;
        }
        continue;
      }
      const Token* t = peek();
      if (t->kind == TokKind::Ident) {
        if (is_member_macro(t->text) && at_punct("(", 1)) {
          if (t->text == "HAX_GUARDED_BY" || t->text == "HAX_PT_GUARDED_BY") guarded = true;
          ++pos_;
          skip_balanced("(", ")");
          continue;
        }
        if (t->text == "const" || t->text == "constexpr") has_const = true;
        if (t->text == "static") has_static = true;
        if (t->text == "atomic") has_atomic = true;
        if (angle == 0) name_at = pos_;
        idents.push_back(t->text);
        ++pos_;
        continue;
      }
      if (at_punct("<")) ++angle;
      if (at_punct(">") && angle > 0) --angle;
      ++pos_;
    }
    if (name_at == std::string::npos) return;
    const std::string name = toks_[name_at].text;

    // Type guess: last class-like ident before the name.
    std::string type;
    bool saw_mutex = false;
    bool saw_condvar = false;
    for (const std::string& id : idents) {
      if (id == name && &id == &idents.back()) break;
      if (id == "Mutex") saw_mutex = true;
      if (id == "CondVar") saw_condvar = true;
      if (type_blacklist().count(id) == 0 && id != name && id.rfind("HAX_", 0) != 0) {
        type = id;
      }
    }
    if (pass2_) return;

    Scope& s = top();
    if (s.kind != Scope::kClass || s.cls == nullptr) {
      // Namespace-scope variable (e.g. `inline constexpr ...`) — ignore.
      return;
    }
    MemberInfo m;
    m.name = name;
    m.type = type;
    m.line = line;
    m.guarded = guarded;
    m.is_mutex = saw_mutex && type == "Mutex";
    m.is_condvar = saw_condvar && type == "CondVar";
    m.documented = decl_comment_documents(line);
    m.exempt = has_const || has_static || has_atomic || m.is_mutex || m.is_condvar;
    s.cls->members.push_back(m);
    if (m.is_mutex) {
      s.cls->owns_mutex = true;
      add_lock(s.cls->chain, name, line, /*is_member=*/true);
    }
  }

  /// True when the raw decl line (or up to 3 lines above it) carries a
  /// comment documenting a publication/ownership protocol.
  [[nodiscard]] bool decl_comment_documents(int line) const {
    for (int l = line; l >= 1 && l >= line - 3; --l) {
      const std::string& raw = raw_[static_cast<std::size_t>(l) - 1];
      const std::size_t slash = raw.find("//");
      if (l == line) {
        if (slash != std::string::npos && comment_documents_protocol(raw.substr(slash))) {
          return true;
        }
        continue;
      }
      // A preceding line counts only if it is comment-only.
      const std::size_t first = raw.find_first_not_of(" \t");
      if (first == std::string::npos) break;
      if (raw.compare(first, 2, "//") != 0) break;
      if (comment_documents_protocol(raw.substr(first))) return true;
    }
    return false;
  }

  void add_lock(const std::string& owner, const std::string& name, int line, bool is_member) {
    if (pass2_) return;
    LockDecl d;
    d.id = id_from(owner, name);
    d.file = file_;
    d.line = line;
    d.owner = owner;
    d.name = name;
    d.is_member = is_member;
    for (const LockDecl& existing : prog_.model.locks) {
      if (existing.id == d.id) {
        prog_.model.extraction_errors.push_back(
            {file_, line,
             "lock-id-collision", "lock id `" + d.id + "` already declared at " +
                 existing.file + ":" + std::to_string(existing.line)});
        return;
      }
    }
    prog_.model.locks.push_back(std::move(d));
  }

  /// Function declaration or definition; `name_at` indexes the name token.
  void parse_function(std::size_t name_at) {
    // Qualified name: walk back over `A :: B ::` pairs.
    std::vector<std::string> quals;
    std::size_t back = name_at;
    if (back >= 1 && toks_[back - 1].kind == TokKind::Punct && toks_[back - 1].text == "~") {
      --back;  // destructor: the `A::` chain sits before the `~`
    }
    while (back >= 2 && toks_[back - 1].kind == TokKind::Punct && toks_[back - 1].text == "::" &&
           toks_[back - 2].kind == TokKind::Ident) {
      quals.insert(quals.begin(), toks_[back - 2].text);
      back -= 2;
    }
    std::string name = toks_[name_at].kind == TokKind::Ident ? toks_[name_at].text : "~dtor";
    if (name_at > 0 && toks_[name_at - 1].kind == TokKind::Punct &&
        toks_[name_at - 1].text == "~") {
      name = "~" + name;
    }
    const int line = toks_[name_at].line;

    std::vector<std::string> chain = namespace_class_chain();
    for (const std::string& q : quals) chain.push_back(q);
    const std::string class_chain = join_chain(chain, "");
    const std::string qual = join_chain(chain, name);

    // Parameters.
    pos_ = name_at + (toks_[name_at].kind == TokKind::Ident ? 1 : 0);
    while (pos_ < toks_.size() && !at_punct("(")) ++pos_;
    const std::vector<std::size_t> params = balanced_interior("(", ")");

    // Trailer: const/noexcept/annotations/init list, until `{`, `;` or `=`.
    std::vector<std::string> requires_exprs;
    bool has_body = false;
    while (pos_ < toks_.size()) {
      if (at_punct("{")) {
        has_body = true;
        break;
      }
      if (at_punct(";")) {
        ++pos_;
        break;
      }
      if (at_punct("=")) {  // = default / = delete / = 0
        skip_statement();
        break;
      }
      if (at_ident("HAX_REQUIRES") && at_punct("(", 1)) {
        ++pos_;
        const std::vector<std::size_t> in = balanced_interior("(", ")");
        for (const std::string& e : split_expr_list(in)) requires_exprs.push_back(e);
        continue;
      }
      if (peek()->kind == TokKind::Ident && at_punct("(", 1)) {  // other macros/noexcept(...)
        ++pos_;
        skip_balanced("(", ")");
        continue;
      }
      if (at_punct(":")) {  // constructor init list
        ++pos_;
        while (pos_ < toks_.size() && !at_punct("{") && !at_punct(";")) {
          if (at_punct("(")) {
            skip_balanced("(", ")");
            continue;
          }
          if (at_punct("{")) break;
          if (peek()->kind == TokKind::Ident && at_punct("{", 1)) {
            ++pos_;
            skip_balanced("{", "}");
            continue;
          }
          if (at_punct("<")) {
            skip_angles();
            continue;
          }
          ++pos_;
        }
        continue;
      }
      ++pos_;
    }

    if (!pass2_) {
      if (!requires_exprs.empty()) {
        RequiresDecl& rd = prog_.method_requires[qual];
        for (std::string& e : requires_exprs) rd.exprs.push_back(std::move(e));
        rd.class_chain = class_chain;
        rd.file = file_;
        rd.line = line;
      }
      prog_.all_function_quals.insert(qual);
      prog_.func_by_tail[name].push_back(qual);
    }

    if (!has_body) return;
    ++pos_;  // consume `{`

    if (!pass2_) {
      // Pass 1 still walks bodies (cheaply) to find function-local Mutex
      // declarations; enter a lightweight function scope.
      enter_function_scope(qual, class_chain, line, /*record_events=*/false, params);
      return;
    }
    enter_function_scope(qual, class_chain, line, /*record_events=*/true, params);
    // Entry-held locks: HAX_REQUIRES from this definition plus any header
    // declaration of the same qualified name.
    Function* fn = top().fn;
    std::set<std::string> req;
    for (const std::string& e : requires_exprs) {
      const std::string id = resolve_expr_text(e, fn->line);
      if (!id.empty()) req.insert(id);
    }
    const auto decl = prog_.method_requires.find(qual);
    if (decl != prog_.method_requires.end()) {
      for (const std::string& e : decl->second.exprs) {
        const std::string id =
            resolve_expr_in_class(e, decl->second.class_chain, fn->line);
        if (!id.empty()) req.insert(id);
      }
    }
    for (const std::string& id : req) {
      fn->requires_locks.push_back(id);
      held_.push_back({id, true});
    }
  }

  void enter_function_scope(const std::string& qual, const std::string& class_chain, int line,
                            bool record_events, const std::vector<std::size_t>& params) {
    held_save_.push_back(held_);
    held_.clear();
    Scope s{Scope::kFunction, "", nullptr, nullptr, {}, {}, {}};
    s.name_chain = class_chain;
    if (record_events) {
      prog_.functions.push_back({});
      Function& fn = prog_.functions.back();
      fn.qual_name = qual;
      fn.file = file_;
      fn.line = line;
      s.fn = &fn;
    } else {
      s.fn = nullptr;
    }
    // Parameter types for receiver/lock resolution.
    for (const auto& [pname, ptype] : split_params(params)) s.locals[pname] = ptype;
    fn_stack_.push_back(qual);
    scopes_.push_back(std::move(s));
  }

  /// Splits a parameter-list interior into (name, type-guess) pairs.
  [[nodiscard]] std::vector<std::pair<std::string, std::string>> split_params(
      const std::vector<std::size_t>& interior) const {
    std::vector<std::pair<std::string, std::string>> out;
    std::vector<std::size_t> current;
    int depth = 0;
    auto flush = [&]() {
      // Name = last top-level ident before any default argument; type
      // guess = last non-blacklisted ident strictly before the name (so
      // `Shared& sh` guesses Shared, not sh).
      std::size_t name_at = current.size();
      int angle = 0;
      for (std::size_t i = 0; i < current.size(); ++i) {
        const Token& t = toks_[current[i]];
        if (t.kind == TokKind::Punct) {
          if (t.text == "<") ++angle;
          if (t.text == ">" && angle > 0) --angle;
          if (t.text == "=") break;  // default argument
          continue;
        }
        if (t.kind == TokKind::Ident && angle == 0) name_at = i;
      }
      std::string name;
      std::string type;
      if (name_at < current.size()) {
        name = toks_[current[name_at]].text;
        for (std::size_t i = 0; i < name_at; ++i) {
          const Token& t = toks_[current[i]];
          if (t.kind == TokKind::Ident && type_blacklist().count(t.text) == 0 &&
              t.text.rfind("HAX_", 0) != 0) {
            type = t.text;
          }
        }
      }
      if (!name.empty() && !type.empty()) out.emplace_back(name, type);
      current.clear();
    };
    for (const std::size_t idx : interior) {
      const Token& t = toks_[idx];
      if (t.kind == TokKind::Punct) {
        if (t.text == "(" || t.text == "<" || t.text == "[" || t.text == "{") ++depth;
        if (t.text == ")" || t.text == ">" || t.text == "]" || t.text == "}") --depth;
        if (t.text == "," && depth == 0) {
          flush();
          continue;
        }
      }
      current.push_back(idx);
    }
    flush();
    return out;
  }

  /// Splits a macro-argument interior on top-level commas into
  /// space-joined expression strings.
  [[nodiscard]] std::vector<std::string> split_expr_list(
      const std::vector<std::size_t>& interior) const {
    std::vector<std::string> out;
    std::string cur;
    int depth = 0;
    for (const std::size_t idx : interior) {
      const Token& t = toks_[idx];
      if (t.kind == TokKind::Punct) {
        if (t.text == "(" || t.text == "[" || t.text == "<") ++depth;
        if (t.text == ")" || t.text == "]" || t.text == ">") --depth;
        if (t.text == "," && depth == 0) {
          if (!cur.empty()) out.push_back(cur);
          cur.clear();
          continue;
        }
      }
      if (!cur.empty()) cur += ' ';
      cur += t.text;
    }
    if (!cur.empty()) out.push_back(cur);
    return out;
  }

  // ---- body parsing (pass 2, and local-lock collection in pass 1) ----
  void body_token() {
    const Token* t = peek();
    if (t == nullptr) {
      ++pos_;
      return;
    }
    if (at_punct("{")) {
      ++pos_;
      scopes_.push_back({Scope::kBlock, "", nullptr, nullptr, {}, {}, {}});
      return;
    }
    if (at_punct("[")) {
      handle_bracket();
      return;
    }
    if (t->kind != TokKind::Ident) {
      ++pos_;
      return;
    }
    const std::string& w = t->text;
    const bool stmt_start = pos_ == 0 || (toks_[pos_ - 1].kind == TokKind::Punct &&
                                          (toks_[pos_ - 1].text == ";" || toks_[pos_ - 1].text == "{" ||
                                           toks_[pos_ - 1].text == "}")) ||
                            prev_is("static") || prev_is("const");
    if (w == "LockGuard" && stmt_start) {
      parse_lock_guard();
      return;
    }
    if ((w == "Mutex" || w == "CondVar") && stmt_start && peek(1) != nullptr &&
        peek(1)->kind == TokKind::Ident) {
      parse_local_sync_decl(w);
      return;
    }
    if (keyword_set().count(w) != 0) {
      ++pos_;
      return;
    }
    // `Type name` / `Type& name` local declaration: record the type for
    // resolution (the initializer is still walked for calls).
    if (stmt_start && prog_.class_by_tail.count(w) != 0) {
      std::size_t j = pos_ + 1;
      while (j < toks_.size() && toks_[j].kind == TokKind::Punct &&
             (toks_[j].text == "&" || toks_[j].text == "*")) {
        ++j;
      }
      if (j < toks_.size() && toks_[j].kind == TokKind::Ident && j + 1 < toks_.size() &&
          toks_[j + 1].kind == TokKind::Punct &&
          (toks_[j + 1].text == ";" || toks_[j + 1].text == "=" ||
           toks_[j + 1].text == "{" || toks_[j + 1].text == "(")) {
        for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
          if (it->kind == Scope::kFunction || it->kind == Scope::kLambda ||
              it->kind == Scope::kBlock) {
            it->locals[toks_[j].text] = w;
            break;
          }
        }
        pos_ = j + 1;
        return;
      }
    }
    // `auto x = std::make_shared<T>(...)` / make_unique: x has type T.
    if (w == "auto" && peek(1) != nullptr && peek(1)->kind == TokKind::Ident &&
        at_punct("=", 2)) {
      const std::string var = peek(1)->text;
      std::size_t scan = pos_ + 3;
      std::string made;
      int guard = 0;
      while (scan < toks_.size() && guard < 16) {
        const Token& mk = toks_[scan];
        if (mk.kind == TokKind::Punct && (mk.text == ";" || mk.text == "(")) break;
        if (mk.kind == TokKind::Ident &&
            (mk.text == "make_shared" || mk.text == "make_unique")) {
          // Last class-like ident inside the template args.
          std::size_t a = scan + 1;
          int angle = 0;
          while (a < toks_.size()) {
            const Token& at = toks_[a];
            if (at.kind == TokKind::Punct) {
              if (at.text == "<") ++angle;
              if (at.text == ">") {
                if (--angle == 0) break;
              }
            } else if (at.kind == TokKind::Ident && type_blacklist().count(at.text) == 0) {
              made = at.text;
            }
            ++a;
          }
          break;
        }
        ++scan;
        ++guard;
      }
      if (!made.empty()) {
        for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
          if (it->kind == Scope::kFunction || it->kind == Scope::kLambda ||
              it->kind == Scope::kBlock) {
            it->locals[var] = made;
            break;
          }
        }
      }
      pos_ += 2;
      return;
    }
    if (at_punct("(", 1)) {
      handle_call();
      return;
    }
    ++pos_;
  }

  void handle_bracket() {
    if (at_punct("[", 1)) {  // [[attribute]]
      skip_balanced("[", "]");
      return;
    }
    const bool subscript =
        pos_ > 0 && ((toks_[pos_ - 1].kind == TokKind::Ident) ||
                     (toks_[pos_ - 1].kind == TokKind::Punct &&
                      (toks_[pos_ - 1].text == ")" || toks_[pos_ - 1].text == "]")));
    if (subscript) {
      ++pos_;  // contents are still walked (calls inside subscripts count)
      return;
    }
    // Lambda introducer: skip capture list, optional params, specifiers.
    const int line = peek()->line;
    skip_balanced("[", "]");
    std::vector<std::size_t> params;
    if (at_punct("(")) params = balanced_interior("(", ")");
    while (pos_ < toks_.size() && !at_punct("{") && !at_punct(";") && !at_punct(")") &&
           !at_punct(",")) {
      if (at_ident("noexcept") && at_punct("(", 1)) {
        ++pos_;
        skip_balanced("(", ")");
        continue;
      }
      if (at_punct("->")) {  // trailing return type
        ++pos_;
        while (pos_ < toks_.size() && !at_punct("{")) {
          if (at_punct("<")) {
            skip_angles();
            continue;
          }
          if (at_punct(";") || at_punct(")") || at_punct(",")) break;
          ++pos_;
        }
        continue;
      }
      ++pos_;
    }
    if (!at_punct("{")) return;  // not a lambda body after all
    ++pos_;
    const std::string parent = fn_stack_.empty() ? "<toplevel>" : fn_stack_.back();
    const std::string qual = parent + "::<lambda:" + std::to_string(line) + ">";
    const std::string cls = top_class_chain();
    enter_function_scope(qual, cls, line, /*record_events=*/pass2_, params);
    scopes_.back().kind = Scope::kLambda;
  }

  [[nodiscard]] std::string top_class_chain() const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (!it->name_chain.empty()) return it->name_chain;
    }
    return "";
  }

  void parse_local_sync_decl(const std::string& kind) {
    const int line = peek()->line;
    ++pos_;
    const std::string name = peek()->text;
    ++pos_;
    const std::string owner = fn_stack_.empty() ? "<toplevel>" : fn_stack_.back();
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (it->kind == Scope::kFunction || it->kind == Scope::kLambda ||
          it->kind == Scope::kBlock) {
        it->locals[name] = kind;
        break;
      }
    }
    if (kind == "Mutex") add_lock(owner, name, line, /*is_member=*/false);
    // Skip any initializer up to `;`.
    while (pos_ < toks_.size() && !at_punct(";")) {
      if (at_punct("{")) {
        skip_balanced("{", "}");
        continue;
      }
      if (at_punct("(")) {
        skip_balanced("(", ")");
        continue;
      }
      ++pos_;
    }
  }

  void parse_lock_guard() {
    const int line = peek()->line;
    ++pos_;  // LockGuard
    if (peek() != nullptr && peek()->kind == TokKind::Ident) ++pos_;  // guard name
    if (!at_punct("(")) {
      // `LockGuard` in some other position (e.g. a type mention) — skip.
      return;
    }
    const std::vector<std::size_t> interior = balanced_interior("(", ")");
    const std::vector<std::string> argv = split_expr_list(interior);
    if (argv.empty()) return;
    const bool adopt = argv.size() > 1 && argv[1].find("kAdoptLock") != std::string::npos;
    if (!pass2_) return;
    Function* fn = enclosing_function();
    if (fn == nullptr) return;
    const std::string id = resolve_expr_text(argv[0], line);
    if (id.empty()) {
      prog_.model.extraction_errors.push_back(
          {file_, line, "unresolved-lock", "cannot resolve LockGuard target `" + argv[0] + "`"});
      return;
    }
    AcquireEvent ev;
    ev.lock_id = id;
    ev.line = line;
    ev.adopt = adopt;
    for (const HeldLock& h : held_) ev.held.push_back(h.id);
    fn->acquires.push_back(std::move(ev));
    held_.push_back({id, false});
    // The guard dies when the *current* scope closes.
    top().guards.push_back(held_.size() - 1);
  }

  void handle_call() {
    const std::string callee = peek()->text;
    const int line = peek()->line;
    // Receiver chain: walk back over `x .` / `x ->` / `X ::` pairs.
    std::vector<std::string> recv;  // outermost-first idents
    std::vector<std::string> seps;
    std::size_t back = pos_;
    bool qualified_static = false;
    while (back >= 2 && toks_[back - 1].kind == TokKind::Punct &&
           (toks_[back - 1].text == "." || toks_[back - 1].text == "->" ||
            toks_[back - 1].text == "::")) {
      if (toks_[back - 1].text == "::") qualified_static = true;
      std::size_t prev = back - 2;
      // Skip a subscript or call group between the sep and the ident.
      if (toks_[prev].kind == TokKind::Punct &&
          (toks_[prev].text == "]" || toks_[prev].text == ")")) {
        const std::string close = toks_[prev].text;
        const std::string open = close == "]" ? "[" : "(";
        int depth = 0;
        while (prev > 0) {
          if (toks_[prev].kind == TokKind::Punct && toks_[prev].text == close) ++depth;
          if (toks_[prev].kind == TokKind::Punct && toks_[prev].text == open) {
            if (--depth == 0) break;
          }
          --prev;
        }
        if (prev == 0) break;
        --prev;
      }
      if (toks_[prev].kind != TokKind::Ident) break;
      recv.insert(recv.begin(), toks_[prev].text);
      seps.insert(seps.begin(), toks_[back - 1].text);
      back = prev;
    }
    ++pos_;  // callee name; the `(` and args are walked normally

    if (!pass2_) return;
    Function* fn = enclosing_function();
    if (fn == nullptr) return;

    // Resolve the receiver to a type where possible.
    std::string recv_type;
    if (!recv.empty()) {
      if (qualified_static) {
        recv_type = recv.back();  // `Class::method(...)`
      } else {
        recv_type = resolve_chain_type(recv);
      }
    }

    if (blocking_names().count(callee) != 0) {
      const bool condvar_wait =
          (callee == "wait" || callee == "wait_until" || callee == "wait_for") &&
          recv_type == "CondVar";
      if (condvar_wait) {
        // Allowed only when the single held lock is the one being waited
        // on (waiting while holding anything else blocks that other lock).
        const std::string arg = first_call_arg();
        const std::string waited = arg.empty() ? "" : resolve_expr_text(arg, line);
        bool extra_held = false;
        for (const HeldLock& h : held_) {
          if (h.id != waited) extra_held = true;
        }
        if (!extra_held) return;
      }
      // Recorded even with nothing held: the blocks-closure must know this
      // function can block so call sites under locks get flagged.
      BlockEvent ev;
      ev.what = callee;
      ev.line = line;
      for (const HeldLock& h : held_) ev.held.push_back(h.id);
      fn->blocks.push_back(std::move(ev));
      return;
    }

    // A receiver we cannot type is almost always a container / std object
    // (`change_times_.clear()`, `ring.insert(...)`); binding its method
    // name to a model function by unique tail would fabricate edges, so
    // drop the call instead (under-approximate).
    if (!recv.empty() && recv_type.empty()) return;

    CallEvent ev;
    ev.callee = recv_type.empty() ? callee : recv_type + "::" + callee;
    ev.line = line;
    for (const HeldLock& h : held_) ev.held.push_back(h.id);
    fn->calls.push_back(std::move(ev));
  }

  /// Text of the first argument of the call whose name pos_ sits on
  /// (pos_ is already past the callee; the `(` is next).
  [[nodiscard]] std::string first_call_arg() const {
    std::size_t i = pos_;
    if (i >= toks_.size() || toks_[i].kind != TokKind::Punct || toks_[i].text != "(") return "";
    ++i;
    std::string out;
    int depth = 1;
    while (i < toks_.size() && depth > 0) {
      const Token& t = toks_[i];
      if (t.kind == TokKind::Punct) {
        if (t.text == "(") ++depth;
        if (t.text == ")") {
          if (--depth == 0) break;
        }
        if (t.text == "," && depth == 1) break;
      }
      if (!out.empty()) out += ' ';
      out += t.text;
      ++i;
    }
    return out;
  }

  // ---- name resolution -----------------------------------------------
  /// Looks up a simple type name in class tables, preferring the
  /// enclosing class's nested types, then an exact chain, then a unique
  /// tail match.
  [[nodiscard]] std::string resolve_class_name(const std::string& name) const {
    const std::string enclosing = top_class_chain();
    if (!enclosing.empty()) {
      std::string probe = enclosing;
      while (true) {
        const std::string candidate = probe.empty() ? name : probe + "::" + name;
        if (prog_.classes.count(candidate) != 0) return candidate;
        const std::size_t cut = probe.rfind("::");
        if (cut == std::string::npos) {
          if (!probe.empty()) {
            probe.clear();
            continue;
          }
          break;
        }
        probe = probe.substr(0, cut);
      }
    }
    if (prog_.classes.count(name) != 0) return name;
    const auto tails = prog_.class_by_tail.find(name);
    if (tails != prog_.class_by_tail.end() && tails->second.size() == 1) {
      return tails->second[0];
    }
    return "";
  }

  /// Type (class chain) of a local/param/member ident, "" if unknown.
  [[nodiscard]] std::string type_of_ident(const std::string& name) const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      const auto local = it->locals.find(name);
      if (local != it->locals.end()) {
        if (local->second == "Mutex" || local->second == "CondVar") return local->second;
        return resolve_class_name(local->second);
      }
    }
    const std::string cls = top_class_chain();
    std::string probe = cls;
    while (!probe.empty()) {
      const auto found = prog_.classes.find(probe);
      if (found != prog_.classes.end()) {
        if (const MemberInfo* m = found->second.member(name)) {
          if (m->is_mutex) return "Mutex";
          if (m->is_condvar) return "CondVar";
          if (!m->type.empty()) return resolve_class_name(m->type);
          return "";
        }
      }
      const std::size_t cut = probe.rfind("::");
      probe = cut == std::string::npos ? "" : probe.substr(0, cut);
    }
    return "";
  }

  /// Resolves a `.`/`->` receiver chain to the type of its final element.
  [[nodiscard]] std::string resolve_chain_type(const std::vector<std::string>& chain) const {
    if (chain.empty()) return "";
    std::string type;
    std::size_t start = 0;
    if (chain[0] == "this") {
      type = top_class_chain();
      start = 1;
      if (start == chain.size()) return type;
    } else {
      type = type_of_ident(chain[0]);
      start = 1;
    }
    for (std::size_t i = start; i < chain.size(); ++i) {
      if (type.empty() || type == "Mutex" || type == "CondVar") return "";
      const auto found = prog_.classes.find(type);
      if (found == prog_.classes.end()) return "";
      const MemberInfo* m = found->second.member(chain[i]);
      if (m == nullptr) return "";
      if (m->is_mutex) return "Mutex";
      if (m->is_condvar) return "CondVar";
      type = m->type.empty() ? "" : resolve_class_name(m->type);
    }
    return type;
  }

  /// Resolves a lock expression (space-joined token text) to a lock id.
  [[nodiscard]] std::string resolve_expr_text(const std::string& expr, int line) {
    return resolve_expr_impl(expr, top_class_chain(), line, /*use_scopes=*/true);
  }

  /// Resolution in a foreign class context (header HAX_REQUIRES merged
  /// into a .cpp definition).
  [[nodiscard]] std::string resolve_expr_in_class(const std::string& expr,
                                                  const std::string& class_chain, int line) {
    return resolve_expr_impl(expr, class_chain, line, /*use_scopes=*/false);
  }

  [[nodiscard]] std::string resolve_expr_impl(const std::string& expr,
                                              const std::string& class_chain, int line,
                                              bool use_scopes) {
    (void)line;
    // Tokenize the expression text into elements split on `.` / `->`,
    // dropping leading `*`/`&`, `this ->`, subscripts, and call parens.
    std::vector<std::string> elems;
    std::vector<bool> is_call;
    {
      std::string cur;
      bool call = false;
      int depth = 0;
      std::size_t i = 0;
      auto flush = [&]() {
        if (!cur.empty()) {
          elems.push_back(cur);
          is_call.push_back(call);
        }
        cur.clear();
        call = false;
      };
      while (i < expr.size()) {
        const char c = expr[i];
        if (c == ' ') {
          ++i;
          continue;
        }
        if (c == '[' || c == '(') {
          if (c == '(' && depth == 0 && !cur.empty()) call = true;
          ++depth;
          ++i;
          continue;
        }
        if (c == ']' || c == ')') {
          --depth;
          ++i;
          continue;
        }
        if (depth > 0) {
          ++i;
          continue;
        }
        if (c == '*' || c == '&') {
          ++i;
          continue;
        }
        if (c == '.') {
          flush();
          ++i;
          continue;
        }
        if (c == '-' && i + 1 < expr.size() && expr[i + 1] == '>') {
          flush();
          i += 2;
          continue;
        }
        if (c == ':' && i + 1 < expr.size() && expr[i + 1] == ':') {
          flush();
          i += 2;
          continue;
        }
        cur += c;
        ++i;
      }
      flush();
    }
    if (!elems.empty() && elems[0] == "this") {
      elems.erase(elems.begin());
      is_call.erase(is_call.begin());
    }
    if (elems.empty()) return "";

    // Head resolution.
    std::string type;
    std::size_t next = 1;
    const std::string& head = elems[0];
    if (is_call[0]) {
      // `write_mutex()`-style: a function owning exactly one local Mutex.
      const auto quals = prog_.func_by_tail.find(head);
      if (quals != prog_.func_by_tail.end()) {
        std::string found;
        for (const std::string& q : quals->second) {
          for (const LockDecl& d : prog_.model.locks) {
            if (!d.is_member && d.owner == q) {
              if (!found.empty() && found != d.id) return "";
              found = d.id;
            }
          }
        }
        if (!found.empty() && elems.size() == 1) return found;
      }
      return "";
    }
    if (use_scopes) {
      // Local / param?
      std::string local_type;
      for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
        const auto local = it->locals.find(head);
        if (local != it->locals.end()) {
          local_type = local->second;
          break;
        }
      }
      if (local_type == "Mutex") {
        if (elems.size() != 1) return "";
        const std::string owner = fn_stack_.empty() ? "<toplevel>" : innermost_decl_owner(head);
        return id_from(owner, head);
      }
      if (!local_type.empty() && local_type != "CondVar") {
        type = resolve_class_name(local_type);
      }
    }
    if (type.empty()) {
      // Member of the (given) enclosing class chain, innermost-out.
      std::string probe = class_chain;
      while (true) {
        const auto found = prog_.classes.find(probe);
        if (found != prog_.classes.end()) {
          const MemberInfo* m = found->second.member(head);
          if (m != nullptr) {
            if (m->is_mutex) {
              return elems.size() == 1 ? id_from(found->second.chain, head) : std::string();
            }
            if (!m->type.empty()) {
              type = resolve_class_name(m->type);
              break;
            }
            return "";
          }
        }
        const std::size_t cut = probe.rfind("::");
        if (cut == std::string::npos) break;
        probe = probe.substr(0, cut);
      }
    }
    if (type.empty() && elems.size() == 1) {
      // Unique global fallback by field/variable name.
      std::string found;
      for (const LockDecl& d : prog_.model.locks) {
        if (d.name == head) {
          if (!found.empty()) return "";
          found = d.id;
        }
      }
      return found;
    }
    // Walk the remaining chain through member types.
    for (; next < elems.size(); ++next) {
      if (type.empty()) return "";
      const auto found = prog_.classes.find(type);
      if (found == prog_.classes.end()) return "";
      const MemberInfo* m = found->second.member(elems[next]);
      if (m == nullptr) return "";
      if (m->is_mutex) {
        return next + 1 == elems.size() ? id_from(found->second.chain, elems[next])
                                        : std::string();
      }
      type = m->type.empty() ? "" : resolve_class_name(m->type);
    }
    return "";
  }

  /// Owner (function qual name) of the innermost scope declaring `name`
  /// as a local — the Mutex local's id uses the function it lives in,
  /// even when referenced from a nested lambda.
  [[nodiscard]] std::string innermost_decl_owner(const std::string& name) const {
    std::size_t fn_idx = fn_stack_.size();
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (it->kind == Scope::kFunction || it->kind == Scope::kLambda) --fn_idx;
      if (it->locals.count(name) != 0) {
        if (it->kind == Scope::kFunction || it->kind == Scope::kLambda) {
          return fn_stack_[fn_idx];
        }
        // Block scope: owner is the nearest enclosing function.
        std::size_t f = fn_idx;
        return f > 0 ? fn_stack_[f - 1] : std::string("<toplevel>");
      }
    }
    return fn_stack_.empty() ? "<toplevel>" : fn_stack_.back();
  }

  Program& prog_;
  std::string file_;
  bool pass2_;
  std::vector<std::string> raw_;
  std::vector<Token> toks_;
  std::size_t pos_ = 0;
  std::vector<Scope> scopes_;
  std::vector<HeldLock> held_;
  std::vector<std::vector<HeldLock>> held_save_;
  std::vector<std::string> fn_stack_;  ///< qual names of nested fn/lambda scopes
};

}  // namespace

const LockDecl* Model::find_lock(const std::string& id) const {
  for (const LockDecl& d : locks) {
    if (d.id == id) return &d;
  }
  return nullptr;
}

Model build_model(const std::vector<SourceFile>& files) {
  Program prog;
  for (const SourceFile& f : files) {
    FileWalker(prog, f, /*pass2=*/false).run();
  }
  // Candidate fields for the unguarded-shared-field rule: every
  // non-exempt member of a Mutex-owning class.
  for (const auto& [chain, info] : prog.classes) {
    if (!info.owns_mutex) continue;
    for (const MemberInfo& m : info.members) {
      if (m.exempt) continue;
      prog.model.fields.push_back(
          {chain, m.name, info.file, m.line, m.guarded, m.documented});
    }
  }
  // HAX_MUTEX_RANK(<id>) handshake: a lock is "ranked" when the macro with
  // its exact id appears in the declaring file.
  for (LockDecl& d : prog.model.locks) {
    for (const SourceFile& f : files) {
      if (f.rel_path != d.file) continue;
      if (f.contents.find("HAX_MUTEX_RANK(" + d.id + ")") != std::string::npos) {
        d.has_rank = true;
      }
      break;
    }
  }
  for (const SourceFile& f : files) {
    FileWalker(prog, f, /*pass2=*/true).run();
  }
  prog.model.functions.assign(prog.functions.begin(), prog.functions.end());
  // Validate declared edges now that every lock id is known.
  for (const Edge& e : prog.model.declared_edges) {
    for (const std::string& end : {e.from, e.to}) {
      if (prog.model.find_lock(end) == nullptr) {
        prog.model.extraction_errors.push_back(
            {e.file, e.line, "bad-directive", "edge(...) names unknown lock id `" + end + "`"});
      }
    }
  }
  return prog.model;
}

bool consume_allowance(Model& model, const std::string& file, int line,
                       const std::string& rule) {
  bool suppressed = false;
  for (Allowance& a : model.allowances) {
    if (a.file != file || a.rule != rule) continue;
    if (a.file_scope || a.line == line) {
      a.used = true;
      suppressed = true;
    }
  }
  return suppressed;
}

}  // namespace hax::analyze
