#pragma once

/// \file cpp_lexer.h
/// Shared lightweight C++ lexing for the repo's source-analysis tools
/// (tools/lint, tools/analyze). Deliberately not a real C++ parser: the
/// tools' rules are designed so that comment/string stripping plus a
/// token stream with line numbers is enough. Both tools share this one
/// implementation so their notion of "what is code" can never diverge.
///
/// The pipeline every tool uses:
///   raw text ── split_lines ──► raw lines      (directive comments live here)
///            ── strip_comments_and_strings ──► code lines (same shape,
///               comments/strings blanked, lengths preserved)
///            ── tokenize ──► Token stream      (idents, numbers, puncts;
///               `::` and `->` are single tokens, everything else 1 char)
///
/// Directive comments (the hax-lint / hax-analyze allow and edge
/// escapes) are parsed from the *raw* lines via parse_directives,
/// before stripping, because they are comments by construction.

#include <string>
#include <vector>

namespace hax::lex {

/// Splits into lines, preserving empty ones; the trailing newline does
/// not create a phantom line.
[[nodiscard]] std::vector<std::string> split_lines(const std::string& text);

/// Replaces comments and string/char literals with spaces, line by line,
/// tracking /* */ across lines. Keeps line lengths so findings stay
/// column-accurate enough for humans. Raw strings are treated as plain
/// strings (good enough: the delimiter rarely contains a quote).
[[nodiscard]] std::vector<std::string> strip_comments_and_strings(
    const std::vector<std::string>& lines);

enum class TokKind {
  Ident,   ///< identifier or keyword (the lexer does not distinguish)
  Number,  ///< numeric literal
  Punct,   ///< punctuation; `::` and `->` are fused, the rest single-char
};

struct Token {
  TokKind kind = TokKind::Punct;
  std::string text;
  int line = 0;  ///< 1-based
};

/// Tokenizes stripped code lines (run strip_comments_and_strings first —
/// tokenize assumes comments and literals are already blanked).
[[nodiscard]] std::vector<Token> tokenize(const std::vector<std::string>& code_lines);

/// One `// <prefix>: <verb>(<args>)` comment directive.
struct Directive {
  int line = 0;      ///< 1-based line the directive sits on
  std::string verb;  ///< e.g. "allow", "allow-file", "edge"
  std::string args;  ///< raw text between the parentheses, untrimmed
};

/// Extracts every `<prefix>: <verb>(<args>)` occurrence from raw lines
/// (prefix is e.g. "hax-lint" or "hax-analyze"). Tools decide which verbs
/// they understand; unknown verbs are still returned.
[[nodiscard]] std::vector<Directive> parse_directives(
    const std::vector<std::string>& raw_lines, const std::string& prefix);

/// Splits a directive argument list on commas and trims whitespace from
/// each piece; empty pieces are dropped. `allow(a, b)` → {"a", "b"}.
[[nodiscard]] std::vector<std::string> split_args(const std::string& args);

/// True when `token` occurs in `line` as a standalone token: not embedded
/// in a longer identifier on either side. `token` itself may contain
/// non-identifier characters (e.g. "std::mutex", "rand(").
[[nodiscard]] bool contains_token(const std::string& line, const std::string& token);

}  // namespace hax::lex
