#include "common/cpp_lexer.h"

#include <cctype>

namespace hax::lex {
namespace {

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

}  // namespace

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t nl = text.find('\n', start);
    if (nl == std::string::npos) {
      if (start < text.size()) lines.push_back(text.substr(start));
      break;
    }
    lines.push_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

std::vector<std::string> strip_comments_and_strings(const std::vector<std::string>& lines) {
  std::vector<std::string> out;
  out.reserve(lines.size());
  bool in_block_comment = false;
  for (const std::string& line : lines) {
    std::string s(line.size(), ' ');
    for (std::size_t i = 0; i < line.size();) {
      if (in_block_comment) {
        if (line[i] == '*' && i + 1 < line.size() && line[i + 1] == '/') {
          in_block_comment = false;
          i += 2;
        } else {
          ++i;
        }
        continue;
      }
      const char c = line[i];
      if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') break;  // rest is comment
      if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
        in_block_comment = true;
        i += 2;
        continue;
      }
      if (c == '"' || c == '\'') {
        const char quote = c;
        ++i;
        while (i < line.size()) {
          if (line[i] == '\\') {
            i += 2;
            continue;
          }
          if (line[i] == quote) {
            ++i;
            break;
          }
          ++i;
        }
        continue;
      }
      s[i] = c;
      ++i;
    }
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<Token> tokenize(const std::vector<std::string>& code_lines) {
  std::vector<Token> tokens;
  for (std::size_t li = 0; li < code_lines.size(); ++li) {
    const std::string& line = code_lines[li];
    const int line_no = static_cast<int>(li) + 1;
    for (std::size_t i = 0; i < line.size();) {
      const char c = line[i];
      if (std::isspace(static_cast<unsigned char>(c)) != 0) {
        ++i;
        continue;
      }
      if (is_ident_start(c)) {
        std::size_t end = i + 1;
        while (end < line.size() && is_ident_char(line[end])) ++end;
        tokens.push_back({TokKind::Ident, line.substr(i, end - i), line_no});
        i = end;
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
        std::size_t end = i + 1;
        // Good enough for 0x1f / 1e-9 / 1'000 / 3.5f — the tools never
        // interpret numeric values, they only need the token boundaries.
        while (end < line.size() &&
               (is_ident_char(line[end]) || line[end] == '.' || line[end] == '\'' ||
                ((line[end] == '+' || line[end] == '-') &&
                 (line[end - 1] == 'e' || line[end - 1] == 'E')))) {
          ++end;
        }
        tokens.push_back({TokKind::Number, line.substr(i, end - i), line_no});
        i = end;
        continue;
      }
      if (c == ':' && i + 1 < line.size() && line[i + 1] == ':') {
        tokens.push_back({TokKind::Punct, "::", line_no});
        i += 2;
        continue;
      }
      if (c == '-' && i + 1 < line.size() && line[i + 1] == '>') {
        tokens.push_back({TokKind::Punct, "->", line_no});
        i += 2;
        continue;
      }
      tokens.push_back({TokKind::Punct, std::string(1, c), line_no});
      ++i;
    }
  }
  return tokens;
}

std::vector<Directive> parse_directives(const std::vector<std::string>& raw_lines,
                                        const std::string& prefix) {
  std::vector<Directive> out;
  const std::string marker = prefix + ":";
  for (std::size_t li = 0; li < raw_lines.size(); ++li) {
    const std::string& raw = raw_lines[li];
    std::size_t pos = 0;
    while ((pos = raw.find(marker, pos)) != std::string::npos) {
      std::size_t p = pos + marker.size();
      while (p < raw.size() && (raw[p] == ' ' || raw[p] == '\t')) ++p;
      std::size_t verb_end = p;
      while (verb_end < raw.size() && (is_ident_char(raw[verb_end]) || raw[verb_end] == '-')) {
        ++verb_end;
      }
      if (verb_end > p && verb_end < raw.size() && raw[verb_end] == '(') {
        const std::size_t close = raw.find(')', verb_end + 1);
        if (close != std::string::npos) {
          out.push_back({static_cast<int>(li) + 1, raw.substr(p, verb_end - p),
                         raw.substr(verb_end + 1, close - verb_end - 1)});
        }
      }
      pos = pos + marker.size();
    }
  }
  return out;
}

std::vector<std::string> split_args(const std::string& args) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= args.size()) {
    std::size_t comma = args.find(',', start);
    if (comma == std::string::npos) comma = args.size();
    std::size_t lo = start;
    std::size_t hi = comma;
    while (lo < hi && std::isspace(static_cast<unsigned char>(args[lo])) != 0) ++lo;
    while (hi > lo && std::isspace(static_cast<unsigned char>(args[hi - 1])) != 0) --hi;
    if (hi > lo) out.push_back(args.substr(lo, hi - lo));
    if (comma == args.size()) break;
    start = comma + 1;
  }
  return out;
}

bool contains_token(const std::string& line, const std::string& token) {
  std::size_t pos = 0;
  while ((pos = line.find(token, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !is_ident_char(line[pos - 1]);
    const std::size_t end = pos + token.size();
    const bool token_ends_ident = is_ident_char(token.back());
    const bool right_ok = !token_ends_ident || end >= line.size() || !is_ident_char(line[end]);
    if (left_ok && right_ok) return true;
    pos += 1;
  }
  return false;
}

}  // namespace hax::lex
