/// hax_lint CLI: scan a repo tree and fail (exit 1) on any finding.
/// Usage: hax_lint <repo-root>
/// Wired as a ctest (`ctest -R hax_lint`) so the discipline rules in
/// lint.h gate every test run, clang or not.

#include <cstdio>
#include <filesystem>
#include <string>

#include "lint/lint.h"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: hax_lint <repo-root>\n");
    return 2;
  }
  const std::filesystem::path root(argv[1]);
  if (!std::filesystem::exists(root)) {
    std::fprintf(stderr, "hax_lint: no such directory: %s\n", argv[1]);
    return 2;
  }
  const std::vector<hax::lint::Finding> findings = hax::lint::scan_tree(root);
  if (!findings.empty()) {
    const std::string report = hax::lint::format(findings);
    std::fprintf(stderr, "%s", report.c_str());
    std::fprintf(stderr, "hax_lint: %zu finding(s)\n", findings.size());
    return 1;
  }
  std::printf("hax_lint: clean\n");
  return 0;
}
