#include "lint/lint.h"

#include <algorithm>
#include <array>
#include <cctype>
#include <fstream>
#include <set>
#include <sstream>

namespace hax::lint {
namespace {

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// True when `token` occurs in `line` as a standalone token: not embedded
/// in a longer identifier on either side. `token` itself may contain
/// non-identifier characters (e.g. "std::mutex", "rand(").
bool contains_token(const std::string& line, const std::string& token) {
  std::size_t pos = 0;
  while ((pos = line.find(token, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !is_ident_char(line[pos - 1]);
    const std::size_t end = pos + token.size();
    const bool token_ends_ident = is_ident_char(token.back());
    const bool right_ok = !token_ends_ident || end >= line.size() || !is_ident_char(line[end]);
    if (left_ok && right_ok) return true;
    pos += 1;
  }
  return false;
}

/// Splits into lines, preserving empty ones; the trailing newline does not
/// create a phantom line.
std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t nl = text.find('\n', start);
    if (nl == std::string::npos) {
      if (start < text.size()) lines.push_back(text.substr(start));
      break;
    }
    lines.push_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

/// Replaces comments and string/char literals with spaces, line by line,
/// tracking /* */ across lines. Keeps line lengths so findings stay
/// column-accurate enough for humans. Raw strings are treated as plain
/// strings (good enough: the delimiter rarely contains a quote).
std::vector<std::string> strip_comments_and_strings(const std::vector<std::string>& lines) {
  std::vector<std::string> out;
  out.reserve(lines.size());
  bool in_block_comment = false;
  for (const std::string& line : lines) {
    std::string s(line.size(), ' ');
    for (std::size_t i = 0; i < line.size();) {
      if (in_block_comment) {
        if (line[i] == '*' && i + 1 < line.size() && line[i + 1] == '/') {
          in_block_comment = false;
          i += 2;
        } else {
          ++i;
        }
        continue;
      }
      const char c = line[i];
      if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') break;  // rest is comment
      if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
        in_block_comment = true;
        i += 2;
        continue;
      }
      if (c == '"' || c == '\'') {
        const char quote = c;
        ++i;
        while (i < line.size()) {
          if (line[i] == '\\') {
            i += 2;
            continue;
          }
          if (line[i] == quote) {
            ++i;
            break;
          }
          ++i;
        }
        continue;
      }
      s[i] = c;
      ++i;
    }
    out.push_back(std::move(s));
  }
  return out;
}

/// Rules a `// hax-lint: allow(<rule>)` on this raw line suppresses.
std::set<std::string> line_allowances(const std::string& raw) {
  std::set<std::string> rules;
  std::size_t pos = 0;
  while ((pos = raw.find("hax-lint: allow(", pos)) != std::string::npos) {
    const std::size_t open = pos + std::string("hax-lint: allow(").size();
    const std::size_t close = raw.find(')', open);
    if (close != std::string::npos) rules.insert(raw.substr(open, close - open));
    pos = open;
  }
  return rules;
}

std::set<std::string> file_allowances(const std::vector<std::string>& raw_lines) {
  std::set<std::string> rules;
  for (const std::string& raw : raw_lines) {
    std::size_t pos = 0;
    while ((pos = raw.find("hax-lint: allow-file(", pos)) != std::string::npos) {
      const std::size_t open = pos + std::string("hax-lint: allow-file(").size();
      const std::size_t close = raw.find(')', open);
      if (close != std::string::npos) rules.insert(raw.substr(open, close - open));
      pos = open;
    }
  }
  return rules;
}

struct TokenRule {
  const char* rule;
  const char* token;
  const char* message;
};

constexpr std::array<TokenRule, 5> kRawMutexTokens{{
    {"raw-mutex", "std::mutex", "use hax Mutex from common/annotated.h"},
    {"raw-mutex", "std::lock_guard", "use hax LockGuard from common/annotated.h"},
    {"raw-mutex", "std::unique_lock", "use hax LockGuard (adopt pattern for try-locks)"},
    {"raw-mutex", "std::scoped_lock", "use hax LockGuard from common/annotated.h"},
    {"raw-mutex", "std::condition_variable", "use hax CondVar from common/annotated.h"},
}};

constexpr std::array<TokenRule, 4> kNondetTokens{{
    {"nondet", "std::random_device", "deterministic core: seed a hax::Rng instead"},
    {"nondet", "rand(", "deterministic core: use hax::Rng"},
    {"nondet", "srand(", "deterministic core: use hax::Rng"},
    {"nondet", "system_clock", "wall-clock time in the deterministic core; use steady_clock"},
}};

/// The deterministic-core directories for the nondet rule.
constexpr std::array<const char*, 6> kDeterministicDirs{
    "src/sim/", "src/solver/", "src/sched/", "src/contention/", "src/faults/", "src/serve/"};

bool is_header(const std::string& rel_path) {
  return rel_path.size() >= 2 && rel_path.compare(rel_path.size() - 2, 2, ".h") == 0;
}

}  // namespace

std::vector<Finding> scan_source(const std::string& rel_path, const std::string& contents) {
  const std::vector<std::string> raw = split_lines(contents);
  const std::vector<std::string> code = strip_comments_and_strings(raw);
  const std::set<std::string> file_allow = file_allowances(raw);

  const bool in_src = starts_with(rel_path, "src/");
  const bool raw_mutex_scope = in_src && rel_path != "src/common/annotated.h";
  const bool nondet_scope =
      std::any_of(kDeterministicDirs.begin(), kDeterministicDirs.end(),
                  [&](const char* dir) { return starts_with(rel_path, dir); });
  const bool cout_scope = in_src;

  std::vector<Finding> findings;
  const auto report = [&](int line_no, const std::set<std::string>& line_allow,
                          const char* rule, std::string message) {
    if (file_allow.count(rule) != 0 || line_allow.count(rule) != 0) return;
    findings.push_back({rel_path, line_no, rule, std::move(message)});
  };

  for (std::size_t i = 0; i < code.size(); ++i) {
    const int line_no = static_cast<int>(i) + 1;
    const std::set<std::string> line_allow = line_allowances(raw[i]);

    if (raw_mutex_scope) {
      for (const TokenRule& t : kRawMutexTokens) {
        if (contains_token(code[i], t.token)) {
          report(line_no, line_allow, t.rule, std::string(t.token) + ": " + t.message);
        }
      }
    }
    if (nondet_scope) {
      for (const TokenRule& t : kNondetTokens) {
        if (contains_token(code[i], t.token)) {
          report(line_no, line_allow, t.rule, std::string(t.token) + ": " + t.message);
        }
      }
    }
    if (cout_scope && contains_token(code[i], "std::cout")) {
      report(line_no, line_allow, "cout",
             "std::cout in library code: report through hax::log "
             "(stdout belongs to tools/bench/examples)");
    }
    if (is_header(rel_path) && contains_token(code[i], "using namespace")) {
      report(line_no, line_allow, "using-namespace",
             "using-namespace in a header leaks into every includer");
    }
  }

  if (is_header(rel_path) && file_allow.count("pragma-once") == 0) {
    bool found = false;
    for (std::size_t i = 0; i < code.size(); ++i) {
      std::string trimmed = code[i];
      trimmed.erase(0, trimmed.find_first_not_of(" \t"));
      while (!trimmed.empty() &&
             (trimmed.back() == ' ' || trimmed.back() == '\t' || trimmed.back() == '\r')) {
        trimmed.pop_back();
      }
      if (trimmed.empty()) continue;
      found = trimmed == "#pragma once";
      break;  // first non-comment, non-blank line decides
    }
    if (!found) {
      findings.push_back({rel_path, 1, "pragma-once",
                          "header's first non-comment line must be #pragma once"});
    }
  }

  std::stable_sort(findings.begin(), findings.end(),
                   [](const Finding& a, const Finding& b) { return a.line < b.line; });
  return findings;
}

std::vector<Finding> scan_tree(const std::filesystem::path& repo_root) {
  namespace fs = std::filesystem;
  constexpr std::array<const char*, 5> kRoots{"src", "tests", "bench", "examples", "tools"};

  std::vector<std::string> rel_paths;
  for (const char* root : kRoots) {
    const fs::path dir = repo_root / root;
    if (!fs::exists(dir)) continue;
    for (const fs::directory_entry& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".h" && ext != ".cpp") continue;
      const std::string rel = fs::relative(entry.path(), repo_root).generic_string();
      if (starts_with(rel, "tests/lint_fixtures/")) continue;  // deliberate violations
      rel_paths.push_back(rel);
    }
  }
  std::sort(rel_paths.begin(), rel_paths.end());

  std::vector<Finding> findings;
  for (const std::string& rel : rel_paths) {
    std::ifstream in(repo_root / rel, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    std::vector<Finding> file_findings = scan_source(rel, buf.str());
    findings.insert(findings.end(), std::make_move_iterator(file_findings.begin()),
                    std::make_move_iterator(file_findings.end()));
  }
  return findings;
}

std::string format(const std::vector<Finding>& findings) {
  std::ostringstream out;
  for (const Finding& f : findings) {
    out << f.file << ':' << f.line << ": [" << f.rule << "] " << f.message << '\n';
  }
  return out.str();
}

}  // namespace hax::lint
