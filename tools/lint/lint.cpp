#include "lint/lint.h"

#include <algorithm>
#include <array>
#include <fstream>
#include <set>
#include <sstream>

#include "common/cpp_lexer.h"

namespace hax::lint {
namespace {

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

struct TokenRule {
  const char* rule;
  const char* token;
  const char* message;
};

constexpr std::array<TokenRule, 5> kRawMutexTokens{{
    {"raw-mutex", "std::mutex", "use hax Mutex from common/annotated.h"},
    {"raw-mutex", "std::lock_guard", "use hax LockGuard from common/annotated.h"},
    {"raw-mutex", "std::unique_lock", "use hax LockGuard (adopt pattern for try-locks)"},
    {"raw-mutex", "std::scoped_lock", "use hax LockGuard from common/annotated.h"},
    {"raw-mutex", "std::condition_variable", "use hax CondVar from common/annotated.h"},
}};

constexpr std::array<TokenRule, 4> kNondetTokens{{
    {"nondet", "std::random_device", "deterministic core: seed a hax::Rng instead"},
    {"nondet", "rand(", "deterministic core: use hax::Rng"},
    {"nondet", "srand(", "deterministic core: use hax::Rng"},
    {"nondet", "system_clock", "wall-clock time in deterministic code; use steady_clock"},
}};

/// Directories the nondet rule polices: the deterministic core plus the
/// reproducibility-sensitive tool/benchmark trees.
constexpr std::array<const char*, 9> kDeterministicDirs{
    "src/sim/",  "src/solver/", "src/sched/", "src/contention/",
    "src/faults/", "src/serve/", "src/fleet/", "bench/",    "tools/"};

bool is_header(const std::string& rel_path) {
  return rel_path.size() >= 2 && rel_path.compare(rel_path.size() - 2, 2, ".h") == 0;
}

/// Tracks the suppression directives of one file and records which fired.
/// Line allows are keyed by (line, rule); file allows by rule alone.
class AllowanceTable {
 public:
  AllowanceTable(const std::string& rel_path, const std::vector<std::string>& raw_lines) {
    for (const lex::Directive& d : lex::parse_directives(raw_lines, "hax-lint")) {
      const bool file_scope = d.verb == "allow-file";
      if (!file_scope && d.verb != "allow") continue;
      for (const std::string& rule : lex::split_args(d.args)) {
        entries_.push_back({rel_path, d.line, rule, file_scope, false});
      }
    }
  }

  /// True (and marks the matching entries used) when `rule` at `line` is
  /// suppressed. Line allows win checked first so a redundant file allow
  /// stays visibly unused.
  bool consume(int line, const std::string& rule) {
    bool suppressed = false;
    for (Allowance& a : entries_) {
      if (a.rule != rule) continue;
      if (a.file_scope || a.line == line) {
        a.used = true;
        suppressed = true;
      }
    }
    return suppressed;
  }

  /// As consume() for rules that have no single finding line (pragma-once
  /// checks the whole file): any allow of the rule suppresses.
  bool consume_any(const std::string& rule) {
    bool suppressed = false;
    for (Allowance& a : entries_) {
      if (a.rule == rule) {
        a.used = true;
        suppressed = true;
      }
    }
    return suppressed;
  }

  [[nodiscard]] std::vector<Allowance> take() && { return std::move(entries_); }

 private:
  std::vector<Allowance> entries_;
};

}  // namespace

ScanResult scan_source_tracked(const std::string& rel_path, const std::string& contents) {
  const std::vector<std::string> raw = lex::split_lines(contents);
  const std::vector<std::string> code = lex::strip_comments_and_strings(raw);
  AllowanceTable allow(rel_path, raw);

  const bool in_src = starts_with(rel_path, "src/");
  const bool raw_mutex_scope = in_src && rel_path != "src/common/annotated.h";
  const bool nondet_scope =
      std::any_of(kDeterministicDirs.begin(), kDeterministicDirs.end(),
                  [&](const char* dir) { return starts_with(rel_path, dir); });
  const bool cout_scope =
      in_src || starts_with(rel_path, "bench/") || starts_with(rel_path, "tools/");

  ScanResult result;
  const auto report = [&](int line_no, const char* rule, std::string message) {
    if (allow.consume(line_no, rule)) return;
    result.findings.push_back({rel_path, line_no, rule, std::move(message)});
  };

  for (std::size_t i = 0; i < code.size(); ++i) {
    const int line_no = static_cast<int>(i) + 1;

    if (raw_mutex_scope) {
      for (const TokenRule& t : kRawMutexTokens) {
        if (lex::contains_token(code[i], t.token)) {
          report(line_no, t.rule, std::string(t.token) + ": " + t.message);
        }
      }
    }
    if (nondet_scope) {
      for (const TokenRule& t : kNondetTokens) {
        if (lex::contains_token(code[i], t.token)) {
          report(line_no, t.rule, std::string(t.token) + ": " + t.message);
        }
      }
    }
    if (cout_scope && lex::contains_token(code[i], "std::cout")) {
      report(line_no, "cout",
             "std::cout outside examples/: use hax::log in src/, bench_util "
             "tables in bench/, stdio in tools/");
    }
    if (is_header(rel_path) && lex::contains_token(code[i], "using namespace")) {
      report(line_no, "using-namespace",
             "using-namespace in a header leaks into every includer");
    }
  }

  if (is_header(rel_path)) {
    bool found = false;
    for (std::size_t i = 0; i < code.size(); ++i) {
      std::string trimmed = code[i];
      trimmed.erase(0, trimmed.find_first_not_of(" \t"));
      while (!trimmed.empty() &&
             (trimmed.back() == ' ' || trimmed.back() == '\t' || trimmed.back() == '\r')) {
        trimmed.pop_back();
      }
      if (trimmed.empty()) continue;
      found = trimmed == "#pragma once";
      break;  // first non-comment, non-blank line decides
    }
    if (!found && !allow.consume_any("pragma-once")) {
      result.findings.push_back({rel_path, 1, "pragma-once",
                                 "header's first non-comment line must be #pragma once"});
    }
  }

  std::stable_sort(result.findings.begin(), result.findings.end(),
                   [](const Finding& a, const Finding& b) { return a.line < b.line; });
  result.allowances = std::move(allow).take();
  return result;
}

std::vector<Finding> scan_source(const std::string& rel_path, const std::string& contents) {
  return scan_source_tracked(rel_path, contents).findings;
}

std::vector<std::string> tree_paths(const std::filesystem::path& repo_root) {
  namespace fs = std::filesystem;
  constexpr std::array<const char*, 5> kRoots{"src", "tests", "bench", "examples", "tools"};

  std::vector<std::string> rel_paths;
  for (const char* root : kRoots) {
    const fs::path dir = repo_root / root;
    if (!fs::exists(dir)) continue;
    for (const fs::directory_entry& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".h" && ext != ".cpp") continue;
      const std::string rel = fs::relative(entry.path(), repo_root).generic_string();
      if (starts_with(rel, "tests/lint_fixtures/")) continue;  // deliberate violations
      rel_paths.push_back(rel);
    }
  }
  std::sort(rel_paths.begin(), rel_paths.end());
  return rel_paths;
}

std::vector<Finding> scan_tree(const std::filesystem::path& repo_root) {
  std::vector<Finding> findings;
  for (const std::string& rel : tree_paths(repo_root)) {
    std::ifstream in(repo_root / rel, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    std::vector<Finding> file_findings = scan_source(rel, buf.str());
    findings.insert(findings.end(), std::make_move_iterator(file_findings.begin()),
                    std::make_move_iterator(file_findings.end()));
  }
  return findings;
}

std::string format(const std::vector<Finding>& findings) {
  std::ostringstream out;
  for (const Finding& f : findings) {
    out << f.file << ':' << f.line << ": [" << f.rule << "] " << f.message << '\n';
  }
  return out.str();
}

}  // namespace hax::lint
