#pragma once

/// \file lint.h
/// hax_lint: a domain-specific source scanner enforcing the repo's
/// concurrency and determinism discipline. It is deliberately a token
/// scanner, not a parser — the rules are chosen so that a line-level
/// match after comment/string stripping has essentially no false
/// positives, and the escape hatch covers the rest. Lexing (comment and
/// string stripping, directive parsing) is shared with tools/analyze via
/// tools/common/cpp_lexer.h.
///
/// Rules (scoped by repo-relative path, forward slashes):
///   raw-mutex        std::mutex / std::lock_guard / std::unique_lock /
///                    std::scoped_lock / std::condition_variable anywhere
///                    under src/ except src/common/annotated.h. Production
///                    code must use the annotated hax wrappers so Clang
///                    Thread Safety Analysis sees every lock.
///   nondet           std::random_device, rand(, srand(, system_clock in
///                    src/{sim,solver,sched,contention,faults,serve}/ — the
///                    deterministic core — and in bench/ and tools/, whose
///                    outputs must be reproducible run to run. Seeded
///                    hax::Rng and steady_clock are the sanctioned sources
///                    of randomness and time.
///   cout             std::cout under src/, bench/ and tools/. Library
///                    code reports through hax::log; benchmarks route
///                    tables through bench_util; tools use stdio. Bare
///                    std::cout belongs to examples/ only.
///   pragma-once      a .h file whose first non-comment line is not
///                    `#pragma once`.
///   using-namespace  `using namespace` at any line of a .h file.
///
/// Suppressions (written inside comments, parsed before stripping; a
/// comma-separated list suppresses each named rule):
///   // hax-lint: allow(<rule>[, <rule>...])       — this line only
///   // hax-lint: allow-file(<rule>[, <rule>...])  — the whole file
///
/// The scanner strips // and /* */ comments and string/char literals
/// before matching, so prose about rand() or std::mutex never trips it.
/// scan_source_tracked() additionally reports every suppression it saw
/// and whether it fired — tools/analyze's stale-allow rule flags the
/// ones that no longer suppress anything.

#include <filesystem>
#include <string>
#include <vector>

namespace hax::lint {

struct Finding {
  std::string file;  ///< repo-relative path, forward slashes
  int line = 0;      ///< 1-based
  std::string rule;
  std::string message;
};

/// One `hax-lint: allow(...)` / `allow-file(...)` suppression, with
/// whether it actually suppressed a finding during the scan.
struct Allowance {
  std::string file;
  int line = 0;  ///< line the directive sits on
  std::string rule;
  bool file_scope = false;  ///< allow-file(...) vs line allow(...)
  bool used = false;        ///< suppressed at least one would-be finding
};

struct ScanResult {
  std::vector<Finding> findings;
  std::vector<Allowance> allowances;
};

/// Scans one file's `contents` as if it lived at `rel_path` (repo-relative,
/// forward slashes). Pure: path scoping, stripping and matching only —
/// no filesystem access, so tests can replay fixtures under any path.
[[nodiscard]] std::vector<Finding> scan_source(const std::string& rel_path,
                                               const std::string& contents);

/// As scan_source, but also reports every suppression directive and
/// whether it fired (feeds the stale-allow rule in tools/analyze).
[[nodiscard]] ScanResult scan_source_tracked(const std::string& rel_path,
                                             const std::string& contents);

/// Walks `repo_root` scanning every .h/.cpp under src/, tests/, bench/,
/// examples/ and tools/. Skips tests/lint_fixtures/ (deliberate
/// violations used by the lint self-test).
[[nodiscard]] std::vector<Finding> scan_tree(const std::filesystem::path& repo_root);

/// The repo-relative .h/.cpp paths scan_tree would visit, sorted
/// (exposed so tools/analyze walks exactly the same file set).
[[nodiscard]] std::vector<std::string> tree_paths(const std::filesystem::path& repo_root);

/// "file:line: [rule] message" per finding, newline-terminated.
[[nodiscard]] std::string format(const std::vector<Finding>& findings);

}  // namespace hax::lint
