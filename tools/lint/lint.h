#pragma once

/// \file lint.h
/// hax_lint: a domain-specific source scanner enforcing the repo's
/// concurrency and determinism discipline. It is deliberately a token
/// scanner, not a parser — the rules are chosen so that a line-level
/// match after comment/string stripping has essentially no false
/// positives, and the escape hatch covers the rest.
///
/// Rules (scoped by repo-relative path, forward slashes):
///   raw-mutex        std::mutex / std::lock_guard / std::unique_lock /
///                    std::scoped_lock / std::condition_variable anywhere
///                    under src/ except src/common/annotated.h. Production
///                    code must use the annotated hax wrappers so Clang
///                    Thread Safety Analysis sees every lock.
///   nondet           std::random_device, rand(, srand(, system_clock in
///                    src/{sim,solver,sched,contention,faults}/ — the
///                    deterministic core. Seeded hax::Rng and steady_clock
///                    are the sanctioned sources of randomness and time.
///   cout             std::cout under src/. Library code reports through
///                    hax::log; stdout belongs to tools/bench/examples.
///   pragma-once      a .h file whose first non-comment line is not
///                    `#pragma once`.
///   using-namespace  `using namespace` at any line of a .h file.
///
/// Suppressions (written inside comments, parsed before stripping):
///   // hax-lint: allow(<rule>)        — this line only
///   // hax-lint: allow-file(<rule>)   — the whole file
///
/// The scanner strips // and /* */ comments and string/char literals
/// before matching, so prose about rand() or std::mutex never trips it.

#include <filesystem>
#include <string>
#include <vector>

namespace hax::lint {

struct Finding {
  std::string file;  ///< repo-relative path, forward slashes
  int line = 0;      ///< 1-based
  std::string rule;
  std::string message;
};

/// Scans one file's `contents` as if it lived at `rel_path` (repo-relative,
/// forward slashes). Pure: path scoping, stripping and matching only —
/// no filesystem access, so tests can replay fixtures under any path.
[[nodiscard]] std::vector<Finding> scan_source(const std::string& rel_path,
                                               const std::string& contents);

/// Walks `repo_root` scanning every .h/.cpp under src/, tests/, bench/,
/// examples/ and tools/. Skips tests/lint_fixtures/ (deliberate
/// violations used by the lint self-test).
[[nodiscard]] std::vector<Finding> scan_tree(const std::filesystem::path& repo_root);

/// "file:line: [rule] message" per finding, newline-terminated.
[[nodiscard]] std::string format(const std::vector<Finding>& findings);

}  // namespace hax::lint
