/// Unit tests for src/contention: piecewise functions and the PCCS model.

#include <gtest/gtest.h>

#include "common/error.h"
#include "contention/pccs.h"
#include "contention/piecewise.h"
#include "soc/platform.h"

namespace {

using namespace hax;
using namespace hax::contention;

// ------------------------------------------------------------- piecewise --

TEST(Piecewise, InterpolatesLinearly) {
  PiecewiseLinear f;
  f.add_knot(0.0, 1.0);
  f.add_knot(10.0, 3.0);
  EXPECT_DOUBLE_EQ(f.eval(0.0), 1.0);
  EXPECT_DOUBLE_EQ(f.eval(5.0), 2.0);
  EXPECT_DOUBLE_EQ(f.eval(10.0), 3.0);
}

TEST(Piecewise, ClampsBeyondEnds) {
  PiecewiseLinear f;
  f.add_knot(1.0, 2.0);
  f.add_knot(2.0, 4.0);
  EXPECT_DOUBLE_EQ(f.eval(-5.0), 2.0);
  EXPECT_DOUBLE_EQ(f.eval(100.0), 4.0);
}

TEST(Piecewise, MultiSegment) {
  const std::vector<double> xs{0.0, 1.0, 3.0};
  const std::vector<double> ys{0.0, 1.0, 1.0};
  const PiecewiseLinear f(xs, ys);
  EXPECT_DOUBLE_EQ(f.eval(0.5), 0.5);
  EXPECT_DOUBLE_EQ(f.eval(2.0), 1.0);
  EXPECT_EQ(f.knot_count(), 3u);
}

TEST(Piecewise, RejectsNonIncreasingX) {
  PiecewiseLinear f;
  f.add_knot(1.0, 0.0);
  EXPECT_THROW(f.add_knot(1.0, 1.0), PreconditionError);
  EXPECT_THROW(f.add_knot(0.5, 1.0), PreconditionError);
}

TEST(Piecewise, RejectsEmptyEval) {
  const PiecewiseLinear f;
  EXPECT_TRUE(f.empty());
  EXPECT_THROW((void)f.eval(0.0), PreconditionError);
}

TEST(Piecewise, RejectsMismatchedArrays) {
  const std::vector<double> xs{0.0, 1.0};
  const std::vector<double> ys{0.0};
  EXPECT_THROW(PiecewiseLinear(xs, ys), PreconditionError);
}

TEST(Piecewise, SingleKnotConstant) {
  PiecewiseLinear f;
  f.add_knot(5.0, 7.0);
  EXPECT_DOUBLE_EQ(f.eval(0.0), 7.0);
  EXPECT_DOUBLE_EQ(f.eval(5.0), 7.0);
  EXPECT_DOUBLE_EQ(f.eval(9.0), 7.0);
}

// ------------------------------------------------------------------ pccs --

soc::MemorySystem test_memory() {
  soc::MemoryParams m;
  m.total_gbps = 100.0;
  m.contention_penalty = 0.2;
  m.min_efficiency = 0.5;
  return soc::MemorySystem(m);
}

TEST(Pccs, SlowdownAtLeastOne) {
  const auto model = PccsModel::calibrate(test_memory());
  for (double own : {1.0, 20.0, 50.0, 90.0}) {
    for (double ext : {0.0, 10.0, 60.0, 120.0}) {
      EXPECT_GE(model.slowdown(own, ext), 1.0) << own << "," << ext;
    }
  }
}

TEST(Pccs, NoSlowdownWithoutTraffic) {
  const auto model = PccsModel::calibrate(test_memory());
  EXPECT_DOUBLE_EQ(model.slowdown(50.0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(model.slowdown(0.0, 80.0), 1.0);
}

TEST(Pccs, MonotoneInExternalTraffic) {
  const auto model = PccsModel::calibrate(test_memory());
  double prev = 0.0;
  for (double ext = 0.0; ext <= 100.0; ext += 5.0) {
    const double s = model.slowdown(60.0, ext);
    EXPECT_GE(s, prev - 1e-9);
    prev = s;
  }
}

TEST(Pccs, MatchesGroundTruthOnGrid) {
  // The fitted model should track the memory system's true slowdown
  // within a few percent over the calibration range.
  const auto mem = test_memory();
  const auto model = PccsModel::calibrate(mem);
  for (double own = 5.0; own <= 95.0; own += 7.5) {
    for (double ext = 0.0; ext <= 95.0; ext += 9.5) {
      const double truth = mem.slowdown(own, ext);
      const double predicted = model.slowdown(own, ext);
      EXPECT_NEAR(predicted, truth, 0.05 * truth) << "own=" << own << " ext=" << ext;
    }
  }
}

TEST(Pccs, ReproducesPaperScaleSlowdowns) {
  // Two heavy streams on Xavier-like memory should show the significant
  // (tens of percent) slowdowns the paper reports.
  const auto model = PccsModel::calibrate(soc::Platform::xavier().memory());
  EXPECT_GT(model.slowdown(90.0, 45.0), 1.2);
  EXPECT_GT(model.slowdown(100.0, 100.0), 1.5);
}

TEST(Pccs, TinyOwnDemandScalesTowardOne) {
  const auto model = PccsModel::calibrate(test_memory());
  const double tiny = model.slowdown(0.5, 100.0);
  const double small = model.slowdown(5.0, 100.0);
  EXPECT_GE(small, tiny);
  EXPECT_LT(tiny, 1.1);
}

TEST(Pccs, CalibrationOptionsValidated) {
  const auto mem = test_memory();
  EXPECT_THROW((void)PccsModel::calibrate(mem, {.own_levels = 1}), PreconditionError);
  EXPECT_THROW((void)PccsModel::calibrate(mem, {.traffic_knots = 1}), PreconditionError);
  EXPECT_THROW((void)PccsModel::calibrate(mem, {.max_fraction = 0.0}), PreconditionError);
}

TEST(Pccs, FinerGridReducesError) {
  const auto mem = test_memory();
  const auto coarse = PccsModel::calibrate(mem, {.own_levels = 3, .traffic_knots = 5});
  const auto fine = PccsModel::calibrate(mem, {.own_levels = 17, .traffic_knots = 33});
  double coarse_err = 0.0, fine_err = 0.0;
  int samples = 0;
  for (double own = 5.0; own <= 95.0; own += 10.0) {
    for (double ext = 5.0; ext <= 95.0; ext += 10.0) {
      const double truth = mem.slowdown(own, ext);
      coarse_err += std::abs(coarse.slowdown(own, ext) - truth);
      fine_err += std::abs(fine.slowdown(own, ext) - truth);
      ++samples;
    }
  }
  EXPECT_LE(fine_err, coarse_err + 1e-9);
  EXPECT_LT(fine_err / samples, 0.01);
}

TEST(Pccs, LevelCountMatchesOptions) {
  const auto model = PccsModel::calibrate(test_memory(), {.own_levels = 7});
  EXPECT_EQ(model.own_level_count(), 7);
}

}  // namespace
