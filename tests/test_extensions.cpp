/// Tests for the extension modules: schedule serialization, contention
/// interval analysis, Chrome trace export, the energy model, and
/// profiling-noise robustness.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "baselines/baselines.h"
#include "common/error.h"
#include "common/json.h"
#include "core/energy.h"
#include "core/evaluate.h"
#include "core/haxconn.h"
#include "nn/zoo.h"
#include "sched/serialize.h"
#include "sim/intervals.h"
#include "sim/trace_export.h"

namespace {

using namespace hax;

class ExtensionFixture : public testing::Test {
 protected:
  ExtensionFixture()
      : plat_(soc::Platform::xavier()),
        hax_(plat_, [] {
          core::HaxConnOptions o;
          o.grouping.max_groups = 6;
          return o;
        }()),
        inst_(hax_.make_problem({{nn::zoo::googlenet()}, {nn::zoo::resnet18()}})) {}

  soc::Platform plat_;
  core::HaxConn hax_;
  sched::ProblemInstance inst_;
};

// --------------------------------------------------------- serialization --

TEST_F(ExtensionFixture, ScheduleJsonRoundTrip) {
  const sched::Schedule s = baselines::naive_concurrent(inst_.problem());
  const sched::Schedule back = sched::schedule_from_string(sched::schedule_to_string(s));
  EXPECT_EQ(back, s);
}

TEST_F(ExtensionFixture, ScheduleFileRoundTrip) {
  const std::string path = testing::TempDir() + "/hax_schedule.json";
  const sched::Schedule s = baselines::mensa(inst_.problem());
  sched::save_schedule(s, path);
  EXPECT_EQ(sched::load_schedule(path), s);
  std::remove(path.c_str());
}

TEST(Serialize, RejectsBadDocuments) {
  EXPECT_THROW((void)sched::schedule_from_string("{}"), PreconditionError);
  EXPECT_THROW((void)sched::schedule_from_string(R"({"version":99,"assignment":[[0]]})"),
               PreconditionError);
  EXPECT_THROW((void)sched::schedule_from_string(R"({"version":1,"assignment":[]})"),
               PreconditionError);
  EXPECT_THROW((void)sched::schedule_from_string(R"({"version":1,"assignment":[[-1]]})"),
               PreconditionError);
  EXPECT_THROW((void)sched::load_schedule("/nonexistent/x.json"), std::runtime_error);
}

TEST_F(ExtensionFixture, ProfileJsonStructure) {
  const sched::DnnSpec& spec = inst_.problem().dnns[0];
  const json::Value v = sched::profile_to_json(*spec.profile);
  EXPECT_EQ(v.at("groups").as_int(), spec.profile->group_count());
  EXPECT_EQ(v.at("layers").as_int(), spec.profile->layer_count());
  EXPECT_EQ(static_cast<int>(v.at("group_records").as_array().size()),
            spec.profile->group_count());
  // Must be parseable JSON.
  EXPECT_NO_THROW((void)json::parse(v.dump(2)));
}

TEST_F(ExtensionFixture, PredictionJson) {
  const sched::Formulation f(inst_.problem());
  const sched::Prediction p = f.predict(baselines::gpu_only(inst_.problem()),
                                        {.enforce_epsilon = false});
  const json::Value v = sched::prediction_to_json(p);
  EXPECT_TRUE(v.at("feasible").as_bool());
  EXPECT_NEAR(v.at("round_ms").as_number(), p.round_ms, 1e-12);
  EXPECT_EQ(v.at("dnn_span_ms").as_array().size(), 2u);
}

// -------------------------------------------------------------- intervals --

TEST_F(ExtensionFixture, IntervalsCoverBusyTime) {
  const sched::Schedule split = [&] {
    sched::Schedule s = baselines::gpu_only(inst_.problem());
    s.assignment[1] = baselines::naive_concurrent(inst_.problem()).assignment[1];
    return s;
  }();
  const auto ev = core::evaluate(inst_.problem(), split, {.record_trace = true});
  const sim::IntervalAnalysis analysis(ev.sim.trace);
  ASSERT_FALSE(analysis.intervals().empty());

  // Intervals are ordered, non-overlapping, within the makespan.
  TimeMs prev_end = 0.0;
  for (const auto& iv : analysis.intervals()) {
    EXPECT_GE(iv.start, prev_end - 1e-9);
    EXPECT_GT(iv.end, iv.start);
    EXPECT_LE(iv.end, ev.sim.makespan_ms + 1e-9);
    EXPECT_EQ(iv.active_tasks.size(), iv.rates.size());
    EXPECT_GE(iv.concurrency(), 1);
    for (double r : iv.rates) {
      EXPECT_GT(r, 0.0);
      EXPECT_LE(r, 1.0 + 1e-9);
    }
    prev_end = iv.end;
  }
}

TEST_F(ExtensionFixture, IntervalTaskStatsMatchTrace) {
  const auto ev =
      core::evaluate(inst_.problem(), baselines::naive_concurrent(inst_.problem()),
                     {.record_trace = true});
  const sim::IntervalAnalysis analysis(ev.sim.trace);
  for (int t = 0; t < 2; ++t) {
    const auto stats = analysis.task_stats(t);
    EXPECT_GT(stats.busy_ms, 0.0);
    EXPECT_GE(stats.contention_slowdown(), 1.0 - 1e-9);
    // busy time equals the trace's record time for this task.
    TimeMs trace_busy = 0.0;
    for (const auto& r : ev.sim.trace.records()) {
      if (r.task == t) trace_busy += r.end - r.start;
    }
    EXPECT_NEAR(stats.busy_ms, trace_busy, 1e-6);
  }
}

TEST_F(ExtensionFixture, ConcurrencyTimeMonotone) {
  const auto ev =
      core::evaluate(inst_.problem(), baselines::naive_concurrent(inst_.problem()),
                     {.record_trace = true});
  const sim::IntervalAnalysis analysis(ev.sim.trace);
  EXPECT_GE(analysis.time_at_concurrency(1), analysis.time_at_concurrency(2));
  EXPECT_GE(analysis.time_at_concurrency(2), analysis.time_at_concurrency(3));
  EXPECT_GE(analysis.contended_fraction(), 0.0);
  EXPECT_LE(analysis.contended_fraction(), 1.0);
  EXPECT_FALSE(analysis.render().empty());
}

TEST(Intervals, EmptyTraceRejected) {
  const sim::Trace empty;
  EXPECT_THROW(sim::IntervalAnalysis{empty}, PreconditionError);
}

// ----------------------------------------------------------- trace export --

TEST_F(ExtensionFixture, ChromeTraceIsValidJson) {
  const auto ev =
      core::evaluate(inst_.problem(), baselines::naive_concurrent(inst_.problem()),
                     {.record_trace = true});
  const std::string doc = sim::to_chrome_trace(ev.sim.trace, plat_);
  const json::Value v = json::parse(doc);
  const auto& events = v.at("traceEvents").as_array();
  // PU metadata + one event per trace record.
  EXPECT_EQ(events.size(),
            ev.sim.trace.records().size() + static_cast<std::size_t>(plat_.pu_count()));
  // Complete events carry ts/dur in microseconds.
  bool found_exec = false;
  for (const auto& e : events) {
    if (e.at("ph").as_string() != "X") continue;
    found_exec = true;
    EXPECT_GE(e.at("dur").as_number(), 0.0);
    EXPECT_TRUE(e.contains("args"));
  }
  EXPECT_TRUE(found_exec);
}

TEST_F(ExtensionFixture, ChromeTraceFileWrite) {
  const std::string path = testing::TempDir() + "/hax_trace.json";
  const auto ev = core::evaluate(inst_.problem(), baselines::gpu_only(inst_.problem()),
                                 {.record_trace = true});
  sim::write_chrome_trace(ev.sim.trace, plat_, path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::remove(path.c_str());
}

// ---------------------------------------------------------------- energy --

TEST_F(ExtensionFixture, EnergyBreakdownSane) {
  const auto e = core::evaluate_energy(inst_.problem(),
                                       baselines::naive_concurrent(inst_.problem()));
  EXPECT_GT(e.total_mj(), 0.0);
  EXPECT_GT(e.dram_mj, 0.0);
  EXPECT_EQ(e.pu_active_mj.size(), static_cast<std::size_t>(plat_.pu_count()));
  for (double mj : e.pu_active_mj) EXPECT_GE(mj, 0.0);
  for (double mj : e.pu_idle_mj) EXPECT_GE(mj, 0.0);
  EXPECT_NEAR(e.per_frame_mj(2) * 2.0, e.total_mj(), 1e-9);
  EXPECT_THROW((void)e.per_frame_mj(0), PreconditionError);
}

TEST_F(ExtensionFixture, EnergyNeedsTrace) {
  const sched::Schedule s = baselines::gpu_only(inst_.problem());
  const auto ev = core::evaluate(inst_.problem(), s, {.record_trace = false});
  EXPECT_THROW((void)core::measure_energy(inst_.problem(), s, ev), PreconditionError);
}

TEST_F(ExtensionFixture, FasterScheduleBurnsLessIdleEnergy) {
  // HaX-CoNN's shorter makespan must not increase total energy vs the
  // GPU-only serialization (same work, less idle time).
  const auto inst = hax_.make_problem({{nn::zoo::vgg19()}, {nn::zoo::resnet152()}});
  const auto sol = hax_.schedule(inst.problem());
  const double hax_mj = core::evaluate_energy(inst.problem(), sol.schedule).total_mj();
  const double gpu_mj =
      core::evaluate_energy(inst.problem(), baselines::gpu_only(inst.problem())).total_mj();
  EXPECT_LT(hax_mj, gpu_mj * 1.10);
}

TEST(Energy, ActiveDominatesIdleForBusySchedules) {
  const auto plat = soc::Platform::orin();
  core::HaxConnOptions o;
  o.grouping.max_groups = 6;
  const core::HaxConn hax(plat, o);
  const auto inst = hax.make_problem({{nn::zoo::resnet50()}});
  const auto e = core::evaluate_energy(inst.problem(),
                                       baselines::gpu_only(inst.problem()));
  double active = 0.0, idle = 0.0;
  for (double x : e.pu_active_mj) active += x;
  for (double x : e.pu_idle_mj) idle += x;
  EXPECT_GT(active, idle);  // single busy GPU vs idle DLA+CPU
}

// ------------------------------------------------------------------ noise --

TEST(Noise, ProfilerJitterBounded) {
  const auto plat = soc::Platform::xavier();
  const auto gn = grouping::build_groups(nn::zoo::resnet18(), {.max_groups = 6});
  const perf::NetworkProfile exact = perf::Profiler(plat).profile(gn);
  const perf::NetworkProfile noisy =
      perf::Profiler(plat, {.noise_stdev = 0.03, .noise_seed = 7}).profile(gn);
  for (int g = 0; g < gn.group_count(); ++g) {
    const auto& a = exact.at(g, plat.gpu());
    const auto& b = noisy.at(g, plat.gpu());
    EXPECT_NE(a.time_ms, b.time_ms);  // jitter applied
    EXPECT_NEAR(b.time_ms, a.time_ms, 0.15 * a.time_ms);  // ~3 sigma over members
  }
}

TEST(Noise, NoiseIsDeterministicPerSeed) {
  const auto plat = soc::Platform::xavier();
  const auto gn = grouping::build_groups(nn::zoo::alexnet(), {.max_groups = 6});
  const perf::ProfilerOptions opts{.noise_stdev = 0.05, .noise_seed = 11};
  const auto a = perf::Profiler(plat, opts).profile(gn);
  const auto b = perf::Profiler(plat, opts).profile(gn);
  for (int g = 0; g < gn.group_count(); ++g) {
    EXPECT_DOUBLE_EQ(a.at(g, plat.gpu()).time_ms, b.at(g, plat.gpu()).time_ms);
  }
}

TEST(Noise, SchedulerRobustToMeasurementNoise) {
  // With a few percent of profiling jitter, HaX-CoNN must still never
  // lose to the naive baselines on ground truth (ε absorbs the error).
  const auto plat = soc::Platform::xavier();
  core::HaxConnOptions o;
  o.grouping.max_groups = 8;
  o.profiling.noise_stdev = 0.03;
  const core::HaxConn hax(plat, o);
  const auto inst = hax.make_problem({{nn::zoo::vgg19()}, {nn::zoo::resnet152()}});
  const auto sol = hax.schedule(inst.problem());
  const TimeMs hax_lat = core::evaluate(inst.problem(), sol.schedule).round_latency_ms;
  const TimeMs base_lat =
      core::evaluate(inst.problem(), baselines::gpu_only(inst.problem())).round_latency_ms;
  EXPECT_LE(hax_lat, base_lat * 1.08);
}

// ------------------------------------------------------------- new models --

TEST(ZooExtensions, ResNet34AndSqueezeNet) {
  const nn::Network r34 = nn::zoo::by_name("ResNet34");
  EXPECT_NO_THROW(r34.validate());
  EXPECT_NEAR(static_cast<double>(r34.total_flops()) / 1e9, 7.3, 1.2);  // ~3.6 GMACs

  const nn::Network sq = nn::zoo::by_name("SqueezeNet");
  EXPECT_NO_THROW(sq.validate());
  const double gflops = static_cast<double>(sq.total_flops()) / 1e9;
  EXPECT_GT(gflops, 0.5);
  EXPECT_LT(gflops, 3.0);
  EXPECT_LT(sq.total_weight_bytes(), 10ll << 20);  // famously few parameters
}

TEST(ZooExtensions, NewModelsSchedule) {
  const auto plat = soc::Platform::orin();
  core::HaxConnOptions o;
  o.grouping.max_groups = 8;
  const core::HaxConn hax(plat, o);
  const auto inst = hax.make_problem({{nn::zoo::squeezenet()}, {nn::zoo::resnet34()}});
  const auto sol = hax.schedule(inst.problem());
  EXPECT_FALSE(sol.schedule.assignment.empty());
  const TimeMs hax_lat = core::evaluate(inst.problem(), sol.schedule).round_latency_ms;
  const TimeMs base_lat =
      core::evaluate(inst.problem(), baselines::gpu_only(inst.problem())).round_latency_ms;
  EXPECT_LE(hax_lat, base_lat * 1.05);
}

}  // namespace
