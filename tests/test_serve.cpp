/// Tests for the scheduling-as-a-service layer (src/serve): scenario
/// fingerprinting, the sharded schedule cache, the SchedulerService
/// broker (admission, priorities, backpressure, cancellation, deadlines,
/// warm starts), the deterministic virtual-time replay mode, and the
/// provider hot-swap path into a live Executor.

#include <gtest/gtest.h>

#include <chrono>
#include <limits>
#include <mutex>
#include <thread>
#include <vector>

#include "baselines/baselines.h"
#include "common/error.h"
#include "core/haxconn.h"
#include "nn/zoo.h"
#include "runtime/executor.h"
#include "sched/fingerprint.h"
#include "sched/formulation.h"
#include "serve/schedule_cache.h"
#include "serve/service.h"

namespace {

using namespace hax;
using namespace hax::serve;

class ServeFixture : public testing::Test {
 protected:
  ServeFixture()
      : plat_(soc::Platform::xavier()),
        hax_(plat_,
             [] {
               core::HaxConnOptions o;
               o.grouping.max_groups = 5;
               return o;
             }()),
        inst_a_(hax_.make_problem({{nn::zoo::alexnet()}, {nn::zoo::resnet18()}})),
        inst_b_(hax_.make_problem({{nn::zoo::resnet18()}, {nn::zoo::alexnet()}})),
        solo_(hax_.make_problem({{nn::zoo::alexnet()}})),
        solo_iter_(hax_.make_problem({{nn::zoo::alexnet(), -1, 2}})) {
    // Relax the ε queueing constraint: these tests publish serialized
    // baselines (gpu_only) as cache seeds, which ε would reject. The
    // predictor still penalizes queueing, so optima are unchanged in kind.
    const double inf = std::numeric_limits<double>::infinity();
    inst_a_.problem().epsilon_ms = inf;
    inst_b_.problem().epsilon_ms = inf;
    solo_.problem().epsilon_ms = inf;
    solo_iter_.problem().epsilon_ms = inf;
  }

  [[nodiscard]] static ScenarioRequest request_for(const sched::Problem& problem,
                                                   Priority priority = Priority::kNormal) {
    ScenarioRequest r;
    r.problem = &problem;
    r.priority = priority;
    return r;
  }

  /// Inline deterministic service: no workers, node-bounded solves.
  [[nodiscard]] static ServiceOptions inline_options() {
    ServiceOptions o;
    o.workers = 0;
    o.default_budget_ms = 0.0;  // run to proof; spaces here are small
    return o;
  }

  /// One async worker with deterministically slow solves: ~node_limit /
  /// max_nodes_per_ms milliseconds each, long enough for queue assertions.
  [[nodiscard]] static ServiceOptions slow_async_options() {
    ServiceOptions o;
    o.workers = 1;
    o.queue_capacity = 1;
    o.default_budget_ms = 60000.0;
    o.default_node_limit = 2000;
    o.max_nodes_per_ms = 2.0;  // paces this fixture's ~100-node solves to ~50 ms
    return o;
  }

  soc::Platform plat_;
  core::HaxConn hax_;
  sched::ProblemInstance inst_a_;  // {alexnet, resnet18}
  sched::ProblemInstance inst_b_;  // same scenario, permuted DNN order
  sched::ProblemInstance solo_;    // {alexnet}
  sched::ProblemInstance solo_iter_;  // {alexnet ×2 iterations}: same shape, new scenario
};

// ------------------------------------------------------------ fingerprint --

TEST_F(ServeFixture, FingerprintIsPermutationInvariant) {
  const auto canon_a = sched::canonicalize(inst_a_.problem());
  const auto canon_b = sched::canonicalize(inst_b_.problem());
  EXPECT_EQ(canon_a.fingerprint, canon_b.fingerprint);
  EXPECT_EQ(canon_a.shape_key, canon_b.shape_key);
  // The permutations are inverses of each other through canonical space.
  ASSERT_EQ(canon_a.dnn_count(), 2);
  ASSERT_EQ(canon_b.dnn_count(), 2);
  EXPECT_EQ(canon_a.fingerprint.to_string().size(), 32u);
}

TEST_F(ServeFixture, FingerprintDistinguishesScenarios) {
  const auto canon_a = sched::canonicalize(inst_a_.problem());
  const auto canon_solo = sched::canonicalize(solo_.problem());
  EXPECT_NE(canon_a.fingerprint, canon_solo.fingerprint);

  // Same networks, different iteration counts: a different scenario...
  const auto canon_s1 = sched::canonicalize(solo_.problem());
  const auto canon_s2 = sched::canonicalize(solo_iter_.problem());
  EXPECT_NE(canon_s1.fingerprint, canon_s2.fingerprint);
  // ...but the same warm-start shape (same PU set and group structure).
  EXPECT_EQ(canon_s1.shape_key, canon_s2.shape_key);

  // Solver constraints are part of the scenario identity.
  sched::Problem tightened = solo_.problem();
  tightened.max_transitions = 1;
  const auto canon_t = sched::canonicalize(tightened);
  EXPECT_NE(canon_t.fingerprint, canon_s1.fingerprint);
  EXPECT_NE(canon_t.shape_key, canon_s1.shape_key);
}

TEST_F(ServeFixture, CanonicalRoundTripAndCrossPermutationServing) {
  const auto canon_a = sched::canonicalize(inst_a_.problem());
  const auto canon_b = sched::canonicalize(inst_b_.problem());
  // gpu_only is transition-free and fully supported, so predict() accepts it
  // under any max_transitions budget (naive_concurrent's GPU fallback can
  // exceed the budget and be structurally rejected).
  const sched::Schedule s_a = baselines::gpu_only(inst_a_.problem());

  // Round trip through canonical space is the identity.
  const sched::Schedule round =
      sched::from_canonical(sched::to_canonical(s_a, canon_a), canon_a);
  EXPECT_EQ(round, s_a);

  // A schedule cached under A's ordering serves B's ordering with the
  // same predicted objective.
  const sched::Schedule s_b =
      sched::from_canonical(sched::to_canonical(s_a, canon_a), canon_b);
  const double obj_a =
      sched::Formulation(inst_a_.problem()).predict(s_a).objective_value;
  const double obj_b =
      sched::Formulation(inst_b_.problem()).predict(s_b).objective_value;
  EXPECT_NEAR(obj_a, obj_b, 1e-9);
}

// ------------------------------------------------------------------ cache --

TEST(ScheduleCache, PublishImprovementFilterAndStats) {
  ScheduleCache cache;
  const sched::ScenarioFingerprint fp{1, 2};
  sched::Schedule s;
  s.assignment = {{0, 0}};

  EXPECT_TRUE(cache.publish(fp, 77, s, 10.0, false));
  EXPECT_FALSE(cache.publish(fp, 77, s, 12.0, false));  // worse: rejected
  EXPECT_TRUE(cache.publish(fp, 77, s, 8.0, true));     // better: upgraded

  const auto hit = cache.lookup(fp);
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(hit->objective, 8.0);
  EXPECT_TRUE(hit->proven_optimal);
  EXPECT_EQ(hit->version, 2u);

  EXPECT_FALSE(cache.lookup({9, 9}).has_value());

  const ScheduleCacheStats st = cache.stats();
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.insertions, 1u);
  EXPECT_EQ(st.improvements, 1u);
  EXPECT_EQ(st.rejected, 1u);
  EXPECT_DOUBLE_EQ(st.hit_rate(), 0.5);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ScheduleCache, PeekDoesNotCountAndNearestExcludesSelf) {
  ScheduleCache cache;
  const sched::ScenarioFingerprint fp1{1, 1};
  const sched::ScenarioFingerprint fp2{2, 2};
  sched::Schedule s;
  s.assignment = {{0}};
  ASSERT_TRUE(cache.publish(fp1, 5, s, 3.0, false));

  EXPECT_TRUE(cache.peek(fp1).has_value());
  EXPECT_FALSE(cache.peek(fp2).has_value());
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 0u);

  // The only same-shape entry is fp1 itself: no warm start for fp1.
  EXPECT_FALSE(cache.nearest(5, fp1).has_value());
  EXPECT_EQ(cache.stats().warm_hits, 0u);

  // A second same-shape scenario becomes fp1's neighbour (and vice versa).
  ASSERT_TRUE(cache.publish(fp2, 5, s, 4.0, false));
  const auto warm = cache.nearest(5, fp1);
  ASSERT_TRUE(warm.has_value());
  EXPECT_DOUBLE_EQ(warm->objective, 4.0);
  EXPECT_EQ(cache.stats().warm_hits, 1u);
}

TEST(ScheduleCache, PeeksAreCountedSeparately) {
  // The old stats block made peeks invisible, which skewed the fleet's
  // accounting (queued duplicates are answered through peek): probes now
  // split into counted lookups and uncounted-but-tracked peeks, and
  // probe_hit_rate() covers both.
  ScheduleCache cache;
  const sched::ScenarioFingerprint fp{3, 4};
  sched::Schedule s;
  s.assignment = {{0}};
  ASSERT_TRUE(cache.publish(fp, 1, s, 2.0, false));

  (void)cache.lookup(fp);       // hit
  (void)cache.lookup({9, 9});   // miss
  (void)cache.peek(fp);         // peek hit
  (void)cache.peek({8, 8});     // peek miss

  const ScheduleCacheStats st = cache.stats();
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.peeks, 2u);
  EXPECT_EQ(st.peek_hits, 1u);
  // lookup-only rate unchanged by peeks; probe rate folds them in.
  EXPECT_DOUBLE_EQ(st.hit_rate(), 0.5);
  EXPECT_DOUBLE_EQ(st.probe_hit_rate(), 0.5);  // (1 + 1) / (1 + 1 + 2)
}

TEST(ScheduleCache, BoundedShardsEvictDeterministically) {
  ScheduleCacheOptions opts;
  opts.shards = 1;
  opts.capacity_per_shard = 2;
  ScheduleCache cache(opts);
  sched::Schedule s;
  s.assignment = {{0}};
  ASSERT_TRUE(cache.publish({0, 1}, 1, s, 1.0, false));
  ASSERT_TRUE(cache.publish({0, 2}, 1, s, 1.0, false));
  ASSERT_TRUE(cache.publish({0, 3}, 1, s, 1.0, false));  // evicts smallest key
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_FALSE(cache.peek({0, 1}).has_value());
  EXPECT_TRUE(cache.peek({0, 2}).has_value());
  EXPECT_TRUE(cache.peek({0, 3}).has_value());
}

// ---------------------------------------------------------------- service --

TEST_F(ServeFixture, SolveThenHitAcrossPermutation) {
  SchedulerService svc(inline_options());

  const ScheduleTicket first = svc.submit(request_for(inst_a_.problem()));
  const ServeReply solved = first.reply();
  ASSERT_EQ(solved.outcome, ServeOutcome::kSolved);
  EXPECT_TRUE(solved.proven_optimal);
  EXPECT_TRUE(solved.published);
  EXPECT_FALSE(solved.deadline_limited);
  EXPECT_GT(solved.objective, 0.0);

  // The permuted problem is the same scenario: a cache hit, answered in
  // B's DNN order with the same objective.
  const ScheduleTicket second = svc.submit(request_for(inst_b_.problem()));
  const ServeReply hit = second.reply();
  ASSERT_EQ(hit.outcome, ServeOutcome::kHit);
  EXPECT_EQ(hit.fingerprint, solved.fingerprint);
  EXPECT_NEAR(hit.objective, solved.objective, 1e-12);
  const double replayed =
      sched::Formulation(inst_b_.problem()).predict(hit.schedule).objective_value;
  EXPECT_NEAR(replayed, solved.objective, 1e-9);

  const ServiceStats st = svc.stats();
  EXPECT_EQ(st.total.submitted, 2u);
  EXPECT_EQ(st.total.solved, 1u);
  EXPECT_EQ(st.total.cache_hits, 1u);
  EXPECT_EQ(st.solves_started, 1u);
  EXPECT_EQ(st.cache.hits, 1u);
  EXPECT_EQ(st.cache.misses, 1u);
  EXPECT_EQ(st.total.latency_samples, 2u);
  EXPECT_GT(st.total.p50_ms, 0.0);
}

TEST_F(ServeFixture, RefreshResolvesAndWarmStartsFromOwnEntry) {
  SchedulerService svc(inline_options());
  ASSERT_EQ(svc.submit(request_for(solo_.problem())).reply().outcome, ServeOutcome::kSolved);

  ScenarioRequest refresh = request_for(solo_.problem());
  refresh.refresh = true;
  const ServeReply reply = svc.submit(refresh).reply();
  ASSERT_EQ(reply.outcome, ServeOutcome::kSolved);  // bypassed the hit path
  EXPECT_TRUE(reply.warm_started);                  // seeded by its own stale entry
  EXPECT_FALSE(reply.published);  // re-solve of a proven optimum cannot improve it
  EXPECT_EQ(svc.stats().solves_started, 2u);
}

TEST_F(ServeFixture, WarmStartsFromSameShapeNeighbour) {
  SchedulerService svc(inline_options());
  const ServeReply cold = svc.submit(request_for(solo_.problem())).reply();
  ASSERT_EQ(cold.outcome, ServeOutcome::kSolved);
  EXPECT_FALSE(cold.warm_started);  // empty cache: nothing to seed from

  // A different scenario of the same shape: a miss, but the neighbour's
  // schedule seeds the solve.
  const ServeReply warm = svc.submit(request_for(solo_iter_.problem())).reply();
  ASSERT_EQ(warm.outcome, ServeOutcome::kSolved);
  EXPECT_NE(warm.fingerprint, cold.fingerprint);
  EXPECT_TRUE(warm.warm_started);
  EXPECT_GE(svc.stats().cache.warm_hits, 1u);
  EXPECT_EQ(svc.stats().total.warm_started, 1u);
}

TEST_F(ServeFixture, BackpressureRejectsWhenQueueFull) {
  SchedulerService svc(slow_async_options());  // 1 worker, capacity 1
  std::vector<ScheduleTicket> tickets;
  for (int i = 0; i < 4; ++i) tickets.push_back(svc.submit(request_for(inst_a_.problem())));
  // At most one in flight and one queued while the blocker solves (~80 ms
  // against sub-millisecond submits): at least two rejections.
  int rejected = 0;
  for (const auto& t : tickets) {
    const ServeReply r = t.reply();
    if (r.outcome == ServeOutcome::kRejected) {
      ++rejected;
      EXPECT_TRUE(r.schedule.assignment.empty());
    } else {
      EXPECT_TRUE(r.outcome == ServeOutcome::kSolved || r.outcome == ServeOutcome::kHit);
    }
  }
  EXPECT_GE(rejected, 2);
  EXPECT_EQ(svc.stats().total.rejected, static_cast<std::uint64_t>(rejected));
}

TEST_F(ServeFixture, QueuedCancelNeverReachesASolver) {
  SchedulerService svc([] {
    ServiceOptions o = slow_async_options();
    o.queue_capacity = 4;
    return o;
  }());
  const ScheduleTicket blocker = svc.submit(request_for(inst_a_.problem()));
  ScenarioRequest queued_req = request_for(inst_a_.problem());
  queued_req.refresh = true;  // would definitely solve if it reached a worker
  const ScheduleTicket queued = svc.submit(queued_req);
  queued.cancel();

  EXPECT_EQ(queued.reply().outcome, ServeOutcome::kCancelled);
  ASSERT_TRUE(blocker.wait(30000.0));
  const ServiceStats st = svc.stats();
  EXPECT_EQ(st.solves_started, 1u);  // only the blocker ever solved
  EXPECT_EQ(st.total.cancelled, 1u);
}

TEST_F(ServeFixture, QueuedDeadlineExpiresWithoutSolving) {
  SchedulerService svc([] {
    ServiceOptions o = slow_async_options();
    o.queue_capacity = 4;
    return o;
  }());
  const ScheduleTicket blocker = svc.submit(request_for(inst_a_.problem()));
  ScenarioRequest hurried = request_for(inst_a_.problem());
  hurried.refresh = true;
  hurried.deadline_ms = 5.0;  // far less than the blocker's ~80 ms solve
  const ScheduleTicket late = svc.submit(hurried);

  EXPECT_EQ(late.reply().outcome, ServeOutcome::kExpired);
  ASSERT_TRUE(blocker.wait(30000.0));
  const ServiceStats st = svc.stats();
  EXPECT_EQ(st.solves_started, 1u);
  EXPECT_EQ(st.total.expired, 1u);
}

TEST_F(ServeFixture, InFlightCancelStopsWithinAPoll) {
  SchedulerService svc([] {
    ServiceOptions o;
    o.workers = 1;
    o.default_budget_ms = 600000.0;  // would run for minutes...
    o.default_node_limit = 0;
    o.max_nodes_per_ms = 1.0;  // ...at 1 node/ms
    return o;
  }());
  const ScheduleTicket t = svc.submit(request_for(inst_a_.problem()));
  // Wait until the solve is actually in flight.
  for (int i = 0; i < 1000 && svc.stats().solves_started == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(svc.stats().solves_started, 1u);
  t.cancel();
  // The B&B polls its StopToken per node: completion must be prompt, not
  // after the multi-minute budget.
  ASSERT_TRUE(t.wait(10000.0));
  EXPECT_EQ(t.reply().outcome, ServeOutcome::kCancelled);
}

TEST_F(ServeFixture, ShutdownCancelsQueuedWork) {
  SchedulerService svc([] {
    ServiceOptions o = slow_async_options();
    o.queue_capacity = 4;
    return o;
  }());
  const ScheduleTicket blocker = svc.submit(request_for(inst_a_.problem()));
  ScenarioRequest queued_req = request_for(inst_a_.problem());
  queued_req.refresh = true;
  const ScheduleTicket queued = svc.submit(queued_req);
  svc.shutdown();
  EXPECT_TRUE(blocker.done());
  EXPECT_EQ(queued.reply().outcome, ServeOutcome::kCancelled);
  // Submits after shutdown are refused, not lost.
  EXPECT_EQ(svc.submit(request_for(inst_a_.problem())).reply().outcome,
            ServeOutcome::kRejected);
}

TEST_F(ServeFixture, PriorityClassesDrainHighFirst) {
  SchedulerService svc([] {
    ServiceOptions o = slow_async_options();
    o.queue_capacity = 4;
    return o;
  }());
  // Blocker occupies the worker; then one low and one high request queue
  // up. The worker must pick the high one first, which shows up as
  // strictly smaller latency (both are refreshes of the same scenario).
  const ScheduleTicket blocker = svc.submit(request_for(inst_a_.problem()));
  ScenarioRequest low = request_for(inst_a_.problem(), Priority::kLow);
  low.refresh = true;
  ScenarioRequest high = request_for(inst_a_.problem(), Priority::kHigh);
  high.refresh = true;
  const ScheduleTicket t_low = svc.submit(low);  // submitted BEFORE high
  const ScheduleTicket t_high = svc.submit(high);
  const ServeReply r_low = t_low.reply();
  const ServeReply r_high = t_high.reply();
  ASSERT_EQ(r_low.outcome, ServeOutcome::kSolved);
  ASSERT_EQ(r_high.outcome, ServeOutcome::kSolved);
  EXPECT_LT(r_high.latency_ms, r_low.latency_ms);
  const ServiceStats st = svc.stats();
  EXPECT_EQ(st.by_class[static_cast<int>(Priority::kHigh)].solved, 1u);
  EXPECT_EQ(st.by_class[static_cast<int>(Priority::kLow)].solved, 1u);
}

// ----------------------------------------------------------- virtual time --

TEST_F(ServeFixture, VirtualTimeReplayIsBitIdentical) {
  const auto run_trace = [&](SchedulerService& svc) {
    const sched::Problem* problems[] = {&solo_.problem(), &solo_iter_.problem(),
                                        &solo_.problem(), &inst_a_.problem(),
                                        &solo_.problem(), &inst_b_.problem()};
    const Priority prios[] = {Priority::kNormal, Priority::kHigh,  Priority::kLow,
                              Priority::kNormal, Priority::kNormal, Priority::kHigh};
    TimeMs arrival = 0.0;
    for (int i = 0; i < 6; ++i) {
      ScenarioRequest r;
      r.problem = problems[i];
      r.priority = prios[i];
      const ServeReply reply = svc.submit_at(r, arrival).reply();
      EXPECT_NE(reply.outcome, ServeOutcome::kPending);
      arrival += 3.0;
    }
  };
  const auto options = [] {
    ServiceOptions o;
    o.workers = 0;
    o.virtual_time = true;
    o.default_node_limit = 800;
    o.virtual_nodes_per_ms = 200.0;
    return o;
  }();

  SchedulerService first(options);
  run_trace(first);
  const ServiceStats st = first.stats();
  EXPECT_GT(st.total.cache_hits, 0u);  // inst_b_ repeats inst_a_; solo_ repeats
  EXPECT_GT(st.total.solved, 0u);
  EXPECT_GT(st.elapsed_ms, 0.0);
  EXPECT_GT(st.throughput_rps, 0.0);
  EXPECT_GT(st.total.p50_ms, 0.0);

  SchedulerService second(options);
  run_trace(second);
  // The whole stats document — counters, P² latency quantiles, virtual
  // elapsed/throughput, cache counters — replays bit-identically.
  EXPECT_EQ(st.to_json().dump(), second.stats().to_json().dump());
}

TEST_F(ServeFixture, VirtualTimeDeadlineExpiresInQueue) {
  ServiceOptions o;
  o.workers = 0;
  o.virtual_time = true;
  o.default_node_limit = 800;
  o.virtual_nodes_per_ms = 1.0;  // first solve keeps the server busy many virtual ms
  SchedulerService svc(o);

  ASSERT_EQ(svc.submit_at(request_for(inst_a_.problem()), 0.0).reply().outcome,
            ServeOutcome::kSolved);
  ScenarioRequest hurried = request_for(solo_iter_.problem());
  hurried.deadline_ms = 2.0;  // expires while the virtual server is still busy
  const ServeReply late = svc.submit_at(hurried, 1.0).reply();
  EXPECT_EQ(late.outcome, ServeOutcome::kExpired);
  EXPECT_DOUBLE_EQ(late.latency_ms, 2.0);
  EXPECT_EQ(svc.stats().solves_started, 1u);
}

// ------------------------------------------------- provider / integration --

TEST_F(ServeFixture, PublishExternalPrewarmsTheCache) {
  SchedulerService svc(inline_options());
  const sched::Schedule seed = baselines::gpu_only(inst_a_.problem());
  ASSERT_TRUE(svc.publish_external(inst_a_.problem(), seed));
  EXPECT_FALSE(svc.publish_external(inst_a_.problem(), seed));  // no improvement

  const ServeReply hit = svc.submit(request_for(inst_a_.problem())).reply();
  ASSERT_EQ(hit.outcome, ServeOutcome::kHit);
  EXPECT_EQ(hit.schedule, seed);
  EXPECT_EQ(svc.stats().solves_started, 0u);
}

TEST_F(ServeFixture, ExecutorPicksUpImprovedScheduleAtFrameBoundary) {
  // The integration loop: serve a (deliberately weak) cached schedule,
  // run an Executor on the provider, re-solve in the background, and the
  // executor adopts the published improvement at its next frame boundary.
  SchedulerService svc(inline_options());
  const sched::Problem& problem = inst_a_.problem();
  const sched::Schedule weak = baselines::gpu_only(problem);
  ASSERT_TRUE(svc.publish_external(problem, weak));

  const runtime::ScheduleProvider provider = svc.make_provider(problem);
  EXPECT_EQ(provider(), weak);

  runtime::ExecutorOptions eo;
  eo.time_scale = 0.2;  // compressed time (see test_runtime.cpp)
  const runtime::Executor exec(plat_, eo);
  // The provider runs on every per-DNN executor thread: the recording
  // wrapper must synchronize its log.
  std::mutex seen_mu;
  std::vector<sched::Schedule> seen;
  const runtime::ScheduleProvider recording = [&] {
    sched::Schedule s = provider();
    const std::lock_guard<std::mutex> lock(seen_mu);
    seen.push_back(s);
    return s;
  };
  (void)exec.run(problem, recording, 2);
  ASSERT_FALSE(seen.empty());
  EXPECT_EQ(seen.front(), weak);

  // Background re-solve: the optimum beats GPU-only (the paper's core
  // claim), so the publish upgrades both cache and live handle.
  ScenarioRequest refresh = request_for(problem);
  refresh.refresh = true;
  const ServeReply improved = svc.submit(refresh).reply();
  ASSERT_EQ(improved.outcome, ServeOutcome::kSolved);
  ASSERT_TRUE(improved.published);
  const double weak_obj =
      sched::Formulation(problem).predict(weak).objective_value;
  EXPECT_LT(improved.objective, weak_obj);

  seen.clear();
  (void)exec.run(problem, recording, 2);
  ASSERT_FALSE(seen.empty());
  for (const sched::Schedule& s : seen) {
    EXPECT_EQ(s, improved.schedule);  // every frame ran the upgraded schedule
  }
}

TEST_F(ServeFixture, ProviderSeedsFromBaselineWhenCacheIsCold) {
  SchedulerService svc(inline_options());
  const runtime::ScheduleProvider provider = svc.make_provider(inst_a_.problem());
  // Nothing solved or published yet: the provider still hands out a valid
  // schedule (the naive-concurrent baseline).
  EXPECT_EQ(provider(), baselines::naive_concurrent(inst_a_.problem()));
}

TEST_F(ServeFixture, ServiceOptionsValidated) {
  ServiceOptions bad;
  bad.virtual_time = true;
  bad.workers = 2;
  EXPECT_THROW(SchedulerService{bad}, PreconditionError);

  ServiceOptions bad2;
  bad2.queue_capacity = 0;
  EXPECT_THROW(SchedulerService{bad2}, PreconditionError);

  ServiceOptions inline_wall;
  inline_wall.workers = 0;
  SchedulerService wall(inline_wall);
  EXPECT_THROW((void)wall.submit_at(request_for(solo_.problem()), 0.0), PreconditionError);

  ServiceOptions vt;
  vt.workers = 0;
  vt.virtual_time = true;
  SchedulerService virt(vt);
  EXPECT_THROW((void)virt.submit(request_for(solo_.problem())), PreconditionError);
  (void)virt.submit_at(request_for(solo_.problem()), 5.0);
  // Arrivals must be non-decreasing on the virtual clock.
  EXPECT_THROW((void)virt.submit_at(request_for(solo_.problem()), 4.0), PreconditionError);
}

}  // namespace
