/// Tests for the scheduler fleet (src/fleet) and its foundations: the
/// epoch-based reclamation domain (common/epoch.h) behind the cache's
/// lock-free read path, the replication wire format and ReplicationBus,
/// the fingerprint router, broker snapshot/restore and restart catch-up,
/// the device-fleet workload generator, and the provenance stamp of the
/// committed BENCH_fleet.json artifact. The concurrent tests in this file
/// are the payload of the `check_fleet` TSan gate.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <limits>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/epoch.h"
#include "common/error.h"
#include "common/json.h"
#include "core/haxconn.h"
#include "fleet/devices.h"
#include "fleet/fleet.h"
#include "fleet/replication.h"
#include "nn/zoo.h"
#include "sched/fingerprint.h"
#include "sched/serialize.h"
#include "serve/schedule_cache.h"
#include "serve/service.h"

namespace {

using namespace hax;
using namespace hax::fleet;

// ------------------------------------------------------------------ epoch --

/// Deleter that bumps a counter behind the retired pointer.
struct FreeCounter {
  static void free_u64(void* ptr) {
    auto* cell = static_cast<std::atomic<std::uint64_t>*>(ptr);
    cell->fetch_add(1, std::memory_order_relaxed);
  }
};

TEST(Epoch, RetiredObjectsAreFreedAfterQuiescentAdvances) {
  epoch::Domain domain;
  std::atomic<std::uint64_t> freed{0};
  domain.retire(&freed, &FreeCounter::free_u64);
  EXPECT_EQ(domain.limbo_size(), 1u);
  // No reader is pinned, so two advances make the garbage unreachable.
  domain.advance();
  domain.advance();
  domain.advance();
  EXPECT_EQ(domain.limbo_size(), 0u);
  EXPECT_EQ(freed.load(), 1u);
}

TEST(Epoch, PinnedReaderBlocksReclamation) {
  epoch::Domain domain;
  std::atomic<std::uint64_t> freed{0};
  {
    epoch::ReaderGuard guard(domain);
    domain.retire(&freed, &FreeCounter::free_u64);
    const std::uint64_t pinned_epoch = domain.current_epoch();
    for (int i = 0; i < 8; ++i) domain.advance();
    // A pinned reader freezes the epoch, so the retired object survives.
    EXPECT_EQ(domain.current_epoch(), pinned_epoch);
    EXPECT_EQ(domain.limbo_size(), 1u);
    EXPECT_EQ(freed.load(), 0u);
  }
  domain.advance();
  domain.advance();
  domain.advance();
  EXPECT_EQ(domain.limbo_size(), 0u);
  EXPECT_EQ(freed.load(), 1u);
}

TEST(Epoch, NestedGuardsUnpinOnlyAtOutermostExit) {
  epoch::Domain domain;
  std::atomic<std::uint64_t> freed{0};
  {
    epoch::ReaderGuard outer(domain);
    {
      epoch::ReaderGuard inner(domain);
    }
    // The inner guard's destruction must NOT have unpinned the thread.
    domain.retire(&freed, &FreeCounter::free_u64);
    for (int i = 0; i < 8; ++i) domain.advance();
    EXPECT_EQ(freed.load(), 0u);
  }
  domain.advance();
  domain.advance();
  domain.advance();
  EXPECT_EQ(freed.load(), 1u);
}

TEST(Epoch, DomainDestructorDrainsLimbo) {
  std::atomic<std::uint64_t> freed{0};
  {
    epoch::Domain domain;
    domain.retire(&freed, &FreeCounter::free_u64);
    // Never advanced: the destructor must still run the deleter.
  }
  EXPECT_EQ(freed.load(), 1u);
}

/// Writer republishes immutable snapshots through an atomic pointer while
/// readers pin and dereference — the exact protocol the cache's lock-free
/// probe runs. TSan (check_fleet) must see no race, and no reader may
/// observe a torn or reclaimed snapshot.
TEST(Epoch, ConcurrentPublishAndReadKeepsSnapshotsValid) {
  struct Snapshot {
    std::uint64_t a = 0;
    std::uint64_t b = 0;  ///< invariant: b == 2 * a + 1
  };
  epoch::Domain domain;
  std::atomic<Snapshot*> published{new Snapshot{0, 1}};
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> violations{0};

  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        epoch::ReaderGuard guard(domain);
        const Snapshot* snap = published.load(std::memory_order_acquire);
        if (snap->b != 2 * snap->a + 1) violations.fetch_add(1);
      }
    });
  }

  for (std::uint64_t i = 1; i <= 400; ++i) {
    Snapshot* next = new Snapshot{i, 2 * i + 1};
    Snapshot* old = published.exchange(next, std::memory_order_acq_rel);
    domain.retire(old, [](void* p) { delete static_cast<Snapshot*>(p); });
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& th : readers) th.join();

  EXPECT_EQ(violations.load(), 0u);
  delete published.load();
  // With all readers gone, the domain can drain whatever is left.
  domain.advance();
  domain.advance();
  domain.advance();
  EXPECT_EQ(domain.limbo_size(), 0u);
}

// ---------------------------------------------------- cache lock-free path --

sched::ScenarioFingerprint fp_of(std::uint64_t hi, std::uint64_t lo) {
  sched::ScenarioFingerprint fp;
  fp.hi = hi;
  fp.lo = lo;
  return fp;
}

sched::Schedule tiny_schedule(int pu) {
  sched::Schedule s;
  s.assignment = {{pu, pu}, {1 - pu}};
  return s;
}

TEST(ScheduleCacheLockfree, ProbeMatchesLockedProbe) {
  serve::ScheduleCacheOptions locked_opts;
  locked_opts.lockfree_reads = false;
  serve::ScheduleCacheOptions lockfree_opts;
  lockfree_opts.lockfree_reads = true;
  serve::ScheduleCache locked(locked_opts);
  serve::ScheduleCache lockfree(lockfree_opts);

  for (std::uint64_t i = 0; i < 64; ++i) {
    const auto fp = fp_of(i * 0x9E3779B97F4A7C15ull, i);
    const double objective = 10.0 + static_cast<double>(i % 7);
    EXPECT_TRUE(locked.publish(fp, i % 5, tiny_schedule(static_cast<int>(i % 2)), objective,
                               i % 3 == 0));
    EXPECT_TRUE(lockfree.publish(fp, i % 5, tiny_schedule(static_cast<int>(i % 2)), objective,
                                 i % 3 == 0));
  }
  for (std::uint64_t i = 0; i < 80; ++i) {  // 64 present + 16 misses
    const auto fp = fp_of(i * 0x9E3779B97F4A7C15ull, i);
    const auto a = locked.lookup(fp);
    const auto b = lockfree.lookup(fp);
    ASSERT_EQ(a.has_value(), b.has_value()) << "fingerprint " << i;
    if (a.has_value()) {
      EXPECT_EQ(a->schedule, b->schedule);
      EXPECT_EQ(a->objective, b->objective);
      EXPECT_EQ(a->shape_key, b->shape_key);
      EXPECT_EQ(a->proven_optimal, b->proven_optimal);
      EXPECT_EQ(a->version, b->version);
    }
    EXPECT_EQ(locked.peek(fp).has_value(), lockfree.peek(fp).has_value());
  }
  EXPECT_EQ(locked.stats().hits, lockfree.stats().hits);
  EXPECT_EQ(locked.stats().misses, lockfree.stats().misses);
  EXPECT_EQ(locked.stats().peeks, lockfree.stats().peeks);
  EXPECT_EQ(locked.stats().peek_hits, lockfree.stats().peek_hits);
}

/// Lock-free readers race a writer that keeps improving a small set of
/// entries. Every observed objective must be a value some publish
/// installed, and per-fingerprint objectives can only improve (decrease)
/// over a single reader's successive probes.
TEST(ScheduleCacheLockfree, ConcurrentReadersSeeOnlyPublishedImprovements) {
  serve::ScheduleCacheOptions opts;
  opts.lockfree_reads = true;
  serve::ScheduleCache cache(opts);
  constexpr int kFps = 8;
  constexpr double kRounds = 100.0;

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> violations{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      double best[kFps];
      for (double& b : best) b = std::numeric_limits<double>::infinity();
      while (!stop.load(std::memory_order_acquire)) {
        for (int f = 0; f < kFps; ++f) {
          const auto hit = cache.peek(fp_of(static_cast<std::uint64_t>(f) + 1, 7));
          if (!hit.has_value()) continue;
          if (hit->objective > best[f]) violations.fetch_add(1);
          best[f] = hit->objective;
        }
      }
    });
  }
  for (double round = kRounds; round >= 1.0; round -= 1.0) {
    for (int f = 0; f < kFps; ++f) {
      // Objective strictly decreases round over round: every publish is
      // an improvement and must pass the filter.
      EXPECT_TRUE(cache.publish(fp_of(static_cast<std::uint64_t>(f) + 1, 7), 3,
                                tiny_schedule(f % 2), round + f, false));
    }
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& th : readers) th.join();
  EXPECT_EQ(violations.load(), 0u);
  EXPECT_EQ(cache.size(), static_cast<std::size_t>(kFps));
}

TEST(ScheduleCache, ExportEntriesIsDeterministicAndComplete) {
  serve::ScheduleCache cache;
  for (std::uint64_t i = 0; i < 20; ++i) {
    cache.publish(fp_of(i + 1, i * 3), i % 4, tiny_schedule(static_cast<int>(i % 2)),
                  5.0 + static_cast<double>(i), false);
  }
  const auto first = cache.export_entries();
  const auto second = cache.export_entries();
  ASSERT_EQ(first.size(), cache.size());
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].fingerprint, second[i].fingerprint);
    EXPECT_EQ(first[i].entry.objective, second[i].entry.objective);
  }
  // Replaying an export through publish() is a no-op (idempotent restore).
  for (const serve::ExportedEntry& e : first) {
    EXPECT_FALSE(cache.publish(e.fingerprint, e.entry.shape_key, e.entry.schedule,
                               e.entry.objective, e.entry.proven_optimal));
  }
  EXPECT_EQ(cache.size(), first.size());
}

// ------------------------------------------------------------- wire format --

ReplicationEntry sample_entry(std::uint64_t seed) {
  ReplicationEntry e;
  e.fingerprint = fp_of(seed * 0xDEADBEEFull + 1, ~seed);
  e.shape_key = seed ^ 0xABCDEF0123456789ull;
  e.schedule = tiny_schedule(static_cast<int>(seed % 2));
  e.objective = 12.5 + static_cast<double>(seed) * 0.1;
  e.proven_optimal = seed % 2 == 0;
  e.entry_version = seed + 1;
  e.origin = static_cast<int>(seed % 4);
  return e;
}

TEST(ReplicationWire, RoundTripIsByteIdentical) {
  for (std::uint64_t seed = 0; seed < 16; ++seed) {
    const ReplicationEntry e = sample_entry(seed);
    const std::string once = entry_to_json(e).dump();
    const ReplicationEntry back = entry_from_json(json::parse(once));
    const std::string twice = entry_to_json(back).dump();
    EXPECT_EQ(once, twice) << "seed " << seed;
    EXPECT_EQ(back.fingerprint, e.fingerprint);
    EXPECT_EQ(back.shape_key, e.shape_key);
    EXPECT_EQ(back.schedule, e.schedule);
    EXPECT_EQ(back.objective, e.objective);
    EXPECT_EQ(back.proven_optimal, e.proven_optimal);
    EXPECT_EQ(back.entry_version, e.entry_version);
  }
}

/// Extreme u64 values are exactly where JSON's double-typed numbers lose
/// bits; the hex encoding must carry them unharmed.
TEST(ReplicationWire, FullWidthIntegersSurvive) {
  ReplicationEntry e = sample_entry(0);
  e.fingerprint = fp_of(0xFFFFFFFFFFFFFFFFull, 0x8000000000000001ull);
  e.shape_key = 0xFFFFFFFFFFFFFFFEull;
  e.entry_version = (1ull << 62) + 3;
  const ReplicationEntry back = entry_from_json(json::parse(entry_to_json(e).dump()));
  EXPECT_EQ(back.fingerprint.hi, 0xFFFFFFFFFFFFFFFFull);
  EXPECT_EQ(back.fingerprint.lo, 0x8000000000000001ull);
  EXPECT_EQ(back.shape_key, 0xFFFFFFFFFFFFFFFEull);
  EXPECT_EQ(back.entry_version, (1ull << 62) + 3);
}

TEST(ReplicationWire, RejectsMalformedPayloads) {
  const json::Value good = entry_to_json(sample_entry(1));

  // A corrupted message must throw, never install garbage.
  EXPECT_THROW((void)entry_from_json(json::parse("42")), PreconditionError);
  EXPECT_THROW((void)entry_from_json(json::parse("[]")), PreconditionError);

  const auto mutated = [&](const char* key, const char* replacement) {
    json::Object o = good.as_object();
    if (replacement == nullptr) {
      o.erase(key);
    } else {
      o[key] = json::parse(replacement);
    }
    return json::Value(std::move(o));
  };
  for (const char* key : {"entry_version", "fingerprint", "objective", "origin",
                          "proven_optimal", "schedule", "shape_key", "wire_version"}) {
    EXPECT_THROW((void)entry_from_json(mutated(key, nullptr)), PreconditionError)
        << "missing " << key;
  }
  EXPECT_THROW((void)entry_from_json(mutated("wire_version", "2")), PreconditionError);
  EXPECT_THROW((void)entry_from_json(mutated("wire_version", "\"1\"")), PreconditionError);
  EXPECT_THROW((void)entry_from_json(mutated("fingerprint", "\"abc\"")), PreconditionError);
  EXPECT_THROW((void)entry_from_json(
                   mutated("fingerprint", "\"zzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzz\"")),
               PreconditionError);
  EXPECT_THROW((void)entry_from_json(mutated("fingerprint", "17")), PreconditionError);
  EXPECT_THROW((void)entry_from_json(mutated("shape_key", "\"12345\"")), PreconditionError);
  EXPECT_THROW((void)entry_from_json(mutated("entry_version", "7")), PreconditionError);
  EXPECT_THROW((void)entry_from_json(mutated("objective", "\"fast\"")), PreconditionError);
  EXPECT_THROW((void)entry_from_json(mutated("objective", "1e999")), PreconditionError);
  EXPECT_THROW((void)entry_from_json(mutated("proven_optimal", "1")), PreconditionError);
  EXPECT_THROW((void)entry_from_json(mutated("schedule", "{\"version\":1,\"assignment\":[]}")),
               PreconditionError);
  EXPECT_THROW((void)entry_from_json(mutated("schedule", "\"not a schedule\"")),
               PreconditionError);
}

// --------------------------------------------------------- replication bus --

TEST(ReplicationBus, PerPeerCursorsAreIndependent) {
  ReplicationBus bus(3);
  for (std::uint64_t i = 0; i < 4; ++i) bus.append(sample_entry(i));

  EXPECT_EQ(bus.fetch(0).size(), 4u);
  EXPECT_TRUE(bus.fetch(0).empty());  // cursor advanced
  EXPECT_EQ(bus.fetch(1).size(), 4u);

  bus.append(sample_entry(9));
  EXPECT_EQ(bus.fetch(0).size(), 1u);
  EXPECT_EQ(bus.fetch(2).size(), 5u);  // never fetched before: sees all

  const ReplicationBusStats st = bus.stats();
  EXPECT_EQ(st.appended, 5u);
  EXPECT_EQ(st.fetched, 4u + 4u + 1u + 5u);
}

TEST(ReplicationBus, ResetCursorRedeliversHistory) {
  ReplicationBus bus(2);
  for (std::uint64_t i = 0; i < 3; ++i) bus.append(sample_entry(i));
  ASSERT_EQ(bus.fetch(0).size(), 3u);
  bus.reset_cursor(0);
  const auto again = bus.fetch(0);
  ASSERT_EQ(again.size(), 3u);
  EXPECT_EQ(again[0].fingerprint, sample_entry(0).fingerprint);
}

TEST(ReplicationBus, CompactionFoldsConsumedPrefixIntoDigest) {
  ReplicationBusOptions opts;
  opts.compact_threshold = 4;
  ReplicationBus bus(2, opts);

  // Two generations of the same two fingerprints; everyone consumes them,
  // so the next append can compact the prefix away.
  for (std::uint64_t gen = 0; gen < 2; ++gen) {
    for (std::uint64_t f = 0; f < 2; ++f) {
      ReplicationEntry e = sample_entry(f);
      e.objective = 100.0 - static_cast<double>(gen);  // improves per generation
      e.entry_version = gen + 1;
      bus.append(e);
    }
  }
  (void)bus.fetch(0);
  (void)bus.fetch(1);
  bus.append(sample_entry(7));  // pushes the log past threshold -> compacts

  ReplicationBusStats st = bus.stats();
  EXPECT_EQ(st.compactions, 1u);
  EXPECT_EQ(st.digest_entries, 2u);  // latest entry per fingerprint
  EXPECT_EQ(st.log_entries, 1u);

  // A reset peer replays the digest (latest generation only) + live log.
  bus.reset_cursor(0);
  const auto replay = bus.fetch(0);
  ASSERT_EQ(replay.size(), 3u);
  EXPECT_EQ(replay[0].entry_version, 2u);  // digest kept the newest version
  EXPECT_EQ(replay[1].entry_version, 2u);
  EXPECT_EQ(replay[2].fingerprint, sample_entry(7).fingerprint);

  // The un-reset peer only sees what it has not consumed.
  EXPECT_EQ(bus.fetch(1).size(), 1u);
}

TEST(ReplicationBus, ConcurrentAppendAndFetchDeliverEverything) {
  ReplicationBusOptions opts;
  opts.compact_threshold = 64;  // force compactions under load
  ReplicationBus bus(3, opts);
  constexpr std::uint64_t kPerAppender = 200;
  constexpr int kAppenders = 2;

  std::vector<std::thread> threads;
  for (int a = 0; a < kAppenders; ++a) {
    threads.emplace_back([&bus, a] {
      for (std::uint64_t i = 0; i < kPerAppender; ++i) {
        bus.append(sample_entry(static_cast<std::uint64_t>(a) * kPerAppender + i));
      }
    });
  }
  std::atomic<std::uint64_t> delivered[3] = {};
  for (int p = 0; p < 3; ++p) {
    threads.emplace_back([&bus, &delivered, p] {
      // Digest compaction may dedupe by fingerprint, but every appended
      // fingerprint here is distinct, so each peer must see all of them.
      std::set<std::pair<std::uint64_t, std::uint64_t>> seen;
      while (seen.size() < kAppenders * kPerAppender) {
        for (const ReplicationEntry& e : bus.fetch(static_cast<std::size_t>(p))) {
          seen.insert({e.fingerprint.hi, e.fingerprint.lo});
        }
      }
      delivered[p].store(seen.size());
    });
  }
  for (std::thread& th : threads) th.join();
  for (int p = 0; p < 3; ++p) EXPECT_EQ(delivered[p].load(), kAppenders * kPerAppender);
  EXPECT_EQ(bus.stats().appended, kAppenders * kPerAppender);
}

// ------------------------------------------------------------------ router --

TEST(FleetRouter, DeterministicInRangeAndSpreading) {
  FleetRouter router(4);
  std::set<std::size_t> used;
  for (std::uint64_t i = 0; i < 256; ++i) {
    const auto fp = fp_of(i, i * 17);
    const std::size_t b = router.route(fp);
    EXPECT_LT(b, 4u);
    EXPECT_EQ(router.route(fp), b);  // stable
    used.insert(b);
  }
  EXPECT_EQ(used.size(), 4u);  // 256 fingerprints cover every broker

  // A single broker maps everything to shard 0.
  FleetRouter solo(1);
  EXPECT_EQ(solo.route(fp_of(123, 456)), 0u);
}

// ---------------------------------------------------------- fleet fixture --

class FleetFixture : public testing::Test {
 protected:
  FleetFixture()
      : plat_(soc::Platform::xavier()),
        hax_(plat_,
             [] {
               core::HaxConnOptions o;
               o.grouping.max_groups = 5;
               return o;
             }()),
        inst_a_(hax_.make_problem({{nn::zoo::alexnet()}, {nn::zoo::resnet18()}})),
        solo_(hax_.make_problem({{nn::zoo::alexnet()}})),
        solo_iter_(hax_.make_problem({{nn::zoo::alexnet(), -1, 2}})) {}

  /// Virtual-time inline brokers: the deterministic configuration the
  /// fleet requires (mirrors the serve-layer replay tests).
  [[nodiscard]] static serve::ServiceOptions broker_options() {
    serve::ServiceOptions o;
    o.workers = 0;
    o.virtual_time = true;
    o.default_budget_ms = 0.0;
    o.default_node_limit = 800;
    o.virtual_nodes_per_ms = 200.0;
    return o;
  }

  [[nodiscard]] static FleetOptions fleet_options(std::size_t brokers, bool replicate = true) {
    FleetOptions o;
    o.brokers = brokers;
    o.service = broker_options();
    o.replicate = replicate;
    return o;
  }

  [[nodiscard]] serve::ScenarioRequest request_for(const sched::Problem& problem) const {
    serve::ScenarioRequest r;
    r.problem = &problem;
    return r;
  }

  soc::Platform plat_;
  core::HaxConn hax_;
  sched::ProblemInstance inst_a_;
  sched::ProblemInstance solo_;
  sched::ProblemInstance solo_iter_;
};

TEST_F(FleetFixture, RoutesRepeatScenariosToOneOwnerAndHits) {
  SchedulerFleet fleet(fleet_options(4));
  const auto canon = sched::canonicalize(inst_a_.problem());
  const std::size_t owner = fleet.router().route(canon.fingerprint);

  const serve::ServeReply first = fleet.submit_at(request_for(inst_a_.problem()), 0.0).reply();
  ASSERT_EQ(first.outcome, serve::ServeOutcome::kSolved);
  const serve::ServeReply second = fleet.submit_at(request_for(inst_a_.problem()), 1.0).reply();
  EXPECT_EQ(second.outcome, serve::ServeOutcome::kHit);
  EXPECT_EQ(second.objective, first.objective);

  const FleetStats st = fleet.stats();
  EXPECT_EQ(st.submitted, 2u);
  EXPECT_EQ(st.solved, 1u);
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.brokers[owner].total.solved, 1u);
  EXPECT_EQ(st.latency_samples, 2u);
  EXPECT_GT(st.elapsed_ms, 0.0);
}

TEST_F(FleetFixture, PrecomputedCanonSkipsRehashing) {
  SchedulerFleet fleet(fleet_options(2));
  const auto canon = sched::canonicalize(inst_a_.problem());
  serve::ScenarioRequest r = request_for(inst_a_.problem());
  r.canon = &canon;
  EXPECT_EQ(fleet.submit_at(r, 0.0).reply().outcome, serve::ServeOutcome::kSolved);
  EXPECT_EQ(fleet.submit_at(r, 1.0).reply().outcome, serve::ServeOutcome::kHit);
  EXPECT_EQ(fleet.submit_at(r, 1.0).reply().fingerprint, canon.fingerprint);
}

TEST_F(FleetFixture, ReplicationMakesSolvesVisibleFleetWide) {
  SchedulerFleet fleet(fleet_options(2));
  const auto canon = sched::canonicalize(solo_.problem());
  const std::size_t owner = fleet.router().route(canon.fingerprint);
  const std::size_t other = 1 - owner;

  ASSERT_EQ(fleet.submit_at(request_for(solo_.problem()), 0.0).reply().outcome,
            serve::ServeOutcome::kSolved);
  EXPECT_FALSE(fleet.broker(other).cache().peek(canon.fingerprint).has_value());

  const std::size_t applied = fleet.pump_replication();
  EXPECT_GE(applied, 1u);
  // The gossiped entry is now in the non-owner's cache (warm-start and
  // failover capital), even though the router never sends it requests.
  EXPECT_TRUE(fleet.broker(other).cache().peek(canon.fingerprint).has_value());
  EXPECT_GT(fleet.stats().bus.appended, 0u);
}

TEST_F(FleetFixture, ReplicationOffKeepsBrokersIndependent) {
  SchedulerFleet fleet(fleet_options(2, /*replicate=*/false));
  const auto canon = sched::canonicalize(solo_.problem());
  const std::size_t owner = fleet.router().route(canon.fingerprint);

  ASSERT_EQ(fleet.submit_at(request_for(solo_.problem()), 0.0).reply().outcome,
            serve::ServeOutcome::kSolved);
  EXPECT_EQ(fleet.pump_replication(), 0u);
  EXPECT_FALSE(fleet.broker(1 - owner).cache().peek(canon.fingerprint).has_value());
  EXPECT_EQ(fleet.stats().bus.appended, 0u);
}

TEST_F(FleetFixture, SnapshotRestoreRebuildsWarmCache) {
  SchedulerFleet fleet(fleet_options(2));
  const auto canon_a = sched::canonicalize(inst_a_.problem());
  const auto canon_s = sched::canonicalize(solo_.problem());
  ASSERT_EQ(fleet.submit_at(request_for(inst_a_.problem()), 0.0).reply().outcome,
            serve::ServeOutcome::kSolved);
  ASSERT_EQ(fleet.submit_at(request_for(solo_.problem()), 1.0).reply().outcome,
            serve::ServeOutcome::kSolved);

  const std::size_t owner = fleet.router().route(canon_a.fingerprint);
  const json::Value snapshot = fleet.snapshot_broker(owner);
  ASSERT_TRUE(snapshot.is_object());
  EXPECT_EQ(snapshot.at("snapshot_version").as_int(), 1);

  fleet.restart_broker(owner, &snapshot);
  EXPECT_EQ(fleet.stats().restarts, 1u);
  // The restored broker answers its old scenario from cache: no re-solve.
  const serve::ServeReply after = fleet.submit_at(request_for(inst_a_.problem()), 2.0).reply();
  EXPECT_EQ(after.outcome, serve::ServeOutcome::kHit);
  (void)canon_s;
}

TEST_F(FleetFixture, RestartWithoutSnapshotCatchesUpFromBus) {
  SchedulerFleet fleet(fleet_options(2));
  const auto canon = sched::canonicalize(solo_iter_.problem());
  const std::size_t owner = fleet.router().route(canon.fingerprint);
  ASSERT_EQ(fleet.submit_at(request_for(solo_iter_.problem()), 0.0).reply().outcome,
            serve::ServeOutcome::kSolved);

  // Cold restart, no snapshot: the bus backfills the broker's own
  // pre-crash publish (fetch does not filter by origin).
  fleet.restart_broker(owner, nullptr);
  EXPECT_FALSE(fleet.broker(owner).cache().peek(canon.fingerprint).has_value());
  (void)fleet.pump_replication();
  EXPECT_TRUE(fleet.broker(owner).cache().peek(canon.fingerprint).has_value());
  EXPECT_EQ(fleet.submit_at(request_for(solo_iter_.problem()), 1.0).reply().outcome,
            serve::ServeOutcome::kHit);
}

TEST_F(FleetFixture, RestartWithoutReplicationForcesResolve) {
  SchedulerFleet fleet(fleet_options(2, /*replicate=*/false));
  const auto canon = sched::canonicalize(solo_.problem());
  const std::size_t owner = fleet.router().route(canon.fingerprint);
  ASSERT_EQ(fleet.submit_at(request_for(solo_.problem()), 0.0).reply().outcome,
            serve::ServeOutcome::kSolved);
  fleet.restart_broker(owner, nullptr);
  (void)fleet.pump_replication();
  EXPECT_EQ(fleet.submit_at(request_for(solo_.problem()), 1.0).reply().outcome,
            serve::ServeOutcome::kSolved);  // cache really was lost
}

// ------------------------------------------------- device-fleet simulation --

TEST_F(FleetFixture, DeviceFleetSimIsDeterministic) {
  const std::vector<const sched::Problem*> pool{&inst_a_.problem(), &solo_.problem()};
  DeviceFleetOptions opts;
  opts.devices = 50;
  opts.drift_buckets = 4;
  opts.seed = 42;

  DeviceFleetSim sim_a(pool, opts);
  DeviceFleetSim sim_b(pool, opts);
  EXPECT_EQ(sim_a.variant_count(), pool.size() * opts.drift_buckets);
  double last_arrival = 0.0;
  for (int i = 0; i < 500; ++i) {
    const DeviceRequest ra = sim_a.next();
    const DeviceRequest rb = sim_b.next();
    EXPECT_EQ(ra.device, rb.device);
    EXPECT_EQ(ra.variant, rb.variant);
    EXPECT_EQ(ra.arrival_ms, rb.arrival_ms);
    EXPECT_GE(ra.arrival_ms, last_arrival);  // open-loop: non-decreasing
    last_arrival = ra.arrival_ms;
    // A device's drift bucket is sticky: variant mod buckets matches it.
    EXPECT_EQ(ra.variant % opts.drift_buckets, sim_a.device_bucket(ra.device));
  }
}

TEST_F(FleetFixture, CalibrationDriftChangesFingerprintNotShape) {
  const std::vector<const sched::Problem*> pool{&solo_.problem()};
  DeviceFleetOptions opts;
  opts.devices = 8;
  opts.drift_buckets = 3;
  DeviceFleetSim sim(pool, opts);

  const auto& c0 = sim.canon(0);
  const auto& c1 = sim.canon(1);
  const auto& c2 = sim.canon(2);
  // Drift buckets are distinct scenarios (distinct cache entries)...
  EXPECT_NE(c0.fingerprint, c1.fingerprint);
  EXPECT_NE(c1.fingerprint, c2.fingerprint);
  // ...but share a warm-start shape: bucket 1's miss seeds from bucket 0.
  EXPECT_EQ(c0.shape_key, c1.shape_key);
  EXPECT_EQ(c1.shape_key, c2.shape_key);
  // Canonicalization was precomputed correctly per variant.
  EXPECT_EQ(sim.canon(1).fingerprint, sched::canonicalize(sim.problem(1)).fingerprint);
}

/// End-to-end restart drill at test scale: a device-fleet trace with a
/// broker killed mid-trace and warm-restarted from an early snapshot. Two
/// properties: (1) determinism — the same trace with the same restart
/// point replays to bit-identical fleet stats; (2) recovery — with
/// replication backfilling the snapshot gap, the post-restart hit rate
/// stays within 5% of an undisturbed run (the bench asserts the same at
/// 1M-request scale).
TEST_F(FleetFixture, RestartMidTraceRecoversHitRateDeterministically) {
  const std::vector<const sched::Problem*> pool{&inst_a_.problem(), &solo_.problem(),
                                                &solo_iter_.problem()};
  DeviceFleetOptions sim_opts;
  sim_opts.devices = 64;
  sim_opts.drift_buckets = 4;
  sim_opts.seed = 7;
  constexpr int kRequests = 1200;
  constexpr int kSnapshotAt = 200;
  constexpr int kRestartAt = 600;
  constexpr int kPumpEvery = 50;

  struct RunResult {
    std::string stats_json;
    std::uint64_t window_hits = 0;
    std::uint64_t window_served = 0;
    std::uint64_t solved = 0;
  };
  const auto run_trace = [&](bool restart) {
    SchedulerFleet fleet(fleet_options(2));
    DeviceFleetSim sim(pool, sim_opts);
    json::Value snapshot;
    const auto canon_zero = sim.canon(0);
    const std::size_t victim = fleet.router().route(canon_zero.fingerprint);

    RunResult out;
    for (int i = 0; i < kRequests; ++i) {
      if (i == kSnapshotAt) snapshot = fleet.snapshot_broker(victim);
      if (restart && i == kRestartAt) fleet.restart_broker(victim, &snapshot);
      const DeviceRequest req = sim.next();
      serve::ScenarioRequest r;
      r.problem = &sim.problem(req.variant);
      r.canon = &sim.canon(req.variant);
      const serve::ServeReply reply = fleet.submit_at(r, req.arrival_ms).reply();
      EXPECT_TRUE(reply.outcome == serve::ServeOutcome::kHit ||
                  reply.outcome == serve::ServeOutcome::kSolved);
      if (i >= kRestartAt) {
        ++out.window_served;
        if (reply.outcome == serve::ServeOutcome::kHit) ++out.window_hits;
      }
      if ((i + 1) % kPumpEvery == 0) (void)fleet.pump_replication();
    }
    const FleetStats st = fleet.stats();
    out.solved = st.solved;
    out.stats_json = st.to_json().dump();
    return out;
  };

  const RunResult baseline = run_trace(/*restart=*/false);
  const RunResult restarted = run_trace(/*restart=*/true);
  const RunResult replayed = run_trace(/*restart=*/true);

  // (1) Bit-identical replay, restarts included.
  EXPECT_EQ(restarted.stats_json, replayed.stats_json);

  // (2) Post-restart hit rate within 5% of the undisturbed run.
  ASSERT_GT(baseline.window_served, 0u);
  const double base_rate =
      static_cast<double>(baseline.window_hits) / static_cast<double>(baseline.window_served);
  const double restart_rate =
      static_cast<double>(restarted.window_hits) / static_cast<double>(restarted.window_served);
  EXPECT_GE(restart_rate, base_rate - 0.05);
  // The snapshot + bus catch-up bounds the damage: at worst the victim
  // re-solves what arrived between the last pump and the crash.
  EXPECT_LE(restarted.solved, baseline.solved + sim_opts.drift_buckets * pool.size());
}

// ------------------------------------------------------ publish_canonical --

TEST_F(FleetFixture, PublishCanonicalFiltersAndNotifies) {
  serve::ServiceOptions opts = broker_options();
  std::vector<double> notified;
  opts.on_publish = [&notified](const sched::ScenarioFingerprint&, std::uint64_t,
                                const sched::Schedule&, double objective, bool) {
    notified.push_back(objective);
  };
  serve::SchedulerService svc(opts);

  const auto fp = fp_of(11, 22);
  const sched::Schedule s = tiny_schedule(0);
  // notify=false (the replication-apply path) never fires the hook.
  EXPECT_TRUE(svc.publish_canonical(fp, 5, s, 10.0, false, /*notify=*/false));
  EXPECT_TRUE(notified.empty());
  // An improvement with notify=true fires it exactly once.
  EXPECT_TRUE(svc.publish_canonical(fp, 5, s, 8.0, false, /*notify=*/true));
  ASSERT_EQ(notified.size(), 1u);
  EXPECT_EQ(notified[0], 8.0);
  // A non-improvement is rejected and never notifies.
  EXPECT_FALSE(svc.publish_canonical(fp, 5, s, 9.0, false, /*notify=*/true));
  EXPECT_EQ(notified.size(), 1u);
  EXPECT_TRUE(svc.cache().peek(fp).has_value());
}

// -------------------------------------------------------------- provenance --

/// The committed bench artifact must say which build produced it. Skipped
/// (not failed) when the artifact has not been generated in this checkout.
TEST(FleetProvenance, BenchFleetJsonCarriesGitSha) {
  const std::string path = std::string(HAX_REPO_ROOT) + "/results/BENCH_fleet.json";
  std::ifstream in(path);
  if (!in.good()) GTEST_SKIP() << "results/BENCH_fleet.json not generated yet";
  std::stringstream buffer;
  buffer << in.rdbuf();
  const json::Value doc = json::parse(buffer.str());
  ASSERT_TRUE(doc.is_object());
  ASSERT_TRUE(doc.contains("provenance")) << "bench_fleet must stamp provenance";
  const json::Value& prov = doc.at("provenance");
  ASSERT_TRUE(prov.contains("git_sha"));
  EXPECT_FALSE(prov.at("git_sha").as_string().empty());
  // The fleet results themselves must be present alongside the stamp.
  EXPECT_TRUE(doc.contains("shard_scaling"));
}

}  // namespace
