/// Unit tests for src/sim: the discrete-event concurrent execution engine.

#include <gtest/gtest.h>

#include <map>

#include "common/error.h"
#include "grouping/grouping.h"
#include "nn/zoo.h"
#include "perf/cost_model.h"
#include "sim/engine.h"
#include "soc/platform.h"

namespace {

using namespace hax;
using namespace hax::sim;

std::vector<soc::PuId> pin(const grouping::GroupedNetwork& gn, const soc::Platform& plat,
                           soc::PuId pu) {
  std::vector<soc::PuId> asg;
  for (int g = 0; g < gn.group_count(); ++g) {
    asg.push_back(gn.supported(g, plat.pu(pu).params().kind) ? pu : plat.gpu());
  }
  return asg;
}

class SimTest : public testing::Test {
 protected:
  SimTest()
      : plat_(soc::Platform::xavier()),
        googlenet_(grouping::build_groups(nn::zoo::googlenet(), {.max_groups = 8})),
        resnet18_(grouping::build_groups(nn::zoo::resnet18(), {.max_groups = 8})) {}

  soc::Platform plat_;
  grouping::GroupedNetwork googlenet_;
  grouping::GroupedNetwork resnet18_;
};

TEST_F(SimTest, SingleTaskMatchesStandalone) {
  const Engine eng(plat_);
  DnnTask t{&googlenet_, pin(googlenet_, plat_, plat_.gpu()), -1, 1};
  const SimResult r = eng.run({t});
  EXPECT_NEAR(r.makespan_ms, r.tasks[0].standalone_ms, 1e-6);
  EXPECT_NEAR(r.tasks[0].avg_slowdown, 1.0, 1e-9);
  ASSERT_EQ(r.tasks[0].iterations.size(), 1u);
  EXPECT_DOUBLE_EQ(r.tasks[0].iterations[0].start, 0.0);
}

TEST_F(SimTest, StandaloneMatchesCostModel) {
  const Engine eng(plat_);
  DnnTask t{&googlenet_, pin(googlenet_, plat_, plat_.gpu()), -1, 1};
  const SimResult r = eng.run({t});
  const perf::CostModel cm(plat_);
  EXPECT_NEAR(r.makespan_ms, cm.network_time(googlenet_.network(), plat_.gpu()), 1e-6);
}

TEST_F(SimTest, DisjointPusOverlap) {
  const Engine eng(plat_);
  DnnTask a{&googlenet_, pin(googlenet_, plat_, plat_.gpu()), -1, 1};
  DnnTask b{&resnet18_, pin(resnet18_, plat_, plat_.dsa()), -1, 1};
  const SimResult r = eng.run({a, b});
  const TimeMs sum = r.tasks[0].standalone_ms + r.tasks[1].standalone_ms;
  const TimeMs longest = std::max(r.tasks[0].standalone_ms, r.tasks[1].standalone_ms);
  EXPECT_LT(r.makespan_ms, sum);        // truly concurrent
  EXPECT_GE(r.makespan_ms, longest - 1e-9);  // cannot beat the longer task
}

TEST_F(SimTest, ContentionSlowsCoRunningTasks) {
  const Engine eng(plat_);
  DnnTask a{&googlenet_, pin(googlenet_, plat_, plat_.gpu()), -1, 3};
  DnnTask b{&resnet18_, pin(resnet18_, plat_, plat_.dsa()), -1, 3};
  const SimResult r = eng.run({a, b});
  // At least one task must experience measurable memory-contention
  // slowdown (the paper's core phenomenon).
  EXPECT_GT(std::max(r.tasks[0].avg_slowdown, r.tasks[1].avg_slowdown), 1.02);
}

TEST_F(SimTest, SamePuSerializes) {
  const Engine eng(plat_);
  DnnTask a{&googlenet_, pin(googlenet_, plat_, plat_.gpu()), -1, 1};
  DnnTask b{&resnet18_, pin(resnet18_, plat_, plat_.gpu()), -1, 1};
  const SimResult r = eng.run({a, b});
  // Same-PU workloads cannot overlap: makespan ~= sum of standalone.
  EXPECT_NEAR(r.makespan_ms, r.tasks[0].standalone_ms + r.tasks[1].standalone_ms,
              0.02 * r.makespan_ms);
}

TEST_F(SimTest, DependencyOrdersIterations) {
  const Engine eng(plat_);
  DnnTask a{&googlenet_, pin(googlenet_, plat_, plat_.gpu()), -1, 3};
  DnnTask b{&resnet18_, pin(resnet18_, plat_, plat_.dsa()), 0, 3};
  const SimResult r = eng.run({a, b});
  for (int k = 0; k < 3; ++k) {
    EXPECT_GE(r.tasks[1].iterations[static_cast<std::size_t>(k)].start,
              r.tasks[0].iterations[static_cast<std::size_t>(k)].end - 1e-9)
        << "frame " << k;
  }
}

TEST_F(SimTest, PipelineOverlapsAcrossFrames) {
  // While the consumer processes frame k, the producer should already be
  // working on frame k+1 (software pipelining).
  const Engine eng(plat_);
  DnnTask a{&googlenet_, pin(googlenet_, plat_, plat_.gpu()), -1, 4};
  DnnTask b{&resnet18_, pin(resnet18_, plat_, plat_.dsa()), 0, 4};
  const SimResult r = eng.run({a, b});
  EXPECT_LT(r.tasks[0].iterations[1].start, r.tasks[1].iterations[0].end);
}

TEST_F(SimTest, LoopBarrierSynchronizesRounds) {
  const Engine eng(plat_, {.loop_barrier = true});
  DnnTask a{&googlenet_, pin(googlenet_, plat_, plat_.gpu()), -1, 3};
  DnnTask b{&resnet18_, pin(resnet18_, plat_, plat_.dsa()), -1, 3};
  const SimResult r = eng.run({a, b});
  for (int k = 1; k < 3; ++k) {
    const TimeMs round_prev_end =
        std::max(r.tasks[0].iterations[static_cast<std::size_t>(k - 1)].end,
                 r.tasks[1].iterations[static_cast<std::size_t>(k - 1)].end);
    EXPECT_GE(r.tasks[0].iterations[static_cast<std::size_t>(k)].start, round_prev_end - 1e-9);
    EXPECT_GE(r.tasks[1].iterations[static_cast<std::size_t>(k)].start, round_prev_end - 1e-9);
  }
}

TEST_F(SimTest, IterationsProduceSpans) {
  const Engine eng(plat_);
  DnnTask t{&resnet18_, pin(resnet18_, plat_, plat_.gpu()), -1, 5};
  const SimResult r = eng.run({t});
  ASSERT_EQ(r.tasks[0].iterations.size(), 5u);
  for (std::size_t k = 1; k < 5; ++k) {
    EXPECT_GE(r.tasks[0].iterations[k].start, r.tasks[0].iterations[k - 1].end - 1e-9);
  }
  EXPECT_NEAR(r.makespan_ms, 5 * r.tasks[0].standalone_ms, 1e-6);
}

TEST_F(SimTest, TransitionsAppearInTrace) {
  const Engine eng(plat_);
  // Split ResNet18 across PUs mid-network.
  std::vector<soc::PuId> asg = pin(resnet18_, plat_, plat_.dsa());
  for (int g = resnet18_.group_count() / 2; g < resnet18_.group_count(); ++g) {
    asg[static_cast<std::size_t>(g)] = plat_.gpu();
  }
  DnnTask t{&resnet18_, asg, -1, 1};
  const SimResult r = eng.run({t});
  bool saw_out = false, saw_in = false;
  for (const TraceRecord& rec : r.trace.records()) {
    saw_out |= rec.kind == SegmentKind::TransitionOut;
    saw_in |= rec.kind == SegmentKind::TransitionIn;
  }
  EXPECT_TRUE(saw_out);
  EXPECT_TRUE(saw_in);
}

TEST_F(SimTest, SplitScheduleSlowerStandaloneThanPureDsa) {
  // Transitions add time: the same assignment with a round trip must have
  // a larger standalone time than staying on one PU... unless the other
  // PU is faster; use DSA->DSA vs DSA->GPU->DSA round trip.
  const Engine eng(plat_);
  std::vector<soc::PuId> round_trip = pin(resnet18_, plat_, plat_.dsa());
  const int mid = resnet18_.group_count() / 2;
  // A single group detour to GPU: pay two transitions.
  round_trip[static_cast<std::size_t>(mid)] = plat_.gpu();
  DnnTask pure{&resnet18_, pin(resnet18_, plat_, plat_.dsa()), -1, 1};
  DnnTask detour{&resnet18_, round_trip, -1, 1};
  const TimeMs pure_ms = eng.run({pure}).tasks[0].standalone_ms;
  const TimeMs detour_ms = eng.run({detour}).tasks[0].standalone_ms;
  const perf::CostModel cm(plat_);
  const TimeMs gpu_gain = cm.group_time(resnet18_, mid, plat_.dsa()) -
                          cm.group_time(resnet18_, mid, plat_.gpu());
  // Detour time = pure - gain + transition costs; transitions are the rest.
  EXPECT_GT(detour_ms, pure_ms - gpu_gain);
}

TEST_F(SimTest, TracePuExclusivity) {
  const Engine eng(plat_);
  DnnTask a{&googlenet_, pin(googlenet_, plat_, plat_.gpu()), -1, 2};
  DnnTask b{&resnet18_, pin(resnet18_, plat_, plat_.gpu()), -1, 2};
  const SimResult r = eng.run({a, b});
  // No two trace records on the same PU may overlap in time.
  std::map<int, std::vector<std::pair<TimeMs, TimeMs>>> by_pu;
  for (const TraceRecord& rec : r.trace.records()) {
    by_pu[rec.pu].push_back({rec.start, rec.end});
  }
  for (auto& [pu, spans] : by_pu) {
    std::sort(spans.begin(), spans.end());
    for (std::size_t i = 1; i < spans.size(); ++i) {
      EXPECT_GE(spans[i].first, spans[i - 1].second - 1e-9) << "pu " << pu;
    }
  }
}

TEST_F(SimTest, BackgroundTrafficSlowsExecution) {
  DnnTask t{&googlenet_, pin(googlenet_, plat_, plat_.gpu()), -1, 2};
  const TimeMs clean = Engine(plat_).run({t}).makespan_ms;
  const TimeMs loaded =
      Engine(plat_, {.background_traffic_gbps = 60.0}).run({t}).makespan_ms;
  EXPECT_GT(loaded, clean * 1.01);
}

TEST_F(SimTest, SmallBackgroundTrafficNegligible) {
  // Table 7's regime: a solver on the CPU adds ~1 GB/s and costs <2%.
  DnnTask t{&googlenet_, pin(googlenet_, plat_, plat_.gpu()), -1, 2};
  const TimeMs clean = Engine(plat_).run({t}).makespan_ms;
  const TimeMs loaded = Engine(plat_, {.background_traffic_gbps = 1.0}).run({t}).makespan_ms;
  EXPECT_LT(loaded, clean * 1.02);
}

TEST_F(SimTest, TotalFps) {
  const Engine eng(plat_);
  DnnTask a{&resnet18_, pin(resnet18_, plat_, plat_.gpu()), -1, 4};
  const SimResult r = eng.run({a});
  EXPECT_NEAR(r.total_fps(), 4.0 / r.makespan_ms * 1000.0, 1e-9);
}

TEST_F(SimTest, RejectsBadTasks) {
  const Engine eng(plat_);
  EXPECT_THROW((void)eng.run({}), PreconditionError);

  DnnTask null_net{nullptr, {}, -1, 1};
  EXPECT_THROW((void)eng.run({null_net}), PreconditionError);

  DnnTask wrong_size{&googlenet_, {plat_.gpu()}, -1, 1};
  EXPECT_THROW((void)eng.run({wrong_size}), PreconditionError);

  DnnTask self_dep{&googlenet_, pin(googlenet_, plat_, plat_.gpu()), 0, 1};
  EXPECT_THROW((void)eng.run({self_dep}), PreconditionError);

  DnnTask zero_iter{&googlenet_, pin(googlenet_, plat_, plat_.gpu()), -1, 0};
  EXPECT_THROW((void)eng.run({zero_iter}), PreconditionError);
}

TEST_F(SimTest, RejectsUnsupportedAssignment) {
  const Engine eng(plat_);
  // GoogleNet has GPU-only groups (LRN); pinning everything to the DSA
  // without fallback is invalid.
  DnnTask t{&googlenet_,
            std::vector<soc::PuId>(static_cast<std::size_t>(googlenet_.group_count()),
                                   plat_.dsa()),
            -1, 1};
  EXPECT_THROW((void)eng.run({t}), PreconditionError);
}

TEST_F(SimTest, TraceDisabledWhenRequested) {
  const Engine eng(plat_, {.record_trace = false});
  DnnTask t{&resnet18_, pin(resnet18_, plat_, plat_.gpu()), -1, 1};
  EXPECT_TRUE(eng.run({t}).trace.empty());
}

TEST_F(SimTest, DeterministicAcrossRuns) {
  const Engine eng(plat_);
  DnnTask a{&googlenet_, pin(googlenet_, plat_, plat_.gpu()), -1, 2};
  DnnTask b{&resnet18_, pin(resnet18_, plat_, plat_.dsa()), -1, 2};
  const SimResult r1 = eng.run({a, b});
  const SimResult r2 = eng.run({a, b});
  EXPECT_DOUBLE_EQ(r1.makespan_ms, r2.makespan_ms);
  EXPECT_EQ(r1.trace.records().size(), r2.trace.records().size());
}

}  // namespace
