/// Unit tests for src/grouping: legal cuts, group construction, coarsening.

#include <gtest/gtest.h>

#include "common/error.h"
#include "grouping/grouping.h"
#include "nn/builder.h"
#include "nn/zoo.h"

namespace {

using namespace hax;
using namespace hax::grouping;

nn::Network small_chain() {
  nn::NetworkBuilder b("chain", {3, 32, 32});
  int x = b.conv_relu(b.input(), 16, 3);
  x = b.pool(x, 2, 2);
  x = b.conv_relu(x, 32, 3);
  x = b.global_pool(x);
  x = b.fc(x, 10);
  b.softmax(x);
  return b.build();
}

TEST(LegalCuts, NeverSplitsFusionChains) {
  const nn::Network net = small_chain();
  const auto cuts = legal_cut_points(net);
  for (int cut : cuts) {
    const nn::Layer& next = net.layer(cut + 1);
    // A cut directly before bn/activation would break conv+act fusion.
    if (net.layer(cut).fuses_with_next()) {
      EXPECT_NE(next.kind, nn::LayerKind::Activation);
      EXPECT_NE(next.kind, nn::LayerKind::BatchNorm);
    }
    EXPECT_NE(next.kind, nn::LayerKind::Softmax);
  }
}

TEST(LegalCuts, ExcludesInputBoundary) {
  const auto cuts = legal_cut_points(small_chain());
  for (int cut : cuts) EXPECT_NE(cut, 0);
}

TEST(LegalCuts, AllAreCleanCuts) {
  const nn::Network net = nn::zoo::googlenet();
  for (int cut : legal_cut_points(net)) {
    EXPECT_TRUE(net.is_clean_cut_after(cut)) << "cut after layer " << cut;
  }
}

TEST(LegalCuts, ResidualBlocksAtomic) {
  // No cut may land inside a residual block (between branch and add).
  const nn::Network net = nn::zoo::resnet18();
  for (int cut : legal_cut_points(net)) {
    EXPECT_NE(net.layer(cut + 1).kind, nn::LayerKind::Add);
    EXPECT_TRUE(net.is_clean_cut_after(cut));
  }
}

TEST(BuildGroups, CoversNetworkContiguously) {
  const GroupedNetwork gn = build_groups(nn::zoo::googlenet(), {.max_groups = 10});
  EXPECT_LE(gn.group_count(), 10);
  EXPECT_EQ(gn.group(0).first, 0);
  EXPECT_EQ(gn.groups().back().last, gn.network().layer_count() - 1);
  for (int g = 1; g < gn.group_count(); ++g) {
    EXPECT_EQ(gn.group(g).first, gn.group(g - 1).last + 1);
  }
}

TEST(BuildGroups, RespectsMaxGroupsAcrossModels) {
  for (const char* name : {"AlexNet", "ResNet50", "DenseNet", "Inception"}) {
    const GroupedNetwork gn = build_groups(nn::zoo::by_name(name), {.max_groups = 8});
    EXPECT_LE(gn.group_count(), 8) << name;
    EXPECT_GE(gn.group_count(), 2) << name;
  }
}

TEST(BuildGroups, SingleGroupDegenerate) {
  const GroupedNetwork gn = build_groups(nn::zoo::alexnet(), {.max_groups = 1});
  EXPECT_EQ(gn.group_count(), 1);
  EXPECT_EQ(gn.group(0).size(), gn.network().layer_count());
}

TEST(BuildGroups, RejectsBadOptions) {
  EXPECT_THROW((void)build_groups(nn::zoo::alexnet(), {.max_groups = 0}), PreconditionError);
}

TEST(BuildGroups, AggregatesMatchLayerSums) {
  const GroupedNetwork gn = build_groups(nn::zoo::resnet18(), {.max_groups = 6});
  Flops total = 0;
  for (const LayerGroup& g : gn.groups()) {
    Flops group_flops = 0;
    for (int i = g.first; i <= g.last; ++i) group_flops += gn.network().layer(i).flops();
    EXPECT_EQ(g.flops, group_flops);
    total += g.flops;
  }
  EXPECT_EQ(total, gn.network().total_flops());
}

TEST(BuildGroups, BoundaryBytesMatchTensors) {
  const GroupedNetwork gn = build_groups(nn::zoo::vgg19(), {.max_groups = 8});
  for (int g = 0; g < gn.group_count(); ++g) {
    const LayerGroup& grp = gn.group(g);
    EXPECT_EQ(grp.output_bytes, gn.network().layer(grp.last).output_bytes());
    if (g == 0) {
      EXPECT_EQ(grp.input_bytes, 0);
    } else {
      EXPECT_GT(grp.input_bytes, 0);
    }
  }
}

TEST(BuildGroups, LrnPinsGroupToGpu) {
  const GroupedNetwork gn = build_groups(nn::zoo::alexnet(), {.max_groups = 8});
  bool any_gpu_only = false;
  for (int g = 0; g < gn.group_count(); ++g) {
    const LayerGroup& grp = gn.group(g);
    bool has_unsupported = false;
    for (int i = grp.first; i <= grp.last; ++i) {
      has_unsupported |= !gn.network().layer(i).supported_on(soc::PuKind::Dsa);
    }
    EXPECT_EQ(grp.gpu_only, has_unsupported);
    EXPECT_EQ(gn.supported(g, soc::PuKind::Dsa), !grp.gpu_only);
    EXPECT_TRUE(gn.supported(g, soc::PuKind::Gpu));
    any_gpu_only |= grp.gpu_only;
  }
  EXPECT_TRUE(any_gpu_only);  // AlexNet's LRN + softmax head
}

TEST(BuildGroups, PureConvNetFullyDsaCapable) {
  // A bn/relu/conv/pool-only network has no GPU-pinned group except the
  // softmax head.
  const GroupedNetwork gn = build_groups(nn::zoo::resnet50(), {.max_groups = 10});
  int gpu_only = 0;
  for (const LayerGroup& g : gn.groups()) gpu_only += g.gpu_only ? 1 : 0;
  EXPECT_EQ(gpu_only, 1);  // the head group (softmax)
}

TEST(BuildGroups, LabelsAreRanges) {
  const GroupedNetwork gn = build_groups(nn::zoo::googlenet(), {.max_groups = 10});
  for (const LayerGroup& g : gn.groups()) {
    EXPECT_EQ(g.label, std::to_string(g.first) + "-" + std::to_string(g.last));
  }
}

TEST(BuildGroups, MergePrefersSmallGroups) {
  // Coarsening from many to few groups must keep the big conv stages
  // separated longer than the tiny head layers: the head (smallest flops)
  // merges first. With max_groups=3 on VGG19 the final group should
  // contain far less work than the peak group.
  const GroupedNetwork gn = build_groups(nn::zoo::vgg19(), {.max_groups = 3});
  EXPECT_EQ(gn.group_count(), 3);
  Flops max_flops = 0;
  for (const LayerGroup& g : gn.groups()) max_flops = std::max(max_flops, g.flops);
  EXPECT_GT(max_flops, gn.network().total_flops() / 4);
}

TEST(BuildGroups, GroupAccessorBounds) {
  const GroupedNetwork gn = build_groups(nn::zoo::alexnet(), {.max_groups = 4});
  EXPECT_THROW((void)gn.group(-1), PreconditionError);
  EXPECT_THROW((void)gn.group(gn.group_count()), PreconditionError);
}

TEST(BuildGroups, Inception985LayerScaleSolvable) {
  // The paper calls out Inception-ResNet-v2's layer count as the solver
  // stress case; grouping must still compress it to the requested budget.
  const GroupedNetwork gn = build_groups(nn::zoo::inception_resnet_v2(), {.max_groups = 14});
  EXPECT_LE(gn.group_count(), 14);
  EXPECT_GT(gn.network().layer_count(), 700);
}

class GroupingInvariants : public testing::TestWithParam<const char*> {};

TEST_P(GroupingInvariants, HoldForModel) {
  const GroupedNetwork gn = build_groups(nn::zoo::by_name(GetParam()), {.max_groups = 12});
  // Coverage, contiguity, positive sizes, non-negative aggregates.
  int expected_first = 0;
  for (const LayerGroup& g : gn.groups()) {
    EXPECT_EQ(g.first, expected_first);
    EXPECT_GE(g.size(), 1);
    EXPECT_GE(g.flops, 0);
    EXPECT_GE(g.weight_bytes, 0);
    expected_first = g.last + 1;
  }
  EXPECT_EQ(expected_first, gn.network().layer_count());
}

INSTANTIATE_TEST_SUITE_P(Zoo, GroupingInvariants,
                         testing::Values("AlexNet", "CaffeNet", "VGG16", "VGG19", "GoogleNet",
                                         "ResNet18", "ResNet50", "ResNet101", "ResNet152",
                                         "Inception", "DenseNet", "MobileNet", "FCN-ResNet18"),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

}  // namespace
