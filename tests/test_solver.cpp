/// Unit tests for src/solver: the anytime branch-and-bound engine (serial
/// and subtree-parallel), the solver portfolio, and the budget/abort
/// semantics both depend on — using small synthetic search spaces with
/// brute-force cross-checks.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <mutex>

#include "common/error.h"
#include "common/rng.h"
#include "solver/bnb.h"
#include "solver/genetic.h"
#include "solver/portfolio.h"

namespace {

using namespace hax;
using namespace hax::solver;

/// Minimize sum of table[var][value] over `vars` variables with `values`
/// values each; an admissible bound adds the per-variable minima of the
/// remaining suffix.
class TableSpace : public SearchSpace {
 public:
  TableSpace(int vars, int values, std::uint64_t seed) : values_(values) {
    Rng rng(seed);
    table_.resize(static_cast<std::size_t>(vars));
    for (auto& row : table_) {
      row.resize(static_cast<std::size_t>(values));
      for (double& cell : row) cell = rng.uniform(0.0, 10.0);
    }
    suffix_min_.assign(static_cast<std::size_t>(vars) + 1, 0.0);
    for (int v = vars - 1; v >= 0; --v) {
      suffix_min_[static_cast<std::size_t>(v)] =
          suffix_min_[static_cast<std::size_t>(v) + 1] +
          *std::min_element(table_[static_cast<std::size_t>(v)].begin(),
                            table_[static_cast<std::size_t>(v)].end());
    }
  }

  int variable_count() const override { return static_cast<int>(table_.size()); }

  void candidates(std::span<const int> /*prefix*/, std::vector<int>& out) const override {
    out.clear();
    for (int v = 0; v < values_; ++v) out.push_back(v);
  }

  double lower_bound(std::span<const int> prefix) const override {
    return partial_cost(prefix) + suffix_min_[prefix.size()];
  }

  double evaluate(std::span<const int> assignment) const override {
    return partial_cost(assignment);
  }

  double brute_force_optimum() const {
    std::vector<int> assignment(table_.size(), 0);
    double best = std::numeric_limits<double>::infinity();
    while (true) {
      best = std::min(best, evaluate(assignment));
      std::size_t i = 0;
      while (i < assignment.size() && assignment[i] == values_ - 1) assignment[i++] = 0;
      if (i == assignment.size()) return best;
      ++assignment[i];
    }
  }

 protected:
  double partial_cost(std::span<const int> prefix) const {
    double cost = 0.0;
    for (std::size_t i = 0; i < prefix.size(); ++i) {
      cost += table_[i][static_cast<std::size_t>(prefix[i])];
    }
    return cost;
  }

 private:
  int values_;
  std::vector<std::vector<double>> table_;
  std::vector<double> suffix_min_;
};

/// TableSpace with a deliberately weak (but still admissible) bound:
/// only the committed prefix cost, no suffix estimate. Pruning barely
/// fires, so big instances genuinely cannot be exhausted — what the
/// time-budget tests need (the exact-bound TableSpace closes even 4^20
/// spaces in milliseconds).
class WeakBoundTableSpace : public TableSpace {
 public:
  using TableSpace::TableSpace;
  double lower_bound(std::span<const int> prefix) const override {
    return partial_cost(prefix);
  }
};

TEST(Bnb, FindsOptimumAndProvesIt) {
  const TableSpace space(8, 3, 1);
  const SolveResult r = BranchAndBound().solve(space);
  ASSERT_TRUE(r.best.has_value());
  EXPECT_TRUE(r.stats.exhausted);
  EXPECT_NEAR(r.best->objective, space.brute_force_optimum(), 1e-12);
}

TEST(Bnb, OptimumMatchesBruteForceAcrossSeeds) {
  for (std::uint64_t seed = 2; seed < 12; ++seed) {
    const TableSpace space(6, 4, seed);
    const SolveResult r = BranchAndBound().solve(space);
    ASSERT_TRUE(r.best.has_value()) << "seed " << seed;
    EXPECT_NEAR(r.best->objective, space.brute_force_optimum(), 1e-12) << "seed " << seed;
  }
}

TEST(Bnb, PruningSkipsWork) {
  const TableSpace space(10, 3, 7);
  const SolveResult r = BranchAndBound().solve(space);
  // With an exact additive bound the solver should explore a tiny
  // fraction of the 3^10 = 59049 leaves.
  EXPECT_LT(r.stats.leaves_evaluated, 2000u);
  EXPECT_GT(r.stats.nodes_pruned, 0u);
}

TEST(Bnb, SeedsCapTheResult) {
  const TableSpace space(6, 3, 3);
  // Seed with the brute-force optimum: search can only confirm it.
  std::vector<int> best_seed;
  double best_obj = std::numeric_limits<double>::infinity();
  std::vector<int> assignment(6, 0);
  while (true) {
    const double obj = space.evaluate(assignment);
    if (obj < best_obj) {
      best_obj = obj;
      best_seed = assignment;
    }
    std::size_t i = 0;
    while (i < assignment.size() && assignment[i] == 2) assignment[i++] = 0;
    if (i == assignment.size()) break;
    ++assignment[i];
  }
  SolveOptions options;
  options.seeds = {best_seed};
  const SolveResult r = BranchAndBound().solve(space, options);
  ASSERT_TRUE(r.best.has_value());
  EXPECT_NEAR(r.best->objective, best_obj, 1e-12);
}

TEST(Bnb, SeedRejectsWrongLength) {
  const TableSpace space(6, 3, 3);
  SolveOptions options;
  options.seeds = {{0, 1}};
  EXPECT_THROW((void)BranchAndBound().solve(space, options), PreconditionError);
}

TEST(Bnb, IncumbentsImproveMonotonically) {
  const TableSpace space(10, 3, 11);
  double last = std::numeric_limits<double>::infinity();
  int calls = 0;
  (void)BranchAndBound().solve(space, {}, [&](const Incumbent& inc) {
    EXPECT_LT(inc.objective, last);
    last = inc.objective;
    ++calls;
    return true;
  });
  EXPECT_GT(calls, 0);
}

TEST(Bnb, CallbackAbortStopsSearch) {
  const TableSpace space(10, 3, 5);
  int calls = 0;
  const SolveResult r = BranchAndBound().solve(space, {}, [&](const Incumbent&) {
    ++calls;
    return false;  // stop after the first incumbent
  });
  EXPECT_EQ(calls, 1);
  EXPECT_FALSE(r.stats.exhausted);
  ASSERT_TRUE(r.best.has_value());  // best-so-far is still returned
}

TEST(Bnb, NodeLimitBoundsExploration) {
  const TableSpace space(12, 3, 13);
  SolveOptions options;
  options.node_limit = 50;
  const SolveResult r = BranchAndBound().solve(space, options);
  EXPECT_LE(r.stats.nodes_explored, 50u);
  EXPECT_FALSE(r.stats.exhausted);
}

TEST(Bnb, DeterministicWithoutTimeBudget) {
  const TableSpace space(9, 3, 17);
  const SolveResult a = BranchAndBound().solve(space);
  const SolveResult b = BranchAndBound().solve(space);
  ASSERT_TRUE(a.best && b.best);
  EXPECT_EQ(a.best->assignment, b.best->assignment);
  EXPECT_EQ(a.stats.nodes_explored, b.stats.nodes_explored);
}

TEST(Bnb, StatsAccounting) {
  const TableSpace space(5, 2, 19);
  const SolveResult r = BranchAndBound().solve(space);
  EXPECT_GT(r.stats.nodes_explored, 0u);
  EXPECT_GT(r.stats.leaves_evaluated, 0u);
  EXPECT_GE(r.stats.elapsed_ms, 0.0);
  EXPECT_GT(r.stats.incumbents_found, 0);
}

/// A space whose candidates() can prune values — used to verify dead-end
/// subtrees (no candidates) are handled.
class ConstrainedSpace : public TableSpace {
 public:
  using TableSpace::TableSpace;
  void candidates(std::span<const int> prefix, std::vector<int>& out) const override {
    TableSpace::candidates(prefix, out);
    // Forbid value 0 after any value 2 (arbitrary structural constraint).
    if (!prefix.empty() && prefix.back() == 2) {
      out.erase(std::remove(out.begin(), out.end(), 0), out.end());
    }
  }
};

TEST(Bnb, HonorsCandidateConstraints) {
  const ConstrainedSpace space(7, 3, 23);
  const SolveResult r = BranchAndBound().solve(space);
  ASSERT_TRUE(r.best.has_value());
  const auto& a = r.best->assignment;
  for (std::size_t i = 1; i < a.size(); ++i) {
    EXPECT_FALSE(a[i - 1] == 2 && a[i] == 0);
  }
}

/// All-infeasible space: evaluate always returns infinity.
class InfeasibleSpace : public TableSpace {
 public:
  using TableSpace::TableSpace;
  double evaluate(std::span<const int>) const override {
    return std::numeric_limits<double>::infinity();
  }
};

TEST(Bnb, NoFeasibleSolutionYieldsEmptyBest) {
  const InfeasibleSpace space(4, 2, 29);
  const SolveResult r = BranchAndBound().solve(space);
  EXPECT_FALSE(r.best.has_value());
  EXPECT_TRUE(r.stats.exhausted);
}

TEST(Bnb, NodePacingThrottlesSearch) {
  // Pacing emulates slower optimizers (Z3 on an embedded core, Fig. 7):
  // the same search must take proportionally longer wall time.
  const TableSpace space(8, 3, 37);
  const SolveResult fast = BranchAndBound().solve(space);
  SolveOptions paced_options;
  paced_options.max_nodes_per_ms = 10.0;
  const SolveResult paced = BranchAndBound().solve(space, paced_options);
  ASSERT_TRUE(fast.best && paced.best);
  // Identical result (pacing changes timing, not the search)...
  EXPECT_EQ(paced.best->assignment, fast.best->assignment);
  EXPECT_EQ(paced.stats.nodes_explored, fast.stats.nodes_explored);
  // ...but at least nodes/rate milliseconds of wall time.
  const double expected_ms =
      static_cast<double>(paced.stats.nodes_explored) / paced_options.max_nodes_per_ms;
  EXPECT_GE(paced.stats.elapsed_ms, 0.8 * expected_ms);
  EXPECT_GT(paced.stats.elapsed_ms, fast.stats.elapsed_ms);
}

TEST(Bnb, TimeBudgetReturnsQuickly) {
  const TableSpace space(18, 4, 31);
  SolveOptions options;
  options.time_budget_ms = 5.0;
  const SolveResult r = BranchAndBound().solve(space, options);
  // Generous bound: the check granularity is 64 nodes.
  EXPECT_LT(r.stats.elapsed_ms, 500.0);
  ASSERT_TRUE(r.best.has_value());  // anytime: something was found
}

/// TableSpace where only the all-ones assignment is feasible; every other
/// leaf evaluates to infinity. DFS tries value 0 first at each level, so
/// the lone feasible leaf is the very last one explored.
class LastLeafFeasibleSpace : public WeakBoundTableSpace {
 public:
  using WeakBoundTableSpace::WeakBoundTableSpace;
  double evaluate(std::span<const int> assignment) const override {
    for (const int v : assignment) {
      if (v != 1) return std::numeric_limits<double>::infinity();
    }
    return WeakBoundTableSpace::evaluate(assignment);
  }
};

TEST(Bnb, TinyBudgetStillReturnsFirstFeasibleIncumbent) {
  // The wall-clock budget governs optimality effort, not first-feasible
  // discovery: an already-expired budget must still yield an incumbent
  // whenever a feasible assignment is reachable (the anytime contract —
  // no machine is slow enough to turn a budgeted solve into an empty
  // result). Only node_limit may do that, and it is not set here.
  const LastLeafFeasibleSpace space(10, 2, 53);
  SolveOptions options;
  options.time_budget_ms = 1e-6;
  const SolveResult r = BranchAndBound().solve(space, options);
  ASSERT_TRUE(r.best.has_value());
  EXPECT_EQ(r.best->assignment, std::vector<int>(10, 1));
  EXPECT_TRUE(std::isfinite(r.best->objective));
}

// ------------------------------------------- budget / abort semantics --
// These paths gate the portfolio's cancellation logic: `exhausted` must
// be false whenever any budget or abort cut the search short, for both
// engines.

TEST(Bnb, ExhaustedFalseOnEveryEarlyExit) {
  const TableSpace space(12, 3, 41);
  {
    SolveOptions options;
    options.node_limit = 30;
    EXPECT_FALSE(BranchAndBound().solve(space, options).stats.exhausted);
  }
  {
    // Weak bound: the search cannot finish before the first clock check.
    const WeakBoundTableSpace big(18, 4, 42);
    SolveOptions options;
    options.time_budget_ms = 1e-6;  // expires immediately at first check
    EXPECT_FALSE(BranchAndBound().solve(big, options).stats.exhausted);
  }
  {
    const SolveResult r = BranchAndBound().solve(space, {}, [](const Incumbent&) {
      return false;  // abort on first incumbent
    });
    EXPECT_FALSE(r.stats.exhausted);
  }
  // And with no budgets at all, the space is exhausted (optimality proof).
  EXPECT_TRUE(BranchAndBound().solve(space).stats.exhausted);
}

TEST(Genetic, ExhaustedAlwaysFalseEvenOnFullRun) {
  const TableSpace space(5, 2, 43);
  GeneticOptions options;
  options.generations = 3;
  const SolveResult r = GeneticSolver().solve(space, options);
  ASSERT_TRUE(r.best.has_value());
  EXPECT_FALSE(r.stats.exhausted);  // heuristics never prove optimality
  EXPECT_EQ(r.stats.nodes_explored, 3u);  // one "node" per generation
}

TEST(Bnb, SeedAbortReturnsSeedIncumbent) {
  // IncumbentCallback returning false during seed evaluation must still
  // return the seed as best, with exhausted == false.
  const TableSpace space(6, 3, 47);
  SolveOptions options;
  options.seeds = {{0, 0, 0, 0, 0, 0}};
  int calls = 0;
  const SolveResult r = BranchAndBound().solve(space, options, [&](const Incumbent&) {
    ++calls;
    return false;
  });
  EXPECT_EQ(calls, 1);
  ASSERT_TRUE(r.best.has_value());
  EXPECT_EQ(r.best->assignment, options.seeds[0]);
  EXPECT_FALSE(r.stats.exhausted);
  EXPECT_EQ(r.stats.nodes_explored, 0u);  // aborted before the search began
}

TEST(Bnb, StopTokenCancelsBeforeSearch) {
  const TableSpace space(10, 3, 53);
  StopToken stop;
  stop.request_stop();
  SolveOptions options;
  options.stop = &stop;
  const SolveResult r = BranchAndBound().solve(space, options);
  EXPECT_FALSE(r.stats.exhausted);
  EXPECT_EQ(r.stats.nodes_explored, 0u);
  EXPECT_FALSE(r.best.has_value());
}

TEST(Bnb, StopTokenChainsToParent) {
  StopToken parent;
  StopToken child(&parent);
  EXPECT_FALSE(child.stop_requested());
  parent.request_stop();
  EXPECT_TRUE(child.stop_requested());
}

TEST(Bnb, SharedBoundSuppressesWorseIncumbents) {
  const TableSpace space(8, 3, 59);
  const double optimum = space.brute_force_optimum();
  SharedBound bound;
  // Another engine already holds the optimum: B&B must prove it without
  // ever reporting a (necessarily non-improving) incumbent of its own.
  bound.tighten(optimum);
  SolveOptions options;
  options.shared_bound = &bound;
  const SolveResult r = BranchAndBound().solve(space, options);
  EXPECT_TRUE(r.stats.exhausted);
  EXPECT_FALSE(r.best.has_value());
  EXPECT_EQ(r.stats.incumbents_found, 0);
  EXPECT_DOUBLE_EQ(bound.load(), optimum);
}

// ------------------------------------------------------- parallel B&B --

TEST(ParallelBnb, MatchesSerialOptimum) {
  const TableSpace space(9, 3, 61);
  const SolveResult serial = BranchAndBound().solve(space);
  SolveOptions options;
  options.threads = 4;
  const SolveResult parallel = BranchAndBound().solve(space, options);
  ASSERT_TRUE(serial.best && parallel.best);
  EXPECT_TRUE(parallel.stats.exhausted);
  EXPECT_DOUBLE_EQ(parallel.best->objective, serial.best->objective);
}

TEST(ParallelBnb, QualityParityAcrossThreadCounts) {
  for (std::uint64_t seed = 71; seed < 76; ++seed) {
    const TableSpace space(8, 3, seed);
    const double optimum = space.brute_force_optimum();
    for (int threads : {1, 2, 4, 8}) {
      SolveOptions options;
      options.threads = threads;
      const SolveResult r = BranchAndBound().solve(space, options);
      ASSERT_TRUE(r.best.has_value()) << "seed " << seed << " threads " << threads;
      EXPECT_TRUE(r.stats.exhausted);
      EXPECT_NEAR(r.best->objective, optimum, 1e-12)
          << "seed " << seed << " threads " << threads;
    }
  }
}

TEST(ParallelBnb, NodeLimitExactUnderConcurrency) {
  const TableSpace space(12, 3, 67);
  SolveOptions options;
  options.threads = 8;
  options.node_limit = 100;
  const SolveResult r = BranchAndBound().solve(space, options);
  EXPECT_LE(r.stats.nodes_explored, 100u);  // reservation keeps it exact
  EXPECT_FALSE(r.stats.exhausted);
}

TEST(ParallelBnb, CallbacksSerializedAndMonotonic) {
  const TableSpace space(11, 3, 73);
  std::mutex mutex;  // the solver must already serialize; this guards `last`
  double last = std::numeric_limits<double>::infinity();
  int calls = 0;
  SolveOptions options;
  options.threads = 4;
  const SolveResult r = BranchAndBound().solve(space, options, [&](const Incumbent& inc) {
    std::lock_guard<std::mutex> lock(mutex);
    EXPECT_LT(inc.objective, last);
    last = inc.objective;
    ++calls;
    return true;
  });
  EXPECT_GT(calls, 0);
  ASSERT_TRUE(r.best.has_value());
  EXPECT_DOUBLE_EQ(r.best->objective, last);  // final incumbent = last callback
}

TEST(ParallelBnb, CallbackAbortStopsAllWorkers) {
  const TableSpace space(12, 3, 79);
  std::atomic<int> calls{0};
  SolveOptions options;
  options.threads = 4;
  const SolveResult r = BranchAndBound().solve(space, options, [&](const Incumbent&) {
    calls.fetch_add(1, std::memory_order_relaxed);
    return false;
  });
  EXPECT_EQ(calls.load(), 1);  // serialized: only the first improvement fires
  EXPECT_FALSE(r.stats.exhausted);
  ASSERT_TRUE(r.best.has_value());
}

TEST(ParallelBnb, TimeBudgetReturnsQuickly) {
  const WeakBoundTableSpace space(18, 4, 83);
  SolveOptions options;
  options.threads = 4;
  options.time_budget_ms = 5.0;
  const SolveResult r = BranchAndBound().solve(space, options);
  EXPECT_LT(r.stats.elapsed_ms, 1000.0);
  EXPECT_FALSE(r.stats.exhausted);
  ASSERT_TRUE(r.best.has_value());
}

TEST(ParallelBnb, SeedsStillCapTheResult) {
  const TableSpace space(7, 3, 89);
  std::vector<int> best_seed;
  double best_obj = std::numeric_limits<double>::infinity();
  std::vector<int> assignment(7, 0);
  while (true) {
    const double obj = space.evaluate(assignment);
    if (obj < best_obj) {
      best_obj = obj;
      best_seed = assignment;
    }
    std::size_t i = 0;
    while (i < assignment.size() && assignment[i] == 2) assignment[i++] = 0;
    if (i == assignment.size()) break;
    ++assignment[i];
  }
  SolveOptions options;
  options.threads = 4;
  options.seeds = {best_seed};
  const SolveResult r = BranchAndBound().solve(space, options);
  ASSERT_TRUE(r.best.has_value());
  EXPECT_NEAR(r.best->objective, best_obj, 1e-12);
  EXPECT_TRUE(r.stats.exhausted);
}

TEST(ParallelBnb, ConstrainedSpaceStillHonored) {
  const ConstrainedSpace space(8, 3, 97);
  SolveOptions options;
  options.threads = 4;
  const SolveResult r = BranchAndBound().solve(space, options);
  ASSERT_TRUE(r.best.has_value());
  const auto& a = r.best->assignment;
  for (std::size_t i = 1; i < a.size(); ++i) {
    EXPECT_FALSE(a[i - 1] == 2 && a[i] == 0);
  }
  // Parity with the serial engine on the constrained space too.
  const SolveResult serial = BranchAndBound().solve(space);
  ASSERT_TRUE(serial.best.has_value());
  EXPECT_DOUBLE_EQ(r.best->objective, serial.best->objective);
}

TEST(ParallelBnb, SingleVariableSpace) {
  const TableSpace space(1, 4, 101);
  SolveOptions options;
  options.threads = 4;
  const SolveResult r = BranchAndBound().solve(space, options);
  ASSERT_TRUE(r.best.has_value());
  EXPECT_TRUE(r.stats.exhausted);
  EXPECT_NEAR(r.best->objective, space.brute_force_optimum(), 1e-12);
}

// ---------------------------------------------------------- portfolio --

TEST(Portfolio, FindsProvenOptimumAndCancelsGa) {
  const TableSpace space(9, 3, 103);
  PortfolioOptions options;
  options.threads = 4;
  options.genetic.generations = 1000000;  // would run ~forever if not cancelled
  const PortfolioResult r = PortfolioSolver().solve(space, options);
  ASSERT_TRUE(r.best.best.has_value());
  EXPECT_TRUE(r.best.stats.exhausted);  // the B&B half proved it
  EXPECT_NEAR(r.best.best->objective, space.brute_force_optimum(), 1e-12);
  // The GA was cancelled well short of its million generations.
  EXPECT_LT(r.genetic_stats.nodes_explored, 1000000u);
}

TEST(Portfolio, CallbackMonotonicAcrossEngines) {
  const TableSpace space(10, 3, 107);
  PortfolioOptions options;
  options.threads = 4;
  std::mutex mutex;
  double last = std::numeric_limits<double>::infinity();
  int calls = 0;
  const PortfolioResult r = PortfolioSolver().solve(space, options, [&](const Incumbent& inc) {
    std::lock_guard<std::mutex> lock(mutex);
    EXPECT_LT(inc.objective, last);  // both engines funnel through one filter
    last = inc.objective;
    ++calls;
    return true;
  });
  EXPECT_GT(calls, 0);
  ASSERT_TRUE(r.best.best.has_value());
  EXPECT_DOUBLE_EQ(r.best.best->objective, last);
  EXPECT_EQ(r.best.stats.incumbents_found, calls);
}

TEST(Portfolio, UserAbortStopsBothEngines) {
  const TableSpace space(12, 3, 109);
  PortfolioOptions options;
  options.threads = 4;
  options.genetic.generations = 1000000;
  std::atomic<int> calls{0};
  const PortfolioResult r = PortfolioSolver().solve(space, options, [&](const Incumbent&) {
    calls.fetch_add(1, std::memory_order_relaxed);
    return false;
  });
  EXPECT_EQ(calls.load(), 1);
  EXPECT_FALSE(r.best.stats.exhausted);
  ASSERT_TRUE(r.best.best.has_value());
}

TEST(Portfolio, ExternalStopTokenCancelsTheRace) {
  const TableSpace space(14, 3, 113);
  StopToken stop;
  stop.request_stop();
  PortfolioOptions options;
  options.threads = 2;
  options.bnb.stop = &stop;
  options.genetic.generations = 1000000;
  const PortfolioResult r = PortfolioSolver().solve(space, options);
  EXPECT_FALSE(r.best.stats.exhausted);
  EXPECT_EQ(r.bnb_stats.nodes_explored, 0u);
}

TEST(Portfolio, GaIncumbentTightensBnbBound) {
  // On a space where the GA lands the optimum quickly, the B&B must
  // still exhaust and the merged result must carry the optimum — via
  // either engine (ties go to the exact one).
  const TableSpace space(6, 3, 127);
  PortfolioOptions options;
  options.threads = 2;
  options.genetic.generations = 50;
  const PortfolioResult r = PortfolioSolver().solve(space, options);
  ASSERT_TRUE(r.best.best.has_value());
  EXPECT_TRUE(r.best.stats.exhausted);
  EXPECT_NEAR(r.best.best->objective, space.brute_force_optimum(), 1e-12);
  EXPECT_TRUE(std::string(r.winner) == "bnb" || std::string(r.winner) == "genetic");
}

TEST(Portfolio, TimeBudgetMirroredOntoGa) {
  const WeakBoundTableSpace space(20, 4, 131);  // weak bound: cannot exhaust
  PortfolioOptions options;
  options.threads = 2;
  options.bnb.time_budget_ms = 10.0;
  options.genetic.generations = 1000000;
  const PortfolioResult r = PortfolioSolver().solve(space, options);
  EXPECT_FALSE(r.best.stats.exhausted);
  EXPECT_LT(r.best.stats.elapsed_ms, 2000.0);  // neither engine ran away
  ASSERT_TRUE(r.best.best.has_value());        // anytime: something was found
}

}  // namespace
