/// Unit tests for src/solver: the anytime branch-and-bound engine, using
/// small synthetic search spaces with brute-force cross-checks.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "solver/bnb.h"

namespace {

using namespace hax;
using namespace hax::solver;

/// Minimize sum of table[var][value] over `vars` variables with `values`
/// values each; an admissible bound adds the per-variable minima of the
/// remaining suffix.
class TableSpace : public SearchSpace {
 public:
  TableSpace(int vars, int values, std::uint64_t seed) : values_(values) {
    Rng rng(seed);
    table_.resize(static_cast<std::size_t>(vars));
    for (auto& row : table_) {
      row.resize(static_cast<std::size_t>(values));
      for (double& cell : row) cell = rng.uniform(0.0, 10.0);
    }
    suffix_min_.assign(static_cast<std::size_t>(vars) + 1, 0.0);
    for (int v = vars - 1; v >= 0; --v) {
      suffix_min_[static_cast<std::size_t>(v)] =
          suffix_min_[static_cast<std::size_t>(v) + 1] +
          *std::min_element(table_[static_cast<std::size_t>(v)].begin(),
                            table_[static_cast<std::size_t>(v)].end());
    }
  }

  int variable_count() const override { return static_cast<int>(table_.size()); }

  void candidates(std::span<const int> /*prefix*/, std::vector<int>& out) const override {
    out.clear();
    for (int v = 0; v < values_; ++v) out.push_back(v);
  }

  double lower_bound(std::span<const int> prefix) const override {
    return partial_cost(prefix) + suffix_min_[prefix.size()];
  }

  double evaluate(std::span<const int> assignment) const override {
    return partial_cost(assignment);
  }

  double brute_force_optimum() const {
    std::vector<int> assignment(table_.size(), 0);
    double best = std::numeric_limits<double>::infinity();
    while (true) {
      best = std::min(best, evaluate(assignment));
      std::size_t i = 0;
      while (i < assignment.size() && assignment[i] == values_ - 1) assignment[i++] = 0;
      if (i == assignment.size()) return best;
      ++assignment[i];
    }
  }

 private:
  double partial_cost(std::span<const int> prefix) const {
    double cost = 0.0;
    for (std::size_t i = 0; i < prefix.size(); ++i) {
      cost += table_[i][static_cast<std::size_t>(prefix[i])];
    }
    return cost;
  }

  int values_;
  std::vector<std::vector<double>> table_;
  std::vector<double> suffix_min_;
};

TEST(Bnb, FindsOptimumAndProvesIt) {
  const TableSpace space(8, 3, 1);
  const SolveResult r = BranchAndBound().solve(space);
  ASSERT_TRUE(r.best.has_value());
  EXPECT_TRUE(r.stats.exhausted);
  EXPECT_NEAR(r.best->objective, space.brute_force_optimum(), 1e-12);
}

TEST(Bnb, OptimumMatchesBruteForceAcrossSeeds) {
  for (std::uint64_t seed = 2; seed < 12; ++seed) {
    const TableSpace space(6, 4, seed);
    const SolveResult r = BranchAndBound().solve(space);
    ASSERT_TRUE(r.best.has_value()) << "seed " << seed;
    EXPECT_NEAR(r.best->objective, space.brute_force_optimum(), 1e-12) << "seed " << seed;
  }
}

TEST(Bnb, PruningSkipsWork) {
  const TableSpace space(10, 3, 7);
  const SolveResult r = BranchAndBound().solve(space);
  // With an exact additive bound the solver should explore a tiny
  // fraction of the 3^10 = 59049 leaves.
  EXPECT_LT(r.stats.leaves_evaluated, 2000u);
  EXPECT_GT(r.stats.nodes_pruned, 0u);
}

TEST(Bnb, SeedsCapTheResult) {
  const TableSpace space(6, 3, 3);
  // Seed with the brute-force optimum: search can only confirm it.
  std::vector<int> best_seed;
  double best_obj = std::numeric_limits<double>::infinity();
  std::vector<int> assignment(6, 0);
  while (true) {
    const double obj = space.evaluate(assignment);
    if (obj < best_obj) {
      best_obj = obj;
      best_seed = assignment;
    }
    std::size_t i = 0;
    while (i < assignment.size() && assignment[i] == 2) assignment[i++] = 0;
    if (i == assignment.size()) break;
    ++assignment[i];
  }
  SolveOptions options;
  options.seeds = {best_seed};
  const SolveResult r = BranchAndBound().solve(space, options);
  ASSERT_TRUE(r.best.has_value());
  EXPECT_NEAR(r.best->objective, best_obj, 1e-12);
}

TEST(Bnb, SeedRejectsWrongLength) {
  const TableSpace space(6, 3, 3);
  SolveOptions options;
  options.seeds = {{0, 1}};
  EXPECT_THROW((void)BranchAndBound().solve(space, options), PreconditionError);
}

TEST(Bnb, IncumbentsImproveMonotonically) {
  const TableSpace space(10, 3, 11);
  double last = std::numeric_limits<double>::infinity();
  int calls = 0;
  (void)BranchAndBound().solve(space, {}, [&](const Incumbent& inc) {
    EXPECT_LT(inc.objective, last);
    last = inc.objective;
    ++calls;
    return true;
  });
  EXPECT_GT(calls, 0);
}

TEST(Bnb, CallbackAbortStopsSearch) {
  const TableSpace space(10, 3, 5);
  int calls = 0;
  const SolveResult r = BranchAndBound().solve(space, {}, [&](const Incumbent&) {
    ++calls;
    return false;  // stop after the first incumbent
  });
  EXPECT_EQ(calls, 1);
  EXPECT_FALSE(r.stats.exhausted);
  ASSERT_TRUE(r.best.has_value());  // best-so-far is still returned
}

TEST(Bnb, NodeLimitBoundsExploration) {
  const TableSpace space(12, 3, 13);
  SolveOptions options;
  options.node_limit = 50;
  const SolveResult r = BranchAndBound().solve(space, options);
  EXPECT_LE(r.stats.nodes_explored, 50u);
  EXPECT_FALSE(r.stats.exhausted);
}

TEST(Bnb, DeterministicWithoutTimeBudget) {
  const TableSpace space(9, 3, 17);
  const SolveResult a = BranchAndBound().solve(space);
  const SolveResult b = BranchAndBound().solve(space);
  ASSERT_TRUE(a.best && b.best);
  EXPECT_EQ(a.best->assignment, b.best->assignment);
  EXPECT_EQ(a.stats.nodes_explored, b.stats.nodes_explored);
}

TEST(Bnb, StatsAccounting) {
  const TableSpace space(5, 2, 19);
  const SolveResult r = BranchAndBound().solve(space);
  EXPECT_GT(r.stats.nodes_explored, 0u);
  EXPECT_GT(r.stats.leaves_evaluated, 0u);
  EXPECT_GE(r.stats.elapsed_ms, 0.0);
  EXPECT_GT(r.stats.incumbents_found, 0);
}

/// A space whose candidates() can prune values — used to verify dead-end
/// subtrees (no candidates) are handled.
class ConstrainedSpace : public TableSpace {
 public:
  using TableSpace::TableSpace;
  void candidates(std::span<const int> prefix, std::vector<int>& out) const override {
    TableSpace::candidates(prefix, out);
    // Forbid value 0 after any value 2 (arbitrary structural constraint).
    if (!prefix.empty() && prefix.back() == 2) {
      out.erase(std::remove(out.begin(), out.end(), 0), out.end());
    }
  }
};

TEST(Bnb, HonorsCandidateConstraints) {
  const ConstrainedSpace space(7, 3, 23);
  const SolveResult r = BranchAndBound().solve(space);
  ASSERT_TRUE(r.best.has_value());
  const auto& a = r.best->assignment;
  for (std::size_t i = 1; i < a.size(); ++i) {
    EXPECT_FALSE(a[i - 1] == 2 && a[i] == 0);
  }
}

/// All-infeasible space: evaluate always returns infinity.
class InfeasibleSpace : public TableSpace {
 public:
  using TableSpace::TableSpace;
  double evaluate(std::span<const int>) const override {
    return std::numeric_limits<double>::infinity();
  }
};

TEST(Bnb, NoFeasibleSolutionYieldsEmptyBest) {
  const InfeasibleSpace space(4, 2, 29);
  const SolveResult r = BranchAndBound().solve(space);
  EXPECT_FALSE(r.best.has_value());
  EXPECT_TRUE(r.stats.exhausted);
}

TEST(Bnb, NodePacingThrottlesSearch) {
  // Pacing emulates slower optimizers (Z3 on an embedded core, Fig. 7):
  // the same search must take proportionally longer wall time.
  const TableSpace space(8, 3, 37);
  const SolveResult fast = BranchAndBound().solve(space);
  SolveOptions paced_options;
  paced_options.max_nodes_per_ms = 10.0;
  const SolveResult paced = BranchAndBound().solve(space, paced_options);
  ASSERT_TRUE(fast.best && paced.best);
  // Identical result (pacing changes timing, not the search)...
  EXPECT_EQ(paced.best->assignment, fast.best->assignment);
  EXPECT_EQ(paced.stats.nodes_explored, fast.stats.nodes_explored);
  // ...but at least nodes/rate milliseconds of wall time.
  const double expected_ms =
      static_cast<double>(paced.stats.nodes_explored) / paced_options.max_nodes_per_ms;
  EXPECT_GE(paced.stats.elapsed_ms, 0.8 * expected_ms);
  EXPECT_GT(paced.stats.elapsed_ms, fast.stats.elapsed_ms);
}

TEST(Bnb, TimeBudgetReturnsQuickly) {
  const TableSpace space(18, 4, 31);
  SolveOptions options;
  options.time_budget_ms = 5.0;
  const SolveResult r = BranchAndBound().solve(space, options);
  // Generous bound: the check granularity is 64 nodes.
  EXPECT_LT(r.stats.elapsed_ms, 500.0);
  ASSERT_TRUE(r.best.has_value());  // anytime: something was found
}

}  // namespace
