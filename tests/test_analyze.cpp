// Self-tests for hax_analyze (tools/analyze/): replay deliberate
// lock-discipline violations from tests/lint_fixtures/analyze/ through
// the extractor + rules under synthetic src/ paths, and exercise the
// runtime lock-rank validator that shares lock_ranks.inc with it.

#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "analyze/model.h"
#include "analyze/rules.h"
#include "common/annotated.h"

namespace {

using hax::analyze::Analysis;
using hax::analyze::Model;
using hax::analyze::SourceFile;

SourceFile load_fixture(const std::string& name) {
  const std::string path = std::string(HAX_LINT_FIXTURE_DIR) + "/analyze/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture: " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  // Synthetic src/ path: the rules only police the production tree.
  return {"src/fixture/" + name, buf.str()};
}

Model model_of(const std::string& name) {
  return hax::analyze::build_model({load_fixture(name)});
}

std::vector<std::string> rules_of(const std::vector<hax::lint::Finding>& findings) {
  std::vector<std::string> rules;
  rules.reserve(findings.size());
  for (const auto& f : findings) rules.push_back(f.rule);
  return rules;
}

TEST(AnalyzeModel, CanonicalMemberLockIds) {
  const Model model = model_of("lock_order_ab_ba.cpp");
  ASSERT_EQ(model.locks.size(), 2u);
  EXPECT_NE(model.find_lock("Pair_a_mu_"), nullptr);
  EXPECT_NE(model.find_lock("Pair_b_mu_"), nullptr);
  EXPECT_TRUE(model.find_lock("Pair_a_mu_")->is_member);
  EXPECT_EQ(model.find_lock("Pair_a_mu_")->owner, "Pair");
  EXPECT_TRUE(model.extraction_errors.empty());
}

TEST(AnalyzeModel, GuardedFieldsAndExemptionsExtracted) {
  const Model model = model_of("unguarded_clean.cpp");
  // Only hits_ and scale_ survive as candidate fields (atomic/const are
  // exempt, and the Mutex itself never is a candidate).
  ASSERT_EQ(model.fields.size(), 2u);
  for (const auto& f : model.fields) {
    EXPECT_TRUE(f.guarded || f.documented) << f.name;
  }
}

TEST(AnalyzeModel, EdgeDirectiveWithUnknownIdIsAnExtractionError) {
  const SourceFile bad{"src/fixture/bad_edge.cpp",
                       "// hax-analyze: edge(NoSuchLock -> AlsoMissing)\n"};
  const Model model = hax::analyze::build_model({bad});
  ASSERT_EQ(model.extraction_errors.size(), 2u);
  EXPECT_EQ(model.extraction_errors[0].rule, "bad-directive");
}

TEST(AnalyzeLockOrder, AbbaInversionReportedDespiteAllowFile) {
  Model model = model_of("lock_order_ab_ba.cpp");
  const Analysis analysis = hax::analyze::analyze(model);
  // The fixture carries allow-file(lock-order-inversion); the rule is
  // unsuppressible, so the finding must survive it.
  ASSERT_EQ(rules_of(analysis.findings),
            std::vector<std::string>{"lock-order-inversion"});
  EXPECT_NE(analysis.findings[0].message.find("Pair_a_mu_"), std::string::npos);
  EXPECT_NE(analysis.findings[0].message.find("Pair_b_mu_"), std::string::npos);
}

TEST(AnalyzeLockOrder, ConsistentNestingIsCleanAndDeduped) {
  Model model = model_of("lock_order_clean.cpp");
  const Analysis analysis = hax::analyze::analyze(model);
  EXPECT_TRUE(analysis.findings.empty());
  // Two witness sites of the same a -> b nesting collapse to one edge.
  ASSERT_EQ(analysis.edges.size(), 1u);
  EXPECT_EQ(analysis.edges[0].from, "Pair_a_mu_");
  EXPECT_EQ(analysis.edges[0].to, "Pair_b_mu_");
}

TEST(AnalyzeLockOrder, DeclaredCallbackEdgeClosesCycle) {
  Model model = model_of("lock_order_declared_edge.cpp");
  ASSERT_EQ(model.declared_edges.size(), 1u);
  EXPECT_EQ(model.declared_edges[0].via, "declared");
  const Analysis analysis = hax::analyze::analyze(model);
  EXPECT_EQ(rules_of(analysis.findings),
            std::vector<std::string>{"lock-order-inversion"});
}

TEST(AnalyzeBlocking, SleepUnderLockFlagged) {
  Model model = model_of("blocking_under_lock.cpp");
  const Analysis analysis = hax::analyze::analyze(model);
  ASSERT_EQ(rules_of(analysis.findings),
            std::vector<std::string>{"blocking-under-lock"});
  EXPECT_NE(analysis.findings[0].message.find("sleep_for"), std::string::npos);
  EXPECT_NE(analysis.findings[0].message.find("Sleeper_mu_"), std::string::npos);
}

TEST(AnalyzeBlocking, SameLineAllowSuppressesAndIsNotStale) {
  Model model = model_of("blocking_suppressed.cpp");
  const Analysis analysis = hax::analyze::analyze(model);
  EXPECT_TRUE(analysis.findings.empty());
  // The allowance earned its keep, so the stale-allow pass stays quiet.
  EXPECT_TRUE(hax::analyze::stale_allow_findings(model, {}).empty());
}

TEST(AnalyzeBlocking, CondVarWaitOnSoleHeldLockAllowlisted) {
  Model model = model_of("condvar_wait_clean.cpp");
  const Analysis analysis = hax::analyze::analyze(model);
  EXPECT_TRUE(analysis.findings.empty());
}

TEST(AnalyzeUnguarded, MissingProtocolFlagged) {
  Model model = model_of("unguarded_field.cpp");
  const Analysis analysis = hax::analyze::analyze(model);
  ASSERT_EQ(rules_of(analysis.findings),
            std::vector<std::string>{"unguarded-shared-field"});
  EXPECT_NE(analysis.findings[0].message.find("hits_"), std::string::npos);
}

TEST(AnalyzeUnguarded, SameLineAllowSuppresses) {
  Model model = model_of("unguarded_suppressed.cpp");
  EXPECT_TRUE(hax::analyze::analyze(model).findings.empty());
}

TEST(AnalyzeUnguarded, GuardedDocumentedConstAtomicAllClean) {
  Model model = model_of("unguarded_clean.cpp");
  EXPECT_TRUE(hax::analyze::analyze(model).findings.empty());
}

TEST(AnalyzeStaleAllow, UnusedSuppressionReported) {
  Model model = model_of("stale_allow.cpp");
  EXPECT_TRUE(hax::analyze::analyze(model).findings.empty());
  const auto stale = hax::analyze::stale_allow_findings(model, {});
  ASSERT_EQ(rules_of(stale), std::vector<std::string>{"stale-allow"});
  EXPECT_NE(stale[0].message.find("blocking-under-lock"), std::string::npos);
}

TEST(AnalyzeRanks, UnrankedLockFlaggedRankedNot) {
  Model model = model_of("unranked_lock.cpp");
  ASSERT_NE(model.find_lock("Ranked_mu_"), nullptr);
  EXPECT_TRUE(model.find_lock("Ranked_mu_")->has_rank);
  const auto findings = hax::analyze::rank_findings(model);
  ASSERT_EQ(rules_of(findings), std::vector<std::string>{"unranked-lock"});
  EXPECT_NE(findings[0].message.find("Unranked_mu_"), std::string::npos);
}

TEST(AnalyzeRanks, EmitRanksIsDeterministicAndOrderConsistent) {
  Model model = model_of("lock_order_clean.cpp");
  const Analysis analysis = hax::analyze::analyze(model);
  const std::string once = hax::analyze::emit_ranks(model, analysis.edges);
  const std::string twice = hax::analyze::emit_ranks(model, analysis.edges);
  EXPECT_EQ(once, twice);
  // a is acquired before b, so its rank must be strictly lower.
  EXPECT_NE(once.find("HAX_LOCK_RANK_DEF(Pair_a_mu_, 10)"), std::string::npos);
  EXPECT_NE(once.find("HAX_LOCK_RANK_DEF(Pair_b_mu_, 20)"), std::string::npos);
}

TEST(AnalyzeRanks, EmitRanksEmptyOnCyclicGraph) {
  Model model = model_of("lock_order_ab_ba.cpp");
  const Analysis analysis = hax::analyze::analyze(model);
  EXPECT_TRUE(hax::analyze::emit_ranks(model, analysis.edges).empty());
}

// ---- runtime lock-rank validator (annotated.h) -------------------------
//
// Active only in HAX_RANK_CHECKS builds (every HAX_SANITIZE tree gets it
// automatically), where the TSan/ASan suites double as lock-order
// regression tests. The tier-1 build compiles the skip stub instead.
#ifdef HAX_RANK_CHECKS

using hax::LockGuard;
using hax::Mutex;

// Note: the validator's mutexes live in `static` storage below. A
// stack-allocated std::mutex is trivially destructible, so TSan never
// sees it die and links the recycled stack slot into the *next* test's
// lock-order graph — a false ABBA across unrelated tests.

TEST(LockRank, InOrderNestingRunsClean) {
  static Mutex low{10, "fixture.low"};
  static Mutex high{20, "fixture.high"};
  for (int i = 0; i < 3; ++i) {
    LockGuard a(low);
    LockGuard b(high);
  }
}

TEST(LockRank, UnrankedLocksAreNeverChecked) {
  static Mutex u1;  // rank 0: outside the canonical assignment
  static Mutex u2;
  static Mutex ranked{10, "fixture.ranked"};
  LockGuard a(u1);
  LockGuard c(ranked);  // ranked under unranked: unranked holds don't rank-gate
  LockGuard b(u2);      // unranked under ranked: rank 0 is never checked
}

TEST(LockRank, TryLockLandsOnTheStack) {
  static Mutex low{10, "fixture.try_low"};
  static Mutex high{20, "fixture.try_high"};
  ASSERT_TRUE(low.try_lock());
  LockGuard adopted(low, hax::kAdoptLock);
  LockGuard b(high);  // still in order: no abort
}

TEST(LockRank, CondVarWaitersKeepPerThreadStacks) {
  // The waiter's stack keeps its entry while blocked in wait(); the
  // notifier's own (empty) stack must be unaffected — ranks are
  // thread-local by construction.
  static Mutex mu{10, "fixture.cv_mu"};
  static hax::CondVar cv;
  bool ready = false;
  std::thread waiter([&] {
    LockGuard lock(mu);
    while (!ready) cv.wait(mu);
  });
  {
    LockGuard lock(mu);
    ready = true;
    cv.notify_all();
  }
  waiter.join();
}

TEST(LockRankDeathTest, OutOfOrderAcquisitionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  static Mutex low{10, "fixture.abba_low"};
  static Mutex high{20, "fixture.abba_high"};
  EXPECT_DEATH(
      {
        LockGuard b(high);
        LockGuard a(low);
      },
      "lock-rank violation");
}

TEST(LockRankDeathTest, EqualRankNestingAborts) {
  // Strict ordering: equal-rank peers (e.g. two cache shards) must never
  // nest — sweeps take them one at a time.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  static Mutex s1{10, "fixture.shard1"};
  static Mutex s2{10, "fixture.shard2"};
  EXPECT_DEATH(
      {
        LockGuard a(s1);
        LockGuard b(s2);
      },
      "lock-rank violation");
}

#else  // !HAX_RANK_CHECKS

TEST(LockRank, ValidatorCompiledOut) {
  GTEST_SKIP() << "HAX_RANK_CHECKS off: rank validation is compiled out "
                  "(enabled automatically in HAX_SANITIZE builds)";
}

#endif  // HAX_RANK_CHECKS

}  // namespace
