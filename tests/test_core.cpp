/// Unit tests for src/core: the HaxConn facade, ground-truth evaluation,
/// and the dynamic D-HaX-CoNN scheduler.

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/baselines.h"
#include "common/error.h"
#include "core/dynamic.h"
#include "core/evaluate.h"
#include "core/haxconn.h"
#include "nn/zoo.h"

namespace {

using namespace hax;
using namespace hax::core;

class CoreFixture : public testing::Test {
 protected:
  CoreFixture() : plat_(soc::Platform::xavier()), hax_(plat_, options()) {}

  static HaxConnOptions options() {
    HaxConnOptions o;
    o.grouping.max_groups = 8;
    return o;
  }

  soc::Platform plat_;
  HaxConn hax_;
};

TEST_F(CoreFixture, MakeProblemWiresEverything) {
  const auto inst = hax_.make_problem({{nn::zoo::googlenet()}, {nn::zoo::resnet18()}});
  const sched::Problem& prob = inst.problem();
  EXPECT_NO_THROW(prob.validate());
  EXPECT_EQ(prob.dnn_count(), 2);
  EXPECT_EQ(prob.pus.size(), 2u);
  EXPECT_GT(prob.epsilon_ms, 0.0);
  EXPECT_TRUE(std::isfinite(prob.epsilon_ms));
}

TEST_F(CoreFixture, ScheduleNeverWorseThanNaiveBaselinesOnSimulator) {
  // The paper's guarantee (Sec 5.2 Scenario 3), checked on ground truth.
  const auto inst = hax_.make_problem({{nn::zoo::vgg19()}, {nn::zoo::resnet152()}});
  const sched::Problem& prob = inst.problem();
  const auto sol = hax_.schedule(prob);
  const TimeMs hax_lat = evaluate(prob, sol.schedule).round_latency_ms;
  for (auto kind : {baselines::Kind::GpuOnly, baselines::Kind::NaiveConcurrent}) {
    const TimeMs base_lat =
        evaluate(prob, baselines::make(kind, prob)).round_latency_ms;
    EXPECT_LE(hax_lat, base_lat * 1.05) << baselines::name(kind);
  }
}

TEST_F(CoreFixture, PredictionTracksSimulator) {
  const auto inst = hax_.make_problem({{nn::zoo::vgg19()}, {nn::zoo::resnet152()}});
  const auto sol = hax_.schedule(inst.problem());
  const EvalResult ev = evaluate(inst.problem(), sol.schedule);
  if (!sol.used_fallback) {
    EXPECT_NEAR(sol.prediction.round_ms, ev.round_latency_ms, 0.10 * ev.round_latency_ms);
  }
}

TEST_F(CoreFixture, FallbackKicksInWhenDsaUseless) {
  // Two VGG19s: the DLA is so much slower that GPU-only serialization
  // wins; HaX-CoNN must identify this (paper Sec 5.4, VGG19 row).
  const auto inst = hax_.make_problem({{nn::zoo::vgg19()}, {nn::zoo::vgg19()}});
  const auto sol = hax_.schedule(inst.problem());
  const TimeMs hax_lat = evaluate(inst.problem(), sol.schedule).round_latency_ms;
  const TimeMs gpu_lat =
      evaluate(inst.problem(), baselines::gpu_only(inst.problem())).round_latency_ms;
  EXPECT_LE(hax_lat, gpu_lat * 1.02);
}

TEST_F(CoreFixture, EvaluateRoundMetrics) {
  const auto inst = hax_.make_problem({{nn::zoo::googlenet(), -1, 3}});
  const sched::Schedule s =
      sched::uniform_schedule(inst.problem().group_counts(), plat_.gpu());
  const EvalResult ev = evaluate(inst.problem(), s);
  EXPECT_NEAR(ev.round_latency_ms, ev.sim.makespan_ms / 3.0, 1e-9);
  EXPECT_NEAR(ev.fps, 3.0 / ev.sim.makespan_ms * 1000.0, 1e-9);
}

TEST_F(CoreFixture, EvaluateRejectsMismatch) {
  const auto inst = hax_.make_problem({{nn::zoo::googlenet()}});
  sched::Schedule wrong;
  wrong.assignment = {{plat_.gpu()}, {plat_.gpu()}};
  EXPECT_THROW((void)evaluate(inst.problem(), wrong), PreconditionError);
}

TEST_F(CoreFixture, SolverBudgetStillReturnsSchedule) {
  HaxConnOptions o = options();
  o.time_budget_ms = 1.0;
  const HaxConn quick(plat_, o);
  const auto inst = quick.make_problem({{nn::zoo::googlenet()}, {nn::zoo::resnet50()}});
  const auto sol = quick.schedule(inst.problem());
  EXPECT_FALSE(sol.schedule.assignment.empty());
}

TEST_F(CoreFixture, OptionsValidated) {
  HaxConnOptions o;
  o.max_transitions = -1;
  EXPECT_THROW(HaxConn(plat_, o), PreconditionError);
  o = HaxConnOptions{};
  o.epsilon_fraction = 0.0;
  EXPECT_THROW(HaxConn(plat_, o), PreconditionError);
}

// ----------------------------------------------------------- d-hax-conn --

TEST_F(CoreFixture, DynamicStartsWithNaiveThenImproves) {
  const auto inst = hax_.make_problem({{nn::zoo::vgg19()}, {nn::zoo::resnet152()}});
  DHaxConn dyn(hax_);
  dyn.start(inst.problem());
  // A schedule is available immediately (the naive seed).
  EXPECT_FALSE(dyn.current_schedule().assignment.empty());
  ASSERT_TRUE(dyn.wait_converged(30'000.0));
  EXPECT_TRUE(dyn.converged());
  // The converged schedule should match the static solver's optimum.
  const auto static_sol = hax_.schedule(inst.problem());
  EXPECT_NEAR(dyn.current_prediction().objective_value,
              std::min(static_sol.prediction.objective_value,
                       dyn.current_prediction().objective_value),
              1e-9);
  dyn.stop();
}

TEST_F(CoreFixture, DynamicPublishesMonotonicallyImprovingSchedules) {
  const auto inst = hax_.make_problem({{nn::zoo::googlenet()}, {nn::zoo::resnet50()}});
  DHaxConn dyn(hax_);
  dyn.start(inst.problem());
  const double initial = dyn.current_prediction().objective_value;
  ASSERT_TRUE(dyn.wait_converged(30'000.0));
  EXPECT_LE(dyn.current_prediction().objective_value, initial + 1e-9);
  EXPECT_GE(dyn.update_count(), 1);
  dyn.stop();
}

TEST_F(CoreFixture, DynamicStopIsIdempotentAndRestartable) {
  const auto inst1 = hax_.make_problem({{nn::zoo::googlenet()}, {nn::zoo::resnet18()}});
  const auto inst2 = hax_.make_problem({{nn::zoo::alexnet()}, {nn::zoo::resnet50()}});
  DHaxConn dyn(hax_);
  dyn.start(inst1.problem());
  dyn.stop();
  dyn.stop();
  // CFG change: restart on a new problem.
  dyn.start(inst2.problem());
  EXPECT_FALSE(dyn.current_schedule().assignment.empty());
  EXPECT_EQ(dyn.current_schedule().dnn_count(), 2);
  (void)dyn.wait_converged(30'000.0);
  dyn.stop();
}

TEST_F(CoreFixture, DynamicDestructorStopsWorker) {
  const auto inst = hax_.make_problem({{nn::zoo::googlenet()}, {nn::zoo::resnet50()}});
  {
    DHaxConn dyn(hax_);
    dyn.start(inst.problem());
    // Destructor must join the worker without hanging.
  }
  SUCCEED();
}

}  // namespace
