/// Tests for the fault-injection subsystem (src/faults) and the
/// self-healing runtime stack built on it: plan determinism, simulator
/// integration, the drift watchdog, schedule-validation hardening, the
/// executor's frame timeout, and the end-to-end throttle/failure
/// recovery scenarios from the robustness experiments.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <iostream>
#include <limits>

#include "baselines/baselines.h"
#include "common/error.h"
#include "core/evaluate.h"
#include "core/haxconn.h"
#include "faults/fault_plan.h"
#include "nn/zoo.h"
#include "runtime/executor.h"
#include "runtime/health_monitor.h"
#include "runtime/self_healing.h"
#include "sched/formulation.h"
#include "sched/validate.h"

namespace {

using namespace hax;

constexpr TimeMs kForever = 1e9;

// ---------------------------------------------------------------- plans ----

TEST(FaultPlan, StateQueriesFollowTheScript) {
  faults::FaultPlan plan;
  plan.throttle(0, 10.0, 20.0, 2.0).stall(1, 5.0, 8.0).fail(2, 30.0);
  plan.degrade_bandwidth(12.0, 14.0, 0.5);

  EXPECT_DOUBLE_EQ(plan.pu_state(0, 0.0).rate(), 1.0);
  EXPECT_DOUBLE_EQ(plan.pu_state(0, 15.0).rate(), 0.5);
  EXPECT_DOUBLE_EQ(plan.pu_state(0, 25.0).rate(), 1.0);

  EXPECT_DOUBLE_EQ(plan.pu_state(1, 6.0).rate(), 0.0);
  EXPECT_TRUE(plan.pu_state(1, 6.0).stalled);
  EXPECT_DOUBLE_EQ(plan.pu_state(1, 9.0).rate(), 1.0);

  EXPECT_TRUE(plan.pu_state(2, 29.0).alive);
  EXPECT_FALSE(plan.pu_state(2, 31.0).alive);
  EXPECT_DOUBLE_EQ(plan.pu_state(2, 1e6).rate(), 0.0);
  EXPECT_TRUE(plan.has_permanent_failure());
  EXPECT_TRUE(plan.failed_forever(2, 31.0));
  EXPECT_FALSE(plan.failed_forever(0, 15.0));

  EXPECT_DOUBLE_EQ(plan.bandwidth_factor(13.0), 0.5);
  EXPECT_DOUBLE_EQ(plan.bandwidth_factor(15.0), 1.0);
}

TEST(FaultPlan, RampIsMonotoneAndDiscretized) {
  faults::FaultPlan plan;
  plan.throttle(0, 100.0, 300.0, 3.0, /*ramp_ms=*/80.0);
  double prev = 1.0;
  for (TimeMs t = 95.0; t < 200.0; t += 5.0) {
    const double slow = plan.pu_state(0, t).slowdown;
    EXPECT_GE(slow, prev - 1e-12) << "t=" << t;
    prev = slow;
  }
  // After the ramp the full factor applies; before the window, none.
  EXPECT_DOUBLE_EQ(plan.pu_state(0, 99.0).slowdown, 1.0);
  EXPECT_DOUBLE_EQ(plan.pu_state(0, 181.0).slowdown, 3.0);
}

TEST(FaultPlan, SealedAfterFirstQuery) {
  faults::FaultPlan plan;
  plan.throttle(0, 0.0, 10.0, 2.0);
  (void)plan.pu_state(0, 1.0);
  EXPECT_THROW(plan.stall(0, 1.0, 2.0), PreconditionError);
}

TEST(FaultPlan, NextChangeAfterWalksBoundaries) {
  faults::FaultPlan plan;
  plan.stall(0, 5.0, 8.0);
  EXPECT_DOUBLE_EQ(plan.next_change_after(0.0), 5.0);
  EXPECT_DOUBLE_EQ(plan.next_change_after(5.0), 8.0);
  EXPECT_TRUE(std::isinf(plan.next_change_after(8.0)));
}

TEST(FaultPlan, JitterIsDeterministicAndBounded) {
  faults::FaultPlan a(123), b(123), c(456);
  a.jitter(0.1);
  b.jitter(0.1);
  c.jitter(0.1);
  bool any_diff_seed = false;
  for (int g = 0; g < 16; ++g) {
    const double fa = a.jitter_factor(0, 0, g, -1);
    EXPECT_DOUBLE_EQ(fa, b.jitter_factor(0, 0, g, -1));
    EXPECT_GE(fa, 0.9);
    EXPECT_LE(fa, 1.1);
    if (fa != c.jitter_factor(0, 0, g, -1)) any_diff_seed = true;
  }
  EXPECT_TRUE(any_diff_seed);
}

TEST(FaultPlan, RandomPlansAreSeedDeterministic) {
  const soc::Platform plat = soc::Platform::xavier();
  const faults::FaultPlan a = faults::FaultPlan::random(7, plat);
  const faults::FaultPlan b = faults::FaultPlan::random(7, plat);
  const faults::FaultPlan c = faults::FaultPlan::random(8, plat);
  EXPECT_EQ(a.describe(), b.describe());
  EXPECT_NE(a.describe(), c.describe());
}

// ------------------------------------------------------ sim integration ----

class FaultSim : public testing::Test {
 protected:
  FaultSim()
      : plat_(soc::Platform::xavier()),
        hax_(plat_, [] {
          core::HaxConnOptions o;
          o.grouping.max_groups = 5;
          return o;
        }()),
        inst_(hax_.make_problem({{nn::zoo::alexnet()}, {nn::zoo::resnet18()}})) {}

  sched::Schedule pinned(soc::PuId a, soc::PuId b) const {
    const sched::Problem& prob = inst_.problem();
    sched::Schedule s;
    for (int d = 0; d < prob.dnn_count(); ++d) {
      const soc::PuId pu = d == 0 ? a : b;
      const sched::DnnSpec& spec = prob.dnns[static_cast<std::size_t>(d)];
      std::vector<soc::PuId> asg;
      for (int g = 0; g < spec.net->group_count(); ++g) {
        asg.push_back(spec.profile->at(g, pu).supported ? pu : plat_.gpu());
      }
      s.assignment.push_back(std::move(asg));
    }
    return s;
  }

  soc::Platform plat_;
  core::HaxConn hax_;
  sched::ProblemInstance inst_;
};

TEST_F(FaultSim, ReplayIsBitIdentical) {
  const sched::Schedule s = pinned(plat_.gpu(), plat_.dsa());
  const faults::FaultPlan plan1 = faults::FaultPlan::random(42, plat_);
  const faults::FaultPlan plan2 = faults::FaultPlan::random(42, plat_);

  const core::EvalResult r1 =
      core::evaluate(inst_.problem(), s, {.record_trace = true, .faults = &plan1});
  const core::EvalResult r2 =
      core::evaluate(inst_.problem(), s, {.record_trace = true, .faults = &plan2});

  ASSERT_EQ(r1.sim.trace.records().size(), r2.sim.trace.records().size());
  for (std::size_t i = 0; i < r1.sim.trace.records().size(); ++i) {
    const sim::TraceRecord& a = r1.sim.trace.records()[i];
    const sim::TraceRecord& b = r2.sim.trace.records()[i];
    EXPECT_EQ(a.task, b.task);
    EXPECT_EQ(a.pu, b.pu);
    EXPECT_EQ(a.start, b.start);  // bitwise: no tolerance
    EXPECT_EQ(a.end, b.end);
    EXPECT_EQ(a.rate, b.rate);
  }
  EXPECT_EQ(r1.sim.makespan_ms, r2.sim.makespan_ms);

  // A different seed perturbs the timeline.
  const faults::FaultPlan other = faults::FaultPlan::random(43, plat_);
  const core::EvalResult r3 = core::evaluate(inst_.problem(), s, {.faults = &other});
  EXPECT_NE(r1.sim.makespan_ms, r3.sim.makespan_ms);
}

TEST_F(FaultSim, SteadyThrottleDoublesSingleTaskMakespan) {
  // One DNN alone on the GPU: a 2x compute throttle over the whole run
  // must double the makespan exactly (no contention, no transitions).
  auto solo = hax_.make_problem({{nn::zoo::alexnet()}});
  sched::Schedule s;
  const sched::DnnSpec& spec = solo.problem().dnns[0];
  s.assignment.push_back(
      std::vector<soc::PuId>(static_cast<std::size_t>(spec.net->group_count()), plat_.gpu()));

  const core::EvalResult base = core::evaluate(solo.problem(), s);
  faults::FaultPlan plan;
  plan.throttle(plat_.gpu(), 0.0, kForever, 2.0);
  const core::EvalResult slow = core::evaluate(solo.problem(), s, {.faults = &plan});
  EXPECT_NEAR(slow.sim.makespan_ms / base.sim.makespan_ms, 2.0, 1e-9);
}

TEST_F(FaultSim, StallAddsItsWindowLength) {
  auto solo = hax_.make_problem({{nn::zoo::alexnet()}});
  sched::Schedule s;
  const sched::DnnSpec& spec = solo.problem().dnns[0];
  s.assignment.push_back(
      std::vector<soc::PuId>(static_cast<std::size_t>(spec.net->group_count()), plat_.gpu()));

  const TimeMs base = core::evaluate(solo.problem(), s).sim.makespan_ms;
  const TimeMs from = 0.25 * base;
  const TimeMs len = 0.4 * base;
  faults::FaultPlan plan;
  plan.stall(plat_.gpu(), from, from + len);
  const TimeMs stalled = core::evaluate(solo.problem(), s, {.faults = &plan}).sim.makespan_ms;
  EXPECT_NEAR(stalled - base, len, 1e-9 * base);
}

TEST_F(FaultSim, BandwidthDegradationSlowsContendedRun) {
  const sched::Schedule s = pinned(plat_.gpu(), plat_.dsa());
  const TimeMs base = core::evaluate(inst_.problem(), s).sim.makespan_ms;
  faults::FaultPlan plan;
  plan.degrade_bandwidth(0.0, kForever, 0.4);
  const TimeMs degraded =
      core::evaluate(inst_.problem(), s, {.faults = &plan}).sim.makespan_ms;
  EXPECT_GT(degraded, base * 1.02);
}

TEST_F(FaultSim, ScheduleOnFailedPuThrowsInsteadOfSpinning) {
  const sched::Schedule s = pinned(plat_.gpu(), plat_.dsa());
  faults::FaultPlan plan;
  plan.fail(plat_.dsa(), 0.0);
  EXPECT_THROW((void)core::evaluate(inst_.problem(), s, {.faults = &plan}),
               PreconditionError);
}

// ------------------------------------------------- validation hardening ----

TEST_F(FaultSim, ValidateFlagsMissingCoverage) {
  sched::Schedule s;
  s.assignment.resize(2);  // both DNNs present but empty
  const sched::ValidationReport report = sched::validate_schedule(inst_.problem(), s);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.issues[0].kind, sched::IssueKind::MissingCoverage);

  sched::Schedule t = pinned(plat_.gpu(), plat_.dsa());
  t.assignment[1][0] = soc::kInvalidPu;
  const sched::ValidationReport r2 = sched::validate_schedule(inst_.problem(), t);
  ASSERT_FALSE(r2.ok());
  EXPECT_EQ(r2.issues[0].kind, sched::IssueKind::MissingCoverage);
  EXPECT_EQ(r2.issues[0].dnn, 1);
}

TEST_F(FaultSim, EnsureValidThrowsStructuredError) {
  sched::Schedule s = pinned(plat_.gpu(), plat_.dsa());
  s.assignment[0][0] = 99;  // nonexistent PU
  try {
    sched::ensure_valid(inst_.problem(), s);
    FAIL() << "expected ValidationError";
  } catch (const sched::ValidationError& e) {
    ASSERT_FALSE(e.report().ok());
    EXPECT_EQ(e.report().issues[0].kind, sched::IssueKind::UnknownPu);
    EXPECT_NE(std::string(e.what()).find("does not exist"), std::string::npos);
  }
  // ValidationError is a PreconditionError: existing catch sites keep working.
  sched::Schedule t = pinned(plat_.gpu(), plat_.dsa());
  t.assignment[0][0] = soc::kInvalidPu;
  EXPECT_THROW(sched::ensure_valid(inst_.problem(), t), PreconditionError);
  EXPECT_NO_THROW(sched::ensure_valid(inst_.problem(), pinned(plat_.gpu(), plat_.dsa())));
}

TEST_F(FaultSim, WithoutPusMasksTheFormulation) {
  const sched::Problem degraded = inst_.problem().without_pus({plat_.dsa()});
  EXPECT_EQ(degraded.pus.size(), inst_.problem().pus.size() - 1);
  EXPECT_TRUE(std::find(degraded.pus.begin(), degraded.pus.end(), plat_.dsa()) ==
              degraded.pus.end());

  // A schedule using the masked PU is infeasible on the degraded
  // formulation — in both the optimized and the golden reference path.
  const sched::Schedule uses_dsa = pinned(plat_.gpu(), plat_.dsa());
  const sched::Formulation f(degraded);
  const sched::PredictOptions relaxed{.enforce_transition_budget = false,
                                      .enforce_epsilon = false};
  EXPECT_FALSE(f.predict(uses_dsa, relaxed).feasible);
  EXPECT_FALSE(f.predict_reference(uses_dsa, relaxed).feasible);
  EXPECT_TRUE(f.predict(pinned(plat_.gpu(), plat_.gpu()), relaxed).feasible);

  // Naive seeds generated from the degraded problem avoid the masked PU.
  for (const sched::Schedule& seed : baselines::naive_seeds(degraded)) {
    EXPECT_TRUE(sched::validate_schedule(degraded, seed,
                                         {.enforce_transition_budget = false})
                    .ok());
  }

  // Masking everything is an error, not an empty problem.
  EXPECT_THROW((void)inst_.problem().without_pus(inst_.problem().pus), PreconditionError);
}

// ---------------------------------------------------------- watchdog ----

TEST(FaultHealth, NoTriggerBelowThreshold) {
  runtime::HealthOptions opts;
  opts.drift_tolerance = 0.25;
  runtime::HealthMonitor mon(1, 2, std::numeric_limits<TimeMs>::infinity(), opts);
  mon.set_expectation(0, 10.0);
  for (int f = 0; f < 50; ++f) {
    runtime::FrameObservation obs;
    obs.dnn = 0;
    obs.frame = f;
    obs.latency_ms = 11.5;  // 15% over: inside the 25% band
    obs.pu_observed_ms = {6.0, 5.5};
    obs.pu_expected_ms = {5.0, 5.0};
    mon.observe(obs);
    EXPECT_EQ(mon.check().symptom, runtime::DriftSymptom::None) << "frame " << f;
  }
}

TEST(FaultHealth, SinglePuThrottleTriggersWithinFewFrames) {
  runtime::HealthOptions opts;
  opts.drift_tolerance = 0.25;
  opts.warmup_frames = 2;
  runtime::HealthMonitor mon(1, 2, std::numeric_limits<TimeMs>::infinity(), opts);
  mon.set_expectation(0, 10.0);
  int triggered_at = -1;
  for (int f = 0; f < 10; ++f) {
    runtime::FrameObservation obs;
    obs.dnn = 0;
    obs.frame = f;
    obs.latency_ms = 20.0;  // 2x the prediction
    obs.pu_observed_ms = {10.0, 5.0};  // PU0 at ratio 2, PU1 nominal
    obs.pu_expected_ms = {5.0, 5.0};
    mon.observe(obs);
    const runtime::DriftReport r = mon.check();
    if (r.symptom != runtime::DriftSymptom::None) {
      EXPECT_EQ(r.symptom, runtime::DriftSymptom::SinglePu);
      EXPECT_EQ(r.pu, 0);
      EXPECT_NEAR(r.severity, 2.0, 0.2);
      triggered_at = f;
      break;
    }
  }
  ASSERT_GE(triggered_at, 0) << "watchdog never fired";
  EXPECT_LE(triggered_at, 4) << "detection latency too high";
}

TEST(FaultHealth, UniformDriftClassifiesGlobal) {
  runtime::HealthMonitor mon(1, 2, std::numeric_limits<TimeMs>::infinity(), {});
  mon.set_expectation(0, 10.0);
  for (int f = 0; f < 6; ++f) {
    runtime::FrameObservation obs;
    obs.dnn = 0;
    obs.frame = f;
    obs.latency_ms = 20.0;
    obs.pu_observed_ms = {10.0, 9.5};  // both PUs ~2x
    obs.pu_expected_ms = {5.0, 5.0};
    mon.observe(obs);
  }
  const runtime::DriftReport r = mon.check();
  EXPECT_EQ(r.symptom, runtime::DriftSymptom::Global);
  EXPECT_GT(r.severity, 1.5);
}

TEST(FaultHealth, RepeatedTimeoutsEscalateToFailure) {
  runtime::HealthOptions opts;
  opts.timeout_quarantine = 2;
  runtime::HealthMonitor mon(2, 2, std::numeric_limits<TimeMs>::infinity(), opts);
  mon.set_expectation(0, 10.0);

  runtime::FrameObservation timeout;
  timeout.dnn = 0;
  timeout.timed_out = true;
  timeout.stuck_pu = 1;
  mon.observe(timeout);
  EXPECT_EQ(mon.check().symptom, runtime::DriftSymptom::None);  // streak of 1

  // A completed frame on that PU clears the streak…
  runtime::FrameObservation good;
  good.dnn = 1;
  good.latency_ms = 10.0;
  good.pu_observed_ms = {0.0, 5.0};
  good.pu_expected_ms = {0.0, 5.0};
  mon.observe(good);
  mon.observe(timeout);
  EXPECT_EQ(mon.check().symptom, runtime::DriftSymptom::None);

  // …but consecutive timeouts escalate, and outrank latency drift.
  mon.observe(timeout);
  const runtime::DriftReport r = mon.check();
  EXPECT_EQ(r.symptom, runtime::DriftSymptom::PuFailure);
  EXPECT_EQ(r.pu, 1);
}

// ---------------------------------------------------------- executor ----

TEST_F(FaultSim, ExecutorRequiresTimeoutForPermanentFailure) {
  faults::FaultPlan plan;
  plan.fail(plat_.dsa(), 1.0);
  runtime::ExecutorOptions opts;
  opts.time_scale = 0.2;
  opts.faults = &plan;
  EXPECT_THROW(runtime::Executor(plat_, opts), PreconditionError);
  opts.frame_timeout_ms = 100.0;
  EXPECT_NO_THROW(runtime::Executor(plat_, opts));
}

TEST_F(FaultSim, ExecutorDropsFramesWedgedOnDeadPu) {
  faults::FaultPlan plan;
  plan.fail(plat_.dsa(), 0.0);
  runtime::ExecutorOptions opts;
  opts.time_scale = 0.1;
  opts.faults = &plan;
  opts.frame_timeout_ms = 40.0;
  const runtime::Executor exec(plat_, opts);

  const sched::Schedule s = pinned(plat_.gpu(), plat_.dsa());
  const int frames = 3;
  const runtime::RunStats stats =
      exec.run(inst_.problem(), [&] { return s; }, frames);

  // The run completed (no hang); the DSA-pinned DNN dropped every frame,
  // the GPU-pinned one completed all of its frames.
  EXPECT_EQ(static_cast<int>(stats.frames.size()), 2 * frames);
  EXPECT_EQ(stats.completed_frames(1), 0);
  EXPECT_EQ(stats.completed_frames(0), frames);
  EXPECT_EQ(stats.timed_out_frames, frames);
  for (const runtime::FrameRecord& f : stats.frames) {
    if (f.dnn == 1) {
      EXPECT_TRUE(f.timed_out);
    }
  }
}

TEST_F(FaultSim, ExecutorStretchesKernelsUnderThrottle) {
  const sched::Schedule s = pinned(plat_.gpu(), plat_.dsa());
  runtime::ExecutorOptions clean;
  // Kernels must dwarf the OS sleep quantum: the executor credits sleep
  // overshoot as progress, so at heavy time compression a throttled
  // kernel finishes in one overshoot-dominated sleep and barely stretches.
  clean.time_scale = 1.0;
  const runtime::RunStats base =
      runtime::Executor(plat_, clean).run(inst_.problem(), [&] { return s; }, 3);

  faults::FaultPlan plan;
  plan.throttle(plat_.gpu(), 0.0, kForever, 3.0);
  runtime::ExecutorOptions faulty = clean;
  faulty.faults = &plan;
  const runtime::RunStats slow =
      runtime::Executor(plat_, faulty).run(inst_.problem(), [&] { return s; }, 3);

  // DNN 0 is pinned to the throttled GPU: its frames must stretch
  // markedly (3x modulo sleep jitter; demand only 1.5x so machine-load
  // spikes, which inflate both runs by the same absolute amount, cannot
  // compress the ratio below the bar).
  EXPECT_GT(slow.mean_latency_ms(0), 1.5 * base.mean_latency_ms(0));
}

// ------------------------------------------------------- self-healing ----

namespace heal {

runtime::SelfHealingOptions tuned(double time_scale) {
  runtime::SelfHealingOptions o;
  o.time_scale = time_scale;
  o.health.warmup_frames = 2;
  o.health.drift_tolerance = 0.25;
  o.health.epsilon_multiple = 0.5;
  o.cooldown_ms = 30.0;
  o.resolve_backoff_ms = 10.0;
  o.readmit_after_ms = 0.0;  // keep quarantines sticky for assertions
  return o;
}

}  // namespace heal

TEST_F(FaultSim, SelfHealingRecoversFromGpuThrottle) {
  const sched::Problem& prob = inst_.problem();
  const sched::ScheduleSolution fresh_clean = hax_.schedule(prob);
  ASSERT_TRUE(fresh_clean.best_found());

  faults::FaultPlan plan;
  plan.throttle(plat_.gpu(), 0.0, kForever, 3.0);

  // --- no mitigation: static pristine-optimal schedule under throttle ---
  // Ground truth (deterministic): the un-healed schedule degrades badly
  // versus its own fault-free performance.
  const TimeMs clean_ms = core::evaluate(prob, fresh_clean.schedule).sim.makespan_ms;
  const TimeMs faulty_ms =
      core::evaluate(prob, fresh_clean.schedule, {.faults = &plan}).sim.makespan_ms;
  EXPECT_GT(faulty_ms, 1.35 * clean_ms) << "throttle too mild for this scenario";

  // --- self-healing run -------------------------------------------------
  // Slower than real time: kernels must dwarf the OS sleep quantum or the
  // watchdog's observed/expected ratios measure wakeup latency, not the
  // injected slowdown.
  const double scale = 2.0;
  runtime::SelfHealingRuntime healer(prob, heal::tuned(scale));
  runtime::ExecutorOptions opts;
  opts.time_scale = scale;
  opts.faults = &plan;
  opts.observer = healer.observer();
  const runtime::Executor exec(plat_, opts);
  const runtime::RunStats stats = exec.run(prob, healer.provider(), 30);
  EXPECT_EQ(static_cast<int>(stats.frames.size()), 60);

  const runtime::HealStats hs = healer.stats();
  EXPECT_GE(hs.interventions, 1) << "watchdog never reacted to the throttle";
  EXPECT_GE(hs.rescales, 1);
  EXPECT_GE(hs.resolves, 2);  // initial solve + at least one re-solve

  // The learned model should be close to the injected 3x slowdown
  // (sleep overshoot biases the estimate upward slightly).
  const soc::PlatformCondition cond = healer.condition();  // by-value snapshot
  const soc::PuCondition& gpu_cond = cond.pu(plat_.gpu());
  EXPECT_EQ(gpu_cond.health, soc::PuHealth::Throttled);
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
  // Sanitizer instrumentation inflates kernel wall time on top of the
  // injected 3x, so only bracket the learned slowdown; the healed-vs-
  // fresh-solve comparison below carries the real acceptance weight.
  EXPECT_GE(1.0 / gpu_cond.frequency_scale, 2.0);
  EXPECT_LE(1.0 / gpu_cond.frequency_scale, 8.0);
#else
  EXPECT_NEAR(1.0 / gpu_cond.frequency_scale, 3.0, 1.0);
#endif

  // --- recovered schedule vs. fresh solve on the throttled platform ----
  // Both judged on the deterministic simulator under the same fault plan.
  healer.wait_converged(5000.0);  // flushes deferred re-solves, adopts
  const sched::Schedule healed = healer.current_schedule();

  std::vector<perf::NetworkProfile> throttled_profiles;
  sched::Problem throttled = prob;
  throttled_profiles.reserve(prob.dnns.size());
  for (std::size_t d = 0; d < prob.dnns.size(); ++d) {
    throttled_profiles.push_back(*prob.dnns[d].profile);
    throttled_profiles.back().scale_pu_time(plat_.gpu(), 3.0);
    throttled.dnns[d].profile = &throttled_profiles[d];
  }
  const sched::ScheduleSolution fresh_throttled = hax_.schedule(throttled);
  ASSERT_TRUE(fresh_throttled.best_found());

  const TimeMs healed_ms = core::evaluate(prob, healed, {.faults = &plan}).sim.makespan_ms;
  const TimeMs fresh_ms =
      core::evaluate(prob, fresh_throttled.schedule, {.faults = &plan}).sim.makespan_ms;
  std::cout << "[heal] clean=" << clean_ms << " no-mitigation=" << faulty_ms
            << " fresh-throttled=" << fresh_ms << " healed=" << healed_ms << '\n';
  EXPECT_LE(healed_ms, 1.15 * fresh_ms)
      << "steady-state schedule not within 15% of a fresh solve";
  EXPECT_LE(healed_ms, faulty_ms * 1.001) << "healing worse than no-mitigation";
}

TEST_F(FaultSim, SelfHealingSurvivesHardPuFailure) {
  const sched::Problem& prob = inst_.problem();
  faults::FaultPlan plan;
  plan.fail(plat_.dsa(), 30.0);  // DSA dies shortly into the run

  const double scale = 0.1;
  runtime::SelfHealingOptions hopts = heal::tuned(scale);
  hopts.health.timeout_quarantine = 2;
  runtime::SelfHealingRuntime healer(prob, hopts);

  runtime::ExecutorOptions opts;
  opts.time_scale = scale;
  opts.faults = &plan;
  opts.frame_timeout_ms = 120.0;
  opts.observer = healer.observer();
  const runtime::Executor exec(plat_, opts);

  // Completes instead of hanging: the watchdog quarantines the dead PU
  // and the fallback keeps both DNNs flowing on what remains.
  const int frames = 14;
  const runtime::RunStats stats = exec.run(prob, healer.provider(), frames);
  EXPECT_EQ(static_cast<int>(stats.frames.size()), 2 * frames);

  // Under sanitizers the watchdog thread can lag the frame loop enough
  // to miss its quarantine verdict within one batch; its timeout counts
  // are cumulative, so feed it more frames (bounded) until it lands.
  // Unsanitized builds exit on the first check.
  for (int round = 0; round < 4 && healer.stats().quarantines == 0; ++round) {
    (void)exec.run(prob, healer.provider(), frames);
  }
  healer.wait_converged(5000.0);  // flush any deferred re-solve before reading

  const runtime::HealStats hs = healer.stats();
  EXPECT_GE(hs.quarantines, 1);
  EXPECT_EQ(healer.condition().pu(plat_.dsa()).health, soc::PuHealth::Quarantined);
  const std::vector<soc::PuId> pus = healer.degraded_problem().pus;  // snapshot copy
  EXPECT_TRUE(std::find(pus.begin(), pus.end(), plat_.dsa()) == pus.end());

  // Some frames died on the way down, but both DNNs finished the tail of
  // the workload on the degraded platform.
  EXPECT_GE(stats.timed_out_frames, 1);
  EXPECT_LT(stats.timed_out_frames, frames);
  EXPECT_GT(stats.completed_frames(0), frames / 2);
  EXPECT_GT(stats.completed_frames(1), frames / 2);

  // The final active schedule is valid on the degraded platform (no
  // work on the dead DSA).
  EXPECT_NO_THROW(
      sched::ensure_valid(healer.degraded_problem(), healer.current_schedule(),
                          {.enforce_transition_budget = false}));
}

}  // namespace
