/// Property-based tests: randomized sweeps over demand vectors, schedules
/// and workloads, asserting the invariants the system's correctness rests
/// on — EMC conservation and fairness, simulator structural invariants,
/// predictor-vs-simulator agreement, and solver optimality against
/// exhaustive enumeration.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>

#include "common/rng.h"
#include "baselines/baselines.h"
#include "core/evaluate.h"
#include "core/haxconn.h"
#include "nn/zoo.h"
#include "sched/formulation.h"
#include "sched/search_space.h"
#include "sched/solve.h"
#include "soc/platform.h"

namespace {

using namespace hax;

// ------------------------------------------------------- EMC properties --

class EmcProperty : public testing::TestWithParam<std::uint64_t> {};

TEST_P(EmcProperty, ArbitrationInvariants) {
  const auto mem = soc::Platform::xavier().memory();
  Rng rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    const int n = 1 + static_cast<int>(rng.uniform_index(4));
    std::vector<GBps> demands;
    for (int i = 0; i < n; ++i) {
      demands.push_back(rng.uniform() < 0.2 ? 0.0 : rng.uniform(0.0, 150.0));
    }
    const auto got = mem.arbitrate(demands);
    ASSERT_EQ(got.size(), demands.size());

    GBps total_got = 0.0, total_demand = 0.0;
    for (std::size_t i = 0; i < demands.size(); ++i) {
      // Never more than asked, never negative.
      EXPECT_LE(got[i], demands[i] + 1e-9);
      EXPECT_GE(got[i], 0.0);
      total_got += got[i];
      total_demand += demands[i];
    }
    // Conservation: total achieved never exceeds the effective capacity.
    const GBps capacity =
        mem.effective_capacity(soc::MemorySystem::effective_requesters(demands));
    EXPECT_LE(total_got, capacity + 1e-9);
    // Work-conserving: either everyone is satisfied or capacity is full.
    if (total_got < total_demand - 1e-9) {
      EXPECT_NEAR(total_got, capacity, 1e-9);
    }
    // Max-min fairness: a requester that got less than its demand must
    // have received at least as much as every other requester's grant.
    for (std::size_t i = 0; i < demands.size(); ++i) {
      if (got[i] >= demands[i] - 1e-9) continue;
      for (std::size_t j = 0; j < demands.size(); ++j) {
        EXPECT_GE(got[i], std::min(got[j], demands[j]) - 1e-9)
            << "trial " << trial << " i=" << i << " j=" << j;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EmcProperty, testing::Values(1u, 2u, 3u));

// ------------------------------------------------ random-schedule sweeps --

struct SweepConfig {
  const char* platform;
  const char* dnn1;
  const char* dnn2;
  std::uint64_t seed;
};

soc::Platform platform_of(const std::string& name) {
  if (name == "orin") return soc::Platform::orin();
  if (name == "xavier") return soc::Platform::xavier();
  return soc::Platform::sd865();
}

/// Random schedule with <= 2 transitions per DNN, respecting support.
sched::Schedule random_schedule(const sched::Problem& prob, Rng& rng) {
  sched::Schedule s;
  for (const sched::DnnSpec& spec : prob.dnns) {
    std::vector<soc::PuId> asg;
    // Pick up to two cut points and PUs per segment; fall back to GPU
    // wherever the drawn PU does not support the group.
    const int n = spec.net->group_count();
    const int cut1 = static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(n) + 1));
    const int cut2 = static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(n) + 1));
    const soc::PuId pus[3] = {
        prob.pus[rng.uniform_index(prob.pus.size())],
        prob.pus[rng.uniform_index(prob.pus.size())],
        prob.pus[rng.uniform_index(prob.pus.size())],
    };
    for (int g = 0; g < n; ++g) {
      soc::PuId pick = pus[(g >= std::min(cut1, cut2)) + (g >= std::max(cut1, cut2))];
      if (!spec.profile->at(g, pick).supported) pick = prob.platform->gpu();
      asg.push_back(pick);
    }
    s.assignment.push_back(std::move(asg));
  }
  return s;
}

class ScheduleSweep : public testing::TestWithParam<SweepConfig> {};

/// The predictor must track the simulator across arbitrary (not just
/// solver-chosen) schedules — this is the property that makes optimizing
/// over predictions meaningful.
TEST_P(ScheduleSweep, PredictionTracksSimulatorOnRandomSchedules) {
  const SweepConfig cfg = GetParam();
  const soc::Platform plat = platform_of(cfg.platform);
  sched::ProblemInstance inst(plat, sched::Objective::MinMaxLatency, {.max_groups = 8});
  inst.add_dnn(nn::zoo::by_name(cfg.dnn1));
  inst.add_dnn(nn::zoo::by_name(cfg.dnn2));
  const sched::Problem& prob = inst.problem();
  const sched::Formulation formulation(prob);
  Rng rng(cfg.seed);

  for (int trial = 0; trial < 12; ++trial) {
    const sched::Schedule s = random_schedule(prob, rng);
    const sched::Prediction pred = formulation.predict(
        s, {.enforce_transition_budget = false, .enforce_epsilon = false});
    ASSERT_TRUE(pred.feasible);
    const core::EvalResult ev = core::evaluate(prob, s);
    EXPECT_NEAR(pred.round_ms, ev.round_latency_ms, 0.08 * ev.round_latency_ms)
        << "trial " << trial << ": " << s.describe(plat);
  }
}

/// Structural simulator invariants under the same random schedules.
TEST_P(ScheduleSweep, SimulatorInvariants) {
  const SweepConfig cfg = GetParam();
  const soc::Platform plat = platform_of(cfg.platform);
  sched::ProblemInstance inst(plat, sched::Objective::MinMaxLatency, {.max_groups = 8});
  inst.add_dnn(nn::zoo::by_name(cfg.dnn1));
  inst.add_dnn(nn::zoo::by_name(cfg.dnn2), /*depends_on=*/-1, /*iterations=*/2);
  const sched::Problem& prob = inst.problem();
  Rng rng(cfg.seed + 1);

  for (int trial = 0; trial < 6; ++trial) {
    const sched::Schedule s = random_schedule(prob, rng);
    const core::EvalResult ev = core::evaluate(prob, s, {.record_trace = true});

    // Makespan bounds: at least the longest standalone chain, at most the
    // fully serialized sum at worst-case stretch.
    TimeMs longest = 0.0, total = 0.0;
    for (const auto& task : ev.sim.tasks) {
      const double iters = static_cast<double>(task.iterations.size());
      longest = std::max(longest, task.standalone_ms * iters);
      total += task.standalone_ms * iters;
    }
    EXPECT_GE(ev.sim.makespan_ms, longest - 1e-6);
    EXPECT_LE(ev.sim.makespan_ms, total * 3.0);

    // PU exclusivity in the trace.
    std::map<int, std::vector<std::pair<TimeMs, TimeMs>>> by_pu;
    for (const auto& r : ev.sim.trace.records()) by_pu[r.pu].push_back({r.start, r.end});
    for (auto& [pu, spans] : by_pu) {
      std::sort(spans.begin(), spans.end());
      for (std::size_t i = 1; i < spans.size(); ++i) {
        ASSERT_GE(spans[i].first, spans[i - 1].second - 1e-9) << "pu " << pu;
      }
    }

    // Iteration spans are ordered and slowdowns >= 1.
    for (const auto& task : ev.sim.tasks) {
      EXPECT_GE(task.avg_slowdown, 1.0 - 1e-9);
      for (std::size_t k = 1; k < task.iterations.size(); ++k) {
        EXPECT_GE(task.iterations[k].start, task.iterations[k - 1].end - 1e-9);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, ScheduleSweep,
    testing::Values(SweepConfig{"xavier", "GoogleNet", "ResNet50", 101},
                    SweepConfig{"xavier", "VGG19", "ResNet152", 202},
                    SweepConfig{"orin", "AlexNet", "Inception", 303},
                    SweepConfig{"orin", "DenseNet", "ResNet101", 404},
                    SweepConfig{"sd865", "GoogleNet", "ResNet18", 505}),
    [](const auto& info) {
      return std::string(info.param.platform) + "_" + info.param.dnn1 + "_" +
             info.param.dnn2;
    });

// ------------------------------------------------- solver vs exhaustive --

class SolverOptimality : public testing::TestWithParam<const char*> {};

/// On small instances the B&B result must equal brute-force enumeration
/// of every assignment through the same predictor.
TEST_P(SolverOptimality, MatchesBruteForce) {
  const soc::Platform plat = soc::Platform::xavier();
  sched::ProblemInstance inst(plat, sched::Objective::MinMaxLatency, {.max_groups = 4});
  inst.add_dnn(nn::zoo::by_name(GetParam()));
  inst.add_dnn(nn::zoo::googlenet());
  sched::Problem& prob = inst.problem();
  prob.max_transitions = 4;  // effectively unconstrained at 4 groups
  const sched::ScheduleSpace space(prob);

  // Brute force over all |pus|^vars assignments.
  const int vars = space.variable_count();
  const int values = static_cast<int>(prob.pus.size());
  std::vector<int> assignment(static_cast<std::size_t>(vars), 0);
  double best = std::numeric_limits<double>::infinity();
  while (true) {
    best = std::min(best, space.evaluate(assignment));
    int i = 0;
    while (i < vars && assignment[static_cast<std::size_t>(i)] == values - 1) {
      assignment[static_cast<std::size_t>(i++)] = 0;
    }
    if (i == vars) break;
    ++assignment[static_cast<std::size_t>(i)];
  }

  const sched::ScheduleSolution sol = sched::solve_schedule(prob);
  ASSERT_TRUE(sol.proven_optimal);
  EXPECT_NEAR(sol.prediction.objective_value, best, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Dnns, SolverOptimality,
                         testing::Values("AlexNet", "ResNet18", "VGG19"));

// ------------------------------------------------------ grouping sweeps --

class GroupingSweep : public testing::TestWithParam<int> {};

TEST_P(GroupingSweep, EveryGranularityStaysValid) {
  const int max_groups = GetParam();
  for (const char* name : {"GoogleNet", "ResNet50", "DenseNet"}) {
    const auto gn = grouping::build_groups(nn::zoo::by_name(name), {.max_groups = max_groups});
    EXPECT_LE(gn.group_count(), max_groups);
    // Total work is preserved at every granularity.
    Flops total = 0;
    for (const auto& g : gn.groups()) total += g.flops;
    EXPECT_EQ(total, gn.network().total_flops()) << name;
    // Boundaries remain clean cuts of the DAG.
    for (int g = 0; g + 1 < gn.group_count(); ++g) {
      EXPECT_TRUE(gn.network().is_clean_cut_after(gn.group(g).last)) << name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Granularities, GroupingSweep, testing::Values(2, 4, 8, 16, 32));

// ------------------------------------------------- fallback guarantee --

class GuaranteeSweep : public testing::TestWithParam<SweepConfig> {};

/// The headline guarantee, across random pairs: HaX-CoNN never loses to
/// either naive baseline on ground truth.
TEST_P(GuaranteeSweep, NeverWorseThanNaive) {
  const SweepConfig cfg = GetParam();
  const soc::Platform plat = platform_of(cfg.platform);
  core::HaxConnOptions o;
  o.grouping.max_groups = 8;
  o.objective = cfg.seed % 2 == 0 ? sched::Objective::MinMaxLatency
                                  : sched::Objective::MaxThroughput;
  const core::HaxConn hax(plat, o);
  auto inst = hax.make_problem({{nn::zoo::by_name(cfg.dnn1)}, {nn::zoo::by_name(cfg.dnn2)}});
  const auto sol = hax.schedule(inst.problem());
  const auto hax_ev = core::evaluate(inst.problem(), sol.schedule);
  for (auto kind : {baselines::Kind::GpuOnly, baselines::Kind::NaiveConcurrent}) {
    const auto base_ev =
        core::evaluate(inst.problem(), baselines::make(kind, inst.problem()));
    EXPECT_LE(hax_ev.round_latency_ms, base_ev.round_latency_ms * 1.06)
        << baselines::name(kind);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, GuaranteeSweep,
    testing::Values(SweepConfig{"orin", "CaffeNet", "DenseNet", 0},
                    SweepConfig{"orin", "SqueezeNet", "Inception", 1},
                    SweepConfig{"xavier", "MobileNet", "ResNet101", 2},
                    SweepConfig{"xavier", "ResNet34", "GoogleNet", 3},
                    SweepConfig{"sd865", "AlexNet", "ResNet50", 4},
                    SweepConfig{"sd865", "VGG16", "GoogleNet", 5}),
    [](const auto& info) {
      return std::string(info.param.platform) + "_" + info.param.dnn1 + "_" +
             info.param.dnn2;
    });

}  // namespace
