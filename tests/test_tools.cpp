/// Tests for the user-facing tooling layers: CFG mode management
/// (Sec 3.5 static scheduling), Gantt rendering, and schedule explanation.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "baselines/baselines.h"
#include "common/error.h"
#include "core/cfg.h"
#include "core/evaluate.h"
#include "core/haxconn.h"
#include "nn/zoo.h"
#include "sched/explain.h"
#include "sim/gantt.h"

namespace {

using namespace hax;

class ToolsFixture : public testing::Test {
 protected:
  ToolsFixture()
      : plat_(soc::Platform::xavier()), hax_(plat_, [] {
          core::HaxConnOptions o;
          o.grouping.max_groups = 6;
          return o;
        }()) {}

  soc::Platform plat_;
  core::HaxConn hax_;
};

// -------------------------------------------------------------------- cfg --

TEST_F(ToolsFixture, CfgModesPrecomputeSchedules) {
  core::CfgManager cfg(hax_);
  const auto& discovery = cfg.add_mode(
      {"discovery", {{nn::zoo::googlenet()}, {nn::zoo::resnet18()}}});
  EXPECT_TRUE(discovery.best_found());
  cfg.add_mode({"tracking", {{nn::zoo::vgg19()}, {nn::zoo::resnet152()}}});

  EXPECT_TRUE(cfg.has_mode("discovery"));
  EXPECT_TRUE(cfg.has_mode("tracking"));
  EXPECT_FALSE(cfg.has_mode("landing"));
  EXPECT_EQ(cfg.mode_names().size(), 2u);

  // Runtime toggling: schedules are valid for their problems.
  for (const std::string& mode : cfg.mode_names()) {
    const auto ev = core::evaluate(cfg.problem(mode), cfg.schedule(mode));
    EXPECT_GT(ev.round_latency_ms, 0.0) << mode;
  }
}

TEST_F(ToolsFixture, CfgScheduleAtLeastAsGoodAsNaive) {
  core::CfgManager cfg(hax_);
  cfg.add_mode({"m", {{nn::zoo::vgg19()}, {nn::zoo::resnet152()}}});
  const TimeMs hax_lat = core::evaluate(cfg.problem("m"), cfg.schedule("m")).round_latency_ms;
  const TimeMs base_lat =
      core::evaluate(cfg.problem("m"), baselines::gpu_only(cfg.problem("m"))).round_latency_ms;
  EXPECT_LE(hax_lat, base_lat * 1.05);
}

TEST_F(ToolsFixture, CfgRejectsMisuse) {
  core::CfgManager cfg(hax_);
  cfg.add_mode({"a", {{nn::zoo::alexnet()}}});
  EXPECT_THROW(cfg.add_mode({"a", {{nn::zoo::alexnet()}}}), PreconditionError);
  EXPECT_THROW(cfg.add_mode({"", {{nn::zoo::alexnet()}}}), PreconditionError);
  EXPECT_THROW(cfg.add_mode({"b", {}}), PreconditionError);
  EXPECT_THROW((void)cfg.problem("zzz"), PreconditionError);
  EXPECT_THROW((void)cfg.schedule("zzz"), PreconditionError);
}

TEST_F(ToolsFixture, CfgSaveLoadRoundTrip) {
  const std::string dir = testing::TempDir() + "/hax_cfg_test";
  std::filesystem::create_directories(dir);

  core::CfgManager cfg(hax_);
  cfg.add_mode({"m1", {{nn::zoo::googlenet()}, {nn::zoo::resnet18()}}});
  const sched::Schedule original = cfg.schedule("m1");
  cfg.save_schedules(dir);
  cfg.load_schedules(dir);
  EXPECT_EQ(cfg.schedule("m1"), original);
  EXPECT_FALSE(cfg.solution("m1").proven_optimal);  // external = no proof

  std::filesystem::remove_all(dir);
}

// ------------------------------------------------------------------ gantt --

TEST_F(ToolsFixture, GanttRendersAllBusyPus) {
  auto inst = hax_.make_problem({{nn::zoo::googlenet()}, {nn::zoo::resnet18()}});
  const auto ev = core::evaluate(inst.problem(), baselines::naive_concurrent(inst.problem()),
                                 {.record_trace = true});
  const std::string g = sim::render_gantt(ev.sim.trace, plat_, {.width = 60});
  EXPECT_NE(g.find("GPU"), std::string::npos);
  EXPECT_NE(g.find("DLA"), std::string::npos);
  EXPECT_NE(g.find('0'), std::string::npos);  // DNN 0 slices
  EXPECT_NE(g.find('1'), std::string::npos);  // DNN 1 slices
  EXPECT_NE(g.find("ms"), std::string::npos);  // time axis footer
}

TEST_F(ToolsFixture, GanttMarksTransitionsAndContention) {
  auto inst = hax_.make_problem({{nn::zoo::vgg19()}, {nn::zoo::resnet152()}});
  const auto sol = hax_.schedule(inst.problem());
  ASSERT_GT(sol.schedule.total_transitions(), 0);
  const auto ev = core::evaluate(inst.problem(), sol.schedule, {.record_trace = true});
  const std::string g = sim::render_gantt(ev.sim.trace, plat_, {.width = 120});
  EXPECT_NE(g.find('t'), std::string::npos);  // transition leg
  EXPECT_NE(g.find('*'), std::string::npos);  // contended stretch
  // Contention sub-rows can be disabled.
  const std::string quiet =
      sim::render_gantt(ev.sim.trace, plat_, {.width = 120, .show_contention = false});
  EXPECT_EQ(quiet.find('*'), std::string::npos);
}

TEST(Gantt, RejectsBadInput) {
  const sim::Trace empty;
  const auto plat = soc::Platform::orin();
  EXPECT_THROW((void)sim::render_gantt(empty, plat), PreconditionError);
}

// ---------------------------------------------------------------- explain --

TEST_F(ToolsFixture, ExplainListsEveryGroup) {
  auto inst = hax_.make_problem({{nn::zoo::googlenet()}, {nn::zoo::resnet18()}});
  const auto sol = hax_.schedule(inst.problem());
  const std::string text = sched::explain_schedule(inst.problem(), sol.schedule);
  // Every group label appears.
  for (int d = 0; d < inst.problem().dnn_count(); ++d) {
    const auto& gn = *inst.problem().dnns[static_cast<std::size_t>(d)].net;
    for (int g = 0; g < gn.group_count(); ++g) {
      EXPECT_NE(text.find(gn.group(g).label), std::string::npos) << gn.group(g).label;
    }
  }
  // The chosen assignment is bracketed and the prediction summarized.
  EXPECT_NE(text.find('['), std::string::npos);
  EXPECT_NE(text.find("prediction:"), std::string::npos);
  EXPECT_NE(text.find("GoogleNet"), std::string::npos);
}

TEST_F(ToolsFixture, ExplainShowsTransitionCosts) {
  auto inst = hax_.make_problem({{nn::zoo::vgg19()}, {nn::zoo::resnet152()}});
  const auto sol = hax_.schedule(inst.problem());
  ASSERT_GT(sol.schedule.total_transitions(), 0);
  const std::string text = sched::explain_schedule(inst.problem(), sol.schedule);
  EXPECT_NE(text.find("->"), std::string::npos);  // a PU->PU transition row
}

TEST_F(ToolsFixture, ExplainValidatesShape) {
  auto inst = hax_.make_problem({{nn::zoo::alexnet()}});
  sched::Schedule wrong;
  wrong.assignment = {{plat_.gpu()}, {plat_.gpu()}};
  EXPECT_THROW((void)sched::explain_schedule(inst.problem(), wrong), PreconditionError);
}

// ----------------------------------------------- problem instance moves --

TEST(ProblemInstanceMove, PointersReanchoredAfterMove) {
  const auto plat = soc::Platform::xavier();
  core::HaxConnOptions o;
  o.grouping.max_groups = 5;
  const core::HaxConn hax(plat, o);
  // Force a move into heap storage (what CfgManager does).
  auto holder = std::make_unique<sched::ProblemInstance>(
      hax.make_problem({{nn::zoo::alexnet()}, {nn::zoo::resnet18()}}));
  const sched::Problem& prob = holder->problem();
  EXPECT_NO_THROW(prob.validate());
  // The contention model pointer must target the moved-to instance: using
  // it through the formulation would crash/corrupt otherwise.
  const auto sol = hax.schedule(prob);
  EXPECT_TRUE(sol.best_found());

  // Move-assign as well.
  sched::ProblemInstance other = hax.make_problem({{nn::zoo::googlenet()}});
  other = std::move(*holder);
  EXPECT_NO_THROW(other.problem().validate());
  EXPECT_EQ(other.problem().dnn_count(), 2);
}

}  // namespace
