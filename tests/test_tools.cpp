/// Tests for the user-facing tooling layers: CFG mode management
/// (Sec 3.5 static scheduling), Gantt rendering, and schedule explanation.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "baselines/baselines.h"
#include "common/error.h"
#include "core/cfg.h"
#include "core/evaluate.h"
#include "core/haxconn.h"
#include "nn/zoo.h"
#include "sched/explain.h"
#include "sim/gantt.h"

#include "lint/lint.h"

namespace {

using namespace hax;

class ToolsFixture : public testing::Test {
 protected:
  ToolsFixture()
      : plat_(soc::Platform::xavier()), hax_(plat_, [] {
          core::HaxConnOptions o;
          o.grouping.max_groups = 6;
          return o;
        }()) {}

  soc::Platform plat_;
  core::HaxConn hax_;
};

// -------------------------------------------------------------------- cfg --

TEST_F(ToolsFixture, CfgModesPrecomputeSchedules) {
  core::CfgManager cfg(hax_);
  const auto& discovery = cfg.add_mode(
      {"discovery", {{nn::zoo::googlenet()}, {nn::zoo::resnet18()}}});
  EXPECT_TRUE(discovery.best_found());
  cfg.add_mode({"tracking", {{nn::zoo::vgg19()}, {nn::zoo::resnet152()}}});

  EXPECT_TRUE(cfg.has_mode("discovery"));
  EXPECT_TRUE(cfg.has_mode("tracking"));
  EXPECT_FALSE(cfg.has_mode("landing"));
  EXPECT_EQ(cfg.mode_names().size(), 2u);

  // Runtime toggling: schedules are valid for their problems.
  for (const std::string& mode : cfg.mode_names()) {
    const auto ev = core::evaluate(cfg.problem(mode), cfg.schedule(mode));
    EXPECT_GT(ev.round_latency_ms, 0.0) << mode;
  }
}

TEST_F(ToolsFixture, CfgScheduleAtLeastAsGoodAsNaive) {
  core::CfgManager cfg(hax_);
  cfg.add_mode({"m", {{nn::zoo::vgg19()}, {nn::zoo::resnet152()}}});
  const TimeMs hax_lat = core::evaluate(cfg.problem("m"), cfg.schedule("m")).round_latency_ms;
  const TimeMs base_lat =
      core::evaluate(cfg.problem("m"), baselines::gpu_only(cfg.problem("m"))).round_latency_ms;
  EXPECT_LE(hax_lat, base_lat * 1.05);
}

TEST_F(ToolsFixture, CfgRejectsMisuse) {
  core::CfgManager cfg(hax_);
  cfg.add_mode({"a", {{nn::zoo::alexnet()}}});
  EXPECT_THROW(cfg.add_mode({"a", {{nn::zoo::alexnet()}}}), PreconditionError);
  EXPECT_THROW(cfg.add_mode({"", {{nn::zoo::alexnet()}}}), PreconditionError);
  EXPECT_THROW(cfg.add_mode({"b", {}}), PreconditionError);
  EXPECT_THROW((void)cfg.problem("zzz"), PreconditionError);
  EXPECT_THROW((void)cfg.schedule("zzz"), PreconditionError);
}

TEST_F(ToolsFixture, CfgSaveLoadRoundTrip) {
  const std::string dir = testing::TempDir() + "/hax_cfg_test";
  std::filesystem::create_directories(dir);

  core::CfgManager cfg(hax_);
  cfg.add_mode({"m1", {{nn::zoo::googlenet()}, {nn::zoo::resnet18()}}});
  const sched::Schedule original = cfg.schedule("m1");
  cfg.save_schedules(dir);
  cfg.load_schedules(dir);
  EXPECT_EQ(cfg.schedule("m1"), original);
  EXPECT_FALSE(cfg.solution("m1").proven_optimal);  // external = no proof

  std::filesystem::remove_all(dir);
}

// ------------------------------------------------------------------ gantt --

TEST_F(ToolsFixture, GanttRendersAllBusyPus) {
  auto inst = hax_.make_problem({{nn::zoo::googlenet()}, {nn::zoo::resnet18()}});
  const auto ev = core::evaluate(inst.problem(), baselines::naive_concurrent(inst.problem()),
                                 {.record_trace = true});
  const std::string g = sim::render_gantt(ev.sim.trace, plat_, {.width = 60});
  EXPECT_NE(g.find("GPU"), std::string::npos);
  EXPECT_NE(g.find("DLA"), std::string::npos);
  EXPECT_NE(g.find('0'), std::string::npos);  // DNN 0 slices
  EXPECT_NE(g.find('1'), std::string::npos);  // DNN 1 slices
  EXPECT_NE(g.find("ms"), std::string::npos);  // time axis footer
}

TEST_F(ToolsFixture, GanttMarksTransitionsAndContention) {
  auto inst = hax_.make_problem({{nn::zoo::vgg19()}, {nn::zoo::resnet152()}});
  const auto sol = hax_.schedule(inst.problem());
  ASSERT_GT(sol.schedule.total_transitions(), 0);
  const auto ev = core::evaluate(inst.problem(), sol.schedule, {.record_trace = true});
  const std::string g = sim::render_gantt(ev.sim.trace, plat_, {.width = 120});
  EXPECT_NE(g.find('t'), std::string::npos);  // transition leg
  EXPECT_NE(g.find('*'), std::string::npos);  // contended stretch
  // Contention sub-rows can be disabled.
  const std::string quiet =
      sim::render_gantt(ev.sim.trace, plat_, {.width = 120, .show_contention = false});
  EXPECT_EQ(quiet.find('*'), std::string::npos);
}

TEST(Gantt, RejectsBadInput) {
  const sim::Trace empty;
  const auto plat = soc::Platform::orin();
  EXPECT_THROW((void)sim::render_gantt(empty, plat), PreconditionError);
}

// ---------------------------------------------------------------- explain --

TEST_F(ToolsFixture, ExplainListsEveryGroup) {
  auto inst = hax_.make_problem({{nn::zoo::googlenet()}, {nn::zoo::resnet18()}});
  const auto sol = hax_.schedule(inst.problem());
  const std::string text = sched::explain_schedule(inst.problem(), sol.schedule);
  // Every group label appears.
  for (int d = 0; d < inst.problem().dnn_count(); ++d) {
    const auto& gn = *inst.problem().dnns[static_cast<std::size_t>(d)].net;
    for (int g = 0; g < gn.group_count(); ++g) {
      EXPECT_NE(text.find(gn.group(g).label), std::string::npos) << gn.group(g).label;
    }
  }
  // The chosen assignment is bracketed and the prediction summarized.
  EXPECT_NE(text.find('['), std::string::npos);
  EXPECT_NE(text.find("prediction:"), std::string::npos);
  EXPECT_NE(text.find("GoogleNet"), std::string::npos);
}

TEST_F(ToolsFixture, ExplainShowsTransitionCosts) {
  auto inst = hax_.make_problem({{nn::zoo::vgg19()}, {nn::zoo::resnet152()}});
  const auto sol = hax_.schedule(inst.problem());
  ASSERT_GT(sol.schedule.total_transitions(), 0);
  const std::string text = sched::explain_schedule(inst.problem(), sol.schedule);
  EXPECT_NE(text.find("->"), std::string::npos);  // a PU->PU transition row
}

TEST_F(ToolsFixture, ExplainValidatesShape) {
  auto inst = hax_.make_problem({{nn::zoo::alexnet()}});
  sched::Schedule wrong;
  wrong.assignment = {{plat_.gpu()}, {plat_.gpu()}};
  EXPECT_THROW((void)sched::explain_schedule(inst.problem(), wrong), PreconditionError);
}

// ----------------------------------------------- problem instance moves --

TEST(ProblemInstanceMove, PointersReanchoredAfterMove) {
  const auto plat = soc::Platform::xavier();
  core::HaxConnOptions o;
  o.grouping.max_groups = 5;
  const core::HaxConn hax(plat, o);
  // Force a move into heap storage (what CfgManager does).
  auto holder = std::make_unique<sched::ProblemInstance>(
      hax.make_problem({{nn::zoo::alexnet()}, {nn::zoo::resnet18()}}));
  const sched::Problem& prob = holder->problem();
  EXPECT_NO_THROW(prob.validate());
  // The contention model pointer must target the moved-to instance: using
  // it through the formulation would crash/corrupt otherwise.
  const auto sol = hax.schedule(prob);
  EXPECT_TRUE(sol.best_found());

  // Move-assign as well.
  sched::ProblemInstance other = hax.make_problem({{nn::zoo::googlenet()}});
  other = std::move(*holder);
  EXPECT_NO_THROW(other.problem().validate());
  EXPECT_EQ(other.problem().dnn_count(), 2);
}

// ------------------------------------------------------------- hax_lint --

/// Loads a deliberate-violation fixture from tests/lint_fixtures/.
std::string read_fixture(const std::string& name) {
  const std::filesystem::path path = std::filesystem::path(HAX_LINT_FIXTURE_DIR) / name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture: " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::vector<std::string> rules_of(const std::vector<lint::Finding>& findings) {
  std::vector<std::string> rules;
  rules.reserve(findings.size());
  for (const lint::Finding& f : findings) rules.push_back(f.rule);
  return rules;
}

TEST(HaxLint, RawMutexFlaggedInSrcOnly) {
  const std::string src = read_fixture("raw_mutex_hit.cpp");
  const auto in_src = lint::scan_source("src/core/foo.cpp", src);
  ASSERT_FALSE(in_src.empty());
  for (const lint::Finding& f : in_src) EXPECT_EQ(f.rule, "raw-mutex");
  // std::mutex member + std::lock_guard<std::mutex> line -> 3 token hits.
  EXPECT_EQ(in_src.size(), 3u);

  // The same content is legal in tests (raw primitives allowed there)...
  EXPECT_TRUE(lint::scan_source("tests/foo.cpp", src).empty());
  // ...and in the one sanctioned src file, the wrapper itself.
  EXPECT_TRUE(lint::scan_source("src/common/annotated.h",
                                "#pragma once\n" + src)
                  .empty());
}

TEST(HaxLint, LineSuppressionSilencesExactRule) {
  const std::string src = read_fixture("raw_mutex_suppressed.cpp");
  EXPECT_TRUE(lint::scan_source("src/core/foo.cpp", src).empty());
  // The suppression names raw-mutex only; an unrelated rule still fires.
  const auto nondet = lint::scan_source(
      "src/solver/foo.cpp", "int x = rand();  // hax-lint: allow(raw-mutex)\n");
  ASSERT_EQ(nondet.size(), 1u);
  EXPECT_EQ(nondet[0].rule, "nondet");
}

TEST(HaxLint, CommaSeparatedAllowSuppressesEachNamedRule) {
  // allow(a,b) names two rules on one line; both are suppressed, a third
  // is not. (The parser used to treat "a,b" as one unknown rule name.)
  const std::string both =
      "static std::mutex m; int x = rand();"
      "  // hax-lint: allow(raw-mutex, nondet)\n";
  EXPECT_TRUE(lint::scan_source("src/solver/foo.cpp", both).empty());

  const std::string partial =
      "static std::mutex m; int x = rand();"
      "  // hax-lint: allow(raw-mutex, cout)\n";
  const auto findings = lint::scan_source("src/solver/foo.cpp", partial);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "nondet");
}

TEST(HaxLint, NondetFlaggedInDeterministicCoreOnly) {
  const std::string src = read_fixture("nondet_hit.cpp");
  const auto findings = lint::scan_source("src/solver/foo.cpp", src);
  ASSERT_EQ(findings.size(), 3u);  // random_device, system_clock, rand(
  for (const lint::Finding& f : findings) EXPECT_EQ(f.rule, "nondet");
  // Outside the deterministic core (e.g. model zoo) the rule is off.
  EXPECT_TRUE(lint::scan_source("src/nn/foo.cpp", src).empty());
}

TEST(HaxLint, CommentsAndStringsNeverMatch) {
  const std::string src = read_fixture("nondet_comment_only.cpp");
  EXPECT_TRUE(lint::scan_source("src/sim/foo.cpp", src).empty());
}

TEST(HaxLint, FileSuppressionCoversWholeFile) {
  const std::string src = read_fixture("allow_file.cpp");
  EXPECT_TRUE(lint::scan_source("src/faults/foo.cpp", src).empty());
}

TEST(HaxLint, CoutFlaggedEverywhereButExamples) {
  const std::string src = read_fixture("cout_hit.cpp");
  const auto findings = lint::scan_source("src/sched/foo.cpp", src);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "cout");
  // bench/ and tools/ are now in scope (they have structured output
  // helpers of their own); only examples/ may print freely.
  EXPECT_FALSE(lint::scan_source("tools/report/foo.cpp", src).empty());
  EXPECT_FALSE(lint::scan_source("bench/foo.cpp", src).empty());
  EXPECT_TRUE(lint::scan_source("examples/foo.cpp", src).empty());
}

TEST(HaxLint, HeaderHygiene) {
  const auto bad = lint::scan_source("src/soc/bad.h", read_fixture("header_bad.h"));
  EXPECT_EQ(rules_of(bad), (std::vector<std::string>{"pragma-once", "using-namespace"}));
  EXPECT_TRUE(lint::scan_source("src/soc/good.h", read_fixture("header_good.h")).empty());
  // The pragma-once rule only applies to headers.
  EXPECT_TRUE(lint::scan_source("tests/no_pragma.cpp", "int x = 0;\n").empty());
}

TEST(HaxLint, SrandTokenDoesNotDoubleCountRand) {
  const auto findings =
      lint::scan_source("src/sim/foo.cpp", "void f() { srand(42); }\n");
  ASSERT_EQ(findings.size(), 1u);  // srand( only; "rand(" is embedded in an identifier
  EXPECT_NE(findings[0].message.find("srand("), std::string::npos);
}

TEST(HaxLint, BatchEvaluatorSourcesAreInDeterministicScope) {
  // The batched SoA evaluator lives under src/sched/ — the deterministic
  // core — so both the nondet and raw-mutex rules must cover it exactly
  // as they cover the scalar evaluator. Guards against the batch path
  // drifting out of lint scope (e.g. moving to an unscanned directory).
  const std::string nondet_src = read_fixture("nondet_hit.cpp");
  const auto nondet = lint::scan_source("src/sched/formulation_batch.cpp", nondet_src);
  ASSERT_EQ(nondet.size(), 3u);  // random_device, system_clock, rand(
  for (const lint::Finding& f : nondet) EXPECT_EQ(f.rule, "nondet");

  const auto mutex = lint::scan_source("src/sched/formulation_batch.cpp",
                                       read_fixture("raw_mutex_hit.cpp"));
  ASSERT_FALSE(mutex.empty());
  EXPECT_EQ(mutex[0].rule, "raw-mutex");

  // The batch test suite is scanned too (pragma-once / using-namespace
  // header hygiene applies), but the src-only rules stay off there.
  EXPECT_TRUE(lint::scan_source("tests/test_batch.cpp", nondet_src).empty());
}

TEST(HaxLint, FleetSourcesAreInDeterministicScope) {
  // src/fleet/ carries the replication bus and the device-fleet replay —
  // both bit-identical-replay surfaces — so the nondet and raw-mutex
  // rules must police it like the rest of the deterministic core.
  const std::string nondet_src = read_fixture("nondet_hit.cpp");
  const auto nondet = lint::scan_source("src/fleet/replication.cpp", nondet_src);
  ASSERT_EQ(nondet.size(), 3u);  // random_device, system_clock, rand(
  for (const lint::Finding& f : nondet) EXPECT_EQ(f.rule, "nondet");

  const auto mutex =
      lint::scan_source("src/fleet/fleet.cpp", read_fixture("raw_mutex_hit.cpp"));
  ASSERT_FALSE(mutex.empty());
  EXPECT_EQ(mutex[0].rule, "raw-mutex");
}

TEST(HaxLint, FormatIsFileLineRuleMessage) {
  const auto findings = lint::scan_source("src/core/x.cpp", "std::mutex m;\n");
  ASSERT_EQ(findings.size(), 1u);
  const std::string line = lint::format(findings);
  EXPECT_EQ(line.rfind("src/core/x.cpp:1: [raw-mutex]", 0), 0u) << line;
}

}  // namespace
