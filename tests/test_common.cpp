/// Unit tests for src/common: stats, csv, table, rng, strings, errors.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/csv.h"
#include "common/error.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/string_util.h"
#include "common/table.h"
#include "common/thread_pool.h"
#include "common/types.h"

namespace {

using namespace hax;

// ---------------------------------------------------------------- types --

TEST(Types, BytesOverMs) {
  // 1e9 bytes in 1000 ms == 1 GB/s.
  EXPECT_DOUBLE_EQ(bytes_over_ms(1'000'000'000, 1000.0), 1.0);
  EXPECT_DOUBLE_EQ(bytes_over_ms(123, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(bytes_over_ms(123, -1.0), 0.0);
}

TEST(Types, MsForBytes) {
  EXPECT_DOUBLE_EQ(ms_for_bytes(1'000'000'000, 1.0), 1000.0);
  EXPECT_DOUBLE_EQ(ms_for_bytes(1'000'000, 100.0), 0.01);
  EXPECT_DOUBLE_EQ(ms_for_bytes(123, 0.0), 0.0);
}

TEST(Types, MsForFlops) {
  // 1 GFLOP at 1 GFLOP/s = 1000 ms.
  EXPECT_DOUBLE_EQ(ms_for_flops(1'000'000'000, 1.0), 1000.0);
  EXPECT_DOUBLE_EQ(ms_for_flops(500, 0.0), 0.0);
}

TEST(Types, RoundTripBandwidth) {
  const Bytes bytes = 42'000'000;
  const GBps bw = 37.5;
  const TimeMs t = ms_for_bytes(bytes, bw);
  EXPECT_NEAR(bytes_over_ms(bytes, t), bw, 1e-9);
}

// ---------------------------------------------------------------- stats --

TEST(Stats, SumAndMean) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(stats::sum(xs), 10.0);
  EXPECT_DOUBLE_EQ(stats::mean(xs), 2.5);
  EXPECT_DOUBLE_EQ(stats::mean({}), 0.0);
}

TEST(Stats, Stdev) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_NEAR(stats::stdev(xs), 2.138, 1e-3);
  EXPECT_DOUBLE_EQ(stats::stdev(std::vector<double>{1.0}), 0.0);
}

TEST(Stats, MinMax) {
  const std::vector<double> xs{3.0, -1.0, 2.0};
  EXPECT_DOUBLE_EQ(stats::min(xs), -1.0);
  EXPECT_DOUBLE_EQ(stats::max(xs), 3.0);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> xs{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(stats::percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(stats::percentile(xs, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(stats::percentile(xs, 50.0), 25.0);
}

TEST(Stats, PercentileRejectsBadInput) {
  EXPECT_THROW((void)stats::percentile({}, 50.0), PreconditionError);
  const std::vector<double> xs{1.0};
  EXPECT_THROW((void)stats::percentile(xs, -1.0), PreconditionError);
  EXPECT_THROW((void)stats::percentile(xs, 101.0), PreconditionError);
}

TEST(Stats, Geomean) {
  const std::vector<double> xs{1.0, 4.0, 16.0};
  EXPECT_NEAR(stats::geomean(xs), 4.0, 1e-12);
  EXPECT_THROW((void)stats::geomean(std::vector<double>{1.0, -1.0}), PreconditionError);
  EXPECT_THROW((void)stats::geomean({}), PreconditionError);
}

TEST(Stats, AccumulatorMatchesBatch) {
  const std::vector<double> xs{3.1, -2.0, 7.7, 0.0, 5.5};
  stats::Accumulator acc;
  for (double x : xs) acc.add(x);
  EXPECT_EQ(acc.count(), xs.size());
  EXPECT_NEAR(acc.mean(), stats::mean(xs), 1e-12);
  EXPECT_NEAR(acc.stdev(), stats::stdev(xs), 1e-12);
  EXPECT_DOUBLE_EQ(acc.min(), -2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 7.7);
}

TEST(Stats, AccumulatorEmpty) {
  const stats::Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  EXPECT_DOUBLE_EQ(acc.stdev(), 0.0);
}

// ------------------------------------------------------------ p2quantile --

TEST(P2Quantile, EmptyIsNaN) {
  const stats::P2Quantile q(0.5);
  EXPECT_TRUE(std::isnan(q.value()));
  EXPECT_EQ(q.count(), 0u);
  EXPECT_DOUBLE_EQ(q.quantile(), 0.5);
}

TEST(P2Quantile, ExactUnderFiveObservations) {
  stats::P2Quantile q(0.5);
  q.add(9.0);
  EXPECT_DOUBLE_EQ(q.value(), 9.0);
  q.add(1.0);
  q.add(5.0);
  // Median order statistic of {1, 5, 9}.
  EXPECT_DOUBLE_EQ(q.value(), 5.0);
}

TEST(P2Quantile, RejectsBadQuantile) {
  EXPECT_THROW(stats::P2Quantile(0.0), PreconditionError);
  EXPECT_THROW(stats::P2Quantile(1.0), PreconditionError);
  EXPECT_THROW(stats::P2Quantile(-0.3), PreconditionError);
}

TEST(P2Quantile, TracksUniformStream) {
  // Against the exact sort-based percentile on a uniform stream: the
  // classic P² accuracy regime (relative error well under a few percent
  // at this stream length).
  Rng rng(42);
  stats::P2Quantile p50(0.50), p95(0.95), p99(0.99);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.uniform(10.0, 110.0);
    xs.push_back(x);
    p50.add(x);
    p95.add(x);
    p99.add(x);
  }
  EXPECT_NEAR(p50.value(), stats::percentile(xs, 50.0), 2.0);
  EXPECT_NEAR(p95.value(), stats::percentile(xs, 95.0), 2.0);
  EXPECT_NEAR(p99.value(), stats::percentile(xs, 99.0), 2.0);
  EXPECT_LT(p50.value(), p95.value());
  EXPECT_LT(p95.value(), p99.value());
}

TEST(P2Quantile, TracksBimodalStream) {
  // Latency-like shape: a fast mode with a heavy slow tail. The p99 must
  // land in the slow mode, the p50 in the fast one.
  Rng rng(7);
  stats::P2Quantile p50(0.50), p99(0.99);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) {
    const double x =
        rng.uniform() < 0.95 ? rng.uniform(1.0, 2.0) : rng.uniform(50.0, 60.0);
    xs.push_back(x);
    p50.add(x);
    p99.add(x);
  }
  EXPECT_NEAR(p50.value(), stats::percentile(xs, 50.0), 0.1);
  EXPECT_NEAR(p99.value(), stats::percentile(xs, 99.0), 3.0);
}

TEST(P2Quantile, DeterministicReplay) {
  Rng rng(3);
  std::vector<double> xs;
  for (int i = 0; i < 1000; ++i) xs.push_back(rng.normal(20.0, 5.0));
  stats::P2Quantile a(0.95), b(0.95);
  for (double x : xs) a.add(x);
  for (double x : xs) b.add(x);
  EXPECT_EQ(a.value(), b.value());  // bit-identical, not just close
  EXPECT_EQ(a.count(), b.count());
}

TEST(P2Quantile, MergeExactWhenEitherSideIsSmall) {
  // Under five observations an estimator is still raw samples, so a merge
  // in either direction reproduces the exact order statistic.
  stats::P2Quantile small(0.5), big(0.5);
  small.add(100.0);
  small.add(1.0);
  Rng rng(11);
  std::vector<double> xs{100.0, 1.0};
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(10.0, 20.0);
    xs.push_back(x);
    big.add(x);
  }
  stats::P2Quantile merged(0.5);
  merged.merge(big);
  merged.merge(small);
  EXPECT_EQ(merged.count(), xs.size());
  EXPECT_NEAR(merged.value(), stats::percentile(xs, 50.0), 1.0);

  // Merging an empty estimator is a no-op.
  const double before = merged.value();
  merged.merge(stats::P2Quantile(0.5));
  EXPECT_EQ(merged.value(), before);
}

TEST(P2Quantile, MergeTracksExactPercentileOfConcatenatedStreams) {
  // The fleet's cross-broker aggregation: each "broker" digests its own
  // latency stream, the merged digest must approximate the percentile of
  // the concatenation. Streams are deliberately dissimilar (one fast
  // broker, one slow, one bimodal) so the merge cannot cheat by assuming
  // identical distributions.
  Rng rng(19);
  std::vector<double> all;
  std::vector<stats::P2Quantile> brokers;
  for (int b = 0; b < 3; ++b) brokers.emplace_back(0.95);
  const double lo[3] = {1.0, 8.0, 2.0};  // fast / slow / medium broker
  const double hi[3] = {3.0, 12.0, 6.0};
  for (int i = 0; i < 6000; ++i) {
    const int b = i % 3;
    const double x = rng.uniform(lo[b], hi[b]);
    all.push_back(x);
    brokers[static_cast<std::size_t>(b)].add(x);
  }
  stats::P2Quantile merged(0.95);
  for (const auto& broker : brokers) merged.merge(broker);
  EXPECT_EQ(merged.count(), all.size());
  const double exact = stats::percentile(all, 95.0);
  // Accuracy bound: P² error plus the marker-CDF interpolation — well
  // within 15% relative for unimodal per-broker streams (the marker curve
  // reconstructs a uniform CDF almost exactly). Extreme bimodal brokers
  // degrade gracefully instead (sanity-bounded below).
  EXPECT_NEAR(merged.value(), exact, 0.15 * exact);

  // Deterministic: merging the same digests again replays bit-identically.
  stats::P2Quantile again(0.95);
  for (const auto& broker : brokers) again.merge(broker);
  EXPECT_EQ(merged.value(), again.value());
}

TEST(P2Quantile, MergeOfHeavyTailedStreamStaysBracketed) {
  // A broker whose latency is 90% fast / 10% far tail is the worst case
  // for the five-marker CDF reconstruction (mass between the p47.5 and
  // p95 markers smears linearly across the bimodal gap). The estimate
  // may drift inside the gap, but it must stay bracketed by the
  // concatenation's median and maximum — never collapse to the fast mode
  // or overshoot the tail.
  Rng rng(23);
  std::vector<double> all;
  stats::P2Quantile fast(0.95), tailed(0.95);
  for (int i = 0; i < 4000; ++i) {
    const double x = rng.uniform(1.0, 2.0);
    all.push_back(x);
    fast.add(x);
  }
  for (int i = 0; i < 4000; ++i) {
    const double x = rng.uniform() < 0.9 ? rng.uniform(1.0, 2.0) : rng.uniform(40.0, 50.0);
    all.push_back(x);
    tailed.add(x);
  }
  stats::P2Quantile merged(0.95);
  merged.merge(fast);
  merged.merge(tailed);
  EXPECT_EQ(merged.count(), all.size());
  EXPECT_GT(merged.value(), stats::percentile(all, 50.0));
  EXPECT_LE(merged.value(), stats::max(all));
}

// ------------------------------------------------------------------ csv --

TEST(Csv, EscapePlain) { EXPECT_EQ(CsvWriter::escape("hello"), "hello"); }

TEST(Csv, EscapeSpecials) {
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, WritesFile) {
  const std::string path = testing::TempDir() + "/hax_csv_test.csv";
  {
    CsvWriter csv(path);
    csv.row({"a", "b,c"});
    csv.row({"1", "2"});
  }
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), "a,\"b,c\"\n1,2\n");
  std::remove(path.c_str());
}

TEST(Csv, ThrowsOnBadPath) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir-xyz/file.csv"), std::runtime_error);
}

// ---------------------------------------------------------------- table --

TEST(Table, RendersAligned) {
  TextTable t;
  t.header({"name", "value"});
  t.row({"x", "1"});
  t.row({"longer", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| name   | value |"), std::string::npos);
  EXPECT_NE(out.find("| longer | 22    |"), std::string::npos);
}

TEST(Table, PadsShortRows) {
  TextTable t;
  t.header({"a", "b", "c"});
  t.row({"1"});
  EXPECT_NE(t.render().find("| 1 |   |   |"), std::string::npos);
}

TEST(Table, RejectsMisuse) {
  TextTable t;
  EXPECT_THROW(t.row({"x"}), PreconditionError);
  t.header({"a"});
  EXPECT_THROW(t.row({"1", "2"}), PreconditionError);
  EXPECT_THROW(t.header({}), PreconditionError);
}

TEST(Table, SeparatorAndCount) {
  TextTable t;
  t.header({"a"});
  t.row({"1"});
  t.separator();
  t.row({"2"});
  EXPECT_EQ(t.row_count(), 3u);  // separator counts as a row slot
  // Four separator lines: top, after header, the explicit one, bottom.
  const std::string out = t.render();
  std::size_t count = 0;
  for (std::size_t pos = out.find("+--"); pos != std::string::npos;
       pos = out.find("+--", pos + 1)) {
    ++count;
  }
  EXPECT_EQ(count, 4u);
}

TEST(Table, FmtHelpers) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(2.0, 0), "2");
  EXPECT_EQ(fmt_pct(0.231, 0), "23%");
  EXPECT_EQ(fmt_pct(0.2351, 1), "23.5%");
}

// ------------------------------------------------------------------ rng --

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const double v = rng.uniform(5.0, 10.0);
    EXPECT_GE(v, 5.0);
    EXPECT_LT(v, 10.0);
  }
}

TEST(Rng, UniformMeanApproximatesHalf) {
  Rng rng(11);
  stats::Accumulator acc;
  for (int i = 0; i < 20000; ++i) acc.add(rng.uniform());
  EXPECT_NEAR(acc.mean(), 0.5, 0.01);
}

TEST(Rng, UniformIndexCoversRange) {
  Rng rng(3);
  std::vector<int> hits(5, 0);
  for (int i = 0; i < 5000; ++i) ++hits[rng.uniform_index(5)];
  for (int h : hits) EXPECT_GT(h, 800);
}

TEST(Rng, UniformIndexZeroThrows) {
  // Regression: n == 0 used to compute UINT64_MAX / 0 (undefined
  // behaviour). The empty range is now rejected as a precondition.
  Rng rng(17);
  EXPECT_THROW((void)rng.uniform_index(0), PreconditionError);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  stats::Accumulator acc;
  for (int i = 0; i < 40000; ++i) acc.add(rng.normal(10.0, 2.0));
  EXPECT_NEAR(acc.mean(), 10.0, 0.05);
  EXPECT_NEAR(acc.stdev(), 2.0, 0.05);
}

// -------------------------------------------------------------- strings --

TEST(Strings, Split) {
  const auto parts = str::split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(Strings, SplitNoDelimiter) {
  const auto parts = str::split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Strings, Trim) {
  EXPECT_EQ(str::trim("  x y \t\n"), "x y");
  EXPECT_EQ(str::trim("   "), "");
  EXPECT_EQ(str::trim(""), "");
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(str::starts_with("hax-conn", "hax"));
  EXPECT_FALSE(str::starts_with("ha", "hax"));
  EXPECT_TRUE(str::ends_with("schedule.csv", ".csv"));
  EXPECT_FALSE(str::ends_with("csv", ".csv"));
}

TEST(Strings, JoinAndLower) {
  EXPECT_EQ(str::join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(str::join({}, ","), "");
  EXPECT_EQ(str::to_lower("GoogleNet-V2"), "googlenet-v2");
}

// ---------------------------------------------------------------- error --

TEST(Error, RequireThrowsWithContext) {
  try {
    HAX_REQUIRE(false, "context message");
    FAIL() << "should have thrown";
  } catch (const PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("context message"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("test_common.cpp"), std::string::npos);
  }
}

TEST(Error, RequirePassesQuietly) { EXPECT_NO_THROW(HAX_REQUIRE(1 + 1 == 2, "fine")); }

// ---------------------------------------------------------- thread pool --

TEST(ThreadPool, ResolveThreadCount) {
  EXPECT_EQ(resolve_thread_count(1), 1);
  EXPECT_EQ(resolve_thread_count(7), 7);
  EXPECT_GE(resolve_thread_count(0), 1);
  EXPECT_GE(resolve_thread_count(-3), 1);
}

TEST(ThreadPool, ParallelForCoversEveryIndex) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(pool, hits.size(),
               [&](std::size_t i) { hits[i].fetch_add(1, std::memory_order_relaxed); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyIsNoop) {
  ThreadPool pool(2);
  parallel_for(pool, 0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPool, ParallelForPropagatesExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(parallel_for(pool, 64,
                            [&](std::size_t i) {
                              if (i == 13) HAX_REQUIRE(false, "boom from worker");
                            }),
               PreconditionError);
  // The pool survives a throwing loop and remains usable.
  std::atomic<int> sum{0};
  parallel_for(pool, 10, [&](std::size_t i) {
    sum.fetch_add(static_cast<int>(i), std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 45);
}

TEST(ThreadPool, SubmitAndWaitIdle) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 16; ++i) {
    pool.submit([&] { done.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 16);
}

using ThreadPoolDeathTest = ::testing::Test;

TEST(ThreadPoolDeathTest, ThrowingSubmittedTaskAborts) {
  // submit() tasks must not throw — parallel_for is the channel for
  // throwing bodies. An escaping exception is a contract violation and
  // must abort with a diagnostic instead of unwinding a worker thread.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        ThreadPool pool(1);
        pool.submit([] { throw std::runtime_error("contract violation"); });
        pool.wait_idle();
      },
      "ThreadPool task threw");
}

}  // namespace
