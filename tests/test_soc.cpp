/// Unit tests for src/soc: processing units, EMC arbitration, platforms.

#include <gtest/gtest.h>

#include "common/error.h"
#include "soc/memory_system.h"
#include "soc/platform.h"
#include "soc/processing_unit.h"

namespace {

using namespace hax;
using namespace hax::soc;

PuParams basic_pu(const char* name = "GPU", PuKind kind = PuKind::Gpu) {
  PuParams p;
  p.name = name;
  p.kind = kind;
  p.peak_gflops = 1000.0;
  p.eff_max = 0.5;
  p.saturation_flops = 100'000'000;
  p.max_stream_gbps = 50.0;
  return p;
}

// ------------------------------------------------------- processing unit --

TEST(ProcessingUnit, EffectiveGflopsMonotone) {
  const ProcessingUnit pu(0, basic_pu());
  double prev = 0.0;
  for (Flops w : {Flops{1'000}, Flops{1'000'000}, Flops{100'000'000}, Flops{10'000'000'000}}) {
    const double g = pu.effective_gflops(w);
    EXPECT_GT(g, prev);
    prev = g;
  }
}

TEST(ProcessingUnit, EffectiveGflopsBoundedByCeiling) {
  const ProcessingUnit pu(0, basic_pu());
  EXPECT_LE(pu.effective_gflops(Flops{1} << 60), 500.0 + 1e-9);
  // At w == saturation_flops, exactly half of the ceiling.
  EXPECT_NEAR(pu.effective_gflops(100'000'000), 250.0, 1e-9);
}

TEST(ProcessingUnit, ValidatesParams) {
  PuParams p = basic_pu();
  p.peak_gflops = 0.0;
  EXPECT_THROW(ProcessingUnit(0, p), PreconditionError);
  p = basic_pu();
  p.eff_max = 1.5;
  EXPECT_THROW(ProcessingUnit(0, p), PreconditionError);
  p = basic_pu();
  p.saturation_flops = 0;
  EXPECT_THROW(ProcessingUnit(0, p), PreconditionError);
  p = basic_pu();
  EXPECT_THROW(ProcessingUnit(-1, p), PreconditionError);
}

TEST(ProcessingUnit, KindNames) {
  EXPECT_STREQ(to_string(PuKind::Gpu), "GPU");
  EXPECT_STREQ(to_string(PuKind::Dsa), "DSA");
  EXPECT_STREQ(to_string(PuKind::Cpu), "CPU");
}

// ---------------------------------------------------------- memory system --

MemoryParams mem_params(GBps total = 100.0, double penalty = 0.2) {
  MemoryParams m;
  m.total_gbps = total;
  m.contention_penalty = penalty;
  m.min_efficiency = 0.5;
  return m;
}

TEST(MemorySystem, ValidatesParams) {
  MemoryParams m = mem_params();
  m.total_gbps = 0.0;
  EXPECT_THROW(MemorySystem{m}, PreconditionError);
  m = mem_params();
  m.contention_penalty = 1.0;
  EXPECT_THROW(MemorySystem{m}, PreconditionError);
  m = mem_params();
  m.min_efficiency = 0.0;
  EXPECT_THROW(MemorySystem{m}, PreconditionError);
}

TEST(MemorySystem, EffectiveCapacityShrinksWithRequesters) {
  const MemorySystem mem(mem_params(100.0, 0.2));
  EXPECT_DOUBLE_EQ(mem.effective_capacity(0), 100.0);
  EXPECT_DOUBLE_EQ(mem.effective_capacity(1), 100.0);
  EXPECT_DOUBLE_EQ(mem.effective_capacity(2), 80.0);
  EXPECT_DOUBLE_EQ(mem.effective_capacity(3), 60.0);
  // Clamped by min_efficiency.
  EXPECT_DOUBLE_EQ(mem.effective_capacity(10), 50.0);
}

TEST(MemorySystem, ArbitrateUnderCapacityGrantsAll) {
  const MemorySystem mem(mem_params());
  const std::vector<GBps> demands{20.0, 30.0, 0.0};
  const auto got = mem.arbitrate(demands);
  EXPECT_DOUBLE_EQ(got[0], 20.0);
  EXPECT_DOUBLE_EQ(got[1], 30.0);
  EXPECT_DOUBLE_EQ(got[2], 0.0);
}

TEST(MemorySystem, ArbitrateConservesCapacity) {
  const MemorySystem mem(mem_params(100.0, 0.2));
  const std::vector<GBps> demands{70.0, 70.0};
  const auto got = mem.arbitrate(demands);
  EXPECT_NEAR(got[0] + got[1], 80.0, 1e-9);  // capacity with 2 requesters
}

TEST(MemorySystem, ArbitrateMaxMinProtectsLightRequester) {
  const MemorySystem mem(mem_params(100.0, 0.2));
  // Light requester below the fair share gets its full demand; the heavy
  // one receives the remaining effective capacity. Effective requesters:
  // 1 + 10/(0.2*90) = 1.556 -> capacity 88.9.
  const std::vector<GBps> demands{10.0, 90.0};
  const auto got = mem.arbitrate(demands);
  EXPECT_DOUBLE_EQ(got[0], 10.0);
  EXPECT_NEAR(got[1], 78.889, 1e-3);
}

TEST(MemorySystem, ArbitrateEqualHeavySplitsEvenly) {
  const MemorySystem mem(mem_params(100.0, 0.2));
  const std::vector<GBps> demands{60.0, 60.0};
  const auto got = mem.arbitrate(demands);
  EXPECT_NEAR(got[0], 40.0, 1e-9);
  EXPECT_NEAR(got[1], 40.0, 1e-9);
}

TEST(MemorySystem, ArbitrateNeverExceedsDemand) {
  const MemorySystem mem(mem_params(100.0, 0.2));
  const std::vector<GBps> demands{15.0, 45.0, 90.0};
  const auto got = mem.arbitrate(demands);
  for (std::size_t i = 0; i < demands.size(); ++i) EXPECT_LE(got[i], demands[i] + 1e-9);
}

TEST(MemorySystem, ArbitrateRejectsNegative) {
  const MemorySystem mem(mem_params());
  const std::vector<GBps> demands{-1.0};
  EXPECT_THROW((void)mem.arbitrate(demands), PreconditionError);
}

TEST(MemorySystem, ArbitrateAllZero) {
  const MemorySystem mem(mem_params());
  const std::vector<GBps> demands{0.0, 0.0};
  const auto got = mem.arbitrate(demands);
  EXPECT_DOUBLE_EQ(got[0], 0.0);
  EXPECT_DOUBLE_EQ(got[1], 0.0);
}

TEST(MemorySystem, SlowdownOneWhenFits) {
  const MemorySystem mem(mem_params(100.0, 0.2));
  EXPECT_DOUBLE_EQ(mem.slowdown(30.0, 40.0), 1.0);
  EXPECT_DOUBLE_EQ(mem.slowdown(0.0, 500.0), 1.0);
}

TEST(MemorySystem, SlowdownAtLeastOneAndMonotoneInExternal) {
  const MemorySystem mem(mem_params(100.0, 0.2));
  double prev = 0.0;
  for (GBps ext : {0.0, 20.0, 40.0, 60.0, 80.0, 100.0}) {
    const double s = mem.slowdown(50.0, ext);
    EXPECT_GE(s, 1.0);
    EXPECT_GE(s, prev);
    prev = s;
  }
}

TEST(MemorySystem, SlowdownProtectedBelowFairShare) {
  const MemorySystem mem(mem_params(100.0, 0.2));
  // Own demand below the fair share (capacity/2 = 40) is fully served
  // regardless of the rival's appetite.
  EXPECT_DOUBLE_EQ(mem.slowdown(35.0, 1000.0), 1.0);
  // Above the fair share, the requester is squeezed down to it
  // (effective requesters 1.4 -> capacity 92 -> fair share 46).
  EXPECT_NEAR(mem.slowdown(80.0, 1000.0), 80.0 / 46.0, 1e-9);
}

TEST(MemorySystem, TinyBackgroundTrafficBarelyPenalizes) {
  // Table 7's regime: a ~1 GB/s solver stream next to a heavy DNN stream
  // must cost ~the bandwidth it takes, not a full co-runner penalty.
  const MemorySystem mem(mem_params(100.0, 0.2));
  const std::vector<GBps> demands{90.0, 1.0};
  const auto got = mem.arbitrate(demands);
  EXPECT_GT(got[0], 88.0);
  EXPECT_DOUBLE_EQ(got[1], 1.0);
}

TEST(MemorySystem, SlowdownMatchesArbitrate) {
  const MemorySystem mem(mem_params(100.0, 0.2));
  for (GBps own : {10.0, 30.0, 50.0, 70.0, 95.0}) {
    for (GBps ext : {10.0, 45.0, 75.0}) {
      const std::vector<GBps> demands{own, ext};
      const auto got = mem.arbitrate(demands);
      const double expected = own / got[0];
      EXPECT_NEAR(mem.slowdown(own, ext), std::max(1.0, expected), 1e-9)
          << "own=" << own << " ext=" << ext;
    }
  }
}

// -------------------------------------------------------------- platform --

class PlatformPresetTest : public testing::TestWithParam<int> {
 protected:
  Platform platform() const {
    switch (GetParam()) {
      case 0: return Platform::orin();
      case 1: return Platform::xavier();
      default: return Platform::sd865();
    }
  }
};

TEST_P(PlatformPresetTest, HasGpuDsaCpu) {
  const Platform p = platform();
  EXPECT_NE(p.find(PuKind::Gpu), kInvalidPu);
  EXPECT_NE(p.find(PuKind::Dsa), kInvalidPu);
  EXPECT_NE(p.find(PuKind::Cpu), kInvalidPu);
  EXPECT_EQ(p.pu(p.gpu()).kind(), PuKind::Gpu);
  EXPECT_EQ(p.pu(p.dsa()).kind(), PuKind::Dsa);
}

TEST_P(PlatformPresetTest, SchedulablePusExcludeCpu) {
  const Platform p = platform();
  const auto pus = p.schedulable_pus();
  EXPECT_EQ(pus.size(), 2u);
  for (PuId id : pus) EXPECT_NE(p.pu(id).kind(), PuKind::Cpu);
}

TEST_P(PlatformPresetTest, GpuFasterCeilingThanDsa) {
  const Platform p = platform();
  const auto& gpu = p.pu(p.gpu()).params();
  const auto& dsa = p.pu(p.dsa()).params();
  EXPECT_GT(gpu.peak_gflops * gpu.eff_max, dsa.peak_gflops * dsa.eff_max);
  // DSAs saturate on smaller layers than the GPU (Sec 3.2's observation).
  EXPECT_LT(dsa.saturation_flops, gpu.saturation_flops);
}

TEST_P(PlatformPresetTest, DsaIsBlackBox) {
  const Platform p = platform();
  EXPECT_TRUE(p.pu(p.gpu()).params().throughput_profilable);
  EXPECT_FALSE(p.pu(p.dsa()).params().throughput_profilable);
  EXPECT_TRUE(p.pu(p.dsa()).params().requires_reformat);
}

TEST_P(PlatformPresetTest, StreamBandwidthBelowEmc) {
  const Platform p = platform();
  for (const ProcessingUnit& pu : p.pus()) {
    EXPECT_LT(pu.params().max_stream_gbps, p.memory().total_gbps());
  }
}

INSTANTIATE_TEST_SUITE_P(AllPresets, PlatformPresetTest, testing::Values(0, 1, 2),
                         [](const auto& info) {
                           switch (info.param) {
                             case 0: return "Orin";
                             case 1: return "Xavier";
                             default: return "Sd865";
                           }
                         });

TEST(Platform, Table4Bandwidths) {
  EXPECT_DOUBLE_EQ(Platform::orin().memory().total_gbps(), 204.8);
  EXPECT_DOUBLE_EQ(Platform::xavier().memory().total_gbps(), 136.5);
  EXPECT_DOUBLE_EQ(Platform::sd865().memory().total_gbps(), 34.1);
}

TEST(Platform, PuIdsAreDense) {
  const Platform p = Platform::orin();
  for (int i = 0; i < p.pu_count(); ++i) EXPECT_EQ(p.pu(i).id(), i);
  EXPECT_THROW((void)p.pu(p.pu_count()), PreconditionError);
  EXPECT_THROW((void)p.pu(-1), PreconditionError);
}

TEST(Platform, AllPresetsReturnsThree) { EXPECT_EQ(Platform::all_presets().size(), 3u); }

TEST(Platform, RequiresAtLeastOnePu) {
  EXPECT_THROW(Platform("empty", mem_params(), {}), PreconditionError);
}

}  // namespace
