/// Tests for the zero-allocation schedule evaluator: golden parity of the
/// precomputed-item-table / EvalWorkspace fast paths against the retained
/// reference predictor, the evaluation memo cache (on/off, concurrent),
/// the sweep-cap accounting, and the MemoCache utility itself.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <thread>

#include "common/error.h"
#include "common/memo_cache.h"
#include "common/rng.h"
#include "nn/zoo.h"
#include "sched/formulation.h"
#include "sched/problem.h"
#include "sched/search_space.h"
#include "sched/solve.h"

namespace {

using namespace hax;
using namespace hax::sched;

/// Table 6-style workloads (Sec 5): parallel pairs, a pipelined pair with
/// streaming iterations, and a 3-DNN hybrid, across two platforms. Small
/// max_groups keeps the profile build fast; the evaluator sees the same
/// structural variety (transitions, dependencies, iteration imbalance).
struct WorkloadDef {
  const char* name;
  soc::Platform (*platform)();
  Objective objective;
  std::vector<const char*> dnns;
  std::vector<int> deps;
  std::vector<int> iters;
};

const std::vector<WorkloadDef>& workloads() {
  static const std::vector<WorkloadDef> defs = {
      // Table 6 exp 1 (Scenario 2): parallel pair, latency.
      {"xavier-vgg19+resnet152", &soc::Platform::xavier, Objective::MinMaxLatency,
       {"VGG19", "ResNet152"}, {-1, -1}, {1, 1}},
      // Table 6 exp 3 (Scenario 3): pipelined streaming pair, throughput.
      {"xavier-alexnet>resnet101", &soc::Platform::xavier, Objective::MaxThroughput,
       {"AlexNet", "ResNet101"}, {-1, 0}, {4, 4}},
      // Table 6 exp 8 (Scenario 4): 3-DNN hybrid on Orin, latency.
      {"orin-resnet101>googlenet+inception", &soc::Platform::orin, Objective::MinMaxLatency,
       {"ResNet101", "GoogleNet", "Inception"}, {-1, 0, -1}, {2, 2, 1}},
  };
  return defs;
}

/// ProblemInstance keeps a pointer to the platform, so the caller must
/// keep the Platform object alive for the instance's lifetime.
ProblemInstance make_instance(const soc::Platform& platform, const WorkloadDef& def) {
  ProblemInstance inst(platform, def.objective, {.max_groups = 5});
  for (std::size_t i = 0; i < def.dnns.size(); ++i) {
    inst.add_dnn(nn::zoo::by_name(def.dnns[i]), def.deps[i], def.iters[i]);
  }
  return inst;
}

/// Samples a structurally valid flat assignment by walking the variables
/// and drawing uniformly from candidates() — the same construction the
/// GA's repair pass uses, so transition budget and support always hold.
std::vector<int> random_flat(const ScheduleSpace& space, Rng& rng) {
  std::vector<int> flat;
  std::vector<int> cands;
  const int n = space.variable_count();
  flat.reserve(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) {
    space.candidates(flat, cands);
    if (cands.empty()) {  // dead end: restart (rare under small budgets)
      flat.clear();
      v = -1;
      continue;
    }
    flat.push_back(cands[rng.uniform_index(cands.size())]);
  }
  return flat;
}

void expect_identical(const Prediction& ref, const Prediction& got, const char* what) {
  EXPECT_EQ(ref.feasible, got.feasible) << what;
  EXPECT_EQ(ref.sweep_capped, got.sweep_capped) << what;
  // Bit-identical, not approximately equal: the fast path must perform the
  // same float operations in the same order as the reference.
  EXPECT_EQ(ref.objective_value, got.objective_value) << what;
  EXPECT_EQ(ref.makespan_ms, got.makespan_ms) << what;
  EXPECT_EQ(ref.round_ms, got.round_ms) << what;
  EXPECT_EQ(ref.fps, got.fps) << what;
  EXPECT_EQ(ref.total_queue_ms, got.total_queue_ms) << what;
  ASSERT_EQ(ref.dnn_span_ms.size(), got.dnn_span_ms.size()) << what;
  for (std::size_t i = 0; i < ref.dnn_span_ms.size(); ++i) {
    EXPECT_EQ(ref.dnn_span_ms[i], got.dnn_span_ms[i]) << what << " span " << i;
  }
}

// ------------------------------------------------------------- parity ----

TEST(EvaluatorParity, FlatAndWorkspacePathsMatchReference) {
  for (const WorkloadDef& def : workloads()) {
    const soc::Platform plat = def.platform();
    const ProblemInstance inst = make_instance(plat, def);
    const ScheduleSpace space(inst.problem(), {.memo_cache = false});
    const Formulation& f = space.formulation();
    EvalWorkspace ws;  // reused across every evaluation below
    Rng rng(0xC0FFEEull);

    for (int i = 0; i < 40; ++i) {
      const std::vector<int> flat = random_flat(space, rng);
      const Schedule schedule = space.to_schedule(flat);
      const Prediction ref = f.predict_reference(schedule);

      expect_identical(ref, f.predict_flat(flat, ws), def.name);
      expect_identical(ref, f.predict(schedule, ws), def.name);
      expect_identical(ref, f.predict(schedule), def.name);
      EXPECT_EQ(ref.objective_value, f.evaluate_flat(flat, ws)) << def.name;
      EXPECT_EQ(ref.objective_value, space.evaluate(flat)) << def.name;
    }
  }
}

TEST(EvaluatorParity, OptionVariantsMatchReference) {
  const soc::Platform plat = workloads()[0].platform();
  const ProblemInstance inst = make_instance(plat, workloads()[0]);
  Problem prob = inst.problem();
  prob.epsilon_ms = 0.25;  // make the ε constraint bite sometimes
  const Formulation f(prob);
  const ScheduleSpace space(prob, {.memo_cache = false});
  EvalWorkspace ws;
  Rng rng(7);

  const PredictOptions variants[] = {
      {},
      {.model_contention = false},
      {.enforce_epsilon = false},
      {.model_contention = false, .enforce_transition_budget = false, .enforce_epsilon = false},
  };
  for (int i = 0; i < 12; ++i) {
    const std::vector<int> flat = random_flat(space, rng);
    const Schedule schedule = space.to_schedule(flat);
    for (const PredictOptions& opt : variants) {
      expect_identical(f.predict_reference(schedule, opt), f.predict_flat(flat, ws, opt),
                       "option variant");
    }
  }
}

TEST(EvaluatorParity, InfeasibleSchedulesMatchReference) {
  const soc::Platform plat = workloads()[0].platform();
  const ProblemInstance inst = make_instance(plat, workloads()[0]);
  const Problem& prob = inst.problem();
  const Formulation f(prob);
  EvalWorkspace ws;

  // Over-budget zigzag: alternates PUs every group.
  Schedule zigzag;
  for (const DnnSpec& spec : prob.dnns) {
    std::vector<soc::PuId> asg;
    for (int g = 0; g < spec.net->group_count(); ++g) {
      asg.push_back(prob.pus[static_cast<std::size_t>(g % 2)]);
    }
    zigzag.assignment.push_back(std::move(asg));
  }
  expect_identical(f.predict_reference(zigzag), f.predict(zigzag, ws), "zigzag");
  EXPECT_FALSE(f.predict(zigzag, ws).feasible);
}

// ------------------------------------------------------- memo caching ----

TEST(EvaluatorCache, CachedAndUncachedAgreeAndCountHits) {
  const soc::Platform plat = workloads()[1].platform();
  const ProblemInstance inst = make_instance(plat, workloads()[1]);
  const ScheduleSpace cached(inst.problem(), {.memo_cache = true});
  const ScheduleSpace uncached(inst.problem(), {.memo_cache = false});
  Rng rng(42);

  // Sample distinct schedules so the first pass is all misses.
  std::vector<std::vector<int>> flats;
  while (flats.size() < 20) {
    std::vector<int> flat = random_flat(cached, rng);
    if (std::find(flats.begin(), flats.end(), flat) == flats.end()) {
      flats.push_back(std::move(flat));
    }
  }

  for (const auto& flat : flats) {
    EXPECT_EQ(uncached.evaluate(flat), cached.evaluate(flat));
  }
  const MemoCacheStats first_pass = cached.cache_stats();
  EXPECT_EQ(first_pass.hits, 0u);
  EXPECT_EQ(first_pass.misses, flats.size());

  // Second pass: every evaluation is a duplicate (the GA's re-evaluation
  // pattern); all must hit and return identical objectives.
  for (const auto& flat : flats) {
    EXPECT_EQ(uncached.evaluate(flat), cached.evaluate(flat));
  }
  const MemoCacheStats second_pass = cached.cache_stats();
  EXPECT_EQ(second_pass.hits, flats.size());
  EXPECT_EQ(second_pass.misses, flats.size());
  EXPECT_EQ(uncached.cache_stats().lookups(), 0u);
}

TEST(EvaluatorCache, ConcurrentEvaluationIsConsistent) {
  const soc::Platform plat = workloads()[0].platform();
  const ProblemInstance inst = make_instance(plat, workloads()[0]);
  const ScheduleSpace space(inst.problem(), {.memo_cache = true});
  const ScheduleSpace reference(inst.problem(), {.memo_cache = false});
  Rng rng(3);

  std::vector<std::vector<int>> flats;
  std::vector<double> expected;
  for (int i = 0; i < 16; ++i) {
    flats.push_back(random_flat(space, rng));
    expected.push_back(reference.evaluate(flats.back()));
  }

  constexpr int kThreads = 8;
  std::vector<std::vector<double>> results(kThreads,
                                           std::vector<double>(flats.size(), 0.0));
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t i = 0; i < flats.size(); ++i) {
        results[static_cast<std::size_t>(t)][i] = space.evaluate(flats[i]);
      }
    });
  }
  for (std::thread& th : threads) th.join();

  for (int t = 0; t < kThreads; ++t) {
    for (std::size_t i = 0; i < flats.size(); ++i) {
      EXPECT_EQ(expected[i], results[static_cast<std::size_t>(t)][i]);
    }
  }
  const MemoCacheStats stats = space.cache_stats();
  EXPECT_EQ(stats.lookups(), static_cast<std::uint64_t>(kThreads) * flats.size());
  EXPECT_GT(stats.hits, 0u);
}

TEST(EvaluatorCache, SolveScheduleSurfacesCacheCounters) {
  const soc::Platform plat = workloads()[0].platform();
  const ProblemInstance inst = make_instance(plat, workloads()[0]);
  SolveScheduleOptions options;
  options.portfolio = true;  // GA half generates duplicate genomes
  options.genetic.population = 16;
  options.genetic.generations = 10;
  // Duplicate seed: the second pre-search evaluation is a guaranteed cache
  // hit, independent of how the portfolio race is scheduled.
  const Schedule seed =
      uniform_schedule(inst.problem().group_counts(), plat.gpu());
  options.seeds = {seed, seed};
  const ScheduleSolution sol = solve_schedule(inst.problem(), options);
  ASSERT_TRUE(sol.best_found());
  EXPECT_GT(sol.stats.cache_misses, 0u);
  EXPECT_GT(sol.stats.cache_hits, 0u);  // duplicates must have been memoized

  SolveScheduleOptions no_cache = options;
  no_cache.memo_cache = false;
  const ScheduleSolution sol2 = solve_schedule(inst.problem(), no_cache);
  ASSERT_TRUE(sol2.best_found());
  EXPECT_EQ(sol.prediction.objective_value, sol2.prediction.objective_value);
  EXPECT_EQ(sol2.stats.cache_hits, 0u);
  EXPECT_EQ(sol2.stats.cache_misses, 0u);
}

// ----------------------------------------------------------- sweep cap ----

TEST(EvaluatorSweepCap, CapIsCountedAndDistinguishable) {
  const soc::Platform plat = workloads()[0].platform();
  const ProblemInstance inst = make_instance(plat, workloads()[0]);
  const Problem& prob = inst.problem();
  const Formulation f(prob);
  EvalWorkspace ws;
  const Schedule all_gpu = uniform_schedule(prob.group_counts(), inst.platform().gpu());

  // Sanity: with the automatic cap the sweep converges.
  const Prediction ok = f.predict(all_gpu, ws, {.enforce_epsilon = false});
  EXPECT_TRUE(ok.feasible);
  EXPECT_FALSE(ok.sweep_capped);
  EXPECT_EQ(f.sweep_cap_count(), 0u);

  // A one-event budget cannot finish any multi-item schedule: the result
  // must be flagged as a convergence failure, not a plain infeasibility.
  const Prediction capped = f.predict(all_gpu, ws, {.enforce_epsilon = false, .max_events = 1});
  EXPECT_FALSE(capped.feasible);
  EXPECT_TRUE(capped.sweep_capped);
  EXPECT_TRUE(std::isinf(capped.objective_value));
  EXPECT_EQ(f.sweep_cap_count(), 1u);

  // The reference path shares the accounting.
  const Prediction ref_capped =
      f.predict_reference(all_gpu, {.enforce_epsilon = false, .max_events = 1});
  EXPECT_TRUE(ref_capped.sweep_capped);
  EXPECT_EQ(f.sweep_cap_count(), 2u);

  // A genuinely infeasible schedule is NOT sweep-capped.
  Schedule zigzag = all_gpu;
  for (auto& asg : zigzag.assignment) {
    for (std::size_t g = 0; g < asg.size(); ++g) {
      asg[g] = prob.pus[g % 2];
    }
  }
  const Prediction infeasible = f.predict(zigzag, ws);
  EXPECT_FALSE(infeasible.feasible);
  EXPECT_FALSE(infeasible.sweep_capped);
  EXPECT_EQ(f.sweep_cap_count(), 2u);
}

// ------------------------------------------------------------ to_flat ----

TEST(ScheduleSpaceMaps, ToFlatRejectsForeignPu) {
  const soc::Platform plat = workloads()[0].platform();
  const ProblemInstance inst = make_instance(plat, workloads()[0]);
  const ScheduleSpace space(inst.problem());
  Schedule s = uniform_schedule(inst.problem().group_counts(), inst.problem().pus[0]);
  const std::vector<int> flat = space.to_flat(s);
  EXPECT_EQ(static_cast<int>(flat.size()), space.variable_count());
  for (int v : flat) EXPECT_EQ(v, 0);

  s.assignment[0][0] = 99;  // not a platform PU at all
  EXPECT_THROW((void)space.to_flat(s), PreconditionError);
}

// ---------------------------------------------------------- MemoCache ----

TEST(MemoCache, BasicInsertLookupAndStats) {
  MemoCache cache(1024, 4);
  double value = 0.0;
  EXPECT_FALSE(cache.lookup(123, value));
  cache.insert(123, 4.5);
  ASSERT_TRUE(cache.lookup(123, value));
  EXPECT_EQ(value, 4.5);
  cache.insert(123, 6.5);  // refresh overwrites
  ASSERT_TRUE(cache.lookup(123, value));
  EXPECT_EQ(value, 6.5);

  const MemoCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 2u);
  EXPECT_NEAR(stats.hit_rate(), 2.0 / 3.0, 1e-12);

  cache.clear();
  EXPECT_FALSE(cache.lookup(123, value));
}

TEST(MemoCache, ClearDropsEntriesButPreservesStats) {
  // clear() empties the table but the hit/miss/insertion counters are
  // cumulative lifetime totals — phase-local rates come from differencing
  // two stats() snapshots, so clear() must not reset them.
  MemoCache cache(256, 4);
  double value = 0.0;
  cache.insert(7, 1.0);
  cache.insert(8, 2.0);
  ASSERT_TRUE(cache.lookup(7, value));
  EXPECT_FALSE(cache.lookup(99, value));

  const MemoCacheStats before = cache.stats();
  EXPECT_EQ(before.insertions, 2u);
  EXPECT_EQ(before.hits, 1u);
  EXPECT_EQ(before.misses, 1u);

  cache.clear();

  // Entries gone...
  EXPECT_FALSE(cache.lookup(7, value));
  EXPECT_FALSE(cache.lookup(8, value));
  // ...but counters carried over (plus the two misses just recorded).
  const MemoCacheStats after = cache.stats();
  EXPECT_EQ(after.insertions, before.insertions);
  EXPECT_EQ(after.hits, before.hits);
  EXPECT_EQ(after.misses, before.misses + 2u);
}

TEST(MemoCache, ZeroKeyIsStorable) {
  MemoCache cache(64, 2);
  double value = 0.0;
  cache.insert(0, 1.25);
  ASSERT_TRUE(cache.lookup(0, value));
  EXPECT_EQ(value, 1.25);
}

TEST(MemoCache, EvictionNeverReturnsWrongValue) {
  // Tiny cache, heavy overflow: stale entries may be evicted, but a hit
  // must always return the value inserted for that exact key.
  MemoCache cache(32, 2);
  Rng rng(11);
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t key = rng.next();
    const double expect = static_cast<double>(key % 977);
    cache.insert(key, expect);
    double got = 0.0;
    ASSERT_TRUE(cache.lookup(key, got));  // just inserted: still resident
    EXPECT_EQ(got, expect);
  }
}

TEST(MemoCache, HashSpanIsStableAndDiscriminating) {
  const std::vector<int> a = {0, 1, 2, 1};
  const std::vector<int> b = {0, 1, 2, 2};
  const std::vector<int> c = {0, 1, 2};
  EXPECT_EQ(hash_span(a), hash_span(a));
  EXPECT_NE(hash_span(a), hash_span(b));
  EXPECT_NE(hash_span(a), hash_span(c));
  EXPECT_NE(hash_span(b), hash_span(c));
  EXPECT_NE(hash_span({}), 0u);  // empty span still yields a sentinel-safe key
}

TEST(MemoCache, RejectsNonPowerOfTwoShards) {
  EXPECT_THROW(MemoCache(1024, 3), PreconditionError);
}

}  // namespace
