/// Unit tests for src/nn: layer math, network graph, builder, model zoo.

#include <gtest/gtest.h>

#include "common/error.h"
#include "nn/builder.h"
#include "nn/layer.h"
#include "nn/network.h"
#include "nn/zoo.h"

namespace {

using namespace hax;
using namespace hax::nn;

// ---------------------------------------------------------------- layer --

TEST(Tensor3, ElemsAndBytes) {
  const Tensor3 t{64, 56, 56};
  EXPECT_EQ(t.elems(), 64 * 56 * 56);
  EXPECT_EQ(t.bytes(), t.elems() * kBytesPerElement);
  EXPECT_TRUE(t.valid());
  EXPECT_FALSE((Tensor3{0, 1, 1}).valid());
}

TEST(Layer, ConvFlops) {
  // 3x3 conv, 64 -> 128 channels, 56x56 output:
  // 2 * 3*3*64 * 128*56*56.
  Layer l;
  l.kind = LayerKind::Conv;
  l.in = {64, 56, 56};
  l.out = {128, 56, 56};
  l.kernel = 3;
  EXPECT_EQ(l.flops(), 2LL * 9 * 64 * 128 * 56 * 56);
}

TEST(Layer, AsymmetricConvFlops) {
  Layer l;
  l.kind = LayerKind::Conv;
  l.in = {64, 17, 17};
  l.out = {64, 17, 17};
  l.kernel = 1;
  l.kernel_w = 7;
  EXPECT_EQ(l.kw(), 7);
  EXPECT_EQ(l.flops(), 2LL * 1 * 7 * 64 * 64 * 17 * 17);
}

TEST(Layer, GroupedConvFlops) {
  Layer l;
  l.kind = LayerKind::Conv;
  l.in = {64, 28, 28};
  l.out = {64, 28, 28};
  l.kernel = 3;
  l.groups = 4;
  EXPECT_EQ(l.flops(), 2LL * 9 * (64 / 4) * 64 * 28 * 28);
}

TEST(Layer, DepthwiseConvFlops) {
  Layer l;
  l.kind = LayerKind::DepthwiseConv;
  l.in = {32, 112, 112};
  l.out = {32, 112, 112};
  l.kernel = 3;
  l.groups = 32;
  EXPECT_EQ(l.flops(), 2LL * 9 * 32 * 112 * 112);
}

TEST(Layer, FullyConnectedFlopsAndWeights) {
  Layer l;
  l.kind = LayerKind::FullyConnected;
  l.in = {512, 1, 1};
  l.out = {1000, 1, 1};
  EXPECT_EQ(l.flops(), 2LL * 512 * 1000);
  EXPECT_EQ(l.weight_bytes(), (512LL * 1000 + 1000) * kBytesPerElement);
}

TEST(Layer, ConvWeightBytesIncludeBias) {
  Layer l;
  l.kind = LayerKind::Conv;
  l.in = {3, 224, 224};
  l.out = {64, 112, 112};
  l.kernel = 7;
  EXPECT_EQ(l.weight_bytes(), (49LL * 3 * 64 + 64) * kBytesPerElement);
}

TEST(Layer, PoolFlopsCheap) {
  Layer l;
  l.kind = LayerKind::Pool;
  l.in = {64, 112, 112};
  l.out = {64, 56, 56};
  l.kernel = 3;
  EXPECT_EQ(l.flops(), 9LL * 64 * 56 * 56);
  EXPECT_EQ(l.weight_bytes(), 0);
}

TEST(Layer, ConcatMovesDataNoCompute) {
  Layer l;
  l.kind = LayerKind::Concat;
  l.in = {64, 28, 28};
  l.out = {256, 28, 28};
  l.inputs = {1, 2, 3, 4};
  EXPECT_EQ(l.flops(), 0);
  EXPECT_EQ(l.input_bytes(), l.out.bytes());
  EXPECT_GT(l.total_bytes(), 0);
}

TEST(Layer, InputIsFree) {
  Layer l;
  l.kind = LayerKind::Input;
  l.in = l.out = {3, 224, 224};
  EXPECT_EQ(l.flops(), 0);
  EXPECT_EQ(l.input_bytes(), 0);
  EXPECT_EQ(l.output_bytes(), 0);
}

TEST(Layer, DsaSupportMatrix) {
  Layer l;
  l.out = {1, 1, 1};
  for (LayerKind k : {LayerKind::Lrn, LayerKind::Softmax, LayerKind::Deconv}) {
    l.kind = k;
    EXPECT_FALSE(l.supported_on(soc::PuKind::Dsa)) << to_string(k);
    EXPECT_TRUE(l.supported_on(soc::PuKind::Gpu)) << to_string(k);
  }
  for (LayerKind k : {LayerKind::Conv, LayerKind::Pool, LayerKind::FullyConnected,
                      LayerKind::Concat, LayerKind::Add, LayerKind::BatchNorm}) {
    l.kind = k;
    EXPECT_TRUE(l.supported_on(soc::PuKind::Dsa)) << to_string(k);
  }
}

// -------------------------------------------------------------- builder --

TEST(Builder, ConvShapeArithmetic) {
  NetworkBuilder b("t", {3, 224, 224});
  const int c = b.conv(b.input(), 64, 7, 2, 3);
  EXPECT_EQ(b.shape(c), (Tensor3{64, 112, 112}));
  const int c2 = b.conv(c, 128, 3);  // same padding, stride 1
  EXPECT_EQ(b.shape(c2), (Tensor3{128, 112, 112}));
  const int c3 = b.conv(c2, 32, 3, 1, 0);  // valid padding
  EXPECT_EQ(b.shape(c3), (Tensor3{32, 110, 110}));
}

TEST(Builder, PoolShape) {
  NetworkBuilder b("t", {64, 112, 112});
  EXPECT_EQ(b.shape(b.pool(b.input(), 3, 2, 1)), (Tensor3{64, 56, 56}));
  NetworkBuilder b2("t2", {64, 112, 112});
  EXPECT_EQ(b2.shape(b2.pool(b2.input(), 2, 2)), (Tensor3{64, 56, 56}));
}

TEST(Builder, GlobalPoolAndFc) {
  NetworkBuilder b("t", {512, 7, 7});
  const int gp = b.global_pool(b.input());
  EXPECT_EQ(b.shape(gp), (Tensor3{512, 1, 1}));
  EXPECT_EQ(b.shape(b.fc(gp, 1000)), (Tensor3{1000, 1, 1}));
}

TEST(Builder, DeconvUpsamples) {
  NetworkBuilder b("t", {21, 8, 16});
  EXPECT_EQ(b.shape(b.deconv(b.input(), 21, 4, 2)), (Tensor3{21, 16, 32}));
}

TEST(Builder, ConcatSumsChannels) {
  NetworkBuilder b("t", {16, 28, 28});
  const int a = b.conv(b.input(), 32, 1);
  const int c = b.conv(b.input(), 64, 3);
  EXPECT_EQ(b.shape(b.concat({a, c})), (Tensor3{96, 28, 28}));
}

TEST(Builder, ConcatRejectsMismatchedHw) {
  NetworkBuilder b("t", {16, 28, 28});
  const int a = b.conv(b.input(), 32, 1);
  const int c = b.conv(b.input(), 32, 3, 2);  // 14x14
  EXPECT_THROW((void)b.concat({a, c}), PreconditionError);
  EXPECT_THROW((void)b.concat({a}), PreconditionError);
}

TEST(Builder, AddRejectsMismatchedShape) {
  NetworkBuilder b("t", {16, 28, 28});
  const int a = b.conv(b.input(), 32, 1);
  const int c = b.conv(b.input(), 64, 1);
  EXPECT_THROW((void)b.add(a, c), PreconditionError);
}

TEST(Builder, GroupsMustDivide) {
  NetworkBuilder b("t", {30, 28, 28});
  EXPECT_THROW((void)b.conv(b.input(), 64, 3, 1, NetworkBuilder::kSame, 4), PreconditionError);
}

TEST(Builder, BuildValidates) {
  NetworkBuilder b("t", {3, 32, 32});
  b.conv_relu(b.input(), 8, 3);
  const Network net = b.build();
  EXPECT_EQ(net.layer_count(), 3);  // input, conv, relu
  EXPECT_EQ(net.name(), "t");
}

TEST(Builder, MultipleSinksRejected) {
  NetworkBuilder b("t", {3, 32, 32});
  b.conv(b.input(), 8, 3);
  b.conv(b.input(), 8, 3);  // second dangling consumer of input
  EXPECT_THROW((void)b.build(), PreconditionError);
}

// -------------------------------------------------------------- network --

TEST(Network, AddValidatesTopology) {
  Network net("t");
  Layer input;
  input.kind = LayerKind::Input;
  input.in = input.out = {3, 8, 8};
  net.add(input);

  Layer bad;
  bad.kind = LayerKind::Activation;
  bad.in = bad.out = {3, 8, 8};
  bad.inputs = {5};  // forward reference
  EXPECT_THROW(net.add(bad), PreconditionError);

  Layer orphan;
  orphan.kind = LayerKind::Activation;
  orphan.in = orphan.out = {3, 8, 8};
  EXPECT_THROW(net.add(orphan), PreconditionError);  // no producers
}

TEST(Network, InputMustBeFirstAndUnique) {
  Network net("t");
  Layer input;
  input.kind = LayerKind::Input;
  input.in = input.out = {3, 8, 8};
  net.add(input);
  Layer second = input;
  EXPECT_THROW(net.add(second), PreconditionError);
}

TEST(Network, CleanCutOnChain) {
  NetworkBuilder b("t", {3, 32, 32});
  int x = b.conv_relu(b.input(), 8, 3);
  x = b.conv_relu(x, 8, 3);
  const Network net = b.build();
  // Every boundary in a pure chain is a clean cut.
  for (int i = 0; i < net.layer_count() - 1; ++i) EXPECT_TRUE(net.is_clean_cut_after(i));
}

TEST(Network, CleanCutExcludesBranchInterior) {
  // Diamond: input -> a, input -> c, concat(a, c).
  NetworkBuilder b("t", {16, 28, 28});
  const int a = b.conv(b.input(), 16, 1);
  const int c = b.conv(b.input(), 16, 3);
  const int cat = b.concat({a, c});
  (void)cat;
  const Network net = b.build();
  // After `a` (index 1): edge input->c crosses, so not a clean cut.
  EXPECT_FALSE(net.is_clean_cut_after(a));
  // After `c` (index 2): edge a->concat crosses from a != c, not clean.
  EXPECT_FALSE(net.is_clean_cut_after(c));
  // After concat: network end boundary is clean.
  EXPECT_TRUE(net.is_clean_cut_after(cat));
}

TEST(Network, ConsumersInverse) {
  NetworkBuilder b("t", {16, 28, 28});
  const int a = b.conv(b.input(), 16, 1);
  const int c = b.conv(b.input(), 16, 3);
  b.concat({a, c});
  const Network net = b.build();
  const auto& cons = net.consumers();
  EXPECT_EQ(cons[0].size(), 2u);  // input feeds both convs
  EXPECT_EQ(cons[static_cast<std::size_t>(a)].size(), 1u);
}

// ------------------------------------------------------------------ zoo --

struct ZooExpectation {
  const char* name;
  double min_gflops;
  double max_gflops;
  int min_layers;
  int max_layers;
};

class ZooTest : public testing::TestWithParam<ZooExpectation> {};

TEST_P(ZooTest, BuildsWithExpectedScale) {
  const auto& exp = GetParam();
  const Network net = zoo::by_name(exp.name);
  EXPECT_NO_THROW(net.validate());
  const double gflops = static_cast<double>(net.total_flops()) / 1e9;
  EXPECT_GE(gflops, exp.min_gflops) << exp.name;
  EXPECT_LE(gflops, exp.max_gflops) << exp.name;
  EXPECT_GE(net.layer_count(), exp.min_layers) << exp.name;
  EXPECT_LE(net.layer_count(), exp.max_layers) << exp.name;
}

// FLOP ranges bracket the published numbers for each architecture.
INSTANTIATE_TEST_SUITE_P(
    Models, ZooTest,
    testing::Values(ZooExpectation{"AlexNet", 1.2, 3.2, 15, 30},
                    ZooExpectation{"CaffeNet", 1.2, 3.2, 15, 30},
                    ZooExpectation{"VGG16", 28.0, 34.0, 30, 45},
                    ZooExpectation{"VGG19", 36.0, 42.0, 38, 50},
                    ZooExpectation{"GoogleNet", 2.5, 4.5, 120, 160},
                    ZooExpectation{"ResNet18", 3.0, 4.5, 60, 80},
                    ZooExpectation{"ResNet50", 7.0, 9.5, 160, 190},
                    ZooExpectation{"ResNet101", 14.0, 17.5, 320, 370},
                    ZooExpectation{"ResNet152", 21.0, 25.5, 480, 550},
                    ZooExpectation{"Inception", 22.0, 28.0, 300, 380},
                    ZooExpectation{"Inc-res-v2", 24.0, 33.0, 700, 1000},
                    ZooExpectation{"DenseNet", 5.0, 7.0, 380, 470},
                    ZooExpectation{"MobileNet", 1.0, 1.4, 70, 100},
                    ZooExpectation{"FCN-ResNet18", 8.0, 16.0, 60, 90}),
    [](const auto& info) {
      std::string n = info.param.name;
      for (char& c : n) {
        if (c == '-') c = '_';
      }
      return n;
    });

TEST(Zoo, ByNameAliases) {
  EXPECT_EQ(zoo::by_name("vgg-19").name(), "VGG19");
  EXPECT_EQ(zoo::by_name("RESNET52").name(), "ResNet50");  // the paper's "ResNet52"
  EXPECT_EQ(zoo::by_name("inception").name(), "Inception");
  EXPECT_EQ(zoo::by_name("FC_ResN18").name(), "FCN-ResNet18");
  EXPECT_EQ(zoo::by_name("densenet121").name(), "DenseNet");
}

TEST(Zoo, UnknownNameThrows) {
  EXPECT_THROW((void)zoo::by_name("transformer"), PreconditionError);
}

TEST(Zoo, EvaluationSetIsTable5) {
  const auto set = zoo::evaluation_set();
  EXPECT_EQ(set.size(), 10u);
  for (const auto& name : set) EXPECT_NO_THROW((void)zoo::by_name(name));
}

TEST(Zoo, AllNamesResolve) {
  for (const auto& name : zoo::all_names()) {
    EXPECT_NO_THROW((void)zoo::by_name(name)) << name;
  }
}

TEST(Zoo, GoogleNetMatchesPaperLayerNumbering) {
  // Table 2 groups GoogleNet layers 0-140; the model should land there.
  const Network net = zoo::googlenet();
  EXPECT_NEAR(net.layer_count(), 141, 5);
}

TEST(Zoo, VggWeightHeavy) {
  // VGG19's FC layers dominate its ~143M fp16 parameters.
  const Network net = zoo::vgg19();
  EXPECT_GT(net.total_weight_bytes(), 250ll << 20);
}

TEST(Zoo, AlexNetHasLrn) {
  const Network net = zoo::alexnet();
  bool has_lrn = false;
  for (const Layer& l : net.layers()) has_lrn |= l.kind == LayerKind::Lrn;
  EXPECT_TRUE(has_lrn);
}

}  // namespace
