// Fixture: three nondeterminism sources. All flagged inside the
// deterministic core (src/sim, src/solver, ...), none elsewhere.
#include <chrono>
#include <cstdlib>
#include <random>

namespace fixture {

int noisy() {
  std::random_device rd;
  const auto now = std::chrono::system_clock::now();
  (void)now;
  return static_cast<int>(rd()) + rand();
}

}  // namespace fixture
