// Fixture: a hygienic header — leading comment, then #pragma once,
// qualified names only.
#pragma once

#include <vector>

namespace fixture {

inline std::vector<int> three() { return {1, 2, 3}; }

}  // namespace fixture
