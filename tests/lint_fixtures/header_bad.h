// Fixture: header missing #pragma once (an include guard is not enough
// for this codebase's convention) and leaking a using-namespace.
#ifndef FIXTURE_HEADER_BAD_H
#define FIXTURE_HEADER_BAD_H

#include <vector>

using namespace std;

inline vector<int> three() { return {1, 2, 3}; }

#endif
