// Fixture: nondeterminism tokens appear only in comments and strings —
// the scanner strips both before matching, so this file is clean even
// in the deterministic core.
//
// Unlike rand() or std::random_device, hax::Rng replays bit-identically.
/* Block comments mentioning system_clock must not trip the rule. */

namespace fixture {

const char* docs() {
  return "never call srand(time(nullptr)) here; std::random_device is banned";
}

}  // namespace fixture
