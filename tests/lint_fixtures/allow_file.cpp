// Fixture: a file-level suppression covers every hit of one rule.
// hax-lint: allow-file(nondet) -- fixture exercising the escape hatch
#include <cstdlib>
#include <random>

namespace fixture {

int noisy() {
  std::random_device rd;
  return static_cast<int>(rd()) + rand();
}

}  // namespace fixture
