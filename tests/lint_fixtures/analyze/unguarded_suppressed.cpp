// Fixture: the unguarded field carries a same-line allow (standing in
// for an invariant the comment markers don't cover).
#include "common/annotated.h"

namespace hax::fixture {

class Counter {
 public:
  void add() {
    LockGuard lock(mu_);
    ++hits_;
  }

 private:
  Mutex mu_;
  int hits_ = 0;  // hax-analyze: allow(unguarded-shared-field)
};

}  // namespace hax::fixture
