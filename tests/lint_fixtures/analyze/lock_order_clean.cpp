// Fixture: consistent nesting order. Both methods take a_mu_ before
// b_mu_, so the acquisition graph has the single edge a -> b and a
// topological rank assignment exists.
#include "common/annotated.h"

namespace hax::fixture {

class Pair {
 public:
  void ab() {
    LockGuard a(a_mu_);
    LockGuard b(b_mu_);
    ++x_;
  }
  void also_ab() {
    LockGuard a(a_mu_);
    LockGuard b(b_mu_);
    --x_;
  }

 private:
  Mutex a_mu_;
  Mutex b_mu_;
  int x_ HAX_GUARDED_BY(a_mu_) = 0;
};

}  // namespace hax::fixture
