// Fixture: a declared callback edge closing a cycle. Lexically only
// a -> b exists; the edge(...) directive models a callback that acquires
// a_mu_ while b_mu_ is held (indirection the scanner cannot see), which
// makes the graph cyclic.
// hax-analyze: edge(Pair_b_mu_ -> Pair_a_mu_)
#include "common/annotated.h"

namespace hax::fixture {

class Pair {
 public:
  void ab() {
    LockGuard a(a_mu_);
    LockGuard b(b_mu_);
    ++x_;
  }

 private:
  Mutex a_mu_;
  Mutex b_mu_;
  int x_ HAX_GUARDED_BY(a_mu_) = 0;
};

}  // namespace hax::fixture
