// Fixture: the one sanctioned blocking-while-held shape — CondVar::wait
// releases the mutex it waits on, so waiting with only that mutex held
// blocks nobody.
#include "common/annotated.h"

namespace hax::fixture {

class Waiter {
 public:
  void block_until_ready() {
    LockGuard lock(mu_);
    while (!ready_) cv_.wait(mu_);
  }
  void set_ready() {
    LockGuard lock(mu_);
    ready_ = true;
    cv_.notify_all();
  }

 private:
  Mutex mu_;
  CondVar cv_;
  bool ready_ HAX_GUARDED_BY(mu_) = false;
};

}  // namespace hax::fixture
