// Fixture: one Mutex without the HAX_MUTEX_RANK handshake (invisible to
// the runtime validator) and one with it.
#include "common/annotated.h"
#include "common/lock_ranks.h"

namespace hax::fixture {

class Unranked {
 public:
  void touch() { LockGuard lock(mu_); }

 private:
  Mutex mu_;
};

class Ranked {
 public:
  void touch() { LockGuard lock(mu_); }

 private:
  Mutex mu_{HAX_MUTEX_RANK(Ranked_mu_)};
};

}  // namespace hax::fixture
