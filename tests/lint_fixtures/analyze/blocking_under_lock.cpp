// Fixture: sleeping while holding a mutex — every waiter on mu_ stalls
// for the full nap.
#include <chrono>
#include <thread>

#include "common/annotated.h"

namespace hax::fixture {

class Sleeper {
 public:
  void nap() {
    LockGuard lock(mu_);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

 private:
  Mutex mu_;
};

}  // namespace hax::fixture
