// Fixture: a mutable field of a Mutex-owning class with neither
// HAX_GUARDED_BY nor a protocol comment — nothing says who may touch it.
#include "common/annotated.h"

namespace hax::fixture {

class Counter {
 public:
  void add() {
    LockGuard lock(mu_);
    ++hits_;
  }

 private:
  Mutex mu_;
  int hits_ = 0;
};

}  // namespace hax::fixture
