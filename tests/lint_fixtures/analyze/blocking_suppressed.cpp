// Fixture: blocking while held is the design here (the mutex *is* the
// resource being occupied), so the site carries a same-line allow.
#include <chrono>
#include <thread>

#include "common/annotated.h"

namespace hax::fixture {

class Sleeper {
 public:
  void nap() {
    LockGuard lock(mu_);
    std::this_thread::sleep_for(  // hax-analyze: allow(blocking-under-lock)
        std::chrono::milliseconds(1));
  }

 private:
  Mutex mu_;
};

}  // namespace hax::fixture
