// Fixture: every mutable field of the Mutex-owning class names its
// protocol — HAX_GUARDED_BY for the locked one, a protocol comment for
// the publication-style one, exemption by const/atomic for the rest.
#include <atomic>

#include "common/annotated.h"

namespace hax::fixture {

class Counter {
 public:
  void add() {
    LockGuard lock(mu_);
    ++hits_;
  }

 private:
  Mutex mu_;
  int hits_ HAX_GUARDED_BY(mu_) = 0;
  double scale_ = 1.0;  ///< const after construction
  std::atomic<int> peeks_{0};
  const int limit_ = 8;
};

}  // namespace hax::fixture
