// Fixture: a suppression that suppresses nothing — the analyzer must
// flag it so dead escapes can't accumulate.

namespace hax::fixture {

class Quiet {
 public:
  int value() const { return v_; }  // hax-analyze: allow(blocking-under-lock)

 private:
  int v_ = 0;
};

}  // namespace hax::fixture
