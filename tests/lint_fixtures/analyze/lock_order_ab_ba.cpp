// Fixture: ABBA lock-order inversion. The two methods nest the same pair
// of mutexes in opposite orders — the classic two-thread deadlock. The
// rule is unsuppressible, so the allow-file below must change nothing.
// hax-analyze: allow-file(lock-order-inversion)
#include "common/annotated.h"

namespace hax::fixture {

class Pair {
 public:
  void ab() {
    LockGuard a(a_mu_);
    LockGuard b(b_mu_);
    ++x_;
  }
  void ba() {
    LockGuard b(b_mu_);
    LockGuard a(a_mu_);
    --x_;
  }

 private:
  Mutex a_mu_;
  Mutex b_mu_;
  int x_ HAX_GUARDED_BY(a_mu_) = 0;
};

}  // namespace hax::fixture
