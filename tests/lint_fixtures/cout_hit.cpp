// Fixture: std::cout in library code. Flagged under src/, fine under
// tools/ (stdout is the product there).
#include <iostream>

namespace fixture {

void report(int frames) { std::cout << "frames=" << frames << '\n'; }

}  // namespace fixture
