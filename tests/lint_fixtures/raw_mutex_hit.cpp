// Fixture: a raw std::mutex in production code. Flagged under src/,
// legal under tests/ (the rule is scoped to src/).
#include <mutex>

namespace fixture {

struct Counter {
  std::mutex mu;
  int value = 0;

  void bump() {
    std::lock_guard<std::mutex> lock(mu);
    ++value;
  }
};

}  // namespace fixture
