// Fixture: same violation, silenced line by line with the escape hatch.
#include <mutex>

namespace fixture {

struct Counter {
  std::mutex mu;  // hax-lint: allow(raw-mutex) -- interop with external API
  int value = 0;

  void bump() {
    std::lock_guard<std::mutex> lock(mu);  // hax-lint: allow(raw-mutex)
    ++value;
  }
};

}  // namespace fixture
