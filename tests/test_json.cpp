/// Unit tests for src/common/json.h: the minimal JSON value type.

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/json.h"

namespace {

using namespace hax;
using json::Array;
using json::Object;
using json::Value;

TEST(Json, Scalars) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_TRUE(Value(nullptr).is_null());
  EXPECT_TRUE(Value(true).as_bool());
  EXPECT_DOUBLE_EQ(Value(3.5).as_number(), 3.5);
  EXPECT_EQ(Value(42).as_int(), 42);
  EXPECT_EQ(Value("hi").as_string(), "hi");
}

TEST(Json, TypeMismatchThrows) {
  const Value v(1.0);
  EXPECT_THROW((void)v.as_string(), PreconditionError);
  EXPECT_THROW((void)v.as_bool(), PreconditionError);
  EXPECT_THROW((void)v.as_array(), PreconditionError);
  EXPECT_THROW((void)v.at("x"), PreconditionError);
}

TEST(Json, DumpScalars) {
  EXPECT_EQ(Value().dump(), "null");
  EXPECT_EQ(Value(true).dump(), "true");
  EXPECT_EQ(Value(false).dump(), "false");
  EXPECT_EQ(Value(7).dump(), "7");
  EXPECT_EQ(Value(-2.5).dump(), "-2.5");
  EXPECT_EQ(Value("a\"b").dump(), "\"a\\\"b\"");
}

TEST(Json, DumpCompound) {
  Object obj;
  obj.emplace("b", Array{Value(1), Value(2)});
  obj.emplace("a", "x");
  // std::map keys are ordered: "a" before "b".
  EXPECT_EQ(Value(obj).dump(), R"({"a":"x","b":[1,2]})");
}

TEST(Json, PrettyPrint) {
  Object obj;
  obj.emplace("k", Array{Value(1)});
  const std::string out = Value(obj).dump(2);
  EXPECT_NE(out.find("{\n  \"k\": [\n    1\n  ]\n}"), std::string::npos);
}

TEST(Json, ParseScalars) {
  EXPECT_TRUE(json::parse("null").is_null());
  EXPECT_TRUE(json::parse(" true ").as_bool());
  EXPECT_FALSE(json::parse("false").as_bool());
  EXPECT_DOUBLE_EQ(json::parse("-12.5e2").as_number(), -1250.0);
  EXPECT_EQ(json::parse("\"hey\"").as_string(), "hey");
}

TEST(Json, ParseCompound) {
  const Value v = json::parse(R"({"xs": [1, 2, 3], "nested": {"ok": true}})");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.at("xs").as_array().size(), 3u);
  EXPECT_DOUBLE_EQ(v.at("xs").as_array()[2].as_number(), 3.0);
  EXPECT_TRUE(v.at("nested").at("ok").as_bool());
  EXPECT_TRUE(v.contains("xs"));
  EXPECT_FALSE(v.contains("zz"));
}

TEST(Json, ParseEscapes) {
  EXPECT_EQ(json::parse(R"("a\nb\t\"c\"")").as_string(), "a\nb\t\"c\"");
  EXPECT_EQ(json::parse(R"("A")").as_string(), "A");
}

TEST(Json, ParseEmptyContainers) {
  EXPECT_TRUE(json::parse("[]").as_array().empty());
  EXPECT_TRUE(json::parse("{}").as_object().empty());
}

TEST(Json, RoundTrip) {
  Object obj;
  obj.emplace("name", "hax-conn");
  obj.emplace("version", 1);
  obj.emplace("values", Array{Value(1.5), Value(true), Value(nullptr), Value("s")});
  const Value original(obj);
  EXPECT_EQ(json::parse(original.dump()), original);
  EXPECT_EQ(json::parse(original.dump(2)), original);
}

TEST(Json, ParseErrors) {
  EXPECT_THROW((void)json::parse(""), PreconditionError);
  EXPECT_THROW((void)json::parse("{"), PreconditionError);
  EXPECT_THROW((void)json::parse("[1,]2"), PreconditionError);
  EXPECT_THROW((void)json::parse("tru"), PreconditionError);
  EXPECT_THROW((void)json::parse("\"unterminated"), PreconditionError);
  EXPECT_THROW((void)json::parse("{\"a\" 1}"), PreconditionError);
  EXPECT_THROW((void)json::parse("1 2"), PreconditionError);  // trailing garbage
}

TEST(Json, ErrorsCarryOffset) {
  try {
    (void)json::parse("[1, oops]");
    FAIL();
  } catch (const PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("offset"), std::string::npos);
  }
}

TEST(Json, NonFiniteRejected) {
  EXPECT_THROW((void)Value(std::numeric_limits<double>::infinity()).dump(),
               PreconditionError);
}

}  // namespace
