/// Unit tests for src/runtime: the threaded wall-clock executor with
/// inter-DNN synchronization and hot schedule swapping.

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>

#include "common/error.h"
#include "core/haxconn.h"
#include "nn/zoo.h"
#include "runtime/executor.h"

namespace {

using namespace hax;
using namespace hax::runtime;

class RuntimeFixture : public testing::Test {
 protected:
  RuntimeFixture()
      : plat_(soc::Platform::xavier()),
        hax_(plat_, [] {
          core::HaxConnOptions o;
          o.grouping.max_groups = 5;
          return o;
        }()),
        inst_(hax_.make_problem({{nn::zoo::alexnet()}, {nn::zoo::resnet18()}})) {}

  sched::Schedule pinned(soc::PuId a, soc::PuId b) const {
    const sched::Problem& prob = inst_.problem();
    sched::Schedule s;
    for (int d = 0; d < prob.dnn_count(); ++d) {
      const soc::PuId pu = d == 0 ? a : b;
      const sched::DnnSpec& spec = prob.dnns[static_cast<std::size_t>(d)];
      std::vector<soc::PuId> asg;
      for (int g = 0; g < spec.net->group_count(); ++g) {
        asg.push_back(spec.profile->at(g, pu).supported ? pu : plat_.gpu());
      }
      s.assignment.push_back(std::move(asg));
    }
    return s;
  }

  static ExecutorOptions scaled(double time_scale) {
    ExecutorOptions o;
    o.time_scale = time_scale;
    return o;
  }

  // Compressed time so tests stay fast: 1 simulated ms = 0.2 wall ms.
  // (Sleep granularity is ~0.1 wall-ms, so kernels must stay well above.)
  static ExecutorOptions fast() { return scaled(0.2); }

  soc::Platform plat_;
  core::HaxConn hax_;
  sched::ProblemInstance inst_;
};

TEST_F(RuntimeFixture, RunsAllFrames) {
  const Executor exec(plat_, fast());
  const sched::Schedule s = pinned(plat_.gpu(), plat_.dsa());
  const RunStats stats = exec.run(inst_.problem(), [&] { return s; }, 4);
  int frames[2] = {0, 0};
  for (const FrameRecord& f : stats.frames) ++frames[f.dnn];
  EXPECT_EQ(frames[0], 4);
  EXPECT_EQ(frames[1], 4);
  EXPECT_GT(stats.wall_ms, 0.0);
}

TEST_F(RuntimeFixture, LatencyTracksModeledTime) {
  // Real-time scale for latency fidelity (sleep jitter is additive).
  const Executor exec(plat_, scaled(1.0));
  const sched::Schedule s = pinned(plat_.gpu(), plat_.dsa());
  const RunStats stats = exec.run(inst_.problem(), [&] { return s; }, 3);
  const sched::Problem& prob = inst_.problem();
  // Frame latency should be near the profiled standalone time (plus
  // contention and sleep jitter) — within a loose factor of 2.
  for (int d = 0; d < 2; ++d) {
    TimeMs modeled = 0.0;
    const sched::DnnSpec& spec = prob.dnns[static_cast<std::size_t>(d)];
    for (int g = 0; g < spec.net->group_count(); ++g) {
      modeled +=
          spec.profile->at(g, s.assignment[static_cast<std::size_t>(d)][static_cast<std::size_t>(g)])
              .time_ms;
    }
    const TimeMs measured = stats.mean_latency_ms(d);
    EXPECT_GT(measured, 0.8 * modeled) << "dnn " << d;
    EXPECT_LT(measured, 2.5 * modeled) << "dnn " << d;
  }
}

TEST_F(RuntimeFixture, DependencyOrdersFrames) {
  core::HaxConn hax(plat_, [] {
    core::HaxConnOptions o;
    o.grouping.max_groups = 5;
    return o;
  }());
  auto inst = hax.make_problem(
      {{nn::zoo::alexnet()}, {nn::zoo::resnet18(), /*depends_on=*/0}});
  const Executor exec(plat_, fast());
  const sched::Problem& prob = inst.problem();
  sched::Schedule s;
  for (int d = 0; d < 2; ++d) {
    const sched::DnnSpec& spec = prob.dnns[static_cast<std::size_t>(d)];
    std::vector<soc::PuId> asg(static_cast<std::size_t>(spec.net->group_count()), plat_.gpu());
    s.assignment.push_back(std::move(asg));
  }
  const RunStats stats = exec.run(prob, [&] { return s; }, 3);
  // The consumer can only record frame k after the producer recorded k:
  // check record ordering per frame index.
  std::vector<int> producer_pos(3, -1), consumer_pos(3, -1);
  for (std::size_t i = 0; i < stats.frames.size(); ++i) {
    const FrameRecord& f = stats.frames[i];
    (f.dnn == 0 ? producer_pos : consumer_pos)[static_cast<std::size_t>(f.frame)] =
        static_cast<int>(i);
  }
  for (int k = 0; k < 3; ++k) {
    ASSERT_GE(producer_pos[static_cast<std::size_t>(k)], 0);
    ASSERT_GE(consumer_pos[static_cast<std::size_t>(k)], 0);
    EXPECT_LT(producer_pos[static_cast<std::size_t>(k)],
              consumer_pos[static_cast<std::size_t>(k)])
        << "frame " << k;
  }
}

TEST_F(RuntimeFixture, HotSwapTakesEffect) {
  const Executor exec(plat_, fast());
  const sched::Schedule before = pinned(plat_.gpu(), plat_.gpu());
  const sched::Schedule after = pinned(plat_.gpu(), plat_.dsa());
  std::atomic<int> calls{0};
  std::mutex m;
  const RunStats stats = exec.run(
      inst_.problem(),
      [&] {
        std::lock_guard<std::mutex> lock(m);
        return calls.fetch_add(1) < 2 ? before : after;
      },
      6);
  // The provider is consulted once per DNN per frame.
  EXPECT_EQ(calls.load(), 12);
  EXPECT_EQ(stats.frames.size(), 12u);
}

TEST_F(RuntimeFixture, SamePuSerializesInWallClock) {
  // Use a pair where the two-PU split genuinely wins: two DenseNets on
  // Orin (DLA time ~1.5x GPU time, and no mid-network GPU fallbacks that
  // would force the "parallel" case back onto the shared GPU).
  const soc::Platform orin = soc::Platform::orin();
  core::HaxConn hax(orin, [] {
    core::HaxConnOptions o;
    o.grouping.max_groups = 5;
    return o;
  }());
  auto inst = hax.make_problem({{nn::zoo::densenet121()}, {nn::zoo::densenet121()}});
  const sched::Problem& prob = inst.problem();
  const auto pin_pair = [&](soc::PuId a, soc::PuId b) {
    sched::Schedule s;
    for (int d = 0; d < 2; ++d) {
      const soc::PuId pu = d == 0 ? a : b;
      const sched::DnnSpec& spec = prob.dnns[static_cast<std::size_t>(d)];
      std::vector<soc::PuId> asg;
      for (int g = 0; g < spec.net->group_count(); ++g) {
        asg.push_back(spec.profile->at(g, pu).supported ? pu : orin.gpu());
      }
      s.assignment.push_back(std::move(asg));
    }
    return s;
  };
  // Real-time scale: sleep quantization (~0.1 ms/kernel) must stay small
  // relative to the kernels, or it washes out the serialization signal.
  const Executor exec(orin, scaled(1.0));
  const sched::Schedule shared = pin_pair(orin.gpu(), orin.gpu());
  const sched::Schedule split = pin_pair(orin.gpu(), orin.dsa());
  const RunStats serial = exec.run(prob, [&] { return shared; }, 3);
  const RunStats parallel = exec.run(prob, [&] { return split; }, 3);
  // Sharing one PU must take longer than using two. The margin is kept
  // modest: sleep jitter on a loaded host eats into the ideal 1.34x.
  EXPECT_GT(serial.wall_ms, parallel.wall_ms * 1.03);
}

TEST_F(RuntimeFixture, RejectsBadArguments) {
  const Executor exec(plat_, fast());
  const sched::Schedule s = pinned(plat_.gpu(), plat_.dsa());
  EXPECT_THROW((void)exec.run(inst_.problem(), nullptr, 1), PreconditionError);
  EXPECT_THROW((void)exec.run(inst_.problem(), [&] { return s; }, 0), PreconditionError);
  EXPECT_THROW(Executor(plat_, scaled(0.0)), PreconditionError);
}

TEST_F(RuntimeFixture, ProviderScheduleValidated) {
  const Executor exec(plat_, fast());
  sched::Schedule wrong;
  wrong.assignment = {{plat_.gpu()}};
  EXPECT_THROW((void)exec.run(inst_.problem(), [&] { return wrong; }, 1), PreconditionError);
}

}  // namespace
