/// Unit tests for src/perf: cost model, transitions, profiler, EMC estimator.

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "grouping/grouping.h"
#include "nn/builder.h"
#include "nn/zoo.h"
#include "perf/cost_model.h"
#include "perf/emc_estimator.h"
#include "perf/profiler.h"
#include "perf/transition.h"
#include "soc/platform.h"

namespace {

using namespace hax;
using namespace hax::perf;

nn::Layer conv_layer(int in_c, int hw, int out_c, int k) {
  nn::Layer l;
  l.kind = nn::LayerKind::Conv;
  l.in = {in_c, hw, hw};
  l.out = {out_c, hw, hw};
  l.kernel = k;
  l.inputs = {0};
  return l;
}

// ------------------------------------------------------------ cost model --

TEST(CostModel, TimePositiveAndMonotoneInWork) {
  const auto plat = soc::Platform::orin();
  const CostModel cm(plat);
  const TimeMs small = cm.layer_time(conv_layer(64, 14, 64, 3), plat.gpu());
  const TimeMs big = cm.layer_time(conv_layer(64, 56, 256, 3), plat.gpu());
  EXPECT_GT(small, 0.0);
  EXPECT_GT(big, small);
}

TEST(CostModel, DlaSlowerOnLargeLayers) {
  const auto plat = soc::Platform::xavier();
  const CostModel cm(plat);
  const nn::Layer l = conv_layer(512, 28, 512, 3);
  EXPECT_GT(cm.layer_time(l, plat.dsa()), cm.layer_time(l, plat.gpu()));
}

TEST(CostModel, GoogleNetGroupRatiosInPaperBand) {
  // Table 2: DLA/GPU per-group ratios between ~1.4x and ~2.0x. Allow a
  // slightly wider band; the *spread* matters for scheduling.
  const auto plat = soc::Platform::xavier();
  const auto gn = grouping::build_groups(nn::zoo::googlenet(), {.max_groups = 10});
  const CostModel cm(plat);
  double lo = 100.0, hi = 0.0;
  for (int g = 0; g < gn.group_count(); ++g) {
    if (!gn.supported(g, soc::PuKind::Dsa)) continue;
    const double ratio = cm.group_time(gn, g, plat.dsa()) / cm.group_time(gn, g, plat.gpu());
    lo = std::min(lo, ratio);
    hi = std::max(hi, ratio);
    EXPECT_GT(ratio, 1.1) << "group " << gn.group(g).label;
    EXPECT_LT(ratio, 2.8) << "group " << gn.group(g).label;
  }
  EXPECT_GT(hi - lo, 0.3);  // heterogeneity the scheduler can exploit
}

TEST(CostModel, VggDlaPenaltyLargerThanGoogleNet) {
  // Sec 5.4: VGG19 runs substantially worse on DLA than GoogleNet does
  // (relative to GPU), which is why VGG pairs stay GPU-only.
  const auto plat = soc::Platform::orin();
  const CostModel cm(plat);
  const auto ratio = [&](nn::Network net) {
    return cm.network_time(net, plat.dsa(), plat.gpu()) / cm.network_time(net, plat.gpu());
  };
  EXPECT_GT(ratio(nn::zoo::vgg19()), ratio(nn::zoo::googlenet()) + 0.3);
}

TEST(CostModel, FusedElementwiseNearlyFree) {
  const auto plat = soc::Platform::orin();
  const CostModel cm(plat);
  nn::Layer relu;
  relu.kind = nn::LayerKind::Activation;
  relu.in = relu.out = {64, 56, 56};  // fits the 4 MiB L2
  relu.inputs = {0};
  const TimeMs t = cm.layer_time(relu, plat.gpu());
  EXPECT_LT(t, plat.pu(plat.gpu()).params().per_layer_overhead_ms);
}

TEST(CostModel, LargeElementwiseNotFree) {
  const auto plat = soc::Platform::orin();
  const CostModel cm(plat);
  nn::Layer relu;
  relu.kind = nn::LayerKind::Activation;
  relu.in = relu.out = {64, 512, 512};  // 32 MiB: spills to DRAM
  relu.inputs = {0};
  EXPECT_GT(cm.layer_time(relu, plat.gpu()),
            plat.pu(plat.gpu()).params().per_layer_overhead_ms);
}

TEST(CostModel, DemandNeverExceedsStreamBandwidth) {
  const auto plat = soc::Platform::xavier();
  const CostModel cm(plat);
  for (const auto& name : {"GoogleNet", "VGG19", "ResNet50"}) {
    const nn::Network net = nn::zoo::by_name(name);
    for (const nn::Layer& l : net.layers()) {
      for (soc::PuId pu : plat.schedulable_pus()) {
        if (!l.supported_on(plat.pu(pu).params().kind)) continue;
        EXPECT_LE(cm.layer_demand(l, pu),
                  plat.pu(pu).params().max_stream_gbps * 1.0001)
            << name << " layer " << l.name;
      }
    }
  }
}

TEST(CostModel, DemandSubstantialForMemoryHeavyConvs) {
  // The paper's whole premise: DNN layers demand a large fraction of EMC
  // bandwidth (Table 2 shows 42-78%).
  const auto plat = soc::Platform::xavier();
  const CostModel cm(plat);
  const nn::Layer stem = conv_layer(64, 112, 64, 3);
  EXPECT_GT(cm.layer_demand(stem, plat.gpu()), 0.25 * plat.memory().total_gbps());
}

TEST(CostModel, GroupAggregatesConsistent) {
  const auto plat = soc::Platform::orin();
  const auto gn = grouping::build_groups(nn::zoo::resnet18(), {.max_groups = 6});
  const CostModel cm(plat);
  for (int g = 0; g < gn.group_count(); ++g) {
    TimeMs sum = 0.0;
    for (int i = gn.group(g).first; i <= gn.group(g).last; ++i) {
      sum += cm.layer_time(gn.network().layer(i), plat.gpu());
    }
    EXPECT_NEAR(cm.group_time(gn, g, plat.gpu()), sum, 1e-9);
    const GBps demand = cm.group_demand(gn, g, plat.gpu());
    EXPECT_NEAR(demand * cm.group_time(gn, g, plat.gpu()),
                bytes_over_ms(cm.group_dram_bytes(gn, g, plat.gpu()), 1.0), 1e-6);
  }
}

TEST(CostModel, NetworkTimeRequiresFallbackForUnsupported) {
  const auto plat = soc::Platform::orin();
  const CostModel cm(plat);
  const nn::Network net = nn::zoo::googlenet();  // contains LRN
  EXPECT_THROW((void)cm.network_time(net, plat.dsa()), PreconditionError);
  EXPECT_GT(cm.network_time(net, plat.dsa(), plat.gpu()), 0.0);
}

TEST(CostModel, UnsupportedLayerThrows) {
  const auto plat = soc::Platform::orin();
  const CostModel cm(plat);
  nn::Layer lrn;
  lrn.kind = nn::LayerKind::Lrn;
  lrn.in = lrn.out = {64, 56, 56};
  lrn.inputs = {0};
  EXPECT_THROW((void)cm.layer_time(lrn, plat.dsa()), PreconditionError);
}

TEST(CostModel, Table5ShapeHolds) {
  // Standalone runtime ratios DLA/GPU within the paper's observed band
  // (1.4-3.3) for the evaluation set, on both NVIDIA platforms.
  for (const auto& plat : {soc::Platform::orin(), soc::Platform::xavier()}) {
    const CostModel cm(plat);
    for (const auto& name : nn::zoo::evaluation_set()) {
      const nn::Network net = nn::zoo::by_name(name);
      const double ratio =
          cm.network_time(net, plat.dsa(), plat.gpu()) / cm.network_time(net, plat.gpu());
      EXPECT_GT(ratio, 1.3) << plat.name() << " " << name;
      EXPECT_LT(ratio, 3.3) << plat.name() << " " << name;
    }
  }
}

// ------------------------------------------------------------ transitions --

TEST(Transition, SamePuBoundaryFree) {
  const auto plat = soc::Platform::xavier();
  const auto gn = grouping::build_groups(nn::zoo::googlenet(), {.max_groups = 8});
  const TransitionModel tm(plat);
  EXPECT_DOUBLE_EQ(tm.boundary_cost(gn, 0, plat.gpu(), plat.gpu()), 0.0);
}

TEST(Transition, CrossPuBoundaryIsOutPlusIn) {
  const auto plat = soc::Platform::xavier();
  const auto gn = grouping::build_groups(nn::zoo::googlenet(), {.max_groups = 8});
  const TransitionModel tm(plat);
  const TimeMs cost = tm.boundary_cost(gn, 2, plat.gpu(), plat.dsa());
  EXPECT_NEAR(cost, tm.out_cost(gn, 2, plat.gpu()) + tm.in_cost(gn, 3, plat.dsa()), 1e-12);
  EXPECT_GT(cost, 0.0);
}

TEST(Transition, ReformatMakesDsaLegsDearer) {
  const auto plat = soc::Platform::xavier();
  const auto gn = grouping::build_groups(nn::zoo::vgg19(), {.max_groups = 8});
  const TransitionModel tm(plat);
  // The DLA flushes through a reformat pass and has lower bandwidth, so
  // leaving the DLA costs more than leaving the GPU at the same boundary.
  for (int g = 0; g + 1 < gn.group_count(); ++g) {
    EXPECT_GT(tm.out_cost(gn, g, plat.dsa()), tm.out_cost(gn, g, plat.gpu()));
  }
}

TEST(Transition, SmallerBoundaryTensorsCheaper) {
  // Table 2: transition time decreases as the boundary tensor shrinks
  // deeper in the network. Compare VGG19's first and last boundaries.
  const auto plat = soc::Platform::xavier();
  const auto gn = grouping::build_groups(nn::zoo::vgg19(), {.max_groups = 8});
  const TransitionModel tm(plat);
  EXPECT_GT(gn.group(0).output_bytes, gn.group(gn.group_count() - 2).output_bytes);
  EXPECT_GT(tm.out_cost(gn, 0, plat.gpu()),
            tm.out_cost(gn, gn.group_count() - 2, plat.gpu()));
}

TEST(Transition, CostsSmallRelativeToExecution) {
  // Table 2 scale: transitions are 10-100x cheaper than group execution.
  const auto plat = soc::Platform::xavier();
  const auto gn = grouping::build_groups(nn::zoo::googlenet(), {.max_groups = 10});
  const TransitionModel tm(plat);
  const CostModel cm(plat);
  for (int g = 0; g + 1 < gn.group_count(); ++g) {
    EXPECT_LT(tm.boundary_cost(gn, g, plat.gpu(), plat.dsa()),
              cm.group_time(gn, g, plat.gpu()));
  }
}

TEST(Transition, NoBoundaryAfterLastGroup) {
  const auto plat = soc::Platform::xavier();
  const auto gn = grouping::build_groups(nn::zoo::alexnet(), {.max_groups = 4});
  const TransitionModel tm(plat);
  EXPECT_THROW((void)tm.boundary_cost(gn, gn.group_count() - 1, plat.gpu(), plat.dsa()),
               PreconditionError);
}

// ----------------------------------------------------------- emc estimator --

TEST(EmcEstimator, UtilizationQuantizedAndClamped) {
  EXPECT_DOUBLE_EQ(EmcEstimator::measure_utilization(50.0, 100.0), 0.5);
  EXPECT_NEAR(EmcEstimator::measure_utilization(33.4, 100.0), 0.33, 1e-12);
  EXPECT_DOUBLE_EQ(EmcEstimator::measure_utilization(500.0, 100.0), 1.0);
  EXPECT_DOUBLE_EQ(EmcEstimator::measure_utilization(10.0, 0.0), 0.0);
}

TEST(EmcEstimator, EstimateScalesByUtilRatio) {
  EXPECT_DOUBLE_EQ(EmcEstimator::estimate_demand(80.0, 0.40, 0.20), 40.0);
  EXPECT_DOUBLE_EQ(EmcEstimator::estimate_demand(80.0, 0.0, 0.20), 0.0);
}

TEST(EmcEstimator, RoundTripAccuracy) {
  // Reconstruction error is bounded by the counter quantization.
  const GBps emc = 136.5;
  const GBps gpu_demand = 72.0;
  const GBps dsa_true = 38.0;
  const double gpu_util = EmcEstimator::measure_utilization(gpu_demand, emc);
  const double dsa_util = EmcEstimator::measure_utilization(dsa_true, emc);
  const GBps est = EmcEstimator::estimate_demand(gpu_demand, gpu_util, dsa_util);
  EXPECT_NEAR(est, dsa_true, 0.02 * emc);
}

// --------------------------------------------------------------- profiler --

TEST(Profiler, RecordsMatchCostModel) {
  const auto plat = soc::Platform::xavier();
  const auto gn = grouping::build_groups(nn::zoo::resnet18(), {.max_groups = 6});
  const Profiler prof(plat);
  const NetworkProfile db = prof.profile(gn);
  const CostModel& cm = prof.cost_model();
  for (int g = 0; g < gn.group_count(); ++g) {
    EXPECT_NEAR(db.at(g, plat.gpu()).time_ms, cm.group_time(gn, g, plat.gpu()), 1e-9);
    EXPECT_NEAR(db.at(g, plat.gpu()).demand_gbps, cm.group_demand(gn, g, plat.gpu()), 1e-9);
  }
}

TEST(Profiler, GpuExactDsaEstimated) {
  const auto plat = soc::Platform::xavier();
  const auto gn = grouping::build_groups(nn::zoo::resnet18(), {.max_groups = 6});
  const NetworkProfile db = Profiler(plat).profile(gn);
  for (int g = 0; g < gn.group_count(); ++g) {
    EXPECT_FALSE(db.at(g, plat.gpu()).demand_estimated);
    if (db.at(g, plat.dsa()).supported) {
      EXPECT_TRUE(db.at(g, plat.dsa()).demand_estimated);
    }
  }
}

TEST(Profiler, EstimatedDemandCloseToTruth) {
  const auto plat = soc::Platform::xavier();
  const auto gn = grouping::build_groups(nn::zoo::resnet18(), {.max_groups = 6});
  const Profiler prof(plat);
  const NetworkProfile db = prof.profile(gn);
  for (int g = 0; g < gn.group_count(); ++g) {
    const GroupProfile& rec = db.at(g, plat.dsa());
    if (!rec.supported) continue;
    const GBps truth = prof.cost_model().group_demand(gn, g, plat.dsa());
    // Error bounded by counter quantization (plus ratio amplification).
    EXPECT_NEAR(rec.demand_gbps, truth, 0.08 * plat.memory().total_gbps())
        << "group " << gn.group(g).label;
  }
}

TEST(Profiler, UnsupportedGroupsMarked) {
  const auto plat = soc::Platform::orin();
  const auto gn = grouping::build_groups(nn::zoo::alexnet(), {.max_groups = 8});
  const NetworkProfile db = Profiler(plat).profile(gn);
  int unsupported = 0;
  for (int g = 0; g < gn.group_count(); ++g) {
    EXPECT_TRUE(db.at(g, plat.gpu()).supported);
    if (!db.at(g, plat.dsa()).supported) ++unsupported;
  }
  EXPECT_GT(unsupported, 0);  // LRN groups
  EXPECT_TRUE(std::isinf(db.total_time(plat.dsa())));
}

TEST(Profiler, FastestPuPicksGpuForVgg) {
  const auto plat = soc::Platform::orin();
  const auto gn = grouping::build_groups(nn::zoo::vgg19(), {.max_groups = 8});
  const NetworkProfile db = Profiler(plat).profile(gn);
  EXPECT_EQ(db.fastest_pu(plat.schedulable_pus()), plat.gpu());
}

TEST(Profiler, LayerRecordsSumToGroupTimes) {
  const auto plat = soc::Platform::xavier();
  const auto gn = grouping::build_groups(nn::zoo::googlenet(), {.max_groups = 10});
  const NetworkProfile db = Profiler(plat).profile(gn);
  for (int g = 0; g < gn.group_count(); ++g) {
    TimeMs sum = 0.0;
    for (int i = gn.group(g).first; i <= gn.group(g).last; ++i) {
      sum += db.layer_at(i, plat.gpu()).time_ms;
    }
    EXPECT_NEAR(sum, db.at(g, plat.gpu()).time_ms, 1e-9);
  }
}

TEST(Profiler, TransitionCostsRecorded) {
  const auto plat = soc::Platform::xavier();
  const auto gn = grouping::build_groups(nn::zoo::googlenet(), {.max_groups = 10});
  const Profiler prof(plat);
  const NetworkProfile db = prof.profile(gn);
  for (int g = 0; g < gn.group_count(); ++g) {
    EXPECT_NEAR(db.at(g, plat.gpu()).tau_out, prof.transition_model().out_cost(gn, g, plat.gpu()),
                1e-12);
    EXPECT_NEAR(db.at(g, plat.gpu()).tau_in, prof.transition_model().in_cost(gn, g, plat.gpu()),
                1e-12);
  }
}

TEST(Profiler, BoundsChecked) {
  const auto plat = soc::Platform::xavier();
  const auto gn = grouping::build_groups(nn::zoo::alexnet(), {.max_groups = 4});
  const NetworkProfile db = Profiler(plat).profile(gn);
  EXPECT_THROW((void)db.at(-1, 0), PreconditionError);
  EXPECT_THROW((void)db.at(0, 99), PreconditionError);
  EXPECT_THROW((void)db.layer_at(9999, 0), PreconditionError);
}

}  // namespace
