/// Tests for nn/summary.h, sched/validate.h, and a broad model x platform
/// profiling sweep asserting basic sanity of every zoo model on every
/// platform preset.

#include <gtest/gtest.h>

#include "baselines/baselines.h"
#include "common/error.h"
#include "core/haxconn.h"
#include "grouping/grouping.h"
#include "nn/summary.h"
#include "nn/zoo.h"
#include "perf/profiler.h"
#include "sched/validate.h"

namespace {

using namespace hax;

// ---------------------------------------------------------------- summary --

TEST(Summary, KindStatisticsCoverNetwork) {
  const nn::Network net = nn::zoo::resnet18();
  const auto stats = nn::kind_statistics(net);
  int count = 0;
  Flops flops = 0;
  for (const auto& s : stats) {
    count += s.count;
    flops += s.flops;
  }
  EXPECT_EQ(count, net.layer_count());
  EXPECT_EQ(flops, net.total_flops());
  // Sorted by FLOPs descending; conv dominates a ResNet.
  ASSERT_FALSE(stats.empty());
  EXPECT_EQ(stats.front().kind, nn::LayerKind::Conv);
  for (std::size_t i = 1; i < stats.size(); ++i) {
    EXPECT_GE(stats[i - 1].flops, stats[i].flops);
  }
}

TEST(Summary, LayerTableTruncates) {
  const nn::Network net = nn::zoo::googlenet();
  const std::string full = nn::layer_table(net, 0);
  const std::string truncated = nn::layer_table(net, 10);
  EXPECT_GT(full.size(), truncated.size());
  EXPECT_NE(truncated.find("more layers"), std::string::npos);
  EXPECT_EQ(full.find("more layers"), std::string::npos);
}

TEST(Summary, SummarizeMentionsNameAndDominantKind) {
  const std::string s = nn::summarize(nn::zoo::vgg19());
  EXPECT_NE(s.find("VGG19"), std::string::npos);
  EXPECT_NE(s.find("conv"), std::string::npos);
  EXPECT_NE(s.find("GFLOPs"), std::string::npos);
}

// --------------------------------------------------------------- validate --

class ValidateFixture : public testing::Test {
 protected:
  ValidateFixture()
      : plat_(soc::Platform::xavier()),
        inst_(plat_, sched::Objective::MinMaxLatency, {.max_groups = 6}) {
    inst_.add_dnn(nn::zoo::googlenet());
    inst_.add_dnn(nn::zoo::resnet18());
  }

  soc::Platform plat_;
  sched::ProblemInstance inst_;
};

TEST_F(ValidateFixture, ValidSchedulePasses) {
  const auto report = sched::validate_schedule(
      inst_.problem(), baselines::naive_concurrent(inst_.problem()),
      {.enforce_transition_budget = false});
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST_F(ValidateFixture, ReportsEveryIssueKind) {
  const sched::Problem& prob = inst_.problem();

  sched::Schedule wrong_dnns;
  wrong_dnns.assignment = {{plat_.gpu()}};
  auto report = sched::validate_schedule(prob, wrong_dnns);
  ASSERT_EQ(report.issues.size(), 1u);
  EXPECT_EQ(report.issues[0].kind, sched::IssueKind::ShapeMismatch);

  sched::Schedule bad = baselines::gpu_only(prob);
  bad.assignment[0][0] = 99;                       // unknown PU
  bad.assignment[0][1] = plat_.cpu();              // not schedulable
  bad.assignment[1][0] = plat_.dsa();              // fine (supported)
  report = sched::validate_schedule(prob, bad, {.enforce_transition_budget = false});
  ASSERT_FALSE(report.ok());
  bool saw_unknown = false, saw_not_schedulable = false;
  for (const auto& issue : report.issues) {
    saw_unknown |= issue.kind == sched::IssueKind::UnknownPu;
    saw_not_schedulable |= issue.kind == sched::IssueKind::PuNotSchedulable;
  }
  EXPECT_TRUE(saw_unknown);
  EXPECT_TRUE(saw_not_schedulable);

  // Unsupported group: GoogleNet's LRN group on the DLA.
  sched::Schedule unsupported = baselines::gpu_only(prob);
  for (int g = 0; g < prob.dnns[0].net->group_count(); ++g) {
    if (!prob.dnns[0].profile->at(g, plat_.dsa()).supported) {
      unsupported.assignment[0][static_cast<std::size_t>(g)] = plat_.dsa();
      break;
    }
  }
  report = sched::validate_schedule(prob, unsupported, {.enforce_transition_budget = false});
  bool saw_unsupported = false;
  for (const auto& issue : report.issues) {
    saw_unsupported |= issue.kind == sched::IssueKind::UnsupportedGroup;
  }
  EXPECT_TRUE(saw_unsupported);
}

TEST_F(ValidateFixture, TransitionBudgetToggle) {
  sched::Schedule zigzag = baselines::gpu_only(inst_.problem());
  const sched::DnnSpec& spec = inst_.problem().dnns[1];
  for (int g = 0; g < spec.net->group_count(); g += 2) {
    if (spec.profile->at(g, plat_.dsa()).supported) {
      zigzag.assignment[1][static_cast<std::size_t>(g)] = plat_.dsa();
    }
  }
  ASSERT_GT(zigzag.transition_count(1), inst_.problem().max_transitions);
  EXPECT_FALSE(sched::validate_schedule(inst_.problem(), zigzag).ok());
  EXPECT_TRUE(sched::validate_schedule(inst_.problem(), zigzag,
                                       {.enforce_transition_budget = false})
                  .ok());
}

TEST_F(ValidateFixture, ReportRendering) {
  sched::Schedule bad = baselines::gpu_only(inst_.problem());
  bad.assignment[0][0] = 99;
  const auto report =
      sched::validate_schedule(inst_.problem(), bad, {.enforce_transition_budget = false});
  const std::string text = report.to_string();
  EXPECT_NE(text.find("unknown-pu"), std::string::npos);
  EXPECT_NE(text.find("dnn 0"), std::string::npos);
}

// -------------------------------------------- model x platform sweeps --

struct SweepCase {
  const char* model;
  const char* platform;
};

class ProfileSweep : public testing::TestWithParam<SweepCase> {};

/// Every zoo model profiles sanely on every platform preset: positive
/// times, bounded demands, consistent layer/group aggregation, GPU always
/// a full fallback.
TEST_P(ProfileSweep, ProfilesSanely) {
  const auto [model, plat_name] = GetParam();
  const soc::Platform plat = std::string(plat_name) == "orin"   ? soc::Platform::orin()
                             : std::string(plat_name) == "xavier" ? soc::Platform::xavier()
                                                                  : soc::Platform::sd865();
  const auto gn = grouping::build_groups(nn::zoo::by_name(model), {.max_groups = 10});
  const perf::NetworkProfile db = perf::Profiler(plat).profile(gn);

  for (int g = 0; g < gn.group_count(); ++g) {
    const auto& gpu_rec = db.at(g, plat.gpu());
    ASSERT_TRUE(gpu_rec.supported);
    EXPECT_GT(gpu_rec.time_ms, 0.0);
    EXPECT_GE(gpu_rec.demand_gbps, 0.0);
    EXPECT_LE(gpu_rec.demand_gbps, plat.pu(plat.gpu()).params().max_stream_gbps * 1.001);
    EXPECT_GE(gpu_rec.tau_out, 0.0);
    const auto& dsa_rec = db.at(g, plat.dsa());
    if (dsa_rec.supported) {
      EXPECT_GT(dsa_rec.time_ms, gpu_rec.time_ms * 0.5);  // DSA never absurdly fast
      EXPECT_TRUE(dsa_rec.demand_estimated);
    }
  }
  EXPECT_GT(db.total_time(plat.gpu()), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    ZooByPlatform, ProfileSweep,
    testing::Values(SweepCase{"AlexNet", "orin"}, SweepCase{"CaffeNet", "xavier"},
                    SweepCase{"VGG16", "sd865"}, SweepCase{"VGG19", "orin"},
                    SweepCase{"GoogleNet", "sd865"}, SweepCase{"ResNet18", "xavier"},
                    SweepCase{"ResNet34", "orin"}, SweepCase{"ResNet50", "sd865"},
                    SweepCase{"ResNet101", "orin"}, SweepCase{"ResNet152", "xavier"},
                    SweepCase{"Inception", "sd865"}, SweepCase{"Inc-res-v2", "xavier"},
                    SweepCase{"DenseNet", "orin"}, SweepCase{"FCN-ResNet18", "xavier"},
                    SweepCase{"MobileNet", "sd865"}, SweepCase{"SqueezeNet", "orin"}),
    [](const auto& info) {
      std::string n = std::string(info.param.model) + "_" + info.param.platform;
      for (char& c : n) {
        if (c == '-') c = '_';
      }
      return n;
    });

}  // namespace
