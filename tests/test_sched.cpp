/// Unit tests for src/sched: schedules, problems, the Eq 2-9 predictor,
/// the search space, and optimal schedule generation.

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "core/evaluate.h"
#include "nn/zoo.h"
#include "sched/formulation.h"
#include "sched/problem.h"
#include "sched/schedule.h"
#include "sched/search_space.h"
#include "sched/solve.h"

namespace {

using namespace hax;
using namespace hax::sched;

// -------------------------------------------------------------- schedule --

TEST(Schedule, TransitionCounting) {
  Schedule s;
  s.assignment = {{0, 0, 1, 1, 0}, {1, 1, 1}};
  EXPECT_EQ(s.transition_count(0), 2);
  EXPECT_EQ(s.transition_count(1), 0);
  EXPECT_EQ(s.total_transitions(), 2);
  EXPECT_EQ(s.transition_points(0), (std::vector<int>{1, 3}));
  EXPECT_TRUE(s.transition_points(1).empty());
}

TEST(Schedule, UniformFactory) {
  const Schedule s = uniform_schedule({3, 5}, 1);
  EXPECT_EQ(s.dnn_count(), 2);
  EXPECT_EQ(s.assignment[0].size(), 3u);
  EXPECT_EQ(s.assignment[1].size(), 5u);
  EXPECT_EQ(s.total_transitions(), 0);
  EXPECT_THROW((void)uniform_schedule({0}, 1), PreconditionError);
}

TEST(Schedule, DescribeNamesRuns) {
  const auto plat = soc::Platform::xavier();
  Schedule s;
  s.assignment = {{plat.gpu(), plat.gpu(), plat.dsa()}};
  const std::string d = s.describe(plat);
  EXPECT_NE(d.find("GPU[g0-g1]"), std::string::npos);
  EXPECT_NE(d.find("DLA[g2-g2]"), std::string::npos);
}

TEST(Schedule, BoundsChecked) {
  Schedule s;
  s.assignment = {{0}};
  EXPECT_THROW((void)s.transition_count(1), PreconditionError);
  EXPECT_THROW((void)s.transition_points(-1), PreconditionError);
}

// --------------------------------------------------------------- problem --

class SchedFixture : public testing::Test {
 protected:
  SchedFixture()
      : plat_(soc::Platform::xavier()),
        inst_(plat_, Objective::MinMaxLatency, {.max_groups = 6}) {
    inst_.add_dnn(nn::zoo::googlenet());
    inst_.add_dnn(nn::zoo::resnet18());
    inst_.problem().epsilon_ms = 0.5;
  }

  Schedule pin_all(soc::PuId pu) const {
    const Problem& prob = inst_.problem();
    Schedule s;
    for (const DnnSpec& spec : prob.dnns) {
      std::vector<soc::PuId> asg;
      for (int g = 0; g < spec.net->group_count(); ++g) {
        asg.push_back(spec.profile->at(g, pu).supported ? pu : plat_.gpu());
      }
      s.assignment.push_back(std::move(asg));
    }
    return s;
  }

  soc::Platform plat_;
  ProblemInstance inst_;
};

TEST_F(SchedFixture, ProblemValidates) {
  EXPECT_NO_THROW(inst_.problem().validate());
  Problem bad = inst_.problem();
  bad.pccs = nullptr;
  EXPECT_THROW(bad.validate(), PreconditionError);
  bad = inst_.problem();
  bad.pus.clear();
  EXPECT_THROW(bad.validate(), PreconditionError);
  bad = inst_.problem();
  bad.dnns[1].depends_on = 1;  // self-dependency
  EXPECT_THROW(bad.validate(), PreconditionError);
}

TEST_F(SchedFixture, GroupCounts) {
  const auto counts = inst_.problem().group_counts();
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[0], inst_.grouped(0).group_count());
  EXPECT_LE(counts[0], 6);
}

TEST(Problem, ObjectiveNames) {
  EXPECT_STREQ(to_string(Objective::MinMaxLatency), "min-latency");
  EXPECT_STREQ(to_string(Objective::MaxThroughput), "max-fps");
}

// ------------------------------------------------------------ formulation --

TEST_F(SchedFixture, SingleDnnPredictionMatchesStandalone) {
  // Build a one-DNN problem; prediction must equal the profile sum.
  ProblemInstance single(plat_, Objective::MinMaxLatency, {.max_groups = 6});
  single.add_dnn(nn::zoo::googlenet());
  const Problem& prob = single.problem();
  const Formulation f(prob);
  const Schedule s = uniform_schedule(prob.group_counts(), plat_.gpu());
  const Prediction p = f.predict(s);
  ASSERT_TRUE(p.feasible);
  EXPECT_NEAR(p.round_ms, prob.dnns[0].profile->total_time(plat_.gpu()), 1e-6);
  EXPECT_DOUBLE_EQ(p.total_queue_ms, 0.0);
}

TEST_F(SchedFixture, PredictionMatchesSimulatorForPinnedSchedules) {
  const Problem& prob = inst_.problem();
  const Formulation f(prob);
  const Schedule split = [&] {
    Schedule s = pin_all(plat_.gpu());
    s.assignment[1] = pin_all(plat_.dsa()).assignment[1];
    return s;
  }();
  const Prediction p = f.predict(split, {.enforce_epsilon = false});
  const core::EvalResult ev = core::evaluate(prob, split);
  EXPECT_NEAR(p.round_ms, ev.round_latency_ms, 0.05 * ev.round_latency_ms);
}

TEST_F(SchedFixture, ContentionBlindPredictsFaster) {
  const Problem& prob = inst_.problem();
  const Formulation f(prob);
  Schedule split = pin_all(plat_.gpu());
  split.assignment[1] = pin_all(plat_.dsa()).assignment[1];
  const Prediction aware = f.predict(split, {.enforce_epsilon = false});
  const Prediction blind = f.predict(
      split, {.model_contention = false, .enforce_epsilon = false});
  EXPECT_LT(blind.round_ms, aware.round_ms);
}

TEST_F(SchedFixture, TransitionBudgetEnforced) {
  const Problem& prob = inst_.problem();
  const Formulation f(prob);
  // A zig-zag schedule with many transitions on DNN1 (ResNet18 supports
  // the DSA everywhere except its head).
  Schedule zigzag = pin_all(plat_.gpu());
  const DnnSpec& spec = prob.dnns[1];
  for (int g = 0; g < spec.net->group_count(); g += 2) {
    if (spec.profile->at(g, plat_.dsa()).supported) {
      zigzag.assignment[1][static_cast<std::size_t>(g)] = plat_.dsa();
    }
  }
  ASSERT_GT(zigzag.transition_count(1), prob.max_transitions);
  EXPECT_FALSE(f.predict(zigzag).feasible);
  EXPECT_TRUE(std::isinf(f.predict(zigzag).objective_value));
  // Without the budget the same schedule is evaluated on its merits.
  EXPECT_TRUE(f.predict(zigzag, {.enforce_transition_budget = false,
                                 .enforce_epsilon = false})
                  .feasible);
}

TEST_F(SchedFixture, UnsupportedAssignmentInfeasible) {
  const Problem& prob = inst_.problem();
  const Formulation f(prob);
  const Schedule bad = uniform_schedule(prob.group_counts(), plat_.dsa());
  // GoogleNet's LRN groups cannot run on the DLA.
  EXPECT_FALSE(f.predict(bad).feasible);
}

TEST_F(SchedFixture, EpsilonRejectsOversubscription) {
  const Problem& prob = inst_.problem();
  const Formulation f(prob);
  const Schedule both_gpu = pin_all(plat_.gpu());
  // Two DNNs time-sharing the GPU queue far beyond ε=0.5ms.
  const Prediction with_eps = f.predict(both_gpu);
  EXPECT_FALSE(with_eps.feasible);
  const Prediction no_eps = f.predict(both_gpu, {.enforce_epsilon = false});
  EXPECT_TRUE(no_eps.feasible);
  EXPECT_GT(no_eps.total_queue_ms, prob.epsilon_ms);
}

TEST_F(SchedFixture, ThroughputObjectiveNegatesFps) {
  Problem prob = inst_.problem();
  prob.objective = Objective::MaxThroughput;
  const Formulation f(prob);
  Schedule split = pin_all(plat_.gpu());
  split.assignment[1] = pin_all(plat_.dsa()).assignment[1];
  const Prediction p = f.predict(split, {.enforce_epsilon = false});
  EXPECT_NEAR(p.objective_value, -p.fps, 1e-9);
  EXPECT_GT(p.fps, 0.0);
}

TEST_F(SchedFixture, PipelineDependencyLengthensRound) {
  ProblemInstance pipe(plat_, Objective::MinMaxLatency, {.max_groups = 6});
  pipe.add_dnn(nn::zoo::googlenet());
  pipe.add_dnn(nn::zoo::resnet18(), /*depends_on=*/0);
  const Formulation f(pipe.problem());
  const Schedule s = [&] {
    Schedule x = uniform_schedule(pipe.problem().group_counts(), plat_.gpu());
    return x;
  }();
  const Prediction p = f.predict(s, {.enforce_epsilon = false});
  // Serial chain: round time ~ sum of both DNNs.
  const TimeMs t0 = pipe.problem().dnns[0].profile->total_time(plat_.gpu());
  const TimeMs t1 = pipe.problem().dnns[1].profile->total_time(plat_.gpu());
  EXPECT_NEAR(p.round_ms, t0 + t1, 0.05 * (t0 + t1));
}

TEST_F(SchedFixture, MismatchedScheduleRejected) {
  const Formulation f(inst_.problem());
  Schedule wrong;
  wrong.assignment = {{plat_.gpu()}};
  EXPECT_THROW((void)f.predict(wrong), PreconditionError);
}

// ------------------------------------------------------------ search space --

TEST_F(SchedFixture, SpaceVariableCount) {
  const ScheduleSpace space(inst_.problem());
  int expected = 0;
  for (const DnnSpec& spec : inst_.problem().dnns) expected += spec.net->group_count();
  EXPECT_EQ(space.variable_count(), expected);
}

TEST_F(SchedFixture, FlatRoundTrip) {
  const ScheduleSpace space(inst_.problem());
  Schedule s = pin_all(plat_.gpu());
  s.assignment[1][2] = plat_.dsa();
  const auto flat = space.to_flat(s);
  EXPECT_EQ(space.to_schedule(flat), s);
}

TEST_F(SchedFixture, CandidatesPreferPreviousPu) {
  const ScheduleSpace space(inst_.problem());
  // After assigning group 0 of DNN0 to pus[1], the next variable's first
  // candidate should be pus[1] (no transition).
  std::vector<int> prefix{1};
  std::vector<int> cands;
  space.candidates(prefix, cands);
  ASSERT_FALSE(cands.empty());
  EXPECT_EQ(cands.front(), 1);
}

TEST_F(SchedFixture, CandidatesRespectSupport) {
  const ScheduleSpace space(inst_.problem());
  const Problem& prob = inst_.problem();
  // Find a GoogleNet group unsupported on the DSA and check the DSA is
  // not offered there.
  const DnnSpec& spec = prob.dnns[0];
  for (int g = 0; g < spec.net->group_count(); ++g) {
    if (spec.profile->at(g, plat_.dsa()).supported) continue;
    std::vector<int> prefix(static_cast<std::size_t>(g), 0);  // all GPU so far
    std::vector<int> cands;
    space.candidates(prefix, cands);
    for (int c : cands) EXPECT_EQ(prob.pus[static_cast<std::size_t>(c)], plat_.gpu());
    return;
  }
  FAIL() << "expected a GPU-only group in GoogleNet";
}

TEST_F(SchedFixture, LowerBoundAdmissible) {
  const ScheduleSpace space(inst_.problem());
  const Problem& prob = inst_.problem();
  // For several complete schedules, every prefix bound must not exceed
  // the final objective.
  std::vector<Schedule> schedules{pin_all(plat_.gpu())};
  {
    Schedule s = pin_all(plat_.gpu());
    s.assignment[1] = pin_all(plat_.dsa()).assignment[1];
    schedules.push_back(s);
  }
  for (const Schedule& s : schedules) {
    const auto flat = space.to_flat(s);
    const double objective = space.evaluate(flat);
    if (std::isinf(objective)) continue;
    for (std::size_t depth = 0; depth <= flat.size(); ++depth) {
      EXPECT_LE(space.lower_bound(std::span(flat).first(depth)), objective + 1e-9)
          << "depth " << depth;
    }
  }
  (void)prob;
}

// ----------------------------------------------------------------- solve --

TEST_F(SchedFixture, SolveFindsFeasibleOptimal) {
  const ScheduleSolution sol = solve_schedule(inst_.problem());
  EXPECT_TRUE(sol.proven_optimal);
  ASSERT_FALSE(sol.schedule.assignment.empty());
  EXPECT_TRUE(sol.prediction.feasible);
  for (int d = 0; d < 2; ++d) {
    EXPECT_LE(sol.schedule.transition_count(d), inst_.problem().max_transitions);
  }
}

TEST_F(SchedFixture, SolveBeatsOrMatchesExhaustiveRestrictedEnumeration) {
  // Cross-check optimality: enumerate all schedules with <= 1 transition
  // per DNN through the same predictor and compare.
  const Problem& prob = inst_.problem();
  const Formulation f(prob);
  const ScheduleSolution sol = solve_schedule(prob);

  double best = std::numeric_limits<double>::infinity();
  const auto counts = prob.group_counts();
  const auto enumerate_dnn = [&](int dnn) {
    std::vector<std::vector<soc::PuId>> options;
    const int n = counts[static_cast<std::size_t>(dnn)];
    for (soc::PuId a : prob.pus) {
      for (soc::PuId b : prob.pus) {
        for (int cut = 0; cut <= n; ++cut) {
          if (cut == 0 || cut == n) {
            if (a != b) continue;  // no transition: only uniform
          }
          std::vector<soc::PuId> asg;
          for (int g = 0; g < n; ++g) asg.push_back(g < cut ? a : b);
          options.push_back(std::move(asg));
        }
      }
    }
    return options;
  };
  for (const auto& a0 : enumerate_dnn(0)) {
    for (const auto& a1 : enumerate_dnn(1)) {
      Schedule s;
      s.assignment = {a0, a1};
      best = std::min(best, f.predict(s).objective_value);
    }
  }
  EXPECT_LE(sol.prediction.objective_value, best + 1e-9);
}

TEST_F(SchedFixture, SolveHonorsTimeBudgetAnytime) {
  SolveScheduleOptions options;
  options.time_budget_ms = 1.0;
  const ScheduleSolution sol = solve_schedule(inst_.problem(), options);
  // May or may not prove optimality in 1ms, but must return something.
  EXPECT_FALSE(sol.schedule.assignment.empty());
}

TEST_F(SchedFixture, SolveCallbackSeesImprovingIncumbents) {
  double last = std::numeric_limits<double>::infinity();
  int count = 0;
  (void)solve_schedule(inst_.problem(), {},
                       [&](const Schedule&, const Prediction& p, TimeMs) {
                         EXPECT_LT(p.objective_value, last);
                         last = p.objective_value;
                         ++count;
                         return true;
                       });
  EXPECT_GT(count, 0);
}

TEST_F(SchedFixture, MaxTransitionsZeroForcesPinnedSchedules) {
  Problem prob = inst_.problem();
  prob.max_transitions = 0;
  // Both DNNs have GPU-only head groups, so every zero-transition
  // schedule shares the GPU; lift epsilon so queueing is acceptable.
  prob.epsilon_ms = std::numeric_limits<TimeMs>::infinity();
  const ScheduleSolution sol = solve_schedule(prob);
  ASSERT_FALSE(sol.schedule.assignment.empty());
  EXPECT_EQ(sol.schedule.total_transitions(), 0);
}

}  // namespace
