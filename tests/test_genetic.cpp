/// Unit tests for src/solver/genetic.h: the heuristic GA engine, checked
/// against the exact branch-and-bound on shared search spaces.

#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.h"
#include "common/rng.h"
#include "core/haxconn.h"
#include "nn/zoo.h"
#include "sched/search_space.h"
#include "solver/bnb.h"
#include "solver/genetic.h"

namespace {

using namespace hax;
using namespace hax::solver;

/// Additively separable space (same as the B&B tests use).
class TableSpace : public SearchSpace {
 public:
  TableSpace(int vars, int values, std::uint64_t seed) : values_(values) {
    Rng rng(seed);
    table_.resize(static_cast<std::size_t>(vars));
    for (auto& row : table_) {
      row.resize(static_cast<std::size_t>(values));
      for (double& cell : row) cell = rng.uniform(0.0, 10.0);
    }
  }

  int variable_count() const override { return static_cast<int>(table_.size()); }

  void candidates(std::span<const int>, std::vector<int>& out) const override {
    out.clear();
    for (int v = 0; v < values_; ++v) out.push_back(v);
  }

  double lower_bound(std::span<const int> prefix) const override {
    double cost = 0.0;
    for (std::size_t i = 0; i < prefix.size(); ++i) {
      cost += table_[i][static_cast<std::size_t>(prefix[i])];
    }
    return cost;  // admissible: remaining vars cost >= 0
  }

  double evaluate(std::span<const int> assignment) const override {
    double cost = 0.0;
    for (std::size_t i = 0; i < assignment.size(); ++i) {
      cost += table_[i][static_cast<std::size_t>(assignment[i])];
    }
    return cost;
  }

 private:
  int values_;
  std::vector<std::vector<double>> table_;
};

TEST(Genetic, FindsOptimumOnSeparableSpace) {
  // Separable objectives are easy for a GA; it should match the exact
  // solver when given enough generations.
  const TableSpace space(10, 3, 7);
  const SolveResult exact = BranchAndBound().solve(space);
  GeneticOptions options;
  options.generations = 120;
  const SolveResult ga = GeneticSolver().solve(space, options);
  ASSERT_TRUE(exact.best && ga.best);
  EXPECT_NEAR(ga.best->objective, exact.best->objective, 1e-9);
}

TEST(Genetic, NeverClaimsOptimality) {
  const TableSpace space(6, 2, 3);
  const SolveResult ga = GeneticSolver().solve(space, {});
  EXPECT_FALSE(ga.stats.exhausted);
}

TEST(Genetic, DeterministicForSeed) {
  const TableSpace space(8, 3, 5);
  GeneticOptions options;
  options.generations = 40;
  options.seed = 99;
  const SolveResult a = GeneticSolver().solve(space, options);
  const SolveResult b = GeneticSolver().solve(space, options);
  ASSERT_TRUE(a.best && b.best);
  EXPECT_EQ(a.best->assignment, b.best->assignment);
  EXPECT_DOUBLE_EQ(a.best->objective, b.best->objective);
}

TEST(Genetic, MoreGenerationsNeverWorse) {
  const TableSpace space(12, 4, 11);
  GeneticOptions small;
  small.generations = 5;
  small.seed = 4;
  GeneticOptions large = small;
  large.generations = 150;
  const SolveResult a = GeneticSolver().solve(space, small);
  const SolveResult b = GeneticSolver().solve(space, large);
  ASSERT_TRUE(a.best && b.best);
  EXPECT_LE(b.best->objective, a.best->objective + 1e-12);
}

TEST(Genetic, IncumbentsImproveMonotonically) {
  const TableSpace space(10, 3, 13);
  double last = std::numeric_limits<double>::infinity();
  int calls = 0;
  (void)GeneticSolver().solve(space, {}, [&](const Incumbent& inc) {
    EXPECT_LT(inc.objective, last);
    last = inc.objective;
    ++calls;
    return true;
  });
  EXPECT_GT(calls, 0);
}

TEST(Genetic, CallbackAbortStops) {
  const TableSpace space(10, 3, 17);
  int calls = 0;
  const SolveResult r = GeneticSolver().solve(space, {}, [&](const Incumbent&) {
    ++calls;
    return false;
  });
  EXPECT_EQ(calls, 1);
  ASSERT_TRUE(r.best.has_value());
}

/// Constrained space: value 0 forbidden after value 2 — exercises the
/// left-to-right repair pass.
class ConstrainedSpace : public TableSpace {
 public:
  using TableSpace::TableSpace;
  void candidates(std::span<const int> prefix, std::vector<int>& out) const override {
    TableSpace::candidates(prefix, out);
    if (!prefix.empty() && prefix.back() == 2) {
      out.erase(std::remove(out.begin(), out.end(), 0), out.end());
    }
  }
};

TEST(Genetic, RepairMaintainsConstraints) {
  const ConstrainedSpace space(9, 3, 23);
  GeneticOptions options;
  options.generations = 60;
  options.mutation_rate = 0.2;  // stress the repair path
  const SolveResult r = GeneticSolver().solve(space, options);
  ASSERT_TRUE(r.best.has_value());
  const auto& genes = r.best->assignment;
  for (std::size_t i = 1; i < genes.size(); ++i) {
    EXPECT_FALSE(genes[i - 1] == 2 && genes[i] == 0);
  }
}

TEST(Genetic, OptionsValidated) {
  const TableSpace space(4, 2, 1);
  GeneticOptions bad;
  bad.population = 2;
  EXPECT_THROW((void)GeneticSolver().solve(space, bad), PreconditionError);
  bad = GeneticOptions{};
  bad.tournament = 0;
  EXPECT_THROW((void)GeneticSolver().solve(space, bad), PreconditionError);
  bad = GeneticOptions{};
  bad.elites = 1000;
  EXPECT_THROW((void)GeneticSolver().solve(space, bad), PreconditionError);
}

TEST(Genetic, TimeBudgetRespected) {
  const TableSpace space(16, 4, 29);
  GeneticOptions options;
  options.generations = 100000;
  options.time_budget_ms = 20.0;
  const SolveResult r = GeneticSolver().solve(space, options);
  EXPECT_LT(r.stats.elapsed_ms, 500.0);
  ASSERT_TRUE(r.best.has_value());
}

TEST(Genetic, SingleVariableSpaceDoesNotCrash) {
  // Regression: with variable_count() == 1, crossover used to call
  // uniform_index(n - 1) == uniform_index(0) — undefined (div by zero).
  // Crossover is now skipped below two variables; force the old path
  // with crossover_rate = 1.
  const TableSpace space(1, 5, 31);
  double optimum = std::numeric_limits<double>::infinity();
  for (int v = 0; v < 5; ++v) optimum = std::min(optimum, space.evaluate(std::vector<int>{v}));
  GeneticOptions options;
  options.generations = 20;
  options.crossover_rate = 1.0;
  const SolveResult r = GeneticSolver().solve(space, options);
  ASSERT_TRUE(r.best.has_value());
  EXPECT_NEAR(r.best->objective, optimum, 1e-12);
}

TEST(Genetic, ResultIndependentOfThreadCount) {
  // Every individual's randomness is a pure function of (seed,
  // generation, slot), so the solve is deterministic across thread
  // counts — not just for a fixed one.
  const TableSpace space(10, 3, 37);
  GeneticOptions base;
  base.generations = 30;
  base.seed = 1234;
  base.threads = 1;
  const SolveResult serial = GeneticSolver().solve(space, base);
  ASSERT_TRUE(serial.best.has_value());
  for (int threads : {2, 4, 8}) {
    GeneticOptions options = base;
    options.threads = threads;
    const SolveResult r = GeneticSolver().solve(space, options);
    ASSERT_TRUE(r.best.has_value());
    EXPECT_EQ(r.best->assignment, serial.best->assignment) << "threads=" << threads;
    EXPECT_DOUBLE_EQ(r.best->objective, serial.best->objective) << "threads=" << threads;
  }
}

/// Space where repair dead-ends with high probability: the last variable
/// has no candidates unless every earlier gene is 0. The optimizer is
/// pulled the other way (0 is the most expensive value), so mutation and
/// crossover keep producing unrepairable children.
class TrapSpace : public TableSpace {
 public:
  using TableSpace::TableSpace;
  void candidates(std::span<const int> prefix, std::vector<int>& out) const override {
    TableSpace::candidates(prefix, out);
    if (static_cast<int>(prefix.size()) == variable_count() - 1 &&
        std::any_of(prefix.begin(), prefix.end(), [](int g) { return g != 0; })) {
      out.clear();
    }
  }
};

TEST(Genetic, TerminatesOnRepairHeavySpace) {
  // Regression: the generation builder used to retry repair forever
  // ("while (next.size() < population.size())"), hanging on spaces like
  // this. Repair attempts are now bounded, with an elite-clone fallback.
  const TrapSpace space(6, 3, 41);
  GeneticOptions options;
  options.generations = 30;
  options.mutation_rate = 0.3;  // keep pushing children off the feasible ridge
  const SolveResult r = GeneticSolver().solve(space, options);
  ASSERT_TRUE(r.best.has_value());
  const auto& genes = r.best->assignment;
  for (std::size_t i = 0; i + 1 < genes.size(); ++i) EXPECT_EQ(genes[i], 0);
}

TEST(Genetic, StopTokenCancelsBeforeWork) {
  const TableSpace space(10, 3, 43);
  StopToken stop;
  stop.request_stop();
  GeneticOptions options;
  options.generations = 1000000;
  options.stop = &stop;
  const SolveResult r = GeneticSolver().solve(space, options);
  EXPECT_FALSE(r.best.has_value());
  EXPECT_EQ(r.stats.leaves_evaluated, 0u);
  EXPECT_EQ(r.stats.nodes_explored, 0u);
  EXPECT_FALSE(r.stats.exhausted);
}

TEST(Genetic, SeedWarmStartsGenerationZero) {
  // A seeded optimum must survive into the result even with zero
  // generations of evolution: seeds are planted in generation 0.
  const TableSpace space(10, 3, 7);
  const SolveResult exact = BranchAndBound().solve(space);
  ASSERT_TRUE(exact.best.has_value());

  GeneticOptions options;
  options.generations = 1;
  options.population = 8;
  options.seed = 5;
  options.seeds = {exact.best->assignment};
  const SolveResult ga = GeneticSolver().solve(space, options);
  ASSERT_TRUE(ga.best.has_value());
  EXPECT_NEAR(ga.best->objective, exact.best->objective, 1e-12);
}

TEST(Genetic, SeedsAreRepairedNotRejected) {
  // Structurally invalid seeds (wrong length, out-of-range genes — what a
  // cross-scenario warm start can produce) are repaired into valid
  // individuals instead of crashing or poisoning the population.
  const TableSpace space(8, 3, 13);
  GeneticOptions options;
  options.generations = 5;
  options.population = 8;
  options.seeds = {
      {99, -1, 99, -1, 99, -1, 99, -1},          // out-of-range genes
      {1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1},   // too long
      {2},                                       // too short
  };
  const SolveResult r = GeneticSolver().solve(space, options);
  ASSERT_TRUE(r.best.has_value());
  EXPECT_EQ(r.best->assignment.size(), 8u);
  for (int g : r.best->assignment) {
    EXPECT_GE(g, 0);
    EXPECT_LT(g, 3);
  }
}

TEST(Genetic, SeedingPreservesDeterminism) {
  // Same seeds + same RNG seed → bit-identical outcome; and unseeded runs
  // are unaffected by the feature existing.
  const TableSpace space(8, 3, 17);
  GeneticOptions options;
  options.generations = 30;
  options.seed = 21;
  options.seeds = {{0, 1, 2, 0, 1, 2, 0, 1}};
  const SolveResult a = GeneticSolver().solve(space, options);
  const SolveResult b = GeneticSolver().solve(space, options);
  ASSERT_TRUE(a.best && b.best);
  EXPECT_EQ(a.best->assignment, b.best->assignment);
  EXPECT_DOUBLE_EQ(a.best->objective, b.best->objective);
}

TEST(Genetic, SeedNeverWorsensResult) {
  // Monotonicity of warm starts: adding a seed can only improve (or
  // match) the unseeded result for the same options, because the seed
  // competes in generation 0 and selection is elitist.
  const TableSpace space(12, 4, 23);
  GeneticOptions cold;
  cold.generations = 10;
  cold.seed = 31;
  const SolveResult unseeded = GeneticSolver().solve(space, cold);
  ASSERT_TRUE(unseeded.best.has_value());

  const SolveResult exact = BranchAndBound().solve(space);
  ASSERT_TRUE(exact.best.has_value());
  GeneticOptions warm = cold;
  warm.seeds = {exact.best->assignment};
  const SolveResult seeded = GeneticSolver().solve(space, warm);
  ASSERT_TRUE(seeded.best.has_value());
  EXPECT_LE(seeded.best->objective, unseeded.best->objective + 1e-12);
  EXPECT_NEAR(seeded.best->objective, exact.best->objective, 1e-12);
}

TEST(Genetic, CompetitiveOnRealScheduleSpace) {
  // On an actual scheduling instance the GA must respect all structural
  // constraints (via repair) and land within 10% of the proven optimum.
  const auto plat = hax::soc::Platform::xavier();
  hax::core::HaxConnOptions o;
  o.grouping.max_groups = 8;
  const hax::core::HaxConn hax(plat, o);
  auto inst = hax.make_problem({{hax::nn::zoo::googlenet()}, {hax::nn::zoo::resnet50()}});
  const hax::sched::ScheduleSpace space(inst.problem());

  const SolveResult exact = BranchAndBound().solve(space);
  ASSERT_TRUE(exact.best.has_value());
  ASSERT_TRUE(exact.stats.exhausted);

  GeneticOptions options;
  options.generations = 80;
  const SolveResult ga = GeneticSolver().solve(space, options);
  ASSERT_TRUE(ga.best.has_value());
  EXPECT_LE(ga.best->objective, exact.best->objective * 1.10);
  EXPECT_GE(ga.best->objective, exact.best->objective - 1e-9);  // never "beats" the optimum
  // And the GA's best is a valid schedule.
  const hax::sched::Schedule s = space.to_schedule(ga.best->assignment);
  for (int d = 0; d < s.dnn_count(); ++d) {
    EXPECT_LE(s.transition_count(d), inst.problem().max_transitions);
  }
}

}  // namespace
