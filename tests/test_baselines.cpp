/// Unit tests for src/baselines: the five comparison schedulers.

#include <gtest/gtest.h>

#include <set>

#include "baselines/baselines.h"
#include "nn/zoo.h"
#include "sched/formulation.h"
#include "sched/problem.h"

namespace {

using namespace hax;
using namespace hax::baselines;

class BaselineFixture : public testing::Test {
 protected:
  BaselineFixture()
      : plat_(soc::Platform::xavier()),
        inst_(plat_, sched::Objective::MinMaxLatency, {.max_groups = 8}) {
    inst_.add_dnn(nn::zoo::googlenet());
    inst_.add_dnn(nn::zoo::resnet50());
  }

  bool schedule_valid(const sched::Schedule& s) const {
    const sched::Problem& prob = inst_.problem();
    if (s.dnn_count() != prob.dnn_count()) return false;
    for (int d = 0; d < prob.dnn_count(); ++d) {
      const sched::DnnSpec& spec = prob.dnns[static_cast<std::size_t>(d)];
      if (static_cast<int>(s.assignment[static_cast<std::size_t>(d)].size()) !=
          spec.net->group_count()) {
        return false;
      }
      for (int g = 0; g < spec.net->group_count(); ++g) {
        const soc::PuId pu = s.assignment[static_cast<std::size_t>(d)][static_cast<std::size_t>(g)];
        if (!spec.profile->at(g, pu).supported) return false;
      }
    }
    return true;
  }

  soc::Platform plat_;
  sched::ProblemInstance inst_;
};

TEST_F(BaselineFixture, AllKindsProduceValidSchedules) {
  for (Kind kind : all_kinds()) {
    const sched::Schedule s = make(kind, inst_.problem());
    EXPECT_TRUE(schedule_valid(s)) << name(kind);
  }
}

TEST_F(BaselineFixture, GpuOnlyUsesOnlyGpu) {
  const sched::Schedule s = gpu_only(inst_.problem());
  for (const auto& asg : s.assignment) {
    for (soc::PuId pu : asg) EXPECT_EQ(pu, plat_.gpu());
  }
  EXPECT_EQ(s.total_transitions(), 0);
}

TEST_F(BaselineFixture, NaiveConcurrentPinsWholeDnns) {
  const sched::Schedule s = naive_concurrent(inst_.problem());
  for (int d = 0; d < s.dnn_count(); ++d) {
    // Each DNN uses a single primary PU, plus GPU for unsupported groups.
    std::set<soc::PuId> used(s.assignment[static_cast<std::size_t>(d)].begin(),
                             s.assignment[static_cast<std::size_t>(d)].end());
    used.erase(plat_.gpu());
    EXPECT_LE(used.size(), 1u) << "dnn " << d;
  }
}

TEST_F(BaselineFixture, NaiveConcurrentBalancesLoad) {
  // GoogleNet + ResNet50 on Xavier: putting one on the DLA beats two
  // serialized on the GPU, so naive must not return GPU-only here.
  const sched::Schedule s = naive_concurrent(inst_.problem());
  bool uses_dsa = false;
  for (const auto& asg : s.assignment) {
    for (soc::PuId pu : asg) uses_dsa |= pu == plat_.dsa();
  }
  EXPECT_TRUE(uses_dsa);
}

TEST_F(BaselineFixture, MensaIgnoresCoRunners) {
  // Mensa is a single-DNN scheme: each DNN's assignment must be identical
  // whether scheduled alone or with a partner.
  const sched::Schedule pair = mensa(inst_.problem());
  sched::ProblemInstance solo(plat_, sched::Objective::MinMaxLatency, {.max_groups = 8});
  solo.add_dnn(nn::zoo::googlenet());
  const sched::Schedule alone = mensa(solo.problem());
  EXPECT_EQ(pair.assignment[0], alone.assignment[0]);
}

TEST_F(BaselineFixture, MensaPicksFasterPuWithoutPartner) {
  // For a single DNN with no contention, Mensa's greedy should gravitate
  // toward the per-group fastest PU (the GPU on NVIDIA platforms).
  sched::ProblemInstance solo(plat_, sched::Objective::MinMaxLatency, {.max_groups = 8});
  solo.add_dnn(nn::zoo::vgg19());
  const sched::Schedule s = mensa(solo.problem());
  for (soc::PuId pu : s.assignment[0]) EXPECT_EQ(pu, plat_.gpu());
}

TEST_F(BaselineFixture, HeraldBalancesAcrossPus) {
  const sched::Schedule s = herald(inst_.problem());
  std::set<soc::PuId> used;
  for (const auto& asg : s.assignment) used.insert(asg.begin(), asg.end());
  EXPECT_EQ(used.size(), 2u);  // both accelerators utilized
}

TEST_F(BaselineFixture, HeraldIgnoresTransitionCosts) {
  // Herald's defining flaw: it freely fragments assignments. On a
  // workload this size it produces more transitions than HaX-CoNN's
  // budget would ever allow.
  const sched::Schedule s = herald(inst_.problem());
  EXPECT_GT(s.total_transitions(), inst_.problem().max_transitions);
}

TEST_F(BaselineFixture, H2HNoWorseThanHeraldOnItsOwnModel) {
  const sched::Problem& prob = inst_.problem();
  const sched::Formulation f(prob);
  const sched::PredictOptions blind{.model_contention = false,
                                    .enforce_transition_budget = false,
                                    .enforce_epsilon = false};
  const double herald_obj = f.predict(herald(prob), blind).objective_value;
  const double h2h_obj = f.predict(h2h(prob), blind).objective_value;
  EXPECT_LE(h2h_obj, herald_obj + 1e-9);
}

TEST_F(BaselineFixture, H2HReducesTransitionsVsHerald) {
  const sched::Problem& prob = inst_.problem();
  EXPECT_LE(h2h(prob).total_transitions(), herald(prob).total_transitions());
}

TEST_F(BaselineFixture, NamesAreStable) {
  EXPECT_STREQ(name(Kind::GpuOnly), "GPU-only");
  EXPECT_STREQ(name(Kind::NaiveConcurrent), "GPU&DSA");
  EXPECT_STREQ(name(Kind::Mensa), "Mensa");
  EXPECT_STREQ(name(Kind::Herald), "Herald");
  EXPECT_STREQ(name(Kind::H2H), "H2H");
  EXPECT_EQ(all_kinds().size(), 5u);
}

TEST_F(BaselineFixture, NaiveSeedsAreTwo) {
  const auto seeds = naive_seeds(inst_.problem());
  ASSERT_EQ(seeds.size(), 2u);
  for (const auto& s : seeds) EXPECT_TRUE(schedule_valid(s));
}

TEST(BaselinesSolo, GpuOnlyHandlesUnsupportedGroups) {
  // AlexNet's LRN groups cannot run on the DSA; every baseline must still
  // produce valid schedules.
  const auto plat = soc::Platform::orin();
  sched::ProblemInstance inst(plat, sched::Objective::MinMaxLatency, {.max_groups = 6});
  inst.add_dnn(nn::zoo::alexnet());
  inst.add_dnn(nn::zoo::alexnet());
  for (Kind kind : all_kinds()) {
    const sched::Schedule s = make(kind, inst.problem());
    for (int d = 0; d < s.dnn_count(); ++d) {
      const sched::DnnSpec& spec = inst.problem().dnns[static_cast<std::size_t>(d)];
      for (int g = 0; g < spec.net->group_count(); ++g) {
        EXPECT_TRUE(
            spec.profile
                ->at(g, s.assignment[static_cast<std::size_t>(d)][static_cast<std::size_t>(g)])
                .supported)
            << name(kind);
      }
    }
  }
}

TEST(BaselinesSolo, ThreeDnnWorkloads) {
  // Scenario 4 shape: three DNNs. Baselines must handle > 2 DNNs.
  const auto plat = soc::Platform::xavier();
  sched::ProblemInstance inst(plat, sched::Objective::MinMaxLatency, {.max_groups = 5});
  inst.add_dnn(nn::zoo::googlenet());
  inst.add_dnn(nn::zoo::resnet18(), /*depends_on=*/0);
  inst.add_dnn(nn::zoo::alexnet());
  for (Kind kind : all_kinds()) {
    const sched::Schedule s = make(kind, inst.problem());
    EXPECT_EQ(s.dnn_count(), 3) << name(kind);
  }
}

}  // namespace
