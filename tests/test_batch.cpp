/// Batch evaluator suite: exact (bit-identical) parity of the SoA batch
/// paths — Formulation::evaluate_batch / predict_batch and
/// ScheduleSpace::evaluate_batch — against the scalar flat paths and the
/// golden reference, across randomized scenarios, batch sizes 1..4096,
/// option variants, memo-hit interleavings and the permutation-of-
/// identical-DNNs dedup property. Runs under the "batch" ctest label
/// (scripts/ci.sh check_batch repeats it under ASan).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/memo_cache.h"
#include "common/rng.h"
#include "nn/zoo.h"
#include "sched/formulation.h"
#include "sched/problem.h"
#include "sched/search_space.h"

namespace {

using namespace hax;
using namespace hax::sched;

/// Same structural variety as test_evaluator: a parallel pair, a
/// pipelined streaming pair, and a 3-DNN hybrid across two platforms.
struct WorkloadDef {
  const char* name;
  soc::Platform (*platform)();
  Objective objective;
  std::vector<const char*> dnns;
  std::vector<int> deps;
  std::vector<int> iters;
};

const std::vector<WorkloadDef>& workloads() {
  static const std::vector<WorkloadDef> defs = {
      {"xavier-vgg19+resnet152", &soc::Platform::xavier, Objective::MinMaxLatency,
       {"VGG19", "ResNet152"}, {-1, -1}, {1, 1}},
      {"xavier-alexnet>resnet101", &soc::Platform::xavier, Objective::MaxThroughput,
       {"AlexNet", "ResNet101"}, {-1, 0}, {4, 4}},
      {"orin-resnet101>googlenet+inception", &soc::Platform::orin, Objective::MinMaxLatency,
       {"ResNet101", "GoogleNet", "Inception"}, {-1, 0, -1}, {2, 2, 1}},
  };
  return defs;
}

ProblemInstance make_instance(const soc::Platform& platform, const WorkloadDef& def) {
  ProblemInstance inst(platform, def.objective, {.max_groups = 5});
  for (std::size_t i = 0; i < def.dnns.size(); ++i) {
    inst.add_dnn(nn::zoo::by_name(def.dnns[i]), def.deps[i], def.iters[i]);
  }
  return inst;
}

/// Structurally valid random flat assignment (same construction as the
/// GA's repair pass; see test_evaluator.cpp).
std::vector<int> random_flat(const ScheduleSpace& space, Rng& rng) {
  std::vector<int> flat;
  std::vector<int> cands;
  const int n = space.variable_count();
  flat.reserve(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) {
    space.candidates(flat, cands);
    if (cands.empty()) {
      flat.clear();
      v = -1;
      continue;
    }
    flat.push_back(cands[rng.uniform_index(cands.size())]);
  }
  return flat;
}

/// Pool of distinct valid candidates.
std::vector<std::vector<int>> distinct_pool(const ScheduleSpace& space, Rng& rng,
                                            std::size_t want) {
  std::vector<std::vector<int>> pool;
  while (pool.size() < want) {
    std::vector<int> flat = random_flat(space, rng);
    if (std::find(pool.begin(), pool.end(), flat) == pool.end()) {
      pool.push_back(std::move(flat));
    }
  }
  return pool;
}

/// Concatenates `n` candidates drawn (with repeats) from `pool` into the
/// back-to-back layout evaluate_batch consumes. Returns the draw order.
std::vector<std::size_t> fill_batch(const std::vector<std::vector<int>>& pool, Rng& rng,
                                    int n, std::vector<int>& buf) {
  buf.clear();
  std::vector<std::size_t> picks;
  picks.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const std::size_t p = rng.uniform_index(pool.size());
    picks.push_back(p);
    buf.insert(buf.end(), pool[p].begin(), pool[p].end());
  }
  return picks;
}

void expect_identical(const Prediction& ref, const Prediction& got, const char* what) {
  EXPECT_EQ(ref.feasible, got.feasible) << what;
  EXPECT_EQ(ref.sweep_capped, got.sweep_capped) << what;
  // Bit-identical, not approximately equal: the batch path must perform
  // the same float operations in the same order as the scalar path.
  EXPECT_EQ(ref.objective_value, got.objective_value) << what;
  EXPECT_EQ(ref.makespan_ms, got.makespan_ms) << what;
  EXPECT_EQ(ref.round_ms, got.round_ms) << what;
  EXPECT_EQ(ref.fps, got.fps) << what;
  EXPECT_EQ(ref.total_queue_ms, got.total_queue_ms) << what;
  ASSERT_EQ(ref.dnn_span_ms.size(), got.dnn_span_ms.size()) << what;
  for (std::size_t i = 0; i < ref.dnn_span_ms.size(); ++i) {
    EXPECT_EQ(ref.dnn_span_ms[i], got.dnn_span_ms[i]) << what << " span " << i;
  }
}

// ------------------------------------------------------------- parity ----

TEST(BatchParity, EvaluateBatchMatchesFlatAcrossBatchSizes) {
  for (const WorkloadDef& def : workloads()) {
    const soc::Platform plat = def.platform();
    const ProblemInstance inst = make_instance(plat, def);
    const ScheduleSpace space(inst.problem(), {.memo_cache = false});
    const Formulation& f = space.formulation();
    const int vars = f.flat_variable_count();
    EvalWorkspace ws;
    BatchEvalWorkspace bws;  // reused across every batch below
    Rng rng(0xBA7C4ull);

    const auto pool = distinct_pool(space, rng, 12);
    std::vector<int> buf;
    for (const int n : {1, 2, 3, 7, 17, 64, 257}) {
      const auto picks = fill_batch(pool, rng, n, buf);
      std::vector<double> out(static_cast<std::size_t>(n), -1.0);
      f.evaluate_batch(buf, n, out, bws);

      EXPECT_EQ(bws.last_batch_candidates(), static_cast<std::uint64_t>(n)) << def.name;
      EXPECT_GE(bws.last_batch_unique(), 1u) << def.name;
      EXPECT_LE(bws.last_batch_unique(),
                std::min<std::uint64_t>(static_cast<std::uint64_t>(n), pool.size()))
          << def.name;

      for (int i = 0; i < n; ++i) {
        const std::span<const int> cand(buf.data() + static_cast<std::size_t>(i) * vars,
                                        static_cast<std::size_t>(vars));
        EXPECT_EQ(f.evaluate_flat(cand, ws), out[static_cast<std::size_t>(i)])
            << def.name << " n=" << n << " i=" << i << " pick=" << picks[i];
      }
    }
  }
}

TEST(BatchParity, PredictBatchMatchesFlatAndReference) {
  for (const WorkloadDef& def : workloads()) {
    const soc::Platform plat = def.platform();
    const ProblemInstance inst = make_instance(plat, def);
    const Problem& prob = inst.problem();
    const ScheduleSpace space(prob, {.memo_cache = false});
    const Formulation& f = space.formulation();
    const int vars = f.flat_variable_count();
    EvalWorkspace ws;
    BatchEvalWorkspace bws;
    Rng rng(99);

    auto pool = distinct_pool(space, rng, 6);
    // Infeasible zigzag (alternating PU index per variable): the batch
    // path must report it exactly as the scalar path does.
    std::vector<int> zigzag(static_cast<std::size_t>(vars));
    for (int v = 0; v < vars; ++v) zigzag[static_cast<std::size_t>(v)] = v % 2;
    pool.push_back(zigzag);

    std::vector<int> buf;
    (void)fill_batch(pool, rng, 16, buf);
    // Force the zigzag in:
    std::copy(zigzag.begin(), zigzag.end(), buf.begin() + 3 * vars);

    std::vector<Prediction> out(16);
    f.predict_batch(buf, 16, out, bws);
    for (int i = 0; i < 16; ++i) {
      const std::span<const int> cand(buf.data() + static_cast<std::size_t>(i) * vars,
                                      static_cast<std::size_t>(vars));
      expect_identical(f.predict_flat(cand, ws), out[static_cast<std::size_t>(i)], def.name);
    }
    // Spot-check lane 0 against the golden reference through the
    // Schedule-shaped entry point.
    const std::vector<int> first(buf.begin(), buf.begin() + vars);
    expect_identical(f.predict_reference(space.to_schedule(first)), out[0], def.name);
  }
}

TEST(BatchParity, OptionVariantsMatchFlat) {
  const WorkloadDef& def = workloads()[0];
  const soc::Platform plat = def.platform();
  const ProblemInstance inst = make_instance(plat, def);
  Problem prob = inst.problem();
  prob.epsilon_ms = 0.25;  // make the ε constraint bite sometimes
  const Formulation f(prob);
  const ScheduleSpace space(prob, {.memo_cache = false});
  const int vars = f.flat_variable_count();
  EvalWorkspace ws;
  BatchEvalWorkspace bws;
  Rng rng(7);

  const PredictOptions variants[] = {
      {},
      {.model_contention = false},
      {.enforce_epsilon = false},
      {.model_contention = false, .enforce_transition_budget = false, .enforce_epsilon = false},
      {.max_events = 1},  // every sweep trips the cap
  };
  const auto pool = distinct_pool(space, rng, 8);
  std::vector<int> buf;
  (void)fill_batch(pool, rng, 24, buf);
  std::vector<Prediction> out(24);
  for (const PredictOptions& opt : variants) {
    f.predict_batch(buf, 24, out, bws, opt);
    for (int i = 0; i < 24; ++i) {
      const std::span<const int> cand(buf.data() + static_cast<std::size_t>(i) * vars,
                                      static_cast<std::size_t>(vars));
      expect_identical(f.predict_flat(cand, ws, opt), out[static_cast<std::size_t>(i)],
                       "option variant");
    }
  }
}

TEST(BatchParity, LargeBatch4096MatchesFlat) {
  const WorkloadDef& def = workloads()[0];
  const soc::Platform plat = def.platform();
  const ProblemInstance inst = make_instance(plat, def);
  const ScheduleSpace space(inst.problem(), {.memo_cache = false});
  const Formulation& f = space.formulation();
  const int vars = f.flat_variable_count();
  EvalWorkspace ws;
  BatchEvalWorkspace bws;
  Rng rng(0x4096ull);

  // 64 distinct candidates spread over 4096 slots: heavy whole-candidate
  // dedup, exactly the GA's converged-population shape.
  const auto pool = distinct_pool(space, rng, 64);
  std::vector<int> buf;
  (void)fill_batch(pool, rng, 4096, buf);
  std::vector<double> out(4096, -1.0);
  f.evaluate_batch(buf, 4096, out, bws);

  EXPECT_EQ(bws.last_batch_candidates(), 4096u);
  EXPECT_LE(bws.last_batch_unique(), 64u);

  for (int i = 0; i < 4096; ++i) {
    const std::span<const int> cand(buf.data() + static_cast<std::size_t>(i) * vars,
                                    static_cast<std::size_t>(vars));
    ASSERT_EQ(f.evaluate_flat(cand, ws), out[static_cast<std::size_t>(i)]) << "i=" << i;
  }
}

// --------------------------------------------------- memo interleaving ----

TEST(BatchMemo, MemoHitInterleavingsMatchUncached) {
  const WorkloadDef& def = workloads()[1];
  const soc::Platform plat = def.platform();
  const ProblemInstance inst = make_instance(plat, def);
  const ScheduleSpace cached(inst.problem(), {.memo_cache = true});
  const ScheduleSpace uncached(inst.problem(), {.memo_cache = false});
  const int vars = cached.variable_count();
  Rng rng(0x3E30ull);

  const auto pool = distinct_pool(cached, rng, 10);
  // Pre-warm the memo with the even-indexed candidates via the scalar
  // path, so the batch below interleaves warm hits, cold misses and
  // in-batch duplicates.
  for (std::size_t p = 0; p < pool.size(); p += 2) (void)cached.evaluate(pool[p]);
  const MemoCacheStats warm = cached.cache_stats();
  EXPECT_EQ(warm.misses, pool.size() / 2);

  std::vector<int> buf;
  const auto picks = fill_batch(pool, rng, 96, buf);
  std::vector<double> out(96, -1.0);
  cached.evaluate_batch(buf, 96, out);

  std::size_t warm_occurrences = 0;
  for (int i = 0; i < 96; ++i) {
    const std::span<const int> cand(buf.data() + static_cast<std::size_t>(i) * vars,
                                    static_cast<std::size_t>(vars));
    std::vector<double> scalar(1, -1.0);
    uncached.evaluate_batch(cand, 1, scalar);
    EXPECT_EQ(uncached.evaluate(std::vector<int>(cand.begin(), cand.end())),
              out[static_cast<std::size_t>(i)])
        << "i=" << i;
    EXPECT_EQ(scalar[0], out[static_cast<std::size_t>(i)]) << "i=" << i;
    if (picks[static_cast<std::size_t>(i)] % 2 == 0) ++warm_occurrences;
  }

  // Every occurrence of a pre-warmed candidate must have hit the memo.
  const MemoCacheStats after = cached.cache_stats();
  EXPECT_GE(after.hits - warm.hits, warm_occurrences);
  // Cold candidates were inserted: a second identical batch is all hits.
  cached.evaluate_batch(buf, 96, out);
  const MemoCacheStats again = cached.cache_stats();
  EXPECT_EQ(again.hits - after.hits, 96u);
  EXPECT_EQ(again.misses, after.misses);
}

// ---------------------------------------- permuted identical DNNs ----

/// Two byte-identical DNNs (same network, same deps, same iterations):
/// candidates that differ only by swapping the two DNNs' plans are
/// DIFFERENT flat vectors and must not be conflated by any dedup layer
/// (whole-candidate and per-(DNN,row) keys are exact values, and row keys
/// are salted by DNN index). This is the fingerprint-canonicalization
/// interaction: the serve layer may canonicalize scenario order, but the
/// evaluator itself must treat permuted assignments as distinct.
TEST(BatchProperty, PermutedIdenticalDnnCandidatesStayDistinct) {
  const soc::Platform plat = soc::Platform::xavier();
  ProblemInstance inst(plat, Objective::MinMaxLatency, {.max_groups = 5});
  inst.add_dnn(nn::zoo::by_name("GoogleNet"), -1, 1);
  inst.add_dnn(nn::zoo::by_name("GoogleNet"), -1, 1);
  const ScheduleSpace space(inst.problem(), {.memo_cache = false});
  const Formulation& f = space.formulation();
  const int vars = f.flat_variable_count();
  ASSERT_EQ(vars % 2, 0);
  const int half = vars / 2;
  EvalWorkspace ws;
  BatchEvalWorkspace bws;
  Rng rng(0x1DEA);

  for (int trial = 0; trial < 8; ++trial) {
    const std::vector<int> base = random_flat(space, rng);
    const std::vector<int> x(base.begin(), base.begin() + half);
    const std::vector<int> y(base.begin() + half, base.end());
    if (x == y) continue;  // swap would be the identity; nothing to test

    // A = x||y, B = y||x, plus a repeat of A to exercise true dedup
    // alongside the must-stay-distinct pair.
    std::vector<int> buf;
    buf.insert(buf.end(), base.begin(), base.end());
    buf.insert(buf.end(), y.begin(), y.end());
    buf.insert(buf.end(), x.begin(), x.end());
    buf.insert(buf.end(), base.begin(), base.end());

    std::vector<double> out(3, -1.0);
    f.evaluate_batch(buf, 3, out, bws);
    EXPECT_EQ(bws.last_batch_candidates(), 3u);
    EXPECT_EQ(bws.last_batch_unique(), 2u);  // A and B distinct; repeat deduped

    const std::span<const int> a(buf.data(), static_cast<std::size_t>(vars));
    const std::span<const int> b(buf.data() + vars, static_cast<std::size_t>(vars));
    EXPECT_EQ(f.evaluate_flat(a, ws), out[0]) << "trial " << trial;
    EXPECT_EQ(f.evaluate_flat(b, ws), out[1]) << "trial " << trial;
    EXPECT_EQ(out[0], out[2]) << "trial " << trial;  // exact repeat shares the lane
  }
}

// ----------------------------------------------------------- telemetry ----

TEST(BatchTelemetry, RowDedupCountersAreExact) {
  const soc::Platform plat = soc::Platform::xavier();
  ProblemInstance inst(plat, Objective::MinMaxLatency, {.max_groups = 5});
  inst.add_dnn(nn::zoo::by_name("GoogleNet"), -1, 1);
  inst.add_dnn(nn::zoo::by_name("ResNet101"), -1, 1);
  const ScheduleSpace space(inst.problem(), {.memo_cache = false});
  const Formulation& f = space.formulation();
  BatchEvalWorkspace bws;
  Rng rng(5);

  std::vector<int> a = random_flat(space, rng);
  std::vector<int> b;
  do {
    b = random_flat(space, rng);
  } while (std::equal(b.begin(), b.end(), a.begin()));  // need a distinct candidate

  // Whole-candidate duplicates never reach the row tables: N copies of
  // one candidate cost exactly dnn_count row walks.
  {
    std::vector<int> buf;
    for (int i = 0; i < 5; ++i) buf.insert(buf.end(), a.begin(), a.end());
    std::vector<double> out(5);
    f.evaluate_batch(buf, 5, out, bws);
    EXPECT_EQ(bws.last_batch_candidates(), 5u);
    EXPECT_EQ(bws.last_batch_unique(), 1u);
    EXPECT_EQ(bws.last_batch_row_walks(), 2u);
    EXPECT_EQ(bws.last_batch_row_hits(), 0u);
  }

  // Two candidates sharing DNN-0's row: the shared row is walked once and
  // served from the table the second time.
  {
    std::vector<int> hybrid = a;
    // Keep a's DNN-0 half, take b's DNN-1 half. Variable split: DNN 0 owns
    // the first group_count(0) variables.
    const int dnn0_vars =
        inst.problem().dnns[0].net->group_count();
    std::vector<int> buf(a.begin(), a.end());
    std::copy(a.begin(), a.begin() + dnn0_vars, hybrid.begin());
    std::copy(b.begin() + dnn0_vars, b.end(), hybrid.begin() + dnn0_vars);
    if (hybrid == a) return;  // b's DNN-1 half happened to equal a's: skip
    buf.insert(buf.end(), hybrid.begin(), hybrid.end());
    std::vector<double> out(2);
    f.evaluate_batch(buf, 2, out, bws);
    EXPECT_EQ(bws.last_batch_unique(), 2u);
    EXPECT_EQ(bws.last_batch_row_walks(), 3u);  // a0, a1, hybrid1
    EXPECT_EQ(bws.last_batch_row_hits(), 1u);   // hybrid0 == a0
  }
}

}  // namespace
