/// Tests for core/scenarios.h (the paper's four workload shapes) and for
/// the formulation's generality beyond the paper's 2-accelerator setup
/// (a synthetic 3-DSA platform).

#include <gtest/gtest.h>

#include "baselines/baselines.h"
#include "common/error.h"
#include "core/evaluate.h"
#include "core/haxconn.h"
#include "core/scenarios.h"
#include "nn/zoo.h"
#include "sched/solve.h"

namespace {

using namespace hax;
using namespace hax::core;

class ScenarioFixture : public testing::Test {
 protected:
  ScenarioFixture()
      : plat_(soc::Platform::orin()), hax_(plat_, [] {
          HaxConnOptions o;
          o.grouping.max_groups = 6;
          return o;
        }()) {}

  soc::Platform plat_;
  HaxConn hax_;
};

TEST_F(ScenarioFixture, Scenario1ShapesWorkload) {
  const ScenarioWorkload w = scenario1_same_dnn("GoogleNet", 2, 4);
  EXPECT_EQ(w.dnns.size(), 2u);
  EXPECT_EQ(w.objective, sched::Objective::MaxThroughput);
  for (const auto& d : w.dnns) {
    EXPECT_EQ(d.depends_on, -1);
    EXPECT_EQ(d.iterations, 4);
  }
  const auto inst = make_scenario_problem(hax_, w);
  EXPECT_EQ(inst.problem().objective, sched::Objective::MaxThroughput);
  EXPECT_NO_THROW(inst.problem().validate());
}

TEST_F(ScenarioFixture, Scenario2SynchronizesRounds) {
  const ScenarioWorkload w = scenario2_parallel({"VGG19", "ResNet152"});
  EXPECT_TRUE(w.loop_barrier);
  EXPECT_EQ(w.objective, sched::Objective::MinMaxLatency);
  const auto inst = make_scenario_problem(hax_, w);
  const auto sol = hax_.schedule(inst.problem());
  const auto ev = evaluate(inst.problem(), sol.schedule, {.loop_barrier = w.loop_barrier});
  EXPECT_GT(ev.round_latency_ms, 0.0);
}

TEST_F(ScenarioFixture, Scenario3ChainsFrames) {
  const ScenarioWorkload w = scenario3_pipeline("GoogleNet", "ResNet101", 3);
  EXPECT_EQ(w.dnns[1].depends_on, 0);
  const auto inst = make_scenario_problem(hax_, w);
  const auto sol = hax_.schedule(inst.problem());
  const auto ev = evaluate(inst.problem(), sol.schedule);
  for (int k = 0; k < 3; ++k) {
    EXPECT_GE(ev.sim.tasks[1].iterations[static_cast<std::size_t>(k)].start,
              ev.sim.tasks[0].iterations[static_cast<std::size_t>(k)].end - 1e-9);
  }
}

TEST_F(ScenarioFixture, Scenario4HasThreeDnns) {
  const ScenarioWorkload w = scenario4_hybrid("GoogleNet", "ResNet152", "FCN-ResNet18");
  EXPECT_EQ(w.dnns.size(), 3u);
  EXPECT_EQ(w.dnns[1].depends_on, 0);
  EXPECT_EQ(w.dnns[2].depends_on, -1);
  const auto inst = make_scenario_problem(hax_, w);
  EXPECT_EQ(inst.problem().dnn_count(), 3);
}

TEST_F(ScenarioFixture, ScenarioWorkloadReusable) {
  const ScenarioWorkload w = scenario2_parallel({"AlexNet", "ResNet18"});
  const auto a = make_scenario_problem(hax_, w);
  const auto b = make_scenario_problem(hax_, w);  // must not consume `w`
  EXPECT_EQ(a.problem().dnn_count(), b.problem().dnn_count());
}

TEST_F(ScenarioFixture, RejectsDegenerateScenarios) {
  EXPECT_THROW((void)scenario1_same_dnn("GoogleNet", 1), PreconditionError);
  EXPECT_THROW((void)scenario1_same_dnn("GoogleNet", 2, 0), PreconditionError);
  EXPECT_THROW((void)scenario2_parallel({"GoogleNet"}), PreconditionError);
  EXPECT_THROW((void)scenario3_pipeline("GoogleNet", "ResNet18", 0), PreconditionError);
}

// --------------------------------------------- 3-accelerator generality --

/// The paper caps its evaluation at two DSAs ("no off-the-shelf SoCs offer
/// more"), but the formulation (Eq. 1) is defined for any accelerator set
/// A. Exercise a synthetic SoC with GPU + two DSAs end to end.
soc::Platform three_dsa_platform() {
  soc::PuParams gpu;
  gpu.name = "GPU";
  gpu.kind = soc::PuKind::Gpu;
  gpu.peak_gflops = 20000.0;
  gpu.eff_max = 0.4;
  gpu.saturation_flops = 200'000'000;
  gpu.max_stream_gbps = 90.0;
  gpu.onchip_buffer_bytes = 1 << 20;
  gpu.act_traffic_amplification = 5.0;
  gpu.per_layer_overhead_ms = 0.004;

  soc::PuParams dla = gpu;
  dla.name = "DLA";
  dla.kind = soc::PuKind::Dsa;
  dla.peak_gflops = 6000.0;
  dla.eff_max = 0.6;
  dla.saturation_flops = 60'000'000;
  dla.max_stream_gbps = 45.0;
  dla.act_traffic_amplification = 4.0;
  dla.fc_eff = 0.1;
  dla.throughput_profilable = false;
  dla.requires_reformat = true;

  soc::PuParams npu = dla;
  npu.name = "NPU";
  npu.peak_gflops = 4000.0;
  npu.max_stream_gbps = 35.0;

  soc::MemoryParams mem;
  mem.total_gbps = 120.0;
  mem.contention_penalty = 0.2;
  mem.min_efficiency = 0.5;
  return soc::Platform("Synthetic-3DSA", mem, {gpu, dla, npu});
}

TEST(ThreeDsaPlatform, SchedulesAcrossAllAccelerators) {
  const soc::Platform plat = three_dsa_platform();
  ASSERT_EQ(plat.schedulable_pus().size(), 3u);

  HaxConnOptions o;
  o.grouping.max_groups = 6;
  const HaxConn hax(plat, o);
  auto inst = hax.make_problem(
      {{nn::zoo::googlenet()}, {nn::zoo::resnet50()}, {nn::zoo::resnet18()}});
  const auto sol = hax.schedule(inst.problem());
  ASSERT_TRUE(sol.best_found());

  // Ground truth run succeeds and never loses to GPU-only serialization.
  const auto hax_ev = evaluate(inst.problem(), sol.schedule);
  const auto gpu_ev =
      evaluate(inst.problem(), baselines::gpu_only(inst.problem()));
  EXPECT_LE(hax_ev.round_latency_ms, gpu_ev.round_latency_ms * 1.05);

  // With three DNNs and three PUs, the optimum should spread the load
  // beyond the GPU.
  std::set<soc::PuId> used;
  for (const auto& asg : sol.schedule.assignment) used.insert(asg.begin(), asg.end());
  EXPECT_GE(used.size(), 2u);
}

TEST(ThreeDsaPlatform, BaselinesGeneralize) {
  const soc::Platform plat = three_dsa_platform();
  sched::ProblemInstance inst(plat, sched::Objective::MinMaxLatency, {.max_groups = 5});
  inst.add_dnn(nn::zoo::alexnet());
  inst.add_dnn(nn::zoo::resnet18());
  inst.add_dnn(nn::zoo::googlenet());
  for (auto kind : baselines::all_kinds()) {
    const sched::Schedule s = baselines::make(kind, inst.problem());
    EXPECT_EQ(s.dnn_count(), 3) << baselines::name(kind);
    EXPECT_NO_THROW((void)evaluate(inst.problem(), s)) << baselines::name(kind);
  }
}

}  // namespace
