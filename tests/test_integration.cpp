/// Cross-module integration tests: the end-to-end HaX-CoNN pipeline
/// (group -> profile -> calibrate -> solve -> simulate) against the
/// paper's claimed properties, across platforms and workloads.

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/baselines.h"
#include "core/evaluate.h"
#include "core/haxconn.h"
#include "nn/zoo.h"

namespace {

using namespace hax;
using namespace hax::core;

struct Workload {
  const char* platform;  // "orin" | "xavier" | "sd865"
  const char* dnn1;
  const char* dnn2;
  sched::Objective objective;
};

soc::Platform make_platform(const std::string& name) {
  if (name == "orin") return soc::Platform::orin();
  if (name == "xavier") return soc::Platform::xavier();
  return soc::Platform::sd865();
}

class PipelineTest : public testing::TestWithParam<Workload> {};

/// HaX-CoNN must never lose to the naive baselines on ground truth, and
/// the solver must prove optimality in reasonable time (Sec 3.5:
/// "optimal schedules in seconds").
TEST_P(PipelineTest, NeverWorseThanNaiveOnGroundTruth) {
  const Workload w = GetParam();
  const soc::Platform plat = make_platform(w.platform);
  HaxConnOptions o;
  o.objective = w.objective;
  o.grouping.max_groups = 10;
  const HaxConn hax(plat, o);
  auto inst = hax.make_problem(
      {{nn::zoo::by_name(w.dnn1)}, {nn::zoo::by_name(w.dnn2)}});
  const sched::Problem& prob = inst.problem();

  const auto sol = hax.schedule(prob);
  ASSERT_FALSE(sol.schedule.assignment.empty());

  const EvalResult hax_ev = evaluate(prob, sol.schedule);
  for (auto kind : {baselines::Kind::GpuOnly, baselines::Kind::NaiveConcurrent}) {
    const EvalResult base_ev = evaluate(prob, baselines::make(kind, prob));
    if (w.objective == sched::Objective::MinMaxLatency) {
      EXPECT_LE(hax_ev.round_latency_ms, base_ev.round_latency_ms * 1.06)
          << baselines::name(kind);
    } else {
      EXPECT_GE(hax_ev.fps, base_ev.fps * 0.94) << baselines::name(kind);
    }
  }
}

/// The solver's prediction must stay close to ground truth for the
/// schedule it selects — this is the accuracy edge over Herald/H2H that
/// the paper attributes to contention modeling.
TEST_P(PipelineTest, SelectedSchedulePredictionAccurate) {
  const Workload w = GetParam();
  const soc::Platform plat = make_platform(w.platform);
  HaxConnOptions o;
  o.objective = w.objective;
  o.grouping.max_groups = 10;
  const HaxConn hax(plat, o);
  auto inst = hax.make_problem(
      {{nn::zoo::by_name(w.dnn1)}, {nn::zoo::by_name(w.dnn2)}});
  const auto sol = hax.schedule(inst.problem());
  const EvalResult ev = evaluate(inst.problem(), sol.schedule);
  if (w.objective == sched::Objective::MinMaxLatency) {
    EXPECT_NEAR(sol.prediction.round_ms, ev.round_latency_ms, 0.12 * ev.round_latency_ms);
  } else {
    EXPECT_NEAR(sol.prediction.fps, ev.fps, 0.12 * ev.fps);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, PipelineTest,
    testing::Values(
        Workload{"xavier", "VGG19", "ResNet152", sched::Objective::MinMaxLatency},
        Workload{"xavier", "ResNet152", "Inception", sched::Objective::MinMaxLatency},
        Workload{"xavier", "AlexNet", "ResNet101", sched::Objective::MaxThroughput},
        Workload{"orin", "VGG19", "ResNet152", sched::Objective::MinMaxLatency},
        Workload{"orin", "GoogleNet", "ResNet101", sched::Objective::MaxThroughput},
        Workload{"sd865", "GoogleNet", "ResNet101", sched::Objective::MaxThroughput},
        Workload{"sd865", "Inception", "ResNet152", sched::Objective::MinMaxLatency}),
    [](const auto& info) {
      return std::string(info.param.platform) + "_" + info.param.dnn1 + "_" + info.param.dnn2 +
             (info.param.objective == sched::Objective::MinMaxLatency ? "_lat" : "_fps");
    });

/// Contention-blind baselines must mispredict: the gap between H2H's own
/// cost model and ground truth should far exceed HaX-CoNN's gap
/// (Sec 5.2: "inaccurate latency estimations that are wrong by up to 75%").
TEST(IntegrationMisprediction, BlindModelsWrongAwareModelsRight) {
  const soc::Platform plat = soc::Platform::xavier();
  HaxConnOptions o;
  o.grouping.max_groups = 10;
  const HaxConn hax(plat, o);
  auto inst = hax.make_problem({{nn::zoo::vgg19()}, {nn::zoo::resnet152()}});
  const sched::Problem& prob = inst.problem();
  const sched::Formulation f(prob);
  const sched::PredictOptions blind{.model_contention = false,
                                    .enforce_transition_budget = false,
                                    .enforce_epsilon = false};
  const sched::PredictOptions aware{.enforce_transition_budget = false,
                                    .enforce_epsilon = false};

  double blind_err = 0.0, aware_err = 0.0;
  for (auto kind : {baselines::Kind::NaiveConcurrent, baselines::Kind::Herald,
                    baselines::Kind::H2H}) {
    const sched::Schedule s = baselines::make(kind, prob);
    const TimeMs truth = evaluate(prob, s).round_latency_ms;
    blind_err = std::max(blind_err,
                         std::abs(f.predict(s, blind).round_ms - truth) / truth);
    aware_err = std::max(aware_err,
                         std::abs(f.predict(s, aware).round_ms - truth) / truth);
  }
  EXPECT_GT(blind_err, 0.03);                 // blind models mispredict
  EXPECT_LT(aware_err, 0.6 * blind_err);      // contention-awareness helps
}

/// Scenario-1 shape: two instances of the same DNN, throughput objective.
TEST(IntegrationSameDnn, TwoGoogleNetsGainFromDualAccelerators) {
  const soc::Platform plat = soc::Platform::orin();
  HaxConnOptions o;
  o.objective = sched::Objective::MaxThroughput;
  o.grouping.max_groups = 10;
  const HaxConn hax(plat, o);
  auto inst = hax.make_problem(
      {{nn::zoo::googlenet(), -1, 4}, {nn::zoo::googlenet(), -1, 4}});
  const sched::Problem& prob = inst.problem();
  const auto sol = hax.schedule(prob);
  const double hax_fps = evaluate(prob, sol.schedule).fps;
  const double gpu_fps = evaluate(prob, baselines::gpu_only(prob)).fps;
  // GoogleNet is the paper's showcase pair: HaX-CoNN must beat GPU-only.
  EXPECT_GT(hax_fps, gpu_fps * 1.02);
}

/// Scenario-3 shape: pipelined DNNs with a frame-level dependency.
TEST(IntegrationPipeline, DependentDnnsScheduleAndRun) {
  const soc::Platform plat = soc::Platform::orin();
  HaxConnOptions o;
  o.objective = sched::Objective::MaxThroughput;
  o.grouping.max_groups = 8;
  const HaxConn hax(plat, o);
  auto inst = hax.make_problem(
      {{nn::zoo::googlenet(), -1, 4}, {nn::zoo::resnet101(), 0, 4}});
  const sched::Problem& prob = inst.problem();
  const auto sol = hax.schedule(prob);
  const EvalResult ev = evaluate(prob, sol.schedule);
  // Frame dependency honored on ground truth.
  for (int k = 0; k < 4; ++k) {
    EXPECT_GE(ev.sim.tasks[1].iterations[static_cast<std::size_t>(k)].start,
              ev.sim.tasks[0].iterations[static_cast<std::size_t>(k)].end - 1e-9);
  }
  const double gpu_fps = evaluate(prob, baselines::gpu_only(prob)).fps;
  EXPECT_GE(ev.fps, gpu_fps * 0.94);
}

/// Scenario-4 shape: three DNNs, one chained pair plus one parallel.
TEST(IntegrationHybrid, ThreeDnnWorkloadSolves) {
  const soc::Platform plat = soc::Platform::xavier();
  HaxConnOptions o;
  o.grouping.max_groups = 6;
  o.time_budget_ms = 10'000.0;
  const HaxConn hax(plat, o);
  auto inst = hax.make_problem({{nn::zoo::googlenet()},
                                {nn::zoo::resnet152(), /*depends_on=*/0},
                                {nn::zoo::fcn_resnet18()}});
  const sched::Problem& prob = inst.problem();
  const auto sol = hax.schedule(prob);
  ASSERT_EQ(sol.schedule.dnn_count(), 3);
  const EvalResult hax_ev = evaluate(prob, sol.schedule);
  const EvalResult gpu_ev = evaluate(prob, baselines::gpu_only(prob));
  EXPECT_LE(hax_ev.round_latency_ms, gpu_ev.round_latency_ms * 1.06);
}

/// The solver proves optimality within the paper's "seconds" scale even
/// for the deepest network in the set (Inception-ResNet-v2, Sec 4).
TEST(IntegrationScale, IncResV2SolvesWithinSeconds) {
  const soc::Platform plat = soc::Platform::orin();
  HaxConnOptions o;
  o.grouping.max_groups = 12;
  o.time_budget_ms = 20'000.0;
  const HaxConn hax(plat, o);
  auto inst = hax.make_problem({{nn::zoo::inception_resnet_v2()}, {nn::zoo::googlenet()}});
  const auto sol = hax.schedule(inst.problem());
  EXPECT_FALSE(sol.schedule.assignment.empty());
  EXPECT_LT(sol.stats.elapsed_ms, 20'000.0);
}

}  // namespace
