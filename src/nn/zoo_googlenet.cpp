/// \file zoo_googlenet.cpp
/// GoogleNet / Inception-v1 (Szegedy et al. 2015), 22 weight layers, 9
/// inception modules. Layer indices land near the paper's Table 2 grouping
/// (0-9 stem, ~14-layer inception modules, 124-140 head).

#include "nn/builder.h"
#include "nn/zoo.h"

namespace hax::nn::zoo {
namespace {

/// Classic inception module: 1x1 | 1x1->3x3 | 1x1->5x5 | pool->1x1, concat.
int inception(NetworkBuilder& b, int x, int c1, int c3r, int c3, int c5r, int c5, int cp) {
  const int b1 = b.conv_relu(x, c1, 1);
  const int b3 = b.conv_relu(b.conv_relu(x, c3r, 1), c3, 3);
  const int b5 = b.conv_relu(b.conv_relu(x, c5r, 1), c5, 5);
  const int bp = b.conv_relu(b.pool(x, 3, 1, 1), cp, 1);
  return b.concat({b1, b3, b5, bp});
}

}  // namespace

Network googlenet() {
  NetworkBuilder b("GoogleNet", {3, 224, 224});
  int x = b.conv_relu(b.input(), 64, 7, 2, 3);
  x = b.pool(x, 3, 2, 1);
  x = b.lrn(x);
  x = b.conv_relu(x, 64, 1);
  x = b.conv_relu(x, 192, 3);
  x = b.lrn(x);
  x = b.pool(x, 3, 2, 1);

  x = inception(b, x, 64, 96, 128, 16, 32, 32);     // 3a
  x = inception(b, x, 128, 128, 192, 32, 96, 64);   // 3b
  x = b.pool(x, 3, 2, 1);
  x = inception(b, x, 192, 96, 208, 16, 48, 64);    // 4a
  x = inception(b, x, 160, 112, 224, 24, 64, 64);   // 4b
  x = inception(b, x, 128, 128, 256, 24, 64, 64);   // 4c
  x = inception(b, x, 112, 144, 288, 32, 64, 64);   // 4d
  x = inception(b, x, 256, 160, 320, 32, 128, 128); // 4e
  x = b.pool(x, 3, 2, 1);
  x = inception(b, x, 256, 160, 320, 32, 128, 128); // 5a
  x = inception(b, x, 384, 192, 384, 48, 128, 128); // 5b

  x = b.global_pool(x);
  x = b.fc(x, 1000);
  b.softmax(x);
  return b.build();
}

}  // namespace hax::nn::zoo
