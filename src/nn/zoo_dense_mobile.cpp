/// \file zoo_dense_mobile.cpp
/// DenseNet-121 (Huang et al. 2017) and MobileNet-v1 (Howard et al. 2017).
/// DenseNet's dense connectivity produces many concat joins — the
/// worst-case workload for transition-point discovery; MobileNet appears
/// in the paper's Table 7 overhead experiment.

#include "nn/builder.h"
#include "nn/zoo.h"

namespace hax::nn::zoo {
namespace {

/// One dense layer: BN-ReLU-Conv1x1(4k) -> BN-ReLU-Conv3x3(k), then concat
/// with its input (growth rate k = 32).
int dense_layer(NetworkBuilder& b, int x, int growth) {
  int y = b.relu(b.bn(x));
  y = b.conv(y, 4 * growth, 1, 1, 0);
  y = b.relu(b.bn(y));
  y = b.conv(y, growth, 3);
  return b.concat({x, y});
}

int transition(NetworkBuilder& b, int x) {
  int y = b.relu(b.bn(x));
  y = b.conv(y, b.shape(x).c / 2, 1, 1, 0);
  return b.pool(y, 2, 2);
}

}  // namespace

Network densenet121() {
  constexpr int kGrowth = 32;
  NetworkBuilder b("DenseNet", {3, 224, 224});
  int x = b.conv_bn_relu(b.input(), 64, 7, 2, 3);
  x = b.pool(x, 3, 2, 1);
  const int block_sizes[4] = {6, 12, 24, 16};
  for (int blk = 0; blk < 4; ++blk) {
    for (int i = 0; i < block_sizes[blk]; ++i) x = dense_layer(b, x, kGrowth);
    if (blk < 3) x = transition(b, x);
  }
  x = b.relu(b.bn(x));
  x = b.global_pool(x);
  x = b.fc(x, 1000);
  b.softmax(x);
  return b.build();
}

namespace {

/// SqueezeNet fire module: squeeze 1x1 -> parallel expand 1x1 / 3x3, concat.
int fire(NetworkBuilder& b, int x, int squeeze, int expand) {
  const int s = b.conv_relu(x, squeeze, 1, 1, 0);
  const int e1 = b.conv_relu(s, expand, 1, 1, 0);
  const int e3 = b.conv_relu(s, expand, 3);
  return b.concat({e1, e3});
}

}  // namespace

Network squeezenet() {
  NetworkBuilder b("SqueezeNet", {3, 224, 224});
  int x = b.conv_relu(b.input(), 96, 7, 2, 3);
  x = b.pool(x, 3, 2);
  x = fire(b, x, 16, 64);
  x = fire(b, x, 16, 64);
  x = fire(b, x, 32, 128);
  x = b.pool(x, 3, 2);
  x = fire(b, x, 32, 128);
  x = fire(b, x, 48, 192);
  x = fire(b, x, 48, 192);
  x = fire(b, x, 64, 256);
  x = b.pool(x, 3, 2);
  x = fire(b, x, 64, 256);
  x = b.conv_relu(x, 1000, 1, 1, 0);
  x = b.global_pool(x);
  b.softmax(x);
  return b.build();
}

Network mobilenet_v1() {
  NetworkBuilder b("MobileNet", {3, 224, 224});
  int x = b.conv_bn_relu(b.input(), 32, 3, 2);
  // (stride, out_channels) per depthwise-separable block.
  const int spec[13][2] = {{1, 64},  {2, 128}, {1, 128}, {2, 256}, {1, 256},
                           {2, 512}, {1, 512}, {1, 512}, {1, 512}, {1, 512},
                           {1, 512}, {2, 1024}, {1, 1024}};
  for (const auto& [stride, out_c] : spec) {
    x = b.dwconv_bn_relu(x, 3, stride);
    x = b.conv_bn_relu(x, out_c, 1, 1, 0);
  }
  x = b.global_pool(x);
  x = b.fc(x, 1000);
  b.softmax(x);
  return b.build();
}

}  // namespace hax::nn::zoo
