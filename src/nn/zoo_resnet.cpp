/// \file zoo_resnet.cpp
/// ResNet-18/50/101/152 (He et al. 2016) and the FCN-ResNet18 semantic
/// segmentation variant used by the paper's experiment 5 ("FC_ResN18").

#include "nn/builder.h"
#include "nn/zoo.h"

namespace hax::nn::zoo {
namespace {

/// Basic residual block (two 3x3 convs), ResNet-18/34.
int basic_block(NetworkBuilder& b, int x, int channels, int stride) {
  int shortcut = x;
  int y = b.conv_bn_relu(x, channels, 3, stride);
  y = b.bn(b.conv(y, channels, 3));
  if (stride != 1 || b.shape(x).c != channels) {
    shortcut = b.bn(b.conv(x, channels, 1, stride, 0));
  }
  return b.relu(b.add(y, shortcut));
}

/// Bottleneck residual block (1x1 -> 3x3 -> 1x1), ResNet-50/101/152.
int bottleneck(NetworkBuilder& b, int x, int mid_channels, int stride) {
  const int out_channels = mid_channels * 4;
  int shortcut = x;
  int y = b.conv_bn_relu(x, mid_channels, 1, 1, 0);
  y = b.conv_bn_relu(y, mid_channels, 3, stride);
  y = b.bn(b.conv(y, out_channels, 1, 1, 0));
  if (stride != 1 || b.shape(x).c != out_channels) {
    shortcut = b.bn(b.conv(x, out_channels, 1, stride, 0));
  }
  return b.relu(b.add(y, shortcut));
}

/// Shared stem: 7x7/2 conv + 3x3/2 max pool.
int stem(NetworkBuilder& b) {
  int x = b.conv_bn_relu(b.input(), 64, 7, 2, 3);
  return b.pool(x, 3, 2, 1);
}

Network resnet_basic(const std::string& name, const int blocks[4], Tensor3 input,
                     bool classification_head) {
  NetworkBuilder b(name, input);
  int x = stem(b);
  const int channels[4] = {64, 128, 256, 512};
  for (int stage = 0; stage < 4; ++stage) {
    for (int i = 0; i < blocks[stage]; ++i) {
      const int stride = (stage > 0 && i == 0) ? 2 : 1;
      x = basic_block(b, x, channels[stage], stride);
    }
  }
  if (classification_head) {
    x = b.global_pool(x);
    x = b.fc(x, 1000);
    b.softmax(x);
  } else {
    // FCN head: 1x1 score conv + a chain of 2x transposed-conv upsampling
    // stages back to the input resolution (stride 32 overall).
    x = b.conv(x, 21, 1, 1, 0);
    for (int i = 0; i < 5; ++i) {
      x = b.deconv(x, 21, 4, 2);
      if (i < 4) x = b.relu(x);
    }
  }
  return b.build();
}

Network resnet_bottleneck(const std::string& name, const int blocks[4]) {
  NetworkBuilder b(name, {3, 224, 224});
  int x = stem(b);
  const int mid[4] = {64, 128, 256, 512};
  for (int stage = 0; stage < 4; ++stage) {
    for (int i = 0; i < blocks[stage]; ++i) {
      const int stride = (stage > 0 && i == 0) ? 2 : 1;
      x = bottleneck(b, x, mid[stage], stride);
    }
  }
  x = b.global_pool(x);
  x = b.fc(x, 1000);
  b.softmax(x);
  return b.build();
}

}  // namespace

Network resnet18() {
  const int blocks[4] = {2, 2, 2, 2};
  return resnet_basic("ResNet18", blocks, {3, 224, 224}, /*classification_head=*/true);
}

Network resnet34() {
  const int blocks[4] = {3, 4, 6, 3};
  return resnet_basic("ResNet34", blocks, {3, 224, 224}, /*classification_head=*/true);
}

Network resnet50() {
  const int blocks[4] = {3, 4, 6, 3};
  return resnet_bottleneck("ResNet50", blocks);
}

Network resnet101() {
  const int blocks[4] = {3, 4, 23, 3};
  return resnet_bottleneck("ResNet101", blocks);
}

Network resnet152() {
  const int blocks[4] = {3, 8, 36, 3};
  return resnet_bottleneck("ResNet152", blocks);
}

Network fcn_resnet18() {
  // Cityscapes-style input aspect ratio; heavier than classification.
  const int blocks[4] = {2, 2, 2, 2};
  return resnet_basic("FCN-ResNet18", blocks, {3, 256, 512}, /*classification_head=*/false);
}

}  // namespace hax::nn::zoo
