#include "nn/summary.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "common/table.h"

namespace hax::nn {

std::vector<KindStats> kind_statistics(const Network& net) {
  std::map<LayerKind, KindStats> by_kind;
  for (const Layer& l : net.layers()) {
    KindStats& s = by_kind[l.kind];
    s.kind = l.kind;
    ++s.count;
    s.flops += l.flops();
    s.weight_bytes += l.weight_bytes();
  }
  std::vector<KindStats> out;
  out.reserve(by_kind.size());
  for (const auto& [kind, stats] : by_kind) out.push_back(stats);
  std::sort(out.begin(), out.end(),
            [](const KindStats& a, const KindStats& b) { return a.flops > b.flops; });
  return out;
}

std::string layer_table(const Network& net, int max_rows) {
  TextTable table;
  table.header({"#", "name", "kind", "output (CxHxW)", "MFLOPs", "params (KB)"});
  const int rows = max_rows > 0 ? std::min(max_rows, net.layer_count()) : net.layer_count();
  for (int i = 0; i < rows; ++i) {
    const Layer& l = net.layer(i);
    const std::string shape = std::to_string(l.out.c) + "x" + std::to_string(l.out.h) + "x" +
                              std::to_string(l.out.w);
    table.row({std::to_string(i), l.name, to_string(l.kind), shape,
               fmt(static_cast<double>(l.flops()) / 1e6, 1),
               fmt(static_cast<double>(l.weight_bytes()) / 1e3, 1)});
  }
  std::string out = table.render();
  if (rows < net.layer_count()) {
    out += "... (" + std::to_string(net.layer_count() - rows) + " more layers)\n";
  }
  return out;
}

std::string summarize(const Network& net) {
  std::ostringstream os;
  os << net.name() << ": " << net.layer_count() << " layers, "
     << fmt(static_cast<double>(net.total_flops()) / 1e9, 2) << " GFLOPs, "
     << fmt(static_cast<double>(net.total_weight_bytes()) / 1e6, 1) << " MB parameters\n";
  os << "dominant operators:";
  int shown = 0;
  for (const KindStats& s : kind_statistics(net)) {
    if (s.flops <= 0 || shown++ >= 3) break;
    os << " " << to_string(s.kind) << " (" << s.count << "x, "
       << fmt(static_cast<double>(s.flops) / static_cast<double>(net.total_flops()) * 100.0, 0)
       << "% of FLOPs)";
  }
  os << '\n';
  return os.str();
}

}  // namespace hax::nn
