#include "nn/network.h"

#include "common/error.h"

namespace hax::nn {

const Layer& Network::layer(int index) const {
  HAX_REQUIRE(index >= 0 && index < layer_count(), "layer index out of range");
  return layers_[static_cast<std::size_t>(index)];
}

int Network::add(Layer layer) {
  const int index = layer_count();
  if (layer.kind == LayerKind::Input) {
    HAX_REQUIRE(layer.inputs.empty(), "Input layer cannot have producers");
    HAX_REQUIRE(index == 0, "Input layer must be first");
  } else {
    HAX_REQUIRE(!layer.inputs.empty(), "non-Input layer '" + layer.name + "' needs producers");
    for (int p : layer.inputs) {
      HAX_REQUIRE(p >= 0 && p < index,
                  "layer '" + layer.name + "' references out-of-order producer");
    }
  }
  HAX_REQUIRE(layer.out.valid(), "layer '" + layer.name + "' has invalid output shape");
  layers_.push_back(std::move(layer));
  consumers_valid_ = false;
  return index;
}

Flops Network::total_flops() const noexcept {
  Flops total = 0;
  for (const Layer& l : layers_) total += l.flops();
  return total;
}

Bytes Network::total_weight_bytes() const noexcept {
  Bytes total = 0;
  for (const Layer& l : layers_) total += l.weight_bytes();
  return total;
}

const std::vector<std::vector<int>>& Network::consumers() const {
  if (!consumers_valid_) {
    consumers_.assign(layers_.size(), {});
    for (int i = 0; i < layer_count(); ++i) {
      for (int p : layers_[static_cast<std::size_t>(i)].inputs) {
        consumers_[static_cast<std::size_t>(p)].push_back(i);
      }
    }
    consumers_valid_ = true;
  }
  return consumers_;
}

bool Network::is_clean_cut_after(int index) const {
  HAX_REQUIRE(index >= 0 && index < layer_count(), "cut index out of range");
  if (index == layer_count() - 1) return true;  // network end
  // Every crossing edge must originate at `index`: a producer p <= index
  // with a consumer > index implies p == index.
  const auto& cons = consumers();
  for (int p = 0; p <= index; ++p) {
    for (int c : cons[static_cast<std::size_t>(p)]) {
      if (c > index && p != index) return false;
    }
  }
  return true;
}

void Network::validate() const {
  HAX_REQUIRE(layer_count() > 0, "empty network");
  HAX_REQUIRE(layers_.front().kind == LayerKind::Input, "first layer must be Input");
  for (int i = 1; i < layer_count(); ++i) {
    const Layer& l = layers_[static_cast<std::size_t>(i)];
    HAX_REQUIRE(l.kind != LayerKind::Input, "multiple Input layers");
    // Shape agreement: the recorded `in` shape must match at least one
    // producer's output (joins record the per-branch shape).
    bool shape_ok = false;
    for (int p : l.inputs) {
      if (layers_[static_cast<std::size_t>(p)].out == l.in) {
        shape_ok = true;
        break;
      }
    }
    // Concat joins tensors of equal H/W but differing C; accept if H/W match.
    if (!shape_ok && l.kind == LayerKind::Concat) {
      shape_ok = true;
      for (int p : l.inputs) {
        const Tensor3& o = layers_[static_cast<std::size_t>(p)].out;
        if (o.h != l.out.h || o.w != l.out.w) shape_ok = false;
      }
    }
    HAX_REQUIRE(shape_ok, "layer '" + l.name + "' input shape does not match any producer");
  }
  // Exactly one sink.
  const auto& cons = consumers();
  int sinks = 0;
  for (int i = 0; i < layer_count(); ++i) {
    if (cons[static_cast<std::size_t>(i)].empty()) ++sinks;
  }
  HAX_REQUIRE(sinks == 1, "network must have exactly one sink, found " + std::to_string(sinks));
}

}  // namespace hax::nn
