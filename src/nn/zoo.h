#pragma once

/// \file zoo.h
/// The model zoo: programmatic definitions of the DNNs used in the paper's
/// evaluation (Sec 4, "Applications"). Each builder returns a validated
/// Network with realistic layer counts, shapes, FLOPs and parameter sizes.

#include <string>
#include <vector>

#include "nn/network.h"

namespace hax::nn::zoo {

[[nodiscard]] Network alexnet();
[[nodiscard]] Network caffenet();
[[nodiscard]] Network vgg16();
[[nodiscard]] Network vgg19();
[[nodiscard]] Network googlenet();
[[nodiscard]] Network resnet18();
[[nodiscard]] Network resnet34();
[[nodiscard]] Network resnet50();
[[nodiscard]] Network resnet101();
[[nodiscard]] Network resnet152();
[[nodiscard]] Network inception_v4();
[[nodiscard]] Network inception_resnet_v2();
[[nodiscard]] Network densenet121();
[[nodiscard]] Network fcn_resnet18();
[[nodiscard]] Network mobilenet_v1();
[[nodiscard]] Network squeezenet();

/// Case-insensitive lookup by canonical name (e.g. "GoogleNet",
/// "ResNet101", "Inc-res-v2", "Inception", "FC_ResN18"). Throws
/// PreconditionError for unknown names.
[[nodiscard]] Network by_name(const std::string& name);

/// All canonical model names.
[[nodiscard]] std::vector<std::string> all_names();

/// The ten models of Table 5 / Table 8 in the paper's ordering:
/// CaffeNet, DenseNet, GoogleNet, Inc-res-v2, Inception, ResNet18,
/// ResNet50, ResNet101, ResNet152, VGG19.
[[nodiscard]] std::vector<std::string> evaluation_set();

}  // namespace hax::nn::zoo
