/// \file zoo_inception.cpp
/// Inception-v4 and Inception-ResNet-v2 (Szegedy et al. 2017). These are
/// the deepest networks in the evaluation set; Inception-ResNet-v2's large
/// layer count stresses the solver exactly as the paper describes
/// ("Inception-ResNet-v2 ... consists of 985 layers", Sec 4).

#include "nn/builder.h"
#include "nn/zoo.h"

namespace hax::nn::zoo {
namespace {

using B = NetworkBuilder;

/// Shared Inception-v4 / Inception-ResNet-v2 stem (299x299x3 -> 35x35x384).
int inception_stem(B& b, bool with_bn) {
  const auto cbr = [&](int src, int c, int k, int s = 1, int pad = B::kSame) {
    return with_bn ? b.conv_bn_relu(src, c, k, s, pad) : b.conv_relu(src, c, k, s, pad);
  };
  int x = cbr(b.input(), 32, 3, 2, 0);  // 149x149
  x = cbr(x, 32, 3, 1, 0);              // 147x147
  x = cbr(x, 64, 3);                    // 147x147
  const int p1 = b.pool(x, 3, 2);                    // 73x73
  const int c1 = cbr(x, 96, 3, 2, 0);                // 73x73
  x = b.concat({p1, c1});                            // 160c
  const int a1 = cbr(cbr(x, 64, 1), 96, 3, 1, 0);    // 71x71
  int a2 = cbr(x, 64, 1);
  a2 = b.relu(b.conv_asym(a2, 64, 7, 1));
  a2 = b.relu(b.conv_asym(a2, 64, 1, 7));
  a2 = cbr(a2, 96, 3, 1, 0);                         // 71x71
  x = b.concat({a1, a2});                            // 192c
  const int c2 = cbr(x, 192, 3, 2, 0);               // 35x35
  const int p2 = b.pool(x, 3, 2);                    // 35x35
  return b.concat({c2, p2});                         // 384c
}

// ---------------------------------------------------------------- v4 ----

int inception_a(B& b, int x) {
  const int bp = b.conv_relu(b.pool(x, 3, 1, 1), 96, 1);
  const int b1 = b.conv_relu(x, 96, 1);
  const int b3 = b.conv_relu(b.conv_relu(x, 64, 1), 96, 3);
  int b5 = b.conv_relu(x, 64, 1);
  b5 = b.conv_relu(b5, 96, 3);
  b5 = b.conv_relu(b5, 96, 3);
  return b.concat({bp, b1, b3, b5});  // 384c
}

int reduction_a(B& b, int x, int k, int l, int m, int n) {
  const int bp = b.pool(x, 3, 2);
  const int b3 = b.conv_relu(x, n, 3, 2, 0);
  int bd = b.conv_relu(x, k, 1);
  bd = b.conv_relu(bd, l, 3);
  bd = b.conv_relu(bd, m, 3, 2, 0);
  return b.concat({bp, b3, bd});
}

int inception_b(B& b, int x) {
  const int bp = b.conv_relu(b.pool(x, 3, 1, 1), 128, 1);
  const int b1 = b.conv_relu(x, 384, 1);
  int b7 = b.conv_relu(x, 192, 1);
  b7 = b.relu(b.conv_asym(b7, 224, 1, 7));
  b7 = b.relu(b.conv_asym(b7, 256, 7, 1));
  int bd = b.conv_relu(x, 192, 1);
  bd = b.relu(b.conv_asym(bd, 192, 1, 7));
  bd = b.relu(b.conv_asym(bd, 224, 7, 1));
  bd = b.relu(b.conv_asym(bd, 224, 1, 7));
  bd = b.relu(b.conv_asym(bd, 256, 7, 1));
  return b.concat({bp, b1, b7, bd});  // 1024c
}

int reduction_b_v4(B& b, int x) {
  const int bp = b.pool(x, 3, 2);
  int b3 = b.conv_relu(x, 192, 1);
  b3 = b.conv_relu(b3, 192, 3, 2, 0);
  int b7 = b.conv_relu(x, 256, 1);
  b7 = b.relu(b.conv_asym(b7, 256, 1, 7));
  b7 = b.relu(b.conv_asym(b7, 320, 7, 1));
  b7 = b.conv_relu(b7, 320, 3, 2, 0);
  return b.concat({bp, b3, b7});  // 1536c
}

int inception_c(B& b, int x) {
  const int bp = b.conv_relu(b.pool(x, 3, 1, 1), 256, 1);
  const int b1 = b.conv_relu(x, 256, 1);
  const int mid3 = b.conv_relu(x, 384, 1);
  const int b3a = b.relu(b.conv_asym(mid3, 256, 1, 3));
  const int b3b = b.relu(b.conv_asym(mid3, 256, 3, 1));
  int bd = b.conv_relu(x, 384, 1);
  bd = b.relu(b.conv_asym(bd, 448, 1, 3));
  bd = b.relu(b.conv_asym(bd, 512, 3, 1));
  const int bda = b.relu(b.conv_asym(bd, 256, 3, 1));
  const int bdb = b.relu(b.conv_asym(bd, 256, 1, 3));
  return b.concat({bp, b1, b3a, b3b, bda, bdb});  // 1536c
}

// ------------------------------------------------------ resnet-v2 -------

int block35(B& b, int x) {
  const int b1 = b.conv_bn_relu(x, 32, 1);
  const int b3 = b.conv_bn_relu(b.conv_bn_relu(x, 32, 1), 32, 3);
  int b5 = b.conv_bn_relu(x, 32, 1);
  b5 = b.conv_bn_relu(b5, 48, 3);
  b5 = b.conv_bn_relu(b5, 64, 3);
  const int cat = b.concat({b1, b3, b5});       // 128c
  const int proj = b.conv(cat, b.shape(x).c, 1, 1, 0);  // linear projection
  return b.relu(b.add(proj, x));
}

int block17(B& b, int x) {
  const int b1 = b.conv_bn_relu(x, 192, 1);
  int b7 = b.conv_bn_relu(x, 128, 1);
  b7 = b.relu(b.bn(b.conv_asym(b7, 160, 1, 7)));
  b7 = b.relu(b.bn(b.conv_asym(b7, 192, 7, 1)));
  const int cat = b.concat({b1, b7});           // 384c
  const int proj = b.conv(cat, b.shape(x).c, 1, 1, 0);
  return b.relu(b.add(proj, x));
}

int block8(B& b, int x) {
  const int b1 = b.conv_bn_relu(x, 192, 1);
  int b3 = b.conv_bn_relu(x, 192, 1);
  b3 = b.relu(b.bn(b.conv_asym(b3, 224, 1, 3)));
  b3 = b.relu(b.bn(b.conv_asym(b3, 256, 3, 1)));
  const int cat = b.concat({b1, b3});           // 448c
  const int proj = b.conv(cat, b.shape(x).c, 1, 1, 0);
  return b.relu(b.add(proj, x));
}

int reduction_b_res(B& b, int x) {
  const int bp = b.pool(x, 3, 2);
  int b1 = b.conv_bn_relu(x, 256, 1);
  b1 = b.conv_bn_relu(b1, 384, 3, 2, 0);
  int b2 = b.conv_bn_relu(x, 256, 1);
  b2 = b.conv_bn_relu(b2, 288, 3, 2, 0);
  int b3 = b.conv_bn_relu(x, 256, 1);
  b3 = b.conv_bn_relu(b3, 288, 3);
  b3 = b.conv_bn_relu(b3, 320, 3, 2, 0);
  return b.concat({bp, b1, b2, b3});
}

}  // namespace

Network inception_v4() {
  NetworkBuilder b("Inception", {3, 299, 299});
  int x = inception_stem(b, /*with_bn=*/false);
  for (int i = 0; i < 4; ++i) x = inception_a(b, x);
  x = reduction_a(b, x, 192, 224, 256, 384);  // -> 17x17x1024
  for (int i = 0; i < 7; ++i) x = inception_b(b, x);
  x = reduction_b_v4(b, x);  // -> 8x8x1536
  for (int i = 0; i < 3; ++i) x = inception_c(b, x);
  x = b.global_pool(x);
  x = b.fc(x, 1000);
  b.softmax(x);
  return b.build();
}

Network inception_resnet_v2() {
  NetworkBuilder b("Inc-res-v2", {3, 299, 299});
  int x = inception_stem(b, /*with_bn=*/true);
  for (int i = 0; i < 10; ++i) x = block35(b, x);
  x = reduction_a(b, x, 256, 256, 384, 384);  // -> 17x17x1152
  for (int i = 0; i < 20; ++i) x = block17(b, x);
  x = reduction_b_res(b, x);  // -> 8x8x2144
  for (int i = 0; i < 10; ++i) x = block8(b, x);
  x = b.conv_bn_relu(x, 1536, 1);
  x = b.global_pool(x);
  x = b.fc(x, 1000);
  b.softmax(x);
  return b.build();
}

}  // namespace hax::nn::zoo
