#pragma once

/// \file builder.h
/// Fluent construction of Network DAGs. Builder methods compute output
/// shapes from convolution arithmetic so model definitions read like the
/// architecture tables in the original papers.

#include <string>
#include <vector>

#include "nn/network.h"

namespace hax::nn {

class NetworkBuilder {
 public:
  /// `pad == kSame` picks padding so stride-1 convs preserve H/W and
  /// strided convs produce ceil(in/stride).
  static constexpr int kSame = -1;

  NetworkBuilder(std::string name, Tensor3 input_shape);

  /// Index of the input layer (always 0).
  [[nodiscard]] int input() const noexcept { return 0; }

  /// Output shape of a built layer.
  [[nodiscard]] Tensor3 shape(int index) const;

  // --- primitive layers (return the new layer's index) ---
  int conv(int src, int out_channels, int kernel, int stride = 1, int pad = kSame,
           int groups = 1);
  /// Asymmetric (kh x kw) same-padded stride-1 convolution, e.g. the 1x7 /
  /// 7x1 factorized convs in Inception-v4.
  int conv_asym(int src, int out_channels, int kernel_h, int kernel_w);
  int dwconv(int src, int kernel, int stride = 1, int pad = kSame);
  int deconv(int src, int out_channels, int kernel, int stride);
  int bn(int src);
  int relu(int src);
  int lrn(int src);
  int pool(int src, int kernel, int stride, int pad = 0);
  int global_pool(int src);
  int fc(int src, int out_features);
  int concat(const std::vector<int>& srcs);
  int add(int a, int b);
  int softmax(int src);

  // --- common fused idioms ---
  int conv_relu(int src, int out_channels, int kernel, int stride = 1, int pad = kSame);
  int conv_bn_relu(int src, int out_channels, int kernel, int stride = 1, int pad = kSame);
  int dwconv_bn_relu(int src, int kernel, int stride = 1);

  /// Finalizes, validates, and returns the network. The builder is
  /// consumed (left empty).
  [[nodiscard]] Network build();

 private:
  int add_layer(Layer layer);
  [[nodiscard]] static int conv_out_dim(int in, int kernel, int stride, int pad) noexcept;
  [[nodiscard]] static int resolve_pad(int kernel, int pad) noexcept;

  Network net_;
  int next_id_ = 0;  // for auto-generated layer names
};

}  // namespace hax::nn
