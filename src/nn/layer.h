#pragma once

/// \file layer.h
/// DNN layer representation with real shape/FLOP/traffic math. The
/// scheduler never sees tensors' contents — only their shapes — so a layer
/// here is its metadata: kind, parameters, input/output shapes, and the
/// derived work (FLOPs) and traffic (bytes) quantities the cost model uses.

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "soc/processing_unit.h"

namespace hax::nn {

/// FP16 inference throughout (TensorRT's default on these SoCs).
inline constexpr Bytes kBytesPerElement = 2;

/// A 3-D activation tensor shape (channels, height, width). Batch is 1:
/// the paper schedules single-image streaming inference.
struct Tensor3 {
  int c = 0;
  int h = 0;
  int w = 0;

  [[nodiscard]] std::int64_t elems() const noexcept {
    return static_cast<std::int64_t>(c) * h * w;
  }
  [[nodiscard]] Bytes bytes() const noexcept { return elems() * kBytesPerElement; }
  [[nodiscard]] bool valid() const noexcept { return c > 0 && h > 0 && w > 0; }
  bool operator==(const Tensor3&) const = default;
};

enum class LayerKind : std::uint8_t {
  Input,           ///< network entry; zero cost
  Conv,            ///< 2-D convolution (optionally grouped)
  DepthwiseConv,   ///< depthwise separable convolution (groups == channels)
  Deconv,          ///< transposed convolution (FCN upsampling head)
  Pool,            ///< max/average pooling
  GlobalPool,      ///< global average pooling
  FullyConnected,  ///< dense layer
  Activation,      ///< ReLU & friends (elementwise)
  BatchNorm,       ///< inference-mode scale+shift (elementwise)
  Lrn,             ///< local response normalization (AlexNet/GoogleNet era)
  Concat,          ///< channel concatenation (inception/densenet joins)
  Add,             ///< elementwise residual addition
  Softmax,         ///< classifier head
};

[[nodiscard]] const char* to_string(LayerKind kind) noexcept;

/// One layer. Aggregates are built through NetworkBuilder, which fills in
/// shapes; the struct itself only derives quantities from them.
struct Layer {
  std::string name;
  LayerKind kind = LayerKind::Input;

  Tensor3 in;   ///< primary input shape (for Concat/Add: shape of each input listed in `inputs`)
  Tensor3 out;  ///< output shape

  // Convolution / pooling parameters (ignored by other kinds).
  int kernel = 0;    ///< kernel height (and width unless kernel_w > 0)
  int kernel_w = 0;  ///< kernel width for asymmetric convs (0 = square)
  int stride = 1;
  int pad = 0;
  int groups = 1;

  /// Effective kernel width (kernel_w, or kernel when square).
  [[nodiscard]] int kw() const noexcept { return kernel_w > 0 ? kernel_w : kernel; }

  /// Producer layer indices within the owning Network. Single-input layers
  /// have exactly one; Concat/Add have two or more; Input has none.
  std::vector<int> inputs;

  /// Compute work in FLOPs (multiply-accumulate counted as 2).
  [[nodiscard]] Flops flops() const noexcept;

  /// Parameter (weight + bias) footprint in bytes.
  [[nodiscard]] Bytes weight_bytes() const noexcept;

  /// Activation bytes read (all inputs).
  [[nodiscard]] Bytes input_bytes() const noexcept;

  /// Activation bytes written.
  [[nodiscard]] Bytes output_bytes() const noexcept;

  /// Total DRAM traffic assuming streaming execution (read inputs +
  /// weights once, write output once). On-chip reuse is applied by the
  /// cost model, not here.
  [[nodiscard]] Bytes total_bytes() const noexcept;

  /// Whether this operator can execute on a PU of the given kind.
  /// Mirrors Sec 3.1 item 3 (accelerator/software limitations): DSAs in
  /// our presets lack LRN, Softmax and Deconv support, so those layers pin
  /// their group to the GPU.
  [[nodiscard]] bool supported_on(soc::PuKind kind) const noexcept;

  /// True for kinds whose output feeds a following fused op in TensorRT
  /// (conv+bias+activation, conv+bn). Grouping keeps these together.
  [[nodiscard]] bool fuses_with_next() const noexcept;
};

}  // namespace hax::nn
