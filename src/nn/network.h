#pragma once

/// \file network.h
/// A DNN as a DAG of layers in topological order. Construction goes through
/// NetworkBuilder (builder.h); Network itself is an immutable-ish container
/// with structural queries used by grouping and the cost model.

#include <span>
#include <string>
#include <vector>

#include "nn/layer.h"

namespace hax::nn {

class Network {
 public:
  explicit Network(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  [[nodiscard]] int layer_count() const noexcept { return static_cast<int>(layers_.size()); }
  [[nodiscard]] const Layer& layer(int index) const;
  [[nodiscard]] std::span<const Layer> layers() const noexcept { return layers_; }

  /// Appends a layer whose `inputs` reference already-added layers.
  /// Returns its index. Validates topological order and shape agreement.
  int add(Layer layer);

  /// Total network work / parameter footprint.
  [[nodiscard]] Flops total_flops() const noexcept;
  [[nodiscard]] Bytes total_weight_bytes() const noexcept;

  /// Consumers of each layer (inverse of Layer::inputs), built lazily and
  /// cached; invalidated by add().
  [[nodiscard]] const std::vector<std::vector<int>>& consumers() const;

  /// True when the boundary after layer `index` is a clean single-tensor
  /// cut: every edge from a layer <= index to a layer > index originates
  /// at `index` itself. Only such boundaries can host an inter-DSA
  /// transition (exactly one tensor is flushed to shared memory).
  [[nodiscard]] bool is_clean_cut_after(int index) const;

  /// Structural validation: shapes propagate, inputs are topological,
  /// exactly one Input layer, last layer has no consumers. Throws
  /// PreconditionError on violation.
  void validate() const;

 private:
  std::string name_;
  std::vector<Layer> layers_;
  mutable std::vector<std::vector<int>> consumers_;  // lazy cache
  mutable bool consumers_valid_ = false;
};

}  // namespace hax::nn
