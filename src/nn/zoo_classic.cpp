/// \file zoo_classic.cpp
/// AlexNet / CaffeNet (Krizhevsky et al. 2012, Jia et al. 2014) and
/// VGG-16/19 (Simonyan & Zisserman 2014).

#include "nn/builder.h"
#include "nn/zoo.h"

namespace hax::nn::zoo {
namespace {

/// AlexNet-family trunk. CaffeNet is the single-GPU BVLC variant whose
/// only structural difference is pooling before normalization.
Network alexnet_family(const std::string& name, bool pool_before_lrn) {
  NetworkBuilder b(name, {3, 227, 227});
  int x = b.conv_relu(b.input(), 96, 11, 4, 0);
  if (pool_before_lrn) {
    x = b.pool(x, 3, 2);
    x = b.lrn(x);
  } else {
    x = b.lrn(x);
    x = b.pool(x, 3, 2);
  }
  x = b.conv_relu(x, 256, 5, 1, 2);
  if (pool_before_lrn) {
    x = b.pool(x, 3, 2);
    x = b.lrn(x);
  } else {
    x = b.lrn(x);
    x = b.pool(x, 3, 2);
  }
  x = b.conv_relu(x, 384, 3);
  x = b.conv_relu(x, 384, 3);
  x = b.conv_relu(x, 256, 3);
  x = b.pool(x, 3, 2);
  x = b.relu(b.fc(x, 4096));
  x = b.relu(b.fc(x, 4096));
  x = b.fc(x, 1000);
  b.softmax(x);
  return b.build();
}

Network vgg(const std::string& name, const std::vector<int>& convs_per_block) {
  NetworkBuilder b(name, {3, 224, 224});
  int x = b.input();
  const int channels[5] = {64, 128, 256, 512, 512};
  for (std::size_t block = 0; block < convs_per_block.size(); ++block) {
    for (int i = 0; i < convs_per_block[block]; ++i) {
      x = b.conv_relu(x, channels[block], 3);
    }
    x = b.pool(x, 2, 2);
  }
  x = b.relu(b.fc(x, 4096));
  x = b.relu(b.fc(x, 4096));
  x = b.fc(x, 1000);
  b.softmax(x);
  return b.build();
}

}  // namespace

Network alexnet() { return alexnet_family("AlexNet", /*pool_before_lrn=*/false); }

Network caffenet() { return alexnet_family("CaffeNet", /*pool_before_lrn=*/true); }

Network vgg16() { return vgg("VGG16", {2, 2, 3, 3, 3}); }

Network vgg19() { return vgg("VGG19", {2, 2, 4, 4, 4}); }

}  // namespace hax::nn::zoo
