#pragma once

/// \file summary.h
/// Human-readable network summaries: per-layer tables (Keras-style) and
/// aggregate statistics per operator kind. Used by the CLI's `describe`
/// subcommand and handy when adding zoo models.

#include <string>
#include <vector>

#include "nn/network.h"

namespace hax::nn {

/// Aggregate statistics for one operator kind within a network.
struct KindStats {
  LayerKind kind = LayerKind::Input;
  int count = 0;
  Flops flops = 0;
  Bytes weight_bytes = 0;
};

/// Per-kind totals, sorted by FLOPs descending.
[[nodiscard]] std::vector<KindStats> kind_statistics(const Network& net);

/// Renders a per-layer table: index, name, kind, output shape, FLOPs,
/// parameters. `max_rows` truncates long networks (<= 0 = all rows).
[[nodiscard]] std::string layer_table(const Network& net, int max_rows = 40);

/// One-paragraph summary: layer count, FLOPs, parameters, dominant kinds.
[[nodiscard]] std::string summarize(const Network& net);

}  // namespace hax::nn
