#include "nn/builder.h"

#include "common/error.h"

namespace hax::nn {

NetworkBuilder::NetworkBuilder(std::string name, Tensor3 input_shape)
    : net_(std::move(name)) {
  HAX_REQUIRE(input_shape.valid(), "input shape must be positive");
  Layer in;
  in.name = "input";
  in.kind = LayerKind::Input;
  in.in = input_shape;
  in.out = input_shape;
  net_.add(std::move(in));
}

Tensor3 NetworkBuilder::shape(int index) const { return net_.layer(index).out; }

int NetworkBuilder::add_layer(Layer layer) {
  if (layer.name.empty()) {
    layer.name = std::string(to_string(layer.kind)) + "_" + std::to_string(next_id_);
  }
  ++next_id_;
  return net_.add(std::move(layer));
}

int NetworkBuilder::conv_out_dim(int in, int kernel, int stride, int pad) noexcept {
  return (in + 2 * pad - kernel) / stride + 1;
}

int NetworkBuilder::resolve_pad(int kernel, int pad) noexcept {
  return pad == kSame ? (kernel - 1) / 2 : pad;
}

int NetworkBuilder::conv(int src, int out_channels, int kernel, int stride, int pad,
                         int groups) {
  HAX_REQUIRE(out_channels > 0 && kernel > 0 && stride > 0, "bad conv params");
  const Tensor3 in = shape(src);
  HAX_REQUIRE(in.c % groups == 0 && out_channels % groups == 0,
              "conv channels must divide groups");
  const int p = resolve_pad(kernel, pad);
  Layer l;
  l.kind = LayerKind::Conv;
  l.in = in;
  l.out = {out_channels, conv_out_dim(in.h, kernel, stride, p),
           conv_out_dim(in.w, kernel, stride, p)};
  l.kernel = kernel;
  l.stride = stride;
  l.pad = p;
  l.groups = groups;
  l.inputs = {src};
  return add_layer(std::move(l));
}

int NetworkBuilder::conv_asym(int src, int out_channels, int kernel_h, int kernel_w) {
  HAX_REQUIRE(out_channels > 0 && kernel_h > 0 && kernel_w > 0, "bad conv_asym params");
  const Tensor3 in = shape(src);
  Layer l;
  l.kind = LayerKind::Conv;
  l.in = in;
  l.out = {out_channels, in.h, in.w};  // same-padded, stride 1
  l.kernel = kernel_h;
  l.kernel_w = kernel_w;
  l.stride = 1;
  l.pad = (kernel_h - 1) / 2;  // representative; shape already fixed above
  l.inputs = {src};
  return add_layer(std::move(l));
}

int NetworkBuilder::dwconv(int src, int kernel, int stride, int pad) {
  const Tensor3 in = shape(src);
  const int p = resolve_pad(kernel, pad);
  Layer l;
  l.kind = LayerKind::DepthwiseConv;
  l.in = in;
  l.out = {in.c, conv_out_dim(in.h, kernel, stride, p), conv_out_dim(in.w, kernel, stride, p)};
  l.kernel = kernel;
  l.stride = stride;
  l.pad = p;
  l.groups = in.c;
  l.inputs = {src};
  return add_layer(std::move(l));
}

int NetworkBuilder::deconv(int src, int out_channels, int kernel, int stride) {
  const Tensor3 in = shape(src);
  Layer l;
  l.kind = LayerKind::Deconv;
  l.in = in;
  // Standard fractionally-strided upsampling: out = in * stride.
  l.out = {out_channels, in.h * stride, in.w * stride};
  l.kernel = kernel;
  l.stride = stride;
  l.inputs = {src};
  return add_layer(std::move(l));
}

int NetworkBuilder::bn(int src) {
  const Tensor3 s = shape(src);
  Layer l;
  l.kind = LayerKind::BatchNorm;
  l.in = s;
  l.out = s;
  l.inputs = {src};
  return add_layer(std::move(l));
}

int NetworkBuilder::relu(int src) {
  const Tensor3 s = shape(src);
  Layer l;
  l.kind = LayerKind::Activation;
  l.in = s;
  l.out = s;
  l.inputs = {src};
  return add_layer(std::move(l));
}

int NetworkBuilder::lrn(int src) {
  const Tensor3 s = shape(src);
  Layer l;
  l.kind = LayerKind::Lrn;
  l.in = s;
  l.out = s;
  l.inputs = {src};
  return add_layer(std::move(l));
}

int NetworkBuilder::pool(int src, int kernel, int stride, int pad) {
  const Tensor3 in = shape(src);
  Layer l;
  l.kind = LayerKind::Pool;
  l.in = in;
  l.out = {in.c, conv_out_dim(in.h, kernel, stride, pad), conv_out_dim(in.w, kernel, stride, pad)};
  l.kernel = kernel;
  l.stride = stride;
  l.pad = pad;
  l.inputs = {src};
  return add_layer(std::move(l));
}

int NetworkBuilder::global_pool(int src) {
  const Tensor3 in = shape(src);
  Layer l;
  l.kind = LayerKind::GlobalPool;
  l.in = in;
  l.out = {in.c, 1, 1};
  l.kernel = in.h;
  l.stride = 1;
  l.inputs = {src};
  return add_layer(std::move(l));
}

int NetworkBuilder::fc(int src, int out_features) {
  const Tensor3 in = shape(src);
  Layer l;
  l.kind = LayerKind::FullyConnected;
  l.in = in;
  l.out = {out_features, 1, 1};
  l.inputs = {src};
  return add_layer(std::move(l));
}

int NetworkBuilder::concat(const std::vector<int>& srcs) {
  HAX_REQUIRE(srcs.size() >= 2, "concat needs >= 2 inputs");
  const Tensor3 first = shape(srcs.front());
  int total_c = 0;
  for (int s : srcs) {
    const Tensor3 t = shape(s);
    HAX_REQUIRE(t.h == first.h && t.w == first.w, "concat inputs must share H/W");
    total_c += t.c;
  }
  Layer l;
  l.kind = LayerKind::Concat;
  l.in = first;
  l.out = {total_c, first.h, first.w};
  l.inputs = srcs;
  return add_layer(std::move(l));
}

int NetworkBuilder::add(int a, int b) {
  const Tensor3 sa = shape(a);
  HAX_REQUIRE(sa == shape(b), "add inputs must have identical shape");
  Layer l;
  l.kind = LayerKind::Add;
  l.in = sa;
  l.out = sa;
  l.inputs = {a, b};
  return add_layer(std::move(l));
}

int NetworkBuilder::softmax(int src) {
  const Tensor3 s = shape(src);
  Layer l;
  l.kind = LayerKind::Softmax;
  l.in = s;
  l.out = s;
  l.inputs = {src};
  return add_layer(std::move(l));
}

int NetworkBuilder::conv_relu(int src, int out_channels, int kernel, int stride, int pad) {
  return relu(conv(src, out_channels, kernel, stride, pad));
}

int NetworkBuilder::conv_bn_relu(int src, int out_channels, int kernel, int stride, int pad) {
  return relu(bn(conv(src, out_channels, kernel, stride, pad)));
}

int NetworkBuilder::dwconv_bn_relu(int src, int kernel, int stride) {
  return relu(bn(dwconv(src, kernel, stride)));
}

Network NetworkBuilder::build() {
  net_.validate();
  Network out = std::move(net_);
  net_ = Network("consumed");
  return out;
}

}  // namespace hax::nn
