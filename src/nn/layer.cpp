#include "nn/layer.h"

namespace hax::nn {

const char* to_string(LayerKind kind) noexcept {
  switch (kind) {
    case LayerKind::Input: return "input";
    case LayerKind::Conv: return "conv";
    case LayerKind::DepthwiseConv: return "dwconv";
    case LayerKind::Deconv: return "deconv";
    case LayerKind::Pool: return "pool";
    case LayerKind::GlobalPool: return "gpool";
    case LayerKind::FullyConnected: return "fc";
    case LayerKind::Activation: return "act";
    case LayerKind::BatchNorm: return "bn";
    case LayerKind::Lrn: return "lrn";
    case LayerKind::Concat: return "concat";
    case LayerKind::Add: return "add";
    case LayerKind::Softmax: return "softmax";
  }
  return "?";
}

Flops Layer::flops() const noexcept {
  const std::int64_t out_elems = out.elems();
  switch (kind) {
    case LayerKind::Input:
      return 0;
    case LayerKind::Conv:
    case LayerKind::Deconv: {
      // 2 * (Kh*Kw*Cin/groups) FLOPs per output element.
      const std::int64_t k2cin =
          static_cast<std::int64_t>(kernel) * kw() * (in.c / (groups > 0 ? groups : 1));
      return 2 * k2cin * out_elems;
    }
    case LayerKind::DepthwiseConv:
      return 2 * static_cast<std::int64_t>(kernel) * kw() * out_elems;
    case LayerKind::Pool:
      return static_cast<std::int64_t>(kernel) * kernel * out_elems;
    case LayerKind::GlobalPool:
      return in.elems();
    case LayerKind::FullyConnected:
      return 2 * in.elems() * out_elems;
    case LayerKind::Activation:
    case LayerKind::BatchNorm:
      return 2 * out_elems;
    case LayerKind::Lrn:
      return 6 * out_elems;  // square, window sum, scale, pow, mul
    case LayerKind::Concat:
      return 0;  // pure data movement
    case LayerKind::Add:
      return out_elems;
    case LayerKind::Softmax:
      return 5 * out_elems;
  }
  return 0;
}

Bytes Layer::weight_bytes() const noexcept {
  switch (kind) {
    case LayerKind::Conv:
    case LayerKind::Deconv: {
      const std::int64_t w = static_cast<std::int64_t>(kernel) * kw() *
                             (in.c / (groups > 0 ? groups : 1)) * out.c;
      return (w + out.c) * kBytesPerElement;  // + bias
    }
    case LayerKind::DepthwiseConv: {
      const std::int64_t w = static_cast<std::int64_t>(kernel) * kw() * out.c;
      return (w + out.c) * kBytesPerElement;
    }
    case LayerKind::FullyConnected: {
      const std::int64_t w = in.elems() * out.elems();
      return (w + out.elems()) * kBytesPerElement;
    }
    case LayerKind::BatchNorm:
      return 2 * static_cast<Bytes>(out.c) * kBytesPerElement;  // folded scale+shift
    default:
      return 0;
  }
}

Bytes Layer::input_bytes() const noexcept {
  if (kind == LayerKind::Input) return 0;
  // Concat/Add read each producer once; `in` records the per-producer
  // shape and `inputs.size()` the fan-in. Single-input layers read `in`.
  const auto fan_in = static_cast<Bytes>(inputs.empty() ? 1 : inputs.size());
  if (kind == LayerKind::Concat || kind == LayerKind::Add) {
    // For joins, out elems == total input elems (concat) or per-branch
    // elems * fan-in reads (add). Reading `out.bytes()` worth for concat
    // and fan_in * in.bytes() for add is equivalent under our builders.
    return kind == LayerKind::Concat ? out.bytes() : fan_in * in.bytes();
  }
  return in.bytes();
}

Bytes Layer::output_bytes() const noexcept {
  if (kind == LayerKind::Input) return 0;
  return out.bytes();
}

Bytes Layer::total_bytes() const noexcept {
  return input_bytes() + weight_bytes() + output_bytes();
}

bool Layer::supported_on(soc::PuKind pu) const noexcept {
  if (pu == soc::PuKind::Gpu || pu == soc::PuKind::Cpu) return true;
  // DSA limitations (NVDLA / Hexagon): no LRN, no softmax, no transposed
  // convolution. Everything else has a fixed-function path.
  switch (kind) {
    case LayerKind::Lrn:
    case LayerKind::Softmax:
    case LayerKind::Deconv:
      return false;
    default:
      return true;
  }
}

bool Layer::fuses_with_next() const noexcept {
  // TensorRT fuses conv+bn+activation chains and keeps them on one engine;
  // a transition must not split them (Sec 3.1 item 1).
  switch (kind) {
    case LayerKind::Conv:
    case LayerKind::DepthwiseConv:
    case LayerKind::Deconv:
    case LayerKind::BatchNorm:
    case LayerKind::FullyConnected:
      return true;
    default:
      return false;
  }
}

}  // namespace hax::nn
