#include "nn/zoo.h"

#include "common/error.h"
#include "common/string_util.h"

namespace hax::nn::zoo {

Network by_name(const std::string& name) {
  const std::string key = str::to_lower(name);
  if (key == "alexnet") return alexnet();
  if (key == "caffenet") return caffenet();
  if (key == "vgg16") return vgg16();
  if (key == "vgg19" || key == "vgg-19") return vgg19();
  if (key == "googlenet") return googlenet();
  if (key == "resnet18") return resnet18();
  if (key == "resnet34") return resnet34();
  if (key == "resnet50" || key == "resnet52") return resnet50();
  if (key == "resnet101") return resnet101();
  if (key == "resnet152") return resnet152();
  if (key == "inception" || key == "inception-v4" || key == "inceptionv4") return inception_v4();
  if (key == "inc-res-v2" || key == "inception-resnet-v2" || key == "incresv2") {
    return inception_resnet_v2();
  }
  if (key == "densenet" || key == "densenet121") return densenet121();
  if (key == "fcn-resnet18" || key == "fc_resn18" || key == "fcn_resnet18") {
    return fcn_resnet18();
  }
  if (key == "mobilenet" || key == "mobilenet-v1") return mobilenet_v1();
  if (key == "squeezenet") return squeezenet();
  HAX_REQUIRE(false, "unknown model name: " + name);
  // Unreachable; HAX_REQUIRE throws.
  return alexnet();
}

std::vector<std::string> all_names() {
  return {"AlexNet",    "CaffeNet", "VGG16",        "VGG19",     "GoogleNet",
          "ResNet18",   "ResNet34", "ResNet50",     "ResNet101", "ResNet152",
          "Inception",  "Inc-res-v2", "DenseNet",   "FCN-ResNet18",
          "MobileNet",  "SqueezeNet"};
}

std::vector<std::string> evaluation_set() {
  return {"CaffeNet", "DenseNet",  "GoogleNet", "Inc-res-v2", "Inception",
          "ResNet18", "ResNet50",  "ResNet101", "ResNet152",  "VGG19"};
}

}  // namespace hax::nn::zoo
