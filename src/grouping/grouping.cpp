#include "grouping/grouping.h"

#include <algorithm>
#include <limits>

#include "common/error.h"

namespace hax::grouping {

GroupedNetwork::GroupedNetwork(nn::Network net, std::vector<LayerGroup> groups)
    : net_(std::move(net)), groups_(std::move(groups)) {
  HAX_REQUIRE(!groups_.empty(), "grouping must produce at least one group");
  HAX_REQUIRE(groups_.front().first == 0, "first group must start at layer 0");
  HAX_REQUIRE(groups_.back().last == net_.layer_count() - 1,
              "last group must end at the last layer");
  for (std::size_t i = 1; i < groups_.size(); ++i) {
    HAX_REQUIRE(groups_[i].first == groups_[i - 1].last + 1, "groups must be contiguous");
  }
}

const LayerGroup& GroupedNetwork::group(int index) const {
  HAX_REQUIRE(index >= 0 && index < group_count(), "group index out of range");
  return groups_[static_cast<std::size_t>(index)];
}

bool GroupedNetwork::supported(int index, soc::PuKind kind) const {
  const LayerGroup& g = group(index);
  if (kind == soc::PuKind::Gpu || kind == soc::PuKind::Cpu) return true;
  return !g.gpu_only;
}

std::vector<int> legal_cut_points(const nn::Network& net) {
  std::vector<int> cuts;
  for (int i = 0; i < net.layer_count() - 1; ++i) {
    const nn::Layer& here = net.layer(i);
    const nn::Layer& next = net.layer(i + 1);
    // Rule 1: preserve fusion. Conv/FC outputs feeding bn/activation, and
    // residual adds consuming a just-produced tensor, stay fused.
    if (here.fuses_with_next() &&
        (next.kind == nn::LayerKind::BatchNorm || next.kind == nn::LayerKind::Activation)) {
      continue;
    }
    if (next.kind == nn::LayerKind::Add || next.kind == nn::LayerKind::Softmax) continue;
    // Never cut right after the input pseudo-layer.
    if (here.kind == nn::LayerKind::Input) continue;
    // Rule 2: single tensor crosses the boundary.
    if (!net.is_clean_cut_after(i)) continue;
    cuts.push_back(i);
  }
  return cuts;
}

namespace {

LayerGroup make_group(const nn::Network& net, int first, int last) {
  LayerGroup g;
  g.first = first;
  g.last = last;
  for (int i = first; i <= last; ++i) {
    const nn::Layer& l = net.layer(i);
    g.flops += l.flops();
    g.weight_bytes += l.weight_bytes();
    if (!l.supported_on(soc::PuKind::Dsa)) g.gpu_only = true;
  }
  g.input_bytes = first == 0 ? 0 : net.layer(first).input_bytes();
  g.output_bytes = net.layer(last).output_bytes();
  g.label = std::to_string(first) + "-" + std::to_string(last);
  return g;
}

}  // namespace

GroupedNetwork build_groups(nn::Network net, const GroupingOptions& options) {
  HAX_REQUIRE(options.max_groups >= 1, "max_groups must be >= 1");
  net.validate();

  const std::vector<int> cuts = legal_cut_points(net);

  // Segment boundaries: [0, cut0], [cut0+1, cut1], ..., [last_cut+1, end].
  std::vector<LayerGroup> groups;
  int first = 0;
  for (int cut : cuts) {
    groups.push_back(make_group(net, first, cut));
    first = cut + 1;
  }
  groups.push_back(make_group(net, first, net.layer_count() - 1));

  // Coarsen: repeatedly merge the adjacent pair with the smallest combined
  // FLOPs until within budget. Tiny groups cost solver time but cannot
  // meaningfully rebalance the schedule, so they are the right victims.
  while (static_cast<int>(groups.size()) > options.max_groups) {
    std::size_t best = 0;
    Flops best_cost = std::numeric_limits<Flops>::max();
    for (std::size_t i = 0; i + 1 < groups.size(); ++i) {
      const Flops cost = groups[i].flops + groups[i + 1].flops;
      if (cost < best_cost) {
        best_cost = cost;
        best = i;
      }
    }
    const LayerGroup merged = make_group(net, groups[best].first, groups[best + 1].last);
    groups[best] = merged;
    groups.erase(groups.begin() + static_cast<std::ptrdiff_t>(best) + 1);
  }

  return GroupedNetwork(std::move(net), std::move(groups));
}

}  // namespace hax::grouping
