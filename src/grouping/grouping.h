#pragma once

/// \file grouping.h
/// Layer grouping (paper Sec 3.1). Identifies the minimal layer groups
/// that serve as atomic units of DSA assignment, such that:
///  1. operator fusion is preserved (no cut between conv and its bn/relu),
///  2. each boundary is a clean single-tensor cut (exactly one tensor is
///     flushed to shared memory on an inter-DSA transition),
///  3. accelerator limitations are honored (groups containing DSA-
///     unsupported operators are pinned to the GPU).
/// Groups are then coarsened toward `max_groups` by merging the cheapest
/// adjacent pairs, mirroring the ~10-group granularity of the paper's
/// Table 2.

#include <string>
#include <vector>

#include "nn/network.h"
#include "soc/processing_unit.h"

namespace hax::grouping {

/// One atomic assignment unit: the contiguous layer range [first, last].
struct LayerGroup {
  int first = 0;
  int last = 0;
  bool gpu_only = false;  ///< contains a DSA-unsupported operator

  // Aggregates over member layers (filled by build_groups).
  Flops flops = 0;
  Bytes weight_bytes = 0;
  Bytes input_bytes = 0;   ///< bytes crossing into the group
  Bytes output_bytes = 0;  ///< bytes crossing out of the group
  std::string label;       ///< e.g. "0-9"

  [[nodiscard]] int size() const noexcept { return last - first + 1; }
};

struct GroupingOptions {
  /// Upper bound on group count; legal cut points beyond this are merged
  /// away (smallest-flops adjacent pairs first). The solver's search space
  /// is O(|PUs|^groups), so this is the main knob trading schedule quality
  /// against solve time (see bench_ablation).
  int max_groups = 12;
};

/// A network plus its grouping. Owns the Network.
class GroupedNetwork {
 public:
  GroupedNetwork(nn::Network net, std::vector<LayerGroup> groups);

  [[nodiscard]] const nn::Network& network() const noexcept { return net_; }
  [[nodiscard]] const std::vector<LayerGroup>& groups() const noexcept { return groups_; }
  [[nodiscard]] int group_count() const noexcept { return static_cast<int>(groups_.size()); }
  [[nodiscard]] const LayerGroup& group(int index) const;

  /// Whether group `index` may run on the given PU kind.
  [[nodiscard]] bool supported(int index, soc::PuKind kind) const;

 private:
  nn::Network net_;
  std::vector<LayerGroup> groups_;
};

/// All boundaries after which a transition is legal: clean single-tensor
/// cuts that do not split a fusion chain. The network end is excluded.
[[nodiscard]] std::vector<int> legal_cut_points(const nn::Network& net);

/// Builds the grouped network per the options.
[[nodiscard]] GroupedNetwork build_groups(nn::Network net, const GroupingOptions& options = {});

}  // namespace hax::grouping
