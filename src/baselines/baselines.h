#pragma once

/// \file baselines.h
/// The five baseline schedulers HaX-CoNN is evaluated against (Sec 5):
///
///  - GpuOnly: everything on the GPU, DNNs serialized by the runtime.
///  - NaiveConcurrent ("GPU & DSA"): each DNN pinned whole to one PU, the
///    whole-DNN placement chosen to balance standalone load (groups a PU
///    cannot run fall back to the GPU, as TensorRT's GPUFallback does).
///  - Mensa (Boroumand et al.): per-DNN greedy layer placement by
///    standalone time + local transition cost; single-DNN scheme, so each
///    DNN is placed independently and contention is ignored.
///  - Herald (Kwon et al.): cross-DNN utilization balancing, but blind to
///    transition costs and contention.
///  - H2H (Zhang et al.): Herald improved with transition-cost awareness
///    and a local-search pass over a contention-blind cost model.
///
/// All return Schedules; their quality is judged on the simulator (ground
/// truth), where the contention-blind ones mispredict — reproducing the
/// paper's central comparison.

#include <string>
#include <vector>

#include "sched/problem.h"
#include "sched/schedule.h"

namespace hax::baselines {

enum class Kind { GpuOnly, NaiveConcurrent, Mensa, Herald, H2H };

[[nodiscard]] const char* name(Kind kind) noexcept;

/// All kinds, in the paper's comparison order.
[[nodiscard]] std::vector<Kind> all_kinds();

[[nodiscard]] sched::Schedule gpu_only(const sched::Problem& problem);
[[nodiscard]] sched::Schedule naive_concurrent(const sched::Problem& problem);
[[nodiscard]] sched::Schedule mensa(const sched::Problem& problem);
[[nodiscard]] sched::Schedule herald(const sched::Problem& problem);
[[nodiscard]] sched::Schedule h2h(const sched::Problem& problem);

[[nodiscard]] sched::Schedule make(Kind kind, const sched::Problem& problem);

/// Seed set for HaX-CoNN's solver: the naive baselines (the paper's
/// fallback guarantee covers exactly these).
[[nodiscard]] std::vector<sched::Schedule> naive_seeds(const sched::Problem& problem);

}  // namespace hax::baselines
