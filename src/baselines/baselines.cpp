#include "baselines/baselines.h"

#include <algorithm>
#include <limits>

#include "common/error.h"
#include "sched/formulation.h"

namespace hax::baselines {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// All groups of one DNN on `pu`, with GPU fallback for unsupported groups.
std::vector<soc::PuId> pin_with_fallback(const sched::Problem& prob, int dnn, soc::PuId pu) {
  const sched::DnnSpec& spec = prob.dnns[static_cast<std::size_t>(dnn)];
  const soc::PuId gpu = prob.platform->gpu();
  std::vector<soc::PuId> asg;
  asg.reserve(static_cast<std::size_t>(spec.net->group_count()));
  for (int g = 0; g < spec.net->group_count(); ++g) {
    asg.push_back(spec.profile->at(g, pu).supported ? pu : gpu);
  }
  return asg;
}

/// Standalone whole-DNN time on `pu` with GPU fallback.
TimeMs pinned_time(const sched::Problem& prob, int dnn, soc::PuId pu) {
  const sched::DnnSpec& spec = prob.dnns[static_cast<std::size_t>(dnn)];
  const soc::PuId gpu = prob.platform->gpu();
  TimeMs total = 0.0;
  for (int g = 0; g < spec.net->group_count(); ++g) {
    const perf::GroupProfile& rec = spec.profile->at(g, pu);
    total += rec.supported ? rec.time_ms : spec.profile->at(g, gpu).time_ms;
  }
  return total * static_cast<double>(spec.iterations);
}

}  // namespace

const char* name(Kind kind) noexcept {
  switch (kind) {
    case Kind::GpuOnly: return "GPU-only";
    case Kind::NaiveConcurrent: return "GPU&DSA";
    case Kind::Mensa: return "Mensa";
    case Kind::Herald: return "Herald";
    case Kind::H2H: return "H2H";
  }
  return "?";
}

std::vector<Kind> all_kinds() {
  return {Kind::GpuOnly, Kind::NaiveConcurrent, Kind::Mensa, Kind::Herald, Kind::H2H};
}

sched::Schedule gpu_only(const sched::Problem& problem) {
  problem.validate();
  sched::Schedule s;
  for (int d = 0; d < problem.dnn_count(); ++d) {
    s.assignment.push_back(pin_with_fallback(problem, d, problem.platform->gpu()));
  }
  return s;
}

sched::Schedule naive_concurrent(const sched::Problem& problem) {
  problem.validate();
  const int n = problem.dnn_count();
  const std::vector<soc::PuId>& pus = problem.pus;

  // Enumerate whole-DNN placements (|pus|^n is tiny for the paper's
  // 2-3 DNN workloads) and keep the one with the best balanced load.
  std::vector<int> best(static_cast<std::size_t>(n), 0);
  double best_makespan = kInf;
  std::vector<int> choice(static_cast<std::size_t>(n), 0);
  while (true) {
    std::vector<TimeMs> load(pus.size(), 0.0);
    for (int d = 0; d < n; ++d) {
      load[static_cast<std::size_t>(choice[static_cast<std::size_t>(d)])] +=
          pinned_time(problem, d, pus[static_cast<std::size_t>(choice[static_cast<std::size_t>(d)])]);
    }
    const TimeMs makespan = *std::max_element(load.begin(), load.end());
    if (makespan < best_makespan) {
      best_makespan = makespan;
      best = choice;
    }
    // Next combination.
    int i = n - 1;
    while (i >= 0 && choice[static_cast<std::size_t>(i)] == static_cast<int>(pus.size()) - 1) {
      choice[static_cast<std::size_t>(i)] = 0;
      --i;
    }
    if (i < 0) break;
    ++choice[static_cast<std::size_t>(i)];
  }

  sched::Schedule s;
  for (int d = 0; d < n; ++d) {
    s.assignment.push_back(
        pin_with_fallback(problem, d, pus[static_cast<std::size_t>(best[static_cast<std::size_t>(d)])]));
  }
  return s;
}

sched::Schedule mensa(const sched::Problem& problem) {
  problem.validate();
  sched::Schedule s;
  for (int d = 0; d < problem.dnn_count(); ++d) {
    const sched::DnnSpec& spec = problem.dnns[static_cast<std::size_t>(d)];
    std::vector<soc::PuId> asg;
    soc::PuId prev = soc::kInvalidPu;
    for (int g = 0; g < spec.net->group_count(); ++g) {
      soc::PuId pick = soc::kInvalidPu;
      TimeMs pick_cost = kInf;
      for (soc::PuId pu : problem.pus) {
        const perf::GroupProfile& rec = spec.profile->at(g, pu);
        if (!rec.supported) continue;
        TimeMs cost = rec.time_ms;
        if (prev != soc::kInvalidPu && prev != pu) {
          // Local (myopic) transition accounting — Mensa's weakness per
          // Sec 5.1: it cannot see transition costs arising later.
          cost += spec.profile->at(g - 1, prev).tau_out + rec.tau_in;
        }
        if (cost < pick_cost) {
          pick_cost = cost;
          pick = pu;
        }
      }
      HAX_ASSERT(pick != soc::kInvalidPu);
      asg.push_back(pick);
      prev = pick;
    }
    s.assignment.push_back(std::move(asg));
  }
  return s;
}

sched::Schedule herald(const sched::Problem& problem) {
  problem.validate();
  sched::Schedule s;
  std::vector<TimeMs> load(problem.pus.size(), 0.0);
  for (int d = 0; d < problem.dnn_count(); ++d) {
    const sched::DnnSpec& spec = problem.dnns[static_cast<std::size_t>(d)];
    std::vector<soc::PuId> asg;
    for (int g = 0; g < spec.net->group_count(); ++g) {
      std::size_t pick = 0;
      TimeMs pick_load = kInf;
      for (std::size_t p = 0; p < problem.pus.size(); ++p) {
        const perf::GroupProfile& rec = spec.profile->at(g, problem.pus[p]);
        if (!rec.supported) continue;
        const TimeMs resulting =
            load[p] + rec.time_ms * static_cast<double>(spec.iterations);
        if (resulting < pick_load) {
          pick_load = resulting;
          pick = p;
        }
      }
      HAX_ASSERT(pick_load < kInf);
      load[pick] = pick_load;
      asg.push_back(problem.pus[pick]);
    }
    s.assignment.push_back(std::move(asg));
  }
  return s;
}

namespace {

/// The analytic cost model Herald-class mappers optimize: standalone
/// times plus (for H2H) transition costs, assuming perfect overlap —
/// blind to both memory contention and same-PU queueing. The estimate is
/// max(longest DNN chain, heaviest PU load); over-subscription and
/// contention make the real runtime diverge from it by large margins
/// (Sec 5.2: "inaccurate latency estimations that are wrong by up to 75%").
double analytic_makespan(const sched::Problem& prob, const sched::Schedule& s,
                         bool with_transitions) {
  std::vector<TimeMs> pu_load(static_cast<std::size_t>(prob.platform->pu_count()), 0.0);
  TimeMs longest_chain = 0.0;
  for (int d = 0; d < prob.dnn_count(); ++d) {
    const sched::DnnSpec& spec = prob.dnns[static_cast<std::size_t>(d)];
    const auto& asg = s.assignment[static_cast<std::size_t>(d)];
    TimeMs chain = 0.0;
    for (int g = 0; g < spec.net->group_count(); ++g) {
      const soc::PuId pu = asg[static_cast<std::size_t>(g)];
      const perf::GroupProfile& rec = spec.profile->at(g, pu);
      chain += rec.time_ms;
      pu_load[static_cast<std::size_t>(pu)] +=
          rec.time_ms * static_cast<double>(spec.iterations);
      if (with_transitions && g > 0 && pu != asg[static_cast<std::size_t>(g - 1)]) {
        const soc::PuId prev = asg[static_cast<std::size_t>(g - 1)];
        chain += spec.profile->at(g - 1, prev).tau_out + rec.tau_in;
      }
    }
    longest_chain = std::max(longest_chain, chain * static_cast<double>(spec.iterations));
  }
  const TimeMs heaviest = *std::max_element(pu_load.begin(), pu_load.end());
  return std::max(longest_chain, heaviest);
}

}  // namespace

sched::Schedule h2h(const sched::Problem& problem) {
  problem.validate();
  sched::Schedule s = herald(problem);

  // Transition-cost-aware local search over the analytic model (H2H's
  // defining feature — and flaw: still blind to contention and queueing,
  // Sec 5.2).
  double best = analytic_makespan(problem, s, /*with_transitions=*/true);

  constexpr int kMaxPasses = 3;
  for (int pass = 0; pass < kMaxPasses; ++pass) {
    bool improved = false;
    for (int d = 0; d < problem.dnn_count(); ++d) {
      const sched::DnnSpec& spec = problem.dnns[static_cast<std::size_t>(d)];
      for (int g = 0; g < spec.net->group_count(); ++g) {
        auto& slot = s.assignment[static_cast<std::size_t>(d)][static_cast<std::size_t>(g)];
        const soc::PuId original = slot;
        for (soc::PuId pu : problem.pus) {
          if (pu == original) continue;
          if (!spec.profile->at(g, pu).supported) continue;
          slot = pu;
          const double candidate = analytic_makespan(problem, s, true);
          if (candidate < best) {
            best = candidate;
            improved = true;
          } else {
            slot = original;
          }
        }
      }
    }
    if (!improved) break;
  }
  return s;
}

sched::Schedule make(Kind kind, const sched::Problem& problem) {
  switch (kind) {
    case Kind::GpuOnly: return gpu_only(problem);
    case Kind::NaiveConcurrent: return naive_concurrent(problem);
    case Kind::Mensa: return mensa(problem);
    case Kind::Herald: return herald(problem);
    case Kind::H2H: return h2h(problem);
  }
  HAX_REQUIRE(false, "unknown baseline kind");
  return {};
}

std::vector<sched::Schedule> naive_seeds(const sched::Problem& problem) {
  return {gpu_only(problem), naive_concurrent(problem)};
}

}  // namespace baselines
