#include "perf/profiler.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "common/error.h"
#include "common/rng.h"
#include "perf/emc_estimator.h"

namespace hax::perf {

NetworkProfile::NetworkProfile(int group_count, int layer_count, int pu_count)
    : group_count_(group_count), layer_count_(layer_count), pu_count_(pu_count) {
  HAX_REQUIRE(group_count > 0 && layer_count > 0 && pu_count > 0,
              "profile dimensions must be positive");
  records_.resize(static_cast<std::size_t>(group_count) * static_cast<std::size_t>(pu_count));
  layer_records_.resize(static_cast<std::size_t>(layer_count) *
                        static_cast<std::size_t>(pu_count));
}

const LayerProfile& NetworkProfile::layer_at(int layer, soc::PuId pu) const {
  HAX_REQUIRE(layer >= 0 && layer < layer_count_, "layer out of range");
  HAX_REQUIRE(pu >= 0 && pu < pu_count_, "pu out of range");
  return layer_records_[static_cast<std::size_t>(layer) * static_cast<std::size_t>(pu_count_) +
                        static_cast<std::size_t>(pu)];
}

LayerProfile& NetworkProfile::layer_at(int layer, soc::PuId pu) {
  return const_cast<LayerProfile&>(std::as_const(*this).layer_at(layer, pu));
}

const GroupProfile& NetworkProfile::at(int group, soc::PuId pu) const {
  HAX_REQUIRE(group >= 0 && group < group_count_, "group out of range");
  HAX_REQUIRE(pu >= 0 && pu < pu_count_, "pu out of range");
  return records_[static_cast<std::size_t>(group) * static_cast<std::size_t>(pu_count_) +
                  static_cast<std::size_t>(pu)];
}

GroupProfile& NetworkProfile::at(int group, soc::PuId pu) {
  return const_cast<GroupProfile&>(std::as_const(*this).at(group, pu));
}

std::span<const GroupProfile> NetworkProfile::group_row(int group) const {
  HAX_REQUIRE(group >= 0 && group < group_count_, "group out of range");
  return {records_.data() + static_cast<std::size_t>(group) * static_cast<std::size_t>(pu_count_),
          static_cast<std::size_t>(pu_count_)};
}

std::span<const LayerProfile> NetworkProfile::layer_row(int layer) const {
  HAX_REQUIRE(layer >= 0 && layer < layer_count_, "layer out of range");
  return {layer_records_.data() +
              static_cast<std::size_t>(layer) * static_cast<std::size_t>(pu_count_),
          static_cast<std::size_t>(pu_count_)};
}

TimeMs NetworkProfile::total_time(soc::PuId pu) const {
  TimeMs total = 0.0;
  for (int g = 0; g < group_count_; ++g) {
    const GroupProfile& rec = at(g, pu);
    if (!rec.supported) return std::numeric_limits<TimeMs>::infinity();
    total += rec.time_ms;
  }
  return total;
}

soc::PuId NetworkProfile::fastest_pu(const std::vector<soc::PuId>& pus) const {
  HAX_REQUIRE(!pus.empty(), "fastest_pu needs candidates");
  soc::PuId best = pus.front();
  TimeMs best_time = total_time(best);
  for (soc::PuId pu : pus) {
    const TimeMs t = total_time(pu);
    if (t < best_time) {
      best_time = t;
      best = pu;
    }
  }
  return best;
}

void NetworkProfile::scale_pu_time(soc::PuId pu, double factor) {
  HAX_REQUIRE(pu >= 0 && pu < pu_count_, "PU id out of range");
  HAX_REQUIRE(factor > 0.0 && std::isfinite(factor), "scale factor must be positive");
  for (int g = 0; g < group_count_; ++g) {
    GroupProfile& rec = at(g, pu);
    if (!rec.supported) continue;
    rec.time_ms *= factor;
    rec.tau_in *= factor;
    rec.tau_out *= factor;
  }
  for (int l = 0; l < layer_count_; ++l) {
    LayerProfile& rec = layer_at(l, pu);
    if (!rec.supported) continue;
    rec.time_ms *= factor;
  }
}

NetworkProfile Profiler::profile(const grouping::GroupedNetwork& gn) const {
  const soc::Platform& plat = *platform_;
  NetworkProfile out(gn.group_count(), gn.network().layer_count(), plat.pu_count());
  const GBps emc_peak = plat.memory().total_gbps();
  const soc::PuId gpu = plat.gpu();

  // Multiplicative measurement noise (run-to-run IProfiler jitter).
  Rng rng(options_.noise_seed);
  const auto noise = [&]() -> double {
    if (options_.noise_stdev <= 0.0) return 1.0;
    return std::max(0.5, rng.normal(1.0, options_.noise_stdev));
  };

  // ---- per-layer records (IProfiler-style) -------------------------------
  for (int layer = 0; layer < gn.network().layer_count(); ++layer) {
    const nn::Layer& l = gn.network().layer(layer);
    // Profile the GPU first: it anchors the black-box estimation (Sec 3.3).
    GBps gpu_demand = 0.0;
    double gpu_util = 0.0;

    std::vector<soc::PuId> order{gpu};
    for (soc::PuId pu = 0; pu < plat.pu_count(); ++pu) {
      if (pu != gpu) order.push_back(pu);
    }
    for (soc::PuId pu : order) {
      LayerProfile& rec = out.layer_at(layer, pu);
      const soc::PuParams& params = plat.pu(pu).params();
      rec.supported = l.supported_on(params.kind);
      if (!rec.supported) continue;

      const double f = noise();
      rec.time_ms = cost_.layer_time(l, pu) * f;
      // The same traffic volume observed over a jittered duration.
      const GBps observed = rec.time_ms > 0.0 ? cost_.layer_demand(l, pu) / f : 0.0;
      if (pu == gpu) {
        gpu_demand = observed;
        gpu_util = EmcEstimator::measure_utilization(observed, emc_peak);
      }
      if (params.throughput_profilable) {
        rec.demand_gbps = observed;
      } else {
        const double util = EmcEstimator::measure_utilization(observed, emc_peak);
        rec.demand_gbps = EmcEstimator::estimate_demand(gpu_demand, gpu_util, util);
      }
    }
  }

  // ---- per-group records aggregate the layer records ---------------------
  for (int g = 0; g < gn.group_count(); ++g) {
    const grouping::LayerGroup& grp = gn.group(g);
    for (soc::PuId pu = 0; pu < plat.pu_count(); ++pu) {
      GroupProfile& rec = out.at(g, pu);
      const soc::PuParams& params = plat.pu(pu).params();
      rec.supported = gn.supported(g, params.kind);
      if (!rec.supported) continue;

      TimeMs time = 0.0;
      double traffic_gb_ms = 0.0;  // GB/s x ms accumulator == traffic volume
      for (int layer = grp.first; layer <= grp.last; ++layer) {
        const LayerProfile& lrec = out.layer_at(layer, pu);
        time += lrec.time_ms;
        traffic_gb_ms += lrec.demand_gbps * lrec.time_ms;
      }
      rec.time_ms = time;
      rec.demand_gbps = time > 0.0 ? traffic_gb_ms / time : 0.0;
      rec.demand_estimated = !params.throughput_profilable;
      rec.emc_utilization = EmcEstimator::measure_utilization(rec.demand_gbps, emc_peak);
      rec.tau_in = transition_.in_cost(gn, g, pu) * noise();
      rec.tau_out = transition_.out_cost(gn, g, pu) * noise();
    }
  }
  return out;
}

}  // namespace hax::perf
