#include "perf/cost_model.h"

#include <algorithm>

#include "common/error.h"

namespace hax::perf {

double CostModel::type_efficiency(nn::LayerKind kind, const soc::PuParams& pu) const noexcept {
  using nn::LayerKind;
  switch (kind) {
    case LayerKind::Conv:
    case LayerKind::DepthwiseConv:
    case LayerKind::Deconv:
      return pu.conv_eff;
    case LayerKind::FullyConnected:
      return pu.fc_eff;
    case LayerKind::Pool:
    case LayerKind::GlobalPool:
      return pu.pool_eff;
    case LayerKind::Activation:
    case LayerKind::BatchNorm:
    case LayerKind::Add:
    case LayerKind::Lrn:
    case LayerKind::Softmax:
      return pu.elementwise_eff;
    case LayerKind::Input:
    case LayerKind::Concat:
      return 1.0;  // no compute
  }
  return 1.0;
}

namespace {

/// Elementwise tail ops (activation / bn / residual add) are fused into
/// the producing kernel by TensorRT/DLA compilers when their tensor fits
/// on-chip — they then cost (almost) nothing and move (almost) no DRAM
/// traffic.
bool fused_elementwise(const nn::Layer& layer, const soc::PuParams& p) {
  switch (layer.kind) {
    case nn::LayerKind::Activation:
    case nn::LayerKind::BatchNorm:
    case nn::LayerKind::Add:
      return layer.out.bytes() <= p.onchip_buffer_bytes;
    default:
      return false;
  }
}

bool conv_family(nn::LayerKind kind) {
  return kind == nn::LayerKind::Conv || kind == nn::LayerKind::DepthwiseConv ||
         kind == nn::LayerKind::Deconv;
}

}  // namespace

Bytes CostModel::layer_dram_bytes(const nn::Layer& layer, soc::PuId pu) const {
  const soc::PuParams& p = platform_->pu(pu).params();
  if (layer.kind == nn::LayerKind::Input) return 0;
  if (fused_elementwise(layer, p)) {
    // Stays on-chip; only a sliver of boundary traffic remains.
    return (layer.input_bytes() + layer.output_bytes()) / 8;
  }
  const Bytes act = layer.input_bytes() + layer.output_bytes();
  // Tiling amplification applies to convolution-family activations only:
  // pooling / joins / heads stream their tensors once.
  const double amp = conv_family(layer.kind) ? p.act_traffic_amplification : 1.0;
  double weights = static_cast<double>(layer.weight_bytes());
  if (layer.kind == nn::LayerKind::FullyConnected) weights *= p.fc_weight_traffic;
  return static_cast<Bytes>(amp * static_cast<double>(act) + weights);
}

TimeMs CostModel::layer_time(const nn::Layer& layer, soc::PuId pu) const {
  const soc::ProcessingUnit& unit = platform_->pu(pu);
  const soc::PuParams& p = unit.params();
  HAX_REQUIRE(layer.supported_on(p.kind),
              "layer '" + layer.name + "' not supported on " + p.name);
  if (layer.kind == nn::LayerKind::Input) return 0.0;
  if (fused_elementwise(layer, p)) {
    // Tail of a fused kernel: a fraction of the launch overhead, floored
    // by the time its residual boundary traffic needs at stream bandwidth
    // (keeps the derived demand physically bounded).
    return std::max(0.3 * p.per_layer_overhead_ms,
                    ms_for_bytes(layer_dram_bytes(layer, pu), p.max_stream_gbps));
  }

  const Flops work = layer.flops();
  TimeMs compute_ms = 0.0;
  if (work > 0) {
    double eff = type_efficiency(layer.kind, p);
    // Asymmetric kernels get padded toward square on DSA pipelines.
    if (conv_family(layer.kind) && layer.kernel_w > 0 && layer.kernel_w != layer.kernel) {
      eff /= p.asym_kernel_penalty;
    }
    compute_ms = ms_for_flops(work, unit.effective_gflops(work) * eff);
  }
  const TimeMs memory_ms = ms_for_bytes(layer_dram_bytes(layer, pu), p.max_stream_gbps);
  return std::max(compute_ms, memory_ms) + p.per_layer_overhead_ms;
}

GBps CostModel::layer_demand(const nn::Layer& layer, soc::PuId pu) const {
  const TimeMs t = layer_time(layer, pu);
  if (t <= 0.0) return 0.0;
  return bytes_over_ms(layer_dram_bytes(layer, pu), t);
}

TimeMs CostModel::group_time(const grouping::GroupedNetwork& gn, int group,
                             soc::PuId pu) const {
  const grouping::LayerGroup& g = gn.group(group);
  TimeMs total = 0.0;
  for (int i = g.first; i <= g.last; ++i) total += layer_time(gn.network().layer(i), pu);
  return total;
}

Bytes CostModel::group_dram_bytes(const grouping::GroupedNetwork& gn, int group,
                                  soc::PuId pu) const {
  const grouping::LayerGroup& g = gn.group(group);
  Bytes total = 0;
  for (int i = g.first; i <= g.last; ++i) {
    total += layer_dram_bytes(gn.network().layer(i), pu);
  }
  return total;
}

GBps CostModel::group_demand(const grouping::GroupedNetwork& gn, int group,
                             soc::PuId pu) const {
  const TimeMs t = group_time(gn, group, pu);
  if (t <= 0.0) return 0.0;
  return bytes_over_ms(group_dram_bytes(gn, group, pu), t);
}

TimeMs CostModel::network_time(const nn::Network& net, soc::PuId pu,
                               soc::PuId fallback_pu) const {
  TimeMs total = 0.0;
  for (const nn::Layer& l : net.layers()) {
    soc::PuId target = pu;
    if (!l.supported_on(platform_->pu(pu).params().kind)) {
      HAX_REQUIRE(fallback_pu != soc::kInvalidPu,
                  "layer '" + l.name + "' unsupported and no fallback PU given");
      target = fallback_pu;
    }
    total += layer_time(l, target);
  }
  return total;
}

}  // namespace hax::perf
