#pragma once

/// \file profiler.h
/// Layer-centric offline profiling (paper Sec 3.2/3.3). Produces the
/// profile database the scheduler consumes: per (layer group, PU)
/// standalone time, requested memory throughput, and transition costs.
///
/// Profiling honors observability limits: a PU whose
/// `throughput_profilable` flag is false (the DLA / Hexagon DSP) does not
/// expose its requested throughput; only the coarse EMC-utilization
/// counter is visible. For those PUs the stored demand is *reconstructed*
/// with the EmcEstimator (Sec 3.3's four-step method), so the scheduler
/// works from the same imperfect knowledge the paper's system does.

#include <span>
#include <vector>

#include "grouping/grouping.h"
#include "perf/cost_model.h"
#include "perf/transition.h"
#include "soc/platform.h"

namespace hax::perf {

/// One (layer, PU) profile record — what TensorRT's IProfiler reports per
/// layer, plus the (possibly estimated) requested memory throughput.
struct LayerProfile {
  bool supported = false;
  TimeMs time_ms = 0.0;
  GBps demand_gbps = 0.0;
};

/// One (group, PU) profile record.
struct GroupProfile {
  bool supported = false;
  TimeMs time_ms = 0.0;        ///< standalone execution time
  GBps demand_gbps = 0.0;      ///< requested memory throughput (possibly estimated)
  bool demand_estimated = false;  ///< true when reconstructed via EMC ratio
  double emc_utilization = 0.0;   ///< measured (quantized) fraction of EMC peak
  TimeMs tau_in = 0.0;   ///< IN transition cost when a transition lands here
  TimeMs tau_out = 0.0;  ///< OUT transition cost when a transition leaves here
};

/// Profile of a whole grouped network on one platform.
class NetworkProfile {
 public:
  NetworkProfile(int group_count, int layer_count, int pu_count);

  [[nodiscard]] const GroupProfile& at(int group, soc::PuId pu) const;
  [[nodiscard]] GroupProfile& at(int group, soc::PuId pu);

  [[nodiscard]] const LayerProfile& layer_at(int layer, soc::PuId pu) const;
  [[nodiscard]] LayerProfile& layer_at(int layer, soc::PuId pu);

  /// Contiguous per-PU records of one group / one layer (pu_count()
  /// entries, indexed by PuId). Lets batch consumers — the schedule
  /// evaluator's item-table construction — walk rows without a
  /// bounds-checked call per cell.
  [[nodiscard]] std::span<const GroupProfile> group_row(int group) const;
  [[nodiscard]] std::span<const LayerProfile> layer_row(int layer) const;

  [[nodiscard]] int group_count() const noexcept { return group_count_; }
  [[nodiscard]] int layer_count() const noexcept { return layer_count_; }
  [[nodiscard]] int pu_count() const noexcept { return pu_count_; }

  /// Sum of standalone group times on a single PU (serial lower bound for
  /// that PU, ignoring transitions and contention).
  [[nodiscard]] TimeMs total_time(soc::PuId pu) const;

  /// Fastest single-PU assignment among the given PUs.
  [[nodiscard]] soc::PuId fastest_pu(const std::vector<soc::PuId>& pus) const;

  /// Rescales every timing of one PU — group and layer execution times
  /// and the transition legs touching it — by `factor` (> 0). This is how
  /// the self-healing runtime folds an observed slowdown (thermal
  /// throttle, DVFS step) back into the scheduler's beliefs without
  /// re-profiling: the drift watchdog measures observed/expected per PU
  /// and the degradation manager applies the ratio here before
  /// re-solving. Demands are left untouched (a throttled PU still moves
  /// the same bytes, just over a longer window).
  void scale_pu_time(soc::PuId pu, double factor);

 private:
  int group_count_;
  int layer_count_;
  int pu_count_;
  std::vector<GroupProfile> records_;        // row-major [group][pu]
  std::vector<LayerProfile> layer_records_;  // row-major [layer][pu]
};

struct ProfilerOptions {
  /// Relative standard deviation of multiplicative measurement noise on
  /// per-layer times and transition costs (0 = exact). Real IProfiler
  /// readings jitter by a few percent run-to-run; the scheduler must be
  /// robust to that (it is what ε ultimately absorbs).
  double noise_stdev = 0.0;
  std::uint64_t noise_seed = 0x9D0F11E5ull;
};

class Profiler {
 public:
  explicit Profiler(const soc::Platform& platform, ProfilerOptions options = {})
      : platform_(&platform), options_(options), cost_(platform), transition_(platform) {}

  /// Profiles every group on every PU of the platform.
  [[nodiscard]] NetworkProfile profile(const grouping::GroupedNetwork& gn) const;

  [[nodiscard]] const CostModel& cost_model() const noexcept { return cost_; }
  [[nodiscard]] const TransitionModel& transition_model() const noexcept { return transition_; }

 private:
  const soc::Platform* platform_;
  ProfilerOptions options_;
  CostModel cost_;
  TransitionModel transition_;
};

}  // namespace hax::perf
