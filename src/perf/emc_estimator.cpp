#include "perf/emc_estimator.h"

#include <algorithm>
#include <cmath>

namespace hax::perf {

double EmcEstimator::measure_utilization(GBps demand, GBps emc_peak) noexcept {
  if (emc_peak <= 0.0) return 0.0;
  const double util = std::clamp(demand / emc_peak, 0.0, 1.0);
  return std::round(util / kUtilQuantum) * kUtilQuantum;
}

GBps EmcEstimator::estimate_demand(GBps gpu_demand, double gpu_util,
                                   double dsa_util) noexcept {
  if (gpu_util <= 0.0) return 0.0;
  return std::max(0.0, gpu_demand * dsa_util / gpu_util);
}

}  // namespace hax::perf
