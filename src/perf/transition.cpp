#include "perf/transition.h"

#include "common/error.h"

namespace hax::perf {
namespace {

/// Fixed synchronization cost of draining a PU's pipeline and signalling
/// through shared memory, per direction.
constexpr TimeMs kSyncOverheadMs = 0.004;

/// Reformat passes re-walk the tensor once (read + write at stream bw).
constexpr double kReformatTrafficFactor = 2.0;

}  // namespace

TimeMs TransitionModel::out_cost(const grouping::GroupedNetwork& gn, int group,
                                 soc::PuId pu) const {
  const grouping::LayerGroup& g = gn.group(group);
  const soc::PuParams& p = platform_->pu(pu).params();
  TimeMs cost = kSyncOverheadMs + ms_for_bytes(g.output_bytes, p.max_stream_gbps);
  if (p.requires_reformat) {
    // The DSA's private layout must be converted to the shared linear
    // layout before other PUs can read the tensor.
    cost += ms_for_bytes(static_cast<Bytes>(kReformatTrafficFactor *
                                            static_cast<double>(g.output_bytes)),
                         p.max_stream_gbps);
  }
  return cost;
}

TimeMs TransitionModel::in_cost(const grouping::GroupedNetwork& gn, int group,
                                soc::PuId pu) const {
  const grouping::LayerGroup& g = gn.group(group);
  const soc::PuParams& p = platform_->pu(pu).params();
  TimeMs cost = kSyncOverheadMs + ms_for_bytes(g.input_bytes, p.max_stream_gbps);
  if (p.requires_reformat) {
    cost += ms_for_bytes(static_cast<Bytes>(kReformatTrafficFactor *
                                            static_cast<double>(g.input_bytes)),
                         p.max_stream_gbps);
  }
  return cost;
}

TimeMs TransitionModel::boundary_cost(const grouping::GroupedNetwork& gn, int group,
                                      soc::PuId from, soc::PuId to) const {
  HAX_REQUIRE(group + 1 < gn.group_count(), "no boundary after the last group");
  if (from == to) return 0.0;
  return out_cost(gn, group, from) + in_cost(gn, group + 1, to);
}

}  // namespace hax::perf
