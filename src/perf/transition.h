#pragma once

/// \file transition.h
/// Inter-DSA transition cost model (paper Sec 3.2, "Inter-DSA layer
/// transitions"). When execution of a DNN switches PUs at a group
/// boundary, the producing PU flushes the boundary tensor from its private
/// cache to shared memory (OUT cost) and the consuming PU loads it, with a
/// reformat pass if its HW pipeline uses a private tensor layout
/// (IN cost). Costs scale with the boundary tensor size — which is why the
/// paper observes pooling-terminated groups transitioning cheaply.

#include "grouping/grouping.h"
#include "soc/platform.h"

namespace hax::perf {

class TransitionModel {
 public:
  explicit TransitionModel(const soc::Platform& platform) : platform_(&platform) {}

  /// Cost of flushing group `group`'s boundary output from `pu` to shared
  /// memory so another PU can consume it.
  [[nodiscard]] TimeMs out_cost(const grouping::GroupedNetwork& gn, int group,
                                soc::PuId pu) const;

  /// Cost of ingesting the predecessor group's output on `pu`
  /// (load + optional reformat).
  [[nodiscard]] TimeMs in_cost(const grouping::GroupedNetwork& gn, int group,
                               soc::PuId pu) const;

  /// Total boundary cost of transitioning between consecutive groups:
  /// out_cost(group, from) + in_cost(group + 1, to).
  [[nodiscard]] TimeMs boundary_cost(const grouping::GroupedNetwork& gn, int group,
                                     soc::PuId from, soc::PuId to) const;

 private:
  const soc::Platform* platform_;
};

}  // namespace hax::perf
