#pragma once

/// \file emc_estimator.h
/// Black-box DSA memory-throughput estimation (paper Sec 3.3, steps 1-4).
/// Hardware counters (Nsight Compute) expose requested throughput on the
/// GPU but not on the DLA/DSP; only the system-wide external memory
/// controller (EMC) utilization counter covers every PU — at coarse
/// granularity. The paper's method: profile a layer's throughput on the
/// GPU, read EMC utilization for the layer on both PUs, and scale the GPU
/// throughput by the utilization ratio.

#include "common/types.h"

namespace hax::perf {

class EmcEstimator {
 public:
  /// Percent resolution of the EMC utilization counter (tegrastats-style).
  /// Non-zero quantization is what makes the reconstructed demand an
  /// *estimate* rather than the exact value — the scheduler's ε slack
  /// (Eq. 9) absorbs the residual error.
  static constexpr double kUtilQuantum = 0.01;

  /// Step 2: "read" the EMC utilization counter for a layer demanding
  /// `demand` GB/s against an EMC peak of `emc_peak` GB/s. Quantized to
  /// kUtilQuantum and clamped to [0, 1].
  [[nodiscard]] static double measure_utilization(GBps demand, GBps emc_peak) noexcept;

  /// Step 3: reconstruct a black-box PU's requested throughput from the
  /// GPU-profiled throughput of the same layer and both measured EMC
  /// utilizations: demand_dsa = demand_gpu * util_dsa / util_gpu.
  /// Returns 0 when the GPU utilization reading is zero (nothing to scale).
  [[nodiscard]] static GBps estimate_demand(GBps gpu_demand, double gpu_util,
                                            double dsa_util) noexcept;
};

}  // namespace hax::perf
