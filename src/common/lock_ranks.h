#pragma once

/// \file lock_ranks.h
/// Canonical lock-rank constants, generated from the static acquisition
/// graph. Each `HAX_LOCK_RANK_DEF(id, rank)` line in
/// tools/analyze/lock_ranks.inc becomes `hax::ranks::id`; declaration
/// sites pass `HAX_MUTEX_RANK(id)` as the Mutex constructor arguments:
///
///     Mutex mutex_{HAX_MUTEX_RANK(ThreadPool_mutex_)};
///
/// The id is the analyzer's canonical name for the lock (class-scope
/// chain + field with `::` -> `_`, or enclosing function + local name);
/// `hax_analyze` fails the build when a declaration's id does not match
/// the model, when lock_ranks.inc drifts from the graph, or when a Mutex
/// in src/ lacks the handshake entirely — so the runtime validator in
/// annotated.h and the static analysis can never disagree about order.
///
/// Regenerate after adding a Mutex or a nesting edge:
///     build/tools/hax_analyze . --emit-ranks > tools/analyze/lock_ranks.inc

#include "common/annotated.h"

namespace hax::ranks {

#define HAX_LOCK_RANK_DEF(id, rank) inline constexpr int id = (rank);
#include "../../tools/analyze/lock_ranks.inc"
#undef HAX_LOCK_RANK_DEF

}  // namespace hax::ranks

/// Expands to the (rank, name) constructor-argument pair for a ranked
/// Mutex declaration. The stringized id doubles as the runtime
/// validator's diagnostic name, keeping abort messages greppable back to
/// both the declaration and lock_ranks.inc.
#define HAX_MUTEX_RANK(id) ::hax::ranks::id, #id
