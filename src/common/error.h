#pragma once

/// \file error.h
/// Precondition / invariant checking helpers.
///
/// `HAX_REQUIRE` is used for caller-facing preconditions on public APIs and
/// throws `hax::PreconditionError`, so misuse is testable. `HAX_ASSERT` is a
/// cheap internal invariant check that aborts in all build types (the
/// simulator must never silently continue from a broken invariant).

#include <stdexcept>
#include <string>

namespace hax {

/// Thrown when a public-API precondition is violated.
class PreconditionError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

[[noreturn]] inline void throw_precondition(const char* cond, const char* file, int line,
                                            const std::string& msg) {
  throw PreconditionError(std::string(file) + ":" + std::to_string(line) +
                          ": precondition failed (" + cond + "): " + msg);
}

}  // namespace hax

#define HAX_REQUIRE(cond, msg)                                   \
  do {                                                           \
    if (!(cond)) {                                               \
      ::hax::throw_precondition(#cond, __FILE__, __LINE__, msg); \
    }                                                            \
  } while (false)

#define HAX_ASSERT(cond)                                                        \
  do {                                                                          \
    if (!(cond)) {                                                              \
      ::hax::throw_precondition(#cond, __FILE__, __LINE__, "internal invariant"); \
    }                                                                           \
  } while (false)
