#pragma once

/// \file json.h
/// Minimal JSON value type with parsing and serialization — enough for the
/// library's artifact formats (saved schedules, profiles, traces) without
/// an external dependency. Supports the full JSON data model except
/// non-finite numbers; numbers are stored as double.

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace hax::json {

class Value;

using Array = std::vector<Value>;
/// std::map keeps key order deterministic for diff-able output.
using Object = std::map<std::string, Value>;

class Value {
 public:
  Value() : data_(nullptr) {}
  Value(std::nullptr_t) : data_(nullptr) {}
  Value(bool b) : data_(b) {}
  Value(double d) : data_(d) {}
  Value(int i) : data_(static_cast<double>(i)) {}
  Value(std::int64_t i) : data_(static_cast<double>(i)) {}
  Value(const char* s) : data_(std::string(s)) {}
  Value(std::string s) : data_(std::move(s)) {}
  Value(Array a) : data_(std::move(a)) {}
  Value(Object o) : data_(std::move(o)) {}

  [[nodiscard]] bool is_null() const noexcept { return std::holds_alternative<std::nullptr_t>(data_); }
  [[nodiscard]] bool is_bool() const noexcept { return std::holds_alternative<bool>(data_); }
  [[nodiscard]] bool is_number() const noexcept { return std::holds_alternative<double>(data_); }
  [[nodiscard]] bool is_string() const noexcept { return std::holds_alternative<std::string>(data_); }
  [[nodiscard]] bool is_array() const noexcept { return std::holds_alternative<Array>(data_); }
  [[nodiscard]] bool is_object() const noexcept { return std::holds_alternative<Object>(data_); }

  /// Typed accessors; throw PreconditionError on kind mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] std::int64_t as_int() const;  ///< number, rounded to nearest
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;
  [[nodiscard]] Array& as_array();
  [[nodiscard]] Object& as_object();

  /// Object member access; throws if not an object or key missing.
  [[nodiscard]] const Value& at(const std::string& key) const;
  /// True when this is an object containing `key`.
  [[nodiscard]] bool contains(const std::string& key) const noexcept;

  /// Serializes compactly; `indent > 0` pretty-prints with that many
  /// spaces per level.
  [[nodiscard]] std::string dump(int indent = 0) const;

  bool operator==(const Value&) const = default;

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> data_;
};

/// Parses a complete JSON document; throws PreconditionError with a
/// byte-offset message on malformed input or trailing garbage.
[[nodiscard]] Value parse(std::string_view text);

/// Escapes a string per RFC 8259 (exposed for tests).
[[nodiscard]] std::string escape(std::string_view s);

}  // namespace hax::json
