#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.h"

namespace hax::stats {

double sum(std::span<const double> xs) noexcept {
  double s = 0.0;
  for (double x : xs) s += x;
  return s;
}

double mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  return sum(xs) / static_cast<double>(xs.size());
}

double stdev(std::span<const double> xs) noexcept {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double min(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  return *std::min_element(xs.begin(), xs.end());
}

double max(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  return *std::max_element(xs.begin(), xs.end());
}

double percentile(std::span<const double> xs, double p) {
  HAX_REQUIRE(!xs.empty(), "percentile of empty sample");
  HAX_REQUIRE(p >= 0.0 && p <= 100.0, "percentile p out of [0,100]");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double geomean(std::span<const double> xs) {
  HAX_REQUIRE(!xs.empty(), "geomean of empty sample");
  double acc = 0.0;
  for (double x : xs) {
    HAX_REQUIRE(x > 0.0, "geomean requires positive samples");
    acc += std::log(x);
  }
  return std::exp(acc / static_cast<double>(xs.size()));
}

P2Quantile::P2Quantile(double quantile) : p_(quantile) {
  HAX_REQUIRE(quantile > 0.0 && quantile < 1.0, "P2Quantile quantile out of (0,1)");
  // Desired positions grow by these per observation (Jain & Chlamtac,
  // Table I): the middle marker tracks the quantile, its neighbours the
  // midpoints toward the extremes.
  dwant_[0] = 0.0;
  dwant_[1] = p_ / 2.0;
  dwant_[2] = p_;
  dwant_[3] = (1.0 + p_) / 2.0;
  dwant_[4] = 1.0;
}

double P2Quantile::parabolic(int i, double d) const noexcept {
  // Piecewise-parabolic (P²) height adjustment of marker i by d = ±1.
  return heights_[i] +
         d / (pos_[i + 1] - pos_[i - 1]) *
             ((pos_[i] - pos_[i - 1] + d) * (heights_[i + 1] - heights_[i]) /
                  (pos_[i + 1] - pos_[i]) +
              (pos_[i + 1] - pos_[i] - d) * (heights_[i] - heights_[i - 1]) /
                  (pos_[i] - pos_[i - 1]));
}

double P2Quantile::linear(int i, int d) const noexcept {
  return heights_[i] + static_cast<double>(d) * (heights_[i + d] - heights_[i]) /
                           (pos_[i + d] - pos_[i]);
}

void P2Quantile::add(double x) noexcept {
  if (n_ < 5) {
    heights_[n_] = x;
    ++n_;
    if (n_ == 5) {
      std::sort(heights_, heights_ + 5);
      for (int i = 0; i < 5; ++i) {
        pos_[i] = static_cast<double>(i + 1);
        want_[i] = 1.0 + 4.0 * dwant_[i];
      }
    }
    return;
  }

  // Locate the cell containing x, clamping the extreme markers.
  int cell;
  if (x < heights_[0]) {
    heights_[0] = x;
    cell = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = std::max(heights_[4], x);
    cell = 3;
  } else {
    cell = 0;
    while (cell < 3 && x >= heights_[cell + 1]) ++cell;
  }

  for (int i = cell + 1; i < 5; ++i) pos_[i] += 1.0;
  for (int i = 0; i < 5; ++i) want_[i] += dwant_[i];
  ++n_;

  // Nudge the three interior markers toward their desired positions.
  for (int i = 1; i <= 3; ++i) {
    const double gap = want_[i] - pos_[i];
    if ((gap >= 1.0 && pos_[i + 1] - pos_[i] > 1.0) ||
        (gap <= -1.0 && pos_[i - 1] - pos_[i] < -1.0)) {
      const int d = gap >= 1.0 ? 1 : -1;
      double candidate = parabolic(i, static_cast<double>(d));
      if (heights_[i - 1] < candidate && candidate < heights_[i + 1]) {
        heights_[i] = candidate;
      } else {
        heights_[i] = linear(i, d);  // parabola left the bracket: fall back
      }
      pos_[i] += static_cast<double>(d);
    }
  }
}

void P2Quantile::merge(const P2Quantile& other) {
  HAX_REQUIRE(p_ == other.p_, "P2Quantile::merge across different quantiles");
  if (other.n_ == 0) return;

  // Under five observations a P² holds raw samples — replay them exactly.
  if (other.n_ < 5) {
    for (std::size_t i = 0; i < other.n_; ++i) add(other.heights_[i]);
    return;
  }
  if (n_ < 5) {
    // Swap roles so the raw side is the one replayed (merge is then exact
    // in this direction too: other's state is adopted wholesale).
    P2Quantile merged = other;
    for (std::size_t i = 0; i < n_; ++i) merged.add(heights_[i]);
    *this = merged;
    return;
  }

  // Both sides are estimators: reconstruct other's empirical distribution
  // from its marker curve. Marker i sits at height q_i and cumulative
  // position (n_i - 1) / (n - 1); sampling the piecewise-linear inverse
  // CDF at the m mid-quantiles (k + 0.5) / m yields m synthetic samples
  // whose order statistics approximate the originals, so replaying them
  // keeps the observation weight (count) of both streams correct for any
  // later merge.
  const std::size_t m = other.n_;
  const double denom = other.pos_[4] - 1.0;  // == n - 1, >= 4 here
  double cum[5];
  for (int i = 0; i < 5; ++i) cum[i] = (other.pos_[i] - 1.0) / denom;
  for (std::size_t k = 0; k < m; ++k) {
    const double q = (static_cast<double>(k) + 0.5) / static_cast<double>(m);
    int cell = 0;
    while (cell < 3 && q > cum[cell + 1]) ++cell;
    const double span = cum[cell + 1] - cum[cell];
    const double frac = span > 0.0 ? (q - cum[cell]) / span : 0.0;
    add(other.heights_[cell] +
        frac * (other.heights_[cell + 1] - other.heights_[cell]));
  }
}

double P2Quantile::value() const noexcept {
  if (n_ == 0) return std::numeric_limits<double>::quiet_NaN();
  if (n_ >= 5) return heights_[2];
  // Exact order statistic over the few observations seen so far.
  double sorted[5];
  std::copy(heights_, heights_ + n_, sorted);
  std::sort(sorted, sorted + n_);
  const double rank = p_ * static_cast<double>(n_ - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, n_ - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

void Accumulator::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Accumulator::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Accumulator::stdev() const noexcept { return std::sqrt(variance()); }

}  // namespace hax::stats
