#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.h"

namespace hax::stats {

double sum(std::span<const double> xs) noexcept {
  double s = 0.0;
  for (double x : xs) s += x;
  return s;
}

double mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  return sum(xs) / static_cast<double>(xs.size());
}

double stdev(std::span<const double> xs) noexcept {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double min(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  return *std::min_element(xs.begin(), xs.end());
}

double max(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  return *std::max_element(xs.begin(), xs.end());
}

double percentile(std::span<const double> xs, double p) {
  HAX_REQUIRE(!xs.empty(), "percentile of empty sample");
  HAX_REQUIRE(p >= 0.0 && p <= 100.0, "percentile p out of [0,100]");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double geomean(std::span<const double> xs) {
  HAX_REQUIRE(!xs.empty(), "geomean of empty sample");
  double acc = 0.0;
  for (double x : xs) {
    HAX_REQUIRE(x > 0.0, "geomean requires positive samples");
    acc += std::log(x);
  }
  return std::exp(acc / static_cast<double>(xs.size()));
}

void Accumulator::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Accumulator::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Accumulator::stdev() const noexcept { return std::sqrt(variance()); }

}  // namespace hax::stats
