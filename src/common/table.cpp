#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/error.h"

namespace hax {

void TextTable::header(std::vector<std::string> cells) {
  HAX_REQUIRE(!cells.empty(), "header must have at least one column");
  header_ = std::move(cells);
}

void TextTable::row(std::vector<std::string> cells) {
  HAX_REQUIRE(!header_.empty(), "set header before adding rows");
  HAX_REQUIRE(cells.size() <= header_.size(), "row has more cells than header columns");
  cells.resize(header_.size());
  rows_.push_back(Row{std::move(cells), false});
}

void TextTable::separator() { rows_.push_back(Row{{}, true}); }

std::string TextTable::render() const {
  HAX_REQUIRE(!header_.empty(), "render requires a header");
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const Row& r : rows_) {
    if (r.is_separator) continue;
    for (std::size_t c = 0; c < r.cells.size(); ++c) {
      widths[c] = std::max(widths[c], r.cells[c].size());
    }
  }

  const auto render_line = [&](const std::vector<std::string>& cells) {
    std::ostringstream os;
    os << '|';
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      os << ' ' << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    os << '\n';
    return os.str();
  };
  const auto render_sep = [&] {
    std::ostringstream os;
    os << '+';
    for (std::size_t w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
    return os.str();
  };

  std::ostringstream out;
  out << render_sep() << render_line(header_) << render_sep();
  for (const Row& r : rows_) {
    out << (r.is_separator ? render_sep() : render_line(r.cells));
  }
  out << render_sep();
  return out.str();
}

std::string fmt(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string fmt_pct(double ratio, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", digits, ratio * 100.0);
  return buf;
}

}  // namespace hax
