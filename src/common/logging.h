#pragma once

/// \file logging.h
/// Minimal leveled logger. Thread-safe (a single global mutex serializes
/// writes); defaults to `Warn` so library code is silent unless asked.

#include <sstream>
#include <string>

namespace hax::log {

enum class Level : int { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

/// Sets the global threshold; messages below it are dropped.
void set_level(Level level) noexcept;
[[nodiscard]] Level level() noexcept;

/// Emits one line to stderr with a level prefix. Prefer the HAX_LOG macro.
void write(Level level, const std::string& message);

[[nodiscard]] const char* level_name(Level level) noexcept;

}  // namespace hax::log

/// Streams `expr` into the logger when `lvl` passes the threshold; the
/// stream expression is not evaluated otherwise.
#define HAX_LOG(lvl, expr)                              \
  do {                                                  \
    if (static_cast<int>(lvl) >= static_cast<int>(::hax::log::level())) { \
      std::ostringstream hax_log_oss_;                  \
      hax_log_oss_ << expr;                             \
      ::hax::log::write(lvl, hax_log_oss_.str());       \
    }                                                   \
  } while (false)

#define HAX_LOG_DEBUG(expr) HAX_LOG(::hax::log::Level::Debug, expr)
#define HAX_LOG_INFO(expr) HAX_LOG(::hax::log::Level::Info, expr)
#define HAX_LOG_WARN(expr) HAX_LOG(::hax::log::Level::Warn, expr)
#define HAX_LOG_ERROR(expr) HAX_LOG(::hax::log::Level::Error, expr)
