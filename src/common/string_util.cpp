#include "common/string_util.h"

#include <algorithm>
#include <cctype>

namespace hax::str {

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

bool starts_with(std::string_view s, std::string_view prefix) noexcept {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) noexcept {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

}  // namespace hax::str
