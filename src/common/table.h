#pragma once

/// \file table.h
/// ASCII table rendering for benchmark output. Benchmarks reproduce the
/// paper's tables; this keeps their stdout readable and diff-able.

#include <string>
#include <vector>

namespace hax {

/// Accumulates rows of string cells and renders an aligned ASCII table.
class TextTable {
 public:
  /// Sets the header row. Column count is fixed by the header.
  void header(std::vector<std::string> cells);

  /// Appends a data row. Rows shorter than the header are padded with
  /// empty cells; longer rows are a precondition violation.
  void row(std::vector<std::string> cells);

  /// Inserts a horizontal separator at the current position.
  void separator();

  /// Renders the table with `|`-separated, space-padded columns.
  [[nodiscard]] std::string render() const;

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  struct Row {
    std::vector<std::string> cells;
    bool is_separator = false;
  };

  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

/// Formats a double with `digits` decimal places.
[[nodiscard]] std::string fmt(double value, int digits = 2);

/// Formats a ratio as a percentage string, e.g. 0.23 -> "23%".
[[nodiscard]] std::string fmt_pct(double ratio, int digits = 0);

}  // namespace hax
