#include "common/csv.h"

#include <stdexcept>

namespace hax {

CsvWriter::CsvWriter(const std::string& path) : out_(path, std::ios::trunc) {
  if (!out_) {
    throw std::runtime_error("CsvWriter: cannot open '" + path + "' for writing");
  }
}

std::string CsvWriter::escape(const std::string& cell) {
  const bool needs_quotes =
      cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return cell;
  std::string quoted = "\"";
  for (char c : cell) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

void CsvWriter::row(std::initializer_list<std::string> cells) {
  row(std::vector<std::string>(cells));
}

}  // namespace hax
