#pragma once

/// \file annotated.h
/// Clang Thread Safety Analysis support: capability macros and the
/// annotated synchronization primitives the whole repo is required to use
/// (hax_lint's `raw-mutex` rule forbids `std::mutex` & friends anywhere
/// else in src/). Under Clang with `-Wthread-safety` every `HAX_GUARDED_BY`
/// / `HAX_REQUIRES` contract in the concurrent core is checked at compile
/// time; under GCC the macros expand to nothing and the wrappers are
/// zero-overhead shims over the std primitives.
///
/// Design notes:
///  - `CondVar` takes the annotated `Mutex` directly (plus an explicit
///    while-loop at the call site instead of a predicate lambda). Clang's
///    analysis cannot see through a predicate callable invoked inside
///    `std::condition_variable::wait`, so guarded reads inside such a
///    lambda would need escape hatches; an explicit loop keeps the reads
///    in the annotated caller's scope where the capability is provably
///    held.
///  - `LockGuard(mu, kAdoptLock)` adopts an already-held mutex (annotated
///    `HAX_REQUIRES`), which is how try-lock call sites stay analyzable:
///        if (!mu_.try_lock()) return;
///        LockGuard lock(mu_, kAdoptLock);
///  - Data published via release/acquire (e.g. FaultPlan's compiled
///    timeline) is intentionally *not* `HAX_GUARDED_BY`: readers touch it
///    without the mutex by design. Such fields carry a comment naming the
///    publication protocol instead.
///  - Under `HAX_RANK_CHECKS` (defined automatically in HAX_SANITIZE
///    builds) every Mutex may carry a rank + name from the canonical
///    assignment in src/common/lock_ranks.h, and lock()/try_lock()/
///    unlock() maintain a thread-local held-rank stack: acquiring a
///    ranked mutex while holding one of equal or higher rank aborts with
///    both names. LockGuard and CondVar inherit the checking through
///    Mutex, so every acquisition path in the repo is covered. The stack
///    is per-thread, so a mutex released inside CondVar::wait cannot
///    corrupt another thread's view. `hax_analyze --emit-ranks` derives
///    the ranks from the static acquisition graph — the two layers share
///    tools/analyze/lock_ranks.inc and the hax_analyze CTest gate fails
///    on drift.

#include <chrono>
#include <condition_variable>
#include <mutex>

#ifdef HAX_RANK_CHECKS
#include <cstdio>
#include <cstdlib>
#endif

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define HAX_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef HAX_THREAD_ANNOTATION
#define HAX_THREAD_ANNOTATION(x)  // no-op off Clang
#endif

/// Type declares a capability (e.g. "mutex") the analysis tracks.
#define HAX_CAPABILITY(x) HAX_THREAD_ANNOTATION(capability(x))
/// RAII type that acquires a capability in its constructor and releases it
/// in its destructor.
#define HAX_SCOPED_CAPABILITY HAX_THREAD_ANNOTATION(scoped_lockable)
/// Field may only be touched while holding `x`.
#define HAX_GUARDED_BY(x) HAX_THREAD_ANNOTATION(guarded_by(x))
/// Pointer field whose *pointee* is guarded by `x`.
#define HAX_PT_GUARDED_BY(x) HAX_THREAD_ANNOTATION(pt_guarded_by(x))
/// Function requires the listed capabilities to be held on entry (and
/// still held on exit).
#define HAX_REQUIRES(...) HAX_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
/// Function acquires the listed capabilities (held on exit, not entry).
#define HAX_ACQUIRE(...) HAX_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
/// Function releases the listed capabilities.
#define HAX_RELEASE(...) HAX_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
/// Function acquires the capability iff it returns `ret`.
#define HAX_TRY_ACQUIRE(ret, ...) \
  HAX_THREAD_ANNOTATION(try_acquire_capability(ret, __VA_ARGS__))
/// Function must NOT be called with the listed capabilities held
/// (self-deadlock guard on public methods of internally-locked types).
#define HAX_EXCLUDES(...) HAX_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// Function returns a reference to the named capability.
#define HAX_RETURN_CAPABILITY(x) HAX_THREAD_ANNOTATION(lock_returned(x))
/// Escape hatch. Every use MUST carry a comment justifying why the
/// analysis cannot see the invariant (check_thread_safety's acceptance
/// bar; hax_lint does not police this, reviewers do).
#define HAX_NO_THREAD_SAFETY_ANALYSIS \
  HAX_THREAD_ANNOTATION(no_thread_safety_analysis)
/// Runtime-checked assertion that the capability is held (for call chains
/// the analysis cannot follow).
#define HAX_ASSERT_CAPABILITY(x) HAX_THREAD_ANNOTATION(assert_capability(x))

namespace hax {

class CondVar;

#ifdef HAX_RANK_CHECKS
namespace detail {

/// Per-thread stack of held ranked locks. Fixed capacity: the deepest
/// real nesting in the repo is 3; 64 leaves room while keeping the hot
/// path allocation-free (TSan instruments allocations heavily).
struct RankStack {
  static constexpr int kMax = 64;
  struct Entry {
    const void* mu;
    int rank;
    const char* name;
  };
  Entry held[kMax];
  int depth = 0;
};

inline RankStack& rank_stack() noexcept {
  thread_local RankStack stack;
  return stack;
}

/// Called *before* blocking on the lock (aborting after would deadlock
/// first). Rank 0 = unranked: recorded for completeness but never checked
/// (test/bench-local mutexes outside the canonical assignment).
inline void rank_check_acquire(int rank, const char* name) noexcept {
  if (rank <= 0) return;
  const RankStack& s = rank_stack();
  for (int i = 0; i < s.depth; ++i) {
    if (s.held[i].rank > 0 && rank <= s.held[i].rank) {
      std::fprintf(stderr,
                   "hax lock-rank violation: acquiring %s (rank %d) while "
                   "holding %s (rank %d) — out-of-order acquisition, see "
                   "tools/analyze/lock_ranks.inc\n",
                   name, rank, s.held[i].name, s.held[i].rank);
      std::abort();
    }
  }
}

inline void rank_push(const void* mu, int rank, const char* name) noexcept {
  RankStack& s = rank_stack();
  if (s.depth >= RankStack::kMax) {
    std::fprintf(stderr, "hax lock-rank stack overflow acquiring %s\n", name);
    std::abort();
  }
  s.held[s.depth++] = {mu, rank, name};
}

inline void rank_pop(const void* mu) noexcept {
  RankStack& s = rank_stack();
  for (int i = s.depth - 1; i >= 0; --i) {
    if (s.held[i].mu != mu) continue;
    for (int j = i; j + 1 < s.depth; ++j) s.held[j] = s.held[j + 1];
    --s.depth;
    return;
  }
}

}  // namespace detail
#endif  // HAX_RANK_CHECKS

/// Annotated exclusive mutex. Same semantics as std::mutex; the capability
/// annotations make `-Wthread-safety` enforce the HAX_GUARDED_BY contracts
/// of everything it protects. The ranked constructor feeds the runtime
/// lock-order validator in HAX_RANK_CHECKS builds and costs nothing
/// otherwise (use the HAX_MUTEX_RANK macro from lock_ranks.h, never a
/// literal rank).
class HAX_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
#ifdef HAX_RANK_CHECKS
  Mutex(int rank, const char* name) noexcept : rank_(rank), name_(name) {}
#else
  Mutex(int /*rank*/, const char* /*name*/) noexcept {}
#endif
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() HAX_ACQUIRE() {
#ifdef HAX_RANK_CHECKS
    detail::rank_check_acquire(rank_, name_);
#endif
    mu_.lock();
#ifdef HAX_RANK_CHECKS
    detail::rank_push(this, rank_, name_);
#endif
  }
  void unlock() HAX_RELEASE() {
#ifdef HAX_RANK_CHECKS
    detail::rank_pop(this);
#endif
    mu_.unlock();
  }
  [[nodiscard]] bool try_lock() HAX_TRY_ACQUIRE(true) {
    const bool locked = mu_.try_lock();
#ifdef HAX_RANK_CHECKS
    // No pre-check: a failed try_lock cannot deadlock. A successful one
    // still lands on the stack so later blocking acquisitions are
    // validated against it.
    if (locked) detail::rank_push(this, rank_, name_);
#endif
    return locked;
  }

 private:
  friend class CondVar;
  std::mutex mu_;
#ifdef HAX_RANK_CHECKS
  int rank_ = 0;
  const char* name_ = "<unranked>";
#endif
};

/// Tag type for LockGuard's adopting constructor (mirrors std::adopt_lock
/// without pulling the unannotated std lock types into call sites).
struct AdoptLockT {
  explicit AdoptLockT() = default;
};
inline constexpr AdoptLockT kAdoptLock{};

/// Annotated RAII guard over Mutex (the repo's std::lock_guard /
/// std::unique_lock replacement — CondVar re-acquires before returning
/// from wait, so one guard type covers both uses).
class HAX_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& mu) HAX_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  /// Adopts a mutex the caller already holds (e.g. via try_lock).
  LockGuard(Mutex& mu, AdoptLockT) HAX_REQUIRES(mu) : mu_(mu) {}
  ~LockGuard() HAX_RELEASE() { mu_.unlock(); }

  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& mu_;
};

/// Annotated condition variable. Waits take the Mutex itself and require
/// it held; call sites supply the classic `while (!predicate) wait(...)`
/// loop so every guarded read stays inside the annotated critical section
/// (see the file comment for why predicate lambdas are avoided).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  /// Atomically releases `mu`, blocks until notified (or spuriously
  /// woken), and re-acquires `mu` before returning.
  void wait(Mutex& mu) HAX_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // the caller's guard keeps ownership
  }

  /// As wait(), but also returns (false) once `deadline` passes.
  template <class Clock, class Duration>
  bool wait_until(Mutex& mu, const std::chrono::time_point<Clock, Duration>& deadline)
      HAX_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_until(lock, deadline);
    lock.release();
    return status == std::cv_status::no_timeout;
  }

 private:
  std::condition_variable cv_;
};

}  // namespace hax
