#pragma once

/// \file annotated.h
/// Clang Thread Safety Analysis support: capability macros and the
/// annotated synchronization primitives the whole repo is required to use
/// (hax_lint's `raw-mutex` rule forbids `std::mutex` & friends anywhere
/// else in src/). Under Clang with `-Wthread-safety` every `HAX_GUARDED_BY`
/// / `HAX_REQUIRES` contract in the concurrent core is checked at compile
/// time; under GCC the macros expand to nothing and the wrappers are
/// zero-overhead shims over the std primitives.
///
/// Design notes:
///  - `CondVar` takes the annotated `Mutex` directly (plus an explicit
///    while-loop at the call site instead of a predicate lambda). Clang's
///    analysis cannot see through a predicate callable invoked inside
///    `std::condition_variable::wait`, so guarded reads inside such a
///    lambda would need escape hatches; an explicit loop keeps the reads
///    in the annotated caller's scope where the capability is provably
///    held.
///  - `LockGuard(mu, kAdoptLock)` adopts an already-held mutex (annotated
///    `HAX_REQUIRES`), which is how try-lock call sites stay analyzable:
///        if (!mu_.try_lock()) return;
///        LockGuard lock(mu_, kAdoptLock);
///  - Data published via release/acquire (e.g. FaultPlan's compiled
///    timeline) is intentionally *not* `HAX_GUARDED_BY`: readers touch it
///    without the mutex by design. Such fields carry a comment naming the
///    publication protocol instead.

#include <chrono>
#include <condition_variable>
#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define HAX_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef HAX_THREAD_ANNOTATION
#define HAX_THREAD_ANNOTATION(x)  // no-op off Clang
#endif

/// Type declares a capability (e.g. "mutex") the analysis tracks.
#define HAX_CAPABILITY(x) HAX_THREAD_ANNOTATION(capability(x))
/// RAII type that acquires a capability in its constructor and releases it
/// in its destructor.
#define HAX_SCOPED_CAPABILITY HAX_THREAD_ANNOTATION(scoped_lockable)
/// Field may only be touched while holding `x`.
#define HAX_GUARDED_BY(x) HAX_THREAD_ANNOTATION(guarded_by(x))
/// Pointer field whose *pointee* is guarded by `x`.
#define HAX_PT_GUARDED_BY(x) HAX_THREAD_ANNOTATION(pt_guarded_by(x))
/// Function requires the listed capabilities to be held on entry (and
/// still held on exit).
#define HAX_REQUIRES(...) HAX_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
/// Function acquires the listed capabilities (held on exit, not entry).
#define HAX_ACQUIRE(...) HAX_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
/// Function releases the listed capabilities.
#define HAX_RELEASE(...) HAX_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
/// Function acquires the capability iff it returns `ret`.
#define HAX_TRY_ACQUIRE(ret, ...) \
  HAX_THREAD_ANNOTATION(try_acquire_capability(ret, __VA_ARGS__))
/// Function must NOT be called with the listed capabilities held
/// (self-deadlock guard on public methods of internally-locked types).
#define HAX_EXCLUDES(...) HAX_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// Function returns a reference to the named capability.
#define HAX_RETURN_CAPABILITY(x) HAX_THREAD_ANNOTATION(lock_returned(x))
/// Escape hatch. Every use MUST carry a comment justifying why the
/// analysis cannot see the invariant (check_thread_safety's acceptance
/// bar; hax_lint does not police this, reviewers do).
#define HAX_NO_THREAD_SAFETY_ANALYSIS \
  HAX_THREAD_ANNOTATION(no_thread_safety_analysis)
/// Runtime-checked assertion that the capability is held (for call chains
/// the analysis cannot follow).
#define HAX_ASSERT_CAPABILITY(x) HAX_THREAD_ANNOTATION(assert_capability(x))

namespace hax {

class CondVar;

/// Annotated exclusive mutex. Same semantics as std::mutex; the capability
/// annotations make `-Wthread-safety` enforce the HAX_GUARDED_BY contracts
/// of everything it protects.
class HAX_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() HAX_ACQUIRE() { mu_.lock(); }
  void unlock() HAX_RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool try_lock() HAX_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// Tag type for LockGuard's adopting constructor (mirrors std::adopt_lock
/// without pulling the unannotated std lock types into call sites).
struct AdoptLockT {
  explicit AdoptLockT() = default;
};
inline constexpr AdoptLockT kAdoptLock{};

/// Annotated RAII guard over Mutex (the repo's std::lock_guard /
/// std::unique_lock replacement — CondVar re-acquires before returning
/// from wait, so one guard type covers both uses).
class HAX_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& mu) HAX_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  /// Adopts a mutex the caller already holds (e.g. via try_lock).
  LockGuard(Mutex& mu, AdoptLockT) HAX_REQUIRES(mu) : mu_(mu) {}
  ~LockGuard() HAX_RELEASE() { mu_.unlock(); }

  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& mu_;
};

/// Annotated condition variable. Waits take the Mutex itself and require
/// it held; call sites supply the classic `while (!predicate) wait(...)`
/// loop so every guarded read stays inside the annotated critical section
/// (see the file comment for why predicate lambdas are avoided).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  /// Atomically releases `mu`, blocks until notified (or spuriously
  /// woken), and re-acquires `mu` before returning.
  void wait(Mutex& mu) HAX_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // the caller's guard keeps ownership
  }

  /// As wait(), but also returns (false) once `deadline` passes.
  template <class Clock, class Duration>
  bool wait_until(Mutex& mu, const std::chrono::time_point<Clock, Duration>& deadline)
      HAX_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_until(lock, deadline);
    lock.release();
    return status == std::cv_status::no_timeout;
  }

 private:
  std::condition_variable cv_;
};

}  // namespace hax
