#pragma once

/// \file thread_pool.h
/// Minimal fixed-size worker pool for host-side parallelism: solver
/// subtree search, per-generation fitness evaluation, and any future
/// embarrassingly parallel sweep. Tasks are plain std::function<void()>
/// values consumed FIFO by a fixed set of workers; `parallel_for` layers a
/// dynamically scheduled index loop on top (work items are claimed with an
/// atomic counter, so unevenly sized iterations balance automatically).
///
/// The pool is intentionally dumb — no futures, no priorities, no work
/// stealing — because every current use is "fan out N independent chunks,
/// wait for all of them". Exceptions thrown by a parallel_for body are
/// captured and rethrown on the calling thread (first one wins).

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/annotated.h"
#include "common/lock_ranks.h"

namespace hax {

/// Resolves a user-facing `threads` knob: values >= 1 are taken literally,
/// 0 or negative mean "one worker per hardware thread" (at least 1).
[[nodiscard]] int resolve_thread_count(int requested) noexcept;

class ThreadPool {
 public:
  /// Spawns `threads` workers (resolved via resolve_thread_count).
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int thread_count() const noexcept {
    return static_cast<int>(workers_.size());
  }

  /// Enqueues a task. Tasks must not throw (use parallel_for for bodies
  /// that may throw) — the contract is enforced: an exception escaping a
  /// submitted task aborts the process with a diagnostic rather than
  /// unwinding through worker_loop into std::terminate's opaque message.
  void submit(std::function<void()> task) HAX_EXCLUDES(mutex_);

  /// Blocks until the queue is empty and no task is executing.
  void wait_idle() HAX_EXCLUDES(mutex_);

 private:
  void worker_loop() HAX_EXCLUDES(mutex_);

  std::vector<std::thread> workers_;  ///< owned by the ctor/dtor thread only
  Mutex mutex_{HAX_MUTEX_RANK(ThreadPool_mutex_)};
  std::deque<std::function<void()>> queue_ HAX_GUARDED_BY(mutex_);
  CondVar task_cv_;  ///< signals workers: work or shutdown
  CondVar idle_cv_;  ///< signals wait_idle: fully drained
  std::size_t in_flight_ HAX_GUARDED_BY(mutex_) = 0;  ///< tasks executing
  bool stopping_ HAX_GUARDED_BY(mutex_) = false;
};

/// Runs fn(i) for every i in [0, count) across the pool and blocks until
/// all iterations finish. Iterations are claimed dynamically, so long and
/// short items mix freely. If any iteration throws, the first captured
/// exception is rethrown here after the loop drains.
void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& fn);

}  // namespace hax
