#pragma once

/// \file types.h
/// Fundamental scalar types and unit conventions used across the library.
///
/// Conventions:
///  - Time is carried in milliseconds (`TimeMs`) everywhere; the simulator,
///    profiler and scheduler all agree on this unit.
///  - Memory traffic is carried in bytes (`Bytes`), bandwidth in GB/s
///    (`GBps`, 1e9 bytes per second).
///  - Compute work is carried in FLOPs (`Flops`), throughput in GFLOP/s.

#include <cstdint>
#include <cstddef>

namespace hax {

/// Time duration or timestamp in milliseconds.
using TimeMs = double;

/// A byte count (tensor sizes, traffic volumes).
using Bytes = std::int64_t;

/// Floating point operation count.
using Flops = std::int64_t;

/// Bandwidth in gigabytes per second (1e9 bytes / s).
using GBps = double;

/// Compute throughput in GFLOP/s.
using GFlopsPerSec = double;

/// Converts a traffic volume moved over a duration into bandwidth.
/// Returns 0 for non-positive durations.
[[nodiscard]] constexpr GBps bytes_over_ms(Bytes bytes, TimeMs ms) noexcept {
  if (ms <= 0.0) return 0.0;
  // bytes / (ms * 1e-3 s) / 1e9 == bytes / ms * 1e-6
  return static_cast<double>(bytes) / ms * 1e-6;
}

/// Time (ms) to move `bytes` at `gbps`. Returns 0 when bandwidth is
/// non-positive (callers treat that as "free").
[[nodiscard]] constexpr TimeMs ms_for_bytes(Bytes bytes, GBps gbps) noexcept {
  if (gbps <= 0.0) return 0.0;
  return static_cast<double>(bytes) / gbps * 1e-6;
}

/// Time (ms) to execute `flops` at `gflops` GFLOP/s.
[[nodiscard]] constexpr TimeMs ms_for_flops(Flops flops, GFlopsPerSec gflops) noexcept {
  if (gflops <= 0.0) return 0.0;
  return static_cast<double>(flops) / gflops * 1e-6;
}

}  // namespace hax
