#include "common/json.h"

#include <cmath>
#include <cstdio>

#include "common/error.h"

namespace hax::json {

bool Value::as_bool() const {
  HAX_REQUIRE(is_bool(), "JSON value is not a bool");
  return std::get<bool>(data_);
}

double Value::as_number() const {
  HAX_REQUIRE(is_number(), "JSON value is not a number");
  return std::get<double>(data_);
}

std::int64_t Value::as_int() const { return std::llround(as_number()); }

const std::string& Value::as_string() const {
  HAX_REQUIRE(is_string(), "JSON value is not a string");
  return std::get<std::string>(data_);
}

const Array& Value::as_array() const {
  HAX_REQUIRE(is_array(), "JSON value is not an array");
  return std::get<Array>(data_);
}

const Object& Value::as_object() const {
  HAX_REQUIRE(is_object(), "JSON value is not an object");
  return std::get<Object>(data_);
}

Array& Value::as_array() {
  HAX_REQUIRE(is_array(), "JSON value is not an array");
  return std::get<Array>(data_);
}

Object& Value::as_object() {
  HAX_REQUIRE(is_object(), "JSON value is not an object");
  return std::get<Object>(data_);
}

const Value& Value::at(const std::string& key) const {
  const Object& obj = as_object();
  const auto it = obj.find(key);
  HAX_REQUIRE(it != obj.end(), "missing JSON key: " + key);
  return it->second;
}

bool Value::contains(const std::string& key) const noexcept {
  return is_object() && std::get<Object>(data_).count(key) > 0;
}

std::string escape(std::string_view s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

namespace {

void append_number(std::string& out, double d) {
  HAX_REQUIRE(std::isfinite(d), "JSON cannot represent non-finite numbers");
  if (d == std::floor(d) && std::abs(d) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(d));
    out += buf;
  } else {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", d);
    out += buf;
  }
}

void newline_indent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent * depth), ' ');
}

}  // namespace

void Value::dump_to(std::string& out, int indent, int depth) const {
  if (is_null()) {
    out += "null";
  } else if (is_bool()) {
    out += std::get<bool>(data_) ? "true" : "false";
  } else if (is_number()) {
    append_number(out, std::get<double>(data_));
  } else if (is_string()) {
    out += escape(std::get<std::string>(data_));
  } else if (is_array()) {
    const Array& arr = std::get<Array>(data_);
    if (arr.empty()) {
      out += "[]";
      return;
    }
    out += '[';
    for (std::size_t i = 0; i < arr.size(); ++i) {
      if (i > 0) out += ',';
      newline_indent(out, indent, depth + 1);
      arr[i].dump_to(out, indent, depth + 1);
    }
    newline_indent(out, indent, depth);
    out += ']';
  } else {
    const Object& obj = std::get<Object>(data_);
    if (obj.empty()) {
      out += "{}";
      return;
    }
    out += '{';
    bool first = true;
    for (const auto& [key, value] : obj) {
      if (!first) out += ',';
      first = false;
      newline_indent(out, indent, depth + 1);
      out += escape(key);
      out += indent > 0 ? ": " : ":";
      value.dump_to(out, indent, depth + 1);
    }
    newline_indent(out, indent, depth);
    out += '}';
  }
}

std::string Value::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

// ------------------------------------------------------------- parsing --

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    HAX_REQUIRE(pos_ == text_.size(), error("trailing characters"));
    return v;
  }

 private:
  [[nodiscard]] std::string error(const std::string& what) const {
    return "JSON parse error at offset " + std::to_string(pos_) + ": " + what;
  }

  void skip_ws() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                                   text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    HAX_REQUIRE(pos_ < text_.size(), error("unexpected end of input"));
    return text_[pos_];
  }

  void expect(char c) {
    HAX_REQUIRE(peek() == c, error(std::string("expected '") + c + "'"));
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Value parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value(parse_string());
      case 't':
        HAX_REQUIRE(consume_literal("true"), error("bad literal"));
        return Value(true);
      case 'f':
        HAX_REQUIRE(consume_literal("false"), error("bad literal"));
        return Value(false);
      case 'n':
        HAX_REQUIRE(consume_literal("null"), error("bad literal"));
        return Value(nullptr);
      default: return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Object obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Value(std::move(obj));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.emplace(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return Value(std::move(obj));
    }
  }

  Value parse_array() {
    expect('[');
    Array arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Value(std::move(arr));
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return Value(std::move(arr));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      HAX_REQUIRE(pos_ < text_.size(), error("unterminated string"));
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      HAX_REQUIRE(pos_ < text_.size(), error("dangling escape"));
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          HAX_REQUIRE(pos_ + 4 <= text_.size(), error("bad \\u escape"));
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              HAX_REQUIRE(false, error("bad hex digit in \\u escape"));
            }
          }
          // Basic-multilingual-plane UTF-8 encoding (no surrogate pairs —
          // our artifact formats are ASCII).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: HAX_REQUIRE(false, error("unknown escape"));
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    HAX_REQUIRE(pos_ > start + (text_[start] == '-' ? 1u : 0u), error("bad number"));
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    HAX_REQUIRE(end == token.c_str() + token.size(), error("bad number: " + token));
    return Value(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace hax::json
