#pragma once

/// \file string_util.h
/// Small string helpers shared by the model zoo and benchmark output.

#include <string>
#include <string_view>
#include <vector>

namespace hax::str {

/// Splits on a single-character delimiter; empty fields are preserved.
[[nodiscard]] std::vector<std::string> split(std::string_view s, char delim);

/// Trims ASCII whitespace from both ends.
[[nodiscard]] std::string trim(std::string_view s);

[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix) noexcept;
[[nodiscard]] bool ends_with(std::string_view s, std::string_view suffix) noexcept;

/// Joins elements with a separator.
[[nodiscard]] std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// ASCII lower-case copy.
[[nodiscard]] std::string to_lower(std::string_view s);

}  // namespace hax::str
