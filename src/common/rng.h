#pragma once

/// \file rng.h
/// Deterministic, seedable PRNG (xoshiro256**). The simulator and benchmarks
/// must be reproducible run-to-run, so all randomness flows through this
/// class instead of std::random_device.

#include <cstdint>

namespace hax {

/// xoshiro256** by Blackman & Vigna, seeded via splitmix64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) noexcept;

  /// Next raw 64-bit value.
  [[nodiscard]] std::uint64_t next() noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept;

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n). Throws PreconditionError when n == 0.
  [[nodiscard]] std::uint64_t uniform_index(std::uint64_t n);

  /// Standard normal via Box-Muller.
  [[nodiscard]] double normal() noexcept;

  /// Normal with given mean and standard deviation.
  [[nodiscard]] double normal(double mean, double stdev) noexcept;

 private:
  std::uint64_t state_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace hax
