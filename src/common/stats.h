#pragma once

/// \file stats.h
/// Small descriptive-statistics helpers used by the profiler, the benchmark
/// harness and tests. All functions take a span of doubles and are pure.

#include <span>
#include <vector>

namespace hax::stats {

[[nodiscard]] double sum(std::span<const double> xs) noexcept;
[[nodiscard]] double mean(std::span<const double> xs) noexcept;

/// Sample standard deviation (n-1 denominator); 0 for fewer than 2 samples.
[[nodiscard]] double stdev(std::span<const double> xs) noexcept;

[[nodiscard]] double min(std::span<const double> xs) noexcept;
[[nodiscard]] double max(std::span<const double> xs) noexcept;

/// Linear-interpolated percentile, `p` in [0, 100]. Copies and sorts.
[[nodiscard]] double percentile(std::span<const double> xs, double p);

/// Geometric mean; requires all elements > 0.
[[nodiscard]] double geomean(std::span<const double> xs);

/// Streaming quantile estimator (Jain & Chlamtac's P² algorithm, CACM
/// 1985): tracks one quantile of an unbounded stream in constant memory —
/// five markers whose heights are adjusted with a piecewise-parabolic
/// interpolation as observations arrive. The serving layer's latency
/// percentiles (p50/p95/p99 per priority class) use one of these per
/// quantile instead of buffering every latency for the sort-based
/// `percentile` above.
///
/// Exact for the first five observations (it sorts them); afterwards an
/// estimate whose error shrinks as the stream grows (tests bound it
/// against the exact percentile on known distributions). Deterministic:
/// the state is a pure function of the observation sequence, so replaying
/// a trace reproduces bit-identical estimates.
class P2Quantile {
 public:
  /// `quantile` in (0, 1) — e.g. 0.5, 0.95, 0.99.
  explicit P2Quantile(double quantile);

  void add(double x) noexcept;

  /// Folds another estimator of the *same* quantile into this one (the
  /// cross-broker latency aggregation of the scheduler fleet: each broker
  /// keeps its own P² digest, the fleet merges them for the aggregate
  /// percentile). Exact when either side has fewer than five
  /// observations (those are still raw samples); otherwise `other`'s
  /// five-marker state is expanded back into `other.count()` synthetic
  /// samples by piecewise-linear interpolation of its marker CDF and
  /// replayed through add(), preserving each side's observation weight.
  /// Accuracy is that of P² itself plus the CDF interpolation — tests
  /// bound it against exact percentiles of the concatenated stream.
  void merge(const P2Quantile& other);

  /// Current estimate; NaN before the first observation. With fewer than
  /// five observations, the exact order statistic of what has been seen.
  [[nodiscard]] double value() const noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double quantile() const noexcept { return p_; }

 private:
  [[nodiscard]] double parabolic(int i, double d) const noexcept;
  [[nodiscard]] double linear(int i, int d) const noexcept;

  double p_;
  std::size_t n_ = 0;       ///< observations seen
  double heights_[5] = {};  ///< marker heights q_i
  double pos_[5] = {};      ///< actual marker positions n_i (1-based)
  double want_[5] = {};     ///< desired marker positions n'_i
  double dwant_[5] = {};    ///< desired-position increments dn'_i
};

/// Streaming accumulator (Welford) for mean/variance without storing samples.
class Accumulator {
 public:
  void add(double x) noexcept;
  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stdev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace hax::stats
