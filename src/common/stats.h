#pragma once

/// \file stats.h
/// Small descriptive-statistics helpers used by the profiler, the benchmark
/// harness and tests. All functions take a span of doubles and are pure.

#include <span>
#include <vector>

namespace hax::stats {

[[nodiscard]] double sum(std::span<const double> xs) noexcept;
[[nodiscard]] double mean(std::span<const double> xs) noexcept;

/// Sample standard deviation (n-1 denominator); 0 for fewer than 2 samples.
[[nodiscard]] double stdev(std::span<const double> xs) noexcept;

[[nodiscard]] double min(std::span<const double> xs) noexcept;
[[nodiscard]] double max(std::span<const double> xs) noexcept;

/// Linear-interpolated percentile, `p` in [0, 100]. Copies and sorts.
[[nodiscard]] double percentile(std::span<const double> xs, double p);

/// Geometric mean; requires all elements > 0.
[[nodiscard]] double geomean(std::span<const double> xs);

/// Streaming accumulator (Welford) for mean/variance without storing samples.
class Accumulator {
 public:
  void add(double x) noexcept;
  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stdev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace hax::stats
