#include "common/epoch.h"

#include "common/error.h"

namespace hax::epoch {

namespace {

/// Per-thread slot cache: a thread claims a slot in a domain on its first
/// ReaderGuard and keeps it until the thread exits (the destructor gives
/// it back). A Domain must therefore outlive every thread that ever
/// pinned it — trivially true for the global domain, and tests join their
/// reader threads before destroying local domains.
struct ThreadSlot {
  Domain* domain = nullptr;
  int slot = -1;
  int depth = 0;
};

struct ThreadSlots {
  static constexpr int kMaxDomains = 8;
  ThreadSlot entries[kMaxDomains];

  ~ThreadSlots();
  [[nodiscard]] ThreadSlot& for_domain(Domain& domain);
};

ThreadSlots& thread_slots() noexcept {
  thread_local ThreadSlots slots;
  return slots;
}

}  // namespace

Domain& global_domain() {
  static Domain domain;
  return domain;
}

Domain::Domain() {
  for (int i = 0; i < kMaxSlots; ++i) {
    slots_[i].store(0, std::memory_order_relaxed);
    slot_owned_[i].store(false, std::memory_order_relaxed);
  }
}

Domain::~Domain() {
  // Contract: no reader may still be pinned. Everything retired is
  // therefore unreachable, regardless of epoch bookkeeping.
  LockGuard lock(limbo_mu_);
  for (const Retired& r : limbo_) r.deleter(r.ptr);
  limbo_.clear();
}

int Domain::claim_slot() {
  for (int i = 0; i < kMaxSlots; ++i) {
    bool expected = false;
    if (slot_owned_[i].compare_exchange_strong(expected, true, std::memory_order_acq_rel)) {
      return i;
    }
  }
  HAX_REQUIRE(false, "epoch::Domain reader-slot exhaustion (> kMaxSlots concurrent threads)");
  return -1;
}

void Domain::release_slot(int slot) noexcept {
  slots_[slot].store(0, std::memory_order_seq_cst);
  slot_owned_[slot].store(false, std::memory_order_release);
}

void Domain::retire(void* ptr, void (*deleter)(void*)) {
  {
    LockGuard lock(limbo_mu_);
    limbo_.push_back({ptr, deleter, epoch_.load(std::memory_order_seq_cst)});
  }
  advance();
}

void Domain::advance() {
  // One advance attempt: E moves from e to e+1 only when every pinned
  // slot shows e. Losing the CAS race to another writer is fine — the
  // epoch moved, which is all we wanted.
  std::uint64_t e = epoch_.load(std::memory_order_seq_cst);
  bool all_current = true;
  for (int i = 0; i < kMaxSlots; ++i) {
    const std::uint64_t pinned = slots_[i].load(std::memory_order_seq_cst);
    if (pinned != 0 && pinned != e) {
      all_current = false;
      break;
    }
  }
  if (all_current) {
    (void)epoch_.compare_exchange_strong(e, e + 1, std::memory_order_seq_cst);
  }

  // Free garbage two epochs behind: no pinned reader can still hold it.
  std::vector<Retired> free_now;
  {
    LockGuard lock(limbo_mu_);
    const std::uint64_t cur = epoch_.load(std::memory_order_seq_cst);
    std::size_t keep = 0;
    for (Retired& r : limbo_) {
      if (r.epoch + 2 <= cur) {
        free_now.push_back(r);
      } else {
        limbo_[keep++] = r;
      }
    }
    limbo_.resize(keep);
  }
  // Deleters run outside limbo_mu_ so reclamation never nests user code
  // under a domain lock.
  for (const Retired& r : free_now) r.deleter(r.ptr);
}

std::size_t Domain::limbo_size() const {
  LockGuard lock(limbo_mu_);
  return limbo_.size();
}

namespace {

ThreadSlots::~ThreadSlots() {
  for (ThreadSlot& e : entries) {
    if (e.domain != nullptr && e.slot >= 0) e.domain->release_slot(e.slot);
  }
}

ThreadSlot& ThreadSlots::for_domain(Domain& domain) {
  for (ThreadSlot& e : entries) {
    if (e.domain == &domain) return e;
  }
  for (ThreadSlot& e : entries) {
    if (e.domain == nullptr) {
      e.domain = &domain;
      e.slot = domain.claim_slot();
      e.depth = 0;
      return e;
    }
  }
  HAX_REQUIRE(false, "epoch: one thread pinned more than kMaxDomains distinct domains");
  return entries[0];
}

}  // namespace

ReaderGuard::ReaderGuard(Domain& domain) {
  ThreadSlot& ts = thread_slots().for_domain(domain);
  depth_ = &ts.depth;
  if ((*depth_)++ > 0) return;  // nested guard: already pinned
  outermost_ = true;
  slot_ = &domain.slots_[ts.slot];
  // Pin loop: publish the epoch we observed, then confirm it is still
  // current. If a writer advanced in between, re-pin at the new epoch —
  // without the confirmation a reader could sit pinned at a stale epoch
  // the advancing writer never saw, unprotected. The store must be
  // seq_cst: it needs StoreLoad ordering against the confirming epoch
  // re-load (and against the advancing writer's slot scan).
  std::uint64_t e = domain.epoch_.load(std::memory_order_seq_cst);
  for (;;) {
    slot_->store(e, std::memory_order_seq_cst);
    const std::uint64_t now = domain.epoch_.load(std::memory_order_seq_cst);
    if (now == e) break;
    e = now;
  }
}

ReaderGuard::~ReaderGuard() {
  --*depth_;
  if (!outermost_) return;
  // Release suffices for the unpin (no full fence): everything this
  // reader did under the pin is sequenced before the store, so a writer
  // whose slot scan observes the 0 also observes the reader done with
  // the snapshot — which is exactly what advance() needs before freeing.
  slot_->store(0, std::memory_order_release);
}

}  // namespace hax::epoch
