#pragma once

/// \file epoch.h
/// Epoch-based reclamation (EBR) for read-mostly data structures — the
/// lock-free read path under the serving fleet's cache-hit fast lane.
/// Writers publish immutable snapshot objects through a single atomic
/// pointer (release store) and retire the previous snapshot here instead
/// of deleting it; readers pin the current epoch, load the pointer
/// (acquire) and use the snapshot without any lock. A retired snapshot is
/// freed only after the global epoch has advanced twice past its retire
/// epoch, which cannot happen while any reader that could still hold the
/// pointer remains pinned.
///
/// This is the classic three-epoch scheme (Fraser 2004): the global epoch
/// E advances from e to e+1 only when every pinned reader slot shows e, so
/// garbage retired at epoch e is unreachable by the time E reaches e+2 —
/// every reader pinned during e has unpinned (its release store is
/// observed by the advancing writer's scan), and readers pinning later
/// re-load the publish pointer and can only see the replacement.
///
/// Scope and limits (deliberately sized for this repo, not a general EBR
/// library):
///  - at most kMaxSlots threads may hold a ReaderGuard concurrently;
///    slots are claimed on a thread's first guard and recycled when the
///    thread exits (HAX_REQUIRE fails on exhaustion rather than blocking).
///  - ReaderGuards nest: only the outermost pin/unpin touches the slot.
///  - retire() is writer-path only (cache publishes, at solve rate) and
///    takes an internal mutex; the reader path is entirely atomic.
///  - the Domain frees all outstanding garbage in its destructor, when no
///    readers may remain by contract.
///
/// Determinism note: reclamation timing is scheduling-dependent, but the
/// *values* readers observe are not — a snapshot pointer is immutable
/// after publish, so virtual-time replays stay bit-identical regardless
/// of when old snapshots are freed.

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/annotated.h"
#include "common/lock_ranks.h"

namespace hax::epoch {

class Domain;

/// Process-wide default domain (function-local static). The serve-layer
/// caches share it so thread slots are claimed once per thread, not once
/// per cache.
[[nodiscard]] Domain& global_domain();

class Domain {
 public:
  static constexpr int kMaxSlots = 256;

  Domain();
  ~Domain();  // frees every outstanding retired object (no readers left)

  Domain(const Domain&) = delete;
  Domain& operator=(const Domain&) = delete;

  /// Hands `ptr` to the domain for deferred deletion via `deleter(ptr)`.
  /// Callable with any lock held except this domain's own internals; the
  /// deleter runs later, inside a retire()/advance() call of some thread.
  void retire(void* ptr, void (*deleter)(void*));

  /// Attempts one epoch advance and frees every retired object that has
  /// become unreachable. Called automatically by retire(); exposed so
  /// tests and long-lived writers can drain garbage explicitly.
  void advance();

  /// Outstanding retired-but-not-yet-freed objects (tests / metrics).
  [[nodiscard]] std::size_t limbo_size() const;

  /// Current global epoch (tests / metrics).
  [[nodiscard]] std::uint64_t current_epoch() const noexcept {
    return epoch_.load(std::memory_order_acquire);
  }

  /// Claims / releases a reader slot for the calling thread. Internal to
  /// the per-thread slot cache in epoch.cpp (public only because that
  /// cache lives in an anonymous namespace); use ReaderGuard instead.
  [[nodiscard]] int claim_slot();
  void release_slot(int slot) noexcept;

 private:
  friend class ReaderGuard;

  struct Retired {
    void* ptr;
    void (*deleter)(void*);
    std::uint64_t epoch;
  };

  /// Global epoch, starts at 1 (0 is the quiescent slot sentinel).
  std::atomic<std::uint64_t> epoch_{1};
  /// slots_[i] = epoch pinned by reader i, or 0 when quiescent. Readers
  /// write their own slot only; writers scan all slots (seq_cst on both
  /// sides gives the advance scan a total order against pins).
  std::atomic<std::uint64_t> slots_[kMaxSlots];
  /// slot_owned_[i]: claimed by some live thread (internally synchronized
  /// via compare-exchange; claim/release only, never read on the pin path).
  std::atomic<bool> slot_owned_[kMaxSlots];

  mutable Mutex limbo_mu_{HAX_MUTEX_RANK(Domain_limbo_mu_)};
  std::vector<Retired> limbo_ HAX_GUARDED_BY(limbo_mu_);
};

/// RAII epoch pin. While any guard is alive on this thread, every pointer
/// loaded (acquire) from an epoch-published atomic stays valid. Cheap:
/// one atomic store + load on entry of the outermost guard, one store on
/// exit.
class ReaderGuard {
 public:
  explicit ReaderGuard(Domain& domain = global_domain());
  ~ReaderGuard();

  ReaderGuard(const ReaderGuard&) = delete;
  ReaderGuard& operator=(const ReaderGuard&) = delete;

 private:
  // Resolved once in the constructor (one TLS slot-table scan per guard,
  // not two); both point into thread-local storage that outlives any
  // guard on this thread.
  std::atomic<std::uint64_t>* slot_ = nullptr;
  int* depth_ = nullptr;
  bool outermost_ = false;
};

}  // namespace hax::epoch
