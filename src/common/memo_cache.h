#pragma once

/// \file memo_cache.h
/// Sharded, lock-striped memoization cache for hot evaluation loops.
///
/// The schedule solvers re-score the same assignment over and over — the
/// GA re-evaluates duplicate genomes every generation, and the portfolio
/// engines revisit each other's incumbents — so a small key→value cache in
/// front of the predictor converts repeated full timeline sweeps into one
/// hash probe. The cache is keyed by a caller-supplied 64-bit hash (see
/// hash_span), holds doubles, and is safe for concurrent lookup/insert
/// from many threads: keys are striped across independently locked shards
/// so workers rarely contend on the same mutex.
///
/// Each shard is a fixed-capacity open-addressing table with a bounded
/// linear probe; when a probe window is full the last slot is overwritten
/// (cheap random-ish replacement — stale entries only cost a recompute).
/// Hit/miss totals are relaxed atomics, cheap enough to leave on.

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>

#include "common/annotated.h"

namespace hax {

/// Mixes a span of small integers into a well-distributed 64-bit key
/// (splitmix64 finalizer over an FNV-style accumulation). Used to key
/// memoized evaluations by flat assignment vector.
[[nodiscard]] std::uint64_t hash_span(std::span<const int> values) noexcept;

struct MemoCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;

  [[nodiscard]] std::uint64_t lookups() const noexcept { return hits + misses; }
  [[nodiscard]] double hit_rate() const noexcept {
    const std::uint64_t total = lookups();
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

class MemoCache {
 public:
  /// `capacity` is the total slot count across all shards (rounded up so
  /// each shard is a power of two); `shards` must be a power of two.
  explicit MemoCache(std::size_t capacity = 1u << 16, std::size_t shards = 16);
  ~MemoCache();  // out-of-line: Shard is an implementation detail

  MemoCache(const MemoCache&) = delete;
  MemoCache& operator=(const MemoCache&) = delete;

  /// Probes for `key`; on a hit stores the value in `value` and returns
  /// true. Counts toward hits/misses.
  [[nodiscard]] bool lookup(std::uint64_t key, double& value) const;

  /// Inserts (or refreshes) `key`. Overwrites a colliding window slot when
  /// the probe window is full.
  void insert(std::uint64_t key, double value);

  /// Drops every entry. Contract: the hit/miss/insertion counters are
  /// explicitly NOT reset — stats() totals are cumulative over the cache's
  /// lifetime, so callers measuring a phase must difference two snapshots
  /// rather than clear() between phases. (Shards are cleared one lock at a
  /// time; concurrent lookups may still hit not-yet-cleared shards.)
  void clear();

  /// Snapshot of the counters. Torn-read tolerance: the three totals are
  /// independent relaxed atomics read one after another, so a snapshot
  /// taken while other threads probe may be mutually inconsistent — e.g.
  /// an insertion counted whose miss is not yet visible, or hits+misses
  /// disagreeing with the lookups another thread has completed. Each
  /// counter is individually exact and monotonic; only cross-counter
  /// identities are approximate while the cache is hot. The stats are
  /// telemetry (hit-rate reporting), so this is tolerated by design —
  /// quiesce the cache first when exact identities matter (tests do).
  [[nodiscard]] MemoCacheStats stats() const noexcept;
  [[nodiscard]] std::size_t shard_count() const noexcept { return shard_count_; }
  [[nodiscard]] std::size_t capacity() const noexcept;

 private:
  struct Shard;

  [[nodiscard]] Shard& shard_for(std::uint64_t key) const noexcept;

  std::size_t shard_count_;
  std::size_t slots_per_shard_;
  std::unique_ptr<Shard[]> shards_;
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> insertions_{0};
};

}  // namespace hax
