#include "common/rng.h"

#include <cmath>
#include <numbers>

#include "common/error.h"

namespace hax {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) noexcept { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& w : state_) w = splitmix64(s);
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  // n == 0 would divide by zero below (UINT64_MAX / n) — there is no
  // uniform draw from an empty range, so reject it at the API boundary.
  HAX_REQUIRE(n > 0, "uniform_index requires a non-empty range");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = n * (UINT64_MAX / n);
  std::uint64_t x = next();
  while (x >= limit) x = next();
  return x % n;
}

double Rng::normal() noexcept {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stdev) noexcept { return mean + stdev * normal(); }

}  // namespace hax
