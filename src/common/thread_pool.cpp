#include "common/thread_pool.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <exception>

#include "common/error.h"

namespace hax {

int resolve_thread_count(int requested) noexcept {
  if (requested >= 1) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

ThreadPool::ThreadPool(int threads) {
  const int count = resolve_thread_count(threads);
  workers_.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    LockGuard lock(mutex_);
    stopping_ = true;
  }
  task_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  HAX_REQUIRE(task != nullptr, "cannot submit an empty task");
  {
    LockGuard lock(mutex_);
    HAX_REQUIRE(!stopping_, "submit on a stopping pool");
    queue_.push_back(std::move(task));
  }
  task_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  LockGuard lock(mutex_);
  while (!(queue_.empty() && in_flight_ == 0)) idle_cv_.wait(mutex_);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      LockGuard lock(mutex_);
      while (!(stopping_ || !queue_.empty())) task_cv_.wait(mutex_);
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    // Enforce the submit() contract ("tasks must not throw"): letting the
    // exception unwind through this noexcept-by-convention loop would end
    // in std::terminate with no context. Abort with a diagnostic instead
    // so the offending task is identifiable from the message.
    try {
      task();
    } catch (const std::exception& e) {
      std::fprintf(stderr,
                   "[hax] fatal: ThreadPool task threw (tasks must not throw; "
                   "use parallel_for for throwing bodies): %s\n",
                   e.what());
      std::abort();
    } catch (...) {
      std::fprintf(stderr,
                   "[hax] fatal: ThreadPool task threw a non-std exception "
                   "(tasks must not throw; use parallel_for)\n");
      std::abort();
    }
    {
      LockGuard lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  HAX_REQUIRE(fn != nullptr, "parallel_for requires a body");

  std::atomic<std::size_t> next{0};
  Mutex error_mutex{HAX_MUTEX_RANK(parallel_for_error_mutex)};
  std::exception_ptr error;  // guarded by error_mutex (local, unannotatable)

  const auto drain = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        fn(i);
      } catch (...) {
        LockGuard lock(error_mutex);
        if (!error) error = std::current_exception();
        // Claim everything left so the loop winds down quickly.
        next.store(count, std::memory_order_relaxed);
      }
    }
  };

  // One drain task per worker — concurrency is exactly the pool size, so
  // thread-scaling measurements reflect the configured worker count. The
  // calling thread only waits.
  const int tasks = pool.thread_count();
  for (int t = 0; t < tasks; ++t) pool.submit(drain);
  pool.wait_idle();

  if (error) std::rethrow_exception(error);
}

}  // namespace hax
