#include "common/thread_pool.h"

#include <atomic>
#include <exception>

#include "common/error.h"

namespace hax {

int resolve_thread_count(int requested) noexcept {
  if (requested >= 1) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

ThreadPool::ThreadPool(int threads) {
  const int count = resolve_thread_count(threads);
  workers_.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  task_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  HAX_REQUIRE(task != nullptr, "cannot submit an empty task");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    HAX_REQUIRE(!stopping_, "submit on a stopping pool");
    queue_.push_back(std::move(task));
  }
  task_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  HAX_REQUIRE(fn != nullptr, "parallel_for requires a body");

  std::atomic<std::size_t> next{0};
  std::mutex error_mutex;
  std::exception_ptr error;

  const auto drain = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) error = std::current_exception();
        // Claim everything left so the loop winds down quickly.
        next.store(count, std::memory_order_relaxed);
      }
    }
  };

  // One drain task per worker — concurrency is exactly the pool size, so
  // thread-scaling measurements reflect the configured worker count. The
  // calling thread only waits.
  const int tasks = pool.thread_count();
  for (int t = 0; t < tasks; ++t) pool.submit(drain);
  pool.wait_idle();

  if (error) std::rethrow_exception(error);
}

}  // namespace hax
