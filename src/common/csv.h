#pragma once

/// \file csv.h
/// A tiny CSV writer used by benchmarks to emit machine-readable result
/// files next to the human-readable tables.

#include <fstream>
#include <initializer_list>
#include <string>
#include <vector>

namespace hax {

/// Writes rows to a CSV file. Values containing commas, quotes or newlines
/// are quoted per RFC 4180. The file is flushed on destruction.
class CsvWriter {
 public:
  /// Opens `path` for writing (truncates). Throws std::runtime_error on
  /// failure to open.
  explicit CsvWriter(const std::string& path);

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;
  CsvWriter(CsvWriter&&) = default;
  CsvWriter& operator=(CsvWriter&&) = default;

  /// Writes one row of string cells.
  void row(const std::vector<std::string>& cells);
  void row(std::initializer_list<std::string> cells);

  /// Escapes one cell per RFC 4180 (exposed for tests).
  [[nodiscard]] static std::string escape(const std::string& cell);

 private:
  std::ofstream out_;
};

}  // namespace hax
