#include "common/logging.h"

#include <atomic>
#include <iostream>

#include "common/annotated.h"
#include "common/lock_ranks.h"

namespace hax::log {
namespace {

std::atomic<int> g_level{static_cast<int>(Level::Warn)};

/// Serializes sink writes. Function-local static so logging from other
/// globals' constructors/destructors is init-order-safe.
Mutex& write_mutex() {
  static Mutex m{HAX_MUTEX_RANK(write_mutex_m)};
  return m;
}

}  // namespace

void set_level(Level level) noexcept { g_level.store(static_cast<int>(level)); }

Level level() noexcept { return static_cast<Level>(g_level.load()); }

const char* level_name(Level level) noexcept {
  switch (level) {
    case Level::Trace: return "TRACE";
    case Level::Debug: return "DEBUG";
    case Level::Info: return "INFO";
    case Level::Warn: return "WARN";
    case Level::Error: return "ERROR";
    case Level::Off: return "OFF";
  }
  return "?";
}

void write(Level lvl, const std::string& message) {
  LockGuard lock(write_mutex());
  std::cerr << "[hax:" << level_name(lvl) << "] " << message << '\n';
}

}  // namespace hax::log
