#include "common/memo_cache.h"

#include <vector>

#include "common/error.h"
#include "common/lock_ranks.h"

namespace hax {
namespace {

/// splitmix64 finalizer: full-avalanche mix of one 64-bit word.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return x;
}

/// Key 0 marks an empty slot; remap a genuinely-zero hash to a fixed
/// non-zero constant (harmless extra collision chance of 2^-64).
constexpr std::uint64_t kEmpty = 0;
constexpr std::uint64_t kZeroAlias = 0x9E3779B97F4A7C15ull;

constexpr std::size_t kProbeWindow = 8;

constexpr std::size_t round_up_pow2(std::size_t v) noexcept {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

std::uint64_t hash_span(std::span<const int> values) noexcept {
  std::uint64_t h = 0xCBF29CE484222325ull ^ (static_cast<std::uint64_t>(values.size()) *
                                             0x100000001B3ull);
  for (const int v : values) {
    h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(v)) + 0x9E3779B97F4A7C15ull;
    h = mix64(h);
  }
  // Guarantee a non-empty sentinel-safe key.
  return h == kEmpty ? kZeroAlias : h;
}

struct alignas(64) MemoCache::Shard {
  Mutex mutex{HAX_MUTEX_RANK(MemoCache_Shard_mutex)};
  std::vector<std::uint64_t> keys HAX_GUARDED_BY(mutex);
  std::vector<double> values HAX_GUARDED_BY(mutex);
};

MemoCache::MemoCache(std::size_t capacity, std::size_t shards) {
  HAX_REQUIRE(shards > 0 && (shards & (shards - 1)) == 0,
              "memo cache shard count must be a power of two");
  shard_count_ = shards;
  slots_per_shard_ = round_up_pow2(std::max<std::size_t>(capacity / shards, kProbeWindow));
  shards_ = std::make_unique<Shard[]>(shard_count_);
  for (std::size_t s = 0; s < shard_count_; ++s) {
    // No concurrent access exists during construction; locking anyway
    // keeps the guarded-by contract analyzable without an escape hatch.
    LockGuard lock(shards_[s].mutex);
    shards_[s].keys.assign(slots_per_shard_, kEmpty);
    shards_[s].values.assign(slots_per_shard_, 0.0);
  }
}

MemoCache::~MemoCache() = default;

MemoCache::Shard& MemoCache::shard_for(std::uint64_t key) const noexcept {
  // Shard selection uses high bits, probe position low bits, so the two
  // indices stay uncorrelated.
  return shards_[(key >> 48) & (shard_count_ - 1)];
}

bool MemoCache::lookup(std::uint64_t key, double& value) const {
  if (key == kEmpty) key = kZeroAlias;
  Shard& shard = shard_for(key);
  const std::size_t mask = slots_per_shard_ - 1;
  {
    LockGuard lock(shard.mutex);
    for (std::size_t i = 0; i < kProbeWindow; ++i) {
      const std::size_t slot = (key + i) & mask;
      if (shard.keys[slot] == key) {
        value = shard.values[slot];
        hits_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
      if (shard.keys[slot] == kEmpty) break;  // never stored past first gap
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void MemoCache::insert(std::uint64_t key, double value) {
  if (key == kEmpty) key = kZeroAlias;
  Shard& shard = shard_for(key);
  const std::size_t mask = slots_per_shard_ - 1;
  LockGuard lock(shard.mutex);
  std::size_t victim = (key + kProbeWindow - 1) & mask;
  for (std::size_t i = 0; i < kProbeWindow; ++i) {
    const std::size_t slot = (key + i) & mask;
    if (shard.keys[slot] == key || shard.keys[slot] == kEmpty) {
      victim = slot;
      break;
    }
  }
  shard.keys[victim] = key;
  shard.values[victim] = value;
  insertions_.fetch_add(1, std::memory_order_relaxed);
}

void MemoCache::clear() {
  for (std::size_t s = 0; s < shard_count_; ++s) {
    Shard& shard = shards_[s];
    LockGuard lock(shard.mutex);
    shard.keys.assign(slots_per_shard_, kEmpty);
    shard.values.assign(slots_per_shard_, 0.0);
  }
}

MemoCacheStats MemoCache::stats() const noexcept {
  MemoCacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.insertions = insertions_.load(std::memory_order_relaxed);
  return s;
}

std::size_t MemoCache::capacity() const noexcept { return shard_count_ * slots_per_shard_; }

}  // namespace hax
