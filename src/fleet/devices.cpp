#include "fleet/devices.h"

#include <utility>

#include "common/error.h"

namespace hax::fleet {

DeviceFleetSim::DeviceFleetSim(std::vector<const sched::Problem*> pool,
                               DeviceFleetOptions options)
    : options_(options), pool_(std::move(pool)), rng_(options.seed) {
  HAX_REQUIRE(!pool_.empty(), "DeviceFleetSim needs at least one base scenario");
  HAX_REQUIRE(options_.devices > 0, "DeviceFleetSim needs at least one device");
  HAX_REQUIRE(options_.drift_buckets > 0, "DeviceFleetSim needs at least one drift bucket");
  HAX_REQUIRE(options_.mean_gap_ms > 0.0, "DeviceFleetSim mean_gap_ms must be > 0");
  HAX_REQUIRE(options_.hot_scenarios <= pool_.size(),
              "DeviceFleetSim hot_scenarios exceeds the pool");

  // Variant problems are cheap: Problem is non-owning (pointers into the
  // pool's backing instances), only epsilon differs. Canonicalization is
  // the expensive part (full profile-table hash) and happens exactly once
  // per variant here, never per request.
  variants_.reserve(pool_.size() * options_.drift_buckets);
  canons_.reserve(pool_.size() * options_.drift_buckets);
  for (const sched::Problem* base : pool_) {
    HAX_REQUIRE(base != nullptr, "DeviceFleetSim pool entry is null");
    base->validate();
    for (std::size_t b = 0; b < options_.drift_buckets; ++b) {
      sched::Problem drifted = *base;
      drifted.epsilon_ms = options_.base_epsilon_ms +
                           static_cast<double>(b) * options_.drift_step_ms;
      canons_.push_back(sched::canonicalize(drifted));
      variants_.push_back(std::move(drifted));
    }
  }

  device_bucket_.resize(options_.devices);
  for (std::uint32_t& bucket : device_bucket_) {
    bucket = static_cast<std::uint32_t>(rng_.uniform_index(options_.drift_buckets));
  }
}

const sched::Problem& DeviceFleetSim::problem(std::size_t variant) const {
  HAX_REQUIRE(variant < variants_.size(), "variant index out of range");
  return variants_[variant];
}

const sched::CanonicalScenario& DeviceFleetSim::canon(std::size_t variant) const {
  HAX_REQUIRE(variant < canons_.size(), "variant index out of range");
  return canons_[variant];
}

std::size_t DeviceFleetSim::device_bucket(std::size_t device) const {
  HAX_REQUIRE(device < device_bucket_.size(), "device index out of range");
  return device_bucket_[device];
}

DeviceRequest DeviceFleetSim::next() {
  DeviceRequest req;
  clock_ += rng_.uniform(0.2 * options_.mean_gap_ms, 1.8 * options_.mean_gap_ms);
  req.arrival_ms = clock_;
  req.device = rng_.uniform_index(options_.devices);
  const bool hot = options_.hot_scenarios > 0 && rng_.uniform() < options_.duplicate_ratio;
  const std::size_t scenario =
      hot ? rng_.uniform_index(options_.hot_scenarios) : rng_.uniform_index(pool_.size());
  req.variant = scenario * options_.drift_buckets + device_bucket_[req.device];
  return req;
}

}  // namespace hax::fleet
