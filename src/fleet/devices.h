#pragma once

/// \file devices.h
/// Device-fleet workload model: many simulated edge devices (SoCs running
/// the paper's concurrent-DNN workloads) pulling schedules from the
/// broker fleet. Devices share a small pool of base scenarios, but each
/// device carries a *calibration drift*: its contention calibration puts
/// it in one of a few drift buckets, modeled as a per-bucket epsilon_ms
/// offset on the base Problem. Epsilon changes the scenario fingerprint
/// but not its shape key (fingerprint.cpp hashes epsilon after forking
/// the shape hasher), which reproduces the real fleet structure: a
/// population's requests collapse onto (scenarios x buckets) distinct
/// cache entries, and a miss in one bucket warm-starts from schedules
/// solved for a neighbouring bucket of the same shape.
///
/// The generator is a deterministic open-loop stream: seeded hax::Rng
/// inter-arrival gaps on a global virtual clock, a seeded device pick per
/// request, and a hot/cold scenario mix. Variant Problems and their
/// CanonicalScenarios are precomputed once at construction — a device
/// stub knows its scenario's fingerprint (it would cache the
/// canonicalization on-device), so the per-request cost in the fleet is a
/// routed cache probe, not a profile-table hash.
///
/// Single-threaded: one driver thread constructs the sim and drains
/// next(); determinism comes from the seed, not from synchronization.

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "sched/fingerprint.h"
#include "sched/problem.h"

namespace hax::fleet {

struct DeviceFleetOptions {
  std::size_t devices = 1000;
  /// Calibration-drift buckets per base scenario. Each device lands in
  /// one bucket; variant count = pool size x drift_buckets.
  std::size_t drift_buckets = 32;
  /// Bucket b gets epsilon_ms = base_epsilon_ms + b * drift_step_ms. The
  /// base is huge (epsilon is a feasibility cap; see problem.h) so drift
  /// perturbs scenario *identity* without perturbing feasibility.
  double base_epsilon_ms = 1.0e6;
  double drift_step_ms = 0.5;
  std::uint64_t seed = 1;
  /// Mean inter-arrival gap of the open-loop trace (virtual ms).
  double mean_gap_ms = 0.05;
  /// Fraction of requests drawn from the first `hot_scenarios` pool
  /// entries; the rest sweep the whole pool uniformly.
  double duplicate_ratio = 0.0;
  std::size_t hot_scenarios = 1;
};

/// One generated request: which device asked, which precomputed variant
/// (scenario x bucket) it asked for, and when.
struct DeviceRequest {
  std::size_t device = 0;
  std::size_t variant = 0;
  TimeMs arrival_ms = 0.0;
};

class DeviceFleetSim {
 public:
  /// `pool` are the base scenarios (borrowed; must outlive the sim).
  DeviceFleetSim(std::vector<const sched::Problem*> pool, DeviceFleetOptions options);

  DeviceFleetSim(const DeviceFleetSim&) = delete;
  DeviceFleetSim& operator=(const DeviceFleetSim&) = delete;

  [[nodiscard]] std::size_t device_count() const noexcept { return options_.devices; }
  [[nodiscard]] std::size_t variant_count() const noexcept { return variants_.size(); }

  /// The drifted Problem / its precomputed canonicalization for a variant
  /// index (as produced by next()). Stable addresses for the sim's life.
  [[nodiscard]] const sched::Problem& problem(std::size_t variant) const;
  [[nodiscard]] const sched::CanonicalScenario& canon(std::size_t variant) const;

  [[nodiscard]] std::size_t device_bucket(std::size_t device) const;

  /// Next open-loop request; arrivals are strictly non-decreasing.
  [[nodiscard]] DeviceRequest next();

 private:
  DeviceFleetOptions options_;
  std::vector<const sched::Problem*> pool_;
  std::vector<sched::Problem> variants_;  ///< pool-major: scenario * buckets + bucket
  std::vector<sched::CanonicalScenario> canons_;
  std::vector<std::uint32_t> device_bucket_;
  Rng rng_;
  TimeMs clock_ = 0.0;
};

}  // namespace hax::fleet
