#include "fleet/fleet.h"

#include <algorithm>
#include <utility>

#include "common/error.h"

namespace hax::fleet {

namespace {

/// splitmix64 finalizer (same mixer the fingerprint hasher uses).
std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

FleetRouter::FleetRouter(std::size_t brokers) : brokers_(brokers) {
  HAX_REQUIRE(brokers > 0, "FleetRouter needs at least one broker");
}

std::size_t FleetRouter::route(const sched::ScenarioFingerprint& fp) const noexcept {
  return static_cast<std::size_t>(mix64(fp.hi) % brokers_);
}

SchedulerFleet::SchedulerFleet(FleetOptions options)
    : options_(std::move(options)),
      router_(options_.brokers),
      bus_(options_.brokers, options_.bus) {
  HAX_REQUIRE(options_.service.virtual_time && options_.service.workers == 0,
              "SchedulerFleet brokers must be virtual-time inline services");
  brokers_.reserve(options_.brokers);
  for (std::size_t b = 0; b < options_.brokers; ++b) {
    brokers_.push_back(make_broker(b));
  }
  digests_.resize(options_.brokers);
}

std::unique_ptr<serve::SchedulerService> SchedulerFleet::make_broker(std::size_t b) {
  serve::ServiceOptions opts = options_.service;
  if (options_.replicate) {
    // The hook fires only on publishes that changed the broker's cache
    // (improvement-only gossip), never on replication applies.
    opts.on_publish = [this, b](const sched::ScenarioFingerprint& fp, std::uint64_t shape_key,
                                const sched::Schedule& canonical, double objective,
                                bool proven_optimal) {
      ReplicationEntry entry;
      entry.fingerprint = fp;
      entry.shape_key = shape_key;
      entry.schedule = canonical;
      entry.objective = objective;
      entry.proven_optimal = proven_optimal;
      entry.origin = static_cast<int>(b);
      bus_.append(std::move(entry));
    };
  } else {
    opts.on_publish = nullptr;
  }
  return std::make_unique<serve::SchedulerService>(std::move(opts));
}

serve::ScheduleTicket SchedulerFleet::submit_at(serve::ScenarioRequest request,
                                                TimeMs arrival_ms) {
  HAX_REQUIRE(request.problem != nullptr, "fleet request needs a problem");
  sched::CanonicalScenario local;
  if (request.canon == nullptr) {
    local = sched::canonicalize(*request.problem);
    request.canon = &local;
  }
  const std::size_t b = router_.route(request.canon->fingerprint);
  serve::ScheduleTicket ticket = brokers_[b]->submit_at(request, arrival_ms);
  // Inline brokers complete before returning; fold the served latency
  // into this broker's fleet-side digest (merged fleet-wide in stats())
  // and the restart-surviving fleet counters.
  ++submitted_;
  const serve::ServeReply reply = ticket.reply();
  if (reply.outcome == serve::ServeOutcome::kHit ||
      reply.outcome == serve::ServeOutcome::kSolved) {
    if (reply.outcome == serve::ServeOutcome::kHit) {
      ++hits_;
    } else {
      ++solved_;
    }
    LatencyDigest& d = digests_[b];
    d.p50.add(reply.latency_ms);
    d.p95.add(reply.latency_ms);
    d.p99.add(reply.latency_ms);
    ++d.samples;
  }
  return ticket;
}

std::size_t SchedulerFleet::pump_replication() {
  if (!options_.replicate) return 0;
  std::size_t applied = 0;
  for (std::size_t b = 0; b < brokers_.size(); ++b) {
    for (const ReplicationEntry& e : bus_.fetch(b)) {
      (void)brokers_[b]->publish_canonical(e.fingerprint, e.shape_key, e.schedule, e.objective,
                                           e.proven_optimal, /*notify=*/false);
      ++applied;
    }
  }
  return applied;
}

json::Value SchedulerFleet::snapshot_broker(std::size_t b) const {
  HAX_REQUIRE(b < brokers_.size(), "snapshot_broker index out of range");
  json::Array entries;
  for (const serve::ExportedEntry& e : brokers_[b]->cache().export_entries()) {
    entries.push_back(entry_to_json(from_exported(e, static_cast<int>(b))));
  }
  json::Object o;
  o["broker"] = static_cast<std::int64_t>(b);
  o["entries"] = std::move(entries);
  o["snapshot_version"] = 1;
  return json::Value(std::move(o));
}

void SchedulerFleet::restart_broker(std::size_t b, const json::Value* snapshot) {
  HAX_REQUIRE(b < brokers_.size(), "restart_broker index out of range");
  brokers_[b].reset();  // the old broker dies first (joins nothing: inline)
  brokers_[b] = make_broker(b);
  ++restarts_;
  if (snapshot != nullptr) {
    HAX_REQUIRE(snapshot->is_object() && snapshot->contains("entries") &&
                    snapshot->at("entries").is_array(),
                "broker snapshot must be an object with an entries array");
    for (const json::Value& v : snapshot->at("entries").as_array()) {
      const ReplicationEntry e = entry_from_json(v);
      (void)brokers_[b]->publish_canonical(e.fingerprint, e.shape_key, e.schedule, e.objective,
                                           e.proven_optimal, /*notify=*/false);
    }
  }
  // Gossip backfills everything the snapshot predates (including the
  // broker's own pre-crash publishes — fetch does not filter by origin).
  if (options_.replicate) bus_.reset_cursor(b);
}

FleetStats SchedulerFleet::stats() const {
  FleetStats out;
  out.brokers.reserve(brokers_.size());
  stats::P2Quantile p50{0.50};
  stats::P2Quantile p95{0.95};
  stats::P2Quantile p99{0.99};
  for (std::size_t b = 0; b < brokers_.size(); ++b) {
    serve::ServiceStats st = brokers_[b]->stats();
    out.elapsed_ms = std::max(out.elapsed_ms, st.elapsed_ms);
    out.brokers.push_back(std::move(st));

    const LatencyDigest& d = digests_[b];
    if (d.samples > 0) {
      p50.merge(d.p50);
      p95.merge(d.p95);
      p99.merge(d.p99);
      out.latency_samples += d.samples;
    }
  }
  out.submitted = submitted_;
  out.hits = hits_;
  out.solved = solved_;
  out.restarts = restarts_;
  if (out.latency_samples > 0) {
    out.p50_ms = p50.value();
    out.p95_ms = p95.value();
    out.p99_ms = p99.value();
  }
  const std::uint64_t served = out.hits + out.solved;
  out.throughput_rps =
      out.elapsed_ms > 0.0 ? static_cast<double>(served) / (out.elapsed_ms / 1000.0) : 0.0;
  out.bus = bus_.stats();
  return out;
}

json::Value FleetStats::to_json() const {
  json::Array broker_arr;
  for (const serve::ServiceStats& st : brokers) broker_arr.push_back(st.to_json());

  json::Object bus_o;
  bus_o["appended"] = static_cast<std::int64_t>(bus.appended);
  bus_o["fetched"] = static_cast<std::int64_t>(bus.fetched);
  bus_o["compactions"] = static_cast<std::int64_t>(bus.compactions);
  bus_o["digest_entries"] = static_cast<std::int64_t>(bus.digest_entries);
  bus_o["log_entries"] = static_cast<std::int64_t>(bus.log_entries);

  json::Object fleet;
  fleet["submitted"] = static_cast<std::int64_t>(submitted);
  fleet["hits"] = static_cast<std::int64_t>(hits);
  fleet["solved"] = static_cast<std::int64_t>(solved);
  fleet["hit_rate"] = hit_rate();
  fleet["restarts"] = static_cast<std::int64_t>(restarts);
  fleet["elapsed_ms"] = elapsed_ms;
  fleet["throughput_rps"] = throughput_rps;
  fleet["p50_ms"] = p50_ms;
  fleet["p95_ms"] = p95_ms;
  fleet["p99_ms"] = p99_ms;
  fleet["latency_samples"] = static_cast<std::int64_t>(latency_samples);
  fleet["bus"] = std::move(bus_o);

  json::Object o;
  o["brokers"] = std::move(broker_arr);
  o["fleet"] = std::move(fleet);
  return json::Value(std::move(o));
}

}  // namespace hax::fleet
