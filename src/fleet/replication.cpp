#include "fleet/replication.h"

#include <cmath>
#include <utility>

#include "common/error.h"
#include "sched/serialize.h"

namespace hax::fleet {

namespace {

/// u64 <-> fixed 16-digit lowercase hex. JSON numbers are doubles; a
/// shape key hashed into the top bits would come back corrupted, so
/// 64-bit identities always travel as strings.
std::string hex_u64(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 0; i < 16; ++i) {
    out[static_cast<std::size_t>(15 - i)] = digits[(v >> (4 * i)) & 0xF];
  }
  return out;
}

std::uint64_t parse_hex_u64(const std::string& text) {
  HAX_REQUIRE(text.size() == 16, "u64 hex must be exactly 16 digits");
  std::uint64_t v = 0;
  for (char c : text) {
    std::uint64_t nibble;
    if (c >= '0' && c <= '9') {
      nibble = static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      nibble = static_cast<std::uint64_t>(c - 'a') + 10;
    } else {
      HAX_REQUIRE(false, "u64 hex contains a non-hex digit");
      return 0;
    }
    v = (v << 4) | nibble;
  }
  return v;
}

constexpr int kWireVersion = 1;

}  // namespace

json::Value entry_to_json(const ReplicationEntry& entry) {
  json::Object o;
  o["entry_version"] = hex_u64(entry.entry_version);
  o["fingerprint"] = entry.fingerprint.to_string();
  o["objective"] = entry.objective;
  o["origin"] = entry.origin;
  o["proven_optimal"] = entry.proven_optimal;
  o["schedule"] = sched::schedule_to_json(entry.schedule);
  o["shape_key"] = hex_u64(entry.shape_key);
  o["wire_version"] = kWireVersion;
  return json::Value(std::move(o));
}

ReplicationEntry entry_from_json(const json::Value& value) {
  HAX_REQUIRE(value.is_object(), "replication entry must be a JSON object");
  HAX_REQUIRE(value.contains("wire_version") && value.at("wire_version").is_number(),
              "replication entry missing wire_version");
  HAX_REQUIRE(value.at("wire_version").as_int() == kWireVersion,
              "unsupported replication wire_version");
  for (const char* key : {"entry_version", "fingerprint", "objective", "origin",
                          "proven_optimal", "schedule", "shape_key"}) {
    HAX_REQUIRE(value.contains(key), "replication entry missing a required member");
  }
  HAX_REQUIRE(value.at("fingerprint").is_string() && value.at("shape_key").is_string() &&
                  value.at("entry_version").is_string(),
              "replication u64 fields must be hex strings");
  HAX_REQUIRE(value.at("objective").is_number(), "replication objective must be a number");
  HAX_REQUIRE(value.at("proven_optimal").is_bool(), "proven_optimal must be a bool");
  HAX_REQUIRE(value.at("origin").is_number(), "origin must be a number");

  ReplicationEntry entry;
  entry.fingerprint = sched::ScenarioFingerprint::from_string(value.at("fingerprint").as_string());
  entry.shape_key = parse_hex_u64(value.at("shape_key").as_string());
  entry.objective = value.at("objective").as_number();
  HAX_REQUIRE(std::isfinite(entry.objective), "replication objective must be finite");
  entry.proven_optimal = value.at("proven_optimal").as_bool();
  entry.entry_version = parse_hex_u64(value.at("entry_version").as_string());
  entry.origin = static_cast<int>(value.at("origin").as_int());
  entry.schedule = sched::schedule_from_json(value.at("schedule"));
  HAX_REQUIRE(entry.schedule.dnn_count() > 0, "replication schedule must be non-empty");
  return entry;
}

ReplicationEntry from_exported(const serve::ExportedEntry& exported, int origin) {
  ReplicationEntry entry;
  entry.fingerprint = exported.fingerprint;
  entry.shape_key = exported.entry.shape_key;
  entry.schedule = exported.entry.schedule;
  entry.objective = exported.entry.objective;
  entry.proven_optimal = exported.entry.proven_optimal;
  entry.entry_version = exported.entry.version;
  entry.origin = origin;
  return entry;
}

ReplicationBus::ReplicationBus(std::size_t peers, ReplicationBusOptions options)
    : peer_count_(peers),
      compact_threshold_(options.compact_threshold > 0 ? options.compact_threshold : 1) {
  HAX_REQUIRE(peers > 0, "ReplicationBus needs at least one peer");
  LockGuard lock(mu_);
  cursors_.assign(peer_count_, 0);
  need_digest_.assign(peer_count_, false);
}

void ReplicationBus::append(ReplicationEntry entry) {
  LockGuard lock(mu_);
  log_.push_back(std::move(entry));
  ++appended_;
  if (log_.size() > compact_threshold_) compact_locked();
}

void ReplicationBus::compact_locked() {
  // Drop only what every cursor has passed; fold it into the digest
  // (latest entry per fingerprint wins — per-fingerprint publishes are
  // monotone improvements, so the survivor dominates its predecessors).
  std::uint64_t min_cursor = base_ + log_.size();
  for (std::size_t p = 0; p < peer_count_; ++p) {
    min_cursor = std::min(min_cursor, cursors_[p]);
  }
  const std::size_t drop = static_cast<std::size_t>(min_cursor - base_);
  if (drop == 0) return;
  for (std::size_t i = 0; i < drop; ++i) {
    ReplicationEntry& e = log_[i];
    digest_[{e.fingerprint.hi, e.fingerprint.lo}] = std::move(e);
  }
  log_.erase(log_.begin(), log_.begin() + static_cast<std::ptrdiff_t>(drop));
  base_ += drop;
  ++compactions_;
}

std::vector<ReplicationEntry> ReplicationBus::fetch(std::size_t peer) {
  HAX_REQUIRE(peer < peer_count_, "ReplicationBus::fetch peer out of range");
  std::vector<ReplicationEntry> out;
  LockGuard lock(mu_);
  if (need_digest_[peer]) {
    need_digest_[peer] = false;
    out.reserve(digest_.size() + log_.size());
    for (const auto& [key, entry] : digest_) out.push_back(entry);
  }
  const std::size_t start = static_cast<std::size_t>(cursors_[peer] - base_);
  for (std::size_t i = start; i < log_.size(); ++i) out.push_back(log_[i]);
  cursors_[peer] = base_ + log_.size();
  fetched_ += out.size();
  return out;
}

void ReplicationBus::reset_cursor(std::size_t peer) {
  HAX_REQUIRE(peer < peer_count_, "ReplicationBus::reset_cursor peer out of range");
  LockGuard lock(mu_);
  cursors_[peer] = base_;
  need_digest_[peer] = true;
}

ReplicationBusStats ReplicationBus::stats() const {
  ReplicationBusStats out;
  LockGuard lock(mu_);
  out.appended = appended_;
  out.fetched = fetched_;
  out.compactions = compactions_;
  out.digest_entries = digest_.size();
  out.log_entries = log_.size();
  return out;
}

}  // namespace hax::fleet
