#pragma once

/// \file replication.h
/// Cross-broker schedule replication for the scheduler fleet: the wire
/// format (one cache entry as JSON) and the ReplicationBus, an in-process
/// stand-in for the gossip channel a real deployment would run between
/// broker hosts.
///
/// Wire format. Entries carry their 128-bit fingerprint, 64-bit shape
/// key and 64-bit entry version as fixed-width lowercase hex strings —
/// JSON numbers are doubles, which silently lose bits above 2^53, so
/// 64-bit integers never travel as numbers. Schedules reuse sched/serialize's
/// canonical form. entry_from_json rejects malformed payloads
/// (PreconditionError): a fleet must drop a corrupt gossip message, not
/// install it. Round trip is byte-identical: entry → JSON text → entry →
/// JSON text produces the same bytes (doubles print via the shortest
/// round-trip form, keys are std::map-ordered).
///
/// Bus semantics. append() is called from each broker's on_publish hook
/// (improvement-only by construction: the hook only fires when the
/// origin's cache actually changed). Each peer owns a cursor; fetch(peer)
/// returns every entry the peer has not yet seen and advances the cursor.
/// Entries are NOT filtered by origin: applying your own entry back is a
/// harmless rejected publish (the cache's improvement filter already
/// holds an equal-or-better answer), and replication applies never
/// re-append (SchedulerService::publish_canonical with notify=false), so
/// there is no gossip loop to suppress.
///
/// Compaction. When the log outgrows its threshold, the prefix every
/// cursor has passed is folded into a latest-per-fingerprint digest
/// (sound because per-fingerprint publishes are monotone improvements —
/// the latest entry dominates the ones it replaces). reset_cursor(peer) —
/// the restart path — rewinds the peer to the digest plus the full
/// remaining log, so a broker restored from an old snapshot catches up on
/// everything it missed, including its own pre-crash publishes.

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "common/annotated.h"
#include "common/json.h"
#include "common/lock_ranks.h"
#include "sched/fingerprint.h"
#include "sched/schedule.h"
#include "serve/schedule_cache.h"

namespace hax::fleet {

/// One replicated cache entry. `schedule` is in canonical DNN order (the
/// form caches store); `origin` is the publishing broker (diagnostics —
/// fetch does not filter on it).
struct ReplicationEntry {
  sched::ScenarioFingerprint fingerprint;
  std::uint64_t shape_key = 0;
  sched::Schedule schedule;
  double objective = 0.0;
  bool proven_optimal = false;
  std::uint64_t entry_version = 0;  ///< origin cache's improvement count
  int origin = -1;
};

/// Entry -> wire JSON (deterministic key order, hex-encoded u64s).
[[nodiscard]] json::Value entry_to_json(const ReplicationEntry& entry);

/// Wire JSON -> entry. Throws PreconditionError on any malformed input:
/// missing or mistyped member, wrong hex width, non-hex digit, bad
/// schedule payload, or unsupported wire version.
[[nodiscard]] ReplicationEntry entry_from_json(const json::Value& value);

/// Adapts a ScheduleCache export record (snapshot path) to the wire type.
[[nodiscard]] ReplicationEntry from_exported(const serve::ExportedEntry& exported, int origin);

struct ReplicationBusOptions {
  /// Log length that triggers compaction of the all-peers-consumed prefix
  /// into the latest-per-fingerprint digest.
  std::size_t compact_threshold = 4096;
};

struct ReplicationBusStats {
  std::uint64_t appended = 0;     ///< entries ever appended
  std::uint64_t fetched = 0;      ///< entries ever delivered (all peers)
  std::uint64_t compactions = 0;  ///< compaction passes that dropped entries
  std::uint64_t digest_entries = 0;  ///< current latest-per-fingerprint digest size
  std::uint64_t log_entries = 0;     ///< current live log length
};

/// Thread-safe multi-peer log with per-peer cursors. The fleet simulation
/// drives it single-threaded between virtual-time batches, but brokers
/// with real solver workers call append() from worker threads, so every
/// member is mutex-guarded.
class ReplicationBus {
 public:
  explicit ReplicationBus(std::size_t peers, ReplicationBusOptions options = {});

  ReplicationBus(const ReplicationBus&) = delete;
  ReplicationBus& operator=(const ReplicationBus&) = delete;

  /// Appends one published entry and compacts if the log is past its
  /// threshold.
  void append(ReplicationEntry entry);

  /// Everything `peer` has not yet consumed, oldest first (digest entries
  /// lead when the peer was reset past compacted history); advances the
  /// peer's cursor to the log head.
  [[nodiscard]] std::vector<ReplicationEntry> fetch(std::size_t peer);

  /// Rewinds `peer` to the beginning of retained history (digest + log) —
  /// called when the peer's broker restarts from a snapshot.
  void reset_cursor(std::size_t peer);

  [[nodiscard]] std::size_t peers() const noexcept { return peer_count_; }
  [[nodiscard]] ReplicationBusStats stats() const;

 private:
  using FpKey = std::pair<std::uint64_t, std::uint64_t>;

  void compact_locked() HAX_REQUIRES(mu_);

  const std::size_t peer_count_;         ///< immutable after construction
  const std::size_t compact_threshold_;  ///< immutable after construction

  mutable Mutex mu_{HAX_MUTEX_RANK(ReplicationBus_mu_)};
  std::vector<ReplicationEntry> log_ HAX_GUARDED_BY(mu_);
  /// Global index of log_[0] (cursors are global indices).
  std::uint64_t base_ HAX_GUARDED_BY(mu_) = 0;
  std::vector<std::uint64_t> cursors_ HAX_GUARDED_BY(mu_);
  /// Peers rewound past compacted history; their next fetch leads with
  /// the digest.
  std::vector<bool> need_digest_ HAX_GUARDED_BY(mu_);
  /// Latest entry per fingerprint among compacted-away history (std::map
  /// so digest delivery order is deterministic).
  std::map<FpKey, ReplicationEntry> digest_ HAX_GUARDED_BY(mu_);
  std::uint64_t appended_ HAX_GUARDED_BY(mu_) = 0;
  std::uint64_t fetched_ HAX_GUARDED_BY(mu_) = 0;
  std::uint64_t compactions_ HAX_GUARDED_BY(mu_) = 0;
};

}  // namespace hax::fleet
