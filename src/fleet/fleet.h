#pragma once

/// \file fleet.h
/// Fingerprint-sharded scheduler fleet: N SchedulerService brokers behind
/// a deterministic router, with cross-broker schedule replication and
/// broker snapshot/restore. This scales the single-broker serving layer
/// (serve/service.h) to fleet request rates: each scenario fingerprint is
/// owned by exactly one broker, so brokers never contend on a scenario,
/// cache capacity adds up across shards, and the per-broker virtual-time
/// model composes into a whole-fleet throughput model (fleet elapsed time
/// = the busiest broker's elapsed time).
///
///   device ── canonicalize once ──► FleetRouter (hash fp -> broker)
///                                        │
///              ┌─────────────────────────┼─────────────────────────┐
///              ▼                         ▼                         ▼
///         broker 0                  broker 1                  broker N-1
///         (SchedulerService,        cache + solver + live     ...
///          virtual-time)            handles per broker
///              │ on_publish             │                         │
///              └────────────► ReplicationBus ◄────────────────────┘
///                     improvement-only gossip; pump_replication()
///                     applies pending entries at every other broker
///
/// Replication exists for fault tolerance and warm starts, not for hit
/// routing (the router already sends a fingerprint to its one owner):
/// a broker restarted from a stale snapshot catches up from the bus
/// (reset_cursor -> digest + log replay), and gossiped entries populate
/// every broker's shape index so cold misses warm-start from schedules
/// solved anywhere in the fleet.
///
/// Snapshot/restore. snapshot_broker() serializes a broker's entire cache
/// through the replication wire format; restart_broker() tears the broker
/// down (losing cache, handles and virtual clock), builds a fresh one,
/// replays the snapshot, and rewinds the broker's bus cursor so gossip
/// backfills everything published since the snapshot. Restores apply with
/// notify=false — restored entries are not re-gossiped.
///
/// Determinism: with virtual-time brokers (the required configuration), a
/// fixed request trace plus fixed pump/restart points replays to
/// bit-identical FleetStats JSON; bench_fleet and the fleet tests assert
/// this.
///
/// Threading: the fleet object itself is a single-threaded control plane
/// (one driver thread submits, pumps and restarts); the pieces it
/// coordinates (services, caches, bus) are individually thread-safe.

#include <cstdint>
#include <memory>
#include <vector>

#include "common/json.h"
#include "common/stats.h"
#include "fleet/replication.h"
#include "serve/service.h"

namespace hax::fleet {

struct FleetOptions {
  std::size_t brokers = 4;
  /// Per-broker configuration. Must be a deterministic inline service
  /// (virtual_time = true, workers = 0) — the fleet's elapsed-time and
  /// replay guarantees are built on the virtual clock. Any on_publish
  /// hook set here is replaced by the fleet's replication hook.
  serve::ServiceOptions service;
  /// Gossip publishes across brokers through the ReplicationBus. Off =
  /// brokers are fully independent (the bench's ablation arm).
  bool replicate = true;
  ReplicationBusOptions bus;
};

/// Deterministic fingerprint -> broker map. Uses a splitmix64 remix of
/// the fingerprint's high word: ScheduleCache stripes its internal shards
/// on fp.lo's low bits, so routing on remixed fp.hi keeps the two
/// shardings independent (a fleet of B brokers times C cache shards
/// exercises all B*C stripes).
class FleetRouter {
 public:
  explicit FleetRouter(std::size_t brokers);

  [[nodiscard]] std::size_t brokers() const noexcept { return brokers_; }
  [[nodiscard]] std::size_t route(const sched::ScenarioFingerprint& fp) const noexcept;

 private:
  std::size_t brokers_;
};

struct FleetStats {
  std::vector<serve::ServiceStats> brokers;

  // Fleet-level counters, accumulated by the fleet at submit time (not
  // derived from broker stats): they survive broker restarts, which wipe
  // the rebuilt broker's own counters. `brokers[i]` therefore covers only
  // broker i's current incarnation, while these cover the whole trace.
  std::uint64_t submitted = 0;
  std::uint64_t hits = 0;    ///< cache hits across brokers
  std::uint64_t solved = 0;  ///< fresh solves across brokers
  std::uint64_t restarts = 0;
  /// Busiest broker's elapsed virtual time — the fleet finishes when its
  /// slowest shard does, so this is the denominator of throughput_rps.
  TimeMs elapsed_ms = 0.0;
  double throughput_rps = 0.0;
  /// Fleet-wide served-request latency quantiles: per-broker P2 digests
  /// merged with stats::P2Quantile::merge.
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  std::uint64_t latency_samples = 0;

  ReplicationBusStats bus;

  [[nodiscard]] double hit_rate() const noexcept {
    const std::uint64_t served = hits + solved;
    return served == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(served);
  }

  /// Deterministic serialization (replayed traces must dump identically).
  [[nodiscard]] json::Value to_json() const;
};

class SchedulerFleet {
 public:
  explicit SchedulerFleet(FleetOptions options);

  SchedulerFleet(const SchedulerFleet&) = delete;
  SchedulerFleet& operator=(const SchedulerFleet&) = delete;

  [[nodiscard]] const FleetRouter& router() const noexcept { return router_; }
  [[nodiscard]] std::size_t broker_count() const noexcept { return brokers_.size(); }
  [[nodiscard]] serve::SchedulerService& broker(std::size_t b) { return *brokers_[b]; }
  [[nodiscard]] const ReplicationBus& bus() const noexcept { return bus_; }

  /// Routes the request by its canonical fingerprint and submits it to
  /// the owning broker at `arrival_ms` (global virtual time; must be
  /// non-decreasing across calls — each broker then sees a non-decreasing
  /// subsequence). If request.canon is null the scenario is canonicalized
  /// here and handed down, so the fingerprint is hashed exactly once per
  /// request. Inline brokers complete the ticket before returning; the
  /// reply's latency also feeds the fleet's merged latency digests.
  serve::ScheduleTicket submit_at(serve::ScenarioRequest request, TimeMs arrival_ms);

  /// Delivers every pending bus entry to every broker (publish_canonical
  /// with notify=false — applies never re-gossip). Returns the number of
  /// entries applied. No-op when replication is off.
  std::size_t pump_replication();

  /// Serializes broker `b`'s entire cache (replication wire format) —
  /// everything restart_broker needs to rebuild a warm cache.
  [[nodiscard]] json::Value snapshot_broker(std::size_t b) const;

  /// Kills broker `b` (cache, live handles and virtual clock are lost)
  /// and builds a replacement. `snapshot` (may be null) is replayed into
  /// the fresh cache; with replication on, the broker's bus cursor is
  /// rewound so gossip backfills everything newer than the snapshot.
  void restart_broker(std::size_t b, const json::Value* snapshot);

  [[nodiscard]] FleetStats stats() const;

 private:
  /// One broker's slot in the fleet-side latency accounting. Survives
  /// that broker's restarts: latency history is a fleet measurement, not
  /// broker state.
  struct LatencyDigest {
    stats::P2Quantile p50{0.50};
    stats::P2Quantile p95{0.95};
    stats::P2Quantile p99{0.99};
    std::uint64_t samples = 0;
  };

  [[nodiscard]] std::unique_ptr<serve::SchedulerService> make_broker(std::size_t b);

  FleetOptions options_;
  FleetRouter router_;
  ReplicationBus bus_;
  std::vector<std::unique_ptr<serve::SchedulerService>> brokers_;
  std::vector<LatencyDigest> digests_;
  // Fleet-side counters (see FleetStats): broker restarts must not erase
  // trace-level accounting.
  std::uint64_t submitted_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t solved_ = 0;
  std::uint64_t restarts_ = 0;
};

}  // namespace hax::fleet
