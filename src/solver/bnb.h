#pragma once

/// \file bnb.h
/// Generic anytime branch-and-bound over integer assignment vectors — the
/// optimization engine standing in for the paper's Z3/OptiMathSAT use
/// (Sec 3.5). Like an SMT optimizer it (a) proves optimality when allowed
/// to exhaust the space and (b) emits monotonically improving incumbents
/// on the way, which is exactly the contract D-HaX-CoNN depends on.
///
/// The search space is abstract: `variable_count` variables take small
/// integer values; `candidates` enumerates the feasible values of the next
/// variable given a prefix (best-first order helps find good incumbents
/// early); `lower_bound` must be admissible (never exceeds the objective
/// of any completion of the prefix); `evaluate` scores a complete
/// assignment (+inf = infeasible). Objectives are minimized.

#include <functional>
#include <limits>
#include <optional>
#include <span>
#include <vector>

#include "common/types.h"

namespace hax::solver {

class SearchSpace {
 public:
  virtual ~SearchSpace() = default;

  [[nodiscard]] virtual int variable_count() const = 0;

  /// Fills `out` with the candidate values of variable `prefix.size()`,
  /// best-first. An empty result prunes the subtree.
  virtual void candidates(std::span<const int> prefix, std::vector<int>& out) const = 0;

  /// Admissible lower bound for any completion of `prefix`.
  [[nodiscard]] virtual double lower_bound(std::span<const int> prefix) const = 0;

  /// Objective of a complete assignment; +infinity if infeasible.
  [[nodiscard]] virtual double evaluate(std::span<const int> assignment) const = 0;
};

struct SolveOptions {
  /// Wall-clock budget; 0 or negative = unbounded. The solver checks the
  /// clock periodically, so overruns are bounded by one node expansion.
  TimeMs time_budget_ms = 0.0;

  /// Hard cap on explored nodes; 0 = unbounded.
  std::uint64_t node_limit = 0;

  /// Throttle to at most this many nodes per wall millisecond
  /// (0 = unthrottled). Used to emulate slower optimizers — e.g. Z3 on a
  /// single embedded CPU core, whose multi-second convergence D-HaX-CoNN
  /// is designed around (Fig. 7).
  double max_nodes_per_ms = 0.0;

  /// Complete assignments evaluated before the search starts (e.g. naive
  /// baseline schedules), so the result is never worse than the best seed.
  std::vector<std::vector<int>> seeds;
};

struct Incumbent {
  std::vector<int> assignment;
  double objective = std::numeric_limits<double>::infinity();
  TimeMs found_at_ms = 0.0;  ///< wall time since solve() started
};

struct SolveStats {
  std::uint64_t nodes_explored = 0;
  std::uint64_t nodes_pruned = 0;
  std::uint64_t leaves_evaluated = 0;
  int incumbents_found = 0;
  TimeMs elapsed_ms = 0.0;
  /// True when the space was exhausted: the incumbent is proven optimal.
  bool exhausted = false;
};

struct SolveResult {
  std::optional<Incumbent> best;
  SolveStats stats;
};

/// Called on every improving incumbent (anytime interface). Returning
/// false aborts the search early.
using IncumbentCallback = std::function<bool(const Incumbent&)>;

class BranchAndBound {
 public:
  /// Depth-first B&B with best-first value ordering supplied by the space.
  /// Deterministic for a fixed space and options (modulo the time budget).
  [[nodiscard]] SolveResult solve(const SearchSpace& space, const SolveOptions& options = {},
                                  const IncumbentCallback& on_incumbent = {}) const;
};

}  // namespace hax::solver
