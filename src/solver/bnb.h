#pragma once

/// \file bnb.h
/// Generic anytime branch-and-bound over integer assignment vectors — the
/// optimization engine standing in for the paper's Z3/OptiMathSAT use
/// (Sec 3.5). Like an SMT optimizer it (a) proves optimality when allowed
/// to exhaust the space and (b) emits monotonically improving incumbents
/// on the way, which is exactly the contract D-HaX-CoNN depends on.
///
/// The search space is abstract: `variable_count` variables take small
/// integer values; `candidates` enumerates the feasible values of the next
/// variable given a prefix (best-first order helps find good incumbents
/// early); `lower_bound` must be admissible (never exceeds the objective
/// of any completion of the prefix); `evaluate` scores a complete
/// assignment (+inf = infeasible). Objectives are minimized.

#include <atomic>
#include <functional>
#include <limits>
#include <optional>
#include <span>
#include <vector>

#include "common/memo_cache.h"
#include "common/types.h"

namespace hax::solver {

/// Search spaces must be const-thread-safe: the multi-threaded solvers
/// call candidates() / lower_bound() / evaluate() concurrently from many
/// workers on the same instance. Implementations must keep all scratch
/// per-call or per-thread (stack-local / thread_local); mutable shared
/// state is allowed only when it is internally synchronized and
/// result-transparent (e.g. ScheduleSpace's lock-striped memo cache).
class SearchSpace {
 public:
  virtual ~SearchSpace() = default;

  [[nodiscard]] virtual int variable_count() const = 0;

  /// Fills `out` with the candidate values of variable `prefix.size()`,
  /// best-first. An empty result prunes the subtree.
  virtual void candidates(std::span<const int> prefix, std::vector<int>& out) const = 0;

  /// Admissible lower bound for any completion of `prefix`.
  [[nodiscard]] virtual double lower_bound(std::span<const int> prefix) const = 0;

  /// Objective of a complete assignment; +infinity if infeasible.
  [[nodiscard]] virtual double evaluate(std::span<const int> assignment) const = 0;

  /// Objectives of `n` complete assignments laid out back to back in
  /// `assignments` (each variable_count() values); `out[i]` receives the
  /// objective of the i-th. Results must be bit-identical to calling
  /// evaluate() per assignment — batching is a throughput contract, not a
  /// semantic one. The default implementation is that per-assignment loop;
  /// spaces with a cheaper population path (ScheduleSpace's SoA batch
  /// evaluator) override it. Const-thread-safe like evaluate().
  virtual void evaluate_batch(std::span<const int> assignments, int n,
                              std::span<double> out) const;

  /// Hit/miss totals of the space's evaluation memo, when it keeps one
  /// (see ScheduleSpace); zeros otherwise. Solvers snapshot this around
  /// each generation/phase to report memo efficacy.
  [[nodiscard]] virtual MemoCacheStats cache_stats() const noexcept { return {}; }
};

/// Cooperative cancellation flag shared between solver threads (and, in
/// the portfolio, between whole solvers). Requesting a stop is sticky.
/// A token may chain to a parent (the portfolio links its internal token
/// to the caller's), in which case the parent's stop is inherited.
class StopToken {
 public:
  StopToken() = default;
  explicit StopToken(const StopToken* parent) noexcept : parent_(parent) {}

  void request_stop() noexcept { stop_.store(true, std::memory_order_relaxed); }
  [[nodiscard]] bool stop_requested() const noexcept {
    return stop_.load(std::memory_order_relaxed) ||
           (parent_ != nullptr && parent_->stop_requested());
  }

 private:
  std::atomic<bool> stop_{false};
  const StopToken* parent_ = nullptr;
};

/// Monotonically tightening best-objective bound shared across solver
/// engines: the portfolio feeds GA incumbents into B&B pruning through
/// one of these. Lock-free CAS-min; reads are safe from any thread.
class SharedBound {
 public:
  [[nodiscard]] double load() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

  /// Lowers the bound to `objective` if it improves it; returns whether
  /// this call tightened the bound.
  bool tighten(double objective) noexcept {
    double current = value_.load(std::memory_order_relaxed);
    while (objective < current) {
      if (value_.compare_exchange_weak(current, objective, std::memory_order_relaxed)) {
        return true;
      }
    }
    return false;
  }

 private:
  std::atomic<double> value_{std::numeric_limits<double>::infinity()};
};

struct SolveOptions {
  /// Wall-clock budget; 0 or negative = unbounded. The solver checks the
  /// clock periodically, so overruns are bounded by one node expansion.
  /// The budget governs optimality effort, not first-feasible discovery:
  /// it is only enforced once some incumbent (seed or search-found)
  /// exists, so a budgeted solve over a feasible space always returns an
  /// assignment, no matter how small the budget or slow the machine.
  /// Use node_limit for a hard stop that may return empty.
  TimeMs time_budget_ms = 0.0;

  /// Hard cap on explored nodes; 0 = unbounded. Honored exactly even in
  /// the multi-threaded search (workers reserve node ids atomically).
  std::uint64_t node_limit = 0;

  /// Worker threads for the subtree-parallel search: 1 = the serial
  /// engine (default, bit-for-bit identical to the historical solver),
  /// 0 = one worker per hardware thread, n = exactly n workers. The root
  /// frontier (first one or two assignment levels) is partitioned into
  /// subtree work items consumed by the pool; the incumbent is shared, so
  /// pruning tightens globally. The proven optimum is thread-count
  /// independent; node/prune counts are not (pruning races the search).
  int threads = 1;

  /// Optional cooperative cancellation (e.g. the portfolio race). Checked
  /// at the same cadence as the time budget; a stopped search returns its
  /// best-so-far with exhausted == false.
  const StopToken* stop = nullptr;

  /// Optional cross-solver incumbent bound. Pruning uses
  /// min(own best, shared bound); every new incumbent tightens it. The
  /// solver never *reports* an incumbent that does not beat the shared
  /// bound (the other engine already has something at least as good).
  SharedBound* shared_bound = nullptr;

  /// Throttle to at most this many nodes per wall millisecond
  /// (0 = unthrottled). Used to emulate slower optimizers — e.g. Z3 on a
  /// single embedded CPU core, whose multi-second convergence D-HaX-CoNN
  /// is designed around (Fig. 7).
  double max_nodes_per_ms = 0.0;

  /// Complete assignments evaluated before the search starts (e.g. naive
  /// baseline schedules), so the result is never worse than the best seed.
  std::vector<std::vector<int>> seeds;
};

struct Incumbent {
  std::vector<int> assignment;
  double objective = std::numeric_limits<double>::infinity();
  TimeMs found_at_ms = 0.0;  ///< wall time since solve() started
};

/// Per-generation telemetry of the genetic solver: how many fitness
/// evaluations the generation issued and how many were absorbed by the
/// space's memo cache (duplicate genomes, elites revisited). generation 0
/// is the initial population. bench_solvers prints these so batch/memo
/// efficacy is observable per generation, not just per solve.
struct GenerationStats {
  int generation = 0;
  std::uint64_t evaluations = 0;  ///< fitness evaluations issued
  std::uint64_t cache_hits = 0;   ///< memo hits within this generation
  std::uint64_t cache_misses = 0; ///< memo misses within this generation
  double best_objective = std::numeric_limits<double>::infinity();  ///< after this generation
};

struct SolveStats {
  std::uint64_t nodes_explored = 0;
  std::uint64_t nodes_pruned = 0;
  std::uint64_t leaves_evaluated = 0;
  int incumbents_found = 0;
  TimeMs elapsed_ms = 0.0;
  /// True when the space was exhausted: the incumbent is proven optimal.
  bool exhausted = false;
  /// Evaluation memo-cache totals, when the search space memoizes
  /// evaluate() (see ScheduleSpace). Filled by the solve_schedule layer —
  /// the cache lives in the space, not the engine — and zero otherwise.
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  /// Per-generation breakdown (genetic solver only; empty for B&B).
  std::vector<GenerationStats> generations;
};

struct SolveResult {
  std::optional<Incumbent> best;
  SolveStats stats;
};

/// Called on every improving incumbent (anytime interface). Returning
/// false aborts the search early.
using IncumbentCallback = std::function<bool(const Incumbent&)>;

class BranchAndBound {
 public:
  /// Depth-first B&B with best-first value ordering supplied by the space.
  /// With options.threads == 1 (default) the search is deterministic for
  /// a fixed space and options (modulo the time budget). With more
  /// workers the root frontier is partitioned into subtrees searched
  /// concurrently against a shared incumbent: the optimum found at
  /// exhaustion is identical, but node counts vary run-to-run because
  /// pruning depends on incumbent timing. Incumbent callbacks are
  /// serialized and strictly improving in all modes.
  [[nodiscard]] SolveResult solve(const SearchSpace& space, const SolveOptions& options = {},
                                  const IncumbentCallback& on_incumbent = {}) const;
};

}  // namespace hax::solver
