#include "solver/genetic.h"

#include <algorithm>
#include <atomic>
#include <chrono>

#include "common/error.h"
#include "common/thread_pool.h"

namespace hax::solver {
namespace {

using Clock = std::chrono::steady_clock;

TimeMs since_ms(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

struct Individual {
  std::vector<int> genes;
  double fitness = std::numeric_limits<double>::infinity();  // objective, minimized
};

/// Per-individual attempts at producing a repairable child before falling
/// back to cloning an elite. Bounds a generation's repair work to
/// kMaxRepairAttempts * population even on spaces where repair keeps
/// dead-ending (the unbounded retry loop used to spin forever there).
constexpr int kMaxRepairAttempts = 100;

/// Deterministic per-(generation, slot) stream seed: every individual's
/// randomness is a pure function of (options.seed, generation, slot), so
/// results do not depend on thread scheduling at all.
std::uint64_t stream_seed(std::uint64_t seed, std::uint64_t generation,
                          std::uint64_t slot) noexcept {
  std::uint64_t x = seed;
  x ^= (generation + 1) * 0x9E3779B97F4A7C15ull;
  x ^= (x >> 29);
  x ^= (slot + 1) * 0xBF58476D1CE4E5B9ull;
  x ^= (x >> 32);
  return x;
}

/// Left-to-right repair: every gene must be a member of candidates(prefix)
/// so structural constraints (support, transition budget) always hold.
/// Genes outside the feasible set are resampled uniformly. Returns false
/// when a prefix dead-ends (no candidates).
bool repair(const SearchSpace& space, int n, std::vector<int>& genes, Rng& rng,
            std::vector<int>& scratch) {
  std::vector<int> prefix;
  prefix.reserve(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) {
    space.candidates(prefix, scratch);
    if (scratch.empty()) return false;  // dead end: invalid individual
    int gene = v < static_cast<int>(genes.size()) ? genes[static_cast<std::size_t>(v)] : -1;
    if (std::find(scratch.begin(), scratch.end(), gene) == scratch.end()) {
      gene = scratch[rng.uniform_index(scratch.size())];
    }
    if (v < static_cast<int>(genes.size())) {
      genes[static_cast<std::size_t>(v)] = gene;
    } else {
      genes.push_back(gene);
    }
    prefix.push_back(gene);
  }
  return true;
}

}  // namespace

SolveResult GeneticSolver::solve(const SearchSpace& space, const GeneticOptions& options,
                                 const IncumbentCallback& on_incumbent) const {
  HAX_REQUIRE(options.population >= 4, "population must be >= 4");
  HAX_REQUIRE(options.generations >= 1, "generations must be >= 1");
  HAX_REQUIRE(options.tournament >= 1 && options.tournament <= options.population,
              "tournament size out of range");
  HAX_REQUIRE(options.elites >= 0 && options.elites < options.population,
              "elites out of range");
  const int n = space.variable_count();
  HAX_REQUIRE(n > 0, "search space has no variables");

  const auto start = Clock::now();
  SolveResult result;
  double best_objective = std::numeric_limits<double>::infinity();
  std::atomic<std::uint64_t> evaluations{0};
  ThreadPool pool(options.threads);

  const auto stopped = [&] {
    if (options.stop != nullptr && options.stop->stop_requested()) return true;
    return options.time_budget_ms > 0.0 && since_ms(start) > options.time_budget_ms;
  };

  const auto evaluate = [&](Individual& ind) {
    evaluations.fetch_add(1, std::memory_order_relaxed);
    ind.fitness = space.evaluate(ind.genes);
  };

  // Serial, slot-ordered acceptance keeps incumbents (and callbacks)
  // strictly improving and deterministic even though fitness evaluation
  // runs on many threads.
  const auto accept = [&](const Individual& ind) -> bool {
    if (ind.fitness >= best_objective) return true;
    best_objective = ind.fitness;
    if (options.shared_bound != nullptr) options.shared_bound->tighten(ind.fitness);
    Incumbent inc;
    inc.assignment = ind.genes;
    inc.objective = ind.fitness;
    inc.found_at_ms = since_ms(start);
    ++result.stats.incumbents_found;
    result.best = inc;
    return !on_incumbent || on_incumbent(*result.best);
  };

  const auto finalize = [&]() -> SolveResult {
    result.stats.leaves_evaluated = evaluations.load(std::memory_order_relaxed);
    result.stats.elapsed_ms = since_ms(start);
    result.stats.exhausted = false;  // heuristic: no optimality proof
    return result;
  };

  if (stopped()) return finalize();  // cancelled before any work

  // ---- initial population (generation 0 streams) --------------------------
  std::vector<Individual> population(static_cast<std::size_t>(options.population));
  std::vector<char> valid(static_cast<std::size_t>(options.population), 0);
  parallel_for(pool, population.size(), [&](std::size_t slot) {
    if (options.stop != nullptr && options.stop->stop_requested()) return;
    Rng rng(stream_seed(options.seed, 0, slot));
    std::vector<int> scratch;
    Individual& ind = population[slot];
    // Warm-start slots: the seed's genes go through the same repair pass
    // as random individuals, so seeds from a *similar* scenario (serving
    // layer warm start) degrade gracefully — any gene the new space
    // rejects is resampled, the rest of the schedule survives.
    if (slot < options.seeds.size()) {
      ind.genes = options.seeds[slot];
      if (ind.genes.size() > static_cast<std::size_t>(n)) {
        ind.genes.resize(static_cast<std::size_t>(n));
      }
      if (repair(space, n, ind.genes, rng, scratch)) {
        evaluate(ind);
        valid[slot] = 1;
        return;
      }
    }
    for (int attempt = 0; attempt < kMaxRepairAttempts; ++attempt) {
      ind.genes.clear();
      if (repair(space, n, ind.genes, rng, scratch)) {
        evaluate(ind);
        valid[slot] = 1;
        return;
      }
    }
  });
  {
    std::size_t kept = 0;
    for (std::size_t slot = 0; slot < population.size(); ++slot) {
      if (!valid[slot]) continue;
      if (!accept(population[slot])) return finalize();
      if (kept != slot) population[kept] = std::move(population[slot]);
      ++kept;
    }
    population.resize(kept);
  }
  if (population.empty()) return finalize();

  // ---- generations ---------------------------------------------------------
  for (int gen = 1; gen <= options.generations; ++gen) {
    if (stopped()) break;
    ++result.stats.nodes_explored;  // one generation = one "node" for stats

    std::stable_sort(population.begin(), population.end(),
                     [](const Individual& a, const Individual& b) {
                       return a.fitness < b.fitness;
                     });

    const std::size_t elite_count =
        std::min(static_cast<std::size_t>(std::max(options.elites, 0)), population.size());
    const std::size_t child_count = population.size() - elite_count;
    std::vector<Individual> children(child_count);

    parallel_for(pool, child_count, [&](std::size_t slot) {
      Individual& child = children[slot];
      // Per-individual stop poll: a cancelled solve abandons the rest of
      // the generation within one individual's work. The clone below is
      // never *accepted* as an improvement (fitness equals an existing
      // individual), so cancellation cannot perturb the incumbent stream.
      if (options.stop != nullptr && options.stop->stop_requested()) {
        child = population.front();
        return;
      }
      Rng rng(stream_seed(options.seed, static_cast<std::uint64_t>(gen), slot));
      std::vector<int> scratch;

      const auto tournament_pick = [&]() -> const Individual& {
        const Individual* best = &population[rng.uniform_index(population.size())];
        for (int i = 1; i < options.tournament; ++i) {
          const Individual& challenger = population[rng.uniform_index(population.size())];
          if (challenger.fitness < best->fitness) best = &challenger;
        }
        return *best;
      };

      for (int attempt = 0; attempt < kMaxRepairAttempts; ++attempt) {
        const Individual& a = tournament_pick();
        // Single-point crossover keeps contiguous PU runs mostly intact,
        // which matches the schedule structure (few transitions). It
        // needs an interior cut point, so single-variable problems
        // (one DNN, one layer group) fall through to cloning.
        if (n >= 2 && rng.uniform() < options.crossover_rate) {
          const Individual& b = tournament_pick();
          const std::size_t cut = 1 + rng.uniform_index(static_cast<std::uint64_t>(n - 1));
          child.genes.assign(a.genes.begin(),
                             a.genes.begin() + static_cast<std::ptrdiff_t>(cut));
          child.genes.insert(child.genes.end(),
                             b.genes.begin() + static_cast<std::ptrdiff_t>(cut),
                             b.genes.end());
        } else {
          child.genes = a.genes;
        }
        for (int v = 0; v < n; ++v) {
          if (rng.uniform() < options.mutation_rate) {
            child.genes[static_cast<std::size_t>(v)] = -1;  // force resample in repair
          }
        }
        if (repair(space, n, child.genes, rng, scratch)) {
          evaluate(child);
          return;
        }
      }
      // Repair kept dead-ending: clone the best individual (already
      // evaluated) so the generation always fills up.
      child = population.front();
    });

    for (const Individual& child : children) {
      if (!accept(child)) return finalize();
    }

    std::vector<Individual> next;
    next.reserve(population.size());
    for (std::size_t e = 0; e < elite_count; ++e) next.push_back(population[e]);
    for (Individual& child : children) next.push_back(std::move(child));
    population = std::move(next);
  }

  return finalize();
}

}  // namespace hax::solver
