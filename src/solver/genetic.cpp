#include "solver/genetic.h"

#include <algorithm>
#include <chrono>

#include "common/error.h"

namespace hax::solver {
namespace {

using Clock = std::chrono::steady_clock;

TimeMs since_ms(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

struct Individual {
  std::vector<int> genes;
  double fitness = std::numeric_limits<double>::infinity();  // objective, minimized
};

}  // namespace

SolveResult GeneticSolver::solve(const SearchSpace& space, const GeneticOptions& options,
                                 const IncumbentCallback& on_incumbent) const {
  HAX_REQUIRE(options.population >= 4, "population must be >= 4");
  HAX_REQUIRE(options.generations >= 1, "generations must be >= 1");
  HAX_REQUIRE(options.tournament >= 1 && options.tournament <= options.population,
              "tournament size out of range");
  HAX_REQUIRE(options.elites >= 0 && options.elites < options.population,
              "elites out of range");
  const int n = space.variable_count();
  HAX_REQUIRE(n > 0, "search space has no variables");

  const auto start = Clock::now();
  Rng rng(options.seed);
  SolveResult result;
  double best_objective = std::numeric_limits<double>::infinity();

  std::vector<int> scratch_candidates;

  // Left-to-right repair: every gene must be a member of candidates(prefix)
  // so structural constraints (support, transition budget) always hold.
  // Genes outside the feasible set are resampled uniformly.
  const auto repair = [&](std::vector<int>& genes) {
    std::vector<int> prefix;
    prefix.reserve(static_cast<std::size_t>(n));
    for (int v = 0; v < n; ++v) {
      space.candidates(prefix, scratch_candidates);
      if (scratch_candidates.empty()) return false;  // dead end: invalid individual
      int gene = v < static_cast<int>(genes.size()) ? genes[static_cast<std::size_t>(v)] : -1;
      if (std::find(scratch_candidates.begin(), scratch_candidates.end(), gene) ==
          scratch_candidates.end()) {
        gene = scratch_candidates[rng.uniform_index(scratch_candidates.size())];
      }
      if (v < static_cast<int>(genes.size())) {
        genes[static_cast<std::size_t>(v)] = gene;
      } else {
        genes.push_back(gene);
      }
      prefix.push_back(gene);
    }
    return true;
  };

  const auto evaluate = [&](Individual& ind) {
    ++result.stats.leaves_evaluated;
    ind.fitness = space.evaluate(ind.genes);
  };

  const auto accept = [&](const Individual& ind) -> bool {
    if (ind.fitness >= best_objective) return true;
    best_objective = ind.fitness;
    Incumbent inc;
    inc.assignment = ind.genes;
    inc.objective = ind.fitness;
    inc.found_at_ms = since_ms(start);
    ++result.stats.incumbents_found;
    result.best = inc;
    return !on_incumbent || on_incumbent(*result.best);
  };

  // ---- initial population -------------------------------------------------
  std::vector<Individual> population;
  population.reserve(static_cast<std::size_t>(options.population));
  for (int i = 0; i < options.population; ++i) {
    Individual ind;
    if (!repair(ind.genes)) continue;
    evaluate(ind);
    if (!accept(ind)) {
      result.stats.elapsed_ms = since_ms(start);
      return result;
    }
    population.push_back(std::move(ind));
  }
  if (population.empty()) {
    result.stats.elapsed_ms = since_ms(start);
    return result;
  }

  const auto tournament_pick = [&]() -> const Individual& {
    const Individual* best = &population[rng.uniform_index(population.size())];
    for (int i = 1; i < options.tournament; ++i) {
      const Individual& challenger = population[rng.uniform_index(population.size())];
      if (challenger.fitness < best->fitness) best = &challenger;
    }
    return *best;
  };

  // ---- generations ---------------------------------------------------------
  for (int gen = 0; gen < options.generations; ++gen) {
    if (options.time_budget_ms > 0.0 && since_ms(start) > options.time_budget_ms) break;
    ++result.stats.nodes_explored;  // one generation = one "node" for stats

    std::sort(population.begin(), population.end(),
              [](const Individual& a, const Individual& b) { return a.fitness < b.fitness; });

    std::vector<Individual> next;
    next.reserve(population.size());
    for (int e = 0; e < options.elites && e < static_cast<int>(population.size()); ++e) {
      next.push_back(population[static_cast<std::size_t>(e)]);
    }

    while (next.size() < population.size()) {
      Individual child;
      const Individual& a = tournament_pick();
      if (rng.uniform() < options.crossover_rate) {
        // Single-point crossover keeps contiguous PU runs mostly intact,
        // which matches the schedule structure (few transitions).
        const Individual& b = tournament_pick();
        const std::size_t cut = 1 + rng.uniform_index(static_cast<std::uint64_t>(n - 1));
        child.genes.assign(a.genes.begin(), a.genes.begin() + static_cast<std::ptrdiff_t>(cut));
        child.genes.insert(child.genes.end(), b.genes.begin() + static_cast<std::ptrdiff_t>(cut),
                           b.genes.end());
      } else {
        child.genes = a.genes;
      }
      for (int v = 0; v < n; ++v) {
        if (rng.uniform() < options.mutation_rate) {
          child.genes[static_cast<std::size_t>(v)] = -1;  // force resample in repair
        }
      }
      if (!repair(child.genes)) continue;
      evaluate(child);
      if (!accept(child)) {
        result.stats.elapsed_ms = since_ms(start);
        return result;
      }
      next.push_back(std::move(child));
    }
    population = std::move(next);
  }

  result.stats.elapsed_ms = since_ms(start);
  result.stats.exhausted = false;  // heuristic: no optimality proof
  return result;
}

}  // namespace hax::solver
