#include "solver/genetic.h"

#include <algorithm>
#include <chrono>

#include "common/error.h"
#include "common/thread_pool.h"

namespace hax::solver {
namespace {

using Clock = std::chrono::steady_clock;

TimeMs since_ms(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

struct Individual {
  std::vector<int> genes;
  double fitness = std::numeric_limits<double>::infinity();  // objective, minimized
};

/// Per-individual attempts at producing a repairable child before falling
/// back to cloning an elite. Bounds a generation's repair work to
/// kMaxRepairAttempts * population even on spaces where repair keeps
/// dead-ending (the unbounded retry loop used to spin forever there).
constexpr int kMaxRepairAttempts = 100;

/// Deterministic per-(generation, slot) stream seed: every individual's
/// randomness is a pure function of (options.seed, generation, slot), so
/// results do not depend on thread scheduling at all.
std::uint64_t stream_seed(std::uint64_t seed, std::uint64_t generation,
                          std::uint64_t slot) noexcept {
  std::uint64_t x = seed;
  x ^= (generation + 1) * 0x9E3779B97F4A7C15ull;
  x ^= (x >> 29);
  x ^= (slot + 1) * 0xBF58476D1CE4E5B9ull;
  x ^= (x >> 32);
  return x;
}

/// Left-to-right repair: every gene must be a member of candidates(prefix)
/// so structural constraints (support, transition budget) always hold.
/// Genes outside the feasible set are resampled uniformly. Returns false
/// when a prefix dead-ends (no candidates).
bool repair(const SearchSpace& space, int n, std::vector<int>& genes, Rng& rng,
            std::vector<int>& scratch) {
  std::vector<int> prefix;
  prefix.reserve(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) {
    space.candidates(prefix, scratch);
    if (scratch.empty()) return false;  // dead end: invalid individual
    int gene = v < static_cast<int>(genes.size()) ? genes[static_cast<std::size_t>(v)] : -1;
    if (std::find(scratch.begin(), scratch.end(), gene) == scratch.end()) {
      gene = scratch[rng.uniform_index(scratch.size())];
    }
    if (v < static_cast<int>(genes.size())) {
      genes[static_cast<std::size_t>(v)] = gene;
    } else {
      genes.push_back(gene);
    }
    prefix.push_back(gene);
  }
  return true;
}

}  // namespace

SolveResult GeneticSolver::solve(const SearchSpace& space, const GeneticOptions& options,
                                 const IncumbentCallback& on_incumbent) const {
  HAX_REQUIRE(options.population >= 4, "population must be >= 4");
  HAX_REQUIRE(options.generations >= 1, "generations must be >= 1");
  HAX_REQUIRE(options.tournament >= 1 && options.tournament <= options.population,
              "tournament size out of range");
  HAX_REQUIRE(options.elites >= 0 && options.elites < options.population,
              "elites out of range");
  const int n = space.variable_count();
  HAX_REQUIRE(n > 0, "search space has no variables");

  const auto start = Clock::now();
  SolveResult result;
  double best_objective = std::numeric_limits<double>::infinity();
  std::uint64_t evaluations = 0;
  const int threads = resolve_thread_count(options.threads);
  ThreadPool pool(options.threads);

  const auto stopped = [&] {
    if (options.stop != nullptr && options.stop->stop_requested()) return true;
    return options.time_budget_ms > 0.0 && since_ms(start) > options.time_budget_ms;
  };

  // Batch fitness evaluation: individuals are *constructed* under
  // parallel_for, but scoring goes through the space's batch evaluator —
  // `marked` selects which individuals need scores. The batch is split
  // into one contiguous chunk per worker; chunking cannot affect results
  // (evaluate_batch is bit-identical to per-individual evaluate() calls),
  // so determinism is preserved for any thread count.
  std::vector<int> eval_buf;
  std::vector<double> eval_obj;
  std::vector<std::size_t> eval_slots;
  const auto evaluate_marked = [&](std::vector<Individual>& group,
                                   const std::vector<char>& marked) {
    eval_slots.clear();
    for (std::size_t slot = 0; slot < group.size(); ++slot) {
      if (marked[slot]) eval_slots.push_back(slot);
    }
    if (eval_slots.empty()) return;
    eval_buf.clear();
    eval_buf.reserve(eval_slots.size() * static_cast<std::size_t>(n));
    for (const std::size_t slot : eval_slots) {
      eval_buf.insert(eval_buf.end(), group[slot].genes.begin(), group[slot].genes.end());
    }
    eval_obj.resize(eval_slots.size());
    evaluations += eval_slots.size();
    const std::size_t chunks = std::min<std::size_t>(
        static_cast<std::size_t>(std::max(threads, 1)), eval_slots.size());
    const std::size_t per_chunk = (eval_slots.size() + chunks - 1) / chunks;
    parallel_for(pool, chunks, [&](std::size_t c) {
      const std::size_t begin = c * per_chunk;
      const std::size_t end = std::min(begin + per_chunk, eval_slots.size());
      if (begin >= end) return;
      space.evaluate_batch(
          std::span<const int>(eval_buf).subspan(begin * static_cast<std::size_t>(n),
                                                 (end - begin) * static_cast<std::size_t>(n)),
          static_cast<int>(end - begin),
          std::span<double>(eval_obj).subspan(begin, end - begin));
    });
    for (std::size_t m = 0; m < eval_slots.size(); ++m) {
      group[eval_slots[m]].fitness = eval_obj[m];
    }
  };

  // Per-generation memo efficacy: snapshot the space's cache counters
  // around each generation's evaluations.
  MemoCacheStats cache_before = space.cache_stats();
  std::uint64_t evals_before = 0;
  const auto record_generation = [&](int gen) {
    const MemoCacheStats cache_after = space.cache_stats();
    GenerationStats gs;
    gs.generation = gen;
    gs.evaluations = evaluations - evals_before;
    gs.cache_hits = cache_after.hits - cache_before.hits;
    gs.cache_misses = cache_after.misses - cache_before.misses;
    gs.best_objective = best_objective;
    result.stats.generations.push_back(gs);
    cache_before = cache_after;
    evals_before = evaluations;
  };

  // Serial, slot-ordered acceptance keeps incumbents (and callbacks)
  // strictly improving and deterministic even though fitness evaluation
  // runs on many threads.
  const auto accept = [&](const Individual& ind) -> bool {
    if (ind.fitness >= best_objective) return true;
    best_objective = ind.fitness;
    if (options.shared_bound != nullptr) options.shared_bound->tighten(ind.fitness);
    Incumbent inc;
    inc.assignment = ind.genes;
    inc.objective = ind.fitness;
    inc.found_at_ms = since_ms(start);
    ++result.stats.incumbents_found;
    result.best = inc;
    return !on_incumbent || on_incumbent(*result.best);
  };

  const auto finalize = [&]() -> SolveResult {
    result.stats.leaves_evaluated = evaluations;
    result.stats.elapsed_ms = since_ms(start);
    result.stats.exhausted = false;  // heuristic: no optimality proof
    return result;
  };

  if (stopped()) return finalize();  // cancelled before any work

  // ---- initial population (generation 0 streams) --------------------------
  std::vector<Individual> population(static_cast<std::size_t>(options.population));
  std::vector<char> valid(static_cast<std::size_t>(options.population), 0);
  parallel_for(pool, population.size(), [&](std::size_t slot) {
    if (options.stop != nullptr && options.stop->stop_requested()) return;
    Rng rng(stream_seed(options.seed, 0, slot));
    std::vector<int> scratch;
    Individual& ind = population[slot];
    // Warm-start slots: the seed's genes go through the same repair pass
    // as random individuals, so seeds from a *similar* scenario (serving
    // layer warm start) degrade gracefully — any gene the new space
    // rejects is resampled, the rest of the schedule survives.
    if (slot < options.seeds.size()) {
      ind.genes = options.seeds[slot];
      if (ind.genes.size() > static_cast<std::size_t>(n)) {
        ind.genes.resize(static_cast<std::size_t>(n));
      }
      if (repair(space, n, ind.genes, rng, scratch)) {
        valid[slot] = 1;
        return;
      }
    }
    for (int attempt = 0; attempt < kMaxRepairAttempts; ++attempt) {
      ind.genes.clear();
      if (repair(space, n, ind.genes, rng, scratch)) {
        valid[slot] = 1;
        return;
      }
    }
  });
  evaluate_marked(population, valid);
  {
    std::size_t kept = 0;
    for (std::size_t slot = 0; slot < population.size(); ++slot) {
      if (!valid[slot]) continue;
      if (!accept(population[slot])) return finalize();
      if (kept != slot) population[kept] = std::move(population[slot]);
      ++kept;
    }
    population.resize(kept);
  }
  record_generation(0);
  if (population.empty()) return finalize();

  // ---- generations ---------------------------------------------------------
  for (int gen = 1; gen <= options.generations; ++gen) {
    if (stopped()) break;
    ++result.stats.nodes_explored;  // one generation = one "node" for stats

    std::stable_sort(population.begin(), population.end(),
                     [](const Individual& a, const Individual& b) {
                       return a.fitness < b.fitness;
                     });

    const std::size_t elite_count =
        std::min(static_cast<std::size_t>(std::max(options.elites, 0)), population.size());
    const std::size_t child_count = population.size() - elite_count;
    std::vector<Individual> children(child_count);
    std::vector<char> needs_eval(child_count, 0);

    parallel_for(pool, child_count, [&](std::size_t slot) {
      Individual& child = children[slot];
      // Per-individual stop poll: a cancelled solve abandons the rest of
      // the generation within one individual's work. The clone below is
      // never *accepted* as an improvement (fitness equals an existing
      // individual), so cancellation cannot perturb the incumbent stream.
      if (options.stop != nullptr && options.stop->stop_requested()) {
        child = population.front();
        return;
      }
      Rng rng(stream_seed(options.seed, static_cast<std::uint64_t>(gen), slot));
      std::vector<int> scratch;

      const auto tournament_pick = [&]() -> const Individual& {
        const Individual* best = &population[rng.uniform_index(population.size())];
        for (int i = 1; i < options.tournament; ++i) {
          const Individual& challenger = population[rng.uniform_index(population.size())];
          if (challenger.fitness < best->fitness) best = &challenger;
        }
        return *best;
      };

      for (int attempt = 0; attempt < kMaxRepairAttempts; ++attempt) {
        const Individual& a = tournament_pick();
        // Single-point crossover keeps contiguous PU runs mostly intact,
        // which matches the schedule structure (few transitions). It
        // needs an interior cut point, so single-variable problems
        // (one DNN, one layer group) fall through to cloning.
        if (n >= 2 && rng.uniform() < options.crossover_rate) {
          const Individual& b = tournament_pick();
          const std::size_t cut = 1 + rng.uniform_index(static_cast<std::uint64_t>(n - 1));
          child.genes.assign(a.genes.begin(),
                             a.genes.begin() + static_cast<std::ptrdiff_t>(cut));
          child.genes.insert(child.genes.end(),
                             b.genes.begin() + static_cast<std::ptrdiff_t>(cut),
                             b.genes.end());
        } else {
          child.genes = a.genes;
        }
        for (int v = 0; v < n; ++v) {
          if (rng.uniform() < options.mutation_rate) {
            child.genes[static_cast<std::size_t>(v)] = -1;  // force resample in repair
          }
        }
        if (repair(space, n, child.genes, rng, scratch)) {
          needs_eval[slot] = 1;  // scored by the batch evaluator below
          return;
        }
      }
      // Repair kept dead-ending: clone the best individual (fitness
      // already known) so the generation always fills up.
      child = population.front();
    });
    evaluate_marked(children, needs_eval);

    for (const Individual& child : children) {
      if (!accept(child)) return finalize();
    }
    record_generation(gen);

    std::vector<Individual> next;
    next.reserve(population.size());
    for (std::size_t e = 0; e < elite_count; ++e) next.push_back(population[e]);
    for (Individual& child : children) next.push_back(std::move(child));
    population = std::move(next);
  }

  return finalize();
}

}  // namespace hax::solver
