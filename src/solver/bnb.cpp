#include "solver/bnb.h"

#include <chrono>
#include <thread>

#include "common/error.h"

namespace hax::solver {
namespace {

using Clock = std::chrono::steady_clock;

TimeMs since_ms(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

struct Frame {
  std::vector<int> values;  ///< candidate values for this depth
  std::size_t next = 0;     ///< next candidate to try
};

}  // namespace

SolveResult BranchAndBound::solve(const SearchSpace& space, const SolveOptions& options,
                                  const IncumbentCallback& on_incumbent) const {
  const int n = space.variable_count();
  HAX_REQUIRE(n > 0, "search space has no variables");
  const auto start = Clock::now();

  SolveResult result;
  double best_objective = std::numeric_limits<double>::infinity();

  const auto accept = [&](std::span<const int> assignment, double objective) -> bool {
    if (objective >= best_objective) return true;
    best_objective = objective;
    Incumbent inc;
    inc.assignment.assign(assignment.begin(), assignment.end());
    inc.objective = objective;
    inc.found_at_ms = since_ms(start);
    ++result.stats.incumbents_found;
    result.best = inc;
    if (on_incumbent && !on_incumbent(*result.best)) return false;
    return true;
  };

  // Seed incumbents first: the search can then never end below them.
  for (const std::vector<int>& seed : options.seeds) {
    HAX_REQUIRE(static_cast<int>(seed.size()) == n, "seed has wrong length");
    ++result.stats.leaves_evaluated;
    const double obj = space.evaluate(seed);
    if (!accept(seed, obj)) {
      result.stats.elapsed_ms = since_ms(start);
      return result;
    }
  }

  // Iterative DFS so deep spaces cannot overflow the stack.
  std::vector<int> prefix;
  prefix.reserve(static_cast<std::size_t>(n));
  std::vector<Frame> stack;
  stack.reserve(static_cast<std::size_t>(n));

  stack.emplace_back();
  space.candidates(prefix, stack.back().values);
  bool aborted = false;

  const auto out_of_budget = [&] {
    if (options.node_limit > 0 && result.stats.nodes_explored >= options.node_limit) return true;
    if (options.time_budget_ms > 0.0 && (result.stats.nodes_explored & 0x3F) == 0 &&
        since_ms(start) > options.time_budget_ms) {
      return true;
    }
    return false;
  };

  const auto pace = [&] {
    if (options.max_nodes_per_ms <= 0.0 || (result.stats.nodes_explored & 0x3F) != 0) return;
    const TimeMs due =
        static_cast<double>(result.stats.nodes_explored) / options.max_nodes_per_ms;
    const TimeMs elapsed = since_ms(start);
    if (due > elapsed) {
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(due - elapsed));
    }
  };

  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.next >= frame.values.size()) {
      stack.pop_back();
      if (!prefix.empty()) prefix.pop_back();
      continue;
    }
    if (out_of_budget()) {
      aborted = true;
      break;
    }

    const int value = frame.values[frame.next++];
    prefix.push_back(value);
    ++result.stats.nodes_explored;
    pace();

    if (static_cast<int>(prefix.size()) == n) {
      ++result.stats.leaves_evaluated;
      const double obj = space.evaluate(prefix);
      if (!accept(prefix, obj)) {
        aborted = true;
        break;
      }
      prefix.pop_back();
      continue;
    }

    if (space.lower_bound(prefix) >= best_objective) {
      ++result.stats.nodes_pruned;
      prefix.pop_back();
      continue;
    }

    stack.emplace_back();
    space.candidates(prefix, stack.back().values);
  }

  result.stats.elapsed_ms = since_ms(start);
  result.stats.exhausted = !aborted && stack.empty();
  return result;
}

}  // namespace hax::solver
