#include "solver/bnb.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/annotated.h"
#include "common/lock_ranks.h"
#include "common/error.h"
#include "common/thread_pool.h"

namespace hax::solver {

void SearchSpace::evaluate_batch(std::span<const int> assignments, int n,
                                 std::span<double> out) const {
  const std::size_t vars = static_cast<std::size_t>(variable_count());
  HAX_REQUIRE(assignments.size() == static_cast<std::size_t>(n) * vars,
              "batch assignment buffer has wrong length");
  HAX_REQUIRE(out.size() >= static_cast<std::size_t>(n), "batch output buffer too small");
  for (int i = 0; i < n; ++i) {
    out[static_cast<std::size_t>(i)] =
        evaluate(assignments.subspan(static_cast<std::size_t>(i) * vars, vars));
  }
}

namespace {

using Clock = std::chrono::steady_clock;

TimeMs since_ms(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

struct Frame {
  std::vector<int> values;  ///< candidate values for this depth
  std::size_t next = 0;     ///< next candidate to try
};

/// Incumbent + budgets shared by every worker of one solve() call. The
/// best objective is mirrored in an atomic so the hot pruning check never
/// takes the mutex; the mutex serializes incumbent storage and callback
/// invocation (keeping callbacks strictly improving across threads).
struct SharedSearch {
  const SolveOptions* options = nullptr;
  Clock::time_point start;  ///< set before the search threads spawn

  std::atomic<double> best{std::numeric_limits<double>::infinity()};
  Mutex mutex{HAX_MUTEX_RANK(SharedSearch_mutex)};  ///< serializes incumbent storage and callback invocation
  std::optional<Incumbent> incumbent HAX_GUARDED_BY(mutex);
  int incumbents_found HAX_GUARDED_BY(mutex) = 0;
  /// Lock-free mirror of `incumbents_found > 0` for the clock check: the
  /// wall-clock budget governs optimality effort, not first-feasible
  /// discovery, so it only fires once some incumbent exists (the anytime
  /// guarantee: a budgeted solve still returns *something* whenever a
  /// feasible assignment is reachable). node_limit stays strict.
  std::atomic<bool> has_incumbent{false};

  std::atomic<std::uint64_t> nodes{0};  ///< global count, enforces node_limit
  std::atomic<bool> abort{false};       ///< callback returned false / stop token
  std::atomic<bool> out_of_budget{false};

  /// Current pruning bound: own best tightened by the cross-solver bound.
  [[nodiscard]] double bound() const noexcept {
    double b = best.load(std::memory_order_relaxed);
    if (options->shared_bound != nullptr) {
      b = std::min(b, options->shared_bound->load());
    }
    return b;
  }

  /// Records a complete assignment. Returns false when the search must
  /// abort (user callback vetoed).
  bool offer(std::span<const int> assignment, double objective,
             const IncumbentCallback& on_incumbent) {
    if (objective >= bound()) return true;  // cheap lock-free reject
    LockGuard lock(mutex);
    double current = best.load(std::memory_order_relaxed);
    if (options->shared_bound != nullptr) {
      current = std::min(current, options->shared_bound->load());
    }
    if (objective >= current) return true;  // lost the race to a better one
    best.store(objective, std::memory_order_relaxed);
    if (options->shared_bound != nullptr) options->shared_bound->tighten(objective);
    Incumbent inc;
    inc.assignment.assign(assignment.begin(), assignment.end());
    inc.objective = objective;
    inc.found_at_ms = since_ms(start);
    ++incumbents_found;
    incumbent = std::move(inc);
    has_incumbent.store(true, std::memory_order_relaxed);
    if (on_incumbent && !on_incumbent(*incumbent)) {
      abort.store(true, std::memory_order_relaxed);
      return false;
    }
    return true;
  }

  /// Reserves one node id against node_limit. Returns false (and restores
  /// the count, keeping nodes_explored <= node_limit exact) when the
  /// budget is spent.
  bool reserve_node() noexcept {
    const std::uint64_t id = nodes.fetch_add(1, std::memory_order_relaxed);
    if (options->node_limit > 0 && id >= options->node_limit) {
      nodes.fetch_sub(1, std::memory_order_relaxed);
      out_of_budget.store(true, std::memory_order_relaxed);
      return false;
    }
    return true;
  }

  [[nodiscard]] bool stopped() const noexcept {
    return abort.load(std::memory_order_relaxed) ||
           out_of_budget.load(std::memory_order_relaxed) ||
           (options->stop != nullptr && options->stop->stop_requested());
  }
};

/// Periodic (every-64-local-nodes) wall-clock budget check and pacing.
/// Returns true when the time budget is exhausted. The budget is not
/// enforced until a first incumbent exists: a tiny budget (or a slow
/// machine) must degrade to "return the first feasible assignment
/// found", never to an empty result — the anytime contract that
/// solve_schedule's callers rely on. Searches over genuinely infeasible
/// spaces are still bounded by node_limit and exhaustion.
bool check_clock_and_pace(SharedSearch& shared, std::uint64_t local_nodes) {
  if ((local_nodes & 0x3F) != 0) return false;
  const SolveOptions& options = *shared.options;
  if (options.time_budget_ms > 0.0 &&
      shared.has_incumbent.load(std::memory_order_relaxed) &&
      since_ms(shared.start) > options.time_budget_ms) {
    shared.out_of_budget.store(true, std::memory_order_relaxed);
    return true;
  }
  if (options.max_nodes_per_ms > 0.0) {
    // Throttle on the *global* node count so the aggregate rate matches
    // the knob regardless of worker count (emulated-Z3 semantics).
    const TimeMs due = static_cast<double>(shared.nodes.load(std::memory_order_relaxed)) /
                       options.max_nodes_per_ms;
    const TimeMs elapsed = since_ms(shared.start);
    if (due > elapsed) {
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(due - elapsed));
    }
  }
  return false;
}

/// Iterative DFS over the subtree rooted at `prefix` (already counted by
/// the caller). Accumulates into `local`; incumbents and budgets go
/// through `shared`.
void dfs_subtree(const SearchSpace& space, int n, std::vector<int> prefix,
                 SharedSearch& shared, const IncumbentCallback& on_incumbent,
                 SolveStats& local) {
  // Check the clock on entry too: under strong bounds a subtree can be
  // tiny, and per-node checks alone (every 64) would let many small work
  // items run without ever looking at the budget.
  if (check_clock_and_pace(shared, 0)) return;
  std::vector<Frame> stack;
  stack.reserve(static_cast<std::size_t>(n) - prefix.size());
  stack.emplace_back();
  space.candidates(prefix, stack.back().values);

  // Sibling-batch scratch, reused across every last-level expansion in
  // this subtree (no per-node allocation once warmed up).
  std::vector<int> leaf_values;
  std::vector<int> leaf_assignments;
  std::vector<double> leaf_objectives;

  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.next >= frame.values.size()) {
      stack.pop_back();
      if (stack.empty()) break;  // subtree done; leave the root prefix alone
      prefix.pop_back();
      continue;
    }
    if (shared.stopped()) return;
    if (!shared.reserve_node()) return;
    const int value = frame.values[frame.next++];
    prefix.push_back(value);
    ++local.nodes_explored;
    if (check_clock_and_pace(shared, local.nodes_explored)) return;

    if (static_cast<int>(prefix.size()) == n) {
      ++local.leaves_evaluated;
      const double obj = space.evaluate(prefix);
      if (!shared.offer(prefix, obj, on_incumbent)) return;
      prefix.pop_back();
      continue;
    }
    if (space.lower_bound(prefix) >= shared.bound()) {
      ++local.nodes_pruned;
      prefix.pop_back();
      continue;
    }
    if (static_cast<int>(prefix.size()) == n - 1) {
      // Sibling expansion: every child of this node is a leaf, so the
      // whole value set is scored through the space's batch evaluator
      // instead of one evaluate() per leaf. Node accounting is unchanged
      // (one reserve_node / nodes_explored / clock check per sibling, so
      // node_limit stays exact and pacing still applies); incumbents are
      // offered in candidate order afterwards, keeping the callback
      // stream strictly improving exactly as the per-leaf loop did.
      space.candidates(prefix, leaf_values);
      leaf_assignments.clear();
      int accepted = 0;
      bool bail = false;
      for (const int leaf : leaf_values) {
        if (shared.stopped() || !shared.reserve_node()) {
          bail = true;
          break;
        }
        ++local.nodes_explored;
        if (check_clock_and_pace(shared, local.nodes_explored)) {
          bail = true;  // counted but never evaluated, same as the scalar path
          break;
        }
        ++local.leaves_evaluated;
        leaf_assignments.insert(leaf_assignments.end(), prefix.begin(), prefix.end());
        leaf_assignments.push_back(leaf);
        ++accepted;
      }
      if (accepted > 0) {
        leaf_objectives.resize(static_cast<std::size_t>(accepted));
        space.evaluate_batch(leaf_assignments, accepted, leaf_objectives);
        const std::size_t vars = static_cast<std::size_t>(n);
        for (int i = 0; i < accepted; ++i) {
          const std::span<const int> leaf_assignment =
              std::span<const int>(leaf_assignments).subspan(static_cast<std::size_t>(i) * vars,
                                                             vars);
          if (!shared.offer(leaf_assignment, leaf_objectives[static_cast<std::size_t>(i)],
                            on_incumbent)) {
            return;
          }
        }
      }
      if (bail) return;
      prefix.pop_back();
      continue;
    }
    stack.emplace_back();
    space.candidates(prefix, stack.back().values);
  }
}

/// Expands the root of the search tree into subtree work items: BFS over
/// the first assignment levels until at least `target` items exist (so
/// dynamic claiming can balance uneven subtrees). Leaves met on the way
/// are evaluated immediately; obviously-pruned children are dropped.
/// Items come back sorted by lower bound, most promising first — workers
/// then tend to find strong incumbents early, tightening the shared
/// bound for everyone else.
std::vector<std::vector<int>> build_frontier(const SearchSpace& space, int n,
                                             std::size_t target, SharedSearch& shared,
                                             const IncumbentCallback& on_incumbent,
                                             SolveStats& local) {
  std::vector<std::vector<int>> level;
  level.emplace_back();  // the empty prefix (the DFS root, never counted)
  std::vector<int> values;

  // Never expand the last level: items must be strict prefixes so the
  // subtree DFS has something to do.
  for (int depth = 0; depth < n - 1 && !level.empty(); ++depth) {
    if (level.size() >= target) break;
    std::vector<std::vector<int>> next_level;
    for (std::vector<int>& prefix : level) {
      space.candidates(prefix, values);
      for (int value : values) {
        if (shared.stopped()) return {};
        if (!shared.reserve_node()) return {};
        ++local.nodes_explored;
        std::vector<int> child = prefix;
        child.push_back(value);
        if (static_cast<int>(child.size()) == n) {
          ++local.leaves_evaluated;
          const double obj = space.evaluate(child);
          if (!shared.offer(child, obj, on_incumbent)) return {};
          continue;
        }
        if (space.lower_bound(child) >= shared.bound()) {
          ++local.nodes_pruned;
          continue;
        }
        next_level.push_back(std::move(child));
      }
    }
    level = std::move(next_level);
  }

  std::vector<double> bounds(level.size());
  for (std::size_t i = 0; i < level.size(); ++i) bounds[i] = space.lower_bound(level[i]);
  std::vector<std::size_t> order(level.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) { return bounds[a] < bounds[b]; });
  std::vector<std::vector<int>> sorted;
  sorted.reserve(level.size());
  for (std::size_t i : order) sorted.push_back(std::move(level[i]));
  return sorted;
}

}  // namespace

SolveResult BranchAndBound::solve(const SearchSpace& space, const SolveOptions& options,
                                  const IncumbentCallback& on_incumbent) const {
  const int n = space.variable_count();
  HAX_REQUIRE(n > 0, "search space has no variables");
  const int threads = resolve_thread_count(options.threads);

  SharedSearch shared;
  shared.options = &options;
  shared.start = Clock::now();

  SolveResult result;

  // Seed incumbents first: the search can then never end below them.
  // (Scored as one batch, then offered serially in seed order — callbacks
  // must improve monotonically.)
  bool seed_abort = false;
  if (!options.seeds.empty()) {
    std::vector<int> seed_assignments;
    seed_assignments.reserve(options.seeds.size() * static_cast<std::size_t>(n));
    for (const std::vector<int>& seed : options.seeds) {
      HAX_REQUIRE(static_cast<int>(seed.size()) == n, "seed has wrong length");
      seed_assignments.insert(seed_assignments.end(), seed.begin(), seed.end());
    }
    std::vector<double> seed_objectives(options.seeds.size());
    space.evaluate_batch(seed_assignments, static_cast<int>(options.seeds.size()),
                         seed_objectives);
    result.stats.leaves_evaluated += options.seeds.size();
    for (std::size_t i = 0; i < options.seeds.size(); ++i) {
      if (!shared.offer(options.seeds[i], seed_objectives[i], on_incumbent)) {
        seed_abort = true;
        break;
      }
    }
  }

  if (!seed_abort && !shared.stopped()) {
    if (threads <= 1) {
      dfs_subtree(space, n, {}, shared, on_incumbent, result.stats);
    } else {
      const std::size_t target =
          std::max<std::size_t>(4 * static_cast<std::size_t>(threads), 16);
      std::vector<std::vector<int>> frontier =
          build_frontier(space, n, target, shared, on_incumbent, result.stats);
      if (!frontier.empty()) {
        ThreadPool pool(threads);
        std::vector<SolveStats> worker_stats(frontier.size());
        parallel_for(pool, frontier.size(), [&](std::size_t i) {
          if (shared.stopped()) return;
          dfs_subtree(space, n, std::move(frontier[i]), shared, on_incumbent,
                      worker_stats[i]);
        });
        for (const SolveStats& ws : worker_stats) {
          result.stats.nodes_explored += ws.nodes_explored;
          result.stats.nodes_pruned += ws.nodes_pruned;
          result.stats.leaves_evaluated += ws.leaves_evaluated;
        }
      }
    }
  }

  {
    LockGuard lock(shared.mutex);
    result.best = shared.incumbent;
    result.stats.incumbents_found = shared.incumbents_found;
  }
  result.stats.elapsed_ms = since_ms(shared.start);
  result.stats.exhausted = !seed_abort && !shared.stopped();
  return result;
}

}  // namespace hax::solver
