#pragma once

/// \file portfolio.h
/// Parallel solver portfolio: races the exact branch-and-bound against
/// the genetic heuristic on separate threads over the same SearchSpace.
/// The engines cooperate instead of merely racing —
///   * every GA incumbent tightens the B&B's pruning bound through a
///     SharedBound (the GA finds good schedules early; the B&B turns
///     them into stronger cuts),
///   * every B&B incumbent raises the bar the GA must beat before it
///     reports anything,
///   * when the B&B exhausts the space the proof is in and the GA is
///     cancelled through a shared StopToken (nothing can beat a proven
///     optimum).
/// The GA finishing first does NOT cancel the B&B: the exact engine is
/// the only one that can produce an optimality proof, so it runs to its
/// own budget. Bounded runs should therefore set time_budget_ms on the
/// B&B half (the portfolio mirrors it onto the GA when the GA has none).
///
/// Incumbent callbacks from both engines are funneled through one
/// monotonic filter: the caller observes a single strictly improving
/// stream, exactly like the single-engine solvers.

#include "solver/bnb.h"
#include "solver/genetic.h"

namespace hax::solver {

struct PortfolioOptions {
  /// Knobs for the exact half. `stop` and `shared_bound` are owned by the
  /// portfolio and overwritten.
  SolveOptions bnb;

  /// Knobs for the heuristic half; same caveat on `stop`/`shared_bound`.
  /// When `genetic.seeds` is empty, `bnb.seeds` is mirrored onto it so a
  /// single warm-start list (serving-layer schedule cache, baseline
  /// schedules) primes both engines.
  GeneticOptions genetic;

  /// Total worker threads across both engines (0 = one per hardware
  /// thread). One thread drives the GA (plus its own `genetic.threads`
  /// evaluation workers); the rest search B&B subtrees.
  int threads = 0;
};

struct PortfolioResult {
  /// Merged result: the better incumbent of the two engines, summed work
  /// stats, `exhausted` iff the B&B proved optimality.
  SolveResult best;

  SolveStats bnb_stats;
  SolveStats genetic_stats;

  /// Engine that produced `best.best` ("bnb" | "genetic"); ties go to the
  /// exact engine. "none" when neither found a feasible assignment.
  const char* winner = "none";
};

class PortfolioSolver {
 public:
  [[nodiscard]] PortfolioResult solve(const SearchSpace& space,
                                      const PortfolioOptions& options = {},
                                      const IncumbentCallback& on_incumbent = {}) const;
};

}  // namespace hax::solver
