#pragma once

/// \file genetic.h
/// Genetic-algorithm solver over the same SearchSpace abstraction as the
/// branch-and-bound engine. This is the optimization style the paper's
/// related work uses for multi-accelerator mapping (Gamma, Kang et al.,
/// Sec 2 "Multi-accelerator scheduling") — a heuristic that scales well
/// but, unlike the B&B/SMT approach, can neither prove optimality nor
/// guarantee it finds the optimum (bench_solvers quantifies the gap).
///
/// Individuals are complete assignments; structural constraints (support,
/// transition budget) are maintained by a left-to-right repair pass that
/// resamples any gene outside candidates(prefix).

#include "common/rng.h"
#include "solver/bnb.h"

namespace hax::solver {

struct GeneticOptions {
  int population = 64;
  int generations = 200;
  double crossover_rate = 0.8;
  double mutation_rate = 0.05;  ///< per-gene mutation probability
  int tournament = 3;           ///< tournament selection size
  int elites = 2;               ///< individuals copied unchanged each generation
  std::uint64_t seed = 0x5EEDull;
  TimeMs time_budget_ms = 0.0;  ///< 0 = run all generations
};

class GeneticSolver {
 public:
  /// Evolves assignments for the space; reports improving incumbents via
  /// the callback (same anytime contract as BranchAndBound). The result's
  /// `exhausted` flag is always false: heuristics prove nothing.
  [[nodiscard]] SolveResult solve(const SearchSpace& space, const GeneticOptions& options = {},
                                  const IncumbentCallback& on_incumbent = {}) const;
};

}  // namespace hax::solver
