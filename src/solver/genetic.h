#pragma once

/// \file genetic.h
/// Genetic-algorithm solver over the same SearchSpace abstraction as the
/// branch-and-bound engine. This is the optimization style the paper's
/// related work uses for multi-accelerator mapping (Gamma, Kang et al.,
/// Sec 2 "Multi-accelerator scheduling") — a heuristic that scales well
/// but, unlike the B&B/SMT approach, can neither prove optimality nor
/// guarantee it finds the optimum (bench_solvers quantifies the gap).
///
/// Individuals are complete assignments; structural constraints (support,
/// transition budget) are maintained by a left-to-right repair pass that
/// resamples any gene outside candidates(prefix).

#include "common/rng.h"
#include "solver/bnb.h"

namespace hax::solver {

struct GeneticOptions {
  int population = 64;
  int generations = 200;
  double crossover_rate = 0.8;  ///< ignored when variable_count() < 2
  double mutation_rate = 0.05;  ///< per-gene mutation probability
  int tournament = 3;           ///< tournament selection size
  int elites = 2;               ///< individuals copied unchanged each generation
  std::uint64_t seed = 0x5EEDull;
  TimeMs time_budget_ms = 0.0;  ///< 0 = run all generations

  /// Worker threads for per-generation construction + fitness evaluation
  /// (1 = serial, 0 = one per hardware thread). Every individual draws
  /// from its own Rng stream seeded deterministically from `seed` and its
  /// (generation, slot) coordinates, so the result is identical for a
  /// fixed seed regardless of thread count.
  int threads = 1;

  /// Optional cooperative cancellation (portfolio race / serving-layer
  /// request cancel). Polled between generations AND before every
  /// individual's construction+evaluation, so an in-flight solve halts
  /// within one individual of the stop request (the serving layer's
  /// cancellation latency bound), not one full generation.
  const StopToken* stop = nullptr;

  /// Warm-start seeds: complete assignments injected into generation 0 in
  /// place of random individuals (first min(seeds, population) slots).
  /// Each seed is run through the repair pass, so structurally invalid
  /// genes (e.g. a seed from a similar-but-different scenario via the
  /// serving layer's schedule cache) are resampled instead of rejected.
  /// Seeding preserves the fixed-seed determinism guarantee.
  std::vector<std::vector<int>> seeds;

  /// Optional cross-solver bound: every GA incumbent tightens it (feeding
  /// B&B pruning in the portfolio). The GA itself does not prune, so it
  /// only writes.
  SharedBound* shared_bound = nullptr;
};

class GeneticSolver {
 public:
  /// Evolves assignments for the space; reports improving incumbents via
  /// the callback (same anytime contract as BranchAndBound). The result's
  /// `exhausted` flag is always false: heuristics prove nothing.
  /// Deterministic for a fixed seed (independent of thread count).
  [[nodiscard]] SolveResult solve(const SearchSpace& space, const GeneticOptions& options = {},
                                  const IncumbentCallback& on_incumbent = {}) const;
};

}  // namespace hax::solver
