#include "solver/portfolio.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/annotated.h"
#include "common/lock_ranks.h"
#include "common/thread_pool.h"

namespace hax::solver {
namespace {

using Clock = std::chrono::steady_clock;

TimeMs since_ms(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

}  // namespace

PortfolioResult PortfolioSolver::solve(const SearchSpace& space,
                                       const PortfolioOptions& options,
                                       const IncumbentCallback& on_incumbent) const {
  const auto start = Clock::now();
  const int total_threads = resolve_thread_count(options.threads);

  // Chain to the caller's token (if any) so external cancellation reaches
  // both engines through the portfolio's own race token.
  StopToken stop(options.bnb.stop != nullptr ? options.bnb.stop : options.genetic.stop);
  SharedBound bound;

  // Cross-engine monotonic callback filter: both engines report through
  // here; only strict global improvements reach the caller. A veto stops
  // both engines. The funnel runs under each engine's incumbent mutex
  // (SharedSearch::offer invokes its callback while holding it) — the
  // analyzer cannot see through the std::function, so the nesting is
  // declared explicitly:
  // hax-analyze: edge(SharedSearch_mutex -> PortfolioSolver_solve_cb_mutex)
  Mutex cb_mutex{HAX_MUTEX_RANK(PortfolioSolver_solve_cb_mutex)};  // guards cb_best / cb_improvements / cb_closed (locals)
  double cb_best = std::numeric_limits<double>::infinity();
  int cb_improvements = 0;
  bool cb_closed = false;  // sticky after a veto: the user never hears again
  const IncumbentCallback funnel = [&](const Incumbent& inc) -> bool {
    LockGuard lock(cb_mutex);
    if (cb_closed) return false;
    if (inc.objective >= cb_best) return true;
    cb_best = inc.objective;
    ++cb_improvements;
    if (on_incumbent && !on_incumbent(inc)) {
      cb_closed = true;
      stop.request_stop();
      return false;
    }
    return true;
  };

  SolveOptions bnb_options = options.bnb;
  bnb_options.threads = std::max(1, total_threads - 1);  // one thread drives the GA
  bnb_options.stop = &stop;
  bnb_options.shared_bound = &bound;

  GeneticOptions ga_options = options.genetic;
  ga_options.stop = &stop;
  ga_options.shared_bound = &bound;
  // A portfolio bounded on the exact side should not leave the GA
  // spinning afterwards: mirror the budget when the GA has none.
  if (ga_options.time_budget_ms <= 0.0 && bnb_options.time_budget_ms > 0.0) {
    ga_options.time_budget_ms = bnb_options.time_budget_ms;
  }
  // Warm starts flow to both engines: B&B evaluates the seeds as initial
  // incumbents, the GA plants them in generation 0. Callers therefore set
  // seeds once, on the exact half (mirrored only when the GA has none of
  // its own).
  if (ga_options.seeds.empty() && !bnb_options.seeds.empty()) {
    ga_options.seeds = bnb_options.seeds;
  }

  SolveResult ga_result;
  std::thread ga_thread([&] {
    ga_result = GeneticSolver().solve(space, ga_options, funnel);
  });

  // The exact engine runs on the calling thread; its completion — proof
  // or budget exhaustion — decides the race, so cancel the GA.
  SolveResult bnb_result = BranchAndBound().solve(space, bnb_options, funnel);
  stop.request_stop();
  ga_thread.join();

  PortfolioResult portfolio;
  portfolio.bnb_stats = bnb_result.stats;
  portfolio.genetic_stats = ga_result.stats;

  const double bnb_obj = bnb_result.best
                             ? bnb_result.best->objective
                             : std::numeric_limits<double>::infinity();
  const double ga_obj = ga_result.best ? ga_result.best->objective
                                       : std::numeric_limits<double>::infinity();
  if (bnb_result.best && bnb_obj <= ga_obj) {
    portfolio.best.best = bnb_result.best;
    portfolio.winner = "bnb";
  } else if (ga_result.best) {
    portfolio.best.best = ga_result.best;
    portfolio.winner = "genetic";
  }

  portfolio.best.stats.nodes_explored =
      bnb_result.stats.nodes_explored + ga_result.stats.nodes_explored;
  portfolio.best.stats.nodes_pruned =
      bnb_result.stats.nodes_pruned + ga_result.stats.nodes_pruned;
  portfolio.best.stats.leaves_evaluated =
      bnb_result.stats.leaves_evaluated + ga_result.stats.leaves_evaluated;
  // The funnel sees both engines, so this is the cross-engine count of
  // strict global improvements.
  portfolio.best.stats.incumbents_found = cb_improvements;
  // Exhaustion transfers even when the GA's incumbent won the tie: the
  // B&B proved no assignment beats the shared bound the GA supplied.
  portfolio.best.stats.exhausted = bnb_result.stats.exhausted;
  portfolio.best.stats.elapsed_ms = since_ms(start);
  return portfolio;
}

}  // namespace hax::solver
