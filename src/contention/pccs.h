#pragma once

/// \file pccs.h
/// Processor-centric contention slowdown model (PCCS). Predicts the
/// slowdown a PU experiences as a function of (a) its own requested memory
/// throughput and (b) the cumulative external traffic from concurrently
/// running PUs — and nothing layer-specific, which is what collapses the
/// paper's profiling search space from quadratic co-run enumeration to
/// linear standalone profiling (Sec 3.3).
///
/// Calibration co-runs synthetic streaming micro-kernels at a grid of
/// (own, external) demand levels against the platform's memory system and
/// fits one piecewise-linear slowdown curve per own-demand level. Queries
/// bilinearly interpolate between curves. The fitted model is an
/// *approximation* of the EMC's true arbitration — the residual error is
/// what the scheduler's ε slack absorbs.

#include <vector>

#include "contention/piecewise.h"
#include "soc/memory_system.h"

namespace hax::contention {

struct PccsOptions {
  int own_levels = 9;      ///< grid resolution in own-demand
  int traffic_knots = 17;  ///< knots per external-traffic curve
  /// Calibration sweeps demands in (0, max_fraction] of EMC peak.
  double max_fraction = 1.0;
};

class PccsModel {
 public:
  /// Fits the model against a memory system (the "micro-benchmark run").
  [[nodiscard]] static PccsModel calibrate(const soc::MemorySystem& memory,
                                           const PccsOptions& options = {});

  /// Predicted slowdown (>= 1) for a PU requesting `own` GB/s while other
  /// PUs request `external` GB/s in total.
  [[nodiscard]] double slowdown(GBps own, GBps external) const;

  [[nodiscard]] int own_level_count() const noexcept {
    return static_cast<int>(own_levels_.size());
  }

 private:
  PccsModel() = default;

  std::vector<GBps> own_levels_;          ///< increasing own-demand grid
  std::vector<PiecewiseLinear> curves_;   ///< slowdown vs external, per level
};

}  // namespace hax::contention
