#include "contention/pccs.h"

#include <algorithm>

#include "common/error.h"

namespace hax::contention {

PccsModel PccsModel::calibrate(const soc::MemorySystem& memory, const PccsOptions& options) {
  HAX_REQUIRE(options.own_levels >= 2, "need at least two own-demand levels");
  HAX_REQUIRE(options.traffic_knots >= 2, "need at least two traffic knots");
  HAX_REQUIRE(options.max_fraction > 0.0 && options.max_fraction <= 1.5,
              "max_fraction out of sensible range");

  const GBps peak = memory.total_gbps();
  PccsModel model;
  model.own_levels_.reserve(static_cast<std::size_t>(options.own_levels));
  model.curves_.reserve(static_cast<std::size_t>(options.own_levels));

  for (int i = 0; i < options.own_levels; ++i) {
    // Levels span (0, max_fraction]; no zero level (zero demand => no slowdown).
    const double frac = options.max_fraction * static_cast<double>(i + 1) /
                        static_cast<double>(options.own_levels);
    const GBps own = frac * peak;
    PiecewiseLinear curve;
    for (int k = 0; k < options.traffic_knots; ++k) {
      const GBps external = options.max_fraction * peak * static_cast<double>(k) /
                            static_cast<double>(options.traffic_knots - 1);
      // "Run" the co-located streaming micro-kernels: the observed
      // slowdown is the ratio of standalone to co-run progress rate.
      curve.add_knot(external, memory.slowdown(own, external));
    }
    model.own_levels_.push_back(own);
    model.curves_.push_back(std::move(curve));
  }
  return model;
}

double PccsModel::slowdown(GBps own, GBps external) const {
  HAX_REQUIRE(!own_levels_.empty(), "PccsModel not calibrated");
  if (own <= 0.0 || external <= 0.0) return 1.0;

  // Locate the bracketing own-demand levels and interpolate between their
  // external-traffic curves.
  if (own <= own_levels_.front()) {
    // Below the lowest calibrated level: scale the lowest curve's excess
    // toward 1 (a near-zero own demand experiences ~no slowdown).
    const double s = curves_.front().eval(external);
    const double w = own / own_levels_.front();
    return 1.0 + (s - 1.0) * w;
  }
  if (own >= own_levels_.back()) return curves_.back().eval(external);

  const auto it = std::upper_bound(own_levels_.begin(), own_levels_.end(), own);
  const std::size_t hi = static_cast<std::size_t>(it - own_levels_.begin());
  const std::size_t lo = hi - 1;
  const double frac = (own - own_levels_[lo]) / (own_levels_[hi] - own_levels_[lo]);
  const double s_lo = curves_[lo].eval(external);
  const double s_hi = curves_[hi].eval(external);
  return std::max(1.0, s_lo + frac * (s_hi - s_lo));
}

}  // namespace hax::contention
