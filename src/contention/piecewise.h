#pragma once

/// \file piecewise.h
/// Monotone piecewise-linear function, the building block of the PCCS
/// slowdown model (Xu et al., MICRO'21 — the model the paper adopts in
/// Sec 3.3). Knots are (x, y) pairs; evaluation interpolates linearly and
/// clamps flat beyond the first/last knot.

#include <span>
#include <vector>

namespace hax::contention {

class PiecewiseLinear {
 public:
  PiecewiseLinear() = default;

  /// Builds from parallel knot arrays. X must be strictly increasing.
  PiecewiseLinear(std::span<const double> xs, std::span<const double> ys);

  /// Appends a knot; x must exceed the previous knot's x.
  void add_knot(double x, double y);

  [[nodiscard]] std::size_t knot_count() const noexcept { return xs_.size(); }
  [[nodiscard]] bool empty() const noexcept { return xs_.empty(); }

  /// Interpolated value; requires at least one knot.
  [[nodiscard]] double eval(double x) const;

  [[nodiscard]] const std::vector<double>& xs() const noexcept { return xs_; }
  [[nodiscard]] const std::vector<double>& ys() const noexcept { return ys_; }

 private:
  std::vector<double> xs_;
  std::vector<double> ys_;
};

}  // namespace hax::contention
