#include "contention/piecewise.h"

#include <algorithm>

#include "common/error.h"

namespace hax::contention {

PiecewiseLinear::PiecewiseLinear(std::span<const double> xs, std::span<const double> ys) {
  HAX_REQUIRE(xs.size() == ys.size(), "knot arrays must have equal length");
  for (std::size_t i = 0; i < xs.size(); ++i) add_knot(xs[i], ys[i]);
}

void PiecewiseLinear::add_knot(double x, double y) {
  HAX_REQUIRE(xs_.empty() || x > xs_.back(), "knot x values must be strictly increasing");
  xs_.push_back(x);
  ys_.push_back(y);
}

double PiecewiseLinear::eval(double x) const {
  HAX_REQUIRE(!xs_.empty(), "eval on empty piecewise function");
  if (x <= xs_.front()) return ys_.front();
  if (x >= xs_.back()) return ys_.back();
  // First knot strictly greater than x.
  const auto it = std::upper_bound(xs_.begin(), xs_.end(), x);
  const std::size_t hi = static_cast<std::size_t>(it - xs_.begin());
  const std::size_t lo = hi - 1;
  const double frac = (x - xs_[lo]) / (xs_[hi] - xs_[lo]);
  return ys_[lo] + frac * (ys_[hi] - ys_[lo]);
}

}  // namespace hax::contention
