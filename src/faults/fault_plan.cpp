#include "faults/fault_plan.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "common/error.h"
#include "common/rng.h"
#include "soc/platform.h"

namespace hax::faults {
namespace {

constexpr TimeMs kInf = std::numeric_limits<TimeMs>::infinity();

/// splitmix64 finalizer: the jitter hash must be a pure function of the
/// key so both backends (and repeated runs) draw identical factors.
std::uint64_t mix(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

const char* to_string(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::Throttle: return "throttle";
    case FaultKind::Stall: return "stall";
    case FaultKind::Failure: return "failure";
    case FaultKind::Bandwidth: return "bandwidth";
  }
  return "?";
}

FaultPlan::FaultPlan(const FaultPlan& other)
    : seed_(other.seed_), jitter_(other.jitter_), events_(other.events_) {}

FaultPlan& FaultPlan::operator=(const FaultPlan& other) {
  if (this == &other) return *this;
  seed_ = other.seed_;
  jitter_ = other.jitter_;
  events_ = other.events_;
  compiled_.store(false, std::memory_order_release);
  change_times_.clear();
  return *this;
}

FaultPlan::FaultPlan(FaultPlan&& other) noexcept
    : seed_(other.seed_), jitter_(other.jitter_), events_(std::move(other.events_)) {}

FaultPlan& FaultPlan::operator=(FaultPlan&& other) noexcept {
  if (this == &other) return *this;
  seed_ = other.seed_;
  jitter_ = other.jitter_;
  events_ = std::move(other.events_);
  compiled_.store(false, std::memory_order_release);
  change_times_.clear();
  return *this;
}

void FaultPlan::add(FaultEvent event) {
  HAX_REQUIRE(!compiled_.load(std::memory_order_acquire),
              "FaultPlan is sealed after the first query");
  events_.push_back(event);
}

FaultPlan& FaultPlan::throttle(soc::PuId pu, TimeMs start, TimeMs end, double factor,
                               TimeMs ramp_ms) {
  HAX_REQUIRE(pu >= 0, "throttle needs a valid PU");
  HAX_REQUIRE(start >= 0.0 && end > start, "throttle window must be ordered");
  HAX_REQUIRE(factor >= 1.0, "throttle slowdown must be >= 1");
  HAX_REQUIRE(ramp_ms >= 0.0 && start + ramp_ms <= end, "ramp must fit in the window");
  add({FaultKind::Throttle, pu, start, end, factor, ramp_ms});
  return *this;
}

FaultPlan& FaultPlan::stall(soc::PuId pu, TimeMs start, TimeMs end) {
  HAX_REQUIRE(pu >= 0, "stall needs a valid PU");
  HAX_REQUIRE(start >= 0.0 && end > start, "stall window must be ordered");
  add({FaultKind::Stall, pu, start, end, 1.0, 0.0});
  return *this;
}

FaultPlan& FaultPlan::fail(soc::PuId pu, TimeMs at) {
  HAX_REQUIRE(pu >= 0, "fail needs a valid PU");
  HAX_REQUIRE(at >= 0.0, "failure time must be >= 0");
  add({FaultKind::Failure, pu, at, kInf, 1.0, 0.0});
  return *this;
}

FaultPlan& FaultPlan::degrade_bandwidth(TimeMs start, TimeMs end, double factor) {
  HAX_REQUIRE(start >= 0.0 && end > start, "bandwidth window must be ordered");
  HAX_REQUIRE(factor > 0.0 && factor <= 1.0, "bandwidth factor must be in (0, 1]");
  add({FaultKind::Bandwidth, soc::kInvalidPu, start, end, factor, 0.0});
  return *this;
}

FaultPlan& FaultPlan::jitter(double amplitude) {
  HAX_REQUIRE(!compiled_.load(std::memory_order_acquire),
              "FaultPlan is sealed after the first query");
  HAX_REQUIRE(amplitude >= 0.0 && amplitude < 1.0, "jitter amplitude must be in [0, 1)");
  jitter_ = amplitude;
  return *this;
}

FaultPlan FaultPlan::random(std::uint64_t seed, const soc::Platform& platform,
                            const RandomOptions& options) {
  HAX_REQUIRE(options.horizon_ms > 0.0, "horizon must be positive");
  HAX_REQUIRE(options.max_slowdown >= 1.2, "max_slowdown must be >= 1.2");
  const std::vector<soc::PuId> pus = platform.schedulable_pus();
  HAX_REQUIRE(!pus.empty(), "platform has no schedulable PUs");

  FaultPlan plan(seed);
  Rng rng(seed);
  const auto pick_pu = [&] { return pus[rng.uniform_index(pus.size())]; };
  const auto window = [&](TimeMs max_len) {
    const TimeMs start = rng.uniform(0.0, options.horizon_ms * 0.9);
    const TimeMs len = rng.uniform(0.05 * max_len + 1e-3, max_len);
    return std::pair<TimeMs, TimeMs>(start, start + len);
  };

  for (int i = 0; i < options.throttle_events; ++i) {
    const auto [start, end] = window(options.horizon_ms * 0.5);
    const double factor = rng.uniform(1.2, options.max_slowdown);
    const TimeMs ramp = rng.uniform(0.0, (end - start) * 0.5);
    plan.throttle(pick_pu(), start, end, factor, ramp);
  }
  for (int i = 0; i < options.stall_events; ++i) {
    const auto [start, end] = window(options.max_stall_ms);
    plan.stall(pick_pu(), start, end);
  }
  if (options.bandwidth_floor < 1.0) {
    const auto [start, end] = window(options.horizon_ms * 0.5);
    plan.degrade_bandwidth(start, end, rng.uniform(options.bandwidth_floor, 1.0));
  }
  plan.jitter(options.jitter_amplitude);
  return plan;
}

FaultPlan FaultPlan::random(std::uint64_t seed, const soc::Platform& platform) {
  return random(seed, platform, RandomOptions());
}

void FaultPlan::compile() const {
  // Double-checked seal: executor workers query a shared plan
  // concurrently from t=0, so first-query compilation must be atomic.
  if (compiled_.load(std::memory_order_acquire)) return;
  LockGuard lock(compile_mu_);
  if (compiled_.load(std::memory_order_relaxed)) return;
  change_times_.clear();
  for (const FaultEvent& e : events_) {
    change_times_.push_back(e.start);
    if (std::isfinite(e.end)) change_times_.push_back(e.end);
    if (e.kind == FaultKind::Throttle && e.ramp_ms > 0.0) {
      for (int s = 1; s < kRampSteps; ++s) {
        change_times_.push_back(e.start + e.ramp_ms * static_cast<double>(s) /
                                              static_cast<double>(kRampSteps));
      }
    }
  }
  std::sort(change_times_.begin(), change_times_.end());
  change_times_.erase(std::unique(change_times_.begin(), change_times_.end()),
                      change_times_.end());
  compiled_.store(true, std::memory_order_release);
}

PuFaultState FaultPlan::pu_state(soc::PuId pu, TimeMs t) const {
  compile();
  PuFaultState state;
  for (const FaultEvent& e : events_) {
    if (e.pu != pu) continue;
    switch (e.kind) {
      case FaultKind::Failure:
        if (t >= e.start) state.alive = false;
        break;
      case FaultKind::Stall:
        if (t >= e.start && t < e.end) state.stalled = true;
        break;
      case FaultKind::Throttle:
        if (t >= e.start && t < e.end) {
          double factor = e.factor;
          if (e.ramp_ms > 0.0 && t < e.start + e.ramp_ms) {
            // Piecewise-constant ramp: step k of kRampSteps applies
            // 1 + (factor-1) * (k+1)/steps, so the final step reaches the
            // full factor exactly where the ramp ends.
            const double step = std::floor((t - e.start) / e.ramp_ms *
                                           static_cast<double>(kRampSteps));
            factor = 1.0 + (e.factor - 1.0) * (step + 1.0) / static_cast<double>(kRampSteps);
          }
          state.slowdown *= factor;
        }
        break;
      case FaultKind::Bandwidth:
        break;
    }
  }
  return state;
}

double FaultPlan::bandwidth_factor(TimeMs t) const {
  compile();
  double factor = 1.0;
  for (const FaultEvent& e : events_) {
    if (e.kind == FaultKind::Bandwidth && t >= e.start && t < e.end) factor *= e.factor;
  }
  return factor;
}

double FaultPlan::jitter_factor(int task, int iteration, int group, int layer,
                                int kind_tag) const noexcept {
  if (jitter_ <= 0.0) return 1.0;
  std::uint64_t h = seed_;
  h = mix(h ^ static_cast<std::uint64_t>(static_cast<std::uint32_t>(task)));
  h = mix(h ^ static_cast<std::uint64_t>(static_cast<std::uint32_t>(iteration)));
  h = mix(h ^ static_cast<std::uint64_t>(static_cast<std::uint32_t>(group)));
  h = mix(h ^ static_cast<std::uint64_t>(static_cast<std::uint32_t>(layer)));
  h = mix(h ^ static_cast<std::uint64_t>(static_cast<std::uint32_t>(kind_tag)));
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;  // uniform [0, 1)
  return 1.0 + jitter_ * (2.0 * u - 1.0);
}

TimeMs FaultPlan::next_change_after(TimeMs t) const {
  compile();
  const auto it = std::upper_bound(change_times_.begin(), change_times_.end(), t);
  return it == change_times_.end() ? kInf : *it;
}

bool FaultPlan::has_permanent_failure() const noexcept {
  return std::any_of(events_.begin(), events_.end(),
                     [](const FaultEvent& e) { return e.kind == FaultKind::Failure; });
}

bool FaultPlan::failed_forever(soc::PuId pu, TimeMs t) const {
  for (const FaultEvent& e : events_) {
    if (e.kind == FaultKind::Failure && e.pu == pu && t >= e.start) return true;
  }
  return false;
}

std::size_t FaultPlan::change_count() const {
  compile();
  return change_times_.size();
}

std::string FaultPlan::describe() const {
  std::ostringstream os;
  for (const FaultEvent& e : events_) {
    os << to_string(e.kind);
    if (e.pu >= 0) os << " pu" << e.pu;
    os << " @[" << e.start << ", ";
    if (std::isfinite(e.end)) {
      os << e.end;
    } else {
      os << "inf";
    }
    os << ")";
    if (e.kind == FaultKind::Throttle) {
      os << " x" << e.factor;
      if (e.ramp_ms > 0.0) os << " ramp " << e.ramp_ms << "ms";
    }
    if (e.kind == FaultKind::Bandwidth) os << " x" << e.factor;
    os << '\n';
  }
  if (jitter_ > 0.0) os << "jitter +-" << jitter_ * 100.0 << "%\n";
  return os.str();
}

}  // namespace hax::faults
