#pragma once

/// \file fault_plan.h
/// Deterministic fault injection for the ground-truth backends. A
/// FaultPlan is a scripted timeline of hardware misbehaviour — per-PU
/// slowdown ramps (thermal throttling / DVFS steps), transient stalls,
/// hard PU failures, EMC bandwidth degradation, and per-layer timing
/// jitter — that perturbs execution identically wherever it is applied:
/// the discrete-event simulator recomputes progress rates at every fault
/// boundary, and the wall-clock executor stretches its timed kernels by
/// the same factors. Replaying the same (seed, plan) is bit-identical in
/// the simulator and applies identical perturbation factors in the
/// runtime (whose wall-clock sleeps keep their usual OS jitter).
///
/// Plans are immutable once sealed by the first query: build the script
/// with the chainable mutators (or FaultPlan::random), then hand a const
/// pointer to SimOptions / ExecutorOptions. All times are simulated
/// milliseconds from the start of the run the plan is attached to.

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/annotated.h"
#include "common/lock_ranks.h"
#include "common/types.h"
#include "soc/processing_unit.h"

namespace hax::soc {
class Platform;
}

namespace hax::faults {

enum class FaultKind : std::uint8_t {
  Throttle,   ///< PU compute slowdown (>= 1), optionally ramped in
  Stall,      ///< PU makes no progress during the window
  Failure,    ///< PU dead from `start` on (no recovery)
  Bandwidth,  ///< EMC capacity scaled by `factor` (<= 1) during the window
};

[[nodiscard]] const char* to_string(FaultKind kind) noexcept;

/// One scripted fault. Plain data; see the FaultPlan mutators for the
/// field contracts per kind.
struct FaultEvent {
  FaultKind kind = FaultKind::Throttle;
  soc::PuId pu = soc::kInvalidPu;  ///< target PU (ignored for Bandwidth)
  TimeMs start = 0.0;
  TimeMs end = 0.0;      ///< exclusive; Failure ignores it
  double factor = 1.0;   ///< Throttle: slowdown >= 1; Bandwidth: scale in (0, 1]
  TimeMs ramp_ms = 0.0;  ///< Throttle: linear ramp-in span (discretized)
};

/// Instantaneous condition of one PU under a plan.
struct PuFaultState {
  bool alive = true;       ///< false once a Failure fired
  bool stalled = false;    ///< inside a Stall window
  double slowdown = 1.0;   ///< combined compute slowdown (>= 1)

  /// Progress rate multiplier: 0 when dead or stalled, else 1/slowdown.
  [[nodiscard]] double rate() const noexcept {
    return (alive && !stalled) ? 1.0 / slowdown : 0.0;
  }
};

class FaultPlan {
 public:
  /// `seed` drives the per-layer jitter stream (and random()); two plans
  /// with equal scripts and seeds are indistinguishable.
  explicit FaultPlan(std::uint64_t seed = 0x5EEDF4017ull) noexcept : seed_(seed) {}

  /// Copies/moves transfer the script only; the new plan is unsealed and
  /// recompiles (deterministically, to the identical timeline) on its
  /// first query. Needed because the seal is guarded by a mutex.
  FaultPlan(const FaultPlan& other);
  FaultPlan& operator=(const FaultPlan& other);
  FaultPlan(FaultPlan&& other) noexcept;
  FaultPlan& operator=(FaultPlan&& other) noexcept;

  // ---- script builders (chainable; must precede the first query) --------
  /// Compute slowdown `factor` (>= 1) on `pu` during [start, end). A
  /// positive `ramp_ms` ramps the slowdown in linearly over that span,
  /// discretized into kRampSteps piecewise-constant steps so both
  /// backends see identical factors; recovery at `end` is instant.
  FaultPlan& throttle(soc::PuId pu, TimeMs start, TimeMs end, double factor,
                      TimeMs ramp_ms = 0.0);
  /// `pu` makes zero progress during [start, end) (transient wedge).
  FaultPlan& stall(soc::PuId pu, TimeMs start, TimeMs end);
  /// `pu` dies at `at` and never recovers.
  FaultPlan& fail(soc::PuId pu, TimeMs at);
  /// EMC capacity is scaled by `factor` (0 < factor <= 1) during [start, end).
  FaultPlan& degrade_bandwidth(TimeMs start, TimeMs end, double factor);
  /// Multiplicative per-layer timing jitter: each (task, iteration,
  /// segment) draws a deterministic factor uniform in [1-a, 1+a] from the
  /// plan seed. 0 <= amplitude < 1.
  FaultPlan& jitter(double amplitude);

  /// Knobs for random plan generation.
  struct RandomOptions {
    int throttle_events = 2;
    int stall_events = 1;
    TimeMs horizon_ms = 1000.0;      ///< events are placed inside [0, horizon)
    double max_slowdown = 3.0;       ///< throttle factors drawn from [1.2, max]
    TimeMs max_stall_ms = 50.0;
    double bandwidth_floor = 0.6;    ///< one bandwidth dip to [floor, 1)
    double jitter_amplitude = 0.05;
  };

  /// Seed-deterministic random plan over the platform's schedulable PUs.
  [[nodiscard]] static FaultPlan random(std::uint64_t seed, const soc::Platform& platform,
                                        const RandomOptions& options);
  [[nodiscard]] static FaultPlan random(std::uint64_t seed, const soc::Platform& platform);

  // ---- queries (seal the plan) ------------------------------------------
  [[nodiscard]] PuFaultState pu_state(soc::PuId pu, TimeMs t) const;
  /// EMC capacity scale at `t` (product of active Bandwidth windows).
  [[nodiscard]] double bandwidth_factor(TimeMs t) const;
  /// Deterministic per-segment duration multiplier. `kind_tag`
  /// disambiguates segments sharing (group, layer) keys (exec vs.
  /// transition legs).
  [[nodiscard]] double jitter_factor(int task, int iteration, int group, int layer,
                                     int kind_tag = 0) const noexcept;
  /// Earliest scripted state change strictly after `t`; +infinity when
  /// the plan is constant from `t` on. Backends use this to bound event
  /// steps / kernel sleep chunks so ramps and windows take effect.
  [[nodiscard]] TimeMs next_change_after(TimeMs t) const;

  /// True when some PU dies and never recovers — runs against such a plan
  /// need a frame timeout or they can block forever.
  [[nodiscard]] bool has_permanent_failure() const noexcept;
  /// True when `pu` is dead at `t` with no recovery ever scheduled.
  [[nodiscard]] bool failed_forever(soc::PuId pu, TimeMs t) const;

  [[nodiscard]] bool empty() const noexcept { return events_.empty() && jitter_ <= 0.0; }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }
  [[nodiscard]] double jitter_amplitude() const noexcept { return jitter_; }
  [[nodiscard]] const std::vector<FaultEvent>& events() const noexcept { return events_; }
  /// Number of breakpoints in the compiled timeline (event-budget sizing).
  [[nodiscard]] std::size_t change_count() const;

  /// One line per event, for logs and the recovery demo.
  [[nodiscard]] std::string describe() const;

  /// Ramp discretization granularity (steps per ramp).
  static constexpr int kRampSteps = 8;

 private:
  void add(FaultEvent event);
  /// Builds + sorts change_times_ once (lazy, const). Thread-safe:
  /// executor workers query a shared plan concurrently from the start,
  /// so the seal is a double-checked atomic behind compile_mu_.
  void compile() const;

  std::uint64_t seed_;              ///< builder state, set before the plan is shared
  double jitter_ = 0.0;             ///< builder state, set before the plan is shared
  std::vector<FaultEvent> events_;  ///< builder state, set before the plan is shared

  mutable Mutex compile_mu_{HAX_MUTEX_RANK(FaultPlan_compile_mu_)};
  mutable std::atomic<bool> compiled_{false};
  /// Sorted, unique. Deliberately NOT HAX_GUARDED_BY(compile_mu_): after
  /// the seal, readers access it without the mutex. The publication
  /// protocol makes this safe — compile() writes change_times_ and then
  /// release-stores compiled_; every reader acquire-loads compiled_ first
  /// (either the fast path in compile() or the HAX_REQUIRE seal checks),
  /// so the vector is immutable by the time any thread sees it.
  mutable std::vector<TimeMs> change_times_;
};

}  // namespace hax::faults
