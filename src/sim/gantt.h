#pragma once

/// \file gantt.h
/// ASCII Gantt rendering of execution traces: one row per PU, time
/// bucketed into fixed-width columns, each cell showing which DNN held
/// the PU (and '*' rows marking memory-contended stretches). This is the
/// terminal-friendly counterpart of the Chrome-trace export and the
/// visual form of the paper's Fig. 1 timelines.

#include <string>

#include "sim/trace.h"
#include "soc/platform.h"

namespace hax::sim {

struct GanttOptions {
  int width = 80;          ///< columns used for the time axis
  bool show_contention = true;  ///< add a '*' sub-row where rate < 1
};

/// Renders the trace. Each PU contributes one or two lines:
///   GPU  |000000111111  00|
///        |      ****      |   <- contended stretches (rate < 1)
/// where digits are DNN ids and spaces are idle time.
[[nodiscard]] std::string render_gantt(const Trace& trace, const soc::Platform& platform,
                                       const GanttOptions& options = {});

}  // namespace hax::sim
