#pragma once

/// \file engine.h
/// Discrete-event simulator for concurrent DNN execution on a shared-
/// memory SoC. This is the repository's ground truth — the stand-in for
/// the paper's real Jetson/Snapdragon runs.
///
/// Semantics:
///  - Each task executes its layer groups in order on the PUs given by its
///    assignment; a PU runs one segment at a time (FIFO among ready tasks).
///  - Crossing to a different PU at a group boundary inserts the
///    transition OUT (flush+reformat on the source PU) and IN (load on the
///    destination PU) segments from the TransitionModel.
///  - While multiple segments run concurrently, the EMC arbitrates their
///    requested bandwidths (max-min fair, with a multi-requester
///    efficiency penalty); a segment's progress rate is achieved/requested
///    bandwidth. Rates are recomputed at every start/finish event — these
///    stretches are exactly the paper's "contention intervals" (Fig. 4).
///  - Simulation is at *layer* granularity, so demand varies within a
///    group and the scheduler's group-averaged predictions are genuinely
///    approximate, as on real hardware.

#include <optional>
#include <vector>

#include "faults/fault_plan.h"
#include "grouping/grouping.h"
#include "perf/cost_model.h"
#include "perf/transition.h"
#include "sim/trace.h"
#include "soc/platform.h"

namespace hax::sim {

/// One DNN instance in the workload.
struct DnnTask {
  const grouping::GroupedNetwork* net = nullptr;  ///< non-owning; must outlive the run
  std::vector<soc::PuId> assignment;              ///< PU per layer group

  /// Frame-level dependency: iteration k of this task starts only after
  /// iteration k of task `depends_on` finished (pipelined DNNs,
  /// Scenario 3/4). -1 = independent.
  int depends_on = -1;

  /// Number of back-to-back frames this task processes (Table 8's
  /// iteration balancing; throughput scenarios).
  int iterations = 1;
};

struct SimOptions {
  /// All tasks must finish iteration k before any starts k+1 (the
  /// autonomous-loop barrier of Scenarios 2 and 4).
  bool loop_barrier = false;

  /// Constant extra EMC traffic from a non-PU agent (the CPU running the
  /// Z3-equivalent solver in Table 7's overhead experiment).
  GBps background_traffic_gbps = 0.0;

  bool record_trace = true;

  /// Optional fault-injection timeline (non-owning; must outlive the
  /// run). Progress rates are recomputed at every fault boundary exactly
  /// like at start/finish events, so the perturbed run stays a proper
  /// discrete-event simulation and replays bit-identically for the same
  /// (seed, plan). A schedule whose work lands on a permanently failed PU
  /// makes the run throw PreconditionError ("stalled with no future fault
  /// change") rather than spin — the self-healing layer exists to keep
  /// such schedules out of execution.
  const faults::FaultPlan* faults = nullptr;
};

/// Per-iteration execution span.
struct IterationSpan {
  TimeMs start = 0.0;
  TimeMs end = 0.0;
};

struct TaskResult {
  std::vector<IterationSpan> iterations;
  TimeMs finish_ms = 0.0;      ///< completion of the last iteration
  TimeMs standalone_ms = 0.0;  ///< per-iteration time with no contention/queueing
  /// Mean over iterations of span / standalone (>= 1 under contention).
  double avg_slowdown = 1.0;
};

struct SimResult {
  TimeMs makespan_ms = 0.0;
  std::vector<TaskResult> tasks;
  Trace trace;

  /// Aggregate throughput in frames per second: total iterations across
  /// tasks / makespan.
  [[nodiscard]] double total_fps() const noexcept;
};

class Engine {
 public:
  explicit Engine(const soc::Platform& platform, SimOptions options = {});

  /// Runs the workload to completion. Validates that every group's
  /// assigned PU supports it.
  [[nodiscard]] SimResult run(const std::vector<DnnTask>& tasks) const;

  [[nodiscard]] const soc::Platform& platform() const noexcept { return *platform_; }
  [[nodiscard]] const perf::CostModel& cost_model() const noexcept { return cost_; }

 private:
  const soc::Platform* platform_;
  SimOptions options_;
  perf::CostModel cost_;
  perf::TransitionModel transition_;
};

}  // namespace hax::sim
