#include "sim/trace.h"

#include <sstream>

namespace hax::sim {

const char* to_string(SegmentKind kind) noexcept {
  switch (kind) {
    case SegmentKind::Exec: return "exec";
    case SegmentKind::TransitionOut: return "tr-out";
    case SegmentKind::TransitionIn: return "tr-in";
  }
  return "?";
}

TimeMs Trace::pu_busy_ms(soc::PuId pu) const {
  TimeMs total = 0.0;
  for (const TraceRecord& r : records_) {
    if (r.pu == pu) total += r.end - r.start;
  }
  return total;
}

std::string Trace::to_string() const {
  std::ostringstream os;
  for (const TraceRecord& r : records_) {
    os << "t" << r.task << " it" << r.iteration << " g" << r.group;
    if (r.layer >= 0) os << " L" << r.layer;
    os << " " << sim::to_string(r.kind) << " pu" << r.pu << " [" << r.start << ", " << r.end
       << ") rate=" << r.rate << '\n';
  }
  return os.str();
}

}  // namespace hax::sim
