#include "sim/gantt.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <vector>

#include "common/error.h"

namespace hax::sim {

std::string render_gantt(const Trace& trace, const soc::Platform& platform,
                         const GanttOptions& options) {
  HAX_REQUIRE(options.width >= 10, "gantt width must be >= 10");
  HAX_REQUIRE(!trace.empty(), "gantt needs a recorded trace");

  TimeMs end = 0.0;
  for (const TraceRecord& r : trace.records()) end = std::max(end, r.end);
  HAX_REQUIRE(end > 0.0, "trace has zero duration");
  const double ms_per_col = end / options.width;

  std::ostringstream os;
  std::size_t name_width = 0;
  for (const soc::ProcessingUnit& pu : platform.pus()) {
    name_width = std::max(name_width, pu.name().size());
  }

  for (const soc::ProcessingUnit& pu : platform.pus()) {
    std::string row(static_cast<std::size_t>(options.width), ' ');
    std::string contended(static_cast<std::size_t>(options.width), ' ');
    bool any = false;
    bool any_contended = false;
    for (const TraceRecord& r : trace.records()) {
      if (r.pu != pu.id()) continue;
      any = true;
      const int c0 = std::clamp(static_cast<int>(r.start / ms_per_col), 0, options.width - 1);
      const int c1 = std::clamp(static_cast<int>((r.end - 1e-12) / ms_per_col), c0,
                                options.width - 1);
      const char glyph = r.kind == SegmentKind::Exec
                             ? static_cast<char>('0' + r.task % 10)
                             : 't';  // transition legs
      for (int c = c0; c <= c1; ++c) {
        row[static_cast<std::size_t>(c)] = glyph;
        if (r.rate < 1.0 - 1e-9) {
          contended[static_cast<std::size_t>(c)] = '*';
          any_contended = true;
        }
      }
    }
    if (!any) continue;
    os << pu.name() << std::string(name_width - pu.name().size(), ' ') << " |" << row
       << "|\n";
    if (options.show_contention && any_contended) {
      os << std::string(name_width, ' ') << " |" << contended << "|\n";
    }
  }

  char footer[96];
  std::snprintf(footer, sizeof(footer), "%*s 0%*s%.2f ms", static_cast<int>(name_width), "",
                options.width - 1, "", end);
  os << footer << '\n';
  return os.str();
}

}  // namespace hax::sim
