#pragma once

/// \file trace_export.h
/// Exports simulation traces in the Chrome trace-event format
/// (chrome://tracing, Perfetto) so schedules can be inspected visually:
/// one row per PU, one slice per layer-group stretch, with contention
/// rate and DNN id attached as arguments.

#include <string>

#include "sim/trace.h"
#include "soc/platform.h"

namespace hax::sim {

/// Renders the trace as a Chrome trace-event JSON document. Timestamps
/// are microseconds (the format's unit); each PU appears as a "thread"
/// named after the platform's PU.
[[nodiscard]] std::string to_chrome_trace(const Trace& trace, const soc::Platform& platform);

/// Writes to `path`; throws std::runtime_error on I/O failure.
void write_chrome_trace(const Trace& trace, const soc::Platform& platform,
                        const std::string& path);

}  // namespace hax::sim
