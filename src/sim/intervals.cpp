#include "sim/intervals.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "common/error.h"

namespace hax::sim {

IntervalAnalysis::IntervalAnalysis(const Trace& trace) {
  HAX_REQUIRE(!trace.empty(), "interval analysis needs a recorded trace");

  // Cut points: every record boundary.
  std::vector<TimeMs> cuts;
  cuts.reserve(trace.records().size() * 2);
  for (const TraceRecord& r : trace.records()) {
    cuts.push_back(r.start);
    cuts.push_back(r.end);
  }
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end(),
                         [](TimeMs a, TimeMs b) { return std::abs(a - b) < 1e-12; }),
             cuts.end());

  // Records sorted by start let us sweep instead of scanning per interval.
  std::vector<const TraceRecord*> records;
  records.reserve(trace.records().size());
  for (const TraceRecord& r : trace.records()) records.push_back(&r);
  std::sort(records.begin(), records.end(),
            [](const TraceRecord* a, const TraceRecord* b) { return a->start < b->start; });

  std::size_t next = 0;
  std::vector<const TraceRecord*> open;
  for (std::size_t i = 0; i + 1 < cuts.size(); ++i) {
    const TimeMs lo = cuts[i];
    const TimeMs hi = cuts[i + 1];
    if (hi - lo < 1e-12) continue;
    while (next < records.size() && records[next]->start <= lo + 1e-12) {
      open.push_back(records[next]);
      ++next;
    }
    open.erase(std::remove_if(open.begin(), open.end(),
                              [&](const TraceRecord* r) { return r->end <= lo + 1e-12; }),
               open.end());
    if (open.empty()) continue;

    ContentionInterval interval;
    interval.start = lo;
    interval.end = hi;
    // One record per task can be active at a time (a task runs one
    // segment at once); collect sorted by task id.
    std::map<int, double> by_task;
    for (const TraceRecord* r : open) by_task[r->task] = r->rate;
    for (const auto& [task, rate] : by_task) {
      interval.active_tasks.push_back(task);
      interval.rates.push_back(rate);
    }
    intervals_.push_back(std::move(interval));
  }
}

TaskContentionStats IntervalAnalysis::task_stats(int task) const {
  TaskContentionStats stats;
  stats.task = task;
  for (const ContentionInterval& iv : intervals_) {
    for (std::size_t i = 0; i < iv.active_tasks.size(); ++i) {
      if (iv.active_tasks[i] != task) continue;
      stats.busy_ms += iv.duration();
      stats.ideal_ms += iv.duration() * iv.rates[i];
    }
  }
  return stats;
}

TimeMs IntervalAnalysis::time_at_concurrency(int min_concurrency) const {
  TimeMs total = 0.0;
  for (const ContentionInterval& iv : intervals_) {
    if (iv.concurrency() >= min_concurrency) total += iv.duration();
  }
  return total;
}

double IntervalAnalysis::contended_fraction(double tolerance) const {
  TimeMs busy = 0.0;
  TimeMs contended = 0.0;
  for (const ContentionInterval& iv : intervals_) {
    for (double rate : iv.rates) {
      busy += iv.duration();
      if (rate < 1.0 - tolerance) contended += iv.duration();
    }
  }
  return busy > 0.0 ? contended / busy : 0.0;
}

std::string IntervalAnalysis::render(int max_intervals) const {
  std::ostringstream os;
  int shown = 0;
  for (const ContentionInterval& iv : intervals_) {
    if (shown++ >= max_intervals) {
      os << "... (" << intervals_.size() - static_cast<std::size_t>(max_intervals)
         << " more intervals)\n";
      break;
    }
    os << "[" << iv.start << ", " << iv.end << ")";
    for (std::size_t i = 0; i < iv.active_tasks.size(); ++i) {
      os << "  task" << iv.active_tasks[i] << "@" << iv.rates[i];
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace hax::sim
