#include "sim/trace_export.h"

#include <fstream>

#include "common/json.h"

namespace hax::sim {

std::string to_chrome_trace(const Trace& trace, const soc::Platform& platform) {
  json::Array events;

  // Thread-name metadata: one "thread" per PU.
  for (const soc::ProcessingUnit& pu : platform.pus()) {
    json::Object args;
    args.emplace("name", pu.name());
    json::Object meta;
    meta.emplace("ph", "M");
    meta.emplace("name", "thread_name");
    meta.emplace("pid", 1);
    meta.emplace("tid", pu.id());
    meta.emplace("args", std::move(args));
    events.emplace_back(std::move(meta));
  }

  for (const TraceRecord& r : trace.records()) {
    json::Object args;
    args.emplace("dnn", r.task);
    args.emplace("iteration", r.iteration);
    args.emplace("group", r.group);
    if (r.layer >= 0) args.emplace("layer", r.layer);
    args.emplace("rate", r.rate);

    json::Object event;
    std::string name = "dnn" + std::to_string(r.task) + " g" + std::to_string(r.group);
    if (r.kind != SegmentKind::Exec) name += std::string(" ") + to_string(r.kind);
    event.emplace("name", std::move(name));
    event.emplace("ph", "X");  // complete event
    event.emplace("pid", 1);
    event.emplace("tid", r.pu);
    event.emplace("ts", r.start * 1000.0);                 // ms -> us
    event.emplace("dur", (r.end - r.start) * 1000.0);
    event.emplace("args", std::move(args));
    events.emplace_back(std::move(event));
  }

  json::Object doc;
  doc.emplace("traceEvents", std::move(events));
  doc.emplace("displayTimeUnit", "ms");
  return json::Value(std::move(doc)).dump();
}

void write_chrome_trace(const Trace& trace, const soc::Platform& platform,
                        const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("cannot open '" + path + "' for writing");
  out << to_chrome_trace(trace, platform) << '\n';
}

}  // namespace hax::sim
