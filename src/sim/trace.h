#pragma once

/// \file trace.h
/// Execution trace emitted by the simulator: one record per contiguous
/// stretch of a segment running at a constant contention rate. Used by the
/// Fig. 1 case-study bench to visualize schedules and by tests to assert
/// interval-level properties (PU exclusivity, dependency ordering).

#include <string>
#include <vector>

#include "common/types.h"
#include "soc/processing_unit.h"

namespace hax::sim {

enum class SegmentKind : std::uint8_t { Exec, TransitionOut, TransitionIn };

[[nodiscard]] const char* to_string(SegmentKind kind) noexcept;

struct TraceRecord {
  int task = 0;        ///< workload task index
  int iteration = 0;   ///< frame index
  int group = 0;       ///< layer-group index within the task's network
  int layer = -1;      ///< network layer index (-1 for transitions)
  SegmentKind kind = SegmentKind::Exec;
  soc::PuId pu = 0;
  TimeMs start = 0.0;
  TimeMs end = 0.0;
  double rate = 1.0;   ///< progress rate during this stretch (1 = no contention)
};

class Trace {
 public:
  void add(TraceRecord record) { records_.push_back(record); }
  [[nodiscard]] const std::vector<TraceRecord>& records() const noexcept { return records_; }
  [[nodiscard]] bool empty() const noexcept { return records_.empty(); }

  /// Total busy time of a PU over the trace.
  [[nodiscard]] TimeMs pu_busy_ms(soc::PuId pu) const;

  /// Renders an ASCII summary (one line per record), for debugging.
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<TraceRecord> records_;
};

}  // namespace hax::sim
