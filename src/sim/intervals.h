#pragma once

/// \file intervals.h
/// Contention-interval analysis (the concept Fig. 4 illustrates): the
/// execution timeline is cut at every layer/segment start or end; within
/// each interval the set of co-running layers — and therefore each PU's
/// slowdown — is constant. This module recovers those intervals from a
/// simulation trace, quantifying how much extra time each task spent due
/// to shared-memory contention at each concurrency level.

#include <string>
#include <vector>

#include "sim/trace.h"

namespace hax::sim {

/// One contention interval (t_i, t_{i+1}) of Eq. 8.
struct ContentionInterval {
  TimeMs start = 0.0;
  TimeMs end = 0.0;
  /// Tasks actively executing during the interval (sorted, unique).
  std::vector<int> active_tasks;
  /// Per-active-task progress rate (parallel to active_tasks); 1 = no
  /// contention, 0.5 = the layer ran at half speed.
  std::vector<double> rates;

  [[nodiscard]] TimeMs duration() const noexcept { return end - start; }
  [[nodiscard]] int concurrency() const noexcept {
    return static_cast<int>(active_tasks.size());
  }
};

/// Aggregate contention statistics for one task over a trace.
struct TaskContentionStats {
  int task = 0;
  TimeMs busy_ms = 0.0;       ///< wall time its segments occupied a PU
  TimeMs ideal_ms = 0.0;      ///< the same work at rate 1 (no contention)
  /// busy / ideal: the pure memory-contention slowdown, queueing excluded
  /// (this is the quantity Fig. 6 plots).
  [[nodiscard]] double contention_slowdown() const noexcept {
    return ideal_ms > 0.0 ? busy_ms / ideal_ms : 1.0;
  }
};

class IntervalAnalysis {
 public:
  /// Builds the interval timeline from a trace. Requires the trace to be
  /// non-empty (run the engine with record_trace = true).
  explicit IntervalAnalysis(const Trace& trace);

  [[nodiscard]] const std::vector<ContentionInterval>& intervals() const noexcept {
    return intervals_;
  }

  /// Per-task contention statistics.
  [[nodiscard]] TaskContentionStats task_stats(int task) const;

  /// Total time during which at least `min_concurrency` tasks co-ran.
  [[nodiscard]] TimeMs time_at_concurrency(int min_concurrency) const;

  /// Fraction of all busy time spent slowed (rate < 1 - tolerance).
  [[nodiscard]] double contended_fraction(double tolerance = 1e-9) const;

  /// ASCII rendering of the timeline (one line per interval) — the
  /// reproduction's version of Fig. 4.
  [[nodiscard]] std::string render(int max_intervals = 64) const;

 private:
  std::vector<ContentionInterval> intervals_;
};

}  // namespace hax::sim
