#include "sim/engine.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>

#include "common/error.h"

namespace hax::sim {
namespace {

/// One schedulable unit of work: a layer's execution or a transition leg.
struct Segment {
  SegmentKind kind = SegmentKind::Exec;
  soc::PuId pu = 0;
  TimeMs duration = 0.0;  ///< standalone duration
  GBps demand = 0.0;      ///< requested memory throughput while running
  int group = 0;
  int layer = -1;
};

enum class Phase : std::uint8_t { Blocked, WaitingPu, Running, Done };

struct TaskState {
  std::vector<Segment> segments;  ///< one iteration's worth
  int iterations = 1;
  int depends_on = -1;

  Phase phase = Phase::Blocked;
  int iter = 0;            ///< current iteration index
  std::size_t seg = 0;     ///< next/current segment within the iteration
  TimeMs remaining = 0.0;  ///< standalone-ms left of the running segment
  int iters_done = 0;

  TimeMs iter_start = 0.0;
  bool iter_started = false;

  // Trace-stretch coalescing.
  TimeMs stretch_start = 0.0;
  double stretch_rate = -1.0;

  std::vector<IterationSpan> spans;
};

constexpr double kTimeTolerance = 1e-9;

}  // namespace

double SimResult::total_fps() const noexcept {
  if (makespan_ms <= 0.0) return 0.0;
  std::size_t total_iters = 0;
  for (const TaskResult& t : tasks) total_iters += t.iterations.size();
  return static_cast<double>(total_iters) / makespan_ms * 1000.0;
}

Engine::Engine(const soc::Platform& platform, SimOptions options)
    : platform_(&platform), options_(options), cost_(platform), transition_(platform) {
  HAX_REQUIRE(options_.background_traffic_gbps >= 0.0, "background traffic must be >= 0");
}

SimResult Engine::run(const std::vector<DnnTask>& tasks) const {
  HAX_REQUIRE(!tasks.empty(), "workload must contain at least one task");
  const int n_tasks = static_cast<int>(tasks.size());

  // ---- build per-task segment lists -------------------------------------
  std::vector<TaskState> states(tasks.size());
  for (int t = 0; t < n_tasks; ++t) {
    const DnnTask& task = tasks[static_cast<std::size_t>(t)];
    HAX_REQUIRE(task.net != nullptr, "task network must be set");
    HAX_REQUIRE(task.iterations >= 1, "task iterations must be >= 1");
    HAX_REQUIRE(task.depends_on >= -1 && task.depends_on < n_tasks && task.depends_on != t,
                "bad task dependency");
    const grouping::GroupedNetwork& gn = *task.net;
    HAX_REQUIRE(static_cast<int>(task.assignment.size()) == gn.group_count(),
                "assignment size must equal group count");

    TaskState& st = states[static_cast<std::size_t>(t)];
    st.iterations = task.iterations;
    st.depends_on = task.depends_on;

    for (int g = 0; g < gn.group_count(); ++g) {
      const soc::PuId pu = task.assignment[static_cast<std::size_t>(g)];
      HAX_REQUIRE(gn.supported(g, platform_->pu(pu).params().kind),
                  "group " + gn.group(g).label + " not supported on assigned PU");
      if (g > 0) {
        const soc::PuId prev = task.assignment[static_cast<std::size_t>(g - 1)];
        if (prev != pu) {
          // Transition legs are pure memory operations at stream bandwidth.
          const TimeMs out_ms = transition_.out_cost(gn, g - 1, prev);
          const TimeMs in_ms = transition_.in_cost(gn, g, pu);
          if (out_ms > 0.0) {
            st.segments.push_back({SegmentKind::TransitionOut, prev, out_ms,
                                   platform_->pu(prev).params().max_stream_gbps, g - 1, -1});
          }
          if (in_ms > 0.0) {
            st.segments.push_back({SegmentKind::TransitionIn, pu, in_ms,
                                   platform_->pu(pu).params().max_stream_gbps, g, -1});
          }
        }
      }
      const grouping::LayerGroup& grp = gn.group(g);
      for (int layer = grp.first; layer <= grp.last; ++layer) {
        const nn::Layer& l = gn.network().layer(layer);
        const TimeMs dur = cost_.layer_time(l, pu);
        if (dur <= 0.0) continue;
        st.segments.push_back({SegmentKind::Exec, pu, dur, cost_.layer_demand(l, pu), g, layer});
      }
    }
    HAX_REQUIRE(!st.segments.empty(), "task has no work");
  }

  // ---- event loop --------------------------------------------------------
  SimResult result;
  result.tasks.resize(tasks.size());

  std::vector<std::deque<int>> pu_queue(static_cast<std::size_t>(platform_->pu_count()));
  std::vector<int> pu_running(static_cast<std::size_t>(platform_->pu_count()), -1);
  TimeMs now = 0.0;

  const auto all_done = [&] {
    return std::all_of(states.begin(), states.end(),
                       [](const TaskState& s) { return s.phase == Phase::Done; });
  };

  const auto barrier_ok = [&](const TaskState& st) {
    if (!options_.loop_barrier) return true;
    for (const TaskState& other : states) {
      const int required = std::min(st.iter, other.iterations);
      if (other.iters_done < required) return false;
    }
    return true;
  };

  const faults::FaultPlan* plan = options_.faults;

  // Segment standalone duration with the plan's deterministic per-layer
  // jitter applied (keyed so the same segment of the same iteration draws
  // the same factor on every replay).
  const auto jittered = [&](int t, const TaskState& st) {
    const Segment& seg = st.segments[st.seg];
    if (plan == nullptr) return seg.duration;
    return seg.duration * plan->jitter_factor(t, st.iter, seg.group, seg.layer,
                                              static_cast<int>(seg.kind));
  };

  const auto try_unblock = [&] {
    for (int t = 0; t < n_tasks; ++t) {
      TaskState& st = states[static_cast<std::size_t>(t)];
      if (st.phase != Phase::Blocked) continue;
      if (st.depends_on >= 0) {
        const TaskState& dep = states[static_cast<std::size_t>(st.depends_on)];
        const int required = std::min(st.iter + 1, dep.iterations);
        if (dep.iters_done < required) continue;
      }
      if (!barrier_ok(st)) continue;
      st.phase = Phase::WaitingPu;
      st.remaining = jittered(t, st);
      pu_queue[static_cast<std::size_t>(st.segments[st.seg].pu)].push_back(t);
    }
  };

  const auto grant_pus = [&] {
    for (std::size_t pu = 0; pu < pu_queue.size(); ++pu) {
      if (pu_running[pu] >= 0 || pu_queue[pu].empty()) continue;
      const int t = pu_queue[pu].front();
      pu_queue[pu].pop_front();
      TaskState& st = states[static_cast<std::size_t>(t)];
      HAX_ASSERT(st.phase == Phase::WaitingPu);
      st.phase = Phase::Running;
      pu_running[pu] = t;
      if (!st.iter_started) {
        st.iter_started = true;
        st.iter_start = now;
      }
      st.stretch_start = now;
      st.stretch_rate = -1.0;  // force a fresh trace stretch
    }
  };

  const auto flush_stretch = [&](int t, double rate, TimeMs end) {
    TaskState& st = states[static_cast<std::size_t>(t)];
    if (!options_.record_trace) return;
    const Segment& seg = st.segments[st.seg];
    if (end > st.stretch_start) {
      result.trace.add(TraceRecord{t, st.iter, seg.group, seg.layer, seg.kind, seg.pu,
                                   st.stretch_start, end, rate});
    }
    st.stretch_start = end;
  };

  try_unblock();
  grant_pus();

  // Safety valve against logic bugs: generous bound on event count.
  std::size_t total_segments = 0;
  for (const TaskState& st : states) {
    total_segments += st.segments.size() * static_cast<std::size_t>(st.iterations);
  }
  const std::size_t max_events =
      16 * total_segments + 1024 + (plan != nullptr ? 16 * plan->change_count() : 0);

  for (std::size_t event = 0; event < max_events; ++event) {
    if (all_done()) break;

    // Collect running segments and their demands.
    std::vector<GBps> demands(static_cast<std::size_t>(platform_->pu_count()) + 1, 0.0);
    bool any_running = false;
    for (std::size_t pu = 0; pu < pu_running.size(); ++pu) {
      const int t = pu_running[pu];
      if (t < 0) continue;
      any_running = true;
      demands[pu] = states[static_cast<std::size_t>(t)].segments[states[static_cast<std::size_t>(t)].seg].demand;
    }
    HAX_ASSERT(any_running);  // otherwise the workload deadlocked
    demands.back() = options_.background_traffic_gbps;

    // EMC arbitration, against a degraded controller when the plan says
    // bandwidth is down at this instant.
    const double bw_factor = plan != nullptr ? plan->bandwidth_factor(now) : 1.0;
    std::vector<GBps> achieved;
    if (bw_factor < 1.0) {
      soc::MemoryParams degraded = platform_->memory().params();
      degraded.total_gbps *= bw_factor;
      achieved = soc::MemorySystem(degraded).arbitrate(demands);
    } else {
      achieved = platform_->memory().arbitrate(demands);
    }

    // Progress rates and the time to the next completion. A faulted PU
    // contributes rate 0 (stall/failure) or a throttled rate; the next
    // fault boundary is an event like any completion, so piecewise fault
    // states integrate exactly.
    std::vector<double> rates(pu_running.size(), 1.0);
    TimeMs dt = std::numeric_limits<TimeMs>::infinity();
    for (std::size_t pu = 0; pu < pu_running.size(); ++pu) {
      const int t = pu_running[pu];
      if (t < 0) continue;
      const TaskState& st = states[static_cast<std::size_t>(t)];
      double rate = 1.0;
      if (demands[pu] > 0.0) rate = achieved[pu] / demands[pu];
      if (plan != nullptr) {
        rate *= plan->pu_state(static_cast<soc::PuId>(pu), now).rate();
      }
      HAX_ASSERT(rate >= 0.0);
      rates[pu] = rate;
      if (rate > 0.0) dt = std::min(dt, st.remaining / rate);
    }
    if (plan != nullptr) {
      const TimeMs next_change = plan->next_change_after(now);
      if (std::isfinite(next_change)) dt = std::min(dt, next_change - now);
      HAX_REQUIRE(std::isfinite(dt),
                  "simulation stalled: running work makes no progress and the fault plan "
                  "schedules no future change (schedule uses a failed PU?)");
    }
    dt = std::max(dt, 0.0);

    // Advance time; coalesce trace stretches on rate changes.
    const TimeMs next = now + dt;
    for (std::size_t pu = 0; pu < pu_running.size(); ++pu) {
      const int t = pu_running[pu];
      if (t < 0) continue;
      TaskState& st = states[static_cast<std::size_t>(t)];
      if (st.stretch_rate >= 0.0 && st.stretch_rate != rates[pu]) {
        flush_stretch(t, st.stretch_rate, now);
      }
      st.stretch_rate = rates[pu];
      st.remaining -= dt * rates[pu];
    }
    now = next;

    // Handle completions.
    for (std::size_t pu = 0; pu < pu_running.size(); ++pu) {
      const int t = pu_running[pu];
      if (t < 0) continue;
      TaskState& st = states[static_cast<std::size_t>(t)];
      if (st.remaining > kTimeTolerance) continue;

      flush_stretch(t, rates[pu], now);
      pu_running[pu] = -1;
      ++st.seg;
      if (st.seg < st.segments.size()) {
        st.phase = Phase::WaitingPu;
        st.remaining = jittered(t, st);
        st.stretch_rate = -1.0;
        pu_queue[static_cast<std::size_t>(st.segments[st.seg].pu)].push_back(t);
        continue;
      }
      // Iteration finished.
      st.spans.push_back({st.iter_start, now});
      st.iter_started = false;
      ++st.iters_done;
      ++st.iter;
      st.seg = 0;
      st.phase = st.iter >= st.iterations ? Phase::Done : Phase::Blocked;
    }

    try_unblock();
    grant_pus();
  }
  HAX_ASSERT(all_done());

  // ---- results -----------------------------------------------------------
  result.makespan_ms = now;
  for (int t = 0; t < n_tasks; ++t) {
    TaskState& st = states[static_cast<std::size_t>(t)];
    TaskResult& tr = result.tasks[static_cast<std::size_t>(t)];
    tr.iterations = std::move(st.spans);
    tr.finish_ms = tr.iterations.empty() ? 0.0 : tr.iterations.back().end;
    TimeMs standalone = 0.0;
    for (const Segment& s : st.segments) standalone += s.duration;
    tr.standalone_ms = standalone;
    double slowdown_sum = 0.0;
    for (const IterationSpan& span : tr.iterations) {
      slowdown_sum += (span.end - span.start) / standalone;
    }
    tr.avg_slowdown = tr.iterations.empty()
                          ? 1.0
                          : slowdown_sum / static_cast<double>(tr.iterations.size());
  }
  return result;
}

}  // namespace hax::sim
