#pragma once

/// \file cfg.h
/// Static control-flow-graph scheduling (Sec 3.5, the *static* case):
/// "Such CFGs and their corresponding schedules can be predetermined
/// statically and toggled during the execution." An autonomous system
/// declares its operating modes (each a DNN workload — e.g. a drone's
/// *discovery* vs *tracking*), the manager solves every mode's optimal
/// schedule offline, and at runtime mode switches are a constant-time
/// lookup — no solver on the critical path.

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/haxconn.h"
#include "sched/problem.h"
#include "sched/schedule.h"

namespace hax::core {

/// One operating mode of the autonomous CFG.
struct CfgMode {
  std::string name;
  std::vector<WorkloadDnn> workload;
};

class CfgManager {
 public:
  explicit CfgManager(const HaxConn& hax) : hax_(&hax) {}

  CfgManager(const CfgManager&) = delete;
  CfgManager& operator=(const CfgManager&) = delete;

  /// Registers a mode and solves its optimal schedule (the offline phase).
  /// Returns the solved schedule's predicted metrics. Mode names must be
  /// unique.
  const sched::ScheduleSolution& add_mode(CfgMode mode);

  [[nodiscard]] bool has_mode(const std::string& name) const noexcept;
  [[nodiscard]] std::vector<std::string> mode_names() const;

  /// Runtime toggle: the precomputed problem/schedule for a mode.
  /// Constant-time; throws PreconditionError for unknown modes.
  [[nodiscard]] const sched::Problem& problem(const std::string& name) const;
  [[nodiscard]] const sched::Schedule& schedule(const std::string& name) const;
  [[nodiscard]] const sched::ScheduleSolution& solution(const std::string& name) const;

  /// Persists every mode's schedule as `<dir>/<mode>.schedule.json`
  /// (deployment artifact); `load_schedules` re-reads them, replacing the
  /// solved ones (e.g. after hand-tuning). Throws std::runtime_error on
  /// I/O failure.
  void save_schedules(const std::string& dir) const;
  void load_schedules(const std::string& dir);

 private:
  struct Entry {
    std::unique_ptr<sched::ProblemInstance> instance;
    sched::ScheduleSolution solution;
  };

  [[nodiscard]] const Entry& entry(const std::string& name) const;

  const HaxConn* hax_;
  std::map<std::string, Entry> modes_;
};

}  // namespace hax::core
