#include "core/scenarios.h"

#include "common/error.h"
#include "nn/zoo.h"

namespace hax::core {

ScenarioWorkload scenario1_same_dnn(const std::string& dnn, int instances, int frames) {
  HAX_REQUIRE(instances >= 2, "scenario 1 needs at least two instances");
  HAX_REQUIRE(frames >= 1, "frames must be >= 1");
  ScenarioWorkload w;
  for (int i = 0; i < instances; ++i) {
    w.dnns.push_back({nn::zoo::by_name(dnn), -1, frames});
  }
  w.objective = sched::Objective::MaxThroughput;
  w.loop_barrier = false;
  w.description = std::to_string(instances) + "x " + dnn + " streaming";
  return w;
}

ScenarioWorkload scenario2_parallel(const std::vector<std::string>& dnns) {
  HAX_REQUIRE(dnns.size() >= 2, "scenario 2 needs at least two DNNs");
  ScenarioWorkload w;
  for (const std::string& name : dnns) w.dnns.push_back({nn::zoo::by_name(name)});
  w.objective = sched::Objective::MinMaxLatency;
  w.loop_barrier = true;  // all results join before the next round
  w.description = "parallel same-input round";
  return w;
}

ScenarioWorkload scenario3_pipeline(const std::string& producer, const std::string& consumer,
                                    int frames) {
  HAX_REQUIRE(frames >= 1, "frames must be >= 1");
  ScenarioWorkload w;
  w.dnns.push_back({nn::zoo::by_name(producer), -1, frames});
  w.dnns.push_back({nn::zoo::by_name(consumer), 0, frames});
  w.objective = sched::Objective::MaxThroughput;
  w.loop_barrier = false;  // software pipeline: frames overlap
  w.description = producer + " -> " + consumer + " stream";
  return w;
}

ScenarioWorkload scenario4_hybrid(const std::string& producer, const std::string& consumer,
                                  const std::string& parallel_dnn) {
  ScenarioWorkload w;
  w.dnns.push_back({nn::zoo::by_name(producer)});
  w.dnns.push_back({nn::zoo::by_name(consumer), 0});
  w.dnns.push_back({nn::zoo::by_name(parallel_dnn)});
  w.objective = sched::Objective::MinMaxLatency;
  w.loop_barrier = true;
  w.description = producer + " -> " + consumer + " with " + parallel_dnn + " in parallel";
  return w;
}

sched::ProblemInstance make_scenario_problem(const HaxConn& hax,
                                             const ScenarioWorkload& scenario) {
  // Copy the DNN descriptors (Network copies are cheap relative to
  // profiling) so a ScenarioWorkload can be reused.
  std::vector<WorkloadDnn> dnns;
  dnns.reserve(scenario.dnns.size());
  for (const WorkloadDnn& d : scenario.dnns) {
    dnns.push_back({nn::Network(d.net), d.depends_on, d.iterations});
  }
  sched::ProblemInstance instance = hax.make_problem(std::move(dnns));
  instance.problem().objective = scenario.objective;
  return instance;
}

}  // namespace hax::core
