#pragma once

/// \file evaluate.h
/// Ground-truth evaluation: runs a schedule for a problem's workload on
/// the discrete-event simulator and reports the latency / throughput
/// metrics the paper's tables use. This is how both HaX-CoNN and the
/// baselines are ultimately judged — predictions never enter the results.

#include "sched/problem.h"
#include "sched/schedule.h"
#include "sim/engine.h"

namespace hax::core {

struct EvalOptions {
  /// All tasks loop in lock-step rounds (Scenario 2/4 autonomous loop).
  bool loop_barrier = false;

  /// Extra constant EMC traffic (Table 7's solver-on-CPU experiment).
  GBps background_traffic_gbps = 0.0;

  bool record_trace = false;

  /// Optional fault-injection timeline (see sim::SimOptions::faults).
  const faults::FaultPlan* faults = nullptr;
};

struct EvalResult {
  sim::SimResult sim;
  /// Per-round completion time: makespan / max iteration count.
  TimeMs round_latency_ms = 0.0;
  /// Aggregate frames per second across all DNNs.
  double fps = 0.0;
};

/// Simulates the workload under `schedule`. GPU-only schedules of
/// independent DNNs serialize naturally through the PU FIFO.
[[nodiscard]] EvalResult evaluate(const sched::Problem& problem,
                                  const sched::Schedule& schedule,
                                  const EvalOptions& options = {});

}  // namespace hax::core
