#include "core/dynamic.h"

#include <chrono>

#include "baselines/baselines.h"
#include "common/error.h"

namespace hax::core {

DHaxConn::~DHaxConn() { stop(); }

void DHaxConn::publish(const sched::Schedule& schedule, const sched::Prediction& prediction) {
  {
    LockGuard lock(mutex_);
    // Solver incumbents improve monotonically against each other, but the
    // first few may still predict worse than the initial naive schedule —
    // never regress the published one.
    if (!schedule_.assignment.empty() &&
        prediction.objective_value >= prediction_.objective_value) {
      return;
    }
    schedule_ = schedule;
    prediction_ = prediction;
  }
  updates_.fetch_add(1);
  cv_.notify_all();
}

void DHaxConn::start(const sched::Problem& problem, const sched::Schedule* initial_seed) {
  stop();
  problem.validate();
  stop_requested_.store(false);
  converged_.store(false);
  updates_.store(0);
  {
    LockGuard lock(mutex_);
    schedule_ = {};
    prediction_ = {};
    prediction_.objective_value = std::numeric_limits<double>::infinity();
  }

  // Step (1): start from the best naive schedule so inference can begin
  // immediately. ("We do not start with a Herald or H2H schedule since
  // they also take seconds to return a schedule.")
  const sched::Formulation formulation(problem);
  sched::Schedule initial;
  sched::Prediction initial_pred;
  initial_pred.objective_value = std::numeric_limits<double>::infinity();
  std::vector<sched::Schedule> seeds = baselines::naive_seeds(problem);
  if (initial_seed != nullptr && !initial_seed->assignment.empty()) {
    seeds.push_back(*initial_seed);
  }
  for (sched::Schedule& seed : seeds) {
    const sched::Prediction p = formulation.predict(
        seed, {.enforce_transition_budget = false, .enforce_epsilon = false});
    if (p.objective_value < initial_pred.objective_value) {
      initial = std::move(seed);
      initial_pred = p;
    }
  }
  publish(initial, initial_pred);

  worker_ = std::thread([this, &problem] {
    sched::SolveScheduleOptions options;
    options.max_nodes_per_ms = solver_nodes_per_ms_;
    // The portfolio invokes this callback from under its funnel mutex,
    // and publish() takes mutex_ — a nesting the analyzer cannot see
    // through the std::function, so it is declared explicitly:
    // hax-analyze: edge(PortfolioSolver_solve_cb_mutex -> DHaxConn_mutex_)
    const auto on_incumbent = [this](const sched::Schedule& s, const sched::Prediction& p,
                                     TimeMs) {
      publish(s, p);
      return !stop_requested_.load();
    };
    sched::ScheduleSolution solution = sched::solve_schedule(problem, options, on_incumbent);
    // Adaptive ε, mirroring HaxConn::schedule (Sec 3.4): a degraded or
    // throttled platform can make every schedule ε-infeasible under the
    // nominal ε — relax and retry instead of silently never publishing
    // (the self-healing runtime depends on incumbents to hot-swap).
    if (!solution.best_found()) {
      sched::Problem relaxed = problem;
      for (int attempt = 0; attempt < 3 && !solution.best_found() && !stop_requested_.load();
           ++attempt) {
        relaxed.epsilon_ms *= 4.0;
        solution = sched::solve_schedule(relaxed, options, on_incumbent);
      }
    }
    if (!stop_requested_.load() && solution.proven_optimal) {
      // Store under the waiters' mutex: a bare store+notify could land
      // entirely inside a waiter's checked-false-but-not-yet-blocked
      // window (it holds mutex_ until the wait atomically releases it),
      // losing the wakeup and stalling wait_converged to its timeout.
      {
        LockGuard lock(mutex_);
        converged_.store(true);
      }
      cv_.notify_all();
    }
  });
}

void DHaxConn::stop() {
  stop_requested_.store(true);
  if (worker_.joinable()) worker_.join();
}

sched::Schedule DHaxConn::current_schedule() const {
  LockGuard lock(mutex_);
  return schedule_;
}

sched::Prediction DHaxConn::current_prediction() const {
  LockGuard lock(mutex_);
  return prediction_;
}

bool DHaxConn::wait_converged(TimeMs timeout_ms) const {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double, std::milli>(timeout_ms));
  LockGuard lock(mutex_);
  while (!converged_.load()) {
    if (!cv_.wait_until(mutex_, deadline)) break;  // timed out
  }
  return converged_.load();
}

}  // namespace hax::core
