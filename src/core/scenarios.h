#pragma once

/// \file scenarios.h
/// Canonical constructors for the paper's four evaluation scenarios
/// (Sec 5), so examples, benchmarks and downstream users build workloads
/// the same way:
///
///  - Scenario 1: multiple instances of the same DNN processing
///    consecutive images (throughput objective).
///  - Scenario 2: different DNNs processing the same input in parallel,
///    synchronizing each round (latency objective).
///  - Scenario 3: pipelined DNNs over streaming data (detection followed
///    by tracking; throughput objective).
///  - Scenario 4: a hybrid — a pipelined pair plus an independent DNN in
///    parallel (latency objective).

#include <string>
#include <vector>

#include "core/haxconn.h"
#include "sched/problem.h"

namespace hax::core {

struct ScenarioWorkload {
  std::vector<WorkloadDnn> dnns;
  sched::Objective objective = sched::Objective::MinMaxLatency;
  /// Whether evaluation should run the autonomous-loop barrier.
  bool loop_barrier = false;
  std::string description;
};

/// Scenario 1: `instances` copies of `dnn`, each streaming `frames` frames.
[[nodiscard]] ScenarioWorkload scenario1_same_dnn(const std::string& dnn, int instances = 2,
                                                  int frames = 6);

/// Scenario 2: the listed DNNs run in parallel on the same input and
/// synchronize each round.
[[nodiscard]] ScenarioWorkload scenario2_parallel(const std::vector<std::string>& dnns);

/// Scenario 3: `producer` feeds `consumer` frame-by-frame over `frames`
/// streaming frames.
[[nodiscard]] ScenarioWorkload scenario3_pipeline(const std::string& producer,
                                                  const std::string& consumer,
                                                  int frames = 4);

/// Scenario 4: `producer` -> `consumer` pipelined, with `parallel_dnn`
/// running beside them; the round latency gates the autonomous loop.
[[nodiscard]] ScenarioWorkload scenario4_hybrid(const std::string& producer,
                                                const std::string& consumer,
                                                const std::string& parallel_dnn);

/// Builds the problem for a scenario through the given HaxConn (applies
/// its grouping/profiling/objective configuration; the scenario's
/// objective overrides the HaxConn default).
[[nodiscard]] sched::ProblemInstance make_scenario_problem(const HaxConn& hax,
                                                           const ScenarioWorkload& scenario);

}  // namespace hax::core
