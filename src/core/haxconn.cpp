#include "core/haxconn.h"

#include <algorithm>

#include "baselines/baselines.h"
#include "common/error.h"
#include "sched/formulation.h"

namespace hax::core {

HaxConn::HaxConn(const soc::Platform& platform, HaxConnOptions options)
    : platform_(&platform), options_(std::move(options)) {
  HAX_REQUIRE(options_.max_transitions >= 0, "max_transitions must be >= 0");
  HAX_REQUIRE(options_.epsilon_fraction > 0.0, "epsilon_fraction must be positive");
  HAX_REQUIRE(options_.solver_threads >= 0, "solver_threads must be >= 0");
}

sched::ProblemInstance HaxConn::make_problem(std::vector<WorkloadDnn> dnns) const {
  HAX_REQUIRE(!dnns.empty(), "workload must contain at least one DNN");
  sched::ProblemInstance instance(*platform_, options_.objective, options_.grouping,
                                  options_.profiling);
  for (WorkloadDnn& d : dnns) {
    instance.add_dnn(std::move(d.net), d.depends_on, d.iterations);
  }
  sched::Problem& prob = instance.problem();
  prob.max_transitions = options_.max_transitions;

  // ε scales with the workload: a fraction of the fastest DNN's fastest
  // single-PU execution time.
  TimeMs fastest = std::numeric_limits<TimeMs>::infinity();
  for (const sched::DnnSpec& spec : prob.dnns) {
    fastest = std::min(fastest, spec.profile->total_time(spec.profile->fastest_pu(prob.pus)));
  }
  prob.epsilon_ms = options_.epsilon_fraction * fastest;
  return instance;
}

sched::ScheduleSolution HaxConn::schedule(const sched::Problem& problem,
                                          const sched::ScheduleCallback& on_incumbent) const {
  sched::SolveScheduleOptions solve_options;
  solve_options.time_budget_ms = options_.time_budget_ms;
  solve_options.threads = options_.solver_threads;
  solve_options.portfolio = options_.solver_portfolio;
  sched::ScheduleSolution solution =
      sched::solve_schedule(problem, solve_options, on_incumbent);

  // Adaptive ε (Sec 3.4): when GPU-only layer groups force every schedule
  // to share a PU beyond ε, no feasible schedule exists — relax ε and
  // retry rather than give up. The queueing-aware predictor keeps the
  // relaxed schedules honest.
  if (!solution.best_found()) {
    sched::Problem relaxed = problem;
    for (int attempt = 0; attempt < 3 && !solution.best_found(); ++attempt) {
      relaxed.epsilon_ms *= 4.0;
      solution = sched::solve_schedule(relaxed, solve_options, on_incumbent);
    }
  }

  if (options_.fallback_to_baselines) {
    // The layer-level predictor handles baseline schedules accurately even
    // when they violate ε or the transition budget (it models queueing
    // explicitly), so comparing predictions is sound. Return the best
    // baseline when it out-predicts every ε-compliant schedule — this
    // realizes the paper's guarantee that HaX-CoNN never underperforms
    // the baselines (Sec 5.2, Sec 5.4 point 2).
    const sched::Formulation formulation(problem);
    const sched::PredictOptions lenient{.enforce_transition_budget = false,
                                        .enforce_epsilon = false};
    for (baselines::Kind kind : baselines::all_kinds()) {
      sched::Schedule candidate = baselines::make(kind, problem);
      const sched::Prediction pred = formulation.predict(candidate, lenient);
      if (pred.objective_value < solution.prediction.objective_value) {
        solution.schedule = std::move(candidate);
        solution.prediction = pred;
        solution.used_fallback = true;
      }
    }
  }
  return solution;
}

}  // namespace hax::core
