#pragma once

/// \file dynamic.h
/// D-HaX-CoNN (Sec 3.5): runtime adaptation of optimal schedule
/// generation. When the autonomous system's control-flow graph changes
/// (a new DNN pair becomes active), the solver starts from the best naive
/// schedule and runs *concurrently with inference* on a CPU core,
/// publishing every improving incumbent so the runtime can hot-swap
/// schedules, and eventually converging to the optimum.

#include <atomic>
#include <thread>

#include "common/annotated.h"
#include "common/lock_ranks.h"
#include "core/haxconn.h"
#include "sched/formulation.h"
#include "sched/schedule.h"

namespace hax::core {

class DHaxConn {
 public:
  /// `solver_nodes_per_ms` throttles the background solver (0 = full
  /// speed) to emulate slower optimizers — Z3 on one embedded CPU core
  /// explores orders of magnitude fewer nodes per second than this B&B,
  /// and Fig. 7's multi-second convergence staircase assumes that pace.
  explicit DHaxConn(const HaxConn& hax, double solver_nodes_per_ms = 0.0)
      : hax_(&hax), solver_nodes_per_ms_(solver_nodes_per_ms) {}
  ~DHaxConn();

  DHaxConn(const DHaxConn&) = delete;
  DHaxConn& operator=(const DHaxConn&) = delete;

  /// Starts (or restarts, on a CFG change) background solving for
  /// `problem`, which must outlive the solve. The current schedule is
  /// immediately set to the best naive baseline — the paper's step (1) —
  /// so inference can proceed while the solver improves it. The
  /// self-healing runtime passes its already-running fallback as
  /// `initial`; it competes with the naive seeds so a restart never
  /// publishes something worse than what the runtime already executes.
  void start(const sched::Problem& problem, const sched::Schedule* initial = nullptr);

  /// Stops the background solver (idempotent).
  void stop();

  /// Snapshot of the best schedule found so far. Thread-safe; callable
  /// from the inference threads at frame boundaries (hot swap).
  [[nodiscard]] sched::Schedule current_schedule() const;
  [[nodiscard]] sched::Prediction current_prediction() const;

  /// Number of schedule improvements published since start().
  [[nodiscard]] int update_count() const noexcept { return updates_.load(); }

  /// True once the solver proved optimality for the active problem.
  [[nodiscard]] bool converged() const noexcept { return converged_.load(); }

  /// Blocks until convergence or the timeout elapses; returns converged().
  bool wait_converged(TimeMs timeout_ms) const;

 private:
  void publish(const sched::Schedule& schedule, const sched::Prediction& prediction);

  const HaxConn* hax_;
  double solver_nodes_per_ms_;  ///< const after construction
  std::thread worker_;          ///< owned by the start()/stop() caller thread
  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> converged_{false};
  std::atomic<int> updates_{0};

  mutable Mutex mutex_{HAX_MUTEX_RANK(DHaxConn_mutex_)};
  mutable CondVar cv_;
  sched::Schedule schedule_ HAX_GUARDED_BY(mutex_);
  sched::Prediction prediction_ HAX_GUARDED_BY(mutex_);
};

}  // namespace hax::core
