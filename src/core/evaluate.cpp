#include "core/evaluate.h"

#include <algorithm>

#include "common/error.h"

namespace hax::core {

EvalResult evaluate(const sched::Problem& problem, const sched::Schedule& schedule,
                    const EvalOptions& options) {
  problem.validate();
  HAX_REQUIRE(schedule.dnn_count() == problem.dnn_count(),
              "schedule/problem DNN count mismatch");

  sim::SimOptions sim_options;
  sim_options.loop_barrier = options.loop_barrier;
  sim_options.background_traffic_gbps = options.background_traffic_gbps;
  sim_options.record_trace = options.record_trace;
  sim_options.faults = options.faults;
  const sim::Engine engine(*problem.platform, sim_options);

  std::vector<sim::DnnTask> tasks;
  tasks.reserve(problem.dnns.size());
  for (int d = 0; d < problem.dnn_count(); ++d) {
    const sched::DnnSpec& spec = problem.dnns[static_cast<std::size_t>(d)];
    sim::DnnTask task;
    task.net = spec.net;
    task.assignment = schedule.assignment[static_cast<std::size_t>(d)];
    task.depends_on = spec.depends_on;
    task.iterations = spec.iterations;
    tasks.push_back(std::move(task));
  }

  EvalResult result;
  result.sim = engine.run(tasks);

  int rounds = 1;
  for (const sched::DnnSpec& spec : problem.dnns) rounds = std::max(rounds, spec.iterations);
  result.round_latency_ms = result.sim.makespan_ms / static_cast<double>(rounds);
  result.fps = result.sim.total_fps();
  return result;
}

}  // namespace hax::core
