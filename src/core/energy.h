#pragma once

/// \file energy.h
/// Energy accounting for executed schedules — the dimension the authors'
/// earlier AxoNN work (DAC'22) optimizes, carried here as an extension:
/// contention-aware schedules not only run faster, they also waste less
/// energy idling PUs and re-fetching stalled DRAM streams.
///
/// Attribution model:
///  - active energy: per-PU active power x busy time (from the trace,
///    so contention stretch is charged),
///  - idle energy: per-PU idle power x (makespan - busy time),
///  - DRAM energy: modeled traffic volume x pJ/byte.

#include <vector>

#include "core/evaluate.h"
#include "sched/problem.h"
#include "sched/schedule.h"

namespace hax::core {

struct EnergyBreakdown {
  std::vector<double> pu_active_mj;  ///< per PU id
  std::vector<double> pu_idle_mj;
  double dram_mj = 0.0;

  [[nodiscard]] double total_mj() const noexcept;
  /// Energy per processed frame.
  [[nodiscard]] double per_frame_mj(int frames) const;
};

/// Measures the energy of an executed workload. `result` must carry a
/// trace (evaluate with record_trace = true).
[[nodiscard]] EnergyBreakdown measure_energy(const sched::Problem& problem,
                                             const sched::Schedule& schedule,
                                             const EvalResult& result);

/// Convenience: simulate (with tracing) and measure in one call.
[[nodiscard]] EnergyBreakdown evaluate_energy(const sched::Problem& problem,
                                              const sched::Schedule& schedule,
                                              const EvalOptions& options = {});

}  // namespace hax::core
