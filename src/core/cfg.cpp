#include "core/cfg.h"

#include "common/error.h"
#include "sched/serialize.h"
#include "sched/validate.h"

namespace hax::core {

const sched::ScheduleSolution& CfgManager::add_mode(CfgMode mode) {
  HAX_REQUIRE(!mode.name.empty(), "mode name must be non-empty");
  HAX_REQUIRE(!has_mode(mode.name), "duplicate CFG mode: " + mode.name);
  HAX_REQUIRE(!mode.workload.empty(), "mode needs at least one DNN");

  Entry e;
  e.instance = std::make_unique<sched::ProblemInstance>(
      hax_->make_problem(std::move(mode.workload)));
  e.solution = hax_->schedule(e.instance->problem());
  HAX_REQUIRE(e.solution.best_found(), "no feasible schedule for mode " + mode.name);
  auto [it, inserted] = modes_.emplace(std::move(mode.name), std::move(e));
  HAX_ASSERT(inserted);
  return it->second.solution;
}

bool CfgManager::has_mode(const std::string& name) const noexcept {
  return modes_.count(name) > 0;
}

std::vector<std::string> CfgManager::mode_names() const {
  std::vector<std::string> names;
  names.reserve(modes_.size());
  for (const auto& [name, entry] : modes_) names.push_back(name);
  return names;
}

const CfgManager::Entry& CfgManager::entry(const std::string& name) const {
  const auto it = modes_.find(name);
  HAX_REQUIRE(it != modes_.end(), "unknown CFG mode: " + name);
  return it->second;
}

const sched::Problem& CfgManager::problem(const std::string& name) const {
  return entry(name).instance->problem();
}

const sched::Schedule& CfgManager::schedule(const std::string& name) const {
  return entry(name).solution.schedule;
}

const sched::ScheduleSolution& CfgManager::solution(const std::string& name) const {
  return entry(name).solution;
}

void CfgManager::save_schedules(const std::string& dir) const {
  for (const auto& [name, e] : modes_) {
    sched::save_schedule(e.solution.schedule, dir + "/" + name + ".schedule.json");
  }
}

void CfgManager::load_schedules(const std::string& dir) {
  for (auto& [name, e] : modes_) {
    sched::Schedule loaded = sched::load_schedule(dir + "/" + name + ".schedule.json");
    const sched::ValidationReport report =
        sched::validate_schedule(e.instance->problem(), loaded,
                                 {.enforce_transition_budget = false});
    HAX_REQUIRE(report.ok(),
                "invalid schedule for mode " + name + ":\n" + report.to_string());
    const sched::Formulation formulation(e.instance->problem());
    e.solution.schedule = std::move(loaded);
    e.solution.prediction = formulation.predict(
        e.solution.schedule, {.enforce_transition_budget = false, .enforce_epsilon = false});
    e.solution.proven_optimal = false;  // external schedules carry no proof
  }
}

}  // namespace hax::core
