#include "core/energy.h"

#include "common/error.h"
#include "perf/cost_model.h"

namespace hax::core {

double EnergyBreakdown::total_mj() const noexcept {
  double total = dram_mj;
  for (double e : pu_active_mj) total += e;
  for (double e : pu_idle_mj) total += e;
  return total;
}

double EnergyBreakdown::per_frame_mj(int frames) const {
  HAX_REQUIRE(frames > 0, "frames must be positive");
  return total_mj() / static_cast<double>(frames);
}

EnergyBreakdown measure_energy(const sched::Problem& problem, const sched::Schedule& schedule,
                               const EvalResult& result) {
  problem.validate();
  HAX_REQUIRE(!result.sim.trace.empty(),
              "energy measurement needs a trace (evaluate with record_trace)");
  const soc::Platform& plat = *problem.platform;

  EnergyBreakdown out;
  out.pu_active_mj.assign(static_cast<std::size_t>(plat.pu_count()), 0.0);
  out.pu_idle_mj.assign(static_cast<std::size_t>(plat.pu_count()), 0.0);

  // Active / idle split from the trace. Watts x milliseconds == millijoules.
  for (const soc::ProcessingUnit& pu : plat.pus()) {
    const TimeMs busy = result.sim.trace.pu_busy_ms(pu.id());
    const TimeMs idle = std::max(0.0, result.sim.makespan_ms - busy);
    out.pu_active_mj[static_cast<std::size_t>(pu.id())] = pu.params().active_power_w * busy;
    out.pu_idle_mj[static_cast<std::size_t>(pu.id())] = pu.params().idle_power_w * idle;
  }

  // DRAM traffic from the cost model (contention does not change the
  // volume moved, only when it moves).
  const perf::CostModel cost(plat);
  double dram_bytes = 0.0;
  for (int d = 0; d < problem.dnn_count(); ++d) {
    const sched::DnnSpec& spec = problem.dnns[static_cast<std::size_t>(d)];
    const auto& asg = schedule.assignment[static_cast<std::size_t>(d)];
    double per_iteration = 0.0;
    for (int g = 0; g < spec.net->group_count(); ++g) {
      per_iteration += static_cast<double>(
          cost.group_dram_bytes(*spec.net, g, asg[static_cast<std::size_t>(g)]));
    }
    dram_bytes += per_iteration * static_cast<double>(spec.iterations);
  }
  out.dram_mj = dram_bytes * plat.memory().params().dram_pj_per_byte * 1e-9;
  return out;
}

EnergyBreakdown evaluate_energy(const sched::Problem& problem, const sched::Schedule& schedule,
                                const EvalOptions& options) {
  EvalOptions traced = options;
  traced.record_trace = true;
  const EvalResult result = evaluate(problem, schedule, traced);
  return measure_energy(problem, schedule, result);
}

}  // namespace hax::core
