#pragma once

/// \file haxconn.h
/// Top-level HaX-CoNN API (Fig. 2's pipeline): takes the DNNs to schedule
/// and the target platform, runs layer grouping, per-layer/transition
/// profiling, contention characterization, and SAT-style optimal schedule
/// generation — and returns the schedule plus its predicted metrics.
///
/// Typical use:
///   auto platform = soc::Platform::orin();
///   core::HaxConn hax(platform);
///   auto problem = hax.make_problem({{nn::zoo::vgg19()}, {nn::zoo::resnet152()}});
///   auto solution = hax.schedule(problem.problem());

#include <memory>
#include <vector>

#include "grouping/grouping.h"
#include "perf/profiler.h"
#include "nn/network.h"
#include "sched/problem.h"
#include "sched/solve.h"
#include "soc/platform.h"

namespace hax::core {

struct HaxConnOptions {
  sched::Objective objective = sched::Objective::MinMaxLatency;
  grouping::GroupingOptions grouping;

  /// Profiling fidelity (measurement noise injection for robustness
  /// experiments; defaults to exact readings).
  perf::ProfilerOptions profiling;

  int max_transitions = 2;

  /// Wall-clock budget for the solver; 0 = run to proven optimality.
  TimeMs time_budget_ms = 0.0;

  /// Worker threads handed to the schedule solver: 1 = the serial engine
  /// (default, reproduces the historical behavior exactly), 0 = one per
  /// hardware thread, n = exactly n. See solver::SolveOptions::threads.
  int solver_threads = 1;

  /// Race the exact B&B against the genetic heuristic inside
  /// solve_schedule (solver::PortfolioSolver): the GA's early incumbents
  /// tighten B&B pruning, and the B&B cancels the GA once it proves
  /// optimality. Best for large spaces under a time budget.
  bool solver_portfolio = false;

  /// Compare the solver's best ε-compliant schedule against the naive
  /// baselines and return whichever predicts better, guaranteeing the
  /// result is never worse than naive execution (Sec 5.2, Scenario 3).
  bool fallback_to_baselines = true;

  /// Eq. 9's ε, as a fraction of the workload's fastest single-PU DNN
  /// time. Small values demand cleanly interlocking schedules; larger
  /// values admit schedules whose DNNs briefly queue on a shared PU —
  /// necessary when GPU-only layer groups (LRN, softmax heads) force both
  /// DNNs through the GPU. The layer-granular predictor models that
  /// queueing accurately, so the default is permissive (see
  /// bench_ablation's ε sweep).
  double epsilon_fraction = 0.5;
};

/// One DNN of the workload handed to make_problem().
struct WorkloadDnn {
  nn::Network net;
  int depends_on = -1;  ///< pipeline producer (Scenario 3/4); -1 = none
  int iterations = 1;   ///< frames per round (iteration balancing)
};

class HaxConn {
 public:
  explicit HaxConn(const soc::Platform& platform, HaxConnOptions options = {});

  /// Groups, profiles and packages the DNNs into an owning problem
  /// instance (the offline characterization phase).
  [[nodiscard]] sched::ProblemInstance make_problem(std::vector<WorkloadDnn> dnns) const;

  /// Runs the solver (with baseline seeds per options) and returns the
  /// best schedule found.
  [[nodiscard]] sched::ScheduleSolution schedule(
      const sched::Problem& problem, const sched::ScheduleCallback& on_incumbent = {}) const;

  [[nodiscard]] const soc::Platform& platform() const noexcept { return *platform_; }
  [[nodiscard]] const HaxConnOptions& options() const noexcept { return options_; }

 private:
  const soc::Platform* platform_;
  HaxConnOptions options_;
};

}  // namespace hax::core
