#include "soc/processing_unit.h"

#include "common/error.h"

namespace hax::soc {

const char* to_string(PuKind kind) noexcept {
  switch (kind) {
    case PuKind::Gpu: return "GPU";
    case PuKind::Dsa: return "DSA";
    case PuKind::Cpu: return "CPU";
  }
  return "?";
}

ProcessingUnit::ProcessingUnit(int id, PuParams params) : id_(id), params_(std::move(params)) {
  HAX_REQUIRE(id >= 0, "PU id must be non-negative");
  HAX_REQUIRE(params_.peak_gflops > 0.0, "PU needs positive peak_gflops");
  HAX_REQUIRE(params_.eff_max > 0.0 && params_.eff_max <= 1.0, "eff_max in (0,1]");
  HAX_REQUIRE(params_.saturation_flops > 0, "saturation_flops must be positive");
  HAX_REQUIRE(params_.max_stream_gbps > 0.0, "PU needs positive stream bandwidth");
}

GFlopsPerSec ProcessingUnit::effective_gflops(Flops work) const noexcept {
  if (work <= 0) return params_.eff_max * params_.peak_gflops;
  const double w = static_cast<double>(work);
  const double s = static_cast<double>(params_.saturation_flops);
  return params_.eff_max * params_.peak_gflops * (w / (w + s));
}

}  // namespace hax::soc
