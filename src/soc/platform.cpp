#include "soc/platform.h"

#include "common/error.h"

namespace hax::soc {

Platform::Platform(std::string name, MemoryParams memory, std::vector<PuParams> pus)
    : name_(std::move(name)), memory_(memory) {
  HAX_REQUIRE(!pus.empty(), "platform needs at least one PU");
  pus_.reserve(pus.size());
  for (std::size_t i = 0; i < pus.size(); ++i) {
    pus_.emplace_back(static_cast<int>(i), std::move(pus[i]));
  }
}

const ProcessingUnit& Platform::pu(PuId id) const {
  HAX_REQUIRE(id >= 0 && id < pu_count(), "PU id out of range");
  return pus_[static_cast<std::size_t>(id)];
}

PuId Platform::find(PuKind kind) const noexcept {
  for (const ProcessingUnit& p : pus_) {
    if (p.kind() == kind) return p.id();
  }
  return kInvalidPu;
}

std::vector<PuId> Platform::schedulable_pus() const {
  std::vector<PuId> out;
  for (const ProcessingUnit& p : pus_) {
    if (p.kind() != PuKind::Cpu) out.push_back(p.id());
  }
  return out;
}

PuId Platform::gpu() const {
  const PuId id = find(PuKind::Gpu);
  HAX_REQUIRE(id != kInvalidPu, "platform has no GPU");
  return id;
}

PuId Platform::dsa() const {
  const PuId id = find(PuKind::Dsa);
  HAX_REQUIRE(id != kInvalidPu, "platform has no DSA");
  return id;
}

PuId Platform::cpu() const noexcept { return find(PuKind::Cpu); }

namespace {

PuParams orin_gpu() {
  PuParams p;
  p.name = "GPU";
  p.kind = PuKind::Gpu;
  p.peak_gflops = 85000.0;  // Ampere, 1792 CUDA + 64 tensor cores, fp16
  p.eff_max = 0.45;
  p.saturation_flops = 430'000'000;  // needs large layers to fill
  p.max_stream_gbps = 160.0;
  p.onchip_buffer_bytes = 4 << 20;  // 4 MiB L2
  p.conv_eff = 1.0;
  p.fc_eff = 0.70;
  p.pool_eff = 0.45;
  p.elementwise_eff = 0.35;
  p.per_layer_overhead_ms = 0.0020;
  p.active_power_w = 25.0;
  p.idle_power_w = 2.5;
  p.act_traffic_amplification = 6.0;
  p.throughput_profilable = true;
  p.requires_reformat = false;
  return p;
}

PuParams orin_dla() {
  PuParams p;
  p.name = "DLA";
  p.kind = PuKind::Dsa;
  p.peak_gflops = 22500.0;  // NVDLA v2.0
  p.eff_max = 0.60;
  p.saturation_flops = 190'000'000;
  p.max_stream_gbps = 75.0;
  p.onchip_buffer_bytes = 1 << 20;  // 1 MiB convolution buffer
  p.conv_eff = 1.0;
  p.fc_eff = 0.12;  // FC maps poorly onto the conv pipeline
  p.pool_eff = 0.55;
  p.elementwise_eff = 0.30;
  p.per_layer_overhead_ms = 0.0030;
  p.active_power_w = 6.0;
  p.idle_power_w = 0.6;
  p.act_traffic_amplification = 3.5;  // line buffer streams activations ~once
  p.fc_weight_traffic = 1.8;
  p.asym_kernel_penalty = 2.5;  // NVDLA v2 pads 1x7/7x1 toward square
  p.throughput_profilable = false;  // black box: no Nsight counters (Sec 3.3)
  p.requires_reformat = true;
  return p;
}

PuParams orin_cpu() {
  PuParams p;
  p.name = "CPU";
  p.kind = PuKind::Cpu;
  p.peak_gflops = 400.0;  // 12-core Cortex-A78AE
  p.eff_max = 0.50;
  p.saturation_flops = 5'000'000;
  p.max_stream_gbps = 30.0;
  p.onchip_buffer_bytes = 3 << 20;
  p.fc_eff = 0.8;
  p.per_layer_overhead_ms = 0.004;
  p.active_power_w = 12.0;
  p.idle_power_w = 1.5;
  return p;
}

PuParams xavier_gpu() {
  PuParams p;
  p.name = "GPU";
  p.kind = PuKind::Gpu;
  p.peak_gflops = 22000.0;  // Volta, 512 CUDA + 64 tensor cores, fp16
  p.eff_max = 0.35;
  p.saturation_flops = 180'000'000;
  p.max_stream_gbps = 100.0;
  p.onchip_buffer_bytes = 512 << 10;
  p.conv_eff = 1.0;
  p.fc_eff = 0.65;
  p.pool_eff = 0.45;
  p.elementwise_eff = 0.35;
  p.per_layer_overhead_ms = 0.0045;
  p.active_power_w = 20.0;
  p.idle_power_w = 2.0;
  p.act_traffic_amplification = 6.0;
  p.throughput_profilable = true;
  return p;
}

PuParams xavier_dla() {
  PuParams p;
  p.name = "DLA";
  p.kind = PuKind::Dsa;
  p.peak_gflops = 3550.0;  // NVDLA v1.0
  p.eff_max = 0.60;
  p.saturation_flops = 60'000'000;
  p.max_stream_gbps = 45.0;
  p.onchip_buffer_bytes = 512 << 10;
  p.conv_eff = 1.0;
  p.fc_eff = 0.10;
  p.pool_eff = 0.50;
  p.elementwise_eff = 0.28;
  p.per_layer_overhead_ms = 0.0060;
  p.active_power_w = 4.5;
  p.idle_power_w = 0.5;
  p.act_traffic_amplification = 5.0;
  p.fc_weight_traffic = 1.7;
  p.asym_kernel_penalty = 1.5;
  p.throughput_profilable = false;
  p.requires_reformat = true;
  return p;
}

PuParams xavier_cpu() {
  PuParams p;
  p.name = "CPU";
  p.kind = PuKind::Cpu;
  p.peak_gflops = 250.0;  // 8-core Carmel
  p.eff_max = 0.50;
  p.saturation_flops = 5'000'000;
  p.max_stream_gbps = 25.0;
  p.onchip_buffer_bytes = 4 << 20;
  p.fc_eff = 0.8;
  p.per_layer_overhead_ms = 0.005;
  p.active_power_w = 10.0;
  p.idle_power_w = 1.2;
  return p;
}

PuParams sd865_gpu() {
  PuParams p;
  p.name = "GPU";
  p.kind = PuKind::Gpu;
  p.peak_gflops = 1450.0;  // Adreno 650, fp16
  p.eff_max = 0.55;
  p.saturation_flops = 150'000'000;
  p.max_stream_gbps = 22.0;
  p.onchip_buffer_bytes = 1 << 20;
  p.conv_eff = 1.0;
  p.fc_eff = 0.60;
  p.pool_eff = 0.45;
  p.elementwise_eff = 0.35;
  p.per_layer_overhead_ms = 0.050;  // SNPE dispatch is heavier than TensorRT
  p.active_power_w = 4.0;
  p.idle_power_w = 0.4;
  p.act_traffic_amplification = 4.0;
  p.throughput_profilable = true;
  return p;
}

PuParams sd865_dsp() {
  PuParams p;
  p.name = "DSP";
  p.kind = PuKind::Dsa;
  p.peak_gflops = 1000.0;  // Hexagon 698 HTA/HVX; close to the GPU on this
  p.eff_max = 0.60;        // platform (Sec 5.2: "GPU & DSP are more balanced")
  p.saturation_flops = 40'000'000;
  p.max_stream_gbps = 16.0;
  p.onchip_buffer_bytes = 768 << 10;
  p.conv_eff = 1.0;
  p.fc_eff = 0.35;
  p.pool_eff = 0.55;
  p.elementwise_eff = 0.30;
  p.per_layer_overhead_ms = 0.060;
  p.active_power_w = 1.8;
  p.idle_power_w = 0.2;
  p.act_traffic_amplification = 4.0;
  p.fc_weight_traffic = 1.5;
  p.asym_kernel_penalty = 1.3;
  p.throughput_profilable = false;
  p.requires_reformat = true;
  return p;
}

PuParams sd865_cpu() {
  PuParams p;
  p.name = "CPU";
  p.kind = PuKind::Cpu;
  p.peak_gflops = 220.0;  // Kryo 585
  p.eff_max = 0.50;
  p.saturation_flops = 5'000'000;
  p.max_stream_gbps = 12.0;
  p.onchip_buffer_bytes = 4 << 20;
  p.fc_eff = 0.8;
  p.per_layer_overhead_ms = 0.010;
  p.active_power_w = 3.0;
  p.idle_power_w = 0.3;
  return p;
}

}  // namespace

Platform Platform::orin() {
  MemoryParams mem;
  mem.total_gbps = 204.8;  // 32 GB LPDDR5, 256-bit (Table 4)
  mem.contention_penalty = 0.18;
  mem.min_efficiency = 0.55;
  mem.dram_pj_per_byte = 30.0;  // LPDDR5
  return Platform("NVIDIA AGX Orin", mem, {orin_gpu(), orin_dla(), orin_cpu()});
}

Platform Platform::xavier() {
  MemoryParams mem;
  mem.total_gbps = 136.5;  // 16 GB LPDDR4, 256-bit (Table 4)
  mem.contention_penalty = 0.22;
  mem.min_efficiency = 0.50;
  mem.dram_pj_per_byte = 45.0;  // LPDDR4
  return Platform("NVIDIA Xavier AGX", mem, {xavier_gpu(), xavier_dla(), xavier_cpu()});
}

Platform Platform::sd865() {
  MemoryParams mem;
  mem.total_gbps = 34.1;  // 6 GB LPDDR5, 64-bit (Table 4)
  mem.contention_penalty = 0.25;
  mem.min_efficiency = 0.50;
  mem.dram_pj_per_byte = 30.0;  // LPDDR5
  return Platform("Qualcomm Snapdragon 865", mem, {sd865_gpu(), sd865_dsp(), sd865_cpu()});
}

std::vector<Platform> Platform::all_presets() { return {orin(), xavier(), sd865()}; }

}  // namespace hax::soc
