#pragma once

/// \file memory_system.h
/// Shared external memory controller (EMC) model. This is the ground truth
/// the simulator uses to arbitrate bandwidth between concurrently active
/// PUs; the scheduler never sees it directly (it uses the fitted PCCS model
/// from `contention/` instead), mirroring the paper's decoupled design.

#include <span>
#include <vector>

#include "common/types.h"

namespace hax::soc {

/// Parameters of the shared memory subsystem.
struct MemoryParams {
  GBps total_gbps = 0.0;  ///< peak EMC bandwidth (Table 4)

  /// Fractional efficiency lost per additional concurrent requester.
  /// Interleaved request streams from different PUs cause row-buffer
  /// misses and arbitration overhead, so two PUs demanding the full
  /// bandwidth together achieve less than one PU alone would.
  double contention_penalty = 0.0;

  /// Floor on the efficiency factor, so pathological requester counts
  /// cannot drive capacity to zero.
  double min_efficiency = 0.5;

  /// DRAM access energy (LPDDR4 ~45 pJ/B, LPDDR5 ~30 pJ/B), for the
  /// energy model in core/energy.h.
  double dram_pj_per_byte = 40.0;
};

/// Stateless EMC arbitration. Given per-requester demanded bandwidths,
/// returns the bandwidth each achieves.
class MemorySystem {
 public:
  explicit MemorySystem(MemoryParams params);

  [[nodiscard]] const MemoryParams& params() const noexcept { return params_; }
  [[nodiscard]] GBps total_gbps() const noexcept { return params_.total_gbps; }

  /// Effective capacity for a (possibly fractional) number of concurrent
  /// requesters: total * max(min_efficiency, 1 - penalty*(n-1)). The
  /// fractional "effective requester count" weighs small streams by their
  /// size relative to the largest, so a trickle of background traffic
  /// does not pay the full interleaving penalty of a second heavy stream.
  [[nodiscard]] GBps effective_capacity(double effective_requesters) const noexcept;

  /// Demand-weighted effective requester count for a demand vector.
  [[nodiscard]] static double effective_requesters(std::span<const GBps> demands) noexcept;

  /// Arbitrates the EMC between requesters with the given demands (GB/s,
  /// zero entries are idle PUs). If total demand fits in the effective
  /// capacity everyone achieves what they asked; otherwise bandwidth is
  /// shared max-min fairly. Result has the same length/order as `demands`.
  [[nodiscard]] std::vector<GBps> arbitrate(std::span<const GBps> demands) const;

  /// Slowdown factor (>= 1) experienced by a requester demanding
  /// `own_demand` while others demand `external_demand` in total.
  /// This is the scalar the PCCS model is fitted against.
  [[nodiscard]] double slowdown(GBps own_demand, GBps external_demand) const noexcept;

 private:
  MemoryParams params_;
};

}  // namespace hax::soc
