#include "soc/condition.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/error.h"
#include "soc/platform.h"

namespace hax::soc {

const char* to_string(PuHealth health) noexcept {
  switch (health) {
    case PuHealth::Online: return "online";
    case PuHealth::Throttled: return "throttled";
    case PuHealth::Quarantined: return "quarantined";
    case PuHealth::Probation: return "probation";
  }
  return "?";
}

PlatformCondition::PlatformCondition(int pu_count) {
  HAX_REQUIRE(pu_count >= 1, "pu_count must be >= 1");
  pus_.resize(static_cast<std::size_t>(pu_count));
}

const PuCondition& PlatformCondition::pu(PuId id) const {
  HAX_REQUIRE(id >= 0 && id < pu_count(), "PU id out of range");
  return pus_[static_cast<std::size_t>(id)];
}

PuCondition& PlatformCondition::pu(PuId id) {
  HAX_REQUIRE(id >= 0 && id < pu_count(), "PU id out of range");
  return pus_[static_cast<std::size_t>(id)];
}

std::vector<PuId> PlatformCondition::available(const std::vector<PuId>& from) const {
  std::vector<PuId> result;
  result.reserve(from.size());
  for (const PuId id : from) {
    if (pu(id).available()) result.push_back(id);
  }
  return result;
}

std::vector<PuId> PlatformCondition::quarantined() const {
  std::vector<PuId> result;
  for (int p = 0; p < pu_count(); ++p) {
    if (!pus_[static_cast<std::size_t>(p)].available()) result.push_back(p);
  }
  return result;
}

bool PlatformCondition::all_online() const noexcept {
  return std::all_of(pus_.begin(), pus_.end(), [](const PuCondition& c) {
    return c.health == PuHealth::Online;
  });
}

void PlatformCondition::set(PuId id, PuHealth health, double frequency_scale, TimeMs now_ms) {
  HAX_REQUIRE(frequency_scale > 0.0, "frequency_scale must be positive");
  PuCondition& c = pu(id);
  if (health == PuHealth::Quarantined && c.health != PuHealth::Quarantined) {
    ++c.quarantine_count;
  }
  if (c.health != health) c.since_ms = now_ms;
  c.health = health;
  c.frequency_scale = frequency_scale;
}

std::string PlatformCondition::describe(const Platform& platform) const {
  HAX_REQUIRE(platform.pu_count() == pu_count(), "condition/platform size mismatch");
  std::ostringstream os;
  for (int p = 0; p < pu_count(); ++p) {
    if (p > 0) os << " | ";
    const PuCondition& c = pus_[static_cast<std::size_t>(p)];
    os << platform.pu(p).name() << ": " << to_string(c.health);
    if (c.health == PuHealth::Throttled || c.health == PuHealth::Probation) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), " x%.2f", c.frequency_scale);
      os << buf;
    }
  }
  return os.str();
}

}  // namespace hax::soc
