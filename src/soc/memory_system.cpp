#include "soc/memory_system.h"

#include <algorithm>

#include "common/error.h"

namespace hax::soc {

MemorySystem::MemorySystem(MemoryParams params) : params_(params) {
  HAX_REQUIRE(params_.total_gbps > 0.0, "EMC bandwidth must be positive");
  HAX_REQUIRE(params_.contention_penalty >= 0.0 && params_.contention_penalty < 1.0,
              "contention_penalty in [0,1)");
  HAX_REQUIRE(params_.min_efficiency > 0.0 && params_.min_efficiency <= 1.0,
              "min_efficiency in (0,1]");
}

GBps MemorySystem::effective_capacity(double effective_requesters) const noexcept {
  if (effective_requesters <= 1.0) return params_.total_gbps;
  const double eff = std::max(params_.min_efficiency,
                              1.0 - params_.contention_penalty * (effective_requesters - 1.0));
  return params_.total_gbps * eff;
}

double MemorySystem::effective_requesters(std::span<const GBps> demands) noexcept {
  GBps largest = 0.0;
  for (GBps d : demands) largest = std::max(largest, d);
  if (largest <= 0.0) return 0.0;
  // A stream counts as a full requester once it reaches kFullStream of
  // the largest stream; below that it contributes proportionally. A
  // trickle of background traffic (a solver on the CPU, Table 7) thus
  // costs almost nothing, while two real streams pay the full penalty.
  constexpr double kFullStream = 0.2;
  double n = 0.0;
  for (GBps d : demands) {
    if (d > 0.0) n += std::min(1.0, d / (kFullStream * largest));
  }
  return n;
}

std::vector<GBps> MemorySystem::arbitrate(std::span<const GBps> demands) const {
  std::vector<GBps> achieved(demands.size(), 0.0);
  double total_demand = 0.0;
  for (GBps d : demands) {
    HAX_REQUIRE(d >= 0.0, "memory demand must be non-negative");
    total_demand += d;
  }
  if (total_demand <= 0.0) return achieved;

  const GBps capacity = effective_capacity(effective_requesters(demands));
  if (total_demand <= capacity) {
    for (std::size_t i = 0; i < demands.size(); ++i) achieved[i] = demands[i];
    return achieved;
  }

  // Max-min fair (water-filling) allocation: requesters below the fair
  // share are satisfied fully, the remainder is split among the rest.
  // This is what makes the observed slowdown a *piecewise* function of a
  // requester's own demand, which the PCCS model then fits.
  std::vector<std::size_t> unsatisfied;
  unsatisfied.reserve(demands.size());
  for (std::size_t i = 0; i < demands.size(); ++i) {
    if (demands[i] > 0.0) unsatisfied.push_back(i);
  }
  GBps remaining = capacity;
  while (!unsatisfied.empty()) {
    const GBps share = remaining / static_cast<double>(unsatisfied.size());
    bool anyone_satisfied = false;
    for (auto it = unsatisfied.begin(); it != unsatisfied.end();) {
      if (demands[*it] <= share) {
        achieved[*it] = demands[*it];
        remaining -= demands[*it];
        it = unsatisfied.erase(it);
        anyone_satisfied = true;
      } else {
        ++it;
      }
    }
    if (!anyone_satisfied) {
      for (std::size_t i : unsatisfied) achieved[i] = share;
      break;
    }
  }
  return achieved;
}

double MemorySystem::slowdown(GBps own_demand, GBps external_demand) const noexcept {
  // With no competing traffic there is effectively one requester: the
  // multi-requester efficiency penalty does not apply.
  if (own_demand <= 0.0 || external_demand <= 0.0) return 1.0;
  const GBps pair[2] = {own_demand, external_demand};
  const GBps capacity = effective_capacity(effective_requesters(pair));
  if (own_demand + external_demand <= capacity) return 1.0;
  // Treat the external traffic as one aggregate competitor (matches Eq. 7's
  // "cumulative external bandwidth"): max-min fair split between the two.
  const GBps fair = capacity / 2.0;
  GBps own_achieved;
  if (external_demand <= fair) {
    own_achieved = std::min(own_demand, capacity - external_demand);
  } else if (own_demand <= fair) {
    own_achieved = own_demand;
  } else {
    own_achieved = fair;
  }
  if (own_achieved <= 0.0) return 1.0;
  return std::max(1.0, own_demand / own_achieved);
}

}  // namespace hax::soc
