#pragma once

/// \file platform.h
/// A heterogeneous shared-memory SoC: a set of processing units around one
/// external memory controller. Presets reproduce the three platforms of the
/// paper's Table 4 (NVIDIA AGX Orin, NVIDIA Xavier AGX, Qualcomm
/// Snapdragon 865). Compute parameters are calibrated so that standalone
/// DNN runtimes match the shape of the paper's Table 5.

#include <string>
#include <vector>

#include "soc/memory_system.h"
#include "soc/processing_unit.h"

namespace hax::soc {

class Platform {
 public:
  Platform(std::string name, MemoryParams memory, std::vector<PuParams> pus);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const MemorySystem& memory() const noexcept { return memory_; }

  [[nodiscard]] int pu_count() const noexcept { return static_cast<int>(pus_.size()); }
  [[nodiscard]] const ProcessingUnit& pu(PuId id) const;
  [[nodiscard]] const std::vector<ProcessingUnit>& pus() const noexcept { return pus_; }

  /// First PU of the given kind, or kInvalidPu.
  [[nodiscard]] PuId find(PuKind kind) const noexcept;

  /// The PUs DNN layers may be scheduled onto (GPU and DSA). The CPU is
  /// excluded — on these SoCs it hosts the runtime and the solver, not
  /// DNN inference (Table 7's overhead experiment).
  [[nodiscard]] std::vector<PuId> schedulable_pus() const;

  [[nodiscard]] PuId gpu() const;  ///< requires a GPU to exist
  [[nodiscard]] PuId dsa() const;  ///< requires a DSA to exist
  [[nodiscard]] PuId cpu() const noexcept;  ///< kInvalidPu if absent

  /// Table 4 presets.
  [[nodiscard]] static Platform orin();
  [[nodiscard]] static Platform xavier();
  [[nodiscard]] static Platform sd865();

  /// All three presets, for exhaustive benchmarks.
  [[nodiscard]] static std::vector<Platform> all_presets();

 private:
  std::string name_;
  MemorySystem memory_;
  std::vector<ProcessingUnit> pus_;
};

}  // namespace hax::soc
