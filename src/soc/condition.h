#pragma once

/// \file condition.h
/// Dynamic platform condition: the runtime-observed availability and
/// effective-frequency state of every PU, layered over the immutable
/// Platform description. The self-healing runtime maintains one of these
/// as its canonical record of what the hardware is currently doing —
/// which PUs are quarantined, which run throttled and by how much — and
/// derives degraded scheduling problems from it.

#include <string>
#include <vector>

#include "common/types.h"
#include "soc/processing_unit.h"

namespace hax::soc {

class Platform;

enum class PuHealth : std::uint8_t {
  Online,       ///< behaving per its profile
  Throttled,    ///< alive but slower; see frequency_scale
  Quarantined,  ///< masked out of scheduling (failed or repeatedly wedged)
  Probation,    ///< re-admitted after quarantine, under watch
};

[[nodiscard]] const char* to_string(PuHealth health) noexcept;

/// Mutable per-PU condition record.
struct PuCondition {
  PuHealth health = PuHealth::Online;
  /// Observed speed relative to the profile (1 = nominal, 0.5 = running
  /// at half speed). Meaningful for Throttled/Probation.
  double frequency_scale = 1.0;
  /// When the current health state was entered (caller's clock, ms).
  TimeMs since_ms = 0.0;
  /// Times this PU has been quarantined (drives re-admission backoff).
  int quarantine_count = 0;

  [[nodiscard]] bool available() const noexcept { return health != PuHealth::Quarantined; }
};

/// Condition of a whole platform: one PuCondition per PU.
class PlatformCondition {
 public:
  PlatformCondition() = default;
  explicit PlatformCondition(int pu_count);

  [[nodiscard]] int pu_count() const noexcept { return static_cast<int>(pus_.size()); }
  [[nodiscard]] const PuCondition& pu(PuId id) const;
  [[nodiscard]] PuCondition& pu(PuId id);

  /// Subset of `from` currently available (not quarantined), order kept.
  [[nodiscard]] std::vector<PuId> available(const std::vector<PuId>& from) const;
  [[nodiscard]] std::vector<PuId> quarantined() const;
  [[nodiscard]] bool all_online() const noexcept;

  void set(PuId id, PuHealth health, double frequency_scale, TimeMs now_ms);

  /// e.g. "GPU: throttled x0.50 | DLA: online".
  [[nodiscard]] std::string describe(const Platform& platform) const;

 private:
  std::vector<PuCondition> pus_;
};

}  // namespace hax::soc
