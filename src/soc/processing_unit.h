#pragma once

/// \file processing_unit.h
/// Model of one processing unit (PU) on a shared-memory SoC: the GPU, a
/// domain-specific accelerator (NVDLA / Hexagon DSP), or the CPU complex.
///
/// The model is a saturating roofline: a layer with `w` FLOPs achieves
/// `eff_max * w / (w + saturation_flops)` of `peak_gflops`, so small layers
/// run at a fraction of peak (they cannot fill the machine) while large
/// dense layers approach `eff_max * peak`. DSAs have a small
/// `saturation_flops` (their fixed-function pipelines fill quickly) but a
/// lower ceiling than the GPU — this is what produces the paper's
/// per-layer-group DLA/GPU ratios between ~1.4x and ~2x (Table 2).

#include <cstdint>
#include <string>

#include "common/types.h"

namespace hax::soc {

/// The kind of processing unit. `Dsa` covers both NVDLA and the Hexagon
/// DSP — the paper treats them uniformly as "the DSA" per platform.
enum class PuKind : std::uint8_t { Gpu, Dsa, Cpu };

[[nodiscard]] const char* to_string(PuKind kind) noexcept;

/// Static hardware parameters of one PU.
struct PuParams {
  std::string name;          ///< e.g. "GPU", "DLA", "DSP"
  PuKind kind = PuKind::Gpu;

  GFlopsPerSec peak_gflops = 0.0;  ///< nominal peak compute throughput
  double eff_max = 1.0;            ///< fraction of peak reachable by huge layers
  Flops saturation_flops = 1;      ///< layer size at which half of eff_max is reached

  GBps max_stream_gbps = 0.0;  ///< max memory bandwidth this PU alone can draw

  Bytes onchip_buffer_bytes = 0;  ///< private SRAM; working sets that fit avoid DRAM re-reads

  /// Per-operator efficiency multipliers. DSAs are built around convolution;
  /// their fully-connected and elementwise paths are comparatively weak
  /// (Sec 5.2: "DLA is generally less effective in running fully-connected
  /// layers").
  double conv_eff = 1.0;
  double fc_eff = 1.0;
  double pool_eff = 1.0;
  double elementwise_eff = 1.0;

  TimeMs per_layer_overhead_ms = 0.0;  ///< kernel launch / pipeline setup per layer

  /// DRAM traffic amplification on convolution activations. Tiled
  /// execution re-reads input halos and spills partial sums, so real
  /// traffic is a multiple of the minimal streaming volume — this is what
  /// drives the 40-80% EMC utilizations the paper measures (Table 2).
  /// DSA line-buffer pipelines stream activations nearly once, so their
  /// factor is lower than the GPU's tiling.
  double act_traffic_amplification = 1.0;

  /// Extra weight traffic for fully-connected layers. NVDLA executes FC
  /// as 1x1 convolution with poor weight-streaming utilization, which is
  /// why FC-heavy networks (VGG, CaffeNet) fare so badly on the DLA
  /// (Sec 5.2: "DLA is generally less effective in running
  /// fully-connected layers").
  double fc_weight_traffic = 1.0;

  /// Compute penalty for asymmetric (1x7 / 7x1) convolutions. DSAs lack
  /// native asymmetric kernels and pad them toward square, wasting MACs —
  /// penalizing Inception-family networks on the DLA.
  double asym_kernel_penalty = 1.0;

  /// Power draw while executing a kernel / while idle-clocked. Used by the
  /// energy model (core/energy.h) — the quantity the authors' earlier
  /// AxoNN work optimizes, kept here as a first-class extension.
  double active_power_w = 10.0;
  double idle_power_w = 1.0;

  /// Whether requested memory throughput can be read with profiling tools.
  /// True for GPUs (Nsight Compute); false for black-box DSAs — the
  /// scheduler must then use the EMC-ratio estimator (Sec 3.3).
  bool throughput_profilable = true;

  /// Whether an inter-DSA transition into/out of this PU forces tensor
  /// reformatting (DSA HW pipelines use private layouts; Sec 3.1 item 2).
  bool requires_reformat = false;
};

/// A PU instance within a platform. Identified by a dense index so
/// schedules can be stored as small integer vectors.
class ProcessingUnit {
 public:
  ProcessingUnit(int id, PuParams params);

  [[nodiscard]] int id() const noexcept { return id_; }
  [[nodiscard]] const std::string& name() const noexcept { return params_.name; }
  [[nodiscard]] PuKind kind() const noexcept { return params_.kind; }
  [[nodiscard]] const PuParams& params() const noexcept { return params_; }

  /// Achievable GFLOP/s for a layer of `work` FLOPs, before operator-type
  /// multipliers. Monotone increasing in `work`, bounded by
  /// eff_max * peak_gflops.
  [[nodiscard]] GFlopsPerSec effective_gflops(Flops work) const noexcept;

 private:
  int id_;
  PuParams params_;
};

/// Dense PU identifier within a Platform (index into Platform::pus()).
using PuId = int;
inline constexpr PuId kInvalidPu = -1;

}  // namespace hax::soc
