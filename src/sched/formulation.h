#pragma once

/// \file formulation.h
/// The cost model of Sec 3.4 (Eqs. 2-9): predicts the outcome of a
/// candidate schedule from profiled data only — standalone group times t,
/// transition costs τ, requested throughputs, and the PCCS contention
/// model. This is the objective function the solver optimizes.
///
/// Mechanically it sweeps a group-granularity timeline: start/end times
/// (Eqs. 4-6) emerge from the sweep, contention intervals (Eq. 8) are the
/// stretches between events, and each group's slowdown (Eq. 7) is the
/// interval-weighted PCCS estimate given the other PUs' concurrent
/// demands. Cross-DNN queueing on an over-subscribed PU is modeled
/// explicitly and doubles as the ε-feasibility check (Eq. 9).
///
/// The predictor sees only the NetworkProfile — including the *estimated*
/// demands for black-box DSAs — never the simulator's ground truth, so its
/// predictions carry the same kind of error the paper's do.
///
/// Performance: the solvers funnel millions of candidate schedules through
/// predict(), so the hot path is built to be allocation-free. The
/// constructor precomputes, per (DNN, group, PU), the layer-item segment
/// and the transition legs (τ_in/τ_out plus the PU's streaming bandwidth),
/// so evaluation concatenates precomputed spans instead of re-reading the
/// profile per layer. All per-call scratch — DNN sweep states, index-based
/// ring-buffer run queues, the contention-rate array, the flat item
/// buffer — lives in an EvalWorkspace the caller (typically one per solver
/// worker thread) reuses across calls. predict_reference() retains the
/// original implementation as the golden model for parity tests and
/// before/after benchmarks.

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "sched/problem.h"
#include "sched/schedule.h"

namespace hax::sched {

struct PredictOptions {
  /// When false, slowdowns are pinned to 1 — the contention-blind
  /// predictor used by the Herald and H2H baselines (their defining flaw
  /// per Sec 5.2).
  bool model_contention = true;

  /// When false, Problem::max_transitions is not enforced (baseline
  /// schedulers are free to transition as often as they like).
  bool enforce_transition_budget = true;

  /// When false, Eq. 9's ε overlap constraint is not enforced — used when
  /// predicting baseline schedules, which serialize DNNs on one PU by
  /// design. The solver keeps it on: group-granularity predictions are
  /// only trustworthy when concurrent DNNs do not time-share a PU, since
  /// real engines interleave kernel-by-kernel in ways Eq. 2 cannot see.
  bool enforce_epsilon = true;

  /// Cap on timeline-sweep events; 0 = automatic (8 × total items + 256).
  /// A sweep that exhausts the cap is infeasible with
  /// Prediction::sweep_capped set. Exposed so tests can exercise the
  /// non-convergence path deterministically.
  std::size_t max_events = 0;
};

struct Prediction {
  bool feasible = false;  ///< supports + transition budget + ε constraint

  /// True when the event sweep hit its max_events cap without finishing.
  /// The schedule is reported infeasible, but — unlike a genuinely
  /// unsupported/over-budget one — the verdict is a convergence failure of
  /// the sweep, not a property of the schedule. Formulation counts these
  /// (sweep_cap_count()) and logs the first occurrence.
  bool sweep_capped = false;

  TimeMs makespan_ms = 0.0;
  /// Average per-iteration execution span of each DNN (the T(L, S(L))_n
  /// of Eq. 2, including transition costs and contention slowdown).
  std::vector<TimeMs> dnn_span_ms;
  /// Per-round completion time (makespan / number of rounds).
  TimeMs round_ms = 0.0;
  /// Aggregate throughput: total frames / makespan.
  double fps = 0.0;
  /// Worst cross-DNN same-PU queueing observed in the sweep (Eq. 9's
  /// overlap); compared against Problem::epsilon_ms.
  TimeMs total_queue_ms = 0.0;

  /// Value minimized by the solver: round_ms for MinMaxLatency, -fps for
  /// MaxThroughput; +infinity when infeasible.
  double objective_value = 0.0;
};

/// One predicted unit of work: a group's layer execution or a transition
/// leg. Precomputed tables and the workspace item buffer are arrays of
/// these.
struct EvalItem {
  soc::PuId pu = 0;
  TimeMs duration = 0.0;
  GBps demand = 0.0;
};

/// Reusable scratch for the allocation-free predict paths. Intended
/// ownership is one workspace per solver worker thread, reused across
/// every evaluation that thread performs; after the first call on a given
/// problem shape no predict() call allocates. A workspace adapts itself to
/// whichever Formulation it is passed to (switching formulations is
/// correct, merely re-sizing). Not thread-safe: never share one instance
/// between concurrent callers.
class EvalWorkspace {
 public:
  EvalWorkspace() = default;

 private:
  friend class Formulation;

  /// Sweep state of one DNN (the item list lives in `items`, as the
  /// half-open range [items_begin, items_end)).
  struct DnnState {
    std::uint32_t items_begin = 0;
    std::uint32_t items_end = 0;
    int iterations = 1;
    int depends_on = -1;

    std::uint8_t phase = 0;  ///< Phase enum (formulation.cpp)
    int iter = 0;
    std::uint32_t idx = 0;  ///< absolute index into `items`
    TimeMs remaining = 0.0;
    int iters_done = 0;
    TimeMs iter_start = 0.0;
    bool iter_started = false;
    TimeMs wait_since = 0.0;  ///< when the DNN entered Waiting
    TimeMs span_total = 0.0;
  };

  std::vector<EvalItem> items;   ///< flat per-call item buffer (all DNNs)
  std::vector<DnnState> states;  ///< one per DNN
  /// Index-based ring-buffer run queues, one per PU: each DNN is enqueued
  /// on at most one PU at a time, so capacity dnn_count per PU suffices.
  std::vector<int> queue_buf;    ///< [pu * dnn_count + slot]
  std::vector<std::uint32_t> queue_head;
  std::vector<std::uint32_t> queue_len;
  std::vector<int> running;      ///< DNN running on each PU, -1 idle
  std::vector<double> rates;     ///< per-PU contention rate (hoisted)
  std::vector<TimeMs> spans;     ///< per-DNN mean iteration span result
  std::vector<soc::PuId> pu_scratch;  ///< flat-index → PuId translation buffer
  /// Ascending list of PUs referenced by the current assembly — the only
  /// PUs the sweep ever needs to scan (all others stay idle, so skipping
  /// them performs the identical FP operations in the identical order).
  std::vector<soc::PuId> active_pus;

  /// Memoized contention rates (1 / PCCS slowdown) keyed by the exact
  /// (own, external) demand bit patterns. The PCCS model is a pure
  /// function, so cached rates are bit-identical to fresh lookups; item
  /// demands come from a fixed profile, so the same pairs recur across
  /// evaluations and the table persists between calls. Re-initialized when
  /// the workspace meets a different Formulation (`rate_epoch` — a
  /// process-unique id rather than a model pointer, so a recycled heap
  /// address can never revive stale entries).
  /// Memoizing helps only when pairs recur (2-DNN workloads); with 3+
  /// concurrent DNNs the external demand is a sum over the others and the
  /// pair cardinality explodes, so the memo watches its own hit rate and
  /// switches itself off when probing costs more than it saves. Either
  /// mode returns the identical value — the cache is pure — so adaptation
  /// cannot affect results.
  std::vector<std::uint64_t> rate_key_own;
  std::vector<std::uint64_t> rate_key_ext;
  std::vector<double> rate_val;
  std::uint64_t rate_epoch = 0;
  std::uint64_t rate_lookups = 0;
  std::uint64_t rate_hits = 0;
  bool rate_enabled = true;
};

class Formulation {
 public:
  explicit Formulation(const Problem& problem);

  // The precomputed tables are plain data, but the sweep-cap telemetry is
  // atomic (predict is const-thread-safe); copies restart the counters.
  Formulation(const Formulation& other);
  Formulation& operator=(const Formulation& other);

  /// Predicts the outcome of `schedule`. Schedules assigning a group to a
  /// PU that does not support it are infeasible (not an error). This
  /// overload owns a transient workspace; prefer the workspace overloads
  /// on hot paths.
  [[nodiscard]] Prediction predict(const Schedule& schedule,
                                   const PredictOptions& options = {}) const;

  /// Allocation-free variant: all scratch lives in `ws`.
  [[nodiscard]] Prediction predict(const Schedule& schedule, EvalWorkspace& ws,
                                   const PredictOptions& options = {}) const;

  /// Flat-assignment fast path: `assignment` is DNN-major with one value
  /// per layer group, each indexing problem().pus (the solver encoding —
  /// see ScheduleSpace). Skips the nested Schedule entirely.
  [[nodiscard]] Prediction predict_flat(std::span<const int> assignment, EvalWorkspace& ws,
                                        const PredictOptions& options = {}) const;

  /// Objective-only flat path: returns Prediction::objective_value without
  /// materializing a Prediction (zero allocations, even for the per-DNN
  /// span vector). This is what ScheduleSpace::evaluate calls.
  [[nodiscard]] double evaluate_flat(std::span<const int> assignment, EvalWorkspace& ws,
                                     const PredictOptions& options = {}) const;

  /// The original (pre-item-table) predictor, retained verbatim as the
  /// golden reference: rebuilds item lists from the profile and allocates
  /// its scratch per call. Parity tests assert the optimized paths return
  /// bit-identical objectives; bench_evaluate measures the speedup.
  [[nodiscard]] Prediction predict_reference(const Schedule& schedule,
                                             const PredictOptions& options = {}) const;

  /// Number of predictions that hit the event-sweep cap since
  /// construction (across all threads).
  [[nodiscard]] std::uint64_t sweep_cap_count() const noexcept {
    return sweep_caps_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] const Problem& problem() const noexcept { return *problem_; }

 private:
  /// Precomputed evaluation data of one (group, PU) cell.
  struct Segment {
    std::uint32_t begin = 0;  ///< first layer item in items_
    std::uint32_t count = 0;  ///< layer items with positive duration
    bool supported = false;
    TimeMs tau_in = 0.0;      ///< transition leg landing on this PU
    TimeMs tau_out = 0.0;     ///< transition leg leaving this PU
    GBps stream_gbps = 0.0;   ///< the PU's max streaming bandwidth
  };

  struct SweepResult;

  void build_tables();
  /// Sizes `ws` for this problem's dimensions and clears the item buffer.
  /// Containers keep their capacity, so repeated calls do not allocate.
  void prepare_workspace(EvalWorkspace& ws) const;
  /// Appends DNN `d`'s items for the given per-group PU assignment into
  /// ws.items and fills ws.states[d]; returns false when the assignment is
  /// structurally infeasible (unsupported cell, transition budget, empty).
  bool assemble_dnn(int d, std::span<const soc::PuId> assignment, EvalWorkspace& ws,
                    const PredictOptions& options) const;
  /// Assembles every DNN from a flat solver assignment (values index
  /// problem().pus); same return contract as assemble_dnn.
  bool assemble_flat(std::span<const int> assignment, EvalWorkspace& ws,
                     const PredictOptions& options) const;
  /// Runs the timeline sweep over the assembled workspace.
  SweepResult sweep(EvalWorkspace& ws, const PredictOptions& options) const;
  void note_sweep_cap() const;
  [[nodiscard]] Prediction finish(const SweepResult& result, const EvalWorkspace& ws) const;

  const Problem* problem_;
  int pu_count_ = 0;  ///< platform PU count (segments are indexed by PuId)
  /// pu_allowed_[pu] is true when the PU is in problem().pus. Assignments
  /// referencing a masked PU (quarantined, or never schedulable like the
  /// CPU) are infeasible, so a shrunken accelerator set is honored by
  /// every predict path, not just the solver's encoding.
  std::vector<char> pu_allowed_;
  /// Process-unique id stamped at construction (and on copy); workspaces
  /// use it to detect that their rate memo belongs to another instance.
  std::uint64_t eval_epoch_ = 0;
  std::vector<EvalItem> items_;  ///< layer-item arena, all DNNs
  /// Per DNN: segments_[d][group * pu_count_ + pu].
  std::vector<std::vector<Segment>> segments_;
  mutable std::atomic<std::uint64_t> sweep_caps_{0};
  mutable std::atomic<bool> sweep_cap_logged_{false};
};

}  // namespace hax::sched
