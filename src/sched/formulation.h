#pragma once

/// \file formulation.h
/// The cost model of Sec 3.4 (Eqs. 2-9): predicts the outcome of a
/// candidate schedule from profiled data only — standalone group times t,
/// transition costs τ, requested throughputs, and the PCCS contention
/// model. This is the objective function the solver optimizes.
///
/// Mechanically it sweeps a group-granularity timeline: start/end times
/// (Eqs. 4-6) emerge from the sweep, contention intervals (Eq. 8) are the
/// stretches between events, and each group's slowdown (Eq. 7) is the
/// interval-weighted PCCS estimate given the other PUs' concurrent
/// demands. Cross-DNN queueing on an over-subscribed PU is modeled
/// explicitly and doubles as the ε-feasibility check (Eq. 9).
///
/// The predictor sees only the NetworkProfile — including the *estimated*
/// demands for black-box DSAs — never the simulator's ground truth, so its
/// predictions carry the same kind of error the paper's do.
///
/// Performance: the solvers funnel millions of candidate schedules through
/// predict(), so the hot path is built to be allocation-free. The
/// constructor precomputes, per (DNN, group, PU), the layer-item segment
/// and the transition legs (τ_in/τ_out plus the PU's streaming bandwidth),
/// so evaluation concatenates precomputed spans instead of re-reading the
/// profile per layer. All per-call scratch — SoA sweep-state lanes,
/// index-based ring-buffer run queues, the contention-rate array, the flat
/// item buffer — lives in an EvalWorkspace the caller (typically one per
/// solver worker thread) reuses across calls. predict_reference() retains
/// the original implementation as the golden model for parity tests and
/// before/after benchmarks.
///
/// Batch evaluation: population-shaped consumers (GA generations, B&B
/// sibling expansions, serve warm-start ranking) score thousands of
/// candidates at once through predict_batch()/evaluate_batch() and a
/// BatchEvalWorkspace. Candidate state is structure-of-arrays (one lane of
/// sweep cursors per *unique* candidate, laid out lane-major per field);
/// one pass over the batch dedupes whole candidates and per-(DNN, row)
/// item assemblies so the segment tables are walked once per distinct row
/// instead of once per candidate, and every lane shares the contention-
/// rate memo. The per-candidate results are bit-identical to calling
/// predict_flat()/evaluate_flat() one assignment at a time: lanes are
/// independent, sharing is restricted to pure functions (item assembly,
/// the PCCS rate), and each lane's sweep performs the identical FP
/// operations in the identical order. (Telemetry differs benignly: a
/// capped sweep is counted once per unique lane, not once per duplicate.)

#include <atomic>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "sched/problem.h"
#include "sched/schedule.h"

namespace hax::sched {

struct PredictOptions {
  /// When false, slowdowns are pinned to 1 — the contention-blind
  /// predictor used by the Herald and H2H baselines (their defining flaw
  /// per Sec 5.2).
  bool model_contention = true;

  /// When false, Problem::max_transitions is not enforced (baseline
  /// schedulers are free to transition as often as they like).
  bool enforce_transition_budget = true;

  /// When false, Eq. 9's ε overlap constraint is not enforced — used when
  /// predicting baseline schedules, which serialize DNNs on one PU by
  /// design. The solver keeps it on: group-granularity predictions are
  /// only trustworthy when concurrent DNNs do not time-share a PU, since
  /// real engines interleave kernel-by-kernel in ways Eq. 2 cannot see.
  bool enforce_epsilon = true;

  /// Cap on timeline-sweep events; 0 = automatic (8 × total items + 256).
  /// A sweep that exhausts the cap is infeasible with
  /// Prediction::sweep_capped set. Exposed so tests can exercise the
  /// non-convergence path deterministically.
  std::size_t max_events = 0;
};

struct Prediction {
  bool feasible = false;  ///< supports + transition budget + ε constraint

  /// True when the event sweep hit its max_events cap without finishing.
  /// The schedule is reported infeasible, but — unlike a genuinely
  /// unsupported/over-budget one — the verdict is a convergence failure of
  /// the sweep, not a property of the schedule. Formulation counts these
  /// (sweep_cap_count()) and logs the first occurrence.
  bool sweep_capped = false;

  TimeMs makespan_ms = 0.0;
  /// Average per-iteration execution span of each DNN (the T(L, S(L))_n
  /// of Eq. 2, including transition costs and contention slowdown).
  std::vector<TimeMs> dnn_span_ms;
  /// Per-round completion time (makespan / number of rounds).
  TimeMs round_ms = 0.0;
  /// Aggregate throughput: total frames / makespan.
  double fps = 0.0;
  /// Worst cross-DNN same-PU queueing observed in the sweep (Eq. 9's
  /// overlap); compared against Problem::epsilon_ms.
  TimeMs total_queue_ms = 0.0;

  /// Value minimized by the solver: round_ms for MinMaxLatency, -fps for
  /// MaxThroughput; +infinity when infeasible.
  double objective_value = 0.0;
};

/// One predicted unit of work: a group's layer execution or a transition
/// leg. Precomputed tables and the workspace item buffer are arrays of
/// these.
struct EvalItem {
  soc::PuId pu = 0;
  TimeMs duration = 0.0;
  GBps demand = 0.0;
};

/// Structure-of-arrays sweep state: each field is a flat array indexed
/// lane-major as [lane * dnn_count + dnn]. A single-candidate workspace is
/// one lane; a BatchEvalWorkspace holds one lane per unique candidate so
/// the batch sweep streams over contiguous per-field arrays instead of
/// pointer-chasing per-candidate structs. (iterations / depends_on are
/// problem constants, read from the Problem rather than duplicated per
/// lane.)
struct SweepSoa {
  std::vector<std::uint32_t> items_begin;  ///< lane's first item, per DNN
  std::vector<std::uint32_t> items_end;    ///< half-open end, per DNN
  std::vector<std::uint8_t> phase;         ///< Phase enum (formulation.cpp)
  std::vector<std::uint8_t> iter_started;
  std::vector<int> iter;
  std::vector<int> iters_done;
  std::vector<std::uint32_t> idx;          ///< absolute index into items
  std::vector<TimeMs> remaining;
  std::vector<TimeMs> iter_start;
  std::vector<TimeMs> wait_since;          ///< when the DNN entered Waiting
  std::vector<TimeMs> span_total;

  /// Resizes every field array to `n` entries (lanes * dnn_count).
  void resize(std::size_t n);
  /// Resets the sweep cursors of `count` entries starting at `base` to
  /// their initial (Blocked) state. Item ranges are left untouched.
  void reset(std::size_t base, std::size_t count);
};

/// Reusable scratch for the allocation-free predict paths. Intended
/// ownership is one workspace per solver worker thread, reused across
/// every evaluation that thread performs; after the first call on a given
/// problem shape no predict() call allocates. A workspace adapts itself to
/// whichever Formulation it is passed to (switching formulations is
/// correct, merely re-sizing). Not thread-safe: never share one instance
/// between concurrent callers.
class EvalWorkspace {
 public:
  EvalWorkspace() = default;

 private:
  friend class Formulation;

  std::vector<EvalItem> items;   ///< flat per-call item buffer (all DNNs)
  SweepSoa soa;                  ///< one lane: sweep state per DNN
  /// Index-based ring-buffer run queues, one per PU: each DNN is enqueued
  /// on at most one PU at a time, so capacity dnn_count per PU suffices.
  std::vector<int> queue_buf;    ///< [pu * dnn_count + slot]
  std::vector<std::uint32_t> queue_head;
  std::vector<std::uint32_t> queue_len;
  std::vector<int> running;      ///< DNN running on each PU, -1 idle
  std::vector<double> rates;     ///< per-PU contention rate (hoisted)
  std::vector<TimeMs> spans;     ///< per-DNN mean iteration span result
  std::vector<soc::PuId> pu_scratch;  ///< flat-index → PuId translation buffer
  /// Ascending list of PUs referenced by the current assembly — the only
  /// PUs the sweep ever needs to scan (all others stay idle, so skipping
  /// them performs the identical FP operations in the identical order).
  std::vector<soc::PuId> active_pus;

  /// Memoized contention rates (1 / PCCS slowdown) keyed by the exact
  /// (own, external) demand bit patterns. The PCCS model is a pure
  /// function, so cached rates are bit-identical to fresh lookups; item
  /// demands come from a fixed profile, so the same pairs recur across
  /// evaluations and the table persists between calls. Re-initialized when
  /// the workspace meets a different Formulation (`rate_epoch` — a
  /// process-unique id rather than a model pointer, so a recycled heap
  /// address can never revive stale entries).
  /// Memoizing helps only when pairs recur (2-DNN workloads); with 3+
  /// concurrent DNNs the external demand is a sum over the others and the
  /// pair cardinality explodes, so the memo watches its own hit rate and
  /// switches itself off when probing costs more than it saves. Either
  /// mode returns the identical value — the cache is pure — so adaptation
  /// cannot affect results.
  std::vector<std::uint64_t> rate_key_own;
  std::vector<std::uint64_t> rate_key_ext;
  std::vector<double> rate_val;
  std::uint64_t rate_epoch = 0;
  std::uint64_t rate_lookups = 0;
  std::uint64_t rate_hits = 0;
  bool rate_enabled = true;
};

/// Reusable scratch for the batch predict paths: structure-of-arrays
/// candidate state plus the shared item arena and dedup tables. Intended
/// ownership mirrors EvalWorkspace (one per worker thread, reused across
/// batches; adapts itself to whichever Formulation it is passed to). Not
/// thread-safe: never share one instance between concurrent callers.
class BatchEvalWorkspace {
 public:
  BatchEvalWorkspace() = default;

  /// Telemetry of the most recent batch: how many candidates collapsed
  /// onto an already-assembled identical candidate, and how many per-(DNN,
  /// row) assemblies were served from the dedup table instead of walking
  /// the segment tables again. Exposed so benches and tests can observe
  /// batch sharing efficacy.
  [[nodiscard]] std::uint64_t last_batch_candidates() const noexcept { return stat_candidates; }
  [[nodiscard]] std::uint64_t last_batch_unique() const noexcept { return stat_unique; }
  [[nodiscard]] std::uint64_t last_batch_row_walks() const noexcept { return stat_row_walks; }
  [[nodiscard]] std::uint64_t last_batch_row_hits() const noexcept { return stat_row_hits; }

 private:
  friend class Formulation;

  // ---- shared per-batch item arena + SoA lanes (unique candidates) ----
  std::vector<EvalItem> items;  ///< deduped item arena for the whole batch
  SweepSoa soa;                 ///< one lane per unique live candidate

  // ---- per-lane results, one array per field (lane = unique candidate) --
  std::vector<double> objective;
  std::vector<std::uint8_t> lane_dead;  ///< structurally infeasible (no sweep)
  std::vector<std::uint8_t> lane_feasible;
  std::vector<std::uint8_t> lane_capped;
  std::vector<TimeMs> makespan;
  std::vector<TimeMs> round_ms;
  std::vector<double> lane_fps;
  std::vector<TimeMs> total_queue;
  std::vector<TimeMs> lane_spans;  ///< [lane * dnn_count + d], predict only

  /// Candidate → lane map: lane_of[i] is the SoA lane evaluated for
  /// candidate i (duplicates share their representative's lane).
  std::vector<std::int32_t> lane_of;

  // ---- whole-candidate dedup (open addressing, cleared per batch) ----
  std::vector<std::int32_t> cand_slot;  ///< slot → first candidate index, -1 empty

  // ---- per-(DNN, row) assembly dedup (cleared per batch) ----
  /// Append-only row entries; slots index into them. A row is one DNN's
  /// per-group PU assignment; its items are a pure function of (dnn, row),
  /// so a dedup hit reuses the arena range the first walk produced.
  struct RowEntry {
    int dnn = 0;
    std::uint32_t key_begin = 0;  ///< row values in row_pool
    std::uint32_t key_len = 0;
    std::uint32_t items_begin = 0;
    std::uint32_t items_end = 0;
    std::uint8_t ok = 0;  ///< row assembles (supported, within budget)
  };
  std::vector<RowEntry> row_entries;
  std::vector<std::int32_t> row_slot;  ///< slot → row_entries index, -1 empty
  std::vector<int> row_pool;           ///< stored row keys, back to back

  /// Sweep scratch shared across lanes: run queues, contention-rate array,
  /// active-PU list and the persistent contention-rate memo. Lanes are
  /// swept one at a time, so a single scratch suffices for any batch size.
  EvalWorkspace scratch;

  std::uint64_t stat_candidates = 0;
  std::uint64_t stat_unique = 0;
  std::uint64_t stat_row_walks = 0;
  std::uint64_t stat_row_hits = 0;
};

class Formulation {
 public:
  explicit Formulation(const Problem& problem);

  // The precomputed tables are plain data, but the sweep-cap telemetry is
  // atomic (predict is const-thread-safe); copies restart the counters.
  Formulation(const Formulation& other);
  Formulation& operator=(const Formulation& other);

  /// Predicts the outcome of `schedule`. Schedules assigning a group to a
  /// PU that does not support it are infeasible (not an error). This
  /// overload owns a transient workspace; prefer the workspace overloads
  /// on hot paths.
  [[nodiscard]] Prediction predict(const Schedule& schedule,
                                   const PredictOptions& options = {}) const;

  /// Allocation-free variant: all scratch lives in `ws`.
  [[nodiscard]] Prediction predict(const Schedule& schedule, EvalWorkspace& ws,
                                   const PredictOptions& options = {}) const;

  /// Flat-assignment fast path: `assignment` is DNN-major with one value
  /// per layer group, each indexing problem().pus (the solver encoding —
  /// see ScheduleSpace). Skips the nested Schedule entirely.
  [[nodiscard]] Prediction predict_flat(std::span<const int> assignment, EvalWorkspace& ws,
                                        const PredictOptions& options = {}) const;

  /// Objective-only flat path: returns Prediction::objective_value without
  /// materializing a Prediction (zero allocations, even for the per-DNN
  /// span vector). This is what ScheduleSpace::evaluate calls.
  [[nodiscard]] double evaluate_flat(std::span<const int> assignment, EvalWorkspace& ws,
                                     const PredictOptions& options = {}) const;

  /// Batch objective path: `assignments` is `n` back-to-back flat
  /// assignments (each flat_variable_count() values, the same encoding as
  /// evaluate_flat); `out` receives one objective per candidate,
  /// bit-identical to calling evaluate_flat on each. One pass dedupes
  /// whole candidates and per-(DNN, row) assemblies, then sweeps each
  /// unique lane against the shared contention-rate memo. This is what
  /// ScheduleSpace::evaluate_batch calls.
  void evaluate_batch(std::span<const int> assignments, int n, std::span<double> out,
                      BatchEvalWorkspace& ws, const PredictOptions& options = {}) const;

  /// Batch prediction path: as evaluate_batch, but materializes a full
  /// Prediction (metrics + per-DNN spans) per candidate, each bit-identical
  /// to predict_flat on that candidate.
  void predict_batch(std::span<const int> assignments, int n, std::span<Prediction> out,
                     BatchEvalWorkspace& ws, const PredictOptions& options = {}) const;

  /// The original (pre-item-table) predictor, retained verbatim as the
  /// golden reference: rebuilds item lists from the profile and allocates
  /// its scratch per call. Parity tests assert the optimized paths return
  /// bit-identical objectives; bench_evaluate measures the speedup.
  [[nodiscard]] Prediction predict_reference(const Schedule& schedule,
                                             const PredictOptions& options = {}) const;

  /// Number of predictions that hit the event-sweep cap since
  /// construction (across all threads). Batch paths count capped sweeps
  /// once per unique lane (duplicates share their representative's sweep).
  [[nodiscard]] std::uint64_t sweep_cap_count() const noexcept {
    return sweep_caps_.load(std::memory_order_relaxed);
  }

  /// Length of one flat assignment (total layer groups over all DNNs).
  [[nodiscard]] int flat_variable_count() const noexcept { return flat_vars_; }

  [[nodiscard]] const Problem& problem() const noexcept { return *problem_; }

 private:
  /// Precomputed evaluation data of one (group, PU) cell.
  struct Segment {
    std::uint32_t begin = 0;  ///< first layer item in items_
    std::uint32_t count = 0;  ///< layer items with positive duration
    bool supported = false;
    TimeMs tau_in = 0.0;      ///< transition leg landing on this PU
    TimeMs tau_out = 0.0;     ///< transition leg leaving this PU
    GBps stream_gbps = 0.0;   ///< the PU's max streaming bandwidth
  };

  /// Raw sweep outcome (metrics before Prediction materialization).
  struct SweepResult {
    bool feasible = false;
    bool capped = false;
    TimeMs makespan = 0.0;
    TimeMs round_ms = 0.0;
    double fps = 0.0;
    TimeMs total_queue = 0.0;
    double objective = std::numeric_limits<double>::infinity();
  };

  void build_tables();
  /// Sizes `ws` for this problem's dimensions and clears the item buffer.
  /// Containers keep their capacity, so repeated calls do not allocate.
  void prepare_workspace(EvalWorkspace& ws) const;
  /// Appends DNN `d`'s items for the given per-group PU assignment into
  /// `items` and initializes the sweep lane entry at soa[base + d];
  /// returns false when the assignment is structurally infeasible
  /// (unsupported cell, transition budget, empty).
  bool assemble_dnn(int d, std::span<const soc::PuId> assignment, std::vector<EvalItem>& items,
                    SweepSoa& soa, std::size_t base, const PredictOptions& options) const;
  /// Assembles every DNN from a flat solver assignment (values index
  /// problem().pus); same return contract as assemble_dnn.
  bool assemble_flat(std::span<const int> assignment, EvalWorkspace& ws,
                     const PredictOptions& options) const;
  /// Runs the timeline sweep over one SoA lane: `soa[base .. base+dnns)`
  /// with items resolved against `items`. `ws` supplies the run queues,
  /// rate scratch and the contention-rate memo.
  SweepResult sweep(EvalWorkspace& ws, std::span<const EvalItem> items, SweepSoa& soa,
                    std::size_t base, const PredictOptions& options) const;
  /// Shared batch driver: assembles + dedupes + sweeps `n` candidates into
  /// `ws`'s lane arrays (lane_spans filled only when `want_spans`).
  void run_batch(std::span<const int> assignments, int n, BatchEvalWorkspace& ws,
                 const PredictOptions& options, bool want_spans) const;
  void note_sweep_cap() const;
  [[nodiscard]] Prediction finish(const SweepResult& result, const EvalWorkspace& ws) const;

  const Problem* problem_;
  int pu_count_ = 0;  ///< platform PU count (segments are indexed by PuId)
  int flat_vars_ = 0; ///< total layer groups over all DNNs
  /// pu_allowed_[pu] is true when the PU is in problem().pus. Assignments
  /// referencing a masked PU (quarantined, or never schedulable like the
  /// CPU) are infeasible, so a shrunken accelerator set is honored by
  /// every predict path, not just the solver's encoding.
  std::vector<char> pu_allowed_;
  /// Process-unique id stamped at construction (and on copy); workspaces
  /// use it to detect that their rate memo belongs to another instance.
  std::uint64_t eval_epoch_ = 0;
  std::vector<EvalItem> items_;  ///< layer-item arena, all DNNs
  /// Per DNN: segments_[d][group * pu_count_ + pu].
  std::vector<std::vector<Segment>> segments_;
  mutable std::atomic<std::uint64_t> sweep_caps_{0};
  mutable std::atomic<bool> sweep_cap_logged_{false};
};

}  // namespace hax::sched
