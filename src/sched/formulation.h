#pragma once

/// \file formulation.h
/// The cost model of Sec 3.4 (Eqs. 2-9): predicts the outcome of a
/// candidate schedule from profiled data only — standalone group times t,
/// transition costs τ, requested throughputs, and the PCCS contention
/// model. This is the objective function the solver optimizes.
///
/// Mechanically it sweeps a group-granularity timeline: start/end times
/// (Eqs. 4-6) emerge from the sweep, contention intervals (Eq. 8) are the
/// stretches between events, and each group's slowdown (Eq. 7) is the
/// interval-weighted PCCS estimate given the other PUs' concurrent
/// demands. Cross-DNN queueing on an over-subscribed PU is modeled
/// explicitly and doubles as the ε-feasibility check (Eq. 9).
///
/// The predictor sees only the NetworkProfile — including the *estimated*
/// demands for black-box DSAs — never the simulator's ground truth, so its
/// predictions carry the same kind of error the paper's do.

#include <vector>

#include "sched/problem.h"
#include "sched/schedule.h"

namespace hax::sched {

struct PredictOptions {
  /// When false, slowdowns are pinned to 1 — the contention-blind
  /// predictor used by the Herald and H2H baselines (their defining flaw
  /// per Sec 5.2).
  bool model_contention = true;

  /// When false, Problem::max_transitions is not enforced (baseline
  /// schedulers are free to transition as often as they like).
  bool enforce_transition_budget = true;

  /// When false, Eq. 9's ε overlap constraint is not enforced — used when
  /// predicting baseline schedules, which serialize DNNs on one PU by
  /// design. The solver keeps it on: group-granularity predictions are
  /// only trustworthy when concurrent DNNs do not time-share a PU, since
  /// real engines interleave kernel-by-kernel in ways Eq. 2 cannot see.
  bool enforce_epsilon = true;
};

struct Prediction {
  bool feasible = false;  ///< supports + transition budget + ε constraint

  TimeMs makespan_ms = 0.0;
  /// Average per-iteration execution span of each DNN (the T(L, S(L))_n
  /// of Eq. 2, including transition costs and contention slowdown).
  std::vector<TimeMs> dnn_span_ms;
  /// Per-round completion time (makespan / number of rounds).
  TimeMs round_ms = 0.0;
  /// Aggregate throughput: total frames / makespan.
  double fps = 0.0;
  /// Worst cross-DNN same-PU queueing observed in the sweep (Eq. 9's
  /// overlap); compared against Problem::epsilon_ms.
  TimeMs total_queue_ms = 0.0;

  /// Value minimized by the solver: round_ms for MinMaxLatency, -fps for
  /// MaxThroughput; +infinity when infeasible.
  double objective_value = 0.0;
};

class Formulation {
 public:
  explicit Formulation(const Problem& problem) : problem_(&problem) { problem.validate(); }

  /// Predicts the outcome of `schedule`. Schedules assigning a group to a
  /// PU that does not support it are infeasible (not an error).
  [[nodiscard]] Prediction predict(const Schedule& schedule,
                                   const PredictOptions& options = {}) const;

  [[nodiscard]] const Problem& problem() const noexcept { return *problem_; }

 private:
  const Problem* problem_;
};

}  // namespace hax::sched
