#pragma once

/// \file serialize.h
/// JSON artifact formats for schedules, profiles, and predictions — the
/// reproduction's equivalent of the paper artifact's "profiling logs" and
/// generated engine plans (Appendix A). Static deployments (Sec 3.5) save
/// the optimal schedule per CFG offline and load it at runtime; these
/// functions are that load/store path.

#include <string>

#include "common/json.h"
#include "perf/profiler.h"
#include "sched/formulation.h"
#include "sched/schedule.h"

namespace hax::sched {

/// Schedule <-> JSON. The format records one array of PU ids per DNN:
///   {"version": 1, "assignment": [[0,0,1,1],[1,1,1]]}
[[nodiscard]] json::Value schedule_to_json(const Schedule& schedule);
[[nodiscard]] Schedule schedule_from_json(const json::Value& value);

/// Convenience string round trip.
[[nodiscard]] std::string schedule_to_string(const Schedule& schedule);
[[nodiscard]] Schedule schedule_from_string(const std::string& text);

/// NetworkProfile -> JSON (per-group and per-layer records). Profiles are
/// write-only artifacts: they are regenerated from the cost model rather
/// than parsed back, matching the paper's offline profiling logs.
[[nodiscard]] json::Value profile_to_json(const perf::NetworkProfile& profile);

/// Prediction -> JSON (for experiment records).
[[nodiscard]] json::Value prediction_to_json(const Prediction& prediction);

/// File helpers. Throw std::runtime_error on I/O failure.
void save_schedule(const Schedule& schedule, const std::string& path);
[[nodiscard]] Schedule load_schedule(const std::string& path);

}  // namespace hax::sched
