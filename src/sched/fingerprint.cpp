#include "sched/fingerprint.h"

#include <algorithm>
#include <bit>
#include <numeric>

#include "common/error.h"

namespace hax::sched {
namespace {

/// splitmix64 finalizer — the same mixer hash_span uses, reused here so
/// fingerprint quality matches the memo cache's key distribution.
std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Order-sensitive accumulator over 64-bit words. Doubles are hashed by
/// bit pattern: the profiler is deterministic, so equal scenarios produce
/// bit-equal profiles, and hashing bits avoids any quantization choice.
class Hasher {
 public:
  void word(std::uint64_t w) noexcept { state_ = mix64(state_ ^ w); }
  void number(double d) noexcept {
    // Normalize -0.0 so the two zero encodings hash identically.
    word(std::bit_cast<std::uint64_t>(d == 0.0 ? 0.0 : d));
  }
  void boolean(bool b) noexcept { word(b ? 0x9E37ull : 0x79B9ull); }
  void text(const std::string& s) noexcept {
    word(s.size());
    for (char c : s) word(static_cast<std::uint64_t>(static_cast<unsigned char>(c)));
  }
  [[nodiscard]] std::uint64_t digest() const noexcept { return state_; }

 private:
  std::uint64_t state_ = 0x5CE9A21D0ull;
};

/// Content hash of one DNN: grouped structure + full profile table over
/// the problem's PU set + iteration count. Deliberately excludes
/// depends_on (folded in by a separate refinement round) and the request
/// index (which would break permutation invariance).
std::uint64_t dnn_content_hash(const Problem& problem, const DnnSpec& spec) {
  Hasher h;
  const grouping::GroupedNetwork& net = *spec.net;
  const perf::NetworkProfile& profile = *spec.profile;
  h.word(static_cast<std::uint64_t>(net.group_count()));
  for (const grouping::LayerGroup& g : net.groups()) {
    h.word(static_cast<std::uint64_t>(g.size()));
    h.boolean(g.gpu_only);
    h.word(static_cast<std::uint64_t>(g.flops));
    h.word(static_cast<std::uint64_t>(g.weight_bytes));
  }
  h.word(static_cast<std::uint64_t>(spec.iterations));
  // Profile cells in (group, problem-PU) order: everything the predictor
  // reads. PUs outside problem.pus never influence a schedule's score, so
  // they stay out of the identity.
  for (int g = 0; g < profile.group_count(); ++g) {
    for (soc::PuId pu : problem.pus) {
      const perf::GroupProfile& cell = profile.at(g, pu);
      h.boolean(cell.supported);
      h.number(cell.time_ms);
      h.number(cell.demand_gbps);
      h.number(cell.tau_in);
      h.number(cell.tau_out);
    }
  }
  return h.digest();
}

}  // namespace

std::string ScenarioFingerprint::to_string() const {
  static const char* digits = "0123456789abcdef";
  std::string out(32, '0');
  for (int i = 0; i < 16; ++i) {
    out[static_cast<std::size_t>(15 - i)] = digits[(hi >> (4 * i)) & 0xF];
    out[static_cast<std::size_t>(31 - i)] = digits[(lo >> (4 * i)) & 0xF];
  }
  return out;
}

ScenarioFingerprint ScenarioFingerprint::from_string(const std::string& text) {
  HAX_REQUIRE(text.size() == 32, "fingerprint hex must be exactly 32 digits");
  ScenarioFingerprint fp;
  for (int i = 0; i < 32; ++i) {
    const char c = text[static_cast<std::size_t>(i)];
    std::uint64_t nibble;
    if (c >= '0' && c <= '9') {
      nibble = static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      nibble = static_cast<std::uint64_t>(c - 'a') + 10;
    } else {
      HAX_REQUIRE(false, "fingerprint hex contains a non-hex digit");
      return fp;
    }
    std::uint64_t& half = i < 16 ? fp.hi : fp.lo;
    half = (half << 4) | nibble;
  }
  return fp;
}

CanonicalScenario canonicalize(const Problem& problem) {
  problem.validate();
  const auto dnn_count = problem.dnns.size();

  // Round 1: pure content hashes. Round 2 folds in the dependency
  // target's round-1 hash, so "A feeding B" and "B feeding A" landing in
  // the same sorted slot still fingerprint differently.
  std::vector<std::uint64_t> content(dnn_count);
  for (std::size_t d = 0; d < dnn_count; ++d) {
    content[d] = dnn_content_hash(problem, problem.dnns[d]);
  }
  std::vector<std::uint64_t> refined(dnn_count);
  for (std::size_t d = 0; d < dnn_count; ++d) {
    const int dep = problem.dnns[d].depends_on;
    const std::uint64_t dep_hash =
        dep >= 0 ? content[static_cast<std::size_t>(dep)] : 0x0D5Eull;
    refined[d] = mix64(content[d] ^ mix64(dep_hash));
  }

  CanonicalScenario canon;
  canon.order.resize(dnn_count);
  std::iota(canon.order.begin(), canon.order.end(), 0);
  std::stable_sort(canon.order.begin(), canon.order.end(), [&](int a, int b) {
    return refined[static_cast<std::size_t>(a)] < refined[static_cast<std::size_t>(b)];
  });
  canon.inverse.resize(dnn_count);
  for (std::size_t i = 0; i < dnn_count; ++i) {
    canon.inverse[static_cast<std::size_t>(canon.order[i])] = static_cast<int>(i);
  }

  // Scenario-level words shared by fingerprint and shape key: the exact
  // PU set (assignment values index it — order matters), the objective,
  // and the solver constraints.
  Hasher scenario;
  scenario.text(problem.platform->name());
  scenario.word(problem.pus.size());
  for (soc::PuId pu : problem.pus) scenario.word(static_cast<std::uint64_t>(pu));
  scenario.word(static_cast<std::uint64_t>(problem.objective));
  scenario.word(static_cast<std::uint64_t>(problem.max_transitions));

  Hasher shape = scenario;  // shape key: structure only, no profile bits
  scenario.number(problem.epsilon_ms);

  // DNNs in canonical order. The dependency edge is encoded as the
  // canonical position of the producer (a permutation-invariant index).
  for (std::size_t i = 0; i < dnn_count; ++i) {
    const auto d = static_cast<std::size_t>(canon.order[i]);
    scenario.word(refined[d]);
    const int dep = problem.dnns[d].depends_on;
    scenario.word(dep >= 0
                      ? static_cast<std::uint64_t>(canon.inverse[static_cast<std::size_t>(dep)])
                      : 0xFEEDull);
    shape.word(static_cast<std::uint64_t>(problem.dnns[d].net->group_count()));
  }

  canon.shape_key = shape.digest();
  canon.fingerprint.lo = scenario.digest();
  // Second lane: re-mix the first digest with an independent constant so
  // the two words are not trivially correlated.
  canon.fingerprint.hi = mix64(scenario.digest() ^ 0xA24BAED4963EE407ull);
  return canon;
}

namespace {

Schedule permute(const Schedule& schedule, const std::vector<int>& order) {
  HAX_REQUIRE(schedule.dnn_count() == static_cast<int>(order.size()),
              "schedule/permutation DNN count mismatch");
  Schedule out;
  out.assignment.reserve(order.size());
  for (int src : order) {
    out.assignment.push_back(schedule.assignment[static_cast<std::size_t>(src)]);
  }
  return out;
}

}  // namespace

Schedule to_canonical(const Schedule& schedule, const CanonicalScenario& canon) {
  return permute(schedule, canon.order);
}

Schedule from_canonical(const Schedule& schedule, const CanonicalScenario& canon) {
  return permute(schedule, canon.inverse);
}

}  // namespace hax::sched
