#pragma once

/// \file problem.h
/// The scheduling problem instance: the DNN set, the accelerator set A,
/// the profile data t/τ, the contention model, and the objective
/// (Sec 3.4). `Problem` holds non-owning references for cheap passing;
/// `ProblemInstance` is the owning convenience wrapper used by benchmarks
/// and examples.

#include <limits>
#include <memory>
#include <vector>

#include "contention/pccs.h"
#include "grouping/grouping.h"
#include "nn/network.h"
#include "perf/profiler.h"
#include "soc/platform.h"

namespace hax::sched {

/// Objective functions of Eqs. 10 and 11.
enum class Objective {
  MinMaxLatency,  ///< Eq. 11: minimize the per-round completion time
  MaxThroughput,  ///< Eq. 10: maximize aggregate frames/second
};

[[nodiscard]] const char* to_string(Objective objective) noexcept;

/// One DNN in the workload.
struct DnnSpec {
  const grouping::GroupedNetwork* net = nullptr;
  const perf::NetworkProfile* profile = nullptr;

  /// Frame-level producer dependency (Scenario 3/4 pipelines); -1 = none.
  int depends_on = -1;

  /// Back-to-back frames per round (Table 8 iteration balancing).
  int iterations = 1;
};

struct Problem {
  const soc::Platform* platform = nullptr;
  const contention::PccsModel* pccs = nullptr;
  std::vector<soc::PuId> pus;  ///< the accelerator set A (schedulable PUs)
  std::vector<DnnSpec> dnns;
  Objective objective = Objective::MinMaxLatency;

  /// Eq. 9's ε: maximum tolerated same-PU cross-DNN queueing per round. A
  /// schedule whose predicted queueing exceeds this is infeasible.
  /// Infinity (default) disables the constraint — the predictor models
  /// queueing explicitly, so over-subscription is already penalized.
  TimeMs epsilon_ms = std::numeric_limits<TimeMs>::infinity();

  /// Per-DNN cap on inter-PU transitions (keeps the search space at the
  /// paper's "seconds" scale; every Table 6 schedule uses 1).
  int max_transitions = 2;

  [[nodiscard]] int dnn_count() const noexcept { return static_cast<int>(dnns.size()); }

  /// Group counts per DNN (for building schedules).
  [[nodiscard]] std::vector<int> group_counts() const;

  /// Copy of this problem with `excluded` PUs masked out of the
  /// accelerator set A — the PU-quarantine view the self-healing runtime
  /// re-solves against. Non-owning pointers are shared with the original;
  /// throws when the mask would empty the set.
  [[nodiscard]] Problem without_pus(const std::vector<soc::PuId>& excluded) const;

  /// Validates pointers and indices; throws PreconditionError.
  void validate() const;
};

/// Owns everything a Problem references: grouped networks, profiles, and
/// the calibrated PCCS model.
class ProblemInstance {
 public:
  ProblemInstance(const soc::Platform& platform, Objective objective,
                  grouping::GroupingOptions grouping_options = {},
                  perf::ProfilerOptions profiler_options = {});

  // The owned Problem holds a pointer to the pccs_ member, so moves must
  // re-anchor it; copying would duplicate owned state for no benefit.
  ProblemInstance(const ProblemInstance&) = delete;
  ProblemInstance& operator=(const ProblemInstance&) = delete;
  ProblemInstance(ProblemInstance&& other) noexcept;
  ProblemInstance& operator=(ProblemInstance&& other) noexcept;

  /// Adds a DNN (moved in); returns its index.
  int add_dnn(nn::Network net, int depends_on = -1, int iterations = 1);

  [[nodiscard]] const Problem& problem() const noexcept { return problem_; }
  [[nodiscard]] Problem& problem() noexcept { return problem_; }
  [[nodiscard]] const grouping::GroupedNetwork& grouped(int dnn) const;
  [[nodiscard]] const soc::Platform& platform() const noexcept { return *platform_; }

 private:
  const soc::Platform* platform_;
  grouping::GroupingOptions grouping_options_;
  perf::Profiler profiler_;
  contention::PccsModel pccs_;
  // unique_ptr keeps addresses stable across add_dnn() calls.
  std::vector<std::unique_ptr<grouping::GroupedNetwork>> nets_;
  std::vector<std::unique_ptr<perf::NetworkProfile>> profiles_;
  Problem problem_;
};

}  // namespace hax::sched
