#pragma once

/// \file schedule.h
/// The schedule S of Eq. 1: a PU assignment for every layer group of every
/// DNN in the workload. Plain data — produced by the solver or the
/// baselines, consumed by the predictor and the simulator.

#include <string>
#include <vector>

#include "soc/platform.h"

namespace hax::sched {

struct Schedule {
  /// assignment[dnn][group] = PU id.
  std::vector<std::vector<soc::PuId>> assignment;

  [[nodiscard]] int dnn_count() const noexcept { return static_cast<int>(assignment.size()); }

  /// Number of inter-PU transitions within one DNN's chain.
  [[nodiscard]] int transition_count(int dnn) const;

  /// Total transitions across all DNNs.
  [[nodiscard]] int total_transitions() const;

  /// Group boundaries (indices `g` such that group g and g+1 differ) for
  /// one DNN — the paper's "TR" column in Table 6.
  [[nodiscard]] std::vector<int> transition_points(int dnn) const;

  /// Human-readable description, e.g. "DNN0: G[0-4] D[5-9] (TR after g4,
  /// GtoD)". Uses PU names from the platform.
  [[nodiscard]] std::string describe(const soc::Platform& platform) const;

  bool operator==(const Schedule&) const = default;
};

/// A schedule assigning every group of every DNN to a single PU.
[[nodiscard]] Schedule uniform_schedule(const std::vector<int>& group_counts, soc::PuId pu);

}  // namespace hax::sched
