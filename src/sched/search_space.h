#pragma once

/// \file search_space.h
/// Adapter exposing the scheduling problem (Sec 3.4) to the generic
/// branch-and-bound solver. Variables are the S(L_{i,n}) of Eq. 1 — one
/// per (DNN, layer group), DNN-major — and values index into the
/// problem's PU set. Branching enforces Eq. 3's transition budget and
/// group/PU support; complete assignments are scored by the Formulation.
///
/// Thread-safety: candidates() / lower_bound() / evaluate() are
/// const-thread-safe (the parallel solvers call them from many workers).
/// All scratch is per-call; the constructor eagerly materializes every
/// lazy cache reachable from the evaluate path (Network::consumers) so no
/// hidden mutation happens after construction.

#include <utility>
#include <vector>

#include "sched/formulation.h"
#include "sched/problem.h"
#include "sched/schedule.h"
#include "solver/bnb.h"

namespace hax::sched {

class ScheduleSpace : public solver::SearchSpace {
 public:
  explicit ScheduleSpace(const Problem& problem);

  // SearchSpace interface.
  [[nodiscard]] int variable_count() const override;
  void candidates(std::span<const int> prefix, std::vector<int>& out) const override;
  [[nodiscard]] double lower_bound(std::span<const int> prefix) const override;
  [[nodiscard]] double evaluate(std::span<const int> assignment) const override;

  /// Conversions between flat solver vectors and Schedules.
  [[nodiscard]] Schedule to_schedule(std::span<const int> assignment) const;
  [[nodiscard]] std::vector<int> to_flat(const Schedule& schedule) const;

  [[nodiscard]] const Formulation& formulation() const noexcept { return formulation_; }

 private:
  [[nodiscard]] std::pair<int, int> var_location(int var) const;  // (dnn, group)
  [[nodiscard]] TimeMs group_time(int dnn, int group, int pu_index) const;
  [[nodiscard]] bool group_supported(int dnn, int group, int pu_index) const;

  const Problem* prob_;
  Formulation formulation_;
  std::vector<int> dnn_offset_;  ///< first variable of each DNN
  int var_count_ = 0;
  /// suffix_supported_[d][g * pus + p]: groups g..end of DNN d all run on p.
  std::vector<std::vector<char>> suffix_supported_;
  /// min_suffix_time_[d][g]: sum over groups g..end of the fastest
  /// supported PU time (admissible remaining-work bound).
  std::vector<std::vector<TimeMs>> min_suffix_time_;
};

}  // namespace hax::sched
