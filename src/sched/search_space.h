#pragma once

/// \file search_space.h
/// Adapter exposing the scheduling problem (Sec 3.4) to the generic
/// branch-and-bound solver. Variables are the S(L_{i,n}) of Eq. 1 — one
/// per (DNN, layer group), DNN-major — and values index into the
/// problem's PU set. Branching enforces Eq. 3's transition budget and
/// group/PU support; complete assignments are scored by the Formulation.
///
/// Thread-safety: candidates() / lower_bound() / evaluate() are
/// const-thread-safe (the parallel solvers call them from many workers).
/// Per-call scratch is thread_local (one evaluation workspace per worker
/// thread); the only cross-thread mutable state is the sharded memo cache,
/// which is internally lock-striped. The constructor eagerly materializes
/// every lazy cache reachable from the evaluate path (Network::consumers)
/// so no hidden mutation happens after construction.
///
/// evaluate() runs the Formulation's flat fast path directly — no nested
/// Schedule is materialized — and memoizes objectives by assignment hash:
/// the GA re-evaluates duplicate genomes every generation and the
/// portfolio engines revisit each other's incumbents, so duplicate sweeps
/// collapse into one cache probe. Cached and uncached evaluation are
/// bit-identical (the predictor is deterministic); cache_stats() exposes
/// the hit/miss counters that solve_schedule surfaces through SolveStats.

#include <memory>
#include <utility>
#include <vector>

#include "common/memo_cache.h"
#include "sched/formulation.h"
#include "sched/problem.h"
#include "sched/schedule.h"
#include "solver/bnb.h"

namespace hax::sched {

struct ScheduleSpaceOptions {
  /// Memoize evaluate() results keyed by assignment hash.
  bool memo_cache = true;
  /// Total cached objectives across all shards.
  std::size_t memo_capacity = 1u << 16;
};

class ScheduleSpace : public solver::SearchSpace {
 public:
  explicit ScheduleSpace(const Problem& problem, ScheduleSpaceOptions options = {});

  // SearchSpace interface.
  [[nodiscard]] int variable_count() const override;
  void candidates(std::span<const int> prefix, std::vector<int>& out) const override;
  [[nodiscard]] double lower_bound(std::span<const int> prefix) const override;
  [[nodiscard]] double evaluate(std::span<const int> assignment) const override;

  /// Population path: memo-probes all `n` assignments first, then runs the
  /// misses through the Formulation's SoA batch evaluator in one call
  /// (shared segment-table walks, shared contention-rate memo) and inserts
  /// the fresh objectives back into the memo. Bit-identical to n
  /// evaluate() calls in any hit/miss interleaving — both the memo and the
  /// batch evaluator cache pure functions. Const-thread-safe: scratch is
  /// thread_local, the memo is internally synchronized.
  void evaluate_batch(std::span<const int> assignments, int n,
                      std::span<double> out) const override;

  /// Conversions between flat solver vectors and Schedules.
  [[nodiscard]] Schedule to_schedule(std::span<const int> assignment) const;
  [[nodiscard]] std::vector<int> to_flat(const Schedule& schedule) const;

  [[nodiscard]] const Formulation& formulation() const noexcept { return formulation_; }

  /// Hit/miss totals of the evaluation memo cache (zeros when disabled).
  [[nodiscard]] MemoCacheStats cache_stats() const noexcept override;

 private:
  [[nodiscard]] std::pair<int, int> var_location(int var) const;  // (dnn, group)
  [[nodiscard]] TimeMs group_time(int dnn, int group, int pu_index) const;
  [[nodiscard]] bool group_supported(int dnn, int group, int pu_index) const;

  const Problem* prob_;
  Formulation formulation_;
  std::vector<int> dnn_offset_;  ///< first variable of each DNN
  int var_count_ = 0;
  /// var → (dnn, group) lookup tables (var_location used to linear-scan
  /// dnn_offset_ on every candidates() call).
  std::vector<int> var_dnn_;
  std::vector<int> var_group_;
  /// PuId → index into prob_->pus (-1 = not schedulable); replaces the
  /// std::find scan to_flat used to run per group.
  std::vector<int> pu_index_;
  /// suffix_supported_[d][g * pus + p]: groups g..end of DNN d all run on p.
  std::vector<std::vector<char>> suffix_supported_;
  /// min_suffix_time_[d][g]: sum over groups g..end of the fastest
  /// supported PU time (admissible remaining-work bound).
  std::vector<std::vector<TimeMs>> min_suffix_time_;
  /// Memoized evaluate() objectives; null when disabled. The cache is the
  /// one mutable member touched from const methods — it is internally
  /// synchronized (lock-striped shards, atomic counters).
  std::unique_ptr<MemoCache> cache_;
};

}  // namespace hax::sched
