#pragma once

/// \file solve.h
/// Optimal schedule generation (Sec 3.5): wires the scheduling search
/// space into the anytime branch-and-bound solver. Seed schedules (the
/// naive baselines) are evaluated first, which realizes the paper's
/// guarantee that HaX-CoNN never returns a schedule worse than the naive
/// baselines (Sec 5.2, Scenario 3).

#include <functional>

#include "sched/formulation.h"
#include "sched/problem.h"
#include "sched/schedule.h"
#include "sched/search_space.h"
#include "solver/bnb.h"
#include "solver/genetic.h"

namespace hax::sched {

struct SolveScheduleOptions {
  TimeMs time_budget_ms = 0.0;   ///< 0 = run to proven optimality
  std::uint64_t node_limit = 0;  ///< 0 = unbounded
  /// Emulated solver speed (0 = unthrottled); see solver::SolveOptions.
  double max_nodes_per_ms = 0.0;
  std::vector<Schedule> seeds;   ///< evaluated before the search begins

  /// Rank the seeds best-first before solving: all seeds are scored with
  /// one batch evaluation (ScheduleSpace::evaluate_batch) and reordered by
  /// predicted objective (stable, so equal seeds keep their given order).
  /// Matters when seeds come from heterogeneous sources — naive baselines
  /// plus several warm-start neighbours from the serving layer's schedule
  /// cache — because the GA maps seeds to generation-0 slots positionally
  /// and B&B's incumbent stream improves fastest when the best seed lands
  /// first. The scores are memoized, so the solver's own seed evaluation
  /// right after is pure cache hits; the final result is unchanged (seeds
  /// are a set to the solver), only incumbent timing improves.
  bool rank_seeds = false;

  /// Solver worker threads: 1 = the serial engine (default), 0 = one per
  /// hardware thread, n = exactly n. See solver::SolveOptions::threads.
  int threads = 1;

  /// Race the exact B&B against the genetic heuristic (PortfolioSolver):
  /// GA incumbents tighten B&B pruning; B&B completion cancels the GA.
  /// The returned schedule is still proven optimal whenever the exact
  /// half exhausted the space.
  bool portfolio = false;

  /// GA half of the portfolio (ignored unless `portfolio`). Its
  /// stop/shared_bound fields are managed by the portfolio.
  solver::GeneticOptions genetic;

  /// Optional cooperative cancellation from outside the solver.
  const solver::StopToken* stop = nullptr;

  /// Evaluation memoization for the search space (see ScheduleSpaceOptions):
  /// duplicate candidate evaluations — GA re-visits, portfolio cross-talk —
  /// become cache probes. Results are bit-identical either way; hit/miss
  /// totals land in ScheduleSolution::stats.
  bool memo_cache = true;
};

struct ScheduleSolution {
  Schedule schedule;
  Prediction prediction;
  solver::SolveStats stats;

  /// Whether the solver produced any feasible schedule.
  [[nodiscard]] bool best_found() const noexcept { return !schedule.assignment.empty(); }
  /// True when the search space was exhausted: `schedule` is the optimum
  /// of the formulation (Sec 3.4) under the transition budget.
  bool proven_optimal = false;

  /// True when a naive baseline schedule out-predicted every ε-compliant
  /// schedule and was returned instead (the paper's Scenario-3 fallback:
  /// "HaX-CoNN is capable of identifying these cases and utilizing the
  /// baseline solution instead").
  bool used_fallback = false;
};

/// Anytime incumbent callback; return false to stop early.
using ScheduleCallback =
    std::function<bool(const Schedule&, const Prediction&, TimeMs found_at_ms)>;

/// Finds the best schedule for the problem. Throws PreconditionError if
/// the problem is malformed; returns an infeasible-marked solution only if
/// no feasible schedule exists within budget.
[[nodiscard]] ScheduleSolution solve_schedule(const Problem& problem,
                                              const SolveScheduleOptions& options = {},
                                              const ScheduleCallback& on_incumbent = {});

}  // namespace hax::sched
