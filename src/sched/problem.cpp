#include "sched/problem.h"

#include <algorithm>

#include "common/error.h"

namespace hax::sched {

const char* to_string(Objective objective) noexcept {
  switch (objective) {
    case Objective::MinMaxLatency: return "min-latency";
    case Objective::MaxThroughput: return "max-fps";
  }
  return "?";
}

std::vector<int> Problem::group_counts() const {
  std::vector<int> counts;
  counts.reserve(dnns.size());
  for (const DnnSpec& d : dnns) counts.push_back(d.net->group_count());
  return counts;
}

Problem Problem::without_pus(const std::vector<soc::PuId>& excluded) const {
  Problem masked = *this;
  masked.pus.clear();
  for (const soc::PuId pu : pus) {
    if (std::find(excluded.begin(), excluded.end(), pu) == excluded.end()) {
      masked.pus.push_back(pu);
    }
  }
  HAX_REQUIRE(!masked.pus.empty(), "PU mask would leave no schedulable PUs");
  return masked;
}

void Problem::validate() const {
  HAX_REQUIRE(platform != nullptr, "problem needs a platform");
  HAX_REQUIRE(pccs != nullptr, "problem needs a contention model");
  HAX_REQUIRE(!pus.empty(), "problem needs at least one PU");
  HAX_REQUIRE(!dnns.empty(), "problem needs at least one DNN");
  HAX_REQUIRE(max_transitions >= 0, "max_transitions must be >= 0");
  for (soc::PuId pu : pus) {
    HAX_REQUIRE(pu >= 0 && pu < platform->pu_count(), "PU id out of range");
  }
  for (std::size_t i = 0; i < dnns.size(); ++i) {
    const DnnSpec& d = dnns[i];
    HAX_REQUIRE(d.net != nullptr && d.profile != nullptr, "DNN spec missing data");
    HAX_REQUIRE(d.profile->group_count() == d.net->group_count(),
                "profile does not match grouping");
    HAX_REQUIRE(d.iterations >= 1, "iterations must be >= 1");
    HAX_REQUIRE(d.depends_on >= -1 && d.depends_on < static_cast<int>(dnns.size()) &&
                    d.depends_on != static_cast<int>(i),
                "bad dependency");
  }
}

ProblemInstance::ProblemInstance(const soc::Platform& platform, Objective objective,
                                 grouping::GroupingOptions grouping_options,
                                 perf::ProfilerOptions profiler_options)
    : platform_(&platform),
      grouping_options_(grouping_options),
      profiler_(platform, profiler_options),
      pccs_(contention::PccsModel::calibrate(platform.memory())) {
  problem_.platform = platform_;
  problem_.pccs = &pccs_;
  problem_.pus = platform.schedulable_pus();
  problem_.objective = objective;
}

ProblemInstance::ProblemInstance(ProblemInstance&& other) noexcept
    : platform_(other.platform_),
      grouping_options_(other.grouping_options_),
      profiler_(std::move(other.profiler_)),
      pccs_(std::move(other.pccs_)),
      nets_(std::move(other.nets_)),
      profiles_(std::move(other.profiles_)),
      problem_(std::move(other.problem_)) {
  problem_.pccs = &pccs_;  // re-anchor the self-referential pointer
}

ProblemInstance& ProblemInstance::operator=(ProblemInstance&& other) noexcept {
  if (this != &other) {
    platform_ = other.platform_;
    grouping_options_ = other.grouping_options_;
    profiler_ = std::move(other.profiler_);
    pccs_ = std::move(other.pccs_);
    nets_ = std::move(other.nets_);
    profiles_ = std::move(other.profiles_);
    problem_ = std::move(other.problem_);
    problem_.pccs = &pccs_;
  }
  return *this;
}

int ProblemInstance::add_dnn(nn::Network net, int depends_on, int iterations) {
  auto gn = std::make_unique<grouping::GroupedNetwork>(
      grouping::build_groups(std::move(net), grouping_options_));
  auto profile = std::make_unique<perf::NetworkProfile>(profiler_.profile(*gn));

  DnnSpec spec;
  spec.net = gn.get();
  spec.profile = profile.get();
  spec.depends_on = depends_on;
  spec.iterations = iterations;

  nets_.push_back(std::move(gn));
  profiles_.push_back(std::move(profile));
  problem_.dnns.push_back(spec);
  return static_cast<int>(problem_.dnns.size()) - 1;
}

const grouping::GroupedNetwork& ProblemInstance::grouped(int dnn) const {
  HAX_REQUIRE(dnn >= 0 && dnn < static_cast<int>(nets_.size()), "dnn index out of range");
  return *nets_[static_cast<std::size_t>(dnn)];
}

}  // namespace hax::sched
